package data

import (
	"strings"
	"testing"
)

func twoAttrSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema([]Attribute{
		{Name: "x", Kind: Numeric},
		{Name: "c", Kind: Categorical, Cardinality: 4},
	}, 2)
}

func TestNewSchemaValid(t *testing.T) {
	s, err := NewSchema([]Attribute{
		{Name: "a", Kind: Numeric},
		{Name: "b", Kind: Categorical, Cardinality: 2},
	}, 3)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if s.NumAttrs() != 2 {
		t.Errorf("NumAttrs = %d, want 2", s.NumAttrs())
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name    string
		attrs   []Attribute
		classes int
		wantSub string
	}{
		{"no attributes", nil, 2, "at least one"},
		{"one class", []Attribute{{Name: "a", Kind: Numeric}}, 1, "two class"},
		{"empty name", []Attribute{{Name: "", Kind: Numeric}}, 2, "empty name"},
		{"duplicate name", []Attribute{{Name: "a", Kind: Numeric}, {Name: "a", Kind: Numeric}}, 2, "duplicate"},
		{"cardinality low", []Attribute{{Name: "a", Kind: Categorical, Cardinality: 1}}, 2, "cardinality"},
		{"cardinality high", []Attribute{{Name: "a", Kind: Categorical, Cardinality: 65}}, 2, "cardinality"},
		{"bad kind", []Attribute{{Name: "a", Kind: Kind(9)}}, 2, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSchema(tc.attrs, tc.classes)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestSchemaIndexes(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "n1", Kind: Numeric},
		{Name: "c1", Kind: Categorical, Cardinality: 3},
		{Name: "n2", Kind: Numeric},
		{Name: "c2", Kind: Categorical, Cardinality: 5},
	}, 2)
	num := s.NumericIndexes()
	if len(num) != 2 || num[0] != 0 || num[1] != 2 {
		t.Errorf("NumericIndexes = %v", num)
	}
	cat := s.CategoricalIndexes()
	if len(cat) != 2 || cat[0] != 1 || cat[1] != 3 {
		t.Errorf("CategoricalIndexes = %v", cat)
	}
}

func TestSchemaEqual(t *testing.T) {
	a := twoAttrSchema(t)
	b := twoAttrSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	c := MustSchema([]Attribute{
		{Name: "x", Kind: Numeric},
		{Name: "c", Kind: Categorical, Cardinality: 5},
	}, 2)
	if a.Equal(c) {
		t.Error("schemas with different cardinalities reported Equal")
	}
	d := MustSchema([]Attribute{
		{Name: "x", Kind: Numeric},
		{Name: "c", Kind: Categorical, Cardinality: 4},
	}, 3)
	if a.Equal(d) {
		t.Error("schemas with different class counts reported Equal")
	}
	if a.Equal(nil) {
		t.Error("schema Equal(nil) = true")
	}
}

func TestCheckTuple(t *testing.T) {
	s := twoAttrSchema(t)
	good := Tuple{Values: []float64{1.5, 2}, Class: 1}
	if err := s.CheckTuple(good); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	cases := []struct {
		name string
		tp   Tuple
	}{
		{"wrong arity", Tuple{Values: []float64{1}, Class: 0}},
		{"class high", Tuple{Values: []float64{1, 2}, Class: 2}},
		{"class negative", Tuple{Values: []float64{1, 2}, Class: -1}},
		{"cat code high", Tuple{Values: []float64{1, 4}, Class: 0}},
		{"cat code fractional", Tuple{Values: []float64{1, 1.5}, Class: 0}},
		{"cat code negative", Tuple{Values: []float64{1, -1}, Class: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := s.CheckTuple(tc.tp); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should still render")
	}
}
