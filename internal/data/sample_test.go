package data

import (
	"math"
	"math/rand"
	"testing"
)

func TestReservoirSampleSmallPopulation(t *testing.T) {
	src := NewMemSource(twoAttrSchema(t), makeTuples(10))
	got, err := ReservoirSample(src, 50, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("sample of undersized population has %d tuples, want all 10", len(got))
	}
}

func TestReservoirSampleSize(t *testing.T) {
	src := NewMemSource(twoAttrSchema(t), makeTuples(1000))
	got, err := ReservoirSample(src, 100, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("sample size %d, want 100", len(got))
	}
	seen := map[float64]bool{}
	for _, tp := range got {
		if seen[tp.Values[0]] {
			t.Fatalf("duplicate tuple %v in without-replacement sample", tp)
		}
		seen[tp.Values[0]] = true
	}
}

func TestReservoirSampleUniformity(t *testing.T) {
	// Each of 200 tuples should appear in a 20-tuple sample with
	// probability 0.1; over 400 trials the per-tuple hit counts should be
	// within a generous binomial tolerance.
	const n, k, trials = 200, 20, 400
	src := NewMemSource(twoAttrSchema(t), makeTuples(n))
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		got, err := ReservoirSample(src, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range got {
			counts[int(tp.Values[0])]++
		}
	}
	want := float64(trials) * float64(k) / float64(n) // 40
	sigma := math.Sqrt(float64(trials) * 0.1 * 0.9)   // ~6
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Errorf("tuple %d sampled %d times, want about %.0f", i, c, want)
		}
	}
}

func TestReservoirSampleEdge(t *testing.T) {
	src := NewMemSource(twoAttrSchema(t), nil)
	got, err := ReservoirSample(src, 10, rand.New(rand.NewSource(1)))
	if err != nil || len(got) != 0 {
		t.Errorf("empty population: got %d tuples, err %v", len(got), err)
	}
	got, err = ReservoirSample(src, 0, rand.New(rand.NewSource(1)))
	if err != nil || got != nil {
		t.Errorf("zero-size sample: got %v, err %v", got, err)
	}
}

func TestSampleWithReplacement(t *testing.T) {
	pop := makeTuples(10)
	rng := rand.New(rand.NewSource(7))
	got := SampleWithReplacement(pop, 1000, rng)
	if len(got) != 1000 {
		t.Fatalf("size %d", len(got))
	}
	// With 1000 draws from 10 items, every item should appear.
	seen := map[float64]int{}
	for _, tp := range got {
		seen[tp.Values[0]]++
	}
	if len(seen) != 10 {
		t.Errorf("only %d distinct items drawn", len(seen))
	}
	if SampleWithReplacement(nil, 5, rng) != nil {
		t.Error("empty population should yield nil")
	}
	if SampleWithReplacement(pop, 0, rng) != nil {
		t.Error("zero draw should yield nil")
	}
}

func TestShuffle(t *testing.T) {
	ts := makeTuples(100)
	Shuffle(ts, rand.New(rand.NewSource(3)))
	moved := 0
	for i, tp := range ts {
		if int(tp.Values[0]) != i {
			moved++
		}
	}
	if moved < 50 {
		t.Errorf("shuffle moved only %d/100 tuples", moved)
	}
	// Multiset preserved.
	seen := make([]bool, 100)
	for _, tp := range ts {
		seen[int(tp.Values[0])] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("tuple %d lost by shuffle", i)
		}
	}
}
