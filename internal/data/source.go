package data

import (
	"errors"
	"io"
	"sync"
)

// Scanner iterates a dataset sequentially in batches. The tuples returned
// by Next (including their Values slices) are only valid until the
// following Next call; callers that retain tuples must Clone them.
// Next returns (nil, io.EOF) once the scan is exhausted.
type Scanner interface {
	Next() ([]Tuple, error)
	Close() error
}

// Source is a scannable training database. A Source may be scanned any
// number of times; each Scan starts a fresh sequential pass, modeling one
// scan over the training database D in the paper's cost accounting.
type Source interface {
	// Schema describes the tuples produced by this source.
	Schema() *Schema
	// Scan begins a new sequential scan.
	Scan() (Scanner, error)
	// Count returns the number of tuples if known without scanning.
	Count() (n int64, known bool)
}

// DefaultBatchSize is the number of tuples per Scanner batch used by the
// built-in sources.
const DefaultBatchSize = 1024

// ---------------------------------------------------------------------------
// In-memory source

// MemSource is an in-memory Source backed by a tuple slice. The slice is
// not copied; callers must not mutate it (or the tuples it holds) after
// the first scan — chunked scans serve from a columnar mirror built once.
type MemSource struct {
	schema *Schema
	tuples []Tuple

	mirrorOnce sync.Once
	mirror     *Chunk // columnar mirror of tuples, built on first ScanChunks
}

// NewMemSource wraps tuples as a Source.
func NewMemSource(schema *Schema, tuples []Tuple) *MemSource {
	return &MemSource{schema: schema, tuples: tuples}
}

// Schema implements Source.
func (m *MemSource) Schema() *Schema { return m.schema }

// Count implements Source.
func (m *MemSource) Count() (int64, bool) { return int64(len(m.tuples)), true }

// Tuples exposes the backing slice (read-only by convention).
func (m *MemSource) Tuples() []Tuple { return m.tuples }

// Scan implements Source.
func (m *MemSource) Scan() (Scanner, error) {
	return &memScanner{tuples: m.tuples}, nil
}

// ScanChunks implements ChunkedSource: chunks are served by column-wise
// copies from a columnar mirror of the tuple slice. The mirror is
// transposed once, on the first chunked scan, and amortized across every
// later pass (a build scans the source at least twice: sampling and
// cleanup).
func (m *MemSource) ScanChunks() (ChunkScanner, error) {
	m.mirrorOnce.Do(func() {
		c := NewChunk(len(m.schema.Attributes), len(m.tuples))
		for _, t := range m.tuples {
			c.AppendTuple(t)
		}
		m.mirror = c
	})
	return &memChunkScanner{mirror: m.mirror}, nil
}

type memChunkScanner struct {
	mirror *Chunk
	pos    int
}

func (s *memChunkScanner) NextChunk(dst *Chunk) error {
	total := s.mirror.Len()
	if s.pos >= total {
		return io.EOF
	}
	n := dst.Cap() - dst.Len()
	if rest := total - s.pos; n > rest {
		n = rest
	}
	dst.AppendFrom(s.mirror, s.pos, n)
	s.pos += n
	return nil
}

func (s *memChunkScanner) Close() error { return nil }

type memScanner struct {
	tuples []Tuple
	pos    int
}

func (s *memScanner) Next() ([]Tuple, error) {
	if s.pos >= len(s.tuples) {
		return nil, io.EOF
	}
	end := s.pos + DefaultBatchSize
	if end > len(s.tuples) {
		end = len(s.tuples)
	}
	batch := s.tuples[s.pos:end]
	s.pos = end
	return batch, nil
}

func (s *memScanner) Close() error { return nil }

// ---------------------------------------------------------------------------
// Helpers

// ForEach scans src once, invoking fn for every tuple. The tuple passed to
// fn is only valid during the call.
func ForEach(src Source, fn func(Tuple) error) error {
	sc, err := src.Scan()
	if err != nil {
		return err
	}
	defer sc.Close()
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			return sc.Close()
		}
		if err != nil {
			sc.Close()
			return err
		}
		for _, t := range batch {
			if err := fn(t); err != nil {
				sc.Close()
				return err
			}
		}
	}
}

// ReadAll scans src once and returns deep copies of all tuples. The
// copies share one backing array per batch of rows rather than paying one
// allocation per tuple.
func ReadAll(src Source) ([]Tuple, error) {
	var out []Tuple
	width := len(src.Schema().Attributes)
	var backing []float64
	if n, ok := src.Count(); ok {
		out = make([]Tuple, 0, n)
		backing = make([]float64, 0, int(n)*width)
	}
	err := ForEach(src, func(t Tuple) error {
		if cap(backing)-len(backing) < width {
			backing = make([]float64, 0, max(width*DefaultBatchSize, width))
		}
		start := len(backing)
		backing = append(backing, t.Values...)
		out = append(out, Tuple{Values: backing[start:len(backing):len(backing)], Class: t.Class})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountTuples scans src if necessary to determine its cardinality.
func CountTuples(src Source) (int64, error) {
	if n, ok := src.Count(); ok {
		return n, nil
	}
	var n int64
	err := ForEach(src, func(Tuple) error { n++; return nil })
	return n, err
}

// ErrSchemaMismatch is returned when a tuple stream does not match the
// expected schema.
var ErrSchemaMismatch = errors.New("data: schema mismatch")

// ConcatSource presents several sources with identical schemas as one
// logical dataset, scanned back to back. It is used to model a training
// database combined with newly arrived chunks without materializing the
// union.
type ConcatSource struct {
	schema *Schema
	parts  []Source
}

// NewConcatSource validates that all parts share a schema and returns the
// concatenation. At least one part is required.
func NewConcatSource(parts ...Source) (*ConcatSource, error) {
	if len(parts) == 0 {
		return nil, errors.New("data: concat of zero sources")
	}
	s := parts[0].Schema()
	for _, p := range parts[1:] {
		if !s.Equal(p.Schema()) {
			return nil, ErrSchemaMismatch
		}
	}
	return &ConcatSource{schema: s, parts: parts}, nil
}

// Schema implements Source.
func (c *ConcatSource) Schema() *Schema { return c.schema }

// Count implements Source.
func (c *ConcatSource) Count() (int64, bool) {
	var total int64
	for _, p := range c.parts {
		n, ok := p.Count()
		if !ok {
			return 0, false
		}
		total += n
	}
	return total, true
}

// Scan implements Source.
func (c *ConcatSource) Scan() (Scanner, error) {
	return &concatScanner{parts: c.parts}, nil
}

type concatScanner struct {
	parts []Source
	idx   int
	cur   Scanner
}

func (s *concatScanner) Next() ([]Tuple, error) {
	for {
		if s.cur == nil {
			if s.idx >= len(s.parts) {
				return nil, io.EOF
			}
			cur, err := s.parts[s.idx].Scan()
			if err != nil {
				return nil, err
			}
			s.cur = cur
			s.idx++
		}
		batch, err := s.cur.Next()
		if err == io.EOF {
			if cerr := s.cur.Close(); cerr != nil {
				return nil, cerr
			}
			s.cur = nil
			continue
		}
		return batch, err
	}
}

func (s *concatScanner) Close() error {
	if s.cur != nil {
		err := s.cur.Close()
		s.cur = nil
		return err
	}
	return nil
}
