package data

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// scanRowHashes drains a chunked scanner and returns the per-row hash
// sequence (Chunk.HashRows keys, file order).
func scanRowHashes(t *testing.T, label string, csc ChunkScanner, width, blockRows int) []uint64 {
	t.Helper()
	defer csc.Close()
	ch := NewChunk(width, blockRows)
	var out []uint64
	var buf []uint64
	for {
		ch.Reset()
		err := csc.NextChunk(ch)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		buf = ch.HashRows(buf[:0], nil)
		out = append(out, buf...)
	}
}

// shardRanges partitions [0, blocks) into w contiguous ranges, exactly
// as blockShardedScan does.
func shardRanges(blocks int64, w int) [][2]int64 {
	out := make([][2]int64, w)
	for i := 0; i < w; i++ {
		out[i] = [2]int64{int64(i) * blocks / int64(w), int64(i+1) * blocks / int64(w)}
	}
	return out
}

// TestColRangeUnionEqualsFullScan is the tentpole's core property: for
// random datasets x block sizes x worker counts, concatenating the
// OpenColRange shard scans in shard order reproduces the full-file scan
// exactly — same rows, same order (checked via the per-row hash
// sequence) — and every shard's Count() is exact.
func TestColRangeUnionEqualsFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := colTestSchema()
	width := len(schema.Attributes)
	for trial := 0; trial < 5; trial++ {
		n := 1 + rng.Intn(3000)
		blockRows := []int{32, 256, 1000}[trial%3]
		tuples := make([]Tuple, n)
		for i := range tuples {
			tuples[i] = Tuple{
				Values: []float64{rng.NormFloat64() * 1e4, float64(rng.Intn(8)), rng.Float64()},
				Class:  rng.Intn(3),
			}
		}
		path := writeColTestFile(t, tuples, blockRows)

		full, err := OpenColFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fsync, err := full.ScanChunksPipeline(PipelineConfig{Depth: -1})
		if err != nil {
			t.Fatal(err)
		}
		want := scanRowHashes(t, "full scan", fsync, width, blockRows)
		if int64(len(want)) != int64(n) {
			t.Fatalf("full scan saw %d rows, want %d", len(want), n)
		}

		for _, w := range []int{1, 2, 3, 8} {
			var got []uint64
			var total int64
			for _, r := range shardRanges(full.Blocks(), w) {
				shard, err := OpenColRange(path, r[0], r[1])
				if err != nil {
					t.Fatalf("OpenColRange[%d,%d): %v", r[0], r[1], err)
				}
				cnt, ok := shard.Count()
				if !ok {
					t.Fatalf("shard [%d,%d): Count not exact", r[0], r[1])
				}
				csc, err := shard.ScanChunksPipeline(PipelineConfig{Depth: 1, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				hashes := scanRowHashes(t, "shard scan", csc, width, blockRows)
				if int64(len(hashes)) != cnt {
					t.Fatalf("shard [%d,%d) scanned %d rows but Count() said %d", r[0], r[1], len(hashes), cnt)
				}
				total += cnt
				got = append(got, hashes...)
			}
			if total != int64(n) {
				t.Fatalf("n=%d blockRows=%d w=%d: shard counts sum to %d", n, blockRows, w, total)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d blockRows=%d w=%d: union has %d rows, want %d", n, blockRows, w, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d blockRows=%d w=%d: row %d hash mismatch", n, blockRows, w, i)
				}
			}
		}
	}
}

// TestColRangeV1HeaderWalk: version-1 files (no offset index) still
// support block ranges — the offsets are derived by the one-pass header
// walk — and the shard union matches the full scan.
func TestColRangeV1HeaderWalk(t *testing.T) {
	tuples := colTestTuples(777)
	path := filepath.Join(t.TempDir(), "v1.boatc")
	cw, err := createColFile(path, colTestSchema(), 100, colVersion1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		if err := cw.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.version != colVersion1 {
		t.Fatalf("version = %d, want %d", s.version, colVersion1)
	}
	offs, err := s.BlockOffsets()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(offs)) != s.Blocks()+1 {
		t.Fatalf("header walk produced %d offsets, want %d", len(offs), s.Blocks()+1)
	}
	width := len(s.Schema().Attributes)
	fsync, err := s.ScanChunksPipeline(PipelineConfig{Depth: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := scanRowHashes(t, "v1 full", fsync, width, 100)
	var got []uint64
	for _, r := range shardRanges(s.Blocks(), 3) {
		csc, err := s.ScanChunkRange(r[0], r[1], PipelineConfig{Depth: -1})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, scanRowHashes(t, "v1 shard", csc, width, 100)...)
	}
	if len(got) != len(want) {
		t.Fatalf("v1 union has %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("v1 union row %d hash mismatch", i)
		}
	}
}

// TestColRangeCorruptIndex: flipping a byte inside the version-2 offset
// index leaves full-file scans untouched (they never read the index) but
// fails any range scan with a typed ErrColChecksum.
func TestColRangeCorruptIndex(t *testing.T) {
	path := writeColTestFile(t, colTestTuples(500), 64)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The index sits between the block region and the 32-byte footer;
	// flip a byte a little before the footer's index-CRC tail.
	raw[len(raw)-colFooterLen-6] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenColFile(path)
	if err != nil {
		t.Fatalf("open should not read the index: %v", err)
	}
	width := len(s.Schema().Attributes)
	fsync, err := s.ScanChunksPipeline(PipelineConfig{Depth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rows := scanRowHashes(t, "full scan over corrupt index", fsync, width, 64); len(rows) != 500 {
		t.Fatalf("full scan saw %d rows, want 500", len(rows))
	}
	if _, err := s.ScanChunkRange(0, s.Blocks()/2, PipelineConfig{Depth: -1}); !errors.Is(err, ErrColChecksum) {
		t.Fatalf("range scan over corrupt index = %v, want ErrColChecksum", err)
	}
}

// TestColRangeValidation pins the Range contract: out-of-bounds and
// range-of-range requests are rejected, empty ranges scan zero rows.
func TestColRangeValidation(t *testing.T) {
	path := writeColTestFile(t, colTestTuples(300), 64)
	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Range(-1, 2); err == nil {
		t.Error("Range(-1,2) accepted")
	}
	if _, err := s.Range(0, s.Blocks()+1); err == nil {
		t.Error("Range past end accepted")
	}
	if _, err := s.Range(3, 2); err == nil {
		t.Error("inverted Range accepted")
	}
	view, err := s.Range(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.Range(0, 1); err == nil {
		t.Error("range of a range accepted")
	}
	if lo, hi := view.BlockRange(); lo != 1 || hi != 3 {
		t.Errorf("BlockRange = [%d,%d), want [1,3)", lo, hi)
	}
	empty, err := s.Range(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cnt, _ := empty.Count(); cnt != 0 {
		t.Errorf("empty range Count = %d", cnt)
	}
	csc, err := empty.ScanChunksPipeline(PipelineConfig{Depth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rows := scanRowHashes(t, "empty range", csc, len(s.Schema().Attributes), 64); len(rows) != 0 {
		t.Errorf("empty range scanned %d rows", len(rows))
	}
}
