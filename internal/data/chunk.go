package data

import (
	"io"
	"math"
	"sync"
)

// Chunk is a columnar (structure-of-arrays) batch of tuples: one flat
// []float64 backing array holding every attribute column contiguously,
// plus an []int32 class column. The cleanup scan and the batched count
// kernels (CatAVC.AddBatch, Histogram.AddBatch, NumMoments.AddBatch)
// operate on chunks instead of individual Tuples, which removes the
// per-tuple allocation and per-tuple virtual-call overhead of the
// row-at-a-time path and keeps each kernel's working set (one attribute
// column plus one statistic) hot across thousands of rows.
//
// Layout: attribute a's column occupies vals[a*stride : a*stride+n] where
// stride is the chunk's row capacity, so Col(a) is a contiguous slice.
// A Chunk costs exactly two allocations regardless of capacity and is
// reusable via Reset; ChunkPool recycles chunks across scans.
type Chunk struct {
	width  int
	stride int
	n      int
	vals   []float64
	class  []int32

	// zones, when zoneRows == n, summarize every row per column (min/max,
	// NaN presence, categorical code bitmap). Only the columnar block-file
	// scan paths populate them — rows appended by anything else leave
	// zoneRows behind n, which invalidates the summaries. See ColZone.
	zones    []ColZone
	zoneRows int
}

// DefaultChunkRows is the row capacity used by the built-in chunked scan
// paths when the caller does not choose one.
const DefaultChunkRows = 4096

// NewChunk allocates an empty chunk for tuples of the given width
// (attribute count) with capacity rows.
func NewChunk(width, rows int) *Chunk {
	if width < 1 {
		width = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Chunk{
		width:  width,
		stride: rows,
		vals:   make([]float64, width*rows),
		class:  make([]int32, rows),
	}
}

// Len returns the number of rows currently held.
func (c *Chunk) Len() int { return c.n }

// Cap returns the row capacity.
func (c *Chunk) Cap() int { return c.stride }

// Width returns the attribute count.
func (c *Chunk) Width() int { return c.width }

// Full reports whether the chunk is at capacity.
func (c *Chunk) Full() bool { return c.n >= c.stride }

// Reset empties the chunk, keeping its storage.
func (c *Chunk) Reset() { c.n, c.zoneRows = 0, 0 }

// Col returns attribute a's column: one value per row, contiguous.
func (c *Chunk) Col(a int) []float64 { return c.vals[a*c.stride : a*c.stride+c.n] }

// Classes returns the class-label column (one code per row).
func (c *Chunk) Classes() []int32 { return c.class[:c.n] }

// Value returns the value of attribute a in row r.
func (c *Chunk) Value(r, a int) float64 { return c.vals[a*c.stride+r] }

// Class returns the class label of row r.
func (c *Chunk) Class(r int) int { return int(c.class[r]) }

// AppendTuple transposes one row-major tuple into the columns. The chunk
// must not be full.
func (c *Chunk) AppendTuple(t Tuple) {
	r := c.n
	for a, v := range t.Values {
		c.vals[a*c.stride+r] = v
	}
	c.class[r] = int32(t.Class)
	c.n++
}

// AppendRow transposes one row of raw values into the columns. The chunk
// must not be full; len(vals) must equal Width.
func (c *Chunk) AppendRow(vals []float64, class int) {
	r := c.n
	for a, v := range vals {
		c.vals[a*c.stride+r] = v
	}
	c.class[r] = int32(class)
	c.n++
}

// Gather copies row r's values into dst (which must have length Width).
func (c *Chunk) Gather(r int, dst []float64) {
	for a := range dst {
		dst[a] = c.vals[a*c.stride+r]
	}
}

// AppendFrom bulk-appends rows [from, from+n) of src, which must have the
// same width; the copy is one contiguous memmove per column. The chunk
// must have room for n more rows.
func (c *Chunk) AppendFrom(src *Chunk, from, n int) {
	for a := 0; a < c.width; a++ {
		copy(c.vals[a*c.stride+c.n:], src.vals[a*src.stride+from:a*src.stride+from+n])
	}
	copy(c.class[c.n:], src.class[from:from+n])
	c.n += n
}

// AppendGather appends the rows of src selected by idx, column by column:
// each column is a gathered read from one hot source column and a
// sequential write, instead of a per-row strided scatter. Same width
// required; the chunk must have room for len(idx) more rows.
func (c *Chunk) AppendGather(src *Chunk, idx []int32) {
	n := len(idx)
	for a := 0; a < c.width; a++ {
		dst := c.vals[a*c.stride+c.n : a*c.stride+c.n+n]
		col := src.vals[a*src.stride:]
		for i, r := range idx {
			dst[i] = col[r]
		}
	}
	cls := c.class[c.n : c.n+n]
	for i, r := range idx {
		cls[i] = src.class[r]
	}
	c.n += n
}

// AppendRowOf appends row r of src (same width; the chunk must not be
// full).
func (c *Chunk) AppendRowOf(src *Chunk, r int) {
	for a := 0; a < c.width; a++ {
		c.vals[a*c.stride+c.n] = src.vals[a*src.stride+r]
	}
	c.class[c.n] = src.class[r]
	c.n++
}

// TupleCopy returns a freshly allocated row-major copy of row r.
func (c *Chunk) TupleCopy(r int) Tuple {
	vals := make([]float64, c.width)
	c.Gather(r, vals)
	return Tuple{Values: vals, Class: c.Class(r)}
}

// GatherRows returns row-major copies of the rows named by idx (all rows
// when idx is nil). All copies share one backing array — one allocation
// for the batch instead of one per row — and the transpose runs column by
// column: sequential (or gathered) reads from each hot source column
// instead of a strided scatter per row.
func (c *Chunk) GatherRows(idx []int32) []Tuple {
	n := c.n
	if idx != nil {
		n = len(idx)
	}
	if n == 0 {
		return nil
	}
	w := c.width
	backing := make([]float64, n*w)
	for a := 0; a < w; a++ {
		col := c.vals[a*c.stride:]
		if idx == nil {
			for r := 0; r < n; r++ {
				backing[r*w+a] = col[r]
			}
		} else {
			for j, r := range idx {
				backing[j*w+a] = col[r]
			}
		}
	}
	out := make([]Tuple, n)
	if idx == nil {
		for r := range out {
			out[r] = Tuple{Values: backing[r*w : (r+1)*w : (r+1)*w], Class: int(c.class[r])}
		}
	} else {
		for j, r := range idx {
			out[j] = Tuple{Values: backing[j*w : (j+1)*w : (j+1)*w], Class: int(c.class[r])}
		}
	}
	return out
}

// HashRows computes Tuple.Hash64 for the rows named by idx (all rows when
// idx is nil), reusing dst's capacity. The hashes are bit-identical to
// hashing each row's materialized Tuple — same FNV-1a byte walk, same NaN
// canonicalization — but evaluated column by column: the ~8 dependent
// multiplies per value then belong to independent per-row chains that the
// pipeline overlaps, where the row-major walk serializes them. The batch
// removal paths of TupleBag lean on this for their bucket keys.
func (c *Chunk) HashRows(dst []uint64, idx []int32) []uint64 {
	const offset64 = 14695981039346656037
	n := c.n
	if idx != nil {
		n = len(idx)
	}
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	for j := range dst {
		dst[j] = offset64
	}
	for a := 0; a < c.width; a++ {
		col := c.vals[a*c.stride:]
		if idx == nil {
			for r := 0; r < n; r++ {
				v := col[r]
				b := math.Float64bits(v)
				if v != v {
					b = canonicalNaNBits
				}
				dst[r] = fnvMix(dst[r], b)
			}
		} else {
			for j, r := range idx {
				v := col[r]
				b := math.Float64bits(v)
				if v != v {
					b = canonicalNaNBits
				}
				dst[j] = fnvMix(dst[j], b)
			}
		}
	}
	if idx == nil {
		for r := 0; r < n; r++ {
			dst[r] = fnvMix(dst[r], uint64(int(c.class[r])))
		}
	} else {
		for j, r := range idx {
			dst[j] = fnvMix(dst[j], uint64(int(c.class[r])))
		}
	}
	return dst
}

// fnvMix folds one 64-bit word into an FNV-1a state byte-wise, exactly as
// Tuple.Hash64 does (low byte first).
func fnvMix(h, b uint64) uint64 {
	const prime64 = 1099511628211
	h = (h ^ (b & 0xff)) * prime64
	h = (h ^ (b >> 8 & 0xff)) * prime64
	h = (h ^ (b >> 16 & 0xff)) * prime64
	h = (h ^ (b >> 24 & 0xff)) * prime64
	h = (h ^ (b >> 32 & 0xff)) * prime64
	h = (h ^ (b >> 40 & 0xff)) * prime64
	h = (h ^ (b >> 48 & 0xff)) * prime64
	h = (h ^ (b >> 56 & 0xff)) * prime64
	return h
}

// ---------------------------------------------------------------------------
// Zone maps

// ColZone is a per-column summary (a "zone map") of a row range: the
// min/max over non-NaN values, whether any NaN occurred, and — for
// columns whose every value is an integer code in [0, 64) — a presence
// bitmap of those codes. The columnar block file stores one ColZone per
// column per block; the routing scans use them to send an entire chunk
// down one side of a split without running the per-row partition kernel.
//
// The summaries over-approximate: a zone valid for a row set is valid for
// any subset of it, so a routing decision made from a chunk's zone holds
// at every depth of the chunk's descent.
type ColZone struct {
	// Min and Max bound every non-NaN value; meaningful only when Valid.
	Min, Max float64
	// Codes is the presence bitmap of integer codes; meaningful only when
	// CodesValid.
	Codes uint64
	// HasNaN reports whether any value is NaN (exact when Valid).
	HasNaN bool
	// Valid reports that Min/Max/HasNaN describe the rows (at least one
	// non-NaN value was seen).
	Valid bool
	// CodesValid reports that every value is an integer in [0, 64) and
	// present in Codes.
	CodesValid bool
}

// merge widens z to also cover everything o covers.
func (z *ColZone) merge(o ColZone) {
	if z.Valid && o.Valid {
		if o.Min < z.Min {
			z.Min = o.Min
		}
		if o.Max > z.Max {
			z.Max = o.Max
		}
	} else {
		z.Valid = false
	}
	z.HasNaN = z.HasNaN || o.HasNaN
	z.Codes |= o.Codes
	z.CodesValid = z.CodesValid && o.CodesValid
}

// Zone returns the zone summary of attribute a and whether it covers
// every row currently in the chunk. It reports false whenever any row was
// appended without an accompanying AbsorbZones call (the summaries would
// under-approximate), so consumers can rely on a true result uncondition-
// ally.
func (c *Chunk) Zone(a int) (ColZone, bool) {
	if c.n == 0 || c.zoneRows != c.n || a < 0 || a >= len(c.zones) {
		return ColZone{}, false
	}
	z := c.zones[a]
	return z, z.Valid || z.CodesValid
}

// AbsorbZones merges per-column summaries covering the rows appended
// since the chunk held prevLen rows. If other rows arrived without
// summaries, zone tracking for this fill is abandoned (until Reset).
// len(z) must be at least Width.
func (c *Chunk) AbsorbZones(z []ColZone, prevLen int) {
	if prevLen != c.zoneRows || len(z) < c.width {
		c.zoneRows = -1
		return
	}
	if len(c.zones) < c.width {
		c.zones = make([]ColZone, c.width)
	}
	if prevLen == 0 {
		copy(c.zones, z[:c.width])
	} else {
		for a := 0; a < c.width; a++ {
			c.zones[a].merge(z[a])
		}
	}
	c.zoneRows = c.n
}

// AbsorbZonesFrom merges src's zone summaries (which must cover all of
// src) for rows appended from it since the chunk held prevLen rows.
func (c *Chunk) AbsorbZonesFrom(src *Chunk, prevLen int) {
	if src.n == 0 || src.zoneRows != src.n || len(src.zones) < src.width {
		c.zoneRows = -1
		return
	}
	c.AbsorbZones(src.zones, prevLen)
}

// ChunkPool recycles chunks of one fixed geometry. It is safe for
// concurrent use; the sharded cleanup scan's dealer gets chunks from the
// pool and the routing workers put them back once merged.
type ChunkPool struct {
	width, rows int
	pool        sync.Pool
}

// NewChunkPool creates a pool of width×rows chunks.
func NewChunkPool(width, rows int) *ChunkPool {
	if rows < 1 {
		rows = DefaultChunkRows
	}
	return &ChunkPool{width: width, rows: rows}
}

// Rows returns the row capacity of the pool's chunks.
func (p *ChunkPool) Rows() int { return p.rows }

// Get returns an empty chunk (recycled if available).
func (p *ChunkPool) Get() *Chunk {
	if c, ok := p.pool.Get().(*Chunk); ok {
		c.Reset()
		return c
	}
	return NewChunk(p.width, p.rows)
}

// Put recycles a chunk obtained from Get.
func (p *ChunkPool) Put(c *Chunk) {
	if c != nil {
		p.pool.Put(c)
	}
}

// ---------------------------------------------------------------------------
// Chunked scanning

// ChunkScanner iterates a dataset sequentially in columnar chunks.
// NextChunk fills the caller-supplied (empty) chunk with up to Cap rows
// and returns io.EOF once the scan is exhausted; because the caller owns
// the chunk storage, chunked scans hand over batches without copying them
// a second time.
type ChunkScanner interface {
	// NextChunk appends up to dst.Cap()-dst.Len() rows into dst. It
	// returns io.EOF (with dst unchanged) once the source is exhausted;
	// a partial fill is not an error.
	NextChunk(dst *Chunk) error
	Close() error
}

// ChunkedSource is implemented by sources with a native columnar scan
// path (decoding or generating straight into chunk columns). Sources
// without one are adapted from their row Scanner by ScanChunks.
type ChunkedSource interface {
	Source
	ScanChunks() (ChunkScanner, error)
}

// ScanChunks begins a chunked scan over src: the source's native columnar
// scan when it implements ChunkedSource, otherwise an adapter that packs
// the row Scanner's batches into the destination chunks.
func ScanChunks(src Source) (ChunkScanner, error) {
	if cs, ok := src.(ChunkedSource); ok {
		return cs.ScanChunks()
	}
	sc, err := src.Scan()
	if err != nil {
		return nil, err
	}
	return &rowChunkScanner{sc: sc}, nil
}

// rowChunkScanner adapts a row Scanner to the chunked interface.
type rowChunkScanner struct {
	sc    Scanner
	batch []Tuple
	pos   int
	done  bool
}

func (s *rowChunkScanner) NextChunk(dst *Chunk) error {
	filled := false
	for !dst.Full() {
		if s.pos >= len(s.batch) {
			if s.done {
				break
			}
			batch, err := s.sc.Next()
			if err == io.EOF {
				s.done = true
				break
			}
			if err != nil {
				return err
			}
			s.batch, s.pos = batch, 0
			continue
		}
		dst.AppendTuple(s.batch[s.pos])
		s.pos++
		filled = true
	}
	if !filled && dst.Len() == 0 {
		return io.EOF
	}
	return nil
}

func (s *rowChunkScanner) Close() error { return s.sc.Close() }

// ForEachChunk scans src once in chunks of the given row capacity,
// invoking fn for every non-empty chunk. The chunk (and its columns) is
// only valid during the call; it is reused between invocations.
func ForEachChunk(src Source, rows int, fn func(*Chunk) error) error {
	sc, err := ScanChunks(src)
	if err != nil {
		return err
	}
	defer sc.Close()
	ch := NewChunk(len(src.Schema().Attributes), rows)
	for {
		ch.Reset()
		err := sc.NextChunk(ch)
		if err == io.EOF {
			return sc.Close()
		}
		if err != nil {
			sc.Close()
			return err
		}
		if ch.Len() == 0 {
			continue
		}
		if err := fn(ch); err != nil {
			sc.Close()
			return err
		}
	}
}
