package data

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	s := twoAttrSchema(t)
	tuples := makeTuples(2500)
	for _, format := range []Format{FormatCompact, FormatWide} {
		t.Run(format.name(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "data.boat")
			n, err := WriteFile(path, NewMemSource(s, tuples), format)
			if err != nil {
				t.Fatal(err)
			}
			if n != 2500 {
				t.Fatalf("wrote %d tuples", n)
			}
			fs, err := OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !fs.Schema().Equal(s) {
				t.Error("schema did not round-trip")
			}
			if c, ok := fs.Count(); !ok || c != 2500 {
				t.Fatalf("Count = %d,%v", c, ok)
			}
			got, err := ReadAll(fs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tuples {
				if !got[i].Equal(tuples[i]) {
					t.Fatalf("tuple %d: got %v want %v", i, got[i], tuples[i])
				}
			}
		})
	}
}

func (f Format) name() string {
	if f == FormatCompact {
		return "compact"
	}
	return "wide"
}

func TestFileTupleSize(t *testing.T) {
	s := twoAttrSchema(t)
	if got := FormatCompact.TupleSize(s); got != 12 {
		t.Errorf("compact tuple size = %d, want 12", got)
	}
	if got := FormatWide.TupleSize(s); got != 20 {
		t.Errorf("wide tuple size = %d, want 20", got)
	}
	// The paper's 9-attribute schema must be 40 bytes in compact format.
	nine := make([]Attribute, 9)
	for i := range nine {
		nine[i] = Attribute{Name: string(rune('a' + i)), Kind: Numeric}
	}
	s9 := MustSchema(nine, 2)
	if got := FormatCompact.TupleSize(s9); got != 40 {
		t.Errorf("9-attribute compact tuple size = %d, want 40", got)
	}
}

func TestFileRescannable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.boat")
	s := twoAttrSchema(t)
	if _, err := WriteFile(path, NewMemSource(s, makeTuples(100)), FormatWide); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		n, err := CountTuplesByScan(fs)
		if err != nil || n != 100 {
			t.Fatalf("pass %d: %d tuples, err %v", pass, n, err)
		}
	}
}

// CountTuplesByScan forces a real scan (Count is known for files).
func CountTuplesByScan(src Source) (int64, error) {
	var n int64
	err := ForEach(src, func(Tuple) error { n++; return nil })
	return n, err
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()

	t.Run("missing", func(t *testing.T) {
		if _, err := OpenFile(filepath.Join(dir, "nope")); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		p := filepath.Join(dir, "junk")
		if err := os.WriteFile(p, []byte("NOTBOATXXXXXXXXXXXX"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(p); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		p := filepath.Join(dir, "trunc")
		if _, err := WriteFile(p, NewMemSource(twoAttrSchema(t), makeTuples(10)), FormatWide); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(p)
		if err := os.Truncate(p, st.Size()-3); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(p); err == nil {
			t.Error("expected error for torn tuple")
		}
	})
}

func TestFileWriterSchemaMismatch(t *testing.T) {
	fw, err := CreateFile(filepath.Join(t.TempDir(), "x"), twoAttrSchema(t), FormatWide)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	if err := fw.Append(Tuple{Values: []float64{1}, Class: 0}); err == nil {
		t.Error("expected schema mismatch")
	}
}

func TestFileWriterAppendAfterClose(t *testing.T) {
	fw, err := CreateFile(filepath.Join(t.TempDir(), "x"), twoAttrSchema(t), FormatWide)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Append(Tuple{Values: []float64{1, 2}, Class: 0}); err == nil {
		t.Error("expected error appending after close")
	}
	if err := fw.Close(); err != nil {
		t.Errorf("double close should be a no-op, got %v", err)
	}
}

func TestCompactFormatPreservesIntegers(t *testing.T) {
	// The synthetic generator only emits integers below 2^24, which the
	// compact float32 encoding must preserve exactly.
	s := MustSchema([]Attribute{{Name: "v", Kind: Numeric}}, 2)
	var tuples []Tuple
	for _, v := range []float64{0, 1, 1350000, 16777215, 499999, 20000} {
		tuples = append(tuples, Tuple{Values: []float64{v}, Class: 0})
	}
	path := filepath.Join(t.TempDir(), "ints.boat")
	if _, err := WriteFile(path, NewMemSource(s, tuples), FormatCompact); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tuples {
		if got[i].Values[0] != tuples[i].Values[0] {
			t.Errorf("value %v not preserved: got %v", tuples[i].Values[0], got[i].Values[0])
		}
	}
}
