package data

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"
)

// writePipelineFile materializes n two-attribute tuples into a columnar
// file with the given block size and returns its path.
func writePipelineFile(t *testing.T, n, blockRows int) string {
	t.Helper()
	schema := MustSchema([]Attribute{
		{Name: "a", Kind: Numeric},
		{Name: "b", Kind: Numeric},
	}, 2)
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Values: []float64{float64(i), float64(i % 97)}, Class: i % 2}
	}
	path := t.TempDir() + "/p.boatc"
	if _, err := WriteColFile(path, NewMemSource(schema, tuples), blockRows); err != nil {
		t.Fatal(err)
	}
	return path
}

// drainPipeline reads the whole file under cfg and returns the first
// column's values in delivery order.
func drainPipeline(t *testing.T, path string, cfg PipelineConfig, chunkRows int) []float64 {
	t.Helper()
	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.ScanChunksPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ch := NewChunk(2, chunkRows)
	var out []float64
	for {
		ch.Reset()
		err := sc.NextChunk(ch)
		out = append(out, ch.Col(0)...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if ch.Len() == 0 {
			return out
		}
	}
}

// TestPipelineDeterminism is the pipeline's core contract: the delivered
// tuple stream is bit-identical to the synchronous reader at every depth,
// worker count and consumer chunk size.
func TestPipelineDeterminism(t *testing.T) {
	const n = 1300
	path := writePipelineFile(t, n, 64) // 21 blocks, short tail
	ref := drainPipeline(t, path, PipelineConfig{Depth: -1}, 64)
	if len(ref) != n {
		t.Fatalf("reference scan saw %d rows, want %d", len(ref), n)
	}
	configs := []PipelineConfig{
		{Depth: 1, Workers: 1},
		{Depth: 4, Workers: 1},
		{Depth: 4, Workers: 4},
		{Depth: 8, Workers: 2},
		{}, // defaults
	}
	for _, cfg := range configs {
		for _, chunkRows := range []int{64, 100, 512} {
			name := fmt.Sprintf("d%d-w%d-c%d", cfg.Depth, cfg.Workers, chunkRows)
			got := drainPipeline(t, path, cfg, chunkRows)
			if len(got) != n {
				t.Fatalf("%s: %d rows, want %d", name, len(got), n)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%s: row %d = %v, want %v (delivery out of file order)", name, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestPipelineErrorOrdering: an error in block k surfaces only after every
// block before k was delivered, on the same ordered path as the data.
func TestPipelineErrorOrdering(t *testing.T) {
	path := writePipelineFile(t, 1300, 64)
	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find block 5's offset by walking the length prefixes, then flip a
	// payload byte.
	off := s.headerLen
	for b := 0; b < 5; b++ {
		off += 4 + blockLenAt(t, path, off) + 4
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1)
	if _, err := f.ReadAt(raw, off+20); err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x55
	if _, err := f.WriteAt(raw, off+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := src.ScanChunksPipeline(PipelineConfig{Depth: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ch := NewChunk(2, 64)
	rows := 0
	var scanErr error
	for {
		ch.Reset()
		if scanErr = sc.NextChunk(ch); scanErr != nil {
			break
		}
		if ch.Len() == 0 {
			break
		}
		rows += ch.Len()
	}
	if !errors.Is(scanErr, ErrColChecksum) {
		t.Fatalf("scan error %v, want ErrColChecksum", scanErr)
	}
	var be *BlockError
	if !errors.As(scanErr, &be) || be.Block != 5 {
		t.Fatalf("error %v, want BlockError at block 5", scanErr)
	}
	if rows != 5*64 {
		t.Fatalf("%d rows delivered before the error, want %d (blocks 0-4 intact, in order)", rows, 5*64)
	}
}

// requireGoroutinesSettle waits for the goroutine count to return to the
// baseline, failing if pipeline goroutines leak.
func requireGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPipelineEarlyClose: abandoning a scan mid-stream reclaims the reader
// and every decode worker, whether or not any chunk was consumed.
func TestPipelineEarlyClose(t *testing.T) {
	path := writePipelineFile(t, 2000, 64)
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		s, err := OpenColFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := s.ScanChunksPipeline(PipelineConfig{Depth: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if round > 0 { // round 0 closes without consuming anything
			ch := NewChunk(2, 64)
			if err := sc.NextChunk(ch); err != nil {
				t.Fatal(err)
			}
		}
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}
		if err := sc.Close(); err != nil { // Close is idempotent
			t.Fatalf("second Close: %v", err)
		}
	}
	requireGoroutinesSettle(t, baseline)
}

// TestPipelineNextAfterClose: a closed pipeline refuses further reads
// instead of deadlocking on its torn-down ring.
func TestPipelineNextAfterClose(t *testing.T) {
	path := writePipelineFile(t, 200, 64)
	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.ScanChunksPipeline(PipelineConfig{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sc.NextChunk(NewChunk(2, 64)); err == nil || err == io.EOF {
		t.Fatalf("NextChunk after Close = %v, want an error", err)
	}
}

// TestPipelineStats: a completed pipelined scan reports its configuration
// and volumes; the synchronous path reports nothing.
func TestPipelineStats(t *testing.T) {
	const n = 1300
	path := writePipelineFile(t, n, 64)
	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.ScanChunksPipeline(PipelineConfig{Depth: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ch := NewChunk(2, 256)
	for {
		ch.Reset()
		if err := sc.NextChunk(ch); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if ch.Len() == 0 {
			break
		}
	}
	pr, ok := sc.(PipelineReporter)
	if !ok {
		t.Fatal("pipelined scanner does not report stats")
	}
	ps := pr.PipelineStats()
	if !ps.Enabled || ps.Depth != 4 || ps.Workers != 2 {
		t.Fatalf("stats = %+v, want enabled depth 4 workers 2", ps)
	}
	if ps.Blocks != s.Blocks() {
		t.Fatalf("stats saw %d blocks, want %d", ps.Blocks, s.Blocks())
	}
	if ps.PhysBytes < s.SizeBytes() {
		t.Fatalf("PhysBytes = %d, want >= payload %d", ps.PhysBytes, s.SizeBytes())
	}
	if ps.Start.IsZero() {
		t.Fatal("stats carry no start time")
	}
	phys, ok := sc.(PhysicalReader)
	if !ok || phys.PhysicalBytesRead() != ps.PhysBytes {
		t.Fatalf("PhysicalBytesRead inconsistent with stats")
	}
}

// TestScanChunksPipelinedFallback: sources without a pipeline still scan
// through the uniform entry point.
func TestScanChunksPipelinedFallback(t *testing.T) {
	schema := MustSchema([]Attribute{{Name: "a", Kind: Numeric}}, 2)
	tuples := make([]Tuple, 300)
	for i := range tuples {
		tuples[i] = Tuple{Values: []float64{float64(i)}, Class: i % 2}
	}
	sc, err := ScanChunksPipelined(NewMemSource(schema, tuples), PipelineConfig{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ch := NewChunk(1, 128)
	rows := 0
	for {
		ch.Reset()
		err := sc.NextChunk(ch)
		rows += ch.Len()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ch.Len() == 0 {
			break
		}
	}
	if rows != 300 {
		t.Fatalf("fallback scan saw %d rows, want 300", rows)
	}
}

// TestPipelineConfigNormalized pins the knob semantics Config documents:
// zero depth selects the default, negatives mean synchronous, and both
// axes are clamped.
func TestPipelineConfigNormalized(t *testing.T) {
	if got := (PipelineConfig{}).normalized(); got.Depth != DefaultPipelineDepth || got.Workers < 1 {
		t.Fatalf("zero config normalized to %+v", got)
	}
	if got := (PipelineConfig{Depth: -7}).normalized(); got.Depth != -1 {
		t.Fatalf("negative depth normalized to %d, want -1", got.Depth)
	}
	if got := (PipelineConfig{Depth: 1000, Workers: 1000}).normalized(); got.Depth != 64 || got.Workers != 32 {
		t.Fatalf("oversized config normalized to %+v", got)
	}
}

// recordingObserver captures every live backpressure reading the pipeline
// emits. Readings arrive on the consumer's goroutine (one per delivered
// block), so no locking is needed here.
type recordingObserver struct {
	readings []PipelineLive
}

func (r *recordingObserver) ObservePipeline(l PipelineLive) {
	r.readings = append(r.readings, l)
}

// TestPipelineObserver: the observer sees exactly one reading per
// delivered block, with monotonically increasing block counts and sane
// gauge values, while the delivered data stays bit-identical.
func TestPipelineObserver(t *testing.T) {
	const n = 1300
	path := writePipelineFile(t, n, 64) // 21 blocks
	ref := drainPipeline(t, path, PipelineConfig{Depth: -1}, 64)

	obs := &recordingObserver{}
	got := drainPipeline(t, path, PipelineConfig{Depth: 4, Workers: 2, Observer: obs}, 64)
	if len(got) != n {
		t.Fatalf("observed scan saw %d rows, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("observer changed delivery: row %d = %v, want %v", i, got[i], ref[i])
		}
	}
	if len(obs.readings) != 21 {
		t.Fatalf("observer saw %d readings, want one per block (21)", len(obs.readings))
	}
	for i, l := range obs.readings {
		if l.Blocks != int64(i+1) {
			t.Fatalf("reading %d: Blocks = %d, want %d", i, l.Blocks, i+1)
		}
		if l.InFlight < 0 || l.InFlight > 4 {
			t.Fatalf("reading %d: InFlight = %d outside [0, depth]", i, l.InFlight)
		}
		if l.Ring < 0 || l.Read < 0 || l.Decode < 0 || l.Deliver < 0 {
			t.Fatalf("reading %d: negative gauge: %+v", i, l)
		}
	}
	last := obs.readings[len(obs.readings)-1]
	if last.Decode <= 0 {
		t.Fatalf("final reading has zero decode time: %+v", last)
	}
}

// TestPipelineObserverFallback: non-pipelined sources never emit
// readings — the observer hook is a pipeline feature, not a scan feature.
func TestPipelineObserverFallback(t *testing.T) {
	schema := MustSchema([]Attribute{{Name: "a", Kind: Numeric}}, 2)
	tuples := make([]Tuple, 100)
	for i := range tuples {
		tuples[i] = Tuple{Values: []float64{float64(i)}, Class: 0}
	}
	obs := &recordingObserver{}
	sc, err := ScanChunksPipelined(NewMemSource(schema, tuples), PipelineConfig{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ch := NewChunk(1, 64)
	for {
		ch.Reset()
		if err := sc.NextChunk(ch); err == io.EOF || ch.Len() == 0 {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if len(obs.readings) != 0 {
		t.Fatalf("fallback scan emitted %d pipeline readings", len(obs.readings))
	}
}
