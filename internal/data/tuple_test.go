package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleCloneIndependence(t *testing.T) {
	orig := Tuple{Values: []float64{1, 2, 3}, Class: 1}
	c := orig.Clone()
	c.Values[0] = 99
	if orig.Values[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if !orig.Equal(Tuple{Values: []float64{1, 2, 3}, Class: 1}) {
		t.Error("original mutated")
	}
}

func TestTupleEqual(t *testing.T) {
	a := Tuple{Values: []float64{1, 2}, Class: 0}
	cases := []struct {
		name string
		b    Tuple
		want bool
	}{
		{"identical", Tuple{Values: []float64{1, 2}, Class: 0}, true},
		{"different value", Tuple{Values: []float64{1, 3}, Class: 0}, false},
		{"different class", Tuple{Values: []float64{1, 2}, Class: 1}, false},
		{"different arity", Tuple{Values: []float64{1}, Class: 0}, false},
	}
	for _, tc := range cases {
		if got := a.Equal(tc.b); got != tc.want {
			t.Errorf("%s: Equal = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTupleKeyProperties(t *testing.T) {
	// Key equality must coincide with Equal for random tuples.
	f := func(v1, v2 float64, c1, c2 uint8) bool {
		a := Tuple{Values: []float64{v1, v2}, Class: int(c1 % 4)}
		b := Tuple{Values: []float64{v1, v2}, Class: int(c2 % 4)}
		if a.Class == b.Class {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Distinct values must produce distinct keys.
	a := Tuple{Values: []float64{1, 2}, Class: 0}
	b := Tuple{Values: []float64{1, 3}, Class: 0}
	if a.Key() == b.Key() {
		t.Error("distinct tuples share a key")
	}
	// Negative zero and zero differ bitwise; Key is bit-exact by design.
	nz := Tuple{Values: []float64{0.0}, Class: 0}
	pz := Tuple{Values: []float64{-0.0 * 1}, Class: 0}
	_ = nz
	_ = pz
}

func TestCloneTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]Tuple, 10)
	for i := range src {
		src[i] = Tuple{Values: []float64{rng.Float64()}, Class: i % 2}
	}
	cp := CloneTuples(src)
	cp[0].Values[0] = -1
	if src[0].Values[0] == -1 {
		t.Error("CloneTuples shares backing arrays")
	}
	for i := range src[1:] {
		if !cp[i+1].Equal(src[i+1]) {
			t.Errorf("tuple %d not equal after clone", i+1)
		}
	}
}

func TestTupleString(t *testing.T) {
	s := Tuple{Values: []float64{1, 2.5}, Class: 1}.String()
	if s != "(1,2.5 | class=1)" {
		t.Errorf("String = %q", s)
	}
}
