package data

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
)

// SpillRecorder receives accounting callbacks when a buffer overflows its
// memory budget and writes tuples to temporary storage. iostats.Stats
// implements it (and FaultRecorder, its failure/retry extension).
type SpillRecorder interface {
	RecordSpill(tuples, bytes int64)
}

// MemBudget is a shared in-memory tuple budget. Spill buffers attached to
// the same budget collectively hold at most Limit tuples in memory; beyond
// that they overflow to temporary files. A nil *MemBudget means unlimited
// memory; Limit == 0 also means unlimited; Limit < 0 means zero capacity
// (every tuple spills — used by Split for the surplus slices of a budget
// smaller than the worker count). All methods are safe for concurrent use,
// so buffers owned by different worker goroutines may share one budget.
//
// This models the paper's low run-time memory requirement: the sets S_n of
// tuples inside the confidence intervals are kept in memory when possible
// and written to temporary files otherwise (Section 3.3).
type MemBudget struct {
	Limit int64

	mu   sync.Mutex
	used int64
}

// NewMemBudget returns a budget of limit tuples (0 = unlimited,
// negative = zero capacity).
func NewMemBudget(limit int64) *MemBudget { return &MemBudget{Limit: limit} }

func (b *MemBudget) tryAcquire(n int64) bool {
	if b == nil || b.Limit == 0 {
		return true
	}
	if b.Limit < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.Limit {
		return false
	}
	b.used += n
	return true
}

// acquireUpTo acquires as many of n tuples as the budget allows in one
// locked step and returns the count. The greedy in-order semantics match
// a loop of tryAcquire(1): the first `acquired` tuples of a batch stay in
// memory and the rest spill — exactly the split a per-tuple append
// sequence would produce, so batch appends do not change what spills.
func (b *MemBudget) acquireUpTo(n int64) int64 {
	if b == nil || b.Limit == 0 {
		return n
	}
	if b.Limit < 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	avail := b.Limit - b.used
	if avail > n {
		avail = n
	}
	if avail < 0 {
		avail = 0
	}
	b.used += avail
	return avail
}

func (b *MemBudget) release(n int64) {
	if b == nil || b.Limit <= 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
	b.mu.Unlock()
}

// Used returns the tuples currently held in memory against the budget.
func (b *MemBudget) Used() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Split carves the budget into n independent per-worker slices whose
// limits sum to exactly the parent limit, so n workers filling private
// buffers concurrently can never exceed the global budget between them.
// The remainder is distributed one tuple at a time to the first Limit%n
// slices; when Limit < n the surplus slices get zero capacity (every
// append spills) rather than oversubscribing the parent. An unlimited
// (or nil) budget yields unlimited slices.
func (b *MemBudget) Split(n int) []*MemBudget {
	if n < 1 {
		n = 1
	}
	out := make([]*MemBudget, n)
	if b == nil || b.Limit <= 0 {
		return out // nil slices: unlimited
	}
	per := b.Limit / int64(n)
	extra := b.Limit % int64(n)
	for i := range out {
		lim := per
		if int64(i) < extra {
			lim++
		}
		if lim == 0 {
			lim = -1 // zero capacity, NOT unlimited
		}
		out[i] = NewMemBudget(lim)
	}
	return out
}

// SpillEnv bundles the resources a spill buffer writes through: the
// overflow directory, the shared memory budget, the accounting recorder,
// the filesystem (nil = the real one) and the transient-error retry
// policy. The zero value is valid: unlimited memory, os.TempDir overflow,
// no accounting, default retries.
type SpillEnv struct {
	// Dir is the directory for temporary overflow files ("" = os.TempDir).
	Dir string
	// Budget is the shared in-memory tuple budget (nil = unlimited).
	Budget *MemBudget
	// Rec receives spill accounting (and, if it implements FaultRecorder,
	// failure/retry accounting); may be nil.
	Rec SpillRecorder
	// FS is the filesystem to write through (nil = OsFS).
	FS FS
	// Retry bounds retry-with-backoff for transient storage errors.
	Retry RetryPolicy
	// Log, when non-nil, receives structured records for spill-path
	// anomalies: a warning per transient-error retry and an error when a
	// fault survives the retry policy and poisons the buffer.
	Log *slog.Logger
}

func (e SpillEnv) fs() FS { return fsOrDefault(e.FS) }

// ---------------------------------------------------------------------------
// spillWriter

// spillFlushBytes is the buffered-bytes threshold that triggers a flush to
// the overflow file.
const spillFlushBytes = 1 << 16

// spillWriter buffers encoded tuples and writes them to the overflow file
// with transient-error retry. Unlike bufio.Writer, a failed flush keeps
// the unwritten suffix buffered and tracks exactly how many bytes are
// durable, so the file never holds a torn tuple that a later append or
// scan would decode misaligned: file[0:durable] + buf is always a whole
// number of tuples.
type spillWriter struct {
	f         File
	retry     RetryPolicy
	rec       SpillRecorder // spill accounting (durable bytes only)
	frec      FaultRecorder // retry/failure accounting
	log       *slog.Logger  // may be nil
	tupleSize int

	buf      []byte
	durable  int64 // bytes successfully written to f
	reported int64 // whole tuples already reported to rec
}

// append buffers one encoded tuple and flushes once the buffer is full.
func (w *spillWriter) append(p []byte) error {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= spillFlushBytes {
		return w.flush()
	}
	return nil
}

// flush writes the buffered bytes to the file, retrying transient errors
// with exponential backoff. Whatever could not be written stays buffered;
// spill accounting covers only bytes that durably reached the file.
func (w *spillWriter) flush() error {
	p := w.retry.withDefaults()
	backoff := p.Backoff
	tries := 0
	for len(w.buf) > 0 {
		n, err := w.f.Write(w.buf)
		if n > 0 {
			w.durable += int64(n)
			if w.rec != nil {
				whole := w.durable / int64(w.tupleSize)
				if whole > w.reported {
					w.rec.RecordSpill(whole-w.reported, int64(n))
					w.reported = whole
				}
			}
			w.buf = w.buf[:copy(w.buf, w.buf[n:])]
		}
		if err == nil {
			tries = 0
			continue
		}
		if !IsTransient(err) || tries >= p.Attempts-1 {
			if w.frec != nil {
				w.frec.RecordSpillError()
			}
			if w.log != nil {
				w.log.Error("spill write failed permanently; buffer poisoned",
					"file", w.f.Name(), "err", err, "tries", tries+1)
			}
			return &SpillError{Op: "write", Err: err}
		}
		tries++
		if w.frec != nil {
			w.frec.RecordSpillRetry()
		}
		if w.log != nil {
			w.log.Warn("transient spill write fault; retrying",
				"file", w.f.Name(), "err", err, "try", tries, "backoff", backoff)
		}
		p.Sleep(backoff)
		backoff *= 2
	}
	return nil
}

// ---------------------------------------------------------------------------
// SpillBuffer

// SpillBuffer accumulates tuples in memory up to a shared budget and spills
// the overflow to a temporary file. It implements Source, so a spilled
// buffer can be scanned (and even used as the training database of a
// recursive BOAT invocation).
//
// Failure semantics: a write failure that survives the retry policy
// poisons the buffer — later Appends are refused with a SpillError
// wrapping ErrSpillPoisoned — but everything appended before the failure
// (including the tuple whose flush failed, which stays buffered in memory)
// remains scannable, and Close always releases the memory budget and
// removes the overflow file. Reset also recovers a poisoned buffer for
// reuse, provided the file can be truncated.
type SpillBuffer struct {
	schema *Schema
	env    SpillEnv
	// The in-memory part is stored as columnar chunks, free of pointers:
	// no per-tuple Tuple struct or Values header is kept, so the garbage
	// collector never scans the buffer and appends issue no write
	// barriers. Chunks fill sequentially (every chunk before the active
	// one is full) and batch appends copy column-wise; Tuple views are
	// materialized only when a row scan asks for them.
	memChunks []*Chunk
	active    int // index of the chunk receiving appends
	memN      int // in-memory row count
	file      File
	w         *spillWriter
	encBuf    []byte
	spilled   int64
	poisoned  error
	closed    bool
}

// spillChunkRows is the row capacity of each in-memory storage chunk.
const spillChunkRows = 1024

// memRows returns the in-memory row count.
func (sb *SpillBuffer) memRows() int { return sb.memN }

// tail returns the chunk the next append lands in, with room for at least
// one row.
func (sb *SpillBuffer) tail() *Chunk {
	if len(sb.memChunks) == 0 {
		sb.memChunks = append(sb.memChunks, NewChunk(len(sb.schema.Attributes), spillChunkRows))
		sb.active = 0
	}
	c := sb.memChunks[sb.active]
	if c.Full() {
		sb.active++
		if sb.active == len(sb.memChunks) {
			sb.memChunks = append(sb.memChunks, NewChunk(len(sb.schema.Attributes), spillChunkRows))
		}
		c = sb.memChunks[sb.active]
	}
	return c
}

// NewSpillBuffer creates an empty buffer over the real filesystem with
// default retries. dir is the directory for the temporary overflow file
// ("" = os.TempDir()); budget and rec may be nil.
func NewSpillBuffer(schema *Schema, dir string, budget *MemBudget, rec SpillRecorder) *SpillBuffer {
	return NewSpillBufferEnv(schema, SpillEnv{Dir: dir, Budget: budget, Rec: rec})
}

// NewSpillBufferEnv creates an empty buffer writing through env.
func NewSpillBufferEnv(schema *Schema, env SpillEnv) *SpillBuffer {
	return &SpillBuffer{schema: schema, env: env}
}

// Schema implements Source.
func (sb *SpillBuffer) Schema() *Schema { return sb.schema }

// Count implements Source.
func (sb *SpillBuffer) Count() (int64, bool) { return sb.Len(), true }

// Len returns the number of buffered tuples.
func (sb *SpillBuffer) Len() int64 { return int64(sb.memRows()) + sb.spilled }

// SpilledTuples returns how many tuples live in the overflow path (file
// plus the not-yet-durable write buffer).
func (sb *SpillBuffer) SpilledTuples() int64 { return sb.spilled }

// Err returns the poison cause if an overflow write failed for good, nil
// otherwise. A poisoned buffer refuses Append but remains scannable.
func (sb *SpillBuffer) Err() error { return sb.poisoned }

// Append copies t into the buffer (into the arena, or the overflow path
// once memory is exhausted).
func (sb *SpillBuffer) Append(t Tuple) error {
	if sb.closed {
		return errors.New("data: append to closed spill buffer")
	}
	if len(t.Values) != len(sb.schema.Attributes) {
		return ErrSchemaMismatch
	}
	if sb.file == nil && sb.env.Budget.tryAcquire(1) {
		sb.tail().AppendTuple(t)
		sb.memN++
		return nil
	}
	return sb.spill(t)
}

// AppendChunkRow copies row r of ch into the buffer straight from the
// chunk columns, without materializing an intermediate Tuple.
func (sb *SpillBuffer) AppendChunkRow(ch *Chunk, r int) error {
	if sb.closed {
		return errors.New("data: append to closed spill buffer")
	}
	if ch.Width() != len(sb.schema.Attributes) {
		return ErrSchemaMismatch
	}
	if sb.file == nil && sb.env.Budget.tryAcquire(1) {
		sb.tail().AppendRowOf(ch, r)
		sb.memN++
		return nil
	}
	if err := sb.spillCheck(); err != nil {
		return err
	}
	sb.encBuf = encodeChunkRow(sb.encBuf[:0], FormatWide, ch, r)
	sb.spillEncoded()
	return nil
}

// AppendChunkRows copies the chunk rows named by idx (all rows when idx is
// nil) into the buffer. The in-memory portion is copied column-wise in
// bulk; whatever the memory budget refuses spills row by row, split at
// exactly the row a per-row append sequence would have spilled from.
func (sb *SpillBuffer) AppendChunkRows(ch *Chunk, idx []int32) error {
	if sb.closed {
		return errors.New("data: append to closed spill buffer")
	}
	if ch.Width() != len(sb.schema.Attributes) {
		return ErrSchemaMismatch
	}
	n := ch.Len()
	if idx != nil {
		n = len(idx)
	}
	if n == 0 {
		return nil
	}
	take := 0
	if sb.file == nil {
		take = int(sb.env.Budget.acquireUpTo(int64(n)))
		pos := 0
		for pos < take {
			t := sb.tail()
			m := t.Cap() - t.Len()
			if rest := take - pos; m > rest {
				m = rest
			}
			if idx == nil {
				t.AppendFrom(ch, pos, m)
			} else {
				t.AppendGather(ch, idx[pos:pos+m])
			}
			pos += m
		}
		sb.memN += take
		if take == n {
			return nil
		}
	}
	for i := take; i < n; i++ {
		r := i
		if idx != nil {
			r = int(idx[i])
		}
		if err := sb.spillCheck(); err != nil {
			return err
		}
		sb.encBuf = encodeChunkRow(sb.encBuf[:0], FormatWide, ch, r)
		sb.spillEncoded()
	}
	return nil
}

// spillCheck refuses appends on a poisoned buffer and lazily creates the
// overflow file.
func (sb *SpillBuffer) spillCheck() error {
	if sb.poisoned != nil {
		return &SpillError{Op: "append", Err: fmt.Errorf("%w: %w", ErrSpillPoisoned, sb.poisoned)}
	}
	if sb.file == nil {
		fs := sb.env.fs()
		frec := faultRecorderOf(sb.env.Rec)
		var f File
		err := sb.env.Retry.Do(frec, func() error {
			var cerr error
			f, cerr = fs.CreateTemp(sb.env.Dir, "boat-spill-*.tmp")
			return cerr
		})
		if err != nil {
			if frec != nil {
				frec.RecordSpillError()
			}
			return &SpillError{Op: "create", Err: err}
		}
		registerTemp(f.Name())
		sb.file = f
		sb.w = &spillWriter{
			f:         f,
			retry:     sb.env.Retry,
			rec:       sb.env.Rec,
			frec:      frec,
			log:       sb.env.Log,
			tupleSize: FormatWide.TupleSize(sb.schema),
		}
	}
	return nil
}

func (sb *SpillBuffer) spill(t Tuple) error {
	if err := sb.spillCheck(); err != nil {
		return err
	}
	sb.encBuf = encodeTuple(sb.encBuf[:0], FormatWide, t)
	sb.spillEncoded()
	return nil
}

// spillEncoded hands sb.encBuf to the overflow writer. A write failure
// does not fail the append — the tuple itself is retained (a failed flush
// keeps the unwritten suffix buffered), so the append still succeeds
// logically; what is lost is the ability to keep writing. The buffer is
// poisoned so the next append fails fast instead of growing memory
// unboundedly.
func (sb *SpillBuffer) spillEncoded() {
	if err := sb.w.append(sb.encBuf); err != nil {
		sb.poisoned = err
	}
	sb.spilled++
}

// Scan implements Source: iterates the in-memory part then the spilled
// part. The buffer must not be appended to while a scan is open. Scans
// never require a flush — they read the durable file prefix and replay the
// write buffer — so even a poisoned buffer yields its complete, correctly
// aligned contents.
func (sb *SpillBuffer) Scan() (Scanner, error) {
	if sb.closed {
		return nil, errors.New("data: scan of closed spill buffer")
	}
	var fsc *fileScanner
	if sb.w != nil && sb.spilled > 0 {
		var parts []io.Reader
		var closer io.Closer
		if sb.w.durable > 0 {
			var f io.ReadCloser
			err := sb.env.Retry.Do(faultRecorderOf(sb.env.Rec), func() error {
				var oerr error
				f, oerr = sb.env.fs().Open(sb.file.Name())
				return oerr
			})
			if err != nil {
				return nil, &SpillError{Op: "open", Err: err}
			}
			parts = append(parts, io.LimitReader(f, sb.w.durable))
			closer = f
		}
		if len(sb.w.buf) > 0 {
			parts = append(parts, bytes.NewReader(sb.w.buf))
		}
		fsc = &fileScanner{
			c:         closer,
			r:         bufio.NewReaderSize(io.MultiReader(parts...), 1<<18),
			format:    FormatWide,
			tupleSize: FormatWide.TupleSize(sb.schema),
			remaining: sb.spilled,
		}
		fsc.alloc(len(sb.schema.Attributes))
	}
	return &spillScanner{mem: &spillMemScanner{sb: sb}, file: fsc}, nil
}

// spillMemScanner materializes row-major Tuple batches over the columnar
// in-memory chunks on demand, one storage chunk per Next.
type spillMemScanner struct {
	sb *SpillBuffer
	ci int
}

func (s *spillMemScanner) Next() ([]Tuple, error) {
	for s.ci < len(s.sb.memChunks) {
		c := s.sb.memChunks[s.ci]
		s.ci++
		if c.Len() == 0 {
			continue
		}
		width := len(s.sb.schema.Attributes)
		views := make([]Tuple, c.Len())
		backing := make([]float64, c.Len()*width)
		for a := 0; a < width; a++ {
			for r, v := range c.Col(a) {
				backing[r*width+a] = v
			}
		}
		for r := range views {
			views[r] = Tuple{
				Values: backing[r*width : (r+1)*width : (r+1)*width],
				Class:  c.Class(r),
			}
		}
		return views, nil
	}
	return nil, io.EOF
}

func (s *spillMemScanner) Close() error { return nil }

type spillScanner struct {
	mem  *spillMemScanner
	file *fileScanner
}

func (s *spillScanner) Next() ([]Tuple, error) {
	if s.mem != nil {
		batch, err := s.mem.Next()
		if err == nil {
			return batch, nil
		}
		if err != io.EOF {
			return nil, err
		}
		s.mem = nil
	}
	if s.file != nil {
		batch, err := s.file.Next()
		if err != nil && err != io.EOF {
			return nil, &SpillError{Op: "scan", Err: err}
		}
		return batch, err
	}
	return nil, io.EOF
}

func (s *spillScanner) Close() error {
	if s.file != nil {
		err := s.file.Close()
		s.file = nil
		return err
	}
	return nil
}

// Reset discards the contents, releasing memory budget and truncating the
// overflow file (which is kept open for reuse). Resetting also clears the
// poisoned state: after a successful Reset the buffer accepts appends
// again. If the file cannot be truncated the buffer stays poisoned.
func (sb *SpillBuffer) Reset() error {
	sb.env.Budget.release(int64(sb.memRows()))
	// The storage chunks are kept: the buffer is typically refilled to a
	// similar size after a reset (re-scans, repeated benchmark passes),
	// and retaining the pointer-free chunks avoids re-growing from scratch.
	for _, c := range sb.memChunks {
		c.Reset()
	}
	sb.active, sb.memN = 0, 0
	if sb.file != nil {
		if err := sb.file.Truncate(0); err != nil {
			sb.poisoned = err
			return &SpillError{Op: "truncate", Err: err}
		}
		if _, err := sb.file.Seek(0, io.SeekStart); err != nil {
			sb.poisoned = err
			return &SpillError{Op: "truncate", Err: err}
		}
		sb.w.buf = sb.w.buf[:0]
		sb.w.durable = 0
		sb.w.reported = 0
	}
	sb.spilled = 0
	sb.poisoned = nil
	return nil
}

// Close releases all resources including the overflow file. It always
// frees the memory budget, and retries transient removal failures so that
// error paths provably clean up what they created; the file is only left
// behind (and stays in the temp registry) if removal fails for good.
func (sb *SpillBuffer) Close() error {
	if sb.closed {
		return nil
	}
	sb.closed = true
	sb.env.Budget.release(int64(sb.memRows()))
	sb.memChunks, sb.active, sb.memN = nil, 0, 0
	if sb.file == nil {
		return nil
	}
	name := sb.file.Name()
	var firstErr error
	if err := sb.file.Close(); err != nil {
		firstErr = &SpillError{Op: "close", Err: err}
	}
	sb.file = nil
	sb.w = nil
	fs := sb.env.fs()
	frec := faultRecorderOf(sb.env.Rec)
	err := sb.env.Retry.Do(frec, func() error { return fs.Remove(name) })
	if err != nil {
		if frec != nil {
			frec.RecordSpillError()
		}
		if firstErr == nil {
			firstErr = &SpillError{Op: "remove", Err: err}
		}
		return firstErr
	}
	unregisterTemp(name)
	return firstErr
}
