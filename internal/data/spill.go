package data

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// SpillRecorder receives accounting callbacks when a buffer overflows its
// memory budget and writes tuples to temporary storage. iostats.Stats
// implements it.
type SpillRecorder interface {
	RecordSpill(tuples, bytes int64)
}

// MemBudget is a shared in-memory tuple budget. Spill buffers attached to
// the same budget collectively hold at most Limit tuples in memory; beyond
// that they overflow to temporary files. A nil *MemBudget means unlimited
// memory. The zero Limit also means unlimited. All methods are safe for
// concurrent use, so buffers owned by different worker goroutines may
// share one budget.
//
// This models the paper's low run-time memory requirement: the sets S_n of
// tuples inside the confidence intervals are kept in memory when possible
// and written to temporary files otherwise (Section 3.3).
type MemBudget struct {
	Limit int64

	mu   sync.Mutex
	used int64
}

// NewMemBudget returns a budget of limit tuples (0 = unlimited).
func NewMemBudget(limit int64) *MemBudget { return &MemBudget{Limit: limit} }

func (b *MemBudget) tryAcquire(n int64) bool {
	if b == nil || b.Limit <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.Limit {
		return false
	}
	b.used += n
	return true
}

func (b *MemBudget) release(n int64) {
	if b == nil || b.Limit <= 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
	b.mu.Unlock()
}

// Used returns the tuples currently held in memory against the budget.
func (b *MemBudget) Used() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Split carves the budget into n independent per-worker slices whose
// limits sum to at most the parent limit, so n workers filling private
// buffers concurrently can never exceed the global budget between them.
// An unlimited (or nil) budget yields unlimited slices.
func (b *MemBudget) Split(n int) []*MemBudget {
	out := make([]*MemBudget, n)
	if b == nil || b.Limit <= 0 {
		return out // nil slices: unlimited
	}
	per := b.Limit / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range out {
		out[i] = NewMemBudget(per)
	}
	return out
}

// SpillBuffer accumulates tuples in memory up to a shared budget and spills
// the overflow to a temporary file. It implements Source, so a spilled
// buffer can be scanned (and even used as the training database of a
// recursive BOAT invocation).
type SpillBuffer struct {
	schema  *Schema
	budget  *MemBudget
	rec     SpillRecorder
	dir     string
	mem     []Tuple
	file    *os.File
	w       *bufio.Writer
	encBuf  []byte
	spilled int64
	closed  bool
}

// NewSpillBuffer creates an empty buffer. dir is the directory for the
// temporary overflow file ("" = os.TempDir()); budget and rec may be nil.
func NewSpillBuffer(schema *Schema, dir string, budget *MemBudget, rec SpillRecorder) *SpillBuffer {
	return &SpillBuffer{schema: schema, budget: budget, rec: rec, dir: dir}
}

// Schema implements Source.
func (sb *SpillBuffer) Schema() *Schema { return sb.schema }

// Count implements Source.
func (sb *SpillBuffer) Count() (int64, bool) { return sb.Len(), true }

// Len returns the number of buffered tuples.
func (sb *SpillBuffer) Len() int64 { return int64(len(sb.mem)) + sb.spilled }

// SpilledTuples returns how many tuples live in the overflow file.
func (sb *SpillBuffer) SpilledTuples() int64 { return sb.spilled }

// Append clones t into the buffer.
func (sb *SpillBuffer) Append(t Tuple) error {
	if sb.closed {
		return errors.New("data: append to closed spill buffer")
	}
	if len(t.Values) != len(sb.schema.Attributes) {
		return ErrSchemaMismatch
	}
	if sb.file == nil && sb.budget.tryAcquire(1) {
		sb.mem = append(sb.mem, t.Clone())
		return nil
	}
	return sb.spill(t)
}

func (sb *SpillBuffer) spill(t Tuple) error {
	if sb.file == nil {
		f, err := os.CreateTemp(sb.dir, "boat-spill-*.tmp")
		if err != nil {
			return fmt.Errorf("data: creating spill file: %w", err)
		}
		sb.file = f
		sb.w = bufio.NewWriterSize(f, 1<<16)
	}
	sb.encBuf = encodeTuple(sb.encBuf[:0], FormatWide, t)
	if _, err := sb.w.Write(sb.encBuf); err != nil {
		return err
	}
	sb.spilled++
	if sb.rec != nil {
		sb.rec.RecordSpill(1, int64(len(sb.encBuf)))
	}
	return nil
}

// Scan implements Source: iterates the in-memory part then the spilled
// part. The buffer must not be appended to while a scan is open.
func (sb *SpillBuffer) Scan() (Scanner, error) {
	if sb.closed {
		return nil, errors.New("data: scan of closed spill buffer")
	}
	var fsc *fileScanner
	if sb.file != nil {
		if err := sb.w.Flush(); err != nil {
			return nil, err
		}
		f, err := os.Open(sb.file.Name())
		if err != nil {
			return nil, err
		}
		fsc = &fileScanner{
			f:         f,
			r:         bufio.NewReaderSize(f, 1<<18),
			format:    FormatWide,
			tupleSize: FormatWide.TupleSize(sb.schema),
			remaining: sb.spilled,
		}
		fsc.alloc(len(sb.schema.Attributes))
	}
	return &spillScanner{mem: &memScanner{tuples: sb.mem}, file: fsc}, nil
}

type spillScanner struct {
	mem  *memScanner
	file *fileScanner
}

func (s *spillScanner) Next() ([]Tuple, error) {
	if s.mem != nil {
		batch, err := s.mem.Next()
		if err == nil {
			return batch, nil
		}
		if err != io.EOF {
			return nil, err
		}
		s.mem = nil
	}
	if s.file != nil {
		return s.file.Next()
	}
	return nil, io.EOF
}

func (s *spillScanner) Close() error {
	if s.file != nil {
		err := s.file.Close()
		s.file = nil
		return err
	}
	return nil
}

// Reset discards the contents, releasing memory budget and truncating the
// overflow file (which is kept open for reuse).
func (sb *SpillBuffer) Reset() error {
	sb.budget.release(int64(len(sb.mem)))
	sb.mem = nil
	if sb.file != nil {
		sb.w.Reset(sb.file)
		if err := sb.file.Truncate(0); err != nil {
			return err
		}
		if _, err := sb.file.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	sb.spilled = 0
	return nil
}

// Close releases all resources including the overflow file.
func (sb *SpillBuffer) Close() error {
	if sb.closed {
		return nil
	}
	sb.closed = true
	sb.budget.release(int64(len(sb.mem)))
	sb.mem = nil
	if sb.file != nil {
		name := sb.file.Name()
		sb.file.Close()
		sb.file = nil
		return os.Remove(name)
	}
	return nil
}
