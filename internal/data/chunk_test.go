package data

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestChunkColumnLayout(t *testing.T) {
	c := NewChunk(2, 4)
	if c.Width() != 2 || c.Cap() != 4 || c.Len() != 0 {
		t.Fatalf("fresh chunk geometry: width=%d cap=%d len=%d", c.Width(), c.Cap(), c.Len())
	}
	for i := 0; i < 3; i++ {
		c.AppendTuple(Tuple{Values: []float64{float64(i), float64(10 + i)}, Class: i % 2})
	}
	if c.Len() != 3 || c.Full() {
		t.Fatalf("len=%d full=%v after 3 of 4 rows", c.Len(), c.Full())
	}
	for a := 0; a < 2; a++ {
		col := c.Col(a)
		if len(col) != 3 {
			t.Fatalf("Col(%d) length %d", a, len(col))
		}
		for r, v := range col {
			want := float64(10*a + r)
			if v != want {
				t.Errorf("Col(%d)[%d] = %v, want %v", a, r, v, want)
			}
			if c.Value(r, a) != want {
				t.Errorf("Value(%d,%d) = %v, want %v", r, a, c.Value(r, a), want)
			}
		}
	}
	for r := 0; r < 3; r++ {
		if c.Class(r) != r%2 {
			t.Errorf("Class(%d) = %d", r, c.Class(r))
		}
		got := make([]float64, 2)
		c.Gather(r, got)
		if got[0] != float64(r) || got[1] != float64(10+r) {
			t.Errorf("Gather(%d) = %v", r, got)
		}
		tp := c.TupleCopy(r)
		if tp.Values[0] != float64(r) || tp.Class != r%2 {
			t.Errorf("TupleCopy(%d) = %v", r, tp)
		}
	}
	c.AppendRow([]float64{3, 13}, 1)
	if !c.Full() {
		t.Fatal("chunk should be full after 4 rows")
	}
	c.Reset()
	if c.Len() != 0 || c.Full() {
		t.Fatal("Reset did not empty the chunk")
	}
}

// collectChunks drains a chunked scan of src with the given row capacity
// into a row-major tuple slice.
func collectChunks(t *testing.T, src Source, rows int) []Tuple {
	t.Helper()
	var out []Tuple
	err := ForEachChunk(src, rows, func(ch *Chunk) error {
		if ch.Len() > rows {
			t.Fatalf("chunk of %d rows exceeds capacity %d", ch.Len(), rows)
		}
		for r := 0; r < ch.Len(); r++ {
			out = append(out, ch.TupleCopy(r))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func requireSameTuples(t *testing.T, label string, got, want []Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: tuple %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestScanChunksEquivalence: for every source kind (in-memory with its
// native transposing scan, file sources in both formats with their direct
// columnar decoder, and a row-only source through the adapter), a chunked
// scan at any chunk size yields exactly the row scan's tuples in order.
func TestScanChunksEquivalence(t *testing.T) {
	schema := twoAttrSchema(t)
	tuples := makeTuples(2*DefaultBatchSize + 37)
	mem := NewMemSource(schema, tuples)
	want, err := ReadAll(mem)
	if err != nil {
		t.Fatal(err)
	}

	sources := map[string]Source{
		"mem":     mem,
		"rowOnly": rowOnlySource{mem},
	}
	dir := t.TempDir()
	for _, f := range []Format{FormatWide, FormatCompact} {
		path := filepath.Join(dir, fmt.Sprintf("d%d.bin", f))
		if _, err := WriteFile(path, mem, f); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sources[fmt.Sprintf("file-format%d", f)] = fs
	}

	for name, src := range sources {
		for _, rows := range []int{1, 7, 64, DefaultChunkRows} {
			t.Run(fmt.Sprintf("%s/rows=%d", name, rows), func(t *testing.T) {
				got := collectChunks(t, src, rows)
				wantHere := want
				if name == "file-format1" {
					// The compact format stores float32 values; compare
					// against the round-tripped row scan instead.
					wantHere, _ = ReadAll(src)
				}
				requireSameTuples(t, name, got, wantHere)
			})
		}
	}
}

// rowOnlySource hides MemSource's native chunked scan, forcing the
// rowChunkScanner adapter.
type rowOnlySource struct{ inner *MemSource }

func (r rowOnlySource) Schema() *Schema        { return r.inner.Schema() }
func (r rowOnlySource) Scan() (Scanner, error) { return r.inner.Scan() }
func (r rowOnlySource) Count() (int64, bool)   { return r.inner.Count() }

func TestChunkPoolRecycles(t *testing.T) {
	p := NewChunkPool(2, 8)
	c := p.Get()
	c.AppendRow([]float64{1, 2}, 1)
	p.Put(c)
	got := p.Get()
	if got.Len() != 0 {
		t.Fatalf("recycled chunk not reset: len=%d", got.Len())
	}
	if got.Cap() != 8 || got.Width() != 2 {
		t.Fatalf("recycled chunk geometry: cap=%d width=%d", got.Cap(), got.Width())
	}
}

// TestReservoirSampleMatchesRowReference pins the chunked reservoir
// sampler to the row-at-a-time formulation: same source, same seed, same
// sample. The RNG must be consumed identically (one Int63n per tuple once
// the reservoir is full), or seeded builds would stop reproducing.
func TestReservoirSampleMatchesRowReference(t *testing.T) {
	schema := twoAttrSchema(t)
	src := NewMemSource(schema, makeTuples(3*DefaultChunkRows+11))
	for _, n := range []int{1, 100, 1000} {
		got, err := ReservoirSample(src, n, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}

		// Row-at-a-time reference (the pre-columnar implementation).
		rng := rand.New(rand.NewSource(42))
		var want []Tuple
		var seen int64
		err = ForEach(src, func(tp Tuple) error {
			seen++
			if len(want) < n {
				want = append(want, tp.Clone())
				return nil
			}
			j := rng.Int63n(seen)
			if j < int64(n) {
				want[j] = tp.Clone()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSameTuples(t, fmt.Sprintf("n=%d", n), got, want)
	}
}

func TestHashRowsMatchesTupleHash64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewChunk(5, 64)
	for r := 0; r < 50; r++ {
		vals := make([]float64, 5)
		for a := range vals {
			switch rng.Intn(5) {
			case 0:
				vals[a] = nan()
			case 1:
				vals[a] = -vals[a] // negative zero occasionally
			default:
				vals[a] = rng.NormFloat64() * 1e3
			}
		}
		c.AppendTuple(Tuple{Values: vals, Class: rng.Intn(4)})
	}
	check := func(idx []int32, label string) {
		hashes := c.HashRows(nil, idx)
		rows := c.GatherRows(idx)
		n := c.Len()
		if idx != nil {
			n = len(idx)
		}
		if len(hashes) != n || len(rows) != n {
			t.Fatalf("%s: got %d hashes, %d rows, want %d", label, len(hashes), len(rows), n)
		}
		for j := range hashes {
			r := j
			if idx != nil {
				r = int(idx[j])
			}
			want := c.TupleCopy(r)
			if !rows[j].Equal(want) || rows[j].Class != want.Class {
				t.Errorf("%s: GatherRows row %d = %v, want %v", label, j, rows[j], want)
			}
			if hashes[j] != want.Hash64() {
				t.Errorf("%s: HashRows row %d = %#x, want %#x", label, j, hashes[j], want.Hash64())
			}
		}
	}
	check(nil, "all rows")
	check([]int32{0, 3, 7, 7, 49, 12}, "index subset")
	// Reused destination capacity must not leak previous hashes.
	buf := c.HashRows(nil, nil)
	again := c.HashRows(buf, []int32{1, 2})
	if again[0] != c.TupleCopy(1).Hash64() || again[1] != c.TupleCopy(2).Hash64() {
		t.Error("HashRows with reused buffer produced wrong hashes")
	}
}

func nan() float64 {
	var z float64
	return z / z
}
