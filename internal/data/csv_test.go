package data

import (
	"math"
	"os"
	"strings"
	"testing"
)

const csvSample = `age,color,income,label
25,red,50000,yes
40,blue,60000,no
31,red,52000,yes
55,green,80000,no
22,blue,20000,yes
48,green,75000,no
`

func TestReadCSVInference(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(csvSample), CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.NumAttrs() != 3 || ds.Schema.ClassCount != 2 {
		t.Fatalf("schema: %d attrs %d classes", ds.Schema.NumAttrs(), ds.Schema.ClassCount)
	}
	a := ds.Schema.Attributes
	if a[0].Name != "age" || a[0].Kind != Numeric {
		t.Errorf("attr0 = %+v", a[0])
	}
	if a[1].Name != "color" || a[1].Kind != Categorical || a[1].Cardinality != 3 {
		t.Errorf("attr1 = %+v", a[1])
	}
	if a[2].Name != "income" || a[2].Kind != Numeric {
		t.Errorf("attr2 = %+v", a[2])
	}
	// Dictionaries are sorted: blue=0, green=1, red=2; no=0, yes=1.
	if ds.AttrValues[1][0] != "blue" || ds.AttrValues[1][2] != "red" {
		t.Errorf("color dictionary %v", ds.AttrValues[1])
	}
	if ds.ClassNames[0] != "no" || ds.ClassNames[1] != "yes" {
		t.Errorf("class names %v", ds.ClassNames)
	}
	if len(ds.Tuples) != 6 {
		t.Fatalf("%d tuples", len(ds.Tuples))
	}
	first := ds.Tuples[0]
	if first.Values[0] != 25 || first.Values[1] != 2 /* red */ || first.Values[2] != 50000 {
		t.Errorf("first tuple %v", first)
	}
	if code, ok := ds.ClassCode("yes"); !ok || first.Class != code {
		t.Errorf("first class %d", first.Class)
	}
	for _, tp := range ds.Tuples {
		if err := ds.Schema.CheckTuple(tp); err != nil {
			t.Fatalf("invalid tuple: %v", err)
		}
	}
	if n, _ := CountTuples(ds.Source()); n != 6 {
		t.Errorf("source count %d", n)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1,a,x\n2,b,y\n3,a,x\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.Attributes[0].Name != "col0" || ds.Schema.Attributes[1].Name != "col1" {
		t.Errorf("default names: %+v", ds.Schema.Attributes)
	}
}

func TestReadCSVClassColumn(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("yes,1,2\nno,3,4\n"), CSVOptions{ClassColumn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.NumAttrs() != 2 || ds.Schema.ClassCount != 2 {
		t.Fatalf("schema %+v", ds.Schema)
	}
	if ds.Tuples[0].Values[0] != 1 {
		t.Errorf("first predictor %v", ds.Tuples[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		opts CSVOptions
	}{
		{"empty", "", CSVOptions{}},
		{"header only", "a,b\n", CSVOptions{HasHeader: true}},
		{"one column", "x\ny\n", CSVOptions{}},
		{"ragged", "1,2\n1,2,3\n", CSVOptions{}},
		{"single class", "1,x\n2,x\n", CSVOptions{}},
		{"constant categorical", "a,1,x\na,2,y\n", CSVOptions{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.csv), tc.opts); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadCSVCardinalityLimit(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 70; i++ {
		sb.WriteString(strings.Repeat("x", i+1))
		sb.WriteString(",yes\n")
		sb.WriteString(strings.Repeat("y", i+1))
		sb.WriteString(",no\n")
	}
	if _, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{}); err == nil {
		t.Error("over-cardinality categorical column accepted")
	}
}

func TestReadCSVSemicolon(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1;a;x\n2;b;y\n"), CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.NumAttrs() != 2 {
		t.Errorf("schema %+v", ds.Schema)
	}
}

func TestReadCSVFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/d.csv"
	if err := writeFileString(path, csvSample); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadCSVFile(path, CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Tuples) != 6 {
		t.Fatalf("%d tuples", len(ds.Tuples))
	}
	if _, err := ReadCSVFile(t.TempDir()+"/missing.csv", CSVOptions{}); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFileString(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestReadCSVNaNBecomesCategorical(t *testing.T) {
	// A column containing "NaN" must not become a numeric attribute:
	// non-finite values would break the ordering invariants downstream.
	ds, err := ReadCSV(strings.NewReader("1,x\nNaN,y\n2,x\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.Attributes[0].Kind != Categorical {
		t.Errorf("NaN column inferred as %v", ds.Schema.Attributes[0].Kind)
	}
	for _, tp := range ds.Tuples {
		if err := ds.Schema.CheckTuple(tp); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckTupleRejectsNonFinite(t *testing.T) {
	s := twoAttrSchema(t)
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		if err := s.CheckTuple(Tuple{Values: []float64{v, 1}, Class: 0}); err == nil {
			t.Errorf("non-finite value %v accepted", v)
		}
	}
}
