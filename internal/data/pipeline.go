package data

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The prefetch pipeline overlaps the three stages the synchronous reader
// serializes: a reader goroutine issues sequential raw-block reads ahead
// of the consumer, a pool of decode workers verifies checksums and
// expands blocks into pooled chunks in parallel, and a bounded ordered
// ring delivers the decoded chunks strictly in file order — so the tuple
// stream (and therefore the tree every scan builds) is bit-identical to
// the synchronous path at every depth and worker count.
//
// Backpressure and order both hang off one invariant: at most Depth
// blocks are in flight (reader holds a token per block; the consumer
// releases it only after the block is fully consumed), so block seq and
// seq+Depth never coexist and slot seq%Depth is unambiguous. Each slot is
// a 1-buffered channel: workers deposit out of order, the consumer
// receives in order. Errors and EOF travel the same ordered path as
// data, so a failure surfaces only after every block before it was
// delivered. Close tears everything down without leaking goroutines:
// the reader and workers select on quit at every blocking point.

// DefaultPipelineDepth is the read-ahead (blocks in flight) used when a
// PipelineConfig leaves Depth zero.
const DefaultPipelineDepth = 4

// PipelineConfig shapes the asynchronous block pipeline of a ColSource
// scan. The zero value is a valid default configuration.
type PipelineConfig struct {
	// Depth is the number of blocks in flight (read ahead of the
	// consumer). 0 selects DefaultPipelineDepth; negative disables the
	// pipeline entirely (blocks decode synchronously in the caller).
	Depth int
	// Workers is the number of decode goroutines. 0 selects
	// min(4, GOMAXPROCS).
	Workers int
	// Observer, when non-nil, receives a PipelineLive reading each time
	// the consumer takes a block off the ordered ring — continuous
	// backpressure telemetry while the scan runs, not just the post-scan
	// PipelineStats. Called from the consuming goroutine, once per block
	// (never per row), so implementations stay off the row-hot path.
	Observer PipelineObserver
}

// PipelineObserver consumes live pipeline readings (see
// PipelineConfig.Observer). Implementations must be safe for use from
// the scan's consuming goroutine and should be cheap — a handful of
// atomic stores.
type PipelineObserver interface {
	ObservePipeline(PipelineLive)
}

// PipelineLive is one instantaneous backpressure reading of a running
// pipelined scan.
type PipelineLive struct {
	// InFlight is the number of blocks currently admitted by the token
	// bucket (being read, decoded, parked, or consumed); Ring is how many
	// decoded blocks sit finished in the ordered ring awaiting the
	// consumer. InFlight pinned at Depth with an empty Ring means the
	// consumer is starved by read/decode; a full Ring means the consumer
	// is the bottleneck.
	InFlight int
	Ring     int
	// Blocks counts blocks delivered to the consumer so far.
	Blocks int64
	// Read, Decode and Deliver are the cumulative stage times so far
	// (same meaning as PipelineStats, read mid-flight).
	Read, Decode, Deliver time.Duration
}

// normalized resolves defaults and clamps to sane bounds.
func (c PipelineConfig) normalized() PipelineConfig {
	switch {
	case c.Depth < 0:
		c.Depth = -1
	case c.Depth == 0:
		c.Depth = DefaultPipelineDepth
	case c.Depth > 64:
		c.Depth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 4 {
			c.Workers = 4
		}
	}
	if c.Workers > 32 {
		c.Workers = 32
	}
	return c
}

// PipelineStats reports what a pipelined scan did: per-stage accumulated
// time (read = filesystem wait, decode = checksum+expand across workers,
// deliver = consumer wait on the ordered ring) plus block and byte
// volumes. Zero-valued (Enabled false) when the scan was not pipelined.
type PipelineStats struct {
	Enabled        bool
	Depth, Workers int
	Blocks         int64
	PhysBytes      int64
	Start          time.Time
	Read           time.Duration
	Decode         time.Duration
	Deliver        time.Duration
}

// PipelineReporter is implemented by chunk scanners that can report
// pipeline stage statistics (and by wrappers forwarding to one).
type PipelineReporter interface {
	PipelineStats() PipelineStats
}

// PhysicalReader is implemented by chunk scanners that know how many
// bytes they actually read from the filesystem — distinct from the
// logical (decoded) tuple bytes iostats derives from row counts.
type PhysicalReader interface {
	PhysicalBytesRead() int64
}

// PipelinedChunkSource is implemented by sources whose chunked scan can
// run behind an explicit pipeline configuration.
type PipelinedChunkSource interface {
	ChunkedSource
	ScanChunksPipeline(cfg PipelineConfig) (ChunkScanner, error)
}

// ScanChunksPipelined begins a chunked scan over src under cfg when the
// source supports pipelining, falling back to the plain chunked scan
// otherwise. It is the entry point the scan phases of internal/core use,
// so one Config knob reaches every pipelined source uniformly.
func ScanChunksPipelined(src Source, cfg PipelineConfig) (ChunkScanner, error) {
	if ps, ok := src.(PipelinedChunkSource); ok {
		return ps.ScanChunksPipeline(cfg)
	}
	return ScanChunks(src)
}

// pipeJob is a raw block travelling from the reader to a decode worker.
type pipeJob struct {
	seq int64
	raw []byte
	err error // io.EOF after the last block, or a read failure
}

// pipeItem is a decoded block (or the stream's terminal error) travelling
// from a worker to the consumer through the ordered ring.
type pipeItem struct {
	ch  *Chunk
	err error
}

// colPipeline is the ChunkScanner backed by the asynchronous pipeline.
type colPipeline struct {
	src  *ColSource
	br   *blockReader
	cfg  PipelineConfig
	base int64 // first block of the scanned range (0 for full-file scans)

	pool    *ChunkPool
	rawFree chan []byte
	tokens  chan struct{}
	jobs    chan pipeJob
	slots   []chan pipeItem
	quit    chan struct{}
	wg      sync.WaitGroup

	// consumer state (single-goroutine)
	next   int64
	cur    *Chunk
	pos    int
	done   bool
	err    error
	closed bool
	cerr   error

	once sync.Once

	start     time.Time
	blocks    int64
	readNS    atomic.Int64 // written by the reader, read live by observe
	deliverNS int64        // consumer-goroutine only

	mu       sync.Mutex
	decodeNS int64 // accumulated across workers
}

func newColPipeline(src *ColSource, br *blockReader, cfg PipelineConfig) *colPipeline {
	p := &colPipeline{
		src:     src,
		br:      br,
		cfg:     cfg,
		base:    src.lo,
		pool:    NewChunkPool(len(src.schema.Attributes), src.blockRows),
		rawFree: make(chan []byte, cfg.Depth+cfg.Workers),
		tokens:  make(chan struct{}, cfg.Depth),
		jobs:    make(chan pipeJob, cfg.Depth),
		slots:   make([]chan pipeItem, cfg.Depth),
		quit:    make(chan struct{}),
		start:   time.Now(),
	}
	for i := range p.slots {
		p.slots[i] = make(chan pipeItem, 1)
	}
	p.wg.Add(1 + cfg.Workers)
	go p.reader()
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p
}

// reader issues sequential block reads ahead of the consumer, bounded by
// the token bucket, and terminates the job stream with the first error
// (including io.EOF).
func (p *colPipeline) reader() {
	defer p.wg.Done()
	defer close(p.jobs)
	for seq := int64(0); ; seq++ {
		select {
		case p.tokens <- struct{}{}:
		case <-p.quit:
			return
		}
		var buf []byte
		select {
		case buf = <-p.rawFree:
		default:
		}
		t0 := time.Now()
		raw, err := p.br.readRawBlock(buf)
		p.readNS.Add(int64(time.Since(t0)))
		select {
		case p.jobs <- pipeJob{seq: seq, raw: raw, err: err}:
		case <-p.quit:
			return
		}
		if err != nil {
			return
		}
	}
}

// worker verifies and decodes raw blocks into pooled chunks, depositing
// each into its sequence slot. Terminal jobs (EOF, read errors) pass
// through unchanged so they arrive in order.
func (p *colPipeline) worker() {
	defer p.wg.Done()
	zones := make([]ColZone, len(p.src.schema.Attributes))
	for job := range p.jobs {
		item := pipeItem{err: job.err}
		if job.err == nil {
			ch := p.pool.Get()
			t0 := time.Now()
			if err := p.src.decodeBlock(job.raw, p.base+job.seq, ch, zones); err != nil {
				p.pool.Put(ch)
				item.err = err
			} else {
				item.ch = ch
			}
			p.mu.Lock()
			p.decodeNS += int64(time.Since(t0))
			p.mu.Unlock()
			select {
			case p.rawFree <- job.raw:
			default:
			}
		}
		select {
		case p.slots[job.seq%int64(p.cfg.Depth)] <- item:
		case <-p.quit:
			if item.ch != nil {
				p.pool.Put(item.ch)
			}
			return
		}
	}
}

// NextChunk implements ChunkScanner: decoded blocks are copied into dst
// in file order, with zone summaries merged alongside.
func (p *colPipeline) NextChunk(dst *Chunk) error {
	if p.closed {
		return errors.New("data: scan of closed pipeline")
	}
	appended := false
	for !dst.Full() {
		if p.cur == nil || p.pos >= p.cur.Len() {
			if p.cur != nil {
				p.pool.Put(p.cur)
				p.cur = nil
				<-p.tokens // block fully consumed; admit the next read
			}
			if p.done || p.err != nil {
				break
			}
			t0 := time.Now()
			item := <-p.slots[p.next%int64(p.cfg.Depth)]
			p.deliverNS += int64(time.Since(t0))
			p.next++
			if item.err != nil {
				<-p.tokens // the terminal job's token
				if item.err == io.EOF {
					p.done = true
				} else {
					p.err = item.err
				}
				break
			}
			p.cur, p.pos = item.ch, 0
			p.blocks++
			p.observe()
		}
		n := dst.Cap() - dst.Len()
		if rem := p.cur.Len() - p.pos; n > rem {
			n = rem
		}
		prev := dst.Len()
		dst.AppendFrom(p.cur, p.pos, n)
		dst.AbsorbZonesFrom(p.cur, prev)
		p.pos += n
		appended = true
	}
	if !appended {
		if p.err != nil {
			return p.err
		}
		if p.done {
			return io.EOF
		}
	}
	return nil
}

// observe pushes one live backpressure reading to the configured
// observer. Runs on the consuming goroutine, once per delivered block.
func (p *colPipeline) observe() {
	if p.cfg.Observer == nil {
		return
	}
	ring := 0
	for _, slot := range p.slots {
		ring += len(slot)
	}
	p.mu.Lock()
	decode := p.decodeNS
	p.mu.Unlock()
	p.cfg.Observer.ObservePipeline(PipelineLive{
		InFlight: len(p.tokens),
		Ring:     ring,
		Blocks:   p.blocks,
		Read:     time.Duration(p.readNS.Load()),
		Decode:   time.Duration(decode),
		Deliver:  time.Duration(p.deliverNS),
	})
}

// Close tears the pipeline down (idempotent): the reader and workers
// observe quit at every blocking point, so Close never strands a
// goroutine, whether the scan completed, failed, or was abandoned early.
func (p *colPipeline) Close() error {
	p.once.Do(func() {
		p.closed = true
		close(p.quit)
		if p.cur != nil {
			p.pool.Put(p.cur)
			p.cur = nil
		}
		p.wg.Wait()
		p.cerr = p.br.Close()
	})
	return p.cerr
}

// PhysicalBytesRead implements PhysicalReader.
func (p *colPipeline) PhysicalBytesRead() int64 { return p.br.PhysicalBytesRead() }

// PipelineStats implements PipelineReporter. Meaningful once the scan has
// completed (or failed); stage times are cumulative across goroutines.
func (p *colPipeline) PipelineStats() PipelineStats {
	p.mu.Lock()
	decode := p.decodeNS
	p.mu.Unlock()
	return PipelineStats{
		Enabled:   true,
		Depth:     p.cfg.Depth,
		Workers:   p.cfg.Workers,
		Blocks:    p.blocks,
		PhysBytes: p.br.PhysicalBytesRead(),
		Start:     p.start,
		Read:      time.Duration(p.readNS.Load()),
		Decode:    time.Duration(decode),
		Deliver:   time.Duration(p.deliverNS),
	}
}
