package data

import (
	"errors"
	"math"
	"os"
	"testing"
)

func colTestSchema() *Schema {
	return MustSchema([]Attribute{
		{Name: "salary", Kind: Numeric},
		{Name: "grade", Kind: Categorical, Cardinality: 8},
		{Name: "ratio", Kind: Numeric},
	}, 3)
}

func colTestTuples(n int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{
			Values: []float64{
				1000 + float64(i%250),  // u8-encodable integer span
				float64(i % 8),         // small categorical codes
				0.5 + float64(i%7)*0.5, // fractional -> raw encoding
			},
			Class: i % 3,
		}
	}
	return out
}

func writeColTestFile(t *testing.T, tuples []Tuple, blockRows int) string {
	t.Helper()
	path := t.TempDir() + "/d.boatc"
	src := NewMemSource(colTestSchema(), tuples)
	if n, err := WriteColFile(path, src, blockRows); err != nil || n != int64(len(tuples)) {
		t.Fatalf("WriteColFile = (%d, %v), want (%d, nil)", n, err, len(tuples))
	}
	return path
}

func requireSourceTuples(t *testing.T, label string, src Source, want []Tuple) {
	t.Helper()
	got, err := ReadAll(src)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Class != want[i].Class {
			t.Fatalf("%s: tuple %d class %d, want %d", label, i, got[i].Class, want[i].Class)
		}
		for a, v := range got[i].Values {
			w := want[i].Values[a]
			if v != w && !(v != v && w != w) {
				t.Fatalf("%s: tuple %d attr %d = %v, want %v", label, i, a, v, w)
			}
		}
	}
}

// TestColFileRoundTrip: every tuple written comes back bit-identical, on
// the row adapter, the synchronous chunked scan and the pipelined scan,
// including a short final block.
func TestColFileRoundTrip(t *testing.T) {
	tuples := colTestTuples(1000)
	path := writeColTestFile(t, tuples, 128) // 7 full blocks + 104-row tail

	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := s.Count(); !ok || n != 1000 {
		t.Fatalf("Count = (%d, %v), want (1000, true)", n, ok)
	}
	if s.Blocks() != 8 || s.BlockRows() != 128 {
		t.Fatalf("Blocks/BlockRows = %d/%d, want 8/128", s.Blocks(), s.BlockRows())
	}
	requireSourceTuples(t, "row adapter", s, tuples)

	sync, err := OpenColFile(path, ColOptions{Pipeline: PipelineConfig{Depth: -1}})
	if err != nil {
		t.Fatal(err)
	}
	requireSourceTuples(t, "sync chunked", sync, tuples)
}

// TestColFileNaN: NaN values survive the round trip (they force the raw
// encoding and set the zone's NaN flag).
func TestColFileNaN(t *testing.T) {
	tuples := colTestTuples(100)
	tuples[3].Values[0] = math.NaN()
	tuples[97].Values[2] = math.NaN()
	path := writeColTestFile(t, tuples, 64)
	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	requireSourceTuples(t, "with NaN", s, tuples)
}

// TestColumnEncodings drives appendColumn/decodeColumn through every
// segment encoding and checks the zone summary computed alongside.
func TestColumnEncodings(t *testing.T) {
	cases := []struct {
		name    string
		col     []float64
		enc     byte
		valid   bool
		codesOK bool
		hasNaN  bool
	}{
		{"const", []float64{7, 7, 7, 7}, colEncConst, true, true, false},
		{"u8", []float64{0, 100, 200, 13}, colEncU8, true, false, false},
		{"u8-negative", []float64{-5, 0, 5, -2}, colEncU8, true, false, false},
		{"u16", []float64{0, 60000, 31337, 2}, colEncU16, true, false, false},
		{"u32", []float64{0, 1e9, 77, 12345678}, colEncU32, true, false, false},
		{"raw-fractional", []float64{0.5, 1.25, -3.75}, colEncRaw, true, false, false},
		{"raw-nan", []float64{1, math.NaN(), 3}, colEncRaw, true, false, true},
		{"codes", []float64{0, 3, 63, 3}, colEncU8, true, true, false},
		{"all-nan", []float64{math.NaN(), math.NaN()}, colEncRaw, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := appendColumn(nil, tc.col)
			if got := buf[0]; got != tc.enc {
				t.Fatalf("encoding = %d, want %d", got, tc.enc)
			}
			dst := make([]float64, len(tc.col))
			off, z, err := decodeColumn(buf, 0, len(tc.col), dst)
			if err != nil {
				t.Fatal(err)
			}
			if off != len(buf) {
				t.Fatalf("decode consumed %d of %d bytes", off, len(buf))
			}
			for i, v := range dst {
				w := tc.col[i]
				if v != w && !(v != v && w != w) {
					t.Fatalf("row %d = %v, want %v", i, v, w)
				}
			}
			if z.Valid != tc.valid || z.CodesValid != tc.codesOK || z.HasNaN != tc.hasNaN {
				t.Fatalf("zone = %+v, want valid=%v codesOK=%v hasNaN=%v", z, tc.valid, tc.codesOK, tc.hasNaN)
			}
			if z.Valid {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, v := range tc.col {
					if v != v {
						continue
					}
					lo, hi = math.Min(lo, v), math.Max(hi, v)
				}
				if z.Min != lo || z.Max != hi {
					t.Fatalf("zone bounds [%v, %v], want [%v, %v]", z.Min, z.Max, lo, hi)
				}
			}
			if z.CodesValid {
				var want uint64
				for _, v := range tc.col {
					want |= 1 << uint(v)
				}
				if z.Codes != want {
					t.Fatalf("codes bitmap %b, want %b", z.Codes, want)
				}
			}
		})
	}
}

// TestColFileZones: chunks delivered by the chunked scans carry zone
// summaries that exactly bound their rows, merging across blocks when a
// destination chunk spans more than one.
func TestColFileZones(t *testing.T) {
	tuples := make([]Tuple, 96) // sorted ages, 3 blocks of 32
	for i := range tuples {
		tuples[i] = Tuple{Values: []float64{float64(i), float64(i % 4), 0.5}, Class: 0}
	}
	path := writeColTestFile(t, tuples, 32)
	s, err := OpenColFile(path, ColOptions{Pipeline: PipelineConfig{Depth: -1}})
	if err != nil {
		t.Fatal(err)
	}

	// One block per chunk: block-precise zones.
	sc, err := s.ScanChunks()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ch := NewChunk(3, 32)
	for b := 0; b < 3; b++ {
		ch.Reset()
		if err := sc.NextChunk(ch); err != nil {
			t.Fatal(err)
		}
		z, ok := ch.Zone(0)
		if !ok || !z.Valid {
			t.Fatalf("block %d: no valid zone", b)
		}
		if z.Min != float64(32*b) || z.Max != float64(32*b+31) {
			t.Fatalf("block %d zone [%v, %v], want [%d, %d]", b, z.Min, z.Max, 32*b, 32*b+31)
		}
		zc, ok := ch.Zone(1)
		if !ok || !zc.CodesValid || zc.Codes != 0b1111 {
			t.Fatalf("block %d categorical zone = %+v, want codes 0b1111", b, zc)
		}
	}

	// Two blocks per chunk: zones merge and still cover every row.
	sc2, err := s.ScanChunks()
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	wide := NewChunk(3, 64)
	if err := sc2.NextChunk(wide); err != nil {
		t.Fatal(err)
	}
	z, ok := wide.Zone(0)
	if !ok || z.Min != 0 || z.Max != 63 {
		t.Fatalf("merged zone = %+v (ok=%v), want [0, 63]", z, ok)
	}
}

// TestColFileTornFile: a file missing its footer — the shape a crashed
// writer leaves behind — is rejected at open with ErrColTruncated.
func TestColFileTornFile(t *testing.T) {
	path := writeColTestFile(t, colTestTuples(300), 128)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{5, colFooterLen, st.Size() / 2} {
		if err := os.Truncate(path, st.Size()-cut); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenColFile(path); !errors.Is(err, ErrColTruncated) {
			t.Fatalf("open after losing %d bytes: %v, want ErrColTruncated", cut, err)
		}
	}
}

// TestColFileChecksumMismatch: a flipped payload byte surfaces as a typed
// block-located checksum error on both scan paths, after the blocks before
// it were delivered intact.
func TestColFileChecksumMismatch(t *testing.T) {
	tuples := colTestTuples(300)
	path := writeColTestFile(t, tuples, 128)
	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the second block's body.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1)
	blk1 := s.headerLen + 4 + blockLenAt(t, path, s.headerLen) + 4 // past block 0
	if _, err := f.ReadAt(raw, blk1+10); err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if _, err := f.WriteAt(raw, blk1+10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, depth := range []int{-1, 4} {
		src, err := OpenColFile(path, ColOptions{Pipeline: PipelineConfig{Depth: depth}})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := src.ScanChunks()
		if err != nil {
			t.Fatal(err)
		}
		ch := NewChunk(3, 128)
		var rows int
		var scanErr error
		for {
			ch.Reset()
			if scanErr = sc.NextChunk(ch); scanErr != nil {
				break
			}
			if ch.Len() == 0 {
				break
			}
			rows += ch.Len()
		}
		sc.Close()
		if !errors.Is(scanErr, ErrColChecksum) {
			t.Fatalf("depth %d: scan error %v, want ErrColChecksum", depth, scanErr)
		}
		var be *BlockError
		if !errors.As(scanErr, &be) || be.Block != 1 {
			t.Fatalf("depth %d: error %v, want BlockError at block 1", depth, scanErr)
		}
		if rows != 128 {
			t.Fatalf("depth %d: %d rows before the error, want 128 (block 0 intact)", depth, rows)
		}
	}
}

// blockLenAt reads the length prefix of the block starting at off.
func blockLenAt(t *testing.T, path string, off int64) int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var pre [4]byte
	if _, err := f.ReadAt(pre[:], off); err != nil {
		t.Fatal(err)
	}
	return int64(uint32(pre[0]) | uint32(pre[1])<<8 | uint32(pre[2])<<16 | uint32(pre[3])<<24)
}

// TestColFileImplausibleBlockLength: a mangled length prefix is corruption,
// reported block-precisely, not an allocation request.
func TestColFileImplausibleBlockLength(t *testing.T) {
	path := writeColTestFile(t, colTestTuples(200), 128)
	s, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0x7F}, s.headerLen); err != nil {
		t.Fatal(err)
	}
	f.Close()
	src, err := OpenColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := src.ScanChunks()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ch := NewChunk(3, 128)
	scanErr := sc.NextChunk(ch)
	var be *BlockError
	if !errors.Is(scanErr, ErrColTruncated) || !errors.As(scanErr, &be) || be.Block != 0 {
		t.Fatalf("scan error %v, want ErrColTruncated in a BlockError at block 0", scanErr)
	}
}

// TestOpenSniffsFormat: Open dispatches on the magic to the right source
// type and rejects files that are neither format.
func TestOpenSniffsFormat(t *testing.T) {
	tuples := colTestTuples(50)
	colPath := writeColTestFile(t, tuples, 0)
	dir := t.TempDir()
	rowPath := dir + "/d.boat"
	if _, err := WriteFile(rowPath, NewMemSource(colTestSchema(), tuples), FormatCompact); err != nil {
		t.Fatal(err)
	}

	cs, err := Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.(*ColSource); !ok {
		t.Fatalf("Open(%s) = %T, want *ColSource", colPath, cs)
	}
	rs, err := Open(rowPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.(*FileSource); !ok {
		t.Fatalf("Open(%s) = %T, want *FileSource", rowPath, rs)
	}
	requireSourceTuples(t, "sniffed columnar", cs, tuples)
	requireSourceTuples(t, "sniffed row", rs, tuples)

	junk := dir + "/junk"
	if err := os.WriteFile(junk, []byte("definitely not a dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); err == nil {
		t.Fatal("Open accepted a non-dataset file")
	}
}

// TestWriteColFileConvertsRowFile: the conversion path (row FileSource in,
// columnar out) preserves the tuple stream exactly.
func TestWriteColFileConvertsRowFile(t *testing.T) {
	tuples := colTestTuples(700)
	dir := t.TempDir()
	rowPath := dir + "/d.boat"
	if _, err := WriteFile(rowPath, NewMemSource(colTestSchema(), tuples), FormatCompact); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(rowPath)
	if err != nil {
		t.Fatal(err)
	}
	colPath := dir + "/d.boatc"
	if n, err := WriteColFile(colPath, fs, 256); err != nil || n != 700 {
		t.Fatalf("convert = (%d, %v), want (700, nil)", n, err)
	}
	cs, err := OpenColFile(colPath)
	if err != nil {
		t.Fatal(err)
	}
	requireSourceTuples(t, "converted", cs, tuples)
}
