package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// CSV import with schema inference, for training on real-world datasets:
// columns whose values all parse as numbers become numeric attributes;
// other columns become categorical attributes with a deterministic
// string-to-code dictionary (codes assigned in sorted value order). One
// column is the class label.

// CSVOptions controls parsing and inference.
type CSVOptions struct {
	// HasHeader consumes the first row as attribute names (otherwise
	// columns are named col0, col1, ...).
	HasHeader bool
	// ClassColumn selects the class-label column, 1-based; 0 (the zero
	// value) selects the last column — the common layout.
	ClassColumn int
	// Comma is the field separator (0 = ',').
	Comma rune
	// MaxCardinality bounds inferred categorical domains (0 =
	// data.MaxCardinality). Columns exceeding it fail with an error
	// rather than silently truncating.
	MaxCardinality int
}

// CSVDataset is the parsed result: a validated schema, the tuples, and
// the dictionaries needed to interpret categorical codes and class labels.
type CSVDataset struct {
	Schema *Schema
	Tuples []Tuple
	// AttrValues[i] maps categorical attribute i's codes back to the
	// original strings (nil for numeric attributes).
	AttrValues [][]string
	// ClassNames maps class codes back to the original label strings.
	ClassNames []string
}

// Source wraps the parsed tuples as a scannable training database.
func (d *CSVDataset) Source() Source { return NewMemSource(d.Schema, d.Tuples) }

// ClassCode resolves a label string.
func (d *CSVDataset) ClassCode(name string) (int, bool) {
	for i, n := range d.ClassNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// ReadCSV parses CSV content from r.
func ReadCSV(r io.Reader, opts CSVOptions) (*CSVDataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, errors.New("data: csv: empty input")
	}
	var names []string
	if opts.HasHeader {
		names = rows[0]
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, errors.New("data: csv: no data rows")
	}
	cols := len(rows[0])
	if cols < 2 {
		return nil, errors.New("data: csv: need at least one predictor column plus the class column")
	}
	for i, row := range rows {
		if len(row) != cols {
			return nil, fmt.Errorf("data: csv: row %d has %d fields, want %d", i+1, len(row), cols)
		}
	}
	classCol := cols - 1
	if opts.ClassColumn >= 1 {
		if opts.ClassColumn > cols {
			return nil, fmt.Errorf("data: csv: class column %d out of range (only %d columns)",
				opts.ClassColumn, cols)
		}
		classCol = opts.ClassColumn - 1
	}
	maxCard := opts.MaxCardinality
	if maxCard <= 0 || maxCard > MaxCardinality {
		maxCard = MaxCardinality
	}

	// Infer column kinds. Non-finite parses (NaN, Inf) are treated as
	// non-numeric so such columns fall back to categorical strings —
	// finite values are an invariant of the whole pipeline.
	isNumeric := func(s string) bool {
		v, err := strconv.ParseFloat(s, 64)
		return err == nil && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	numeric := make([]bool, cols)
	for c := 0; c < cols; c++ {
		if c == classCol {
			continue
		}
		numeric[c] = true
		for _, row := range rows {
			if !isNumeric(strings.TrimSpace(row[c])) {
				numeric[c] = false
				break
			}
		}
	}

	// Build dictionaries for categorical columns and the class, with
	// codes in sorted string order (deterministic regardless of row
	// order).
	dict := func(c int, limit int, what string) (map[string]int, []string, error) {
		set := map[string]bool{}
		for _, row := range rows {
			set[strings.TrimSpace(row[c])] = true
		}
		vals := make([]string, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		if len(vals) > limit {
			return nil, nil, fmt.Errorf("data: csv: column %d (%s) has %d distinct values, limit %d",
				c, what, len(vals), limit)
		}
		m := make(map[string]int, len(vals))
		for i, v := range vals {
			m[v] = i
		}
		return m, vals, nil
	}

	attrs := make([]Attribute, 0, cols-1)
	attrValues := make([][]string, 0, cols-1)
	catDicts := make([]map[string]int, cols)
	colName := func(c int) string {
		if names != nil && c < len(names) && strings.TrimSpace(names[c]) != "" {
			return strings.TrimSpace(names[c])
		}
		return fmt.Sprintf("col%d", c)
	}
	for c := 0; c < cols; c++ {
		if c == classCol {
			continue
		}
		if numeric[c] {
			attrs = append(attrs, Attribute{Name: colName(c), Kind: Numeric})
			attrValues = append(attrValues, nil)
			continue
		}
		m, vals, err := dict(c, maxCard, colName(c))
		if err != nil {
			return nil, err
		}
		if len(vals) < 2 {
			return nil, fmt.Errorf("data: csv: categorical column %q is constant", colName(c))
		}
		catDicts[c] = m
		attrs = append(attrs, Attribute{Name: colName(c), Kind: Categorical, Cardinality: len(vals)})
		attrValues = append(attrValues, vals)
	}
	classDict, classNames, err := dict(classCol, 1<<16, "class")
	if err != nil {
		return nil, err
	}
	if len(classNames) < 2 {
		return nil, errors.New("data: csv: class column has fewer than two labels")
	}
	schema, err := NewSchema(attrs, len(classNames))
	if err != nil {
		return nil, err
	}

	tuples := make([]Tuple, len(rows))
	backing := make([]float64, len(rows)*len(attrs))
	for i, row := range rows {
		vals := backing[i*len(attrs) : (i+1)*len(attrs)]
		a := 0
		for c := 0; c < cols; c++ {
			if c == classCol {
				continue
			}
			field := strings.TrimSpace(row[c])
			if numeric[c] {
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("data: csv: row %d column %d: %w", i+1, c, err)
				}
				vals[a] = v
			} else {
				vals[a] = float64(catDicts[c][field])
			}
			a++
		}
		tuples[i] = Tuple{Values: vals, Class: classDict[strings.TrimSpace(row[classCol])]}
	}
	return &CSVDataset{
		Schema:     schema,
		Tuples:     tuples,
		AttrValues: attrValues,
		ClassNames: classNames,
	}, nil
}

// ReadCSVFile parses a CSV file from disk.
func ReadCSVFile(path string, opts CSVOptions) (*CSVDataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, opts)
}
