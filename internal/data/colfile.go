package data

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// The columnar block file ("colfile") is the scan-optimized on-disk twin
// of the row format in file.go. Tuples are grouped into blocks of
// BlockRows rows; within a block each attribute is stored as one
// contiguous segment, delta-encoded against the block minimum at the
// narrowest fixed width that holds the block's value range (1/2/4-byte
// integers for the integer-valued synthetic workloads, raw float64
// otherwise). Every block carries a CRC32-C checksum and a per-column
// ColZone (min/max, NaN presence, categorical code bitmap), so readers
// detect corruption block-precisely and the routing scans can skip the
// per-row partition kernel when a zone decides a whole block (scan.go,
// update.go). A fixed-size footer records the row and block counts; a
// missing or mangled footer is how a torn (partially written) file is
// detected at open.
//
// Layout (version 2):
//
//	"BOATCOLF" | version u8 | reserved u8 | blockRows u32 | schema
//	repeat per block:
//	  bodyLen u32 | body | crc32c(body) u32
//	  body = rowCount u32, per attribute column then the class column:
//	    enc u8 | flags u8 | min f64 | max f64 | codes u64 | segLen u32 | seg
//	index: per block the file-absolute offset of its bodyLen prefix, u64
//	  each | crc32c(index) u32
//	rowCount u64 | blockCount u64 | indexLen u64 | "BOATCEND"
//
// The index is what makes a single file byte-range splittable: worker k
// of a block-sharded scan seeks straight to offsets[lo] and reads blocks
// [lo, hi) with a private reader, no shared state with the other
// workers. Version 1 files (no index, 24-byte footer without indexLen)
// remain readable; their offsets are derived on demand by a one-pass
// walk of the block length prefixes (see BlockOffsets).
//
// Decoding a block touches each column once sequentially — the shape the
// prefetch pipeline (pipeline.go) parallelizes across decode workers.

const (
	colMagic    = "BOATCOLF"
	colEndMagic = "BOATCEND"
	colVersion  = 2
	colVersion1 = 1

	// DefaultBlockRows is the block row capacity used when the writer's
	// caller does not choose one. Large enough to amortize per-block
	// headers and CRC work, small enough that a decoded block (~9 columns
	// of float64) stays cache-friendly.
	DefaultBlockRows = 8192

	colFooterV1Len = 24
	colFooterLen   = 32

	// maxColBlockBody bounds a declared block body length; anything larger
	// is corruption, not data.
	maxColBlockBody = 1 << 30

	// maxColBlockValues bounds blockRows*(attrs+1) — the float64/int32
	// cells a decode chunk must allocate. A header may not demand an
	// absurd decode footprint (a const-encoded column stores no payload,
	// so body size alone cannot bound the decoded size).
	maxColBlockValues = 1 << 25
)

// Column segment encodings.
const (
	colEncConst byte = iota // every row equals min; empty segment
	colEncU8                // min + per-row unsigned 8-bit delta
	colEncU16               // min + per-row unsigned 16-bit LE delta
	colEncU32               // min + per-row unsigned 32-bit LE delta
	colEncRaw               // per-row IEEE-754 little-endian float64
)

// Column flag bits.
const (
	colFlagHasNaN     byte = 1 << iota // at least one value is NaN
	colFlagZoneValid                   // min/max bound every non-NaN value
	colFlagCodesValid                  // codes bitmap covers every value
)

var (
	// ErrColChecksum is wrapped by read errors on blocks whose stored
	// CRC32-C does not match their payload.
	ErrColChecksum = errors.New("data: columnar block checksum mismatch")
	// ErrColTruncated is wrapped by errors on torn columnar files: a
	// missing footer, or a block cut short by the end of the file.
	ErrColTruncated = errors.New("data: torn columnar file")
)

// BlockError locates a block-level read failure.
type BlockError struct {
	Path  string
	Block int64 // zero-based block index
	Err   error
}

func (e *BlockError) Error() string {
	return fmt.Sprintf("data: %s: block %d: %v", e.Path, e.Block, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BlockError) Unwrap() error { return e.Err }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ---------------------------------------------------------------------------
// Block encoding

// appendColumn appends one encoded column segment (header + payload) and
// computes its zone along the way.
func appendColumn(buf []byte, col []float64) []byte {
	var (
		hasNaN   bool
		seen     bool
		min, max float64
		allInt   = true
		codes    uint64
		codesOK  = true
	)
	for _, v := range col {
		if v != v {
			hasNaN = true
			allInt, codesOK = false, false
			continue
		}
		if !seen {
			min, max, seen = v, v, true
		} else {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if allInt && (v != math.Trunc(v) || v < -(1<<52) || v > 1<<52) {
			allInt, codesOK = false, false
		}
		if codesOK {
			if v < 0 || v >= 64 {
				codesOK = false
			} else {
				codes |= 1 << uint(v)
			}
		}
	}
	var flags byte
	if hasNaN {
		flags |= colFlagHasNaN
	}
	if seen {
		flags |= colFlagZoneValid
	}
	if codesOK && len(col) > 0 {
		flags |= colFlagCodesValid
	} else {
		codes = 0
	}
	enc := colEncRaw
	switch {
	case seen && !hasNaN && min == max:
		enc = colEncConst
	case seen && !hasNaN && allInt:
		switch span := int64(max) - int64(min); {
		case span <= math.MaxUint8:
			enc = colEncU8
		case span <= math.MaxUint16:
			enc = colEncU16
		case span <= math.MaxUint32:
			enc = colEncU32
		}
	}
	buf = appendColHeader(buf, enc, flags, min, max, codes, segLen(enc, len(col)))
	base := int64(min)
	switch enc {
	case colEncConst:
	case colEncU8:
		for _, v := range col {
			buf = append(buf, byte(int64(v)-base))
		}
	case colEncU16:
		for _, v := range col {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(int64(v)-base))
		}
	case colEncU32:
		for _, v := range col {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(int64(v)-base))
		}
	default:
		for _, v := range col {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// appendClassColumn appends the class-label column, encoded with the same
// delta scheme (labels are small non-negative integers, so this is almost
// always one byte per row).
func appendClassColumn(buf []byte, cls []int32) []byte {
	var min, max int32
	if len(cls) > 0 {
		min, max = cls[0], cls[0]
		for _, c := range cls[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
	}
	enc := colEncU32
	switch span := int64(max) - int64(min); {
	case span == 0:
		enc = colEncConst
	case span <= math.MaxUint8:
		enc = colEncU8
	case span <= math.MaxUint16:
		enc = colEncU16
	}
	buf = appendColHeader(buf, enc, 0, float64(min), float64(max), 0, segLen(enc, len(cls)))
	switch enc {
	case colEncConst:
	case colEncU8:
		for _, c := range cls {
			buf = append(buf, byte(c-min))
		}
	case colEncU16:
		for _, c := range cls {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(c-min))
		}
	default:
		for _, c := range cls {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c-min))
		}
	}
	return buf
}

func appendColHeader(buf []byte, enc, flags byte, min, max float64, codes uint64, seg int) []byte {
	buf = append(buf, enc, flags)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(min))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(max))
	buf = binary.LittleEndian.AppendUint64(buf, codes)
	return binary.LittleEndian.AppendUint32(buf, uint32(seg))
}

// segLen returns the payload size of one column segment of n rows.
func segLen(enc byte, n int) int {
	switch enc {
	case colEncConst:
		return 0
	case colEncU8:
		return n
	case colEncU16:
		return 2 * n
	case colEncU32:
		return 4 * n
	default:
		return 8 * n
	}
}

const colHeaderLen = 2 + 8 + 8 + 8 + 4

// encodeBlock appends the body (rowCount + all column segments) of one
// block holding ch's rows to buf[:0].
func encodeBlock(buf []byte, ch *Chunk) []byte {
	buf = binary.LittleEndian.AppendUint32(buf[:0], uint32(ch.Len()))
	for a := 0; a < ch.Width(); a++ {
		buf = appendColumn(buf, ch.Col(a))
	}
	return appendClassColumn(buf, ch.Classes())
}

// decodeColumn decodes one column segment of rows values from body[off:]
// into dst, returning the next offset and the column's zone.
func decodeColumn(body []byte, off, rows int, dst []float64) (int, ColZone, error) {
	enc, flags, min, max, codes, seg, off, err := readColHeader(body, off, rows)
	if err != nil {
		return 0, ColZone{}, err
	}
	p := body[off : off+seg]
	base := int64(min)
	switch enc {
	case colEncConst:
		for i := range dst {
			dst[i] = min
		}
	case colEncU8:
		for i := range dst {
			dst[i] = float64(base + int64(p[i]))
		}
	case colEncU16:
		for i := range dst {
			dst[i] = float64(base + int64(binary.LittleEndian.Uint16(p[2*i:])))
		}
	case colEncU32:
		for i := range dst {
			dst[i] = float64(base + int64(binary.LittleEndian.Uint32(p[4*i:])))
		}
	default:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
	}
	z := ColZone{
		Min:        min,
		Max:        max,
		Codes:      codes,
		HasNaN:     flags&colFlagHasNaN != 0,
		Valid:      flags&colFlagZoneValid != 0,
		CodesValid: flags&colFlagCodesValid != 0,
	}
	return off + seg, z, nil
}

// decodeClassColumn decodes the class segment from body[off:] into dst
// and validates every decoded label against the schema's class count:
// labels index class-count arrays all over the scan and update paths, so
// an out-of-range code in a checksum-valid (crafted or miswritten) block
// must fail the decode here, not corrupt memory later.
func decodeClassColumn(body []byte, off, rows int, dst []int32, classes int) (int, error) {
	enc, _, min, _, _, seg, off, err := readColHeader(body, off, rows)
	if err != nil {
		return 0, err
	}
	p := body[off : off+seg]
	base := int32(min)
	switch enc {
	case colEncConst:
		for i := range dst {
			dst[i] = base
		}
	case colEncU8:
		for i := range dst {
			dst[i] = base + int32(p[i])
		}
	case colEncU16:
		for i := range dst {
			dst[i] = base + int32(binary.LittleEndian.Uint16(p[2*i:]))
		}
	default:
		for i := range dst {
			dst[i] = base + int32(binary.LittleEndian.Uint32(p[4*i:]))
		}
	}
	for _, c := range dst {
		if c < 0 || int(c) >= classes {
			return 0, fmt.Errorf("data: class label %d outside schema range [0,%d)", c, classes)
		}
	}
	return off + seg, nil
}

func readColHeader(body []byte, off, rows int) (enc, flags byte, min, max float64, codes uint64, seg, next int, err error) {
	if off+colHeaderLen > len(body) {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("%w: column header past block end", ErrColTruncated)
	}
	enc, flags = body[off], body[off+1]
	if enc > colEncRaw {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("data: unknown column encoding %d", enc)
	}
	min = math.Float64frombits(binary.LittleEndian.Uint64(body[off+2:]))
	max = math.Float64frombits(binary.LittleEndian.Uint64(body[off+10:]))
	codes = binary.LittleEndian.Uint64(body[off+18:])
	seg = int(binary.LittleEndian.Uint32(body[off+26:]))
	next = off + colHeaderLen
	if seg != segLen(enc, rows) || next+seg > len(body) {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("%w: column segment length %d", ErrColTruncated, seg)
	}
	return enc, flags, min, max, codes, seg, next, nil
}

// decodeBlockInto decodes a verified block body into dst (which must be
// empty with capacity >= the block's rows), filling zones (len >= width)
// and validating class labels against classes.
func decodeBlockInto(body []byte, maxRows int, dst *Chunk, zones []ColZone, classes int) error {
	if len(body) < 4 {
		return fmt.Errorf("%w: block body of %d bytes", ErrColTruncated, len(body))
	}
	rows := int(binary.LittleEndian.Uint32(body))
	if rows <= 0 || rows > maxRows || rows > dst.Cap() {
		return fmt.Errorf("data: implausible block row count %d", rows)
	}
	off := 4
	var err error
	for a := 0; a < dst.width; a++ {
		off, zones[a], err = decodeColumn(body, off, rows, dst.vals[a*dst.stride:a*dst.stride+rows])
		if err != nil {
			return err
		}
	}
	if off, err = decodeClassColumn(body, off, rows, dst.class[:rows], classes); err != nil {
		return err
	}
	if off != len(body) {
		return fmt.Errorf("data: %d trailing bytes after block columns", len(body)-off)
	}
	dst.n = rows
	dst.AbsorbZones(zones, 0)
	return nil
}

// ---------------------------------------------------------------------------
// Writer

// ColFileWriter streams tuples into a columnar block file.
type ColFileWriter struct {
	f         *os.File
	w         *bufio.Writer
	schema    *Schema
	version   byte
	blockRows int
	stage     *Chunk
	body      []byte
	rows      int64
	blocks    int64
	off       int64   // file offset of the next block's length prefix
	offsets   []int64 // per-block offset of the length prefix (the index)
	closed    bool
}

// CreateColFile creates (truncating) a columnar dataset file at path.
// blockRows <= 0 selects DefaultBlockRows.
func CreateColFile(path string, schema *Schema, blockRows int) (*ColFileWriter, error) {
	return createColFile(path, schema, blockRows, colVersion)
}

// createColFile is CreateColFile with an explicit format version; tests
// use it to materialize version-1 files (no offset index) and exercise
// the backward-compatible header walk.
func createColFile(path string, schema *Schema, blockRows int, version byte) (*ColFileWriter, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<18)
	hdr := append([]byte(colMagic), version, 0)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(blockRows))
	hdr = appendSchema(hdr, schema)
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &ColFileWriter{
		f:         f,
		w:         w,
		schema:    schema,
		version:   version,
		blockRows: blockRows,
		stage:     NewChunk(len(schema.Attributes), blockRows),
		off:       int64(len(hdr)),
	}, nil
}

// Append stages one tuple, flushing a block when the stage fills.
func (cw *ColFileWriter) Append(t Tuple) error {
	if cw.closed {
		return errors.New("data: append to closed writer")
	}
	if len(t.Values) != len(cw.schema.Attributes) {
		return ErrSchemaMismatch
	}
	cw.stage.AppendTuple(t)
	if cw.stage.Full() {
		return cw.flushBlock()
	}
	return nil
}

// AppendChunk stages a whole columnar batch (same width required).
func (cw *ColFileWriter) AppendChunk(ch *Chunk) error {
	if cw.closed {
		return errors.New("data: append to closed writer")
	}
	if ch.Width() != len(cw.schema.Attributes) {
		return ErrSchemaMismatch
	}
	for pos := 0; pos < ch.Len(); {
		n := cw.stage.Cap() - cw.stage.Len()
		if rem := ch.Len() - pos; n > rem {
			n = rem
		}
		cw.stage.AppendFrom(ch, pos, n)
		pos += n
		if cw.stage.Full() {
			if err := cw.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (cw *ColFileWriter) flushBlock() error {
	if cw.stage.Len() == 0 {
		return nil
	}
	cw.body = encodeBlock(cw.body, cw.stage)
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(len(cw.body)))
	if _, err := cw.w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := cw.w.Write(cw.body); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(pre[:], crc32.Checksum(cw.body, castagnoli))
	if _, err := cw.w.Write(pre[:]); err != nil {
		return err
	}
	cw.offsets = append(cw.offsets, cw.off)
	cw.off += int64(4 + len(cw.body) + 4)
	cw.rows += int64(cw.stage.Len())
	cw.blocks++
	cw.stage.Reset()
	return nil
}

// Count returns the number of tuples appended so far.
func (cw *ColFileWriter) Count() int64 { return cw.rows + int64(cw.stage.Len()) }

// Close flushes the final (possibly short) block, writes the offset
// index and the footer, and closes the file.
func (cw *ColFileWriter) Close() error {
	if cw.closed {
		return nil
	}
	cw.closed = true
	if err := cw.flushBlock(); err != nil {
		cw.f.Close()
		return err
	}
	if cw.version == colVersion1 {
		var foot [colFooterV1Len]byte
		binary.LittleEndian.PutUint64(foot[0:], uint64(cw.rows))
		binary.LittleEndian.PutUint64(foot[8:], uint64(cw.blocks))
		copy(foot[16:], colEndMagic)
		if _, err := cw.w.Write(foot[:]); err != nil {
			cw.f.Close()
			return err
		}
	} else {
		idx := make([]byte, 0, 8*len(cw.offsets)+4)
		for _, off := range cw.offsets {
			idx = binary.LittleEndian.AppendUint64(idx, uint64(off))
		}
		idx = binary.LittleEndian.AppendUint32(idx, crc32.Checksum(idx, castagnoli))
		if _, err := cw.w.Write(idx); err != nil {
			cw.f.Close()
			return err
		}
		var foot [colFooterLen]byte
		binary.LittleEndian.PutUint64(foot[0:], uint64(cw.rows))
		binary.LittleEndian.PutUint64(foot[8:], uint64(cw.blocks))
		binary.LittleEndian.PutUint64(foot[16:], uint64(len(idx)))
		copy(foot[24:], colEndMagic)
		if _, err := cw.w.Write(foot[:]); err != nil {
			cw.f.Close()
			return err
		}
	}
	if err := cw.w.Flush(); err != nil {
		cw.f.Close()
		return err
	}
	return cw.f.Close()
}

// WriteColFile materializes all tuples of src into a columnar block file
// at path. blockRows <= 0 selects DefaultBlockRows. This is the
// conversion path from any Source — including a row-format FileSource.
func WriteColFile(path string, src Source, blockRows int) (int64, error) {
	cw, err := CreateColFile(path, src.Schema(), blockRows)
	if err != nil {
		return 0, err
	}
	if err := ForEachChunk(src, cw.blockRows, cw.AppendChunk); err != nil {
		cw.Close()
		os.Remove(path)
		return 0, err
	}
	n := cw.Count()
	if err := cw.Close(); err != nil {
		os.Remove(path)
		return 0, err
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// ColSource

// ColOptions configures how a ColSource reads its file.
type ColOptions struct {
	// FS, when non-nil, replaces the real filesystem for every scan pass
	// (fault-injection tests route reads through internal/faultfs here).
	// File metadata — header and footer — is always read directly.
	FS FS
	// Retry bounds the retry-with-backoff applied to transient open and
	// read faults during scans. The zero value selects the defaults.
	Retry RetryPolicy
	// Recorder, when non-nil, receives retry accounting.
	Recorder FaultRecorder
	// Pipeline configures the asynchronous prefetch/decode pipeline used
	// by ScanChunks. The zero value selects the defaults (see
	// PipelineConfig); Depth < 0 decodes synchronously in the caller.
	Pipeline PipelineConfig
}

// colIndex lazily holds the per-block offset table of one file, shared
// by the full-file source and every Range view derived from it so the
// load (footer-region read for version 2, header walk for version 1)
// happens at most once per OpenColFile.
type colIndex struct {
	once    sync.Once
	offsets []int64 // len blocks+1; [i] = offset of block i's length prefix, [blocks] = end of block region
	err     error
}

// ColSource is a Source backed by a columnar block file created by
// ColFileWriter. Every scan opens a fresh sequential pass over the file
// — or, for a Range view, over its contiguous run of blocks.
type ColSource struct {
	path      string
	schema    *Schema
	version   byte
	blockRows int
	headerLen int64
	dataLen   int64 // bytes of the block region (between header and index/footer)
	indexLen  int64 // bytes of the offset index (0 for version-1 files)
	count     int64 // rows in [lo, hi)
	blocks    int64 // blocks in the whole file
	lo, hi    int64 // the view's block range (full file: [0, blocks))
	idx       *colIndex

	fsys  FS
	retry RetryPolicy
	rec   FaultRecorder
	pipe  PipelineConfig
}

// OpenColFile opens a columnar dataset file, validating its header and
// footer. A missing or mangled footer — the signature of a torn write —
// surfaces as an error wrapping ErrColTruncated.
func OpenColFile(path string, opts ...ColOptions) (*ColSource, error) {
	var o ColOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(colMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("data: %s: reading magic: %w", path, err)
	}
	if string(magic) != colMagic {
		return nil, fmt.Errorf("data: %s: not a BOAT columnar file (bad magic)", path)
	}
	var fixed [6]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, fmt.Errorf("data: %s: reading header: %w", path, err)
	}
	version := fixed[0]
	if version != colVersion && version != colVersion1 {
		return nil, fmt.Errorf("data: %s: unsupported columnar version %d", path, version)
	}
	blockRows := int(binary.LittleEndian.Uint32(fixed[2:]))
	if blockRows <= 0 || blockRows > 1<<24 {
		return nil, fmt.Errorf("data: %s: implausible block rows %d", path, blockRows)
	}
	schema, err := readSchema(br)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if int64(blockRows)*int64(len(schema.Attributes)+1) > maxColBlockValues {
		return nil, fmt.Errorf("data: %s: implausible block geometry (%d rows x %d columns)",
			path, blockRows, len(schema.Attributes)+1)
	}
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, err
	}
	headerLen := pos - int64(br.Buffered())
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	footerLen := int64(colFooterLen)
	if version == colVersion1 {
		footerLen = colFooterV1Len
	}
	if st.Size() < headerLen+footerLen {
		return nil, fmt.Errorf("%w: %s: no footer", ErrColTruncated, path)
	}
	foot := make([]byte, footerLen)
	if _, err := f.ReadAt(foot, st.Size()-footerLen); err != nil {
		return nil, fmt.Errorf("data: %s: reading footer: %w", path, err)
	}
	if string(foot[footerLen-8:]) != colEndMagic {
		return nil, fmt.Errorf("%w: %s: footer magic missing (partial write?)", ErrColTruncated, path)
	}
	count := int64(binary.LittleEndian.Uint64(foot[0:]))
	blocks := int64(binary.LittleEndian.Uint64(foot[8:]))
	var indexLen int64
	if version != colVersion1 {
		indexLen = int64(binary.LittleEndian.Uint64(foot[16:]))
		if indexLen != 8*blocks+4 || st.Size() < headerLen+indexLen+footerLen {
			return nil, fmt.Errorf("%w: %s: offset index inconsistent with footer", ErrColTruncated, path)
		}
	}
	dataLen := st.Size() - headerLen - indexLen - footerLen
	if count < 0 || blocks < 0 || (blocks == 0) != (dataLen == 0) ||
		(blocks > 0 && count > blocks*int64(blockRows)) {
		return nil, fmt.Errorf("%w: %s: footer inconsistent with file size", ErrColTruncated, path)
	}
	return &ColSource{
		path:      path,
		schema:    schema,
		version:   version,
		blockRows: blockRows,
		headerLen: headerLen,
		dataLen:   dataLen,
		indexLen:  indexLen,
		count:     count,
		blocks:    blocks,
		lo:        0,
		hi:        blocks,
		idx:       &colIndex{},
		fsys:      fsOrDefault(o.FS),
		retry:     o.Retry,
		rec:       o.Recorder,
		pipe:      o.Pipeline,
	}, nil
}

// OpenColRange opens a columnar dataset file restricted to the blocks
// [blockLo, blockHi) — one shard of a block-parallel scan. The view
// scans only its byte range of the file and reports the exact row count
// of its blocks.
func OpenColRange(path string, blockLo, blockHi int64, opts ...ColOptions) (*ColSource, error) {
	s, err := OpenColFile(path, opts...)
	if err != nil {
		return nil, err
	}
	return s.Range(blockLo, blockHi)
}

// Range returns a view of the source restricted to blocks [lo, hi) of
// the file (absolute block indexes). Views share the parent's lazily
// loaded offset index; deriving a range of a range is not supported.
func (s *ColSource) Range(lo, hi int64) (*ColSource, error) {
	if s.lo != 0 || s.hi != s.blocks {
		return nil, fmt.Errorf("data: %s: range of a range view", s.path)
	}
	if lo < 0 || hi > s.blocks || lo > hi {
		return nil, fmt.Errorf("data: %s: block range [%d,%d) outside [0,%d)", s.path, lo, hi, s.blocks)
	}
	r := *s
	r.lo, r.hi = lo, hi
	r.count = s.rowsInBlocks(lo, hi)
	return &r, nil
}

// rowsInBlocks computes the exact row count of blocks [lo, hi): the
// writer only flushes full blocks mid-stream, so every block except the
// file's last holds exactly blockRows rows.
func (s *ColSource) rowsInBlocks(lo, hi int64) int64 {
	if lo >= hi {
		return 0
	}
	n := (hi - lo) * int64(s.blockRows)
	if hi == s.blocks {
		n += s.count - s.blocks*int64(s.blockRows) // last block's shortfall (<= 0)
	}
	if n < 0 {
		n = 0
	}
	return n
}

// BlockOffsets returns the file-absolute offset of every block's length
// prefix plus a final sentinel (the end of the block region) — blocks+1
// entries. Version-2 files read the footer-region index (CRC-checked);
// version-1 files derive it by a one-pass walk of the block length
// prefixes. The result is computed once and shared with every Range
// view. Like the header and footer, the index is metadata and is read
// directly, not through the injected FS.
func (s *ColSource) BlockOffsets() ([]int64, error) {
	s.idx.once.Do(func() {
		s.idx.offsets, s.idx.err = s.loadBlockOffsets()
	})
	return s.idx.offsets, s.idx.err
}

func (s *ColSource) loadBlockOffsets() ([]int64, error) {
	end := s.headerLen + s.dataLen
	offsets := make([]int64, 0, s.blocks+1)
	if s.version != colVersion1 {
		f, err := os.Open(s.path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		idx := make([]byte, s.indexLen)
		if _, err := f.ReadAt(idx, end); err != nil {
			return nil, fmt.Errorf("%w: %s: reading offset index: %v", ErrColTruncated, s.path, err)
		}
		body, tail := idx[:len(idx)-4], idx[len(idx)-4:]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
			return nil, fmt.Errorf("%w: %s: offset index", ErrColChecksum, s.path)
		}
		prev := int64(0)
		for i := int64(0); i < s.blocks; i++ {
			off := int64(binary.LittleEndian.Uint64(body[8*i:]))
			if off < s.headerLen || off <= prev && i > 0 || off+8 > end {
				return nil, fmt.Errorf("%w: %s: offset index entry %d out of order", ErrColTruncated, s.path, i)
			}
			if i == 0 && off != s.headerLen {
				return nil, fmt.Errorf("%w: %s: offset index does not start at the first block", ErrColTruncated, s.path)
			}
			offsets = append(offsets, off)
			prev = off
		}
		return append(offsets, end), nil
	}
	// Version 1: walk the length prefixes. 4 bytes per block via ReadAt —
	// a metadata pass, not a data scan.
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pre [4]byte
	off := s.headerLen
	for i := int64(0); i < s.blocks; i++ {
		if off+8 > end {
			return nil, fmt.Errorf("%w: %s: block %d past end of block region", ErrColTruncated, s.path, i)
		}
		if _, err := f.ReadAt(pre[:], off); err != nil {
			return nil, fmt.Errorf("%w: %s: walking block %d: %v", ErrColTruncated, s.path, i, err)
		}
		bodyLen := int64(binary.LittleEndian.Uint32(pre[:]))
		if bodyLen == 0 || bodyLen > maxColBlockBody || off+4+bodyLen+4 > end {
			return nil, fmt.Errorf("%w: %s: walking block %d: implausible length %d", ErrColTruncated, s.path, i, bodyLen)
		}
		offsets = append(offsets, off)
		off += 4 + bodyLen + 4
	}
	if off != end {
		return nil, fmt.Errorf("%w: %s: %d bytes of slack after the last block", ErrColTruncated, s.path, end-off)
	}
	return append(offsets, end), nil
}

// Path returns the backing file path.
func (s *ColSource) Path() string { return s.path }

// BlockRows returns the file's block row capacity.
func (s *ColSource) BlockRows() int { return s.blockRows }

// Blocks returns the number of blocks the view scans (the whole file
// for a source returned by OpenColFile, the range for a Range view).
func (s *ColSource) Blocks() int64 { return s.hi - s.lo }

// BlockRange returns the view's block range [lo, hi) in absolute file
// block indexes.
func (s *ColSource) BlockRange() (lo, hi int64) { return s.lo, s.hi }

// SizeBytes returns the encoded size of the block region (physical
// payload bytes, excluding header and footer).
func (s *ColSource) SizeBytes() int64 { return s.dataLen }

// Schema implements Source.
func (s *ColSource) Schema() *Schema { return s.schema }

// Count implements Source.
func (s *ColSource) Count() (int64, bool) { return s.count, true }

// Scan implements Source by adapting the chunked scan to row batches.
func (s *ColSource) Scan() (Scanner, error) {
	cs, err := s.ScanChunks()
	if err != nil {
		return nil, err
	}
	arity := len(s.schema.Attributes)
	sc := &colRowScanner{cs: cs, ch: NewChunk(arity, DefaultBatchSize)}
	sc.batch = make([]Tuple, DefaultBatchSize)
	backing := make([]float64, DefaultBatchSize*arity)
	for i := range sc.batch {
		sc.batch[i].Values = backing[i*arity : (i+1)*arity]
	}
	return sc, nil
}

// ScanChunks implements ChunkedSource using the source's configured
// pipeline (asynchronous prefetch + parallel decode by default).
func (s *ColSource) ScanChunks() (ChunkScanner, error) {
	return s.ScanChunksPipeline(s.pipe)
}

// ScanChunksPipeline begins a chunked scan with an explicit pipeline
// configuration, overriding the source's own. cfg.Depth < 0 selects the
// synchronous reader.
func (s *ColSource) ScanChunksPipeline(cfg PipelineConfig) (ChunkScanner, error) {
	cfg = cfg.normalized()
	br, err := s.openBlockReader()
	if err != nil {
		return nil, err
	}
	if cfg.Depth <= 0 {
		return &colChunkScanner{
			src:   s,
			br:    br,
			dec:   NewChunk(len(s.schema.Attributes), s.blockRows),
			zones: make([]ColZone, len(s.schema.Attributes)),
			block: s.lo,
		}, nil
	}
	return newColPipeline(s, br, cfg), nil
}

// BlockSplitSource is implemented by sources whose chunked scan can be
// partitioned into independent contiguous block ranges, each served by a
// private reader with no shared state — the unit the block-sharded
// cleanup scan parallelizes over. Wrappers (iostats tracking) forward
// both methods so the capability survives wrapping.
type BlockSplitSource interface {
	ChunkedSource
	// BlockSplits returns the number of independently scannable blocks;
	// 0 means the source cannot be split.
	BlockSplits() int64
	// ScanChunkRange begins a chunked scan of blocks [lo, hi) under cfg.
	// The union of the scans of any partition of [0, BlockSplits()) into
	// contiguous ranges delivers exactly the full scan's rows, in file
	// order within each range.
	ScanChunkRange(lo, hi int64, cfg PipelineConfig) (ChunkScanner, error)
}

// BlockSplits implements BlockSplitSource.
func (s *ColSource) BlockSplits() int64 { return s.hi - s.lo }

// ScanChunkRange implements BlockSplitSource: a scan of blocks [lo, hi)
// with a private reader and pipeline. Failures to set the range scan up
// (index load, open) are wrapped in a *BlockError locating the range's
// first block, so every range-scan failure is typed block-level.
func (s *ColSource) ScanChunkRange(lo, hi int64, cfg PipelineConfig) (ChunkScanner, error) {
	r, err := s.Range(lo, hi)
	if err != nil {
		return nil, err
	}
	sc, err := r.ScanChunksPipeline(cfg)
	if err != nil {
		return nil, &BlockError{Path: s.path, Block: lo, Err: err}
	}
	return sc, nil
}

// openBlockReader opens a fresh pass positioned at the view's first
// block, retrying transient open faults. Full-file views start right
// after the header; Range views resolve their start offset through the
// block index and seek to it when the filesystem supports seeking,
// falling back to read-and-discard otherwise (injected test filesystems
// are plain readers).
func (s *ColSource) openBlockReader() (*blockReader, error) {
	start, length := s.headerLen, s.dataLen
	if s.lo != 0 || s.hi != s.blocks {
		offs, err := s.BlockOffsets()
		if err != nil {
			return nil, err
		}
		start, length = offs[s.lo], offs[s.hi]-offs[s.lo]
	}
	var rc io.ReadCloser
	err := s.retry.Do(s.rec, func() error {
		var err error
		rc, err = s.fsys.Open(s.path)
		return err
	})
	if err != nil {
		return nil, err
	}
	br := &blockReader{
		rc:        rc,
		path:      s.path,
		retry:     s.retry.withDefaults(),
		rec:       s.rec,
		remBlocks: s.hi - s.lo,
		remBytes:  length,
		block:     s.lo,
	}
	if sk, ok := rc.(io.Seeker); ok {
		if _, err := sk.Seek(start, io.SeekStart); err != nil {
			rc.Close()
			return nil, err
		}
		br.r = bufio.NewReaderSize(rc, 1<<20)
		return br, nil
	}
	br.r = bufio.NewReaderSize(rc, 1<<20)
	if err := br.discard(start); err != nil {
		br.Close()
		return nil, err
	}
	return br, nil
}

// decodeBlock verifies raw's checksum and decodes it into dst.
func (s *ColSource) decodeBlock(raw []byte, block int64, dst *Chunk, zones []ColZone) error {
	if len(raw) < 8 {
		return &BlockError{Path: s.path, Block: block, Err: ErrColTruncated}
	}
	body := raw[:len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return &BlockError{Path: s.path, Block: block, Err: ErrColChecksum}
	}
	if err := decodeBlockInto(body, s.blockRows, dst, zones, s.schema.ClassCount); err != nil {
		return &BlockError{Path: s.path, Block: block, Err: err}
	}
	return nil
}

// blockReader reads raw length-prefixed blocks sequentially, retrying
// transient read faults under the source's RetryPolicy. phys counts every
// byte that crossed the filesystem boundary (it is read concurrently by
// iostats while the pipeline's reader goroutine advances it).
type blockReader struct {
	rc        io.ReadCloser
	r         *bufio.Reader
	path      string
	retry     RetryPolicy
	rec       FaultRecorder
	remBlocks int64
	remBytes  int64
	block     int64
	phys      atomic.Int64
}

// readFull fills p, retrying transient faults with backoff.
func (b *blockReader) readFull(p []byte) error {
	backoff := b.retry.Backoff
	tries := 1
	filled := 0
	for filled < len(p) {
		n, err := b.r.Read(p[filled:])
		filled += n
		switch {
		case err == nil:
		case err == io.EOF:
			return fmt.Errorf("%w: unexpected EOF mid-block", ErrColTruncated)
		case IsTransient(err) && tries < b.retry.Attempts:
			tries++
			if b.rec != nil {
				b.rec.RecordSpillRetry()
			}
			b.retry.Sleep(backoff)
			backoff *= 2
		default:
			return err
		}
	}
	b.phys.Add(int64(filled))
	return nil
}

// discard consumes n bytes (the header) from the stream.
func (b *blockReader) discard(n int64) error {
	var scratch [256]byte
	for n > 0 {
		take := int64(len(scratch))
		if take > n {
			take = n
		}
		if err := b.readFull(scratch[:take]); err != nil {
			return err
		}
		n -= take
	}
	return nil
}

// readRawBlock reads the next block's body+CRC into buf (grown as
// needed), returning io.EOF after the last block.
func (b *blockReader) readRawBlock(buf []byte) ([]byte, error) {
	if b.remBlocks <= 0 {
		return nil, io.EOF
	}
	var pre [4]byte
	if err := b.readFull(pre[:]); err != nil {
		return nil, &BlockError{Path: b.path, Block: b.block, Err: err}
	}
	bodyLen := binary.LittleEndian.Uint32(pre[:])
	if bodyLen == 0 || bodyLen > maxColBlockBody || int64(bodyLen)+8 > b.remBytes {
		return nil, &BlockError{Path: b.path, Block: b.block,
			Err: fmt.Errorf("%w: implausible block length %d", ErrColTruncated, bodyLen)}
	}
	need := int(bodyLen) + 4
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if err := b.readFull(buf); err != nil {
		return nil, &BlockError{Path: b.path, Block: b.block, Err: err}
	}
	b.remBytes -= int64(need) + 4
	b.remBlocks--
	b.block++
	return buf, nil
}

// PhysicalBytesRead returns the bytes read from the filesystem so far.
func (b *blockReader) PhysicalBytesRead() int64 { return b.phys.Load() }

func (b *blockReader) Close() error {
	if b.rc == nil {
		return nil
	}
	err := b.rc.Close()
	b.rc = nil
	return err
}

// ---------------------------------------------------------------------------
// Synchronous scanner

// colChunkScanner decodes blocks inline with the consumer — the Depth < 0
// baseline the pipeline is benchmarked against, and the path used when
// the pipeline is explicitly disabled.
type colChunkScanner struct {
	src   *ColSource
	br    *blockReader
	raw   []byte
	dec   *Chunk
	zones []ColZone
	pos   int
	block int64
	done  bool
	err   error
}

func (s *colChunkScanner) NextChunk(dst *Chunk) error {
	appended := false
	for !dst.Full() {
		if s.pos >= s.dec.Len() {
			if s.done || s.err != nil {
				break
			}
			raw, err := s.br.readRawBlock(s.raw)
			if err == io.EOF {
				s.done = true
				break
			}
			if err != nil {
				s.err = err
				break
			}
			s.raw = raw
			s.dec.Reset()
			if err := s.src.decodeBlock(raw, s.block, s.dec, s.zones); err != nil {
				s.err = err
				break
			}
			s.block++
			s.pos = 0
		}
		n := dst.Cap() - dst.Len()
		if rem := s.dec.Len() - s.pos; n > rem {
			n = rem
		}
		prev := dst.Len()
		dst.AppendFrom(s.dec, s.pos, n)
		dst.AbsorbZonesFrom(s.dec, prev)
		s.pos += n
		appended = true
	}
	if !appended {
		if s.err != nil {
			return s.err
		}
		if s.done {
			return io.EOF
		}
	}
	return nil
}

// PhysicalBytesRead implements PhysicalReader.
func (s *colChunkScanner) PhysicalBytesRead() int64 { return s.br.PhysicalBytesRead() }

func (s *colChunkScanner) Close() error { return s.br.Close() }

// ---------------------------------------------------------------------------
// Row adapter and format sniffing

// colRowScanner adapts the chunked scan to the row Scanner interface.
type colRowScanner struct {
	cs    ChunkScanner
	ch    *Chunk
	batch []Tuple
}

func (s *colRowScanner) Next() ([]Tuple, error) {
	s.ch.Reset()
	if err := s.cs.NextChunk(s.ch); err != nil {
		return nil, err
	}
	n := s.ch.Len()
	if n == 0 {
		return nil, io.EOF
	}
	for r := 0; r < n; r++ {
		s.ch.Gather(r, s.batch[r].Values)
		s.batch[r].Class = s.ch.Class(r)
	}
	return s.batch[:n], nil
}

func (s *colRowScanner) Close() error { return s.cs.Close() }

// Open opens a dataset file of either on-disk format, sniffing the magic:
// row-major files (FileSource) and columnar block files (ColSource).
// Columnar options apply only to columnar files.
func Open(path string, opts ...ColOptions) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	magic := make([]byte, 8)
	_, err = io.ReadFull(f, magic)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("data: %s: reading magic: %w", path, err)
	}
	switch string(magic) {
	case fileMagic:
		return OpenFile(path)
	case colMagic:
		return OpenColFile(path, opts...)
	default:
		return nil, fmt.Errorf("data: %s: not a BOAT dataset file (bad magic)", path)
	}
}
