package data

import (
	"fmt"
	"io"
	"sync"
)

// batchScratch holds the transient per-call buffers of the batch
// add/remove paths — row hashes, survivor indices, one gathered row —
// pooled so steady-state streaming updates stop paying an allocation
// (and its zeroing) per (node, chunk) call.
type batchScratch struct {
	hashes []uint64
	surv   []int32
	row    []float64
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// TupleBag is a multiset of tuples supporting additions and deletions, with
// the additions held in a SpillBuffer (budgeted memory, temp-file
// overflow) and deletions tracked as a pending-removal multiset that is
// subtracted lazily on iteration.
//
// BOAT uses bags for the sets S_n of tuples stuck inside confidence
// intervals and for the stored families of leaf nodes; the deletion side
// implements the paper's dynamic environment where expired chunks are
// removed from the training dataset (Section 4).
type TupleBag struct {
	add      *SpillBuffer
	removals map[uint64][]removalEntry
	removed  int64
}

// removalEntry is one distinct tuple awaiting removal, bucketed by its
// Hash64. The hash-keyed buckets (with an Equal check against entries)
// replace a map keyed by Tuple.Key(), whose string key cost one
// allocation per lookup on the Add fast path.
type removalEntry struct {
	t     Tuple
	count int64
}

// consumeRemoval cancels one pending removal matching t, reporting whether
// a match was found.
func consumeRemoval(pending map[uint64][]removalEntry, t Tuple) bool {
	return consumeRemovalH(pending, t.Hash64(), t)
}

// consumeRemovalH is consumeRemoval with the bucket key already computed —
// the batch paths hash whole chunks column-wise (Chunk.HashRows) and pass
// the per-row keys in.
func consumeRemovalH(pending map[uint64][]removalEntry, h uint64, t Tuple) bool {
	bucket := pending[h]
	for i := range bucket {
		if bucket[i].t.Equal(t) {
			if bucket[i].count > 1 {
				bucket[i].count--
				return true
			}
			bucket[i] = bucket[len(bucket)-1]
			if bucket = bucket[:len(bucket)-1]; len(bucket) == 0 {
				delete(pending, h)
			} else {
				pending[h] = bucket
			}
			return true
		}
	}
	return false
}

// NewTupleBag creates an empty bag over the real filesystem with default
// retries; parameters as NewSpillBuffer.
func NewTupleBag(schema *Schema, dir string, budget *MemBudget, rec SpillRecorder) *TupleBag {
	return NewTupleBagEnv(schema, SpillEnv{Dir: dir, Budget: budget, Rec: rec})
}

// NewTupleBagEnv creates an empty bag whose spill buffer writes through
// env; parameters as NewSpillBufferEnv.
func NewTupleBagEnv(schema *Schema, env SpillEnv) *TupleBag {
	return &TupleBag{add: NewSpillBufferEnv(schema, env)}
}

// Schema returns the bag's schema.
func (b *TupleBag) Schema() *Schema { return b.add.Schema() }

// Len returns the net multiplicity-weighted size.
func (b *TupleBag) Len() int64 { return b.add.Len() - b.removed }

// PendingRemovals returns the number of queued deletions.
func (b *TupleBag) PendingRemovals() int64 { return b.removed }

// Err returns the poison cause of the underlying spill buffer: non-nil
// after an overflow write failed for good. A poisoned bag refuses Add but
// its contents remain iterable.
func (b *TupleBag) Err() error { return b.add.Err() }

// Add copies t into the bag. If a removal of an identical tuple is
// pending, the two cancel out.
func (b *TupleBag) Add(t Tuple) error {
	if b.removed > 0 && consumeRemoval(b.removals, t) {
		b.removed--
		return nil
	}
	return b.add.Append(t)
}

// AddChunkRow adds row r of ch without materializing a Tuple: the row is
// copied straight from the chunk columns into the spill buffer. Removal
// cancellation still applies in the (rare on the scan path) case that
// deletions are pending, gathering the row to match it.
func (b *TupleBag) AddChunkRow(ch *Chunk, r int) error {
	if b.removed > 0 {
		return b.Add(ch.TupleCopy(r))
	}
	return b.add.AppendChunkRow(ch, r)
}

// AddChunkRows adds the chunk rows named by idx (all rows when idx is
// nil). With no pending removals — the steady state of the cleanup scan —
// the rows are copied column-wise in one batch. With removals pending (the
// streaming-update path after deletes), the batch is hashed column-wise
// once, each row whose hash bucket is non-empty is gathered through one
// reused buffer to test for cancellation, and the surviving rows are
// appended in one columnar batch — a row whose bucket is empty (the common
// case when inserts and expired deletes carry disjoint data) never pays
// the gather or the equality walk, only the map probe.
func (b *TupleBag) AddChunkRows(ch *Chunk, idx []int32) error {
	if b.removed == 0 {
		return b.add.AppendChunkRows(ch, idx)
	}
	n := ch.Len()
	if idx != nil {
		n = len(idx)
	}
	if n == 0 {
		return nil
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	hashes := ch.HashRows(sc.hashes, idx)
	sc.hashes = hashes
	if cap(sc.row) < ch.Width() {
		sc.row = make([]float64, ch.Width())
	}
	buf := sc.row[:ch.Width()]
	t := Tuple{Values: buf}
	if cap(sc.surv) < n {
		sc.surv = make([]int32, 0, n)
	}
	surv := sc.surv[:0]
	cancels := func(j, r int) bool {
		if b.removed <= 0 {
			return false
		}
		h := hashes[j]
		if len(b.removals[h]) == 0 {
			return false
		}
		ch.Gather(r, buf)
		t.Class = ch.Class(r)
		if consumeRemovalH(b.removals, h, t) {
			b.removed--
			return true
		}
		return false
	}
	if idx == nil {
		for r := 0; r < n; r++ {
			if !cancels(r, r) {
				surv = append(surv, int32(r))
			}
		}
	} else {
		for j, r := range idx {
			if !cancels(j, int(r)) {
				surv = append(surv, r)
			}
		}
	}
	sc.surv = surv
	if len(surv) == 0 {
		return nil
	}
	return b.add.AppendChunkRows(ch, surv)
}

// Remove queues the deletion of one occurrence of t. The occurrence must
// exist; a dangling removal is detected (and reported as an error) by the
// next ForEach/Materialize/Compact.
func (b *TupleBag) Remove(t Tuple) error {
	if b.removals == nil {
		b.removals = make(map[uint64][]removalEntry)
	}
	h := t.Hash64()
	bucket := b.removals[h]
	for i := range bucket {
		if bucket[i].t.Equal(t) {
			bucket[i].count++
			b.removed++
			return nil
		}
	}
	b.removals[h] = append(bucket, removalEntry{t: t.Clone(), count: 1})
	b.removed++
	return nil
}

// RemoveChunkRows queues the deletion of the chunk rows named by idx (all
// rows when idx is nil). It is exactly equivalent to calling Remove on
// each row's tuple, but batch-shaped: the bucket keys come from one
// column-wise hash pass over the chunk, and instead of cloning each new
// distinct tuple the entries reference rows of a single shared row-major
// snapshot of the batch — two allocations for the whole call where the
// row path pays one clone per distinct tuple.
func (b *TupleBag) RemoveChunkRows(ch *Chunk, idx []int32) error {
	n := ch.Len()
	if idx != nil {
		n = len(idx)
	}
	if n == 0 {
		return nil
	}
	if b.removals == nil {
		b.removals = make(map[uint64][]removalEntry)
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	hashes := ch.HashRows(sc.hashes, idx)
	sc.hashes = hashes
	// The snapshot itself is NOT pooled: the new entries reference its rows.
	rows := ch.GatherRows(idx)
	for j, t := range rows {
		h := hashes[j]
		bucket := b.removals[h]
		found := false
		for i := range bucket {
			if bucket[i].t.Equal(t) {
				bucket[i].count++
				found = true
				break
			}
		}
		if !found {
			b.removals[h] = append(bucket, removalEntry{t: t, count: 1})
		}
		b.removed++
	}
	return nil
}

// ForEach iterates the net content of the bag (additions minus removals).
// Tuples passed to fn are only valid during the call.
func (b *TupleBag) ForEach(fn func(Tuple) error) error {
	var pending map[uint64][]removalEntry
	left := b.removed
	if left > 0 {
		// Deep-copy the buckets (entries share tuple storage with the
		// originals) because consumeRemoval mutates counts.
		pending = make(map[uint64][]removalEntry, len(b.removals))
		for h, bucket := range b.removals {
			pending[h] = append([]removalEntry(nil), bucket...)
		}
	}
	sc, err := b.add.Scan()
	if err != nil {
		return err
	}
	defer sc.Close()
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for _, t := range batch {
			if left > 0 && consumeRemoval(pending, t) {
				left--
				continue
			}
			if err := fn(t); err != nil {
				return err
			}
		}
	}
	if left > 0 {
		return fmt.Errorf("data: %d removal(s) did not match any tuple in the bag", left)
	}
	return nil
}

// Materialize returns deep copies of the bag's net content. The copies
// share one backing array rather than paying one allocation per tuple.
func (b *TupleBag) Materialize() ([]Tuple, error) {
	width := len(b.Schema().Attributes)
	n := b.Len()
	if n < 0 {
		n = 0
	}
	out := make([]Tuple, 0, n)
	backing := make([]float64, 0, int(n)*width)
	err := b.ForEach(func(t Tuple) error {
		if cap(backing)-len(backing) < width {
			backing = make([]float64, 0, max(width*DefaultBatchSize, width))
		}
		start := len(backing)
		backing = append(backing, t.Values...)
		out = append(out, Tuple{Values: backing[start:len(backing):len(backing)], Class: t.Class})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compact rewrites the bag so pending removals are applied physically.
// Call it when the removal backlog grows large.
func (b *TupleBag) Compact() error {
	if b.removed == 0 {
		return nil
	}
	fresh := NewSpillBufferEnv(b.add.schema, b.add.env)
	err := b.ForEach(fresh.Append)
	if err != nil {
		fresh.Close()
		return err
	}
	if err := b.add.Close(); err != nil {
		// The old buffer's contents were fully copied; a removal failure
		// must not lose the compacted bag, but it must surface.
		b.add = fresh
		b.removals = nil
		b.removed = 0
		return err
	}
	b.add = fresh
	b.removals = nil
	b.removed = 0
	return nil
}

// Reset empties the bag, keeping resources for reuse.
func (b *TupleBag) Reset() error {
	b.removals = nil
	b.removed = 0
	return b.add.Reset()
}

// Close releases all resources.
func (b *TupleBag) Close() error {
	b.removals = nil
	b.removed = 0
	return b.add.Close()
}

// Source returns a read-only Source view of the bag's net content.
// The bag must not be mutated while scans of the view are open.
func (b *TupleBag) Source() Source { return &bagSource{b} }

type bagSource struct{ b *TupleBag }

func (s *bagSource) Schema() *Schema      { return s.b.Schema() }
func (s *bagSource) Count() (int64, bool) { return s.b.Len(), true }

func (s *bagSource) Scan() (Scanner, error) {
	// Bags with no pending removals can stream straight from the buffer;
	// otherwise materialize through the removal filter.
	if s.b.removed == 0 {
		return s.b.add.Scan()
	}
	ts, err := s.b.Materialize()
	if err != nil {
		return nil, err
	}
	return &memScanner{tuples: ts}, nil
}
