package data

import (
	"errors"
	"fmt"
	"testing"
)

func makeTuples(n int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{Values: []float64{float64(i), float64(i % 4)}, Class: i % 2}
	}
	return out
}

func TestMemSourceScan(t *testing.T) {
	s := twoAttrSchema(t)
	for _, n := range []int{0, 1, DefaultBatchSize - 1, DefaultBatchSize, DefaultBatchSize + 1, 3000} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			src := NewMemSource(s, makeTuples(n))
			if c, ok := src.Count(); !ok || c != int64(n) {
				t.Fatalf("Count = %d,%v", c, ok)
			}
			var seen int
			err := ForEach(src, func(tp Tuple) error {
				if int(tp.Values[0]) != seen {
					t.Fatalf("tuple %d out of order: %v", seen, tp)
				}
				seen++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if seen != n {
				t.Errorf("saw %d tuples, want %d", seen, n)
			}
		})
	}
}

func TestMemSourceRescannable(t *testing.T) {
	src := NewMemSource(twoAttrSchema(t), makeTuples(100))
	for pass := 0; pass < 3; pass++ {
		n, err := CountTuples(src)
		if err != nil || n != 100 {
			t.Fatalf("pass %d: count %d err %v", pass, n, err)
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	src := NewMemSource(twoAttrSchema(t), makeTuples(100))
	boom := errors.New("boom")
	var seen int
	err := ForEach(src, func(Tuple) error {
		seen++
		if seen == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if seen != 10 {
		t.Errorf("callback invoked %d times, want 10", seen)
	}
}

func TestReadAllDeepCopies(t *testing.T) {
	orig := makeTuples(5)
	src := NewMemSource(twoAttrSchema(t), orig)
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	got[0].Values[0] = 999
	if orig[0].Values[0] == 999 {
		t.Error("ReadAll returned shared backing arrays")
	}
}

func TestConcatSource(t *testing.T) {
	s := twoAttrSchema(t)
	a := NewMemSource(s, makeTuples(10))
	b := NewMemSource(s, makeTuples(5))
	c, err := NewConcatSource(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := c.Count(); !ok || n != 15 {
		t.Fatalf("Count = %d,%v", n, ok)
	}
	var seen int
	if err := ForEach(c, func(Tuple) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 15 {
		t.Errorf("saw %d, want 15", seen)
	}
}

func TestConcatSourceSchemaMismatch(t *testing.T) {
	a := NewMemSource(twoAttrSchema(t), nil)
	other := MustSchema([]Attribute{{Name: "z", Kind: Numeric}}, 2)
	b := NewMemSource(other, nil)
	if _, err := NewConcatSource(a, b); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("err = %v, want schema mismatch", err)
	}
	if _, err := NewConcatSource(); err == nil {
		t.Error("empty concat should error")
	}
}

func TestCountTuplesScansWhenUnknown(t *testing.T) {
	src := &unknownCountSource{inner: NewMemSource(twoAttrSchema(t), makeTuples(42))}
	n, err := CountTuples(src)
	if err != nil || n != 42 {
		t.Fatalf("count = %d err = %v", n, err)
	}
}

// unknownCountSource hides its count to exercise the scanning fallback.
type unknownCountSource struct{ inner Source }

func (u *unknownCountSource) Schema() *Schema        { return u.inner.Schema() }
func (u *unknownCountSource) Count() (int64, bool)   { return 0, false }
func (u *unknownCountSource) Scan() (Scanner, error) { return u.inner.Scan() }
