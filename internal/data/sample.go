package data

import (
	"math/rand"
)

// ReservoirSample draws a uniform random sample of up to n tuples from src
// in a single sequential scan (Vitter's algorithm R). If src holds fewer
// than n tuples, all of them are returned. The returned tuples are deep
// copies. The order of the returned sample is not meaningful.
//
// This is the paper's "obtain a large sample D' from D" primitive: it
// works over any scannable source, including training databases defined by
// queries that are never materialized.
func ReservoirSample(src Source, n int, rng *rand.Rand) ([]Tuple, error) {
	if n <= 0 {
		return nil, nil
	}
	// The scan is chunked and the reservoir lives in one fixed backing
	// array (replacement overwrites a slot in place), so sampling allocates
	// a constant amount regardless of |D|. The RNG consumption — one Int63n
	// per tuple once the reservoir is full, in stream order — is identical
	// to the row-at-a-time formulation, so seeded runs reproduce the same
	// sample.
	width := len(src.Schema().Attributes)
	backing := make([]float64, n*width)
	reservoir := make([]Tuple, 0, n)
	var seen int64
	err := ForEachChunk(src, DefaultChunkRows, func(ch *Chunk) error {
		for r := 0; r < ch.Len(); r++ {
			seen++
			if len(reservoir) < n {
				k := len(reservoir)
				vals := backing[k*width : (k+1)*width : (k+1)*width]
				ch.Gather(r, vals)
				reservoir = append(reservoir, Tuple{Values: vals, Class: ch.Class(r)})
				continue
			}
			j := rng.Int63n(seen)
			if j < int64(n) {
				ch.Gather(r, reservoir[j].Values)
				reservoir[j].Class = ch.Class(r)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reservoir, nil
}

// SampleWithReplacement draws n tuples uniformly with replacement from the
// in-memory population. This implements the bootstrap resampling step of
// the paper's sampling phase. The returned slice shares tuples with the
// population (no copies: bootstrap consumers treat tuples as read-only).
func SampleWithReplacement(population []Tuple, n int, rng *rand.Rand) []Tuple {
	if len(population) == 0 || n <= 0 {
		return nil
	}
	out := make([]Tuple, n)
	for i := range out {
		out[i] = population[rng.Intn(len(population))]
	}
	return out
}

// Shuffle permutes tuples in place.
func Shuffle(ts []Tuple, rng *rand.Rand) {
	rng.Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
}
