package data

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Tuple is one training record: one value per predictor attribute plus a
// class label. Numeric attribute values are stored directly; categorical
// values are stored as their category code converted to float64 (always a
// small non-negative integer, hence exactly representable).
type Tuple struct {
	Values []float64
	Class  int
}

// Num returns the value of numeric attribute i.
func (t Tuple) Num(i int) float64 { return t.Values[i] }

// Cat returns the category code of categorical attribute i.
func (t Tuple) Cat(i int) int { return int(t.Values[i]) }

// Clone returns a deep copy of the tuple, safe to retain after the scanner
// batch that produced t has been recycled.
func (t Tuple) Clone() Tuple {
	v := make([]float64, len(t.Values))
	copy(v, t.Values)
	return Tuple{Values: v, Class: t.Class}
}

// Equal reports exact equality of values and class. NaN values compare
// equal to each other (any payload): a tuple carrying a missing value must
// match its own copy so the dynamic environment can delete it again, which
// IEEE equality would forbid.
func (t Tuple) Equal(o Tuple) bool {
	if t.Class != o.Class || len(t.Values) != len(o.Values) {
		return false
	}
	for i := range t.Values {
		a, b := t.Values[i], o.Values[i]
		if a != b && (a == a || b == b) {
			return false
		}
	}
	return true
}

// canonicalNaNBits is the bit pattern every NaN hashes as, so Hash64 stays
// consistent with Equal (which treats all NaNs as one value).
var canonicalNaNBits = math.Float64bits(math.NaN())

// Hash64 returns a 64-bit FNV-1a hash over the tuple's value bits and
// class. TupleBag's removal bookkeeping uses it as a bucket key (with an
// Equal check against the bucket's entries for collisions), avoiding the
// per-tuple string allocation a byte-exact map key would cost. NaNs are
// canonicalized before hashing so Equal tuples always share a bucket.
func (t Tuple) Hash64() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range t.Values {
		b := math.Float64bits(v)
		if v != v {
			b = canonicalNaNBits
		}
		for i := 0; i < 64; i += 8 {
			h = (h ^ (b >> i & 0xff)) * prime64
		}
	}
	c := uint64(t.Class)
	for i := 0; i < 64; i += 8 {
		h = (h ^ (c >> i & 0xff)) * prime64
	}
	return h
}

// Key returns a byte-exact identity key for the tuple (used by tests for
// multiset comparisons). Two tuples have equal keys iff they have
// bit-identical values and the same class.
func (t Tuple) Key() string {
	var sb strings.Builder
	sb.Grow(8*len(t.Values) + 8)
	var buf [8]byte
	for _, v := range t.Values {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		sb.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(t.Class))
	sb.Write(buf[:])
	return sb.String()
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return fmt.Sprintf("(%s | class=%d)", strings.Join(parts, ","), t.Class)
}

// CloneTuples deep-copies a slice of tuples. All copies share one backing
// array (one allocation for the whole slice instead of one per row);
// ragged inputs fall back to per-row copies for the odd-width rows.
func CloneTuples(ts []Tuple) []Tuple {
	if len(ts) == 0 {
		return nil
	}
	width := len(ts[0].Values)
	out := make([]Tuple, len(ts))
	backing := make([]float64, 0, len(ts)*width)
	for i, t := range ts {
		if len(t.Values) != width {
			out[i] = t.Clone()
			continue
		}
		start := len(backing)
		if cap(backing)-start < width {
			backing = make([]float64, 0, len(ts)*width)
			start = 0
		}
		backing = append(backing, t.Values...)
		out[i] = Tuple{Values: backing[start:len(backing):len(backing)], Class: t.Class}
	}
	return out
}
