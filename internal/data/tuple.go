package data

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Tuple is one training record: one value per predictor attribute plus a
// class label. Numeric attribute values are stored directly; categorical
// values are stored as their category code converted to float64 (always a
// small non-negative integer, hence exactly representable).
type Tuple struct {
	Values []float64
	Class  int
}

// Num returns the value of numeric attribute i.
func (t Tuple) Num(i int) float64 { return t.Values[i] }

// Cat returns the category code of categorical attribute i.
func (t Tuple) Cat(i int) int { return int(t.Values[i]) }

// Clone returns a deep copy of the tuple, safe to retain after the scanner
// batch that produced t has been recycled.
func (t Tuple) Clone() Tuple {
	v := make([]float64, len(t.Values))
	copy(v, t.Values)
	return Tuple{Values: v, Class: t.Class}
}

// Equal reports exact equality of values and class.
func (t Tuple) Equal(o Tuple) bool {
	if t.Class != o.Class || len(t.Values) != len(o.Values) {
		return false
	}
	for i := range t.Values {
		if t.Values[i] != o.Values[i] {
			return false
		}
	}
	return true
}

// Key returns a byte-exact identity key for the tuple, used by multiset
// removal bookkeeping in TupleBag. Two tuples have equal keys iff they have
// bit-identical values and the same class. NaNs are rejected by schema
// validation upstream, so IEEE equality anomalies do not arise.
func (t Tuple) Key() string {
	var sb strings.Builder
	sb.Grow(8*len(t.Values) + 8)
	var buf [8]byte
	for _, v := range t.Values {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		sb.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(t.Class))
	sb.Write(buf[:])
	return sb.String()
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return fmt.Sprintf("(%s | class=%d)", strings.Join(parts, ","), t.Class)
}

// CloneTuples deep-copies a slice of tuples.
func CloneTuples(ts []Tuple) []Tuple {
	out := make([]Tuple, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}
