package data

import (
	"sort"
	"strings"
	"testing"
)

func bagContents(t *testing.T, b *TupleBag) []float64 {
	t.Helper()
	var out []float64
	if err := b.ForEach(func(tp Tuple) error {
		out = append(out, tp.Values[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(out)
	return out
}

func TestTupleBagAddRemove(t *testing.T) {
	b := NewTupleBag(twoAttrSchema(t), t.TempDir(), nil, nil)
	defer b.Close()
	ts := makeTuples(10)
	for _, tp := range ts {
		if err := b.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Remove(ts[3]); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove(ts[7]); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 8 {
		t.Fatalf("Len = %d, want 8", b.Len())
	}
	got := bagContents(t, b)
	want := []float64{0, 1, 2, 4, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("contents %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents %v, want %v", got, want)
		}
	}
}

func TestTupleBagMultiset(t *testing.T) {
	b := NewTupleBag(twoAttrSchema(t), t.TempDir(), nil, nil)
	defer b.Close()
	tp := Tuple{Values: []float64{1, 2}, Class: 0}
	for i := 0; i < 3; i++ {
		if err := b.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Remove(tp); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (multiset semantics)", b.Len())
	}
	var n int
	if err := b.ForEach(func(Tuple) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("iterated %d, want 2", n)
	}
}

func TestTupleBagRemoveThenAddCancels(t *testing.T) {
	b := NewTupleBag(twoAttrSchema(t), t.TempDir(), nil, nil)
	defer b.Close()
	tp := Tuple{Values: []float64{5, 1}, Class: 1}
	if err := b.Add(tp); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove(tp); err != nil {
		t.Fatal(err)
	}
	// Pending removal cancels against a new identical Add.
	if err := b.Add(tp); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	if b.PendingRemovals() != 0 {
		t.Errorf("pending removals = %d, want 0 after cancellation", b.PendingRemovals())
	}
}

func TestTupleBagDanglingRemovalDetected(t *testing.T) {
	b := NewTupleBag(twoAttrSchema(t), t.TempDir(), nil, nil)
	defer b.Close()
	if err := b.Add(Tuple{Values: []float64{1, 1}, Class: 0}); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove(Tuple{Values: []float64{2, 2}, Class: 0}); err != nil {
		t.Fatal(err)
	}
	err := b.ForEach(func(Tuple) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "removal") {
		t.Fatalf("dangling removal not detected: %v", err)
	}
}

func TestTupleBagCompact(t *testing.T) {
	b := NewTupleBag(twoAttrSchema(t), t.TempDir(), NewMemBudget(4), nil)
	defer b.Close()
	ts := makeTuples(20)
	for _, tp := range ts {
		if err := b.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := b.Remove(ts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	if b.PendingRemovals() != 0 {
		t.Errorf("pending removals after compact = %d", b.PendingRemovals())
	}
	got := bagContents(t, b)
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("contents after compact: %v", got)
	}
}

func TestTupleBagSourceView(t *testing.T) {
	b := NewTupleBag(twoAttrSchema(t), t.TempDir(), nil, nil)
	defer b.Close()
	ts := makeTuples(6)
	for _, tp := range ts {
		if err := b.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Remove(ts[0]); err != nil {
		t.Fatal(err)
	}
	src := b.Source()
	if n, ok := src.Count(); !ok || n != 5 {
		t.Fatalf("source count %d,%v", n, ok)
	}
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("source view returned %d tuples", len(got))
	}
}

func TestTupleBagMaterializeAndReset(t *testing.T) {
	b := NewTupleBag(twoAttrSchema(t), t.TempDir(), nil, nil)
	defer b.Close()
	for _, tp := range makeTuples(5) {
		if err := b.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := b.Materialize()
	if err != nil || len(ts) != 5 {
		t.Fatalf("materialize: %d tuples, err %v", len(ts), err)
	}
	ts[0].Values[0] = -1 // must not affect the bag
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("Len after reset = %d", b.Len())
	}
}
