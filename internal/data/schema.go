// Package data defines the training-database substrate used by every
// algorithm in this repository: schemas over numerical and categorical
// predictor attributes, tuples, in-memory and on-disk datasets with
// sequential scans, random sampling, and spillable tuple buffers that honor
// a memory budget by overflowing to temporary files.
//
// The on-disk tuple format mirrors the evaluation setup of the BOAT paper
// (Gehrke et al., SIGMOD 1999): fixed-size binary records, 4 bytes per
// field in the compact encoding (40 bytes per tuple for the 9-attribute
// synthetic schema of Agrawal et al.).
package data

import (
	"errors"
	"fmt"
	"math"
)

// Kind distinguishes the two attribute types of the paper's data model.
type Kind int

const (
	// Numeric attributes have an ordered numerical domain; splits take the
	// form X <= x for a split point x in dom(X).
	Numeric Kind = iota
	// Categorical attributes take values from a finite unordered set of
	// category codes 0..Cardinality-1; splits take the form X in Y for a
	// splitting subset Y.
	Categorical
)

// String returns the attribute kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MaxCardinality bounds the domain size of a categorical attribute.
// Splitting subsets are represented as 64-bit masks, so categorical domains
// are limited to 64 categories. (The synthetic workloads of the paper use
// at most 20.)
const MaxCardinality = 64

// Attribute describes one predictor attribute.
type Attribute struct {
	Name string
	Kind Kind
	// Cardinality is the number of category codes of a categorical
	// attribute; it must be between 2 and MaxCardinality. Ignored for
	// numeric attributes.
	Cardinality int
}

// Schema describes the shape of a training database: an ordered list of
// predictor attributes and the number of class labels. Class labels are
// codes 0..ClassCount-1.
type Schema struct {
	Attributes []Attribute
	ClassCount int
}

// NewSchema validates the attribute list and class count and returns the
// schema. It is the only constructor that should be used; other packages
// assume a validated schema.
func NewSchema(attrs []Attribute, classCount int) (*Schema, error) {
	s := &Schema{Attributes: attrs, ClassCount: classCount}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on validation errors. Intended
// for statically known schemas (tests, the synthetic generator).
func MustSchema(attrs []Attribute, classCount int) *Schema {
	s, err := NewSchema(attrs, classCount)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks structural invariants of the schema.
func (s *Schema) Validate() error {
	if s == nil {
		return errors.New("data: nil schema")
	}
	if len(s.Attributes) == 0 {
		return errors.New("data: schema needs at least one predictor attribute")
	}
	if s.ClassCount < 2 {
		return fmt.Errorf("data: schema needs at least two class labels, got %d", s.ClassCount)
	}
	seen := make(map[string]bool, len(s.Attributes))
	for i, a := range s.Attributes {
		if a.Name == "" {
			return fmt.Errorf("data: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("data: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case Numeric:
		case Categorical:
			if a.Cardinality < 2 || a.Cardinality > MaxCardinality {
				return fmt.Errorf("data: attribute %q: cardinality %d out of range [2,%d]",
					a.Name, a.Cardinality, MaxCardinality)
			}
		default:
			return fmt.Errorf("data: attribute %q has unknown kind %d", a.Name, int(a.Kind))
		}
	}
	return nil
}

// NumAttrs returns the number of predictor attributes.
func (s *Schema) NumAttrs() int { return len(s.Attributes) }

// NumericIndexes returns the indexes of all numeric attributes, ascending.
func (s *Schema) NumericIndexes() []int {
	var out []int
	for i, a := range s.Attributes {
		if a.Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// CategoricalIndexes returns the indexes of all categorical attributes,
// ascending.
func (s *Schema) CategoricalIndexes() []int {
	var out []int
	for i, a := range s.Attributes {
		if a.Kind == Categorical {
			out = append(out, i)
		}
	}
	return out
}

// Equal reports whether two schemas describe the same shape.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.ClassCount != o.ClassCount || len(s.Attributes) != len(o.Attributes) {
		return false
	}
	for i := range s.Attributes {
		a, b := s.Attributes[i], o.Attributes[i]
		if a.Name != b.Name || a.Kind != b.Kind {
			return false
		}
		if a.Kind == Categorical && a.Cardinality != b.Cardinality {
			return false
		}
	}
	return true
}

// CheckTuple verifies that a tuple conforms to the schema: correct arity,
// class label in range, and categorical codes within their domains.
func (s *Schema) CheckTuple(t Tuple) error {
	if len(t.Values) != len(s.Attributes) {
		return fmt.Errorf("data: tuple has %d values, schema has %d attributes",
			len(t.Values), len(s.Attributes))
	}
	if t.Class < 0 || t.Class >= s.ClassCount {
		return fmt.Errorf("data: class label %d out of range [0,%d)", t.Class, s.ClassCount)
	}
	for i, a := range s.Attributes {
		if a.Kind != Categorical {
			// Non-finite values break the ordering invariants every
			// algorithm relies on (splits, sorted AVC-sets, histograms).
			if math.IsNaN(t.Values[i]) || math.IsInf(t.Values[i], 0) {
				return fmt.Errorf("data: attribute %q: non-finite value %v", a.Name, t.Values[i])
			}
			continue
		}
		c := int(t.Values[i])
		if float64(c) != t.Values[i] || c < 0 || c >= a.Cardinality {
			return fmt.Errorf("data: attribute %q: categorical code %v out of range [0,%d)",
				a.Name, t.Values[i], a.Cardinality)
		}
	}
	return nil
}
