package data

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"
)

// File is the subset of *os.File the spill and persistence paths write
// through. Abstracting it (together with FS) lets tests and soak runs
// inject storage faults underneath the exact production code paths.
type File interface {
	io.Writer
	io.Closer
	// Name returns the path of the file.
	Name() string
	// Truncate changes the size of the file.
	Truncate(size int64) error
	// Seek sets the offset for the next write.
	Seek(offset int64, whence int) (int64, error)
	// Sync flushes the file to stable storage.
	Sync() error
}

// FS abstracts the temp-file operations of the spill path. The zero-value
// OsFS is the real filesystem; internal/faultfs wraps any FS with
// deterministic fault injection.
type FS interface {
	// CreateTemp creates a new temporary file as os.CreateTemp does.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (io.ReadCloser, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
}

// OsFS is the FS backed by the real filesystem.
type OsFS struct{}

// CreateTemp implements FS.
func (OsFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Open implements FS.
func (OsFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// fsOrDefault returns fs, or the real filesystem when fs is nil.
func fsOrDefault(fs FS) FS {
	if fs == nil {
		return OsFS{}
	}
	return fs
}

// ---------------------------------------------------------------------------
// Error classification

// SpillError wraps any storage error raised on the spill path (temp-file
// creation, writes, re-opens, removal). Callers use IsSpillError to decide
// whether a failure is a storage fault — recoverable by falling back to a
// different strategy — or a logical error that must propagate.
type SpillError struct {
	Op  string // "create", "write", "open", "remove", "truncate", "scan"
	Err error
}

func (e *SpillError) Error() string { return fmt.Sprintf("data: spill %s: %v", e.Op, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *SpillError) Unwrap() error { return e.Err }

// IsSpillError reports whether err (or anything it wraps) is a storage
// failure of the spill path.
func IsSpillError(err error) bool {
	var se *SpillError
	return errors.As(err, &se)
}

// ErrSpillPoisoned is wrapped by errors returned from appends to a buffer
// whose overflow file suffered an unrecoverable write failure. The buffer's
// existing contents remain readable; only further appends are refused.
var ErrSpillPoisoned = errors.New("data: spill buffer poisoned by earlier write failure")

// transienter is implemented by errors that are worth retrying (e.g. the
// transient faults injected by internal/faultfs).
type transienter interface{ Transient() bool }

// IsTransient reports whether err is a transient storage error: either it
// declares itself transient via a Transient() bool method, or it is one of
// the errno values that mean "try again" (EINTR, EAGAIN).
func IsTransient(err error) bool {
	var tr transienter
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

// ---------------------------------------------------------------------------
// Retry policy

// DefaultRetryAttempts and DefaultRetryBackoff are the retry defaults for
// transient spill-path faults: 4 total tries with 500µs/1ms/2ms backoffs.
const (
	DefaultRetryAttempts = 4
	DefaultRetryBackoff  = 500 * time.Microsecond
)

// RetryPolicy bounds the retry-with-backoff loop applied to transient
// storage errors on the spill path. The zero value selects the defaults.
// Non-transient errors (see IsTransient) are never retried.
type RetryPolicy struct {
	// Attempts is the total number of tries per operation (minimum 1).
	// 0 selects DefaultRetryAttempts.
	Attempts int
	// Backoff is the sleep before the first retry, doubled per retry.
	// 0 selects DefaultRetryBackoff.
	Backoff time.Duration
	// Sleep replaces time.Sleep (tests stub it out); nil = time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultRetryBackoff
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Do runs op, retrying transient failures under the policy. Each retry is
// reported to rec (which may be nil). The last error is returned when the
// attempt budget is exhausted or the failure is not transient.
func (p RetryPolicy) Do(rec FaultRecorder, op func() error) error {
	p = p.withDefaults()
	backoff := p.Backoff
	var err error
	for try := 0; try < p.Attempts; try++ {
		if try > 0 {
			if rec != nil {
				rec.RecordSpillRetry()
			}
			p.Sleep(backoff)
			backoff *= 2
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// FaultRecorder is an optional extension of SpillRecorder: recorders that
// also implement it receive retry and failure accounting from the spill
// path. iostats.Stats implements it.
type FaultRecorder interface {
	// RecordSpillRetry notes one retry of a transiently failed operation.
	RecordSpillRetry()
	// RecordSpillError notes one spill-path operation that failed for good
	// (after any retries).
	RecordSpillError()
}

// faultRecorderOf extracts the optional FaultRecorder side of rec.
func faultRecorderOf(rec SpillRecorder) FaultRecorder {
	fr, _ := rec.(FaultRecorder)
	return fr
}

// ---------------------------------------------------------------------------
// Temp-file registry

// The process-wide temp-file registry tracks every temporary file the spill
// and persistence paths create, so tests and soak runs can prove that every
// error path removed what it created. Registration is keyed by path.
var (
	tempMu   sync.Mutex
	tempLive = make(map[string]struct{})
)

// RegisterTemp records path in the registry. Exported for callers (such as
// the model-persistence path in internal/core) that create temp files
// through an FS themselves and must participate in the same leak
// accounting as the spill buffers.
func RegisterTemp(path string) { registerTemp(path) }

// UnregisterTemp removes path from the registry, after the file was
// removed or renamed to its final destination.
func UnregisterTemp(path string) { unregisterTemp(path) }

func registerTemp(path string) {
	tempMu.Lock()
	tempLive[path] = struct{}{}
	tempMu.Unlock()
}

func unregisterTemp(path string) {
	tempMu.Lock()
	delete(tempLive, path)
	tempMu.Unlock()
}

// LiveTempFiles returns the paths of every temporary file created by this
// package (spill overflow files, persistence temps) that has not yet been
// removed. An empty result after all buffers are closed proves the process
// leaked nothing.
func LiveTempFiles() []string {
	tempMu.Lock()
	defer tempMu.Unlock()
	out := make([]string, 0, len(tempLive))
	for p := range tempLive {
		out = append(out, p)
	}
	return out
}
