package data

import (
	"testing"
)

type recordingSpill struct{ tuples, bytes int64 }

func (r *recordingSpill) RecordSpill(t, b int64) { r.tuples += t; r.bytes += b }

func TestSpillBufferInMemory(t *testing.T) {
	sb := NewSpillBuffer(twoAttrSchema(t), t.TempDir(), nil, nil)
	defer sb.Close()
	for _, tp := range makeTuples(100) {
		if err := sb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if sb.Len() != 100 || sb.SpilledTuples() != 0 {
		t.Fatalf("len=%d spilled=%d", sb.Len(), sb.SpilledTuples())
	}
	got, err := ReadAll(sb)
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range got {
		if int(tp.Values[0]) != i {
			t.Fatalf("tuple %d = %v", i, tp)
		}
	}
}

func TestSpillBufferOverflow(t *testing.T) {
	rec := &recordingSpill{}
	budget := NewMemBudget(30)
	sb := NewSpillBuffer(twoAttrSchema(t), t.TempDir(), budget, rec)
	defer sb.Close()
	for _, tp := range makeTuples(100) {
		if err := sb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if sb.Len() != 100 {
		t.Fatalf("len = %d", sb.Len())
	}
	if sb.SpilledTuples() != 70 {
		t.Fatalf("spilled = %d, want 70", sb.SpilledTuples())
	}
	// Spill accounting covers only bytes that durably reached the file;
	// with 70 small tuples everything still sits in the write buffer.
	if rec.tuples != 0 || rec.bytes != 0 {
		t.Errorf("recorder saw %d tuples / %d bytes before any flush", rec.tuples, rec.bytes)
	}
	// Content and order preserved across the memory/disk boundary.
	got, err := ReadAll(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("read %d tuples", len(got))
	}
	for i, tp := range got {
		if int(tp.Values[0]) != i || tp.Class != i%2 {
			t.Fatalf("tuple %d = %v", i, tp)
		}
	}
}

func TestSpillBufferOverflowAccounting(t *testing.T) {
	rec := &recordingSpill{}
	budget := NewMemBudget(1)
	sb := NewSpillBuffer(twoAttrSchema(t), t.TempDir(), budget, rec)
	defer sb.Close()
	// Enough tuples to force flushes past the write-buffer threshold.
	tupleSize := FormatWide.TupleSize(twoAttrSchema(t))
	n := spillFlushBytes/tupleSize + 10
	for range 3 {
		for _, tp := range makeTuples(n) {
			if err := sb.Append(tp); err != nil {
				t.Fatal(err)
			}
		}
	}
	if rec.tuples <= 0 || rec.bytes <= 0 {
		t.Fatalf("recorder saw %d tuples / %d bytes after flushes", rec.tuples, rec.bytes)
	}
	if rec.bytes != rec.tuples*int64(tupleSize) {
		t.Errorf("accounted bytes %d inconsistent with %d whole tuples of %d bytes",
			rec.bytes, rec.tuples, tupleSize)
	}
	if rec.tuples > sb.SpilledTuples() {
		t.Errorf("recorder saw %d tuples, more than the %d spilled", rec.tuples, sb.SpilledTuples())
	}
}

func TestMemBudgetSplitSumsToLimit(t *testing.T) {
	for _, tc := range []struct {
		limit int64
		n     int
	}{
		{10, 3}, {10, 4}, {7, 7}, {100, 6}, {1, 1},
	} {
		slices := NewMemBudget(tc.limit).Split(tc.n)
		var sum int64
		for _, s := range slices {
			if s.Limit <= 0 {
				t.Fatalf("Split(%d/%d): slice limit %d not positive", tc.limit, tc.n, s.Limit)
			}
			sum += s.Limit
		}
		if sum != tc.limit {
			t.Errorf("Split(%d/%d): slice limits sum to %d", tc.limit, tc.n, sum)
		}
	}
}

func TestMemBudgetSplitSmallerThanWorkers(t *testing.T) {
	// Limit < n: the surplus slices must have zero capacity, not limit 1
	// (which would let n workers hold n > Limit tuples between them).
	slices := NewMemBudget(2).Split(5)
	var capacity int64
	for _, s := range slices {
		if s.Limit > 0 {
			capacity += s.Limit
		} else if !s.tryAcquire(1) {
			// zero-capacity slice: every append spills — correct.
			continue
		} else {
			t.Fatalf("surplus slice with limit %d admitted a tuple", s.Limit)
		}
	}
	if capacity != 2 {
		t.Errorf("total in-memory capacity %d, want 2", capacity)
	}
}

func TestMemBudgetZeroCapacity(t *testing.T) {
	b := NewMemBudget(-1)
	if b.tryAcquire(1) {
		t.Error("negative-limit budget must refuse every acquisition")
	}
	b.release(1) // must not underflow or panic
	if b.Used() != 0 {
		t.Errorf("used = %d", b.Used())
	}
	// A buffer over a zero-capacity budget spills every tuple.
	sb := NewSpillBuffer(twoAttrSchema(t), t.TempDir(), b, nil)
	defer sb.Close()
	for _, tp := range makeTuples(5) {
		if err := sb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if sb.SpilledTuples() != 5 {
		t.Errorf("spilled %d of 5", sb.SpilledTuples())
	}
}

func TestSpillBufferSharedBudget(t *testing.T) {
	budget := NewMemBudget(10)
	s := twoAttrSchema(t)
	a := NewSpillBuffer(s, t.TempDir(), budget, nil)
	b := NewSpillBuffer(s, t.TempDir(), budget, nil)
	defer a.Close()
	defer b.Close()
	for _, tp := range makeTuples(8) {
		if err := a.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	for _, tp := range makeTuples(8) {
		if err := b.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if a.SpilledTuples()+b.SpilledTuples() != 6 {
		t.Errorf("spilled %d+%d, want 6 total over the shared budget",
			a.SpilledTuples(), b.SpilledTuples())
	}
	if budget.Used() != 10 {
		t.Errorf("budget used %d, want 10", budget.Used())
	}
	a.Close()
	if budget.Used() != b.Len()-b.SpilledTuples() {
		t.Errorf("budget not released on close: used %d", budget.Used())
	}
}

func TestSpillBufferAppendAfterScan(t *testing.T) {
	budget := NewMemBudget(5)
	sb := NewSpillBuffer(twoAttrSchema(t), t.TempDir(), budget, nil)
	defer sb.Close()
	for _, tp := range makeTuples(20) {
		if err := sb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := CountTuples(sb); n != 20 {
		t.Fatalf("first scan saw %d", n)
	}
	for _, tp := range makeTuples(10) {
		if err := sb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("after re-append: %d tuples", len(got))
	}
}

func TestSpillBufferReset(t *testing.T) {
	budget := NewMemBudget(5)
	sb := NewSpillBuffer(twoAttrSchema(t), t.TempDir(), budget, nil)
	defer sb.Close()
	for _, tp := range makeTuples(20) {
		if err := sb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := sb.Reset(); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("len after reset = %d", sb.Len())
	}
	if budget.Used() != 0 {
		t.Errorf("budget not released by reset: %d", budget.Used())
	}
	for _, tp := range makeTuples(7) {
		if err := sb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(sb)
	if err != nil || len(got) != 7 {
		t.Fatalf("after reuse: %d tuples, err %v", len(got), err)
	}
}

func TestSpillBufferClosedOps(t *testing.T) {
	sb := NewSpillBuffer(twoAttrSchema(t), t.TempDir(), nil, nil)
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Append(Tuple{Values: []float64{1, 2}, Class: 0}); err == nil {
		t.Error("append to closed buffer should error")
	}
	if _, err := sb.Scan(); err == nil {
		t.Error("scan of closed buffer should error")
	}
	if err := sb.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}

func TestSpillBufferSchemaMismatch(t *testing.T) {
	sb := NewSpillBuffer(twoAttrSchema(t), t.TempDir(), nil, nil)
	defer sb.Close()
	if err := sb.Append(Tuple{Values: []float64{1}, Class: 0}); err == nil {
		t.Error("expected schema mismatch")
	}
}

func TestMemBudgetNilSafe(t *testing.T) {
	var b *MemBudget
	if !b.tryAcquire(100) {
		t.Error("nil budget should be unlimited")
	}
	b.release(100)
	if b.Used() != 0 {
		t.Error("nil budget Used should be 0")
	}
}
