package data

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Format selects the per-field encoding of the binary tuple file format.
type Format uint8

const (
	// FormatCompact stores numeric values as float32 and categorical codes
	// and the class label as int32: 4 bytes per field, matching the
	// 40-byte records of the paper's 9-attribute synthetic workload.
	// Values must be exactly representable as float32 (the synthetic
	// generator only emits integers below 2^24, which are).
	FormatCompact Format = 1
	// FormatWide stores every value as float64 and the class as int32.
	FormatWide Format = 2
)

const (
	fileMagic   = "BOATDATA"
	fileVersion = 1
)

// TupleSize returns the encoded size in bytes of one tuple of the schema
// under the format.
func (f Format) TupleSize(s *Schema) int {
	switch f {
	case FormatCompact:
		return 4*len(s.Attributes) + 4
	case FormatWide:
		return 8*len(s.Attributes) + 4
	default:
		return 0
	}
}

func (f Format) valid() bool { return f == FormatCompact || f == FormatWide }

// encodeTuple appends the encoding of t to buf.
func encodeTuple(buf []byte, f Format, t Tuple) []byte {
	switch f {
	case FormatCompact:
		for _, v := range t.Values {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(v)))
		}
	default:
		for _, v := range t.Values {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, uint32(int32(t.Class)))
}

// decodeTuple decodes one tuple from buf into dst (whose Values slice must
// have the schema arity).
func decodeTuple(buf []byte, f Format, dst *Tuple) {
	switch f {
	case FormatCompact:
		for i := range dst.Values {
			bits := binary.LittleEndian.Uint32(buf[4*i:])
			dst.Values[i] = float64(math.Float32frombits(bits))
		}
		dst.Class = int(int32(binary.LittleEndian.Uint32(buf[4*len(dst.Values):])))
	default:
		for i := range dst.Values {
			bits := binary.LittleEndian.Uint64(buf[8*i:])
			dst.Values[i] = math.Float64frombits(bits)
		}
		dst.Class = int(int32(binary.LittleEndian.Uint32(buf[8*len(dst.Values):])))
	}
}

// AppendTuple appends the binary encoding of t (in the given format) to
// buf and returns the extended slice. Exported for embedding tuple blocks
// in other streams (model persistence).
func AppendTuple(buf []byte, f Format, t Tuple) []byte {
	return encodeTuple(buf, f, t)
}

// DecodeTupleInto decodes one tuple from buf into dst, whose Values slice
// must already have the schema arity. buf must hold at least
// f.TupleSize(schema) bytes.
func DecodeTupleInto(buf []byte, f Format, dst *Tuple) {
	decodeTuple(buf, f, dst)
}

// appendSchema appends the self-describing schema encoding shared by the
// row and columnar file headers: class count, attribute count, and the
// attribute list.
func appendSchema(buf []byte, s *Schema) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.ClassCount))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Attributes)))
	for _, a := range s.Attributes {
		buf = append(buf, byte(a.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Cardinality))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.Name)))
		buf = append(buf, a.Name...)
	}
	return buf
}

// readSchema parses the schema encoding emitted by appendSchema.
func readSchema(r io.Reader) (*Schema, error) {
	var fixed [8]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("data: reading schema: %w", err)
	}
	classCount := int(binary.LittleEndian.Uint32(fixed[0:]))
	nAttrs := int(binary.LittleEndian.Uint32(fixed[4:]))
	if nAttrs <= 0 || nAttrs > 1<<16 {
		return nil, fmt.Errorf("data: implausible attribute count %d", nAttrs)
	}
	attrs := make([]Attribute, nAttrs)
	for i := range attrs {
		var meta [9]byte
		if _, err := io.ReadFull(r, meta[:]); err != nil {
			return nil, fmt.Errorf("data: reading attribute %d: %w", i, err)
		}
		attrs[i].Kind = Kind(meta[0])
		attrs[i].Cardinality = int(binary.LittleEndian.Uint32(meta[1:]))
		nameLen := int(binary.LittleEndian.Uint32(meta[5:]))
		if nameLen > 1<<12 {
			return nil, fmt.Errorf("data: implausible attribute name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("data: reading attribute %d name: %w", i, err)
		}
		attrs[i].Name = string(name)
	}
	return NewSchema(attrs, classCount)
}

// writeHeader emits the self-describing file header: magic, version,
// format, class count, and the attribute list.
func writeHeader(w io.Writer, f Format, s *Schema) error {
	if _, err := io.WriteString(w, fileMagic); err != nil {
		return err
	}
	hdr := append([]byte(nil), byte(fileVersion), byte(f))
	hdr = appendSchema(hdr, s)
	_, err := w.Write(hdr)
	return err
}

// readHeader parses a file header and returns the format and schema.
func readHeader(r io.Reader) (Format, *Schema, error) {
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, nil, fmt.Errorf("data: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return 0, nil, errors.New("data: not a BOAT data file (bad magic)")
	}
	var fixed [2]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return 0, nil, fmt.Errorf("data: reading header: %w", err)
	}
	if fixed[0] != fileVersion {
		return 0, nil, fmt.Errorf("data: unsupported file version %d", fixed[0])
	}
	f := Format(fixed[1])
	if !f.valid() {
		return 0, nil, fmt.Errorf("data: unknown format %d", fixed[1])
	}
	schema, err := readSchema(r)
	if err != nil {
		return 0, nil, err
	}
	return f, schema, nil
}

// ---------------------------------------------------------------------------
// Writer

// FileWriter streams tuples into a binary dataset file.
type FileWriter struct {
	f      *os.File
	w      *bufio.Writer
	fmt    Format
	schema *Schema
	buf    []byte
	n      int64
	closed bool
}

// CreateFile creates (truncating) a dataset file at path.
func CreateFile(path string, schema *Schema, format Format) (*FileWriter, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if !format.valid() {
		return nil, fmt.Errorf("data: invalid format %d", format)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := writeHeader(w, format, schema); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &FileWriter{f: f, w: w, fmt: format, schema: schema}, nil
}

// Append writes one tuple.
func (fw *FileWriter) Append(t Tuple) error {
	if fw.closed {
		return errors.New("data: append to closed writer")
	}
	if len(t.Values) != len(fw.schema.Attributes) {
		return ErrSchemaMismatch
	}
	fw.buf = encodeTuple(fw.buf[:0], fw.fmt, t)
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	fw.n++
	return nil
}

// Count returns the number of tuples appended so far.
func (fw *FileWriter) Count() int64 { return fw.n }

// Close flushes and closes the file.
func (fw *FileWriter) Close() error {
	if fw.closed {
		return nil
	}
	fw.closed = true
	if err := fw.w.Flush(); err != nil {
		fw.f.Close()
		return err
	}
	return fw.f.Close()
}

// WriteFile materializes all tuples of src into a dataset file at path.
func WriteFile(path string, src Source, format Format) (int64, error) {
	fw, err := CreateFile(path, src.Schema(), format)
	if err != nil {
		return 0, err
	}
	if err := ForEach(src, fw.Append); err != nil {
		fw.Close()
		os.Remove(path)
		return 0, err
	}
	n := fw.Count()
	if err := fw.Close(); err != nil {
		os.Remove(path)
		return 0, err
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// FileSource

// FileSource is a Source backed by a dataset file created by FileWriter.
// Every Scan opens a fresh sequential pass over the file.
type FileSource struct {
	path      string
	format    Format
	schema    *Schema
	headerLen int64
	count     int64
}

// OpenFile opens a dataset file, validating its header and computing the
// tuple count from the file size.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	format, schema, err := readHeader(br)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	// Header length = current file offset minus what remains buffered.
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, err
	}
	headerLen := pos - int64(br.Buffered())
	tupleSize := int64(format.TupleSize(schema))
	body := st.Size() - headerLen
	if body%tupleSize != 0 {
		return nil, fmt.Errorf("data: %s: truncated file (body %d bytes, tuple size %d)",
			path, body, tupleSize)
	}
	return &FileSource{
		path:      path,
		format:    format,
		schema:    schema,
		headerLen: headerLen,
		count:     body / tupleSize,
	}, nil
}

// Path returns the backing file path.
func (fs *FileSource) Path() string { return fs.path }

// Format returns the file's field encoding.
func (fs *FileSource) Format() Format { return fs.format }

// Schema implements Source.
func (fs *FileSource) Schema() *Schema { return fs.schema }

// Count implements Source.
func (fs *FileSource) Count() (int64, bool) { return fs.count, true }

// SizeBytes returns the total encoded size of the tuple payload.
func (fs *FileSource) SizeBytes() int64 {
	return fs.count * int64(fs.format.TupleSize(fs.schema))
}

// Scan implements Source.
func (fs *FileSource) Scan() (Scanner, error) {
	f, err := os.Open(fs.path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(fs.headerLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	sc := &fileScanner{
		c:         f,
		r:         bufio.NewReaderSize(f, 1<<18),
		format:    fs.format,
		tupleSize: fs.format.TupleSize(fs.schema),
		remaining: fs.count,
	}
	sc.alloc(len(fs.schema.Attributes))
	return sc, nil
}

// ScanChunks implements ChunkedSource: records are decoded from the raw
// byte stream directly into the destination chunk's columns, never
// materializing row-major Tuples at all.
func (fs *FileSource) ScanChunks() (ChunkScanner, error) {
	f, err := os.Open(fs.path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(fs.headerLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &fileChunkScanner{
		c:         f,
		r:         bufio.NewReaderSize(f, 1<<18),
		format:    fs.format,
		tupleSize: fs.format.TupleSize(fs.schema),
		remaining: fs.count,
	}, nil
}

// fileChunkScanner decodes fixed-size records straight into chunk columns.
type fileChunkScanner struct {
	c         io.Closer
	r         *bufio.Reader
	format    Format
	tupleSize int
	remaining int64
	raw       []byte
}

func (s *fileChunkScanner) NextChunk(dst *Chunk) error {
	if s.remaining == 0 {
		return io.EOF
	}
	n := int64(dst.Cap() - dst.Len())
	if n > s.remaining {
		n = s.remaining
	}
	if n <= 0 {
		return nil
	}
	want := int(n) * s.tupleSize
	if cap(s.raw) < want {
		s.raw = make([]byte, want)
	}
	raw := s.raw[:want]
	if _, err := io.ReadFull(s.r, raw); err != nil {
		return fmt.Errorf("data: scan read: %w", err)
	}
	for i := int64(0); i < n; i++ {
		decodeChunkRow(raw[int(i)*s.tupleSize:], s.format, dst)
	}
	s.remaining -= n
	return nil
}

func (s *fileChunkScanner) Close() error {
	if s.c == nil {
		return nil
	}
	err := s.c.Close()
	s.c = nil
	return err
}

// decodeChunkRow decodes one encoded record into the next row of c
// (which must not be full).
func decodeChunkRow(buf []byte, f Format, c *Chunk) {
	r := c.n
	switch f {
	case FormatCompact:
		for a := 0; a < c.width; a++ {
			bits := binary.LittleEndian.Uint32(buf[4*a:])
			c.vals[a*c.stride+r] = float64(math.Float32frombits(bits))
		}
		c.class[r] = int32(binary.LittleEndian.Uint32(buf[4*c.width:]))
	default:
		for a := 0; a < c.width; a++ {
			bits := binary.LittleEndian.Uint64(buf[8*a:])
			c.vals[a*c.stride+r] = math.Float64frombits(bits)
		}
		c.class[r] = int32(binary.LittleEndian.Uint32(buf[8*c.width:]))
	}
	c.n++
}

// encodeChunkRow appends the encoding of row r of c to buf (the chunked
// counterpart of encodeTuple, used by the spill path).
func encodeChunkRow(buf []byte, f Format, c *Chunk, r int) []byte {
	switch f {
	case FormatCompact:
		for a := 0; a < c.width; a++ {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(c.vals[a*c.stride+r])))
		}
	default:
		for a := 0; a < c.width; a++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.vals[a*c.stride+r]))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, uint32(c.class[r]))
}

// fileScanner decodes fixed-size tuple records from a byte stream. c, when
// non-nil, is closed with the scanner (the underlying file handle); the
// spill path also feeds it stitched readers (durable file prefix plus the
// in-memory write buffer), which own no handle.
type fileScanner struct {
	c         io.Closer
	r         *bufio.Reader
	format    Format
	tupleSize int
	remaining int64
	batch     []Tuple
	raw       []byte
}

func (s *fileScanner) alloc(arity int) {
	n := DefaultBatchSize
	s.batch = make([]Tuple, n)
	values := make([]float64, n*arity)
	for i := range s.batch {
		s.batch[i].Values = values[i*arity : (i+1)*arity]
	}
	s.raw = make([]byte, n*s.tupleSize)
}

func (s *fileScanner) Next() ([]Tuple, error) {
	if s.remaining == 0 {
		return nil, io.EOF
	}
	n := int64(len(s.batch))
	if n > s.remaining {
		n = s.remaining
	}
	raw := s.raw[:int(n)*s.tupleSize]
	if _, err := io.ReadFull(s.r, raw); err != nil {
		return nil, fmt.Errorf("data: scan read: %w", err)
	}
	for i := int64(0); i < n; i++ {
		decodeTuple(raw[int(i)*s.tupleSize:], s.format, &s.batch[i])
	}
	s.remaining -= n
	return s.batch[:n], nil
}

func (s *fileScanner) Close() error {
	if s.c == nil {
		return nil
	}
	err := s.c.Close()
	s.c = nil
	return err
}
