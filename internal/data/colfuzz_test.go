package data

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// colFuzzSeeds builds the seed corpus for FuzzColFileOpen: well-formed
// version-1 and version-2 files plus torn and bit-flipped variants, so
// the mutator starts from inputs that reach deep into the decoder
// instead of dying at the magic check.
func colFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	dir := tb.TempDir()
	write := func(name string, version byte, n, blockRows int) []byte {
		path := filepath.Join(dir, name)
		cw, err := createColFile(path, colTestSchema(), blockRows, version)
		if err != nil {
			tb.Fatal(err)
		}
		for _, tu := range colTestTuples(n) {
			if err := cw.Append(tu); err != nil {
				tb.Fatal(err)
			}
		}
		if err := cw.Close(); err != nil {
			tb.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			tb.Fatal(err)
		}
		return raw
	}
	v2 := write("v2.boatc", colVersion, 300, 64)
	v1 := write("v1.boatc", colVersion1, 300, 64)
	seeds := [][]byte{v2, v1, write("tiny.boatc", colVersion, 1, 8)}
	// Torn variants: cut mid-header, mid-block, mid-index, mid-footer.
	for _, cut := range []int{4, 40, len(v2) / 2, len(v2) - 40, len(v2) - 9, len(v2) - 1} {
		if cut > 0 && cut < len(v2) {
			seeds = append(seeds, v2[:cut])
		}
	}
	// Bit flips: header, block body, CRC, offset index, footer.
	for _, off := range []int{9, 30, 120, len(v2) / 2, len(v2) - 44, len(v2) - 20} {
		if off >= 0 && off < len(v2) {
			flipped := append([]byte(nil), v2...)
			flipped[off] ^= 0x40
			seeds = append(seeds, flipped)
		}
	}
	seeds = append(seeds, []byte(colMagic), []byte("BOATCOLFxxxxxx"), nil)
	return seeds
}

// fuzzScanAll drains one chunked scan, enforcing the post-open error
// contract: every failure after a successful OpenColFile must be a
// *BlockError (whose cause is typically ErrColTruncated or
// ErrColChecksum), never a panic, a hang, or an untyped error. Returns
// the rows seen and whether the scan completed cleanly.
func fuzzScanAll(t *testing.T, label string, csc ChunkScanner, width, blockRows int) (int64, bool) {
	t.Helper()
	defer csc.Close()
	ch := NewChunk(width, blockRows)
	var rows int64
	for i := 0; ; i++ {
		if i > 1<<20 {
			t.Fatalf("%s: scan did not terminate", label)
		}
		ch.Reset()
		err := csc.NextChunk(ch)
		if err == io.EOF {
			return rows, true
		}
		if err != nil {
			var be *BlockError
			if !errors.As(err, &be) {
				t.Fatalf("%s: scan error is not a *BlockError: %v", label, err)
			}
			return rows, false
		}
		rows += int64(ch.Len())
	}
}

// FuzzColFileOpen feeds arbitrary bytes through OpenColFile and every
// scan path (synchronous, pipelined, and a two-way block-range split).
// Opening may fail with any descriptive error; once open succeeds, the
// invariants are: scans terminate, post-open failures are typed
// *BlockError values, and every scan path that completes sees the same
// number of rows.
func FuzzColFileOpen(f *testing.F) {
	for _, s := range colFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<20 {
			return
		}
		path := filepath.Join(t.TempDir(), "fuzz.boatc")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Skip(err)
		}
		s, err := OpenColFile(path)
		if err != nil {
			return // any open error is acceptable; panics are not
		}
		if s.Blocks() < 0 || s.BlockRows() <= 0 {
			t.Fatalf("open accepted impossible geometry: %d blocks x %d rows", s.Blocks(), s.BlockRows())
		}
		width := len(s.Schema().Attributes)

		sync, err := s.ScanChunksPipeline(PipelineConfig{Depth: -1})
		var syncRows int64
		syncOK := false
		if err == nil {
			syncRows, syncOK = fuzzScanAll(t, "sync", sync, width, s.BlockRows())
		}
		piped, err := s.ScanChunksPipeline(PipelineConfig{Depth: 2, Workers: 2})
		if err == nil {
			if rows, ok := fuzzScanAll(t, "pipelined", piped, width, s.BlockRows()); ok && syncOK && rows != syncRows {
				t.Fatalf("pipelined scan saw %d rows, sync saw %d", rows, syncRows)
			}
		}
		// Two-way contiguous split: the union must equal the full scan.
		mid := s.Blocks() / 2
		var unionRows int64
		unionOK := true
		for _, r := range [][2]int64{{0, mid}, {mid, s.Blocks()}} {
			csc, err := s.ScanChunkRange(r[0], r[1], PipelineConfig{Depth: -1})
			if err != nil {
				var be *BlockError
				if !errors.As(err, &be) && !errors.Is(err, ErrColTruncated) && !errors.Is(err, ErrColChecksum) {
					t.Fatalf("range [%d,%d) setup error is untyped: %v", r[0], r[1], err)
				}
				unionOK = false
				continue
			}
			rows, ok := fuzzScanAll(t, "range", csc, width, s.BlockRows())
			unionRows += rows
			unionOK = unionOK && ok
		}
		if syncOK && unionOK && unionRows != syncRows {
			t.Fatalf("union of block ranges saw %d rows, full scan saw %d", unionRows, syncRows)
		}
	})
}

// blockFuzzSeeds builds the FuzzBlockDecode corpus: encoded blocks
// covering every segment encoding (const, u8/u16/u32 deltas, raw with
// NaN) plus mutated variants.
func blockFuzzSeeds() [][]byte {
	mk := func(fill func(i int) ([]float64, int)) []byte {
		ch := NewChunk(3, 64)
		for i := 0; i < 64; i++ {
			vals, cls := fill(i)
			ch.AppendTuple(Tuple{Values: vals, Class: cls})
		}
		return encodeBlock(nil, ch)
	}
	full := mk(func(i int) ([]float64, int) {
		return []float64{1000 + float64(i%200), float64(i % 8), 0.5 * float64(i)}, i % 3
	})
	konst := mk(func(i int) ([]float64, int) {
		return []float64{7, 1, 7}, 0
	})
	nan := mk(func(i int) ([]float64, int) {
		v := float64(i)
		if i%9 == 0 {
			v = math.NaN()
		}
		return []float64{v, float64(i % 4), 1e9 + float64(i)}, i % 3
	})
	seeds := [][]byte{full, konst, nan, nil, []byte{1, 0, 0, 0}}
	for _, off := range []int{0, 3, 5, 6, 20, len(full) / 2, len(full) - 1} {
		if off >= 0 && off < len(full) {
			flipped := append([]byte(nil), full...)
			flipped[off] ^= 0x10
			seeds = append(seeds, flipped)
		}
	}
	return seeds
}

// FuzzBlockDecode feeds arbitrary bytes to the block-body decoder (the
// stage after the CRC gate, so it must also survive checksum-valid but
// crafted bodies): it must return an error or a well-formed chunk whose
// class labels are within the schema's range — never panic or index out
// of bounds.
func FuzzBlockDecode(f *testing.F) {
	for _, s := range blockFuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		const maxRows, width, classes = 64, 3, 3
		dst := NewChunk(width, maxRows)
		zones := make([]ColZone, width)
		if err := decodeBlockInto(body, maxRows, dst, zones, classes); err != nil {
			return
		}
		if dst.Len() <= 0 || dst.Len() > maxRows {
			t.Fatalf("decode accepted %d rows (cap %d)", dst.Len(), maxRows)
		}
		for _, c := range dst.Classes() {
			if c < 0 || int(c) >= classes {
				t.Fatalf("decode accepted out-of-range class label %d", c)
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/ when BOAT_WRITE_FUZZ_CORPUS=1 — the same seeds f.Add
// registers, persisted in `go test fuzz v1` format so CI's fuzz smoke
// starts from them without a generation step.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("BOAT_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set BOAT_WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzColFileOpen", colFuzzSeeds(t))
	write("FuzzBlockDecode", blockFuzzSeeds())
}
