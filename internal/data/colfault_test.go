// Fault-injection coverage for the columnar read path. These tests live in
// package data_test because they drive internal/faultfs, which itself
// imports internal/data.
package data_test

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/faultfs"
)

func writeFaultFile(t *testing.T, n, blockRows int) (string, *data.Schema) {
	t.Helper()
	schema := data.MustSchema([]data.Attribute{
		{Name: "a", Kind: data.Numeric},
		{Name: "b", Kind: data.Numeric},
	}, 2)
	tuples := make([]data.Tuple, n)
	for i := range tuples {
		tuples[i] = data.Tuple{Values: []float64{float64(i), float64(i % 13)}, Class: i % 2}
	}
	path := t.TempDir() + "/f.boatc"
	if _, err := data.WriteColFile(path, data.NewMemSource(schema, tuples), blockRows); err != nil {
		t.Fatal(err)
	}
	return path, schema
}

// noSleep is the retry policy used under injection: generous attempts, no
// wall-clock waits.
var noSleep = data.RetryPolicy{Attempts: 6, Sleep: func(time.Duration) {}}

func drainCol(t *testing.T, src *data.ColSource, chunkRows int) (int, error) {
	t.Helper()
	sc, err := src.ScanChunks()
	if err != nil {
		return 0, err
	}
	defer sc.Close()
	ch := data.NewChunk(2, chunkRows)
	rows := 0
	for {
		ch.Reset()
		err := sc.NextChunk(ch)
		rows += ch.Len()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, err
		}
		if ch.Len() == 0 {
			return rows, nil
		}
	}
}

// TestColFaultTransientOpenRetried: transient faults on the scan's open are
// absorbed by the retry policy; the scan then delivers everything.
func TestColFaultTransientOpenRetried(t *testing.T) {
	path, _ := writeFaultFile(t, 500, 64)
	fs := faultfs.New(nil, faultfs.Config{
		Seed: 1, OpenProb: 1, TransientFraction: 1, MaxFaults: 2,
	})
	src, err := data.OpenColFile(path, data.ColOptions{FS: fs, Retry: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drainCol(t, src, 64)
	if err != nil || rows != 500 {
		t.Fatalf("scan = (%d rows, %v), want (500, nil)", rows, err)
	}
	if st := fs.Stats(); st.Faults != 2 || st.Transient != 2 {
		t.Fatalf("injected %+v, want 2 transient faults consumed by retries", st)
	}
}

// TestColFaultTransientReadRetried: transient mid-scan read faults retry in
// place without corrupting the delivered stream, on both scan paths.
func TestColFaultTransientReadRetried(t *testing.T) {
	path, _ := writeFaultFile(t, 2000, 64)
	for _, depth := range []int{-1, 4} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			// Every read faults until the cap: bufio coalesces the small
			// file into very few underlying reads, so probabilistic
			// injection would rarely fire.
			fs := faultfs.New(nil, faultfs.Config{
				Seed: 7, ReadProb: 1, TransientFraction: 1, MaxFaults: 4,
			})
			src, err := data.OpenColFile(path, data.ColOptions{
				FS: fs, Retry: noSleep,
				Pipeline: data.PipelineConfig{Depth: depth, Workers: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			rows, err := drainCol(t, src, 100)
			if err != nil || rows != 2000 {
				t.Fatalf("scan = (%d rows, %v), want (2000, nil)", rows, err)
			}
			if st := fs.Stats(); st.Faults == 0 {
				t.Fatal("injection never fired; the test exercised nothing")
			}
		})
	}
}

// TestColFaultPermanentOpen: permanent open faults are not retried and
// surface from the scan's open before any goroutine starts.
func TestColFaultPermanentOpen(t *testing.T) {
	path, _ := writeFaultFile(t, 200, 64)
	fs := faultfs.New(nil, faultfs.Config{
		Seed: 3, OpenProb: 1, TransientFraction: 0, MaxFaults: 1,
	})
	src, err := data.OpenColFile(path, data.ColOptions{FS: fs, Retry: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	if _, err := src.ScanChunks(); err == nil {
		t.Fatal("scan opened through a permanent fault")
	} else {
		var f *faultfs.Fault
		if !errors.As(err, &f) {
			t.Fatalf("error %v does not expose the injected fault", err)
		}
	}
	if st := fs.Stats(); st.Faults != 1 {
		t.Fatalf("injected %+v, want exactly one permanent fault (no retries)", st)
	}
	waitGoroutines(t, baseline)
}

// failNthReadFS fails the nth underlying read with a permanent error,
// deterministically, so the fault lands mid-stream regardless of bufio's
// read coalescing.
type failNthReadFS struct {
	n     int64
	reads atomic.Int64
}

func (f *failNthReadFS) CreateTemp(dir, pattern string) (data.File, error) {
	return data.OsFS{}.CreateTemp(dir, pattern)
}
func (f *failNthReadFS) Remove(name string) error { return data.OsFS{}.Remove(name) }
func (f *failNthReadFS) Rename(oldpath, newpath string) error {
	return data.OsFS{}.Rename(oldpath, newpath)
}
func (f *failNthReadFS) Open(name string) (io.ReadCloser, error) {
	rc, err := data.OsFS{}.Open(name)
	if err != nil {
		return nil, err
	}
	return &failNthReader{fs: f, rc: rc}, nil
}

type failNthReader struct {
	fs *failNthReadFS
	rc io.ReadCloser
}

var errDiskGone = errors.New("simulated permanent media failure")

func (r *failNthReader) Read(p []byte) (int, error) {
	if r.fs.reads.Add(1) > r.fs.n {
		return 0, errDiskGone
	}
	// Cap read size so the stream needs many underlying reads and the
	// failure lands mid-file.
	if len(p) > 1024 {
		p = p[:1024]
	}
	return r.rc.Read(p)
}

func (r *failNthReader) Close() error { return r.rc.Close() }

// TestColFaultPermanentReadMidScan: a permanent read failure mid-stream
// surfaces from the pipelined scan after the preceding blocks were
// delivered, and Close reclaims every pipeline goroutine.
func TestColFaultPermanentReadMidScan(t *testing.T) {
	path, _ := writeFaultFile(t, 2000, 64)
	baseline := runtime.NumGoroutine()
	fs := &failNthReadFS{n: 8} // 8 KiB in, then the disk "dies"
	src, err := data.OpenColFile(path, data.ColOptions{
		FS: fs, Retry: noSleep,
		Pipeline: data.PipelineConfig{Depth: 4, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drainCol(t, src, 64)
	if !errors.Is(err, errDiskGone) {
		t.Fatalf("scan error %v, want the injected permanent failure", err)
	}
	if rows <= 0 || rows >= 2000 {
		t.Fatalf("%d rows delivered, want a mid-stream prefix", rows)
	}
	if rows%64 != 0 {
		t.Fatalf("%d rows delivered, want whole blocks only", rows)
	}
	waitGoroutines(t, baseline)
}

// waitGoroutines polls until the goroutine count falls back to baseline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
