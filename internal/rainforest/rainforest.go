// Package rainforest implements the RainForest family of scalable decision
// tree construction algorithms (Gehrke, Ramakrishnan, Ganti, VLDB 1998) —
// the baselines BOAT is evaluated against in the paper's Section 5:
// RF-Hybrid (fastest, largest AVC-group buffer) and RF-Vertical (smallest
// memory footprint, processing oversized AVC-groups attribute-group by
// attribute-group with additional scans).
//
// Both algorithms construct the tree level-synchronized, building the
// AVC-groups (attribute-value, class-label count sets) of as many
// unfinished nodes as fit in the AVC buffer per sequential scan of the
// training database — hence at least one scan per level of the tree, the
// cost profile BOAT's two-scan construction is measured against. Split
// selection is shared with every other builder in this repository, so
// RainForest produces the identical tree.
package rainforest

import (
	"errors"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// Config parameterizes a RainForest build.
type Config struct {
	// Grow holds the split selection method and the stopping rules,
	// shared verbatim with the reference algorithm and BOAT.
	Grow inmem.Config
	// AVCBufferEntries is the AVC-group buffer size in entries (the
	// paper's experiments use 3 million for RF-Hybrid and 1.8 million
	// for RF-Vertical). 0 = unlimited (every level in one scan).
	AVCBufferEntries int64
	// Vertical selects RF-Vertical behavior: nodes whose AVC-group alone
	// exceeds the buffer are processed in several scans, one attribute
	// group (fitting the buffer) at a time, modeling RF-Vertical's
	// per-attribute temporary files.
	Vertical bool
	// TempDir and MemBudgetTuples control the buffers that collect
	// switch-over families (non-stop mode only).
	TempDir         string
	MemBudgetTuples int64
	// Stats receives scan accounting when non-nil.
	Stats *iostats.Stats
}

// BuildStats reports the cost profile of a build.
type BuildStats struct {
	// Scans is the number of sequential scans over the training database.
	Scans int64
	// Levels is the number of tree levels that required scanning the
	// database (levels whose nodes were all finalized from their parents'
	// AVC-groups are free and not counted; in-memory switch-over subtrees
	// are likewise excluded).
	Levels int
	// PeakAVCEntries is the largest number of AVC entries held at once.
	PeakAVCEntries int64
	// OversizedNodes counts nodes whose AVC-group alone exceeded the
	// buffer (forcing RF-Vertical's multi-scan attribute processing, or
	// an overflowing single scan for RF-Hybrid).
	OversizedNodes int64
	// InMemoryLeaves counts switch-over families finished in memory.
	InMemoryLeaves int64
}

// rfNode is a node under construction.
type rfNode struct {
	depth       int
	size        int64 // |F_n|, known from the parent's AVC-group
	classTotals []int64
	node        *tree.Node
	collect     *data.SpillBuffer // non-stop switch-over: family collection
}

// builder carries shared state across scans.
type builder struct {
	cfg      Config
	schema   *data.Schema
	src      data.Source
	budget   *data.MemBudget
	distinct []int64 // per-attribute distinct-value upper bounds
	stats    *BuildStats
	t        *tree.Tree
}

// Build constructs the decision tree over src.
func Build(src data.Source, cfg Config) (*tree.Tree, BuildStats, error) {
	var bs BuildStats
	if cfg.Grow.Method == nil {
		return nil, bs, errors.New("rainforest: Grow.Method is required")
	}
	schema := src.Schema()
	total, err := data.CountTuples(src)
	if err != nil {
		return nil, bs, err
	}
	b := &builder{
		cfg:      cfg,
		schema:   schema,
		src:      iostats.Tracked(src, cfg.Stats),
		budget:   data.NewMemBudget(cfg.MemBudgetTuples),
		distinct: make([]int64, len(schema.Attributes)),
		stats:    &bs,
	}
	for i, a := range schema.Attributes {
		if a.Kind == data.Categorical {
			b.distinct[i] = int64(a.Cardinality)
		} else {
			b.distinct[i] = total // pessimistic until measured at the root
		}
	}

	root := &rfNode{depth: 0, size: total, node: &tree.Node{}}
	b.t = &tree.Tree{Schema: schema, Root: root.node}
	open := []*rfNode{root}

	for len(open) > 0 {
		var pending, collects []*rfNode
		var next []*rfNode
		for _, n := range open {
			switch {
			case n.classTotals != nil && b.cfg.Grow.StopBeforeSplit(n.size, n.depth, n.classTotals):
				finalizeLeaf(n)
			case !cfg.Grow.StopAtThreshold && cfg.Grow.StopThreshold > 0 && n.size <= cfg.Grow.StopThreshold:
				// The family fits in memory: collect it during the next
				// scan and finish with the main-memory algorithm.
				n.collect = data.NewSpillBuffer(schema, cfg.TempDir, b.budget, cfg.Stats)
				collects = append(collects, n)
			default:
				pending = append(pending, n)
			}
		}
		if len(pending) > 0 || len(collects) > 0 {
			bs.Levels++ // a level that requires scanning
		}
		for len(pending) > 0 || len(collects) > 0 {
			batch, oversized, rest := b.planBatch(pending)
			if err := b.scanAndSplit(batch, oversized, collects, &next); err != nil {
				return nil, bs, err
			}
			pending = rest
			collects = nil // served by the scan just performed
		}
		open = next
	}
	return b.t, bs, nil
}

func finalizeLeaf(n *rfNode) {
	n.node.Crit = split.Split{}
	n.node.Left, n.node.Right = nil, nil
	n.node.ClassCounts = n.classTotals
	n.node.Label = tree.MajorityLabel(n.classTotals)
}

// estimateEntries upper-bounds a node's AVC-group entry count.
func (b *builder) estimateEntries(n *rfNode) int64 {
	var e int64
	for i, a := range b.schema.Attributes {
		if a.Kind == data.Categorical {
			e += int64(a.Cardinality)
			continue
		}
		d := b.distinct[i]
		if n.size < d {
			d = n.size
		}
		e += d
	}
	return e
}

// planBatch selects a prefix of pending nodes whose estimated AVC-groups
// fit the buffer together. If the first node alone exceeds the buffer it
// is returned as oversized (handled per algorithm variant).
func (b *builder) planBatch(pending []*rfNode) (batch []*rfNode, oversized *rfNode, rest []*rfNode) {
	if len(pending) == 0 {
		return nil, nil, nil
	}
	limit := b.cfg.AVCBufferEntries
	if limit <= 0 {
		return pending, nil, nil
	}
	if b.estimateEntries(pending[0]) > limit {
		b.stats.OversizedNodes++
		return nil, pending[0], pending[1:]
	}
	var used int64
	i := 0
	for ; i < len(pending); i++ {
		e := b.estimateEntries(pending[i])
		if used+e > limit && i > 0 {
			break
		}
		used += e
	}
	return pending[:i], nil, pending[i:]
}

// scanAndSplit performs one sequential scan (or several for an oversized
// RF-Vertical node), building the AVC-groups of the batch and collecting
// switch-over families, then computes and installs the splits.
func (b *builder) scanAndSplit(batch []*rfNode, oversized *rfNode,
	collects []*rfNode, next *[]*rfNode) error {
	if oversized != nil {
		if _, impurity := b.cfg.Grow.Method.(split.ImpurityBased); b.cfg.Vertical && impurity {
			return b.verticalSplit(oversized, collects, next)
		}
		// RF-Hybrid: build the oversized AVC-group in a single scan
		// regardless; the overflow is visible in PeakAVCEntries (the
		// paper sizes the RF-Hybrid buffer so this does not happen).
		batch = []*rfNode{oversized}
	}
	target := make(map[*tree.Node]*rfNode, len(batch)+len(collects))
	avcs := make(map[*rfNode]*split.AVCBuilder, len(batch))
	for _, n := range batch {
		target[n.node] = n
		avcs[n] = split.NewAVCBuilder(b.schema)
	}
	for _, n := range collects {
		target[n.node] = n
	}
	err := b.forEachRouted(target, func(n *rfNode, tp data.Tuple) error {
		if avc, ok := avcs[n]; ok {
			avc.Add(tp)
			return nil
		}
		return n.collect.Append(tp)
	})
	if err != nil {
		return err
	}
	var inUse int64
	for _, avc := range avcs {
		inUse += avc.Entries()
	}
	if inUse > b.stats.PeakAVCEntries {
		b.stats.PeakAVCEntries = inUse
	}
	for _, n := range batch {
		stats := avcs[n].Stats()
		delete(avcs, n)
		if n.depth == 0 {
			b.recordRootDistinct(stats)
		}
		b.installSplit(n, stats, next)
	}
	for _, n := range collects {
		if err := b.finishCollected(n); err != nil {
			return err
		}
	}
	return nil
}

// recordRootDistinct tightens the per-attribute distinct-value bounds from
// the root's AVC-group (a global upper bound for every deeper family).
func (b *builder) recordRootDistinct(stats *split.NodeStats) {
	for i, avc := range stats.Num {
		if avc == nil {
			continue
		}
		if int64(avc.Entries()) < b.distinct[i] {
			b.distinct[i] = int64(avc.Entries())
		}
	}
}

// installSplit computes the node's split from its AVC-group and creates
// the children (or finalizes the leaf).
func (b *builder) installSplit(n *rfNode, stats *split.NodeStats, next *[]*rfNode) {
	n.classTotals = stats.ClassTotals
	n.size = stats.Total()
	if b.cfg.Grow.StopBeforeSplit(n.size, n.depth, n.classTotals) {
		finalizeLeaf(n)
		return
	}
	best := b.cfg.Grow.Method.BestSplit(stats)
	if !best.Found {
		finalizeLeaf(n)
		return
	}
	leftTotals := leftClassTotals(stats, best)
	rightTotals := make([]int64, len(leftTotals))
	var leftSize, rightSize int64
	for c := range leftTotals {
		rightTotals[c] = stats.ClassTotals[c] - leftTotals[c]
		leftSize += leftTotals[c]
		rightSize += rightTotals[c]
	}
	n.node.Crit = best
	n.node.ClassCounts = stats.ClassTotals
	n.node.Label = tree.MajorityLabel(stats.ClassTotals)
	n.node.Left = &tree.Node{}
	n.node.Right = &tree.Node{}
	*next = append(*next,
		&rfNode{depth: n.depth + 1, size: leftSize, classTotals: leftTotals, node: n.node.Left},
		&rfNode{depth: n.depth + 1, size: rightSize, classTotals: rightTotals, node: n.node.Right})
}

// leftClassTotals computes the class totals of the left partition from the
// AVC-group.
func leftClassTotals(stats *split.NodeStats, s split.Split) []int64 {
	out := make([]int64, len(stats.ClassTotals))
	if s.Kind == data.Numeric {
		avc := stats.Num[s.Attr]
		for i, v := range avc.Values {
			if v > s.Threshold {
				break
			}
			for c, cnt := range avc.Counts[i] {
				out[c] += cnt
			}
		}
		return out
	}
	cat := stats.Cat[s.Attr]
	for code, row := range cat.Counts {
		if code < 64 && s.Subset&(1<<uint(code)) != 0 {
			for c, cnt := range row {
				out[c] += cnt
			}
		}
	}
	return out
}

// finishCollected completes a switch-over family with the main-memory
// algorithm.
func (b *builder) finishCollected(n *rfNode) error {
	tuples, err := data.ReadAll(n.collect)
	if err != nil {
		return err
	}
	n.collect.Close()
	n.collect = nil
	grow := b.cfg.Grow
	if grow.MaxDepth != 0 {
		grow.MaxDepth -= n.depth
		if grow.MaxDepth < 1 {
			grow.MaxDepth = -1
		}
	}
	sub := inmem.Build(b.schema, tuples, grow)
	*n.node = *sub.Root
	b.stats.InMemoryLeaves++
	return nil
}

// forEachRouted scans the database once, routing every tuple down the
// partial tree and invoking fn when it reaches a node in the target set.
func (b *builder) forEachRouted(target map[*tree.Node]*rfNode, fn func(*rfNode, data.Tuple) error) error {
	b.stats.Scans++
	return data.ForEach(b.src, func(tp data.Tuple) error {
		node := b.t.Root
		for {
			if rf, ok := target[node]; ok {
				return fn(rf, tp)
			}
			if !node.Crit.Found {
				return nil // finished leaf or a node served by another scan
			}
			if node.Crit.Left(tp) {
				node = node.Left
			} else {
				node = node.Right
			}
		}
	})
}
