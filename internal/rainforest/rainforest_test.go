package rainforest

import (
	"fmt"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

func buildRef(t *testing.T, src data.Source, g inmem.Config) *tree.Tree {
	t.Helper()
	tuples, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	return inmem.Build(src.Schema(), tuples, g)
}

// TestExactnessMatrix: RainForest builds the identical tree to the
// reference across functions, methods and both algorithm variants.
func TestExactnessMatrix(t *testing.T) {
	methods := []split.Method{split.NewGini(), split.NewEntropy(), split.NewQuestLike()}
	for _, fn := range []int{1, 6, 7} {
		for _, m := range methods {
			for _, vertical := range []bool{false, true} {
				name := fmt.Sprintf("F%d/%s/vertical=%v", fn, m.Name(), vertical)
				t.Run(name, func(t *testing.T) {
					src := gen.MustSource(gen.Config{Function: fn, Noise: 0.05}, 8000, int64(fn))
					g := inmem.Config{Method: m, MaxDepth: 5, MinSplit: 50}
					ref := buildRef(t, src, g)
					got, _, err := Build(src, Config{
						Grow: g, AVCBufferEntries: 15000, Vertical: vertical,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(ref) {
						t.Fatalf("differs: %s", got.Diff(ref))
					}
				})
			}
		}
	}
}

// TestScansPerLevel verifies the cost model the paper's comparison rests
// on: with an unlimited buffer, RainForest makes exactly one scan per
// grown level.
func TestScansPerLevel(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 7, Noise: 0.05}, 8000, 3)
	var st iostats.Stats
	_, bs, err := Build(src, Config{
		Grow:  inmem.Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 50},
		Stats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Scans != int64(bs.Levels) {
		t.Errorf("scans=%d levels=%d: want one scan per level with unlimited buffer",
			bs.Scans, bs.Levels)
	}
	if st.Scans() != bs.Scans {
		t.Errorf("iostats scans %d != build stats %d", st.Scans(), bs.Scans)
	}
}

// TestBufferPressureIncreasesScans: shrinking the AVC buffer can only
// increase the number of scans, and RF-Vertical (same buffer) does at
// least as many scans as RF-Hybrid.
func TestBufferPressureIncreasesScans(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 10000, 5)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 50}
	scansWith := func(buffer int64, vertical bool) (int64, int64) {
		_, bs, err := Build(src, Config{Grow: g, AVCBufferEntries: buffer, Vertical: vertical})
		if err != nil {
			t.Fatal(err)
		}
		return bs.Scans, bs.PeakAVCEntries
	}
	unlimited, _ := scansWith(0, false)
	large, _ := scansWith(50000, false)
	small, peakSmall := scansWith(8000, false)
	if large < unlimited || small < large {
		t.Errorf("scans not monotone under buffer pressure: %d / %d / %d", unlimited, large, small)
	}
	if small == unlimited {
		t.Errorf("buffer pressure had no effect (scans %d)", small)
	}
	vertical, peakVert := scansWith(8000, true)
	if vertical < small {
		t.Errorf("RF-Vertical scans %d < RF-Hybrid %d at the same buffer", vertical, small)
	}
	if peakVert > peakSmall {
		t.Errorf("RF-Vertical peak AVC %d > RF-Hybrid %d: vertical should bound memory",
			peakVert, peakSmall)
	}
	t.Logf("scans: unlimited=%d large=%d small=%d vertical=%d", unlimited, large, small, vertical)
}

// TestStopModeMatchesReference: the performance-experiment methodology.
func TestStopModeMatchesReference(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 12000, 7)
	g := inmem.Config{Method: split.NewGini(), StopThreshold: 1500, StopAtThreshold: true}
	ref := buildRef(t, src, g)
	for _, vertical := range []bool{false, true} {
		got, bs, err := Build(src, Config{Grow: g, AVCBufferEntries: 10000, Vertical: vertical})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Fatalf("vertical=%v differs: %s", vertical, got.Diff(ref))
		}
		if bs.InMemoryLeaves != 0 {
			t.Errorf("stop mode should not collect families, got %d", bs.InMemoryLeaves)
		}
	}
}

// TestSwitchOverCollectsFamilies: non-stop mode with a threshold finishes
// small families in memory and still matches the full reference tree.
func TestSwitchOverCollectsFamilies(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 2, Noise: 0.05}, 9000, 9)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 6, MinSplit: 20}
	ref := buildRef(t, src, g)
	gt := g
	gt.StopThreshold = 2000
	got, bs, err := Build(src, Config{Grow: gt, AVCBufferEntries: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Fatalf("differs: %s", got.Diff(ref))
	}
	if bs.InMemoryLeaves == 0 {
		t.Error("expected switch-over families")
	}
}

// TestOversizedRootVertical: a buffer smaller than a single AVC-group
// forces the RF-Vertical attribute-group path at the root.
func TestOversizedRootVertical(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 7, Noise: 0.05}, 8000, 11)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 50}
	ref := buildRef(t, src, g)
	got, bs, err := Build(src, Config{Grow: g, AVCBufferEntries: 3000, Vertical: true})
	if err != nil {
		t.Fatal(err)
	}
	if bs.OversizedNodes == 0 {
		t.Fatal("expected oversized nodes with a 3000-entry buffer")
	}
	if !got.Equal(ref) {
		t.Fatalf("differs: %s", got.Diff(ref))
	}
	// A single attribute's AVC-set cannot be subdivided, so the peak is
	// bounded by max(buffer, largest single-attribute AVC), which here is
	// the ~8000-distinct-value salary column — but it must stay far below
	// the full AVC-group RF-Hybrid would have materialized.
	_, hybridBS, err := Build(src, Config{Grow: g, AVCBufferEntries: 3000, Vertical: false})
	if err != nil {
		t.Fatal(err)
	}
	if bs.PeakAVCEntries >= hybridBS.PeakAVCEntries {
		t.Errorf("vertical peak %d >= hybrid peak %d: no memory reduction",
			bs.PeakAVCEntries, hybridBS.PeakAVCEntries)
	}
}

// TestSpilledFamilyCollection: collection buffers respect the memory
// budget.
func TestSpilledFamilyCollection(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 6000, 13)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 50, StopThreshold: 2000}
	var st iostats.Stats
	got, _, err := Build(src, Config{
		Grow: g, TempDir: t.TempDir(), MemBudgetTuples: 300, Stats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillTuples() == 0 {
		t.Error("expected spilled collection tuples under a 300-tuple budget")
	}
	ref := buildRef(t, src, g)
	if !got.Equal(ref) {
		t.Fatalf("differs: %s", got.Diff(ref))
	}
}

func TestBuildConfigErrors(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 100, 1)
	if _, _, err := Build(src, Config{}); err == nil {
		t.Error("missing method not rejected")
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	for _, n := range []int64{0, 1, 5} {
		src := gen.MustSource(gen.Config{Function: 1}, n, 1)
		got, _, err := Build(src, Config{Grow: inmem.Config{Method: split.NewGini()}})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Root == nil {
			t.Fatalf("n=%d: nil root", n)
		}
	}
}
