package rainforest

import (
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// verticalSplit handles a node whose AVC-group alone exceeds the buffer,
// the case RF-Vertical is designed for: the predictor attributes are
// partitioned into groups whose AVC-sets fit the buffer, and the node is
// processed with one scan per group, keeping only the best split found so
// far. (The original RF-Vertical writes per-attribute temporary
// projections instead of rescanning; the scan count — the quantity the
// evaluation measures — is the same.)
func (b *builder) verticalSplit(n *rfNode, collects []*rfNode, next *[]*rfNode) error {
	groups := b.attributeGroups(n)
	best := split.NoSplit()
	var bestLeft []int64
	var classTotals []int64

	for gi, group := range groups {
		avcb := split.NewAVCBuilderFor(b.schema, group)
		target := map[*tree.Node]*rfNode{n.node: n}
		if gi == 0 {
			for _, c := range collects {
				target[c.node] = c
			}
		}
		err := b.forEachRouted(target, func(rf *rfNode, tp data.Tuple) error {
			if rf == n {
				avcb.Add(tp)
				return nil
			}
			return rf.collect.Append(tp)
		})
		if err != nil {
			return err
		}
		if e := avcb.Entries(); e > b.stats.PeakAVCEntries {
			b.stats.PeakAVCEntries = e
		}
		stats := avcb.Stats()
		classTotals = stats.ClassTotals
		for _, attr := range group {
			var cand split.Split
			if avc := stats.Num[attr]; avc != nil {
				cand = split.BestNumericSplit(b.criterionFor(), attr, avc, stats.ClassTotals)
			} else if cat := stats.Cat[attr]; cat != nil {
				cand = split.BestCategoricalSplit(b.criterionFor(), attr, cat, stats.ClassTotals)
			}
			if cand.Better(best) {
				best = cand
				bestLeft = leftClassTotals(stats, cand)
			}
		}
	}

	n.classTotals = classTotals
	n.size = stats64(classTotals)
	for _, c := range collects {
		if err := b.finishCollected(c); err != nil {
			return err
		}
	}
	if b.cfg.Grow.StopBeforeSplit(n.size, n.depth, n.classTotals) || !best.Found {
		finalizeLeaf(n)
		return nil
	}
	rightTotals := make([]int64, len(bestLeft))
	var leftSize, rightSize int64
	for c := range bestLeft {
		rightTotals[c] = classTotals[c] - bestLeft[c]
		leftSize += bestLeft[c]
		rightSize += rightTotals[c]
	}
	n.node.Crit = best
	n.node.ClassCounts = classTotals
	n.node.Label = tree.MajorityLabel(classTotals)
	n.node.Left = &tree.Node{}
	n.node.Right = &tree.Node{}
	*next = append(*next,
		&rfNode{depth: n.depth + 1, size: leftSize, classTotals: bestLeft, node: n.node.Left},
		&rfNode{depth: n.depth + 1, size: rightSize, classTotals: rightTotals, node: n.node.Right})
	return nil
}

// criterionFor returns the impurity criterion backing the configured
// method. The per-attribute search of verticalSplit only supports
// impurity-based methods; moment-based methods never take this path
// because their sufficient statistics are constant-size (their AVC-group
// pressure comes only from categorical tables, which are tiny).
func (b *builder) criterionFor() split.Criterion {
	if ib, ok := b.cfg.Grow.Method.(split.ImpurityBased); ok {
		return ib.Criterion()
	}
	return split.Gini
}

// attributeGroups partitions the attribute indexes so each group's
// estimated AVC entries fit the buffer (always at least one attribute per
// group).
func (b *builder) attributeGroups(n *rfNode) [][]int {
	limit := b.cfg.AVCBufferEntries
	var groups [][]int
	var cur []int
	var used int64
	for i, a := range b.schema.Attributes {
		var e int64
		if a.Kind == data.Categorical {
			e = int64(a.Cardinality)
		} else {
			e = b.distinct[i]
			if n.size < e {
				e = n.size
			}
		}
		if len(cur) > 0 && used+e > limit {
			groups = append(groups, cur)
			cur = nil
			used = 0
		}
		cur = append(cur, i)
		used += e
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

func stats64(counts []int64) int64 {
	var s int64
	for _, v := range counts {
		s += v
	}
	return s
}
