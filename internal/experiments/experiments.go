// Package experiments reproduces the performance evaluation of Section 5
// of the BOAT paper: every figure (4-15) has a runner that generates the
// corresponding workload, executes BOAT and the RainForest baselines (or
// the incremental-update comparison), checks that all algorithms produce
// the identical tree, and reports wall-clock time together with
// hardware-independent I/O counts (scans, tuples read, spilled tuples).
//
// Sizes are expressed in the paper's "millions of tuples"; Config.Unit
// maps one paper-million to an actual tuple count, so the default
// laptop-scale runs sweep 100k-500k tuples while -unit=1000000 reproduces
// the full 2M-10M experiments. All thresholds (the in-memory switch at
// 1.5M tuples, the 200k sample, the 50k bootstrap subsamples, the 3M/1.8M
// AVC buffers) are scaled consistently.
package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/rainforest"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// Config scales and parameterizes the experiment suite.
type Config struct {
	// Unit is the number of tuples per paper-"million" (default 50000,
	// i.e. a 20x scale-down; set 1000000 for the paper's full sizes).
	Unit int64
	// MaxUnits is the largest dataset in the scalability sweep
	// (paper: 10).
	MaxUnits int
	// SampleUnits is the sampling-phase sample size in units of 0.2
	// paper-millions... expressed directly: the sample is
	// SampleFraction of a paper-million (paper: 0.2). Bootstraps and
	// SubsampleFraction follow the paper's 20 repetitions of 50k.
	SampleFraction    float64
	SubsampleFraction float64
	Bootstraps        int
	// ThresholdUnits is the in-memory switch threshold in paper-millions
	// (paper: 1.5 of 10).
	ThresholdUnits float64
	// UseFiles materializes each dataset as a 40-byte-record binary file
	// and scans it from disk (the honest I/O configuration); otherwise
	// datasets are re-generated per scan (CPU-bound configuration).
	UseFiles bool
	// Dir is the scratch directory for dataset and spill files.
	Dir string
	// Seed drives dataset generation and sampling.
	Seed int64
	// Method is the split selection method (default gini).
	Method split.Method
	// Parallelism is the worker count for BOAT's parallel phases
	// (0 = runtime.GOMAXPROCS(0), 1 = sequential). The produced trees are
	// identical at every setting; only wall-clock times change.
	Parallelism int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Logger, when non-nil, receives progress records as structured logs
	// (preferred over Log) and is threaded into the BOAT builds.
	Logger *slog.Logger
	// Metrics, when non-nil, receives the metrics of every BOAT build an
	// experiment performs (counters accumulate across builds).
	Metrics *obs.Registry
}

func (c Config) normalized() Config {
	if c.Unit <= 0 {
		c.Unit = 50_000
	}
	if c.MaxUnits <= 0 {
		c.MaxUnits = 10
	}
	if c.SampleFraction <= 0 {
		c.SampleFraction = 0.2 // 200k per paper-million-of-10M ... see sample()
	}
	if c.SubsampleFraction <= 0 {
		c.SubsampleFraction = 0.25
	}
	if c.Bootstraps <= 0 {
		c.Bootstraps = 20
	}
	if c.ThresholdUnits <= 0 {
		c.ThresholdUnits = 1.5
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
	if c.Method == nil {
		c.Method = split.NewGini()
	}
	return c
}

// sampleSize returns |D'|: the paper uses a fixed 200000-tuple sample
// regardless of database size; scaled, that is 0.2 paper-millions.
func (c Config) sampleSize() int { return int(float64(c.Unit) * c.SampleFraction) }

func (c Config) subsampleSize() int {
	return int(float64(c.sampleSize()) * c.SubsampleFraction)
}

func (c Config) threshold() int64 { return int64(c.ThresholdUnits * float64(c.Unit)) }

func (c Config) logf(format string, args ...any) {
	if c.Logger != nil {
		c.Logger.Info(fmt.Sprintf(format, args...))
		return
	}
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Row is one measured point of a figure.
type Row struct {
	Figure string
	// X is the sweep coordinate (dataset size in paper-millions, noise
	// percentage, number of extra attributes, or cumulative inserted
	// paper-millions for the dynamic figures).
	X      float64
	XLabel string
	Algo   string
	// Seconds is wall-clock time.
	Seconds float64
	// Scans / TuplesRead / SpillTuples are the hardware-independent
	// costs over the training database (plus temp I/O).
	Scans       int64
	TuplesRead  int64
	SpillTuples int64
	// Nodes is the size of the produced tree.
	Nodes int
}

// FormatRows renders rows as an aligned table grouped by figure.
func FormatRows(w io.Writer, rows []Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "figure\tx\talgo\tseconds\tscans\ttuples_read\tspill_tuples\tnodes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s=%g\t%s\t%.3f\t%d\t%d\t%d\t%d\n",
			r.Figure, r.XLabel, r.X, r.Algo, r.Seconds, r.Scans, r.TuplesRead, r.SpillTuples, r.Nodes)
	}
	tw.Flush()
}

// algoResult is one algorithm execution over one dataset.
type algoResult struct {
	tree    *tree.Tree
	seconds float64
	io      iostats.Snapshot
}

// makeSource materializes (or wraps) a generated dataset.
func (c Config) makeSource(cfg gen.Config, n int64, seed int64, tag string) (data.Source, func(), error) {
	src, err := gen.NewSource(cfg, n, seed)
	if err != nil {
		return nil, nil, err
	}
	if !c.UseFiles {
		return src, func() {}, nil
	}
	path := filepath.Join(c.Dir, fmt.Sprintf("boat-exp-%s-%d-%d.dat", tag, n, seed))
	if _, err := data.WriteFile(path, src, data.FormatCompact); err != nil {
		return nil, nil, err
	}
	fs, err := data.OpenFile(path)
	if err != nil {
		os.Remove(path)
		return nil, nil, err
	}
	return fs, func() { os.Remove(path) }, nil
}

// grow holds the shared stopping rules of the performance methodology:
// growth stops once a family fits in memory (StopAtThreshold).
func (c Config) grow() inmem.Config {
	return inmem.Config{
		Method:          c.Method,
		StopThreshold:   c.threshold(),
		StopAtThreshold: true,
	}
}

// avcBuffers derives the RF-Hybrid and RF-Vertical AVC buffer sizes: the
// paper uses 3M and 1.8M entries against a ~2M-entry root AVC-group of
// the 10M-tuple dataset — i.e. the root fits for RF-Hybrid and does not
// for RF-Vertical. We scale from the estimated root AVC-group size of the
// largest dataset in the sweep.
func (c Config) avcBuffers(maxTuples int64, extraAttrs int) (hybrid, vertical int64) {
	root := estimateRootEntries(maxTuples, extraAttrs)
	return root * 3 / 2, root * 6 / 10
}

// estimateRootEntries approximates the distinct-value totals of the
// 9-attribute Agrawal schema at a given dataset size.
func estimateRootEntries(n int64, extraAttrs int) int64 {
	min := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	var e int64
	e += min(n, 130_001) // salary
	e += min(n, 65_002)  // commission
	e += min(n, 61)      // age
	e += 5 + 20 + 9      // categorical domains
	e += min(n, 900_000) // hvalue (union of the per-zipcode ranges)
	e += min(n, 30)      // hyears
	e += min(n, 500_001) // loan
	e += int64(extraAttrs) * min(n, 100_001)
	return e
}

func (c Config) boatConfig(st *iostats.Stats) core.Config {
	return core.Config{
		Method:          c.Method,
		SampleSize:      c.sampleSize(),
		SubsampleSize:   c.subsampleSize(),
		BootstrapTrees:  c.Bootstraps,
		StopThreshold:   c.threshold(),
		StopAtThreshold: true,
		TempDir:         c.Dir,
		Seed:            c.Seed + 1,
		Stats:           st,
		Parallelism:     c.Parallelism,
		Metrics:         c.Metrics,
		Logger:          c.Logger,
	}
}

// runBOAT builds with BOAT and returns the result.
func (c Config) runBOAT(src data.Source) (algoResult, error) {
	var st iostats.Stats
	start := time.Now()
	bt, err := core.Build(src, c.boatConfig(&st))
	if err != nil {
		return algoResult{}, fmt.Errorf("BOAT: %w", err)
	}
	defer bt.Close()
	elapsed := time.Since(start).Seconds()
	return algoResult{tree: bt.Tree(), seconds: elapsed, io: st.Snapshot()}, nil
}

// runRF builds with RF-Hybrid or RF-Vertical.
func (c Config) runRF(src data.Source, buffer int64, vertical bool) (algoResult, error) {
	var st iostats.Stats
	start := time.Now()
	tr, _, err := rainforest.Build(src, rainforest.Config{
		Grow:             c.grow(),
		AVCBufferEntries: buffer,
		Vertical:         vertical,
		TempDir:          c.Dir,
		Stats:            &st,
	})
	if err != nil {
		return algoResult{}, fmt.Errorf("rainforest(vertical=%v): %w", vertical, err)
	}
	return algoResult{tree: tr, seconds: time.Since(start).Seconds(), io: st.Snapshot()}, nil
}

// comparePoint runs BOAT, RF-Hybrid and RF-Vertical on one dataset,
// verifies the identical-tree guarantee across all three, and emits the
// three rows.
func (c Config) comparePoint(fig, xlabel string, x float64, cfg gen.Config, n int64, seed int64) ([]Row, error) {
	src, cleanup, err := c.makeSource(cfg, n, seed, fig)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	hybridBuf, verticalBuf := c.avcBuffers(int64(c.MaxUnits)*c.Unit, cfg.ExtraAttrs)

	boatRes, err := c.runBOAT(src)
	if err != nil {
		return nil, err
	}
	hybridRes, err := c.runRF(src, hybridBuf, false)
	if err != nil {
		return nil, err
	}
	verticalRes, err := c.runRF(src, verticalBuf, true)
	if err != nil {
		return nil, err
	}
	if !boatRes.tree.Equal(hybridRes.tree) {
		return nil, fmt.Errorf("%s x=%g: BOAT and RF-Hybrid trees differ: %s",
			fig, x, boatRes.tree.Diff(hybridRes.tree))
	}
	if !boatRes.tree.Equal(verticalRes.tree) {
		return nil, fmt.Errorf("%s x=%g: BOAT and RF-Vertical trees differ: %s",
			fig, x, boatRes.tree.Diff(verticalRes.tree))
	}
	c.logf("%s %s=%g: BOAT %.2fs/%d scans | RF-Hybrid %.2fs/%d scans | RF-Vertical %.2fs/%d scans",
		fig, xlabel, x, boatRes.seconds, boatRes.io.Scans,
		hybridRes.seconds, hybridRes.io.Scans, verticalRes.seconds, verticalRes.io.Scans)

	mk := func(algo string, r algoResult) Row {
		return Row{
			Figure: fig, X: x, XLabel: xlabel, Algo: algo,
			Seconds: r.seconds, Scans: r.io.Scans, TuplesRead: r.io.TuplesRead,
			SpillTuples: r.io.SpillTuples, Nodes: r.tree.NumNodes(),
		}
	}
	return []Row{
		mk("BOAT", boatRes),
		mk("RF-Hybrid", hybridRes),
		mk("RF-Vertical", verticalRes),
	}, nil
}

// RunScalability reproduces Figures 4-6: overall construction time versus
// training database size (2 to MaxUnits paper-millions) for one
// classification function.
func RunScalability(fig string, fn int, c Config) ([]Row, error) {
	c = c.normalized()
	var rows []Row
	for units := 2; units <= c.MaxUnits; units += 2 {
		n := int64(units) * c.Unit
		pts, err := c.comparePoint(fig, "millions", float64(units),
			gen.Config{Function: fn, Noise: 0.05}, n, c.Seed+int64(units))
		if err != nil {
			return rows, err
		}
		rows = append(rows, pts...)
	}
	return rows, nil
}

// RunNoise reproduces Figures 7-9: construction time at a fixed size
// (5 paper-millions) as label noise grows from 2% to 10%.
func RunNoise(fig string, fn int, c Config) ([]Row, error) {
	c = c.normalized()
	n := 5 * c.Unit
	var rows []Row
	for _, pct := range []int{2, 4, 6, 8, 10} {
		pts, err := c.comparePoint(fig, "noise%", float64(pct),
			gen.Config{Function: fn, Noise: float64(pct) / 100}, n, c.Seed+int64(pct))
		if err != nil {
			return rows, err
		}
		rows = append(rows, pts...)
	}
	return rows, nil
}

// RunExtraAttrs reproduces Figures 10-11: construction time as
// non-predictive random attributes are appended to the records.
func RunExtraAttrs(fig string, fn int, c Config) ([]Row, error) {
	c = c.normalized()
	n := 5 * c.Unit
	var rows []Row
	for _, extra := range []int{0, 2, 4, 6} {
		pts, err := c.comparePoint(fig, "extra", float64(extra),
			gen.Config{Function: fn, Noise: 0.05, ExtraAttrs: extra}, n, c.Seed+int64(extra))
		if err != nil {
			return rows, err
		}
		rows = append(rows, pts...)
	}
	return rows, nil
}

// InstabilityResult reproduces Figure 12's phenomenon quantitatively.
type InstabilityResult struct {
	// Points are the bootstrap split points at the root across all
	// repetitions.
	Points []float64
	// NearLow / NearHigh count points near the two tied minima (19, 60).
	NearLow, NearHigh int
	// IntervalLo/Hi is the resulting confidence interval (when the root
	// survived).
	IntervalLo, IntervalHi float64
	// RootSurvived is whether all bootstrap trees agreed at the root.
	RootSurvived bool
	// CoarseNodes is the size of the coarse tree (growth stops quickly
	// below the root because subtrees of the two far-apart splits
	// differ).
	CoarseNodes int
	// BOATExact confirms BOAT still produced the reference tree.
	BOATExact bool
	// Failures is the number of verification failures BOAT recovered
	// from.
	Failures int64
}

// RunInstability builds the two-tied-minima dataset of Figure 12 and
// reports the bimodality of the bootstrap split points, plus BOAT's
// behaviour (stopped coarse growth / verification failures / exactness).
func RunInstability(c Config) (InstabilityResult, error) {
	c = c.normalized()
	var res InstabilityResult
	n := 2 * c.Unit
	src := gen.InstabilitySource(n, c.Seed+77)

	// Sampling-phase view: bootstrap split points at the root.
	sample, err := data.ReservoirSample(src, c.sampleSize(), newRand(c.Seed+1))
	if err != nil {
		return res, err
	}
	bcfg := bootstrapConfig(c, int64(len(sample)))
	root, bstats, err := bootstrapBuild(src.Schema(), sample, bcfg)
	if err != nil {
		return res, err
	}
	res.CoarseNodes = bstats.CoarseNodes
	if root != nil {
		res.RootSurvived = true
		res.Points = root.Points
		res.IntervalLo, res.IntervalHi = root.Lo, root.Hi
		for _, p := range root.Points {
			if p < 40 {
				res.NearLow++
			} else {
				res.NearHigh++
			}
		}
		sort.Float64s(res.Points)
	}

	// Full BOAT run: exactness must survive the instability.
	grow := inmem.Config{Method: c.Method, MaxDepth: 4, MinSplit: 100}
	tuples, err := data.ReadAll(src)
	if err != nil {
		return res, err
	}
	ref := inmem.Build(src.Schema(), tuples, grow)
	bt, err := core.Build(src, core.Config{
		Method: c.Method, MaxDepth: 4, MinSplit: 100,
		SampleSize: c.sampleSize(), SubsampleSize: c.subsampleSize(),
		BootstrapTrees: c.Bootstraps, Seed: c.Seed + 2, TempDir: c.Dir,
	})
	if err != nil {
		return res, err
	}
	defer bt.Close()
	res.BOATExact = bt.Tree().Equal(ref)
	res.Failures = bt.BuildStats().FailedNodes
	return res, nil
}
