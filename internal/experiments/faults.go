package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/faultfs"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/iostats"
)

// FaultSoakResult summarizes a RunFaultSoak pass.
type FaultSoakResult struct {
	Builds int // builds attempted
	Exact  int // builds that succeeded and matched the fault-free tree
	Failed int // builds that returned a clean storage error

	InjectedFaults int64 // total faults injected across all builds
	Transient      int64 // of which transient (retryable)

	ScanFallbacks int64 // sharded scans degraded to sequential
	ScanRetries   int64 // sequential scans retried after a spill fault
	SpillRetries  int64 // individual spill operations retried
	SpillRebuilds int64 // subtrees rebuilt after a push-phase spill fault
}

// RunFaultSoak drives the fault-injection soak: `builds` BOAT builds of
// the same dataset, each over a fault-injecting filesystem seeded with
// faultSeed+i and a deliberately tiny memory budget so every build leans
// hard on the spill path. Every build must either produce a tree
// identical to the fault-free reference or fail with a clean storage
// error — and in both cases must release its whole memory budget and
// leave zero temp files behind. Any other outcome is returned as an
// error.
func RunFaultSoak(c Config, builds int, faultSeed int64) (FaultSoakResult, error) {
	c = c.normalized()
	if builds <= 0 {
		builds = 100
	}
	res := FaultSoakResult{Builds: builds}

	n := c.Unit // one paper-"million" is plenty for a spill-heavy soak
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, n, c.Seed)

	cfg := c.boatConfig(nil)
	ref, err := core.Build(src, cfg)
	if err != nil {
		return res, fmt.Errorf("fault soak: fault-free reference build: %w", err)
	}
	want := ref.Tree()
	defer ref.Close()

	scratch, err := os.MkdirTemp(c.Dir, "boat-faultsoak-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(scratch)

	for i := range builds {
		dir := filepath.Join(scratch, fmt.Sprintf("b%03d", i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			return res, err
		}
		// Transient-only faults: every injected error is retryable, so a
		// build should almost always recover; MaxFaults keeps a single
		// build from drawing an endless unlucky streak.
		ffs := faultfs.New(nil, faultfs.Config{
			Seed:              faultSeed + int64(i),
			CreateProb:        0.2,
			WriteProb:         0.2,
			OpenProb:          0.05,
			RemoveProb:        0.2,
			TransientFraction: 1,
			MaxFaults:         8,
		})
		var st iostats.Stats
		budget := data.NewMemBudget(max(n/100, 64)) // ~1% resident: spill everything
		bcfg := cfg
		bcfg.Stats = &st
		bcfg.TempDir = dir
		bcfg.FS = ffs
		bcfg.Budget = budget
		bt, err := core.Build(src, bcfg)
		if err == nil {
			if !bt.Tree().Equal(want) {
				bt.Close()
				return res, fmt.Errorf("fault soak: build %d (fault seed %d) produced a different tree", i, faultSeed+int64(i))
			}
			bs := bt.BuildStats()
			res.SpillRebuilds += bs.SpillRebuilds
			bt.Close()
			res.Exact++
		} else {
			if !data.IsSpillError(err) {
				return res, fmt.Errorf("fault soak: build %d failed with a non-storage error: %w", i, err)
			}
			res.Failed++
		}
		if used := budget.Used(); used != 0 {
			return res, fmt.Errorf("fault soak: build %d left %d tuples acquired in the memory budget", i, used)
		}
		if leaked := tempsUnder(dir); len(leaked) != 0 {
			return res, fmt.Errorf("fault soak: build %d leaked temp files: %s", i, strings.Join(leaked, ", "))
		}
		fst := ffs.Stats()
		res.InjectedFaults += fst.Faults
		res.Transient += fst.Transient
		res.ScanFallbacks += st.ScanFallbacks()
		res.ScanRetries += st.ScanRetries()
		res.SpillRetries += st.SpillRetries()
		if err := os.RemoveAll(dir); err != nil {
			return res, err
		}
		if (i+1)%10 == 0 {
			c.logf("fault soak: %d/%d builds (%d exact, %d clean errors, %d faults injected)",
				i+1, builds, res.Exact, res.Failed, res.InjectedFaults)
		}
	}
	return res, nil
}

// tempsUnder lists temp files under dir that are still registered live
// or still present on disk.
func tempsUnder(dir string) []string {
	var leaked []string
	for _, p := range data.LiveTempFiles() {
		if strings.HasPrefix(p, dir+string(os.PathSeparator)) {
			leaked = append(leaked, p)
		}
	}
	if matches, err := filepath.Glob(filepath.Join(dir, "boat-*")); err == nil {
		leaked = append(leaked, matches...)
	}
	return leaked
}
