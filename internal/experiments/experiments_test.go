package experiments

import (
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests; the runners
// themselves verify tree equality across algorithms, so these tests are
// end-to-end checks of the whole reproduction pipeline.
func tiny(t *testing.T) Config {
	t.Helper()
	return Config{Unit: 4000, MaxUnits: 4, Seed: 1, Dir: t.TempDir()}
}

func checkRows(t *testing.T, rows []Row, wantAlgos []string, wantPoints int) {
	t.Helper()
	algos := map[string]int{}
	for _, r := range rows {
		algos[r.Algo]++
		if r.Seconds < 0 {
			t.Errorf("negative time in %+v", r)
		}
	}
	for _, a := range wantAlgos {
		if algos[a] != wantPoints {
			t.Errorf("algo %s has %d points, want %d (all: %v)", a, algos[a], wantPoints, algos)
		}
	}
}

func TestRunScalability(t *testing.T) {
	rows, err := RunScalability("fig4", 1, tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []string{"BOAT", "RF-Hybrid", "RF-Vertical"}, 2) // sizes 2 and 4
	// BOAT must scan the database exactly twice at every point.
	for _, r := range rows {
		if r.Algo == "BOAT" && r.Scans != 2 {
			t.Errorf("BOAT made %d scans at x=%g", r.Scans, r.X)
		}
	}
}

func TestRunScalabilityWithFiles(t *testing.T) {
	c := tiny(t)
	c.UseFiles = true
	c.MaxUnits = 2
	rows, err := RunScalability("fig4", 6, c)
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []string{"BOAT", "RF-Hybrid", "RF-Vertical"}, 1)
}

func TestRunNoise(t *testing.T) {
	c := tiny(t)
	rows, err := RunNoise("fig7", 1, c)
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []string{"BOAT", "RF-Hybrid", "RF-Vertical"}, 5) // 2..10%
}

func TestRunExtraAttrs(t *testing.T) {
	c := tiny(t)
	rows, err := RunExtraAttrs("fig10", 1, c)
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []string{"BOAT", "RF-Hybrid", "RF-Vertical"}, 4) // 0,2,4,6
	// Tuples read should grow with record width for the same scan counts
	// is not guaranteed (tuple counts, not bytes); but BOAT stays at 2
	// scans regardless of the extra attributes.
	for _, r := range rows {
		if r.Algo == "BOAT" && r.Scans != 2 {
			t.Errorf("BOAT scans = %d with extra attrs x=%g", r.Scans, r.X)
		}
	}
}

func TestRunInstability(t *testing.T) {
	res, err := RunInstability(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.BOATExact {
		t.Fatal("BOAT lost exactness on the instability dataset")
	}
	if res.RootSurvived {
		// When the root survives, the split points must be bimodal: both
		// minima represented, or the interval spans them.
		if res.NearLow == 0 || res.NearHigh == 0 {
			t.Logf("all bootstrap points on one side (low=%d high=%d): also a legal outcome",
				res.NearLow, res.NearHigh)
		}
		if res.NearLow > 0 && res.NearHigh > 0 && res.IntervalHi-res.IntervalLo < 30 {
			t.Errorf("bimodal points but narrow interval [%v,%v]", res.IntervalLo, res.IntervalHi)
		}
	}
	t.Logf("instability: %+v", res)
}

func TestRunDynamicStable(t *testing.T) {
	rows, err := RunDynamic("fig13", DynamicStable, tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []string{"BOAT-Update", "Rebuild-BOAT", "Rebuild-RF-Hybrid"}, 2)
	// Cumulative times must be non-decreasing per algorithm.
	last := map[string]float64{}
	for _, r := range rows {
		if r.Seconds < last[r.Algo] {
			t.Errorf("%s cumulative time decreased at x=%g", r.Algo, r.X)
		}
		last[r.Algo] = r.Seconds
	}
}

func TestRunDynamicChange(t *testing.T) {
	rows, err := RunDynamic("fig14", DynamicChange, tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []string{"BOAT-Update", "Rebuild-BOAT", "Rebuild-RF-Hybrid"}, 2)
}

func TestRunDynamicChunkSize(t *testing.T) {
	rows, err := RunDynamic("fig15", DynamicChunkSize, tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 int
	for _, r := range rows {
		switch r.Algo {
		case "Chunk-1":
			c1++
		case "Chunk-2":
			c2++
		}
	}
	if c1 != 4 || c2 != 2 {
		t.Errorf("chunk curves have %d/%d points, want 4/2", c1, c2)
	}
}

func TestFormatRows(t *testing.T) {
	var sb strings.Builder
	FormatRows(&sb, []Row{{
		Figure: "fig4", X: 2, XLabel: "millions", Algo: "BOAT",
		Seconds: 1.5, Scans: 2, TuplesRead: 100, Nodes: 7,
	}})
	out := sb.String()
	for _, want := range []string{"fig4", "BOAT", "millions=2", "1.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDynamicKindString(t *testing.T) {
	if DynamicStable.String() != "stable" || DynamicChange.String() != "change" ||
		DynamicChunkSize.String() != "chunk-size" {
		t.Error("kind names wrong")
	}
}
