package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/boatml/boat/internal/bootstrap"
	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func bootstrapConfig(c Config, n int64) bootstrap.Config {
	return bootstrap.Config{
		Trees:         c.Bootstraps,
		SubsampleSize: c.subsampleSize(),
		TreeConfig:    inmem.Config{Method: c.Method, MaxDepth: 4, MinSplit: 100},
		Seed:          c.Seed + 3,
		Parallelism:   c.Parallelism,
	}
}

func bootstrapBuild(schema *data.Schema, sample []data.Tuple, cfg bootstrap.Config) (*bootstrap.Node, bootstrap.Stats, error) {
	return bootstrap.BuildCoarse(schema, sample, cfg)
}

// DynamicKind selects among the three dynamic-environment figures.
type DynamicKind int

const (
	// DynamicStable is Figure 13: chunks from the unchanged distribution
	// (with 10% noise) are inserted; the BOAT update cost is compared to
	// repeatedly rebuilding the tree from scratch (with the original
	// dataset conservatively counted as size zero, per the paper).
	DynamicStable DynamicKind = iota
	// DynamicChange is Figure 14: the arriving chunks come from the
	// shifted distribution, forcing partial rebuilds of the tree.
	DynamicChange
	// DynamicChunkSize is Figure 15: cumulative update time with 1-unit
	// chunks versus 2-unit chunks — the curves should nearly coincide.
	DynamicChunkSize
)

func (k DynamicKind) String() string {
	switch k {
	case DynamicStable:
		return "stable"
	case DynamicChange:
		return "change"
	case DynamicChunkSize:
		return "chunk-size"
	default:
		return fmt.Sprintf("DynamicKind(%d)", int(k))
	}
}

// RunDynamic reproduces Figures 13-15. The X coordinate of every row is
// the cumulative number of inserted paper-millions; the Algo column
// distinguishes the incremental-update curve from the repeated-rebuild
// curves (Figures 13/14) or the two chunk sizes (Figure 15).
func RunDynamic(fig string, kind DynamicKind, c Config) ([]Row, error) {
	c = c.normalized()
	switch kind {
	case DynamicChunkSize:
		rows1, err := c.updateCurve(fig, "Chunk-1", 1, 0, gen.Config{Function: 1, Noise: 0.10})
		if err != nil {
			return nil, err
		}
		rows2, err := c.updateCurve(fig, "Chunk-2", 2, 0, gen.Config{Function: 1, Noise: 0.10})
		if err != nil {
			return nil, err
		}
		return append(rows1, rows2...), nil
	case DynamicStable:
		return c.dynamicComparison(fig, gen.Config{Function: 1, Noise: 0.10}, false)
	case DynamicChange:
		return c.dynamicComparison(fig, gen.Config{Function: 1, Noise: 0.10}, true)
	default:
		return nil, fmt.Errorf("experiments: unknown dynamic kind %d", int(kind))
	}
}

// dynamicComparison produces the BOAT-Update curve plus the repeated
// rebuild curves (BOAT and RF-Hybrid built from scratch on the cumulative
// data, initial dataset counted as size zero per the paper's conservative
// comparison).
func (c Config) dynamicComparison(fig string, chunkCfg gen.Config, shiftChunks bool) ([]Row, error) {
	arrivCfg := chunkCfg
	if shiftChunks {
		arrivCfg.Shifted = true
	}
	rows, err := c.updateCurve(fig, "BOAT-Update", 2, boolTo(shiftChunks), chunkCfg)
	if err != nil {
		return nil, err
	}

	// Repeated rebuilds on the cumulative dataset (sizes 2, 4, ...).
	hybridBuf, _ := c.avcBuffers(int64(c.MaxUnits)*c.Unit, 0)
	var cumBOAT, cumRF float64
	for units := 2; units <= c.MaxUnits; units += 2 {
		n := int64(units) * c.Unit
		src, cleanup, err := c.makeSource(arrivCfg, n, c.Seed+900, fig+"-rebuild")
		if err != nil {
			return rows, err
		}
		boatRes, err := c.runBOAT(src)
		if err != nil {
			cleanup()
			return rows, err
		}
		cumBOAT += boatRes.seconds
		rfRes, err := c.runRF(src, hybridBuf, false)
		cleanup()
		if err != nil {
			return rows, err
		}
		cumRF += rfRes.seconds
		rows = append(rows,
			Row{Figure: fig, X: float64(units), XLabel: "millions", Algo: "Rebuild-BOAT",
				Seconds: cumBOAT, Scans: boatRes.io.Scans, TuplesRead: boatRes.io.TuplesRead,
				Nodes: boatRes.tree.NumNodes()},
			Row{Figure: fig, X: float64(units), XLabel: "millions", Algo: "Rebuild-RF-Hybrid",
				Seconds: cumRF, Scans: rfRes.io.Scans, TuplesRead: rfRes.io.TuplesRead,
				Nodes: rfRes.tree.NumNodes()})
		c.logf("%s rebuild %d: BOAT cum %.2fs, RF-Hybrid cum %.2fs", fig, units, cumBOAT, cumRF)
	}
	return rows, nil
}

func boolTo(b bool) int {
	if b {
		return 1
	}
	return 0
}

// updateCurve builds an initial BOAT tree and inserts chunks of
// chunkUnits paper-millions until MaxUnits have arrived, reporting the
// cumulative update time after each chunk. shifted != 0 draws the chunks
// from the shifted distribution (Figure 14). The exactness of every
// intermediate tree is verified against a from-scratch in-memory build
// when the cumulative data fits (it always does at laptop scale).
func (c Config) updateCurve(fig, algo string, chunkUnits int, shifted int, baseCfg gen.Config) ([]Row, error) {
	baseN := 2 * c.Unit
	baseSrc, cleanup, err := c.makeSource(baseCfg, baseN, c.Seed+800, fig+"-base")
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var st iostats.Stats
	bt, err := core.Build(baseSrc, c.boatConfig(&st))
	if err != nil {
		return nil, err
	}
	defer bt.Close()

	chunkCfg := baseCfg
	if shifted != 0 {
		chunkCfg.Shifted = true
	}
	var rows []Row
	var cumSeconds float64
	var inserted int64
	chunkSeed := c.Seed + 1000
	for inserted < int64(c.MaxUnits)*c.Unit {
		n := int64(chunkUnits) * c.Unit
		if inserted+n > int64(c.MaxUnits)*c.Unit {
			n = int64(c.MaxUnits)*c.Unit - inserted
		}
		chunkSeed++
		chunk, chunkCleanup, err := c.makeSource(chunkCfg, n, chunkSeed, fig+"-chunk")
		if err != nil {
			return rows, err
		}
		start := time.Now()
		upd, err := bt.Insert(chunk)
		chunkCleanup()
		if err != nil {
			return rows, err
		}
		cumSeconds += time.Since(start).Seconds()
		inserted += n
		rows = append(rows, Row{
			Figure: fig, X: float64(inserted) / float64(c.Unit), XLabel: "millions-inserted",
			Algo: algo, Seconds: cumSeconds,
			Scans: st.Scans(), TuplesRead: st.TuplesRead(), SpillTuples: st.SpillTuples(),
			Nodes: bt.Tree().NumNodes(),
		})
		c.logf("%s %s inserted=%g cum=%.2fs (rebuilt=%d migrated=%d)",
			fig, algo, float64(inserted)/float64(c.Unit), cumSeconds,
			upd.RebuiltSubtrees, upd.MigratedTuples)
	}
	return rows, nil
}
