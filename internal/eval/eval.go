// Package eval provides classifier evaluation utilities: confusion
// matrices, misclassification rates, holdout splits, and k-fold
// cross-validation. The paper notes (Section 2.1) that its techniques
// also speed up cross-validation over large training sets — each fold is
// just another training database, so any builder (BOAT included) plugs
// into CrossValidate.
package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/tree"
)

// ConfusionMatrix counts predictions: Counts[actual][predicted].
type ConfusionMatrix struct {
	Counts [][]int64
}

// NewConfusionMatrix allocates a k-class matrix.
func NewConfusionMatrix(classCount int) *ConfusionMatrix {
	counts := make([][]int64, classCount)
	backing := make([]int64, classCount*classCount)
	for i := range counts {
		counts[i] = backing[i*classCount : (i+1)*classCount]
	}
	return &ConfusionMatrix{Counts: counts}
}

// Add records one prediction.
func (m *ConfusionMatrix) Add(actual, predicted int) { m.Counts[actual][predicted]++ }

// Total returns the number of recorded predictions.
func (m *ConfusionMatrix) Total() int64 {
	var n int64
	for _, row := range m.Counts {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Correct returns the diagonal sum.
func (m *ConfusionMatrix) Correct() int64 {
	var n int64
	for i := range m.Counts {
		n += m.Counts[i][i]
	}
	return n
}

// Accuracy returns Correct/Total (1 for an empty matrix).
func (m *ConfusionMatrix) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 1
	}
	return float64(m.Correct()) / float64(t)
}

// MisclassificationRate returns 1 - Accuracy.
func (m *ConfusionMatrix) MisclassificationRate() float64 { return 1 - m.Accuracy() }

// Recall returns the per-class recall (0 when the class is absent).
func (m *ConfusionMatrix) Recall(class int) float64 {
	var row int64
	for _, c := range m.Counts[class] {
		row += c
	}
	if row == 0 {
		return 0
	}
	return float64(m.Counts[class][class]) / float64(row)
}

// Precision returns the per-class precision (0 when never predicted).
func (m *ConfusionMatrix) Precision(class int) float64 {
	var col int64
	for actual := range m.Counts {
		col += m.Counts[actual][class]
	}
	if col == 0 {
		return 0
	}
	return float64(m.Counts[class][class]) / float64(col)
}

// String renders the matrix.
func (m *ConfusionMatrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "actual\\pred")
	for p := range m.Counts {
		fmt.Fprintf(&sb, "\t%d", p)
	}
	sb.WriteByte('\n')
	for a, row := range m.Counts {
		fmt.Fprintf(&sb, "%d", a)
		for _, c := range row {
			fmt.Fprintf(&sb, "\t%d", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Evaluate scans src and fills a confusion matrix with the tree's
// predictions. The scan runs chunked through the compiled flat layout
// (tree.Compile + ClassifyChunk) — the predictions are bit-identical to a
// per-tuple Tree.Classify loop, but the batch kernel does the routing.
func Evaluate(t *tree.Tree, src data.Source) (*ConfusionMatrix, error) {
	if !t.Schema.Equal(src.Schema()) {
		return nil, data.ErrSchemaMismatch
	}
	f, err := tree.Compile(t)
	if err != nil {
		return nil, err
	}
	m := NewConfusionMatrix(t.Schema.ClassCount)
	out := make([]int, data.DefaultChunkRows)
	err = data.ForEachChunk(src, data.DefaultChunkRows, func(ch *data.Chunk) error {
		f.ClassifyChunk(ch, out)
		for i, c := range ch.Classes() {
			m.Add(int(c), out[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// HoldoutSplit shuffles the tuples and splits them into a training and a
// validation part; trainFraction in (0,1).
func HoldoutSplit(tuples []data.Tuple, trainFraction float64, rng *rand.Rand) (train, holdout []data.Tuple, err error) {
	if trainFraction <= 0 || trainFraction >= 1 {
		return nil, nil, fmt.Errorf("eval: train fraction %v out of (0,1)", trainFraction)
	}
	shuffled := data.CloneTuples(tuples)
	data.Shuffle(shuffled, rng)
	cut := int(float64(len(shuffled)) * trainFraction)
	return shuffled[:cut], shuffled[cut:], nil
}

// Builder grows a tree over a training database; both the in-memory
// reference and BOAT satisfy it via small adapters.
type Builder func(train data.Source) (*tree.Tree, error)

// FoldResult is one cross-validation fold's outcome.
type FoldResult struct {
	Fold   int
	Matrix *ConfusionMatrix
	Tree   *tree.Tree
}

// CrossValidate runs k-fold cross-validation: the tuples are shuffled and
// partitioned into k folds; for each fold a tree is built on the other
// k-1 folds and evaluated on it.
func CrossValidate(schema *data.Schema, tuples []data.Tuple, k int, rng *rand.Rand, build Builder) ([]FoldResult, error) {
	if k < 2 {
		return nil, errors.New("eval: need at least 2 folds")
	}
	if len(tuples) < k {
		return nil, fmt.Errorf("eval: %d tuples cannot form %d folds", len(tuples), k)
	}
	shuffled := data.CloneTuples(tuples)
	data.Shuffle(shuffled, rng)
	results := make([]FoldResult, 0, k)
	for fold := 0; fold < k; fold++ {
		lo := fold * len(shuffled) / k
		hi := (fold + 1) * len(shuffled) / k
		test := shuffled[lo:hi]
		train := make([]data.Tuple, 0, len(shuffled)-len(test))
		train = append(train, shuffled[:lo]...)
		train = append(train, shuffled[hi:]...)
		tr, err := build(data.NewMemSource(schema, train))
		if err != nil {
			return results, fmt.Errorf("eval: fold %d: %w", fold, err)
		}
		m, err := Evaluate(tr, data.NewMemSource(schema, test))
		if err != nil {
			return results, err
		}
		results = append(results, FoldResult{Fold: fold, Matrix: m, Tree: tr})
	}
	return results, nil
}

// MeanMisclassification averages the fold error rates.
func MeanMisclassification(folds []FoldResult) float64 {
	if len(folds) == 0 {
		return 0
	}
	var s float64
	for _, f := range folds {
		s += f.Matrix.MisclassificationRate()
	}
	return s / float64(len(folds))
}
