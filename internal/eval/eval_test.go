package eval

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

func TestConfusionMatrixBasics(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Add(0, 0)
	m.Add(0, 0)
	m.Add(0, 1)
	m.Add(1, 1)
	if m.Total() != 4 || m.Correct() != 3 {
		t.Fatalf("total=%d correct=%d", m.Total(), m.Correct())
	}
	if m.Accuracy() != 0.75 || m.MisclassificationRate() != 0.25 {
		t.Errorf("accuracy=%v", m.Accuracy())
	}
	if r := m.Recall(0); r != 2.0/3 {
		t.Errorf("recall(0)=%v", r)
	}
	if p := m.Precision(1); p != 0.5 {
		t.Errorf("precision(1)=%v", p)
	}
	if !strings.Contains(m.String(), "actual") {
		t.Error("String missing header")
	}
}

func TestConfusionMatrixEdge(t *testing.T) {
	m := NewConfusionMatrix(3)
	if m.Accuracy() != 1 {
		t.Error("empty matrix accuracy should be 1")
	}
	if m.Recall(0) != 0 || m.Precision(0) != 0 {
		t.Error("absent class recall/precision should be 0")
	}
}

func TestEvaluate(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0}, 4000, 3)
	tuples, _ := data.ReadAll(src)
	tr := inmem.Build(src.Schema(), tuples, inmem.Config{Method: split.NewGini(), MaxDepth: 4})
	m, err := Evaluate(tr, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 4000 {
		t.Fatalf("total=%d", m.Total())
	}
	if m.Accuracy() < 0.99 {
		t.Errorf("noise-free F1 accuracy %v", m.Accuracy())
	}
	other := data.NewMemSource(data.MustSchema(
		[]data.Attribute{{Name: "z", Kind: data.Numeric}}, 2), nil)
	if _, err := Evaluate(tr, other); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestHoldoutSplit(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 1000, 1)
	tuples, _ := data.ReadAll(src)
	train, hold, err := HoldoutSplit(tuples, 0.7, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 700 || len(hold) != 300 {
		t.Fatalf("split sizes %d/%d", len(train), len(hold))
	}
	// Original slice untouched, partition disjoint & complete (multiset).
	seen := map[string]int{}
	for _, tp := range tuples {
		seen[tp.Key()]++
	}
	for _, tp := range append(append([]data.Tuple{}, train...), hold...) {
		seen[tp.Key()]--
	}
	for _, c := range seen {
		if c != 0 {
			t.Fatal("holdout split lost or duplicated tuples")
		}
	}
	if _, _, err := HoldoutSplit(tuples, 0, nil); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, _, err := HoldoutSplit(tuples, 1, nil); err == nil {
		t.Error("fraction 1 accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 3000, 5)
	tuples, _ := data.ReadAll(src)
	build := func(train data.Source) (*tree.Tree, error) {
		ts, err := data.ReadAll(train)
		if err != nil {
			return nil, err
		}
		return inmem.Build(train.Schema(), ts, inmem.Config{
			Method: split.NewGini(), MaxDepth: 4, MinSplit: 20,
		}), nil
	}
	folds, err := CrossValidate(src.Schema(), tuples, 5, rand.New(rand.NewSource(2)), build)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	var total int64
	for _, f := range folds {
		total += f.Matrix.Total()
		if f.Tree == nil {
			t.Fatal("fold without tree")
		}
	}
	if total != 3000 {
		t.Errorf("folds evaluated %d tuples, want 3000", total)
	}
	mean := MeanMisclassification(folds)
	if mean > 0.12 {
		t.Errorf("mean CV error %v too high for F1 with 5%% noise", mean)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	schema := gen.Schema(0)
	if _, err := CrossValidate(schema, nil, 1, nil, nil); err == nil {
		t.Error("k=1 accepted")
	}
	tuples := make([]data.Tuple, 3)
	for i := range tuples {
		tuples[i] = data.Tuple{Values: make([]float64, 9), Class: 0}
	}
	if _, err := CrossValidate(schema, tuples, 5, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("too few tuples accepted")
	}
}

func TestMeanMisclassificationEmpty(t *testing.T) {
	if MeanMisclassification(nil) != 0 {
		t.Error("empty folds should average to 0")
	}
}
