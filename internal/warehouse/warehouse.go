// Package warehouse models the data-warehousing scenario of the paper's
// introduction: the training database is defined by a star-join query
// over a fact table and dimension tables, and is never materialized —
// BOAT only needs sequential scans and random samples of the join result
// (Section 1: "BOAT enables mining of decision trees from any star-join
// query without materializing the training set").
//
// The star schema is a retail-fraud setting: a purchases fact stream
// joins customer and product dimension tables; the training view projects
// customer demographics, product features and transaction attributes,
// labeled by a hidden fraud concept. The view implements data.Source: its
// scans re-generate the fact stream and perform the joins on the fly, so
// repeated scans are deterministic and nothing is ever written out.
package warehouse

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/boatml/boat/internal/data"
)

// Dimension table rows.
type customer struct {
	age    float64 // 18..90
	income float64 // 15000..200000
	region int     // 0..7
}

type product struct {
	category int     // 0..11
	price    float64 // 5..2000
	risk     float64 // 0..9, hidden: drives the fraud concept
}

// Star is the warehouse: in-memory dimension tables plus a fact-stream
// definition. Dimension tables are small (they fit in memory, as in any
// real star schema); the fact table is streamed and joined on demand.
type Star struct {
	customers []customer
	products  []product
}

// NewStar builds dimension tables deterministically from a seed.
func NewStar(nCustomers, nProducts int, seed int64) (*Star, error) {
	if nCustomers < 1 || nProducts < 1 {
		return nil, fmt.Errorf("warehouse: need at least one customer and product, got %d/%d",
			nCustomers, nProducts)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Star{
		customers: make([]customer, nCustomers),
		products:  make([]product, nProducts),
	}
	for i := range s.customers {
		s.customers[i] = customer{
			age:    float64(18 + rng.Intn(73)),
			income: float64(15000 + rng.Intn(185001)),
			region: rng.Intn(8),
		}
	}
	for i := range s.products {
		s.products[i] = product{
			category: rng.Intn(12),
			price:    float64(5 + rng.Intn(1996)),
			risk:     float64(rng.Intn(10)),
		}
	}
	return s, nil
}

// ViewSchema is the schema of the (virtual) training view:
//
//	SELECT c.age, c.income, c.region, p.category, p.price,
//	       f.channel, f.amount, label(f, c, p)
//	FROM facts f JOIN customers c ON ... JOIN products p ON ...
func ViewSchema() *data.Schema {
	return data.MustSchema([]data.Attribute{
		{Name: "age", Kind: data.Numeric},
		{Name: "income", Kind: data.Numeric},
		{Name: "region", Kind: data.Categorical, Cardinality: 8},
		{Name: "category", Kind: data.Categorical, Cardinality: 12},
		{Name: "price", Kind: data.Numeric},
		{Name: "channel", Kind: data.Categorical, Cardinality: 3},
		{Name: "amount", Kind: data.Numeric},
	}, 2)
}

// Class labels of the fraud concept.
const (
	Legitimate = 0
	Fraud      = 1
)

// TrainingView returns the star-join training database of nFacts
// transactions. The returned Source is re-scannable and deterministic;
// each scan streams the fact table and performs the dimension joins on
// the fly.
func (s *Star) TrainingView(nFacts int64, seed int64) data.Source {
	return &viewSource{star: s, schema: ViewSchema(), n: nFacts, seed: seed}
}

// label is the hidden concept: a transaction is fraudulent when the
// amount is out of proportion to the customer's income, with risky
// product categories and the online channel held to stricter limits,
// plus a little label noise.
func label(rng *rand.Rand, c customer, p product, channel int, amount float64) int {
	limit := c.income / 8
	if p.risk >= 7 {
		limit /= 2
	}
	if channel == 2 { // online
		limit = limit * 3 / 4
	}
	out := Legitimate
	if amount > limit {
		out = Fraud
	}
	if rng.Float64() < 0.02 {
		out = 1 - out
	}
	return out
}

type viewSource struct {
	star   *Star
	schema *data.Schema
	n      int64
	seed   int64
}

func (v *viewSource) Schema() *data.Schema { return v.schema }
func (v *viewSource) Count() (int64, bool) { return v.n, true }

func (v *viewSource) Scan() (data.Scanner, error) {
	sc := &viewScanner{
		star:      v.star,
		rng:       rand.New(rand.NewSource(v.seed)),
		remaining: v.n,
	}
	arity := len(v.schema.Attributes)
	sc.batch = make([]data.Tuple, data.DefaultBatchSize)
	values := make([]float64, len(sc.batch)*arity)
	for i := range sc.batch {
		sc.batch[i].Values = values[i*arity : (i+1)*arity]
	}
	return sc, nil
}

type viewScanner struct {
	star      *Star
	rng       *rand.Rand
	remaining int64
	batch     []data.Tuple
}

func (s *viewScanner) Next() ([]data.Tuple, error) {
	if s.remaining == 0 {
		return nil, io.EOF
	}
	n := int64(len(s.batch))
	if n > s.remaining {
		n = s.remaining
	}
	for i := int64(0); i < n; i++ {
		// One fact-table row...
		cID := s.rng.Intn(len(s.star.customers))
		pID := s.rng.Intn(len(s.star.products))
		channel := s.rng.Intn(3)
		c := s.star.customers[cID]
		p := s.star.products[pID]
		// Spend correlates with income and price; integral amounts.
		amount := float64(int64(p.price)) + float64(s.rng.Int63n(int64(c.income)/4+1))
		// ...joined with its dimensions and labeled.
		t := &s.batch[i]
		t.Values[0] = c.age
		t.Values[1] = c.income
		t.Values[2] = float64(c.region)
		t.Values[3] = float64(p.category)
		t.Values[4] = p.price
		t.Values[5] = float64(channel)
		t.Values[6] = amount
		t.Class = label(s.rng, c, p, channel, amount)
	}
	s.remaining -= n
	return s.batch[:n], nil
}

func (s *viewScanner) Close() error { return nil }
