package warehouse

import (
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
)

func star(t *testing.T) *Star {
	t.Helper()
	s, err := NewStar(500, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStarValidation(t *testing.T) {
	if _, err := NewStar(0, 10, 1); err == nil {
		t.Error("zero customers accepted")
	}
	if _, err := NewStar(10, 0, 1); err == nil {
		t.Error("zero products accepted")
	}
}

func TestViewSchemaValid(t *testing.T) {
	if err := ViewSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingViewDeterministicRescans(t *testing.T) {
	view := star(t).TrainingView(5000, 3)
	a, err := data.ReadAll(view)
	if err != nil {
		t.Fatal(err)
	}
	b, err := data.ReadAll(view)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("tuple %d differs between scans of the join view", i)
		}
	}
}

func TestTrainingViewTuplesValid(t *testing.T) {
	view := star(t).TrainingView(8000, 5)
	schema := view.Schema()
	classes := [2]int64{}
	err := data.ForEach(view, func(tp data.Tuple) error {
		if err := schema.CheckTuple(tp); err != nil {
			t.Fatalf("invalid view tuple: %v", err)
		}
		classes[tp.Class]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if classes[Legitimate] < 500 || classes[Fraud] < 500 {
		t.Errorf("degenerate class balance %v", classes)
	}
}

func TestJoinConsistency(t *testing.T) {
	// Every view row's (age, income, region) combination must exist in
	// the customer dimension table, and (category, price) in products —
	// i.e. the join is real.
	s := star(t)
	custKeys := map[[3]float64]bool{}
	for _, c := range s.customers {
		custKeys[[3]float64{c.age, c.income, float64(c.region)}] = true
	}
	prodKeys := map[[2]float64]bool{}
	for _, p := range s.products {
		prodKeys[[2]float64{float64(p.category), p.price}] = true
	}
	err := data.ForEach(s.TrainingView(3000, 9), func(tp data.Tuple) error {
		if !custKeys[[3]float64{tp.Values[0], tp.Values[1], tp.Values[2]}] {
			t.Fatalf("row references a non-existent customer: %v", tp)
		}
		if !prodKeys[[2]float64{tp.Values[3], tp.Values[4]}] {
			t.Fatalf("row references a non-existent product: %v", tp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSamplingFromView(t *testing.T) {
	// The paper's requirement: random samples from the (unmaterialized)
	// training database must be obtainable.
	view := star(t).TrainingView(20000, 11)
	sample, err := data.ReservoirSample(view, 2000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 2000 {
		t.Fatalf("sample size %d", len(sample))
	}
}

// TestBOATOverStarJoin is the paper's warehouse claim end to end: BOAT
// mines the exact tree from the star-join view in two scans, without the
// view ever being materialized.
func TestBOATOverStarJoin(t *testing.T) {
	view := star(t).TrainingView(30000, 13)
	var st iostats.Stats
	bt, err := core.Build(view, core.Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 100,
		SampleSize: 5000, Seed: 3, Stats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	if st.Scans() != 2 {
		t.Errorf("BOAT made %d scans of the join view, want 2", st.Scans())
	}
	tuples, err := data.ReadAll(view)
	if err != nil {
		t.Fatal(err)
	}
	ref := inmem.Build(view.Schema(), tuples, inmem.Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 100,
	})
	got := bt.Tree()
	if !got.Equal(ref) {
		t.Fatalf("star-join tree differs: %s", got.Diff(ref))
	}
	// The fraud concept is learnable: training error well under the 2%
	// label noise plus concept complexity.
	rate, err := got.MisclassificationRate(view)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 0.15 {
		t.Errorf("training misclassification %v", rate)
	}
}
