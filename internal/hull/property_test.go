package hull

import (
	"testing"
	"testing/quick"

	"github.com/boatml/boat/internal/split"
)

// TestLowerBoundMonotoneInRectangle: enlarging the rectangle can only
// lower (or keep) the bound — the property that makes the verification
// sound when bucket boundaries are coarser than the data.
func TestLowerBoundMonotoneInRectangle(t *testing.T) {
	f := func(a0, a1, b0, b1, e0, e1, t0, t1 uint8) bool {
		lo := []int64{int64(a0 % 30), int64(a1 % 30)}
		hi := []int64{lo[0] + int64(b0%30), lo[1] + int64(b1%30)}
		big := []int64{hi[0] + int64(e0%30), hi[1] + int64(e1%30)}
		totals := []int64{big[0] + int64(t0%30), big[1] + int64(t1%30)}
		inner := LowerBound(split.Gini, lo, hi, totals)
		outer := LowerBound(split.Gini, lo, big, totals)
		return outer <= inner+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestLowerBoundNeverExceedsCornerQualities: the bound equals the min of
// the corner evaluations, so it can never exceed either endpoint's exact
// quality.
func TestLowerBoundNeverExceedsCornerQualities(t *testing.T) {
	f := func(a0, a1, b0, b1, t0, t1 uint8) bool {
		lo := []int64{int64(a0 % 40), int64(a1 % 40)}
		hi := []int64{lo[0] + int64(b0%40), lo[1] + int64(b1%40)}
		totals := []int64{hi[0] + int64(t0%40) + 1, hi[1] + int64(t1%40) + 1}
		lb := LowerBound(split.Gini, lo, hi, totals)
		qLo := split.Gini.QualityFromLeft(lo, totals, nil)
		qHi := split.Gini.QualityFromLeft(hi, totals, nil)
		return lb <= qLo+1e-12 && lb <= qHi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
