// Package hull implements the stamp-point lower-bounding technique of
// Section 3.4 of the paper (Lemma 3.1, an application of a result of
// Mangasarian on concave minimization): every attribute value x of a
// numeric predictor induces a stamp point (n_x^1, ..., n_x^k) of
// cumulative per-class counts; the weighted impurity of the split X <= x
// is a concave function imp_S of the stamp point; and the minimum of a
// concave function over the convex hull of a point set is attained at a
// vertex. Because all stamp points between two bucket boundaries lie in
// the hyper-rectangle spanned by the boundary stamp points, the impurity
// of every split inside the bucket is lower-bounded by the minimum of
// imp_S over the rectangle's 2^k corner points.
package hull

import (
	"math"

	"github.com/boatml/boat/internal/split"
)

// MaxClasses bounds the corner enumeration (2^k corners). For problems
// with more classes LowerBound conservatively returns -Inf, which makes
// BOAT's verification fail and fall back to rebuilding the subtree — a
// correctness-preserving (if slow) degradation.
const MaxClasses = 16

// LowerBound returns a lower bound on crit.PartitionQuality(left,
// totals-left) over every integer vector "left" with lo <= left <= hi
// componentwise. lo and hi are the stamp points at the two boundaries of
// a discretization bucket, and totals are the class counts N^i of the
// node's family.
//
// Corner points with an empty side evaluate to +Inf via PartitionQuality;
// they are still valid corners (no split inside the bucket can do better
// than the returned minimum).
func LowerBound(crit split.Criterion, lo, hi, totals []int64) float64 {
	k := len(totals)
	if k > MaxClasses {
		return math.Inf(-1)
	}
	// Enumerate only dimensions that actually vary.
	var varying []int
	corner := make([]int64, k)
	for i := 0; i < k; i++ {
		corner[i] = lo[i]
		if hi[i] != lo[i] {
			varying = append(varying, i)
		}
	}
	scratch := make([]int64, k)
	best := math.Inf(1)
	n := 1 << len(varying)
	for mask := 0; mask < n; mask++ {
		for bit, dim := range varying {
			if mask&(1<<bit) != 0 {
				corner[dim] = hi[dim]
			} else {
				corner[dim] = lo[dim]
			}
		}
		q := crit.QualityFromLeft(corner, totals, scratch)
		if q < best {
			best = q
		}
	}
	return best
}

// MinOverBuckets returns the minimum LowerBound over consecutive pairs of
// a stamp-point sequence (the cumulative class counts at the bucket
// boundaries of one attribute's discretization, in ascending value
// order, starting at the all-zero point and ending at totals). skip
// reports bucket indexes to exclude (the buckets covered exactly by the
// confidence interval of the coarse splitting attribute). Returns +Inf if
// every bucket is skipped.
func MinOverBuckets(crit split.Criterion, stamps [][]int64, totals []int64, skip func(bucket int) bool) float64 {
	best := math.Inf(1)
	for b := 0; b+1 < len(stamps); b++ {
		if skip != nil && skip(b) {
			continue
		}
		lb := LowerBound(crit, stamps[b], stamps[b+1], totals)
		if lb < best {
			best = lb
		}
	}
	return best
}
