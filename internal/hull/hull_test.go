package hull

import (
	"math"
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/split"
)

// enumerate all integer stamp-point paths between lo and hi is infeasible;
// instead we check the bound against many random monotone stamp sequences
// whose endpoints define the rectangle.
func TestLowerBoundHoldsForRandomStampSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		k := 2 + rng.Intn(3)
		totals := make([]int64, k)
		lo := make([]int64, k)
		hi := make([]int64, k)
		for i := 0; i < k; i++ {
			lo[i] = int64(rng.Intn(20))
			hi[i] = lo[i] + int64(rng.Intn(30))
			totals[i] = hi[i] + int64(rng.Intn(20))
		}
		for _, crit := range []split.Criterion{split.Gini, split.Entropy} {
			lb := LowerBound(crit, lo, hi, totals)
			// Generate random stamp points inside the rectangle and check
			// none beats the bound.
			for s := 0; s < 30; s++ {
				p := make([]int64, k)
				for i := 0; i < k; i++ {
					p[i] = lo[i] + rng.Int63n(hi[i]-lo[i]+1)
				}
				q := crit.QualityFromLeft(p, totals, nil)
				if q < lb-1e-12 {
					t.Fatalf("trial %d %v: point %v quality %v < bound %v (lo=%v hi=%v totals=%v)",
						trial, crit, p, q, lb, lo, hi, totals)
				}
			}
		}
	}
}

func TestLowerBoundTightAtCorners(t *testing.T) {
	// When lo == hi the bound equals the exact quality of that point.
	totals := []int64{50, 50}
	p := []int64{20, 5}
	lb := LowerBound(split.Gini, p, p, totals)
	q := split.Gini.QualityFromLeft(p, totals, nil)
	if lb != q {
		t.Errorf("degenerate rectangle bound %v != exact %v", lb, q)
	}
}

func TestLowerBoundExactOverSmallRectangle(t *testing.T) {
	// Exhaustively verify the bound over every integer point of small
	// rectangles (the property Lemma 3.1 asserts for concave imp).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		totals := []int64{int64(10 + rng.Intn(30)), int64(10 + rng.Intn(30))}
		lo := []int64{int64(rng.Intn(5)), int64(rng.Intn(5))}
		hi := []int64{lo[0] + int64(rng.Intn(6)), hi1(lo[1], rng)}
		if hi[0] > totals[0] {
			hi[0] = totals[0]
		}
		if hi[1] > totals[1] {
			hi[1] = totals[1]
		}
		lb := LowerBound(split.Gini, lo, hi, totals)
		for a := lo[0]; a <= hi[0]; a++ {
			for b := lo[1]; b <= hi[1]; b++ {
				q := split.Gini.QualityFromLeft([]int64{a, b}, totals, nil)
				if q < lb-1e-12 {
					t.Fatalf("point (%d,%d) q=%v < lb=%v (lo=%v hi=%v totals=%v)",
						a, b, q, lb, lo, hi, totals)
				}
			}
		}
	}
}

func hi1(lo int64, rng *rand.Rand) int64 { return lo + int64(rng.Intn(6)) }

func TestLowerBoundEmptySidesAreInf(t *testing.T) {
	totals := []int64{10, 10}
	lb := LowerBound(split.Gini, []int64{0, 0}, []int64{0, 0}, totals)
	if !math.IsInf(lb, 1) {
		t.Errorf("all-zero rectangle bound = %v, want +Inf (empty left side)", lb)
	}
	lb = LowerBound(split.Gini, totals, totals, totals)
	if !math.IsInf(lb, 1) {
		t.Errorf("full rectangle bound = %v, want +Inf (empty right side)", lb)
	}
}

func TestLowerBoundTooManyClasses(t *testing.T) {
	k := MaxClasses + 1
	v := make([]int64, k)
	for i := range v {
		v[i] = 1
	}
	if lb := LowerBound(split.Gini, v, v, v); !math.IsInf(lb, -1) {
		t.Errorf("bound with %d classes = %v, want -Inf (conservative)", k, lb)
	}
}

func TestMinOverBuckets(t *testing.T) {
	totals := []int64{10, 10}
	stamps := [][]int64{
		{0, 0}, {5, 1}, {8, 6}, {10, 10},
	}
	all := MinOverBuckets(split.Gini, stamps, totals, nil)
	if math.IsInf(all, 1) {
		t.Fatal("no buckets evaluated")
	}
	// Skipping every bucket yields +Inf.
	skipped := MinOverBuckets(split.Gini, stamps, totals, func(int) bool { return true })
	if !math.IsInf(skipped, 1) {
		t.Errorf("all-skipped = %v, want +Inf", skipped)
	}
	// Skipping one bucket can only raise the minimum.
	one := MinOverBuckets(split.Gini, stamps, totals, func(b int) bool { return b == 1 })
	if one < all {
		t.Errorf("skipping a bucket lowered the min: %v < %v", one, all)
	}
}
