package predict

import (
	"errors"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/eval"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// testModel trains a reference tree on a generator workload and returns
// it with its training source and the per-tuple baseline labels.
func testModel(t *testing.T, n int64) (*tree.Tree, data.Source, []int) {
	t.Helper()
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, n, 17)
	tuples, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	tr := inmem.Build(src.Schema(), tuples, inmem.Config{
		Method: split.NewGini(), MaxDepth: 10, MinSplit: 4,
	})
	want := make([]int, len(tuples))
	for i, tp := range tuples {
		want[i] = tr.Classify(tp)
	}
	return tr, src, want
}

// uncountedSource hides the cardinality so Predict exercises the
// segment-stitching path.
type uncountedSource struct{ data.Source }

func (u uncountedSource) Count() (int64, bool) { return 0, false }

// TestPredictDeterministic is the acceptance-criteria matrix: predictions
// are bit-identical to per-tuple Tree.Classify across Parallelism ∈
// {1, 2, 8} and chunk sizes {1, 64, 1024}, with and without a known
// cardinality.
func TestPredictDeterministic(t *testing.T) {
	tr, src, want := testModel(t, 5000)
	for _, par := range []int{1, 2, 8} {
		for _, rows := range []int{1, 64, 1024} {
			for _, counted := range []bool{true, false} {
				p, err := New(tr, Config{Parallelism: par, ChunkRows: rows})
				if err != nil {
					t.Fatal(err)
				}
				in := src
				if !counted {
					in = uncountedSource{src}
				}
				res, err := p.Predict(in)
				if err != nil {
					t.Fatalf("P=%d rows=%d counted=%v: %v", par, rows, counted, err)
				}
				if res.Tuples != int64(len(want)) {
					t.Fatalf("P=%d rows=%d counted=%v: %d tuples, want %d",
						par, rows, counted, res.Tuples, len(want))
				}
				for i := range want {
					if res.Labels[i] != want[i] {
						t.Fatalf("P=%d rows=%d counted=%v: label[%d] = %d, want %d",
							par, rows, counted, i, res.Labels[i], want[i])
					}
				}
			}
		}
	}
}

// TestPredictCompareMatrix checks that the merged per-worker confusion
// counts equal the eval package's row-at-a-time matrix.
func TestPredictCompareMatrix(t *testing.T) {
	tr, src, _ := testModel(t, 3000)
	ref, err := eval.Evaluate(tr, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		p, err := New(tr, Config{Parallelism: par, ChunkRows: 128, Compare: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Predict(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matrix == nil {
			t.Fatal("Compare set but no matrix")
		}
		for a := range ref.Counts {
			for b := range ref.Counts[a] {
				if res.Matrix.Counts[a][b] != ref.Counts[a][b] {
					t.Errorf("P=%d: counts[%d][%d] = %d, want %d",
						par, a, b, res.Matrix.Counts[a][b], ref.Counts[a][b])
				}
			}
		}
	}
}

func TestPredictSchemaMismatch(t *testing.T) {
	tr, _, _ := testModel(t, 200)
	other := data.MustSchema([]data.Attribute{{Name: "x", Kind: data.Numeric}}, 2)
	p, err := New(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Predict(data.NewMemSource(other, nil))
	if !errors.Is(err, data.ErrSchemaMismatch) {
		t.Fatalf("err = %v, want ErrSchemaMismatch", err)
	}
}

// TestPredictObservability checks the predict span and the predict.*
// instruments.
func TestPredictObservability(t *testing.T) {
	tr, src, want := testModel(t, 1000)
	stats := &iostats.Stats{}
	tracer := obs.NewTracer(stats)
	reg := obs.NewRegistry()
	p, err := New(tr, Config{
		Parallelism: 2, Stats: stats, Trace: tracer, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(src); err != nil {
		t.Fatal(err)
	}
	roots := tracer.Roots()
	if len(roots) != 1 || roots[0].Name() != "predict" {
		t.Fatalf("trace roots = %v, want one predict span", roots)
	}
	if got := reg.Counter("predict.tuples").Value(); got != int64(len(want)) {
		t.Errorf("predict.tuples = %d, want %d", got, len(want))
	}
	if reg.Counter("predict.chunks").Value() == 0 {
		t.Error("predict.chunks not recorded")
	}
	if reg.Gauge("predict.tuples_per_sec").Value() <= 0 {
		t.Error("predict.tuples_per_sec not recorded")
	}
	if stats.TuplesRead() != int64(len(want)) {
		t.Errorf("stats.TuplesRead = %d, want %d", stats.TuplesRead(), len(want))
	}
}

// TestPredictorConcurrentUse runs concurrent Predict calls against one
// predictor (it is documented immutable/shareable); the race detector in
// CI does the real checking.
func TestPredictorConcurrentUse(t *testing.T) {
	tr, src, want := testModel(t, 1000)
	p, err := New(tr, Config{Parallelism: 2, ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			res, err := p.Predict(src)
			if err == nil {
				for i := range want {
					if res.Labels[i] != want[i] {
						err = errors.New("label mismatch under concurrency")
						break
					}
				}
			}
			done <- err
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
