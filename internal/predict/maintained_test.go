package predict

import (
	"fmt"
	"sync"
	"testing"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/split"
)

// TestConcurrentUpdatePredict is the serve-while-update acceptance test
// at the predictor layer: readers classify through a Maintained wrapper
// while Insert and Delete mutate the underlying tree. Every prediction
// must be served from a fully published epoch — the classification must
// be bit-identical to classifying the same data against that epoch's own
// immutable snapshot tree — and the epochs a reader observes must never
// go backwards. Run under -race in CI.
func TestConcurrentUpdatePredict(t *testing.T) {
	genCfg := gen.Config{Function: 1, Noise: 0.1}
	base := gen.MustSource(genCfg, 4000, 1)
	bt, err := core.Build(base, core.Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 50, SampleSize: 1000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()

	query := gen.MustSource(genCfg, 500, 77)
	queryTuples, err := data.ReadAll(query)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaintained(bt, Config{Parallelism: 2})

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, epoch, err := m.Predict(query)
				if err != nil {
					errc <- err
					return
				}
				if epoch < last {
					errc <- fmt.Errorf("epoch went backwards: %d after %d", epoch, last)
					return
				}
				last = epoch
				if len(res.Labels) != len(queryTuples) {
					errc <- fmt.Errorf("served %d labels for %d tuples", len(res.Labels), len(queryTuples))
					return
				}
				// The serving epoch may have advanced between the Predict
				// call and this check; re-reading the snapshot is still a
				// valid consistency probe whenever the epoch held steady.
				s, err := bt.Snapshot()
				if err != nil {
					errc <- err
					return
				}
				if s.Epoch != epoch {
					continue
				}
				for i, tp := range queryTuples {
					if want := s.Tree.Classify(tp); res.Labels[i] != want {
						errc <- fmt.Errorf("epoch %d: label[%d] = %d, snapshot tree says %d",
							epoch, i, res.Labels[i], want)
						return
					}
				}
			}
		}()
	}

	const rounds = 4
	for i := 0; i < rounds; i++ {
		chunk := gen.MustSource(genCfg, 1000, int64(100+i))
		if _, err := bt.Insert(chunk); err != nil {
			t.Fatal(err)
		}
		if _, err := bt.Delete(chunk); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// After the last update settles, serving must reach the final epoch
	// and match a fresh snapshot exactly.
	res, epoch, err := m.Predict(query)
	if err != nil {
		t.Fatal(err)
	}
	s, err := bt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != s.Epoch {
		t.Fatalf("settled Predict served epoch %d, snapshot at %d", epoch, s.Epoch)
	}
	for i, tp := range queryTuples {
		if want := s.Tree.Classify(tp); res.Labels[i] != want {
			t.Fatalf("settled label[%d] = %d, want %d", i, res.Labels[i], want)
		}
	}
}
