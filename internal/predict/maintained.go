package predict

import (
	"sync/atomic"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
)

// Maintained serves predictions from a BOAT tree that is concurrently
// maintained with Insert and Delete. Each Predict call serves from the
// tree's last published consistent Snapshot (see core.Tree.Snapshot):
// while an update is in flight, readers keep routing through the previous
// epoch's compiled tree without blocking, and flip to the new epoch once
// the update has fully published it.
//
// The wrapped Predictor for an epoch is compiled once and cached behind
// an atomic pointer, so the steady state — many predictions between
// updates — costs one atomic load over a plain Predictor.
type Maintained struct {
	t   *core.Tree
	cfg Config
	cur atomic.Pointer[maintainedPredictor]
}

type maintainedPredictor struct {
	epoch uint64
	p     *Predictor
}

// NewMaintained wraps a maintained BOAT tree. The Config is applied to
// every epoch's predictor.
func NewMaintained(t *core.Tree, cfg Config) *Maintained {
	return &Maintained{t: t, cfg: cfg}
}

// Predict classifies src against the tree's current published epoch and
// reports which epoch served the call. Safe for concurrent use with
// other Predict calls and with Insert/Delete on the underlying tree.
func (m *Maintained) Predict(src data.Source) (*Result, uint64, error) {
	s, err := m.t.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	mp := m.cur.Load()
	if mp == nil || mp.epoch != s.Epoch {
		// Compile-per-epoch is already done (the snapshot carries the flat
		// tree); this just wraps it. A racing reader on the same epoch may
		// build a duplicate wrapper — harmless, last store wins.
		mp = &maintainedPredictor{epoch: s.Epoch, p: NewFlat(s.Flat, m.cfg)}
		m.cur.Store(mp)
	}
	res, err := mp.p.Predict(src)
	if err != nil {
		return nil, s.Epoch, err
	}
	return res, s.Epoch, nil
}
