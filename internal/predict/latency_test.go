package predict

import (
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/tree"
)

// TestPredictLatencyRecorded: each Predict call lands one observation in
// predict.latency, and every routed chunk lands one in
// predict.chunk_latency, with sane quantile ordering.
func TestPredictLatencyRecorded(t *testing.T) {
	tr, src, _ := testModel(t, 2000)
	reg := obs.NewRegistry()
	p, err := New(tr, Config{Parallelism: 2, ChunkRows: 256, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	const calls = 3
	var chunks int64
	for i := 0; i < calls; i++ {
		res, err := p.Predict(src)
		if err != nil {
			t.Fatal(err)
		}
		chunks += res.Chunks
	}
	snap := reg.Snapshot()
	lat, ok := snap.Latencies["predict.latency"]
	if !ok || lat.Count != calls {
		t.Fatalf("predict.latency = %+v, want %d observations", lat, calls)
	}
	if lat.P50NS <= 0 || lat.P99NS < lat.P50NS || lat.P999NS < lat.P99NS {
		t.Fatalf("predict.latency quantiles out of order: %+v", lat)
	}
	chunkLat, ok := snap.Latencies["predict.chunk_latency"]
	if !ok || chunkLat.Count != chunks {
		t.Fatalf("predict.chunk_latency count = %d, want %d (one per chunk)",
			chunkLat.Count, chunks)
	}
}

// TestClassifyDisabledMetricsZeroAlloc is the serve-hot-loop gate: with
// metrics disabled, classify adds no allocations (and skips the clock
// reads entirely — the latency fields are nil).
func TestClassifyDisabledMetricsZeroAlloc(t *testing.T) {
	tr, src, _ := testModel(t, 2000)
	p, err := New(tr, Config{Parallelism: 1, ChunkRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	if p.latency != nil || p.chunkLat != nil {
		t.Fatal("disabled metrics still created latency instruments")
	}
	tuples, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	ch := data.NewChunk(len(src.Schema().Attributes), 256)
	for _, tp := range tuples[:256] {
		ch.AppendTuple(tp)
	}
	out := make([]int, 256)
	scratch := &workerScratch{sc: tree.NewClassifyScratch()}
	p.classify(ch, out, scratch) // warm the kernel's scratch
	allocs := testing.AllocsPerRun(100, func() {
		p.classify(ch, out, scratch)
	})
	if allocs != 0 {
		t.Fatalf("classify allocated %v objects per chunk with metrics disabled", allocs)
	}
}

// TestPredictLatencyDeterminism: enabling the latency instruments must
// not change a single predicted label.
func TestPredictLatencyDeterminism(t *testing.T) {
	tr, src, want := testModel(t, 3000)
	reg := obs.NewRegistry()
	p, err := New(tr, Config{Parallelism: 4, ChunkRows: 128, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Predict(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, lbl := range res.Labels {
		if lbl != want[i] {
			t.Fatalf("label %d = %d, want %d (metrics changed predictions)", i, lbl, want[i])
		}
	}
}
