package predict

import (
	"fmt"
	"runtime"
	"time"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/tree"
)

// Mode selects which classification implementation a Bench pass runs.
type Mode string

const (
	// ModeTuple is the seed-era baseline: one pointer-chasing
	// Tree.Classify walk per tuple.
	ModeTuple Mode = "tuple"
	// ModeFlat walks the compiled SoA layout, still one tuple at a time.
	ModeFlat Mode = "flat"
	// ModeChunk routes whole columnar chunks through the batch
	// ClassifyChunk kernel, sequentially.
	ModeChunk Mode = "chunk"
	// ModeParallel is the full predictor: chunked kernels sharded across
	// the configured worker pool.
	ModeParallel Mode = "parallel"
)

// Measurement is the result of timing classification passes; the JSON
// field set mirrors core.ScanMeasurement so the two benchmark families
// report through the same tooling.
type Measurement struct {
	Mode           string  `json:"mode"`
	Rounds         int     `json:"rounds"`
	Tuples         int64   `json:"tuples"`
	Seconds        float64 `json:"seconds"`
	TuplesPerSec   float64 `json:"tuples_per_sec"`
	AllocObjects   int64   `json:"alloc_objects"`
	AllocBytes     int64   `json:"alloc_bytes"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	BytesPerTuple  float64 `json:"bytes_per_tuple"`
}

// Bench holds one tree and one materialized dataset, prepared in every
// representation the modes need: row-major tuples for the per-tuple walks
// and pre-packed columnar chunks for the kernels, plus reused output and
// scratch buffers so the timed loops measure classification, not setup.
type Bench struct {
	tr     *tree.Tree
	flat   *tree.FlatTree
	cfg    Config
	tuples []data.Tuple
	chunks []*data.Chunk
	out    []int
	outAll []int
	sc     *tree.ClassifyScratch
	src    data.Source
}

// NewBench materializes src and packs the chunk set.
func NewBench(t *tree.Tree, src data.Source, cfg Config) (*Bench, error) {
	if !t.Schema.Equal(src.Schema()) {
		return nil, data.ErrSchemaMismatch
	}
	f, err := tree.Compile(t)
	if err != nil {
		return nil, err
	}
	tuples, err := data.ReadAll(src)
	if err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("predict: empty benchmark source")
	}
	rows := cfg.chunkRows()
	width := len(t.Schema.Attributes)
	var chunks []*data.Chunk
	for base := 0; base < len(tuples); base += rows {
		end := min(base+rows, len(tuples))
		ch := data.NewChunk(width, rows)
		for _, tp := range tuples[base:end] {
			ch.AppendTuple(tp)
		}
		chunks = append(chunks, ch)
	}
	return &Bench{
		tr: t, flat: f, cfg: cfg,
		tuples: tuples, chunks: chunks,
		out:    make([]int, rows),
		outAll: make([]int, len(tuples)),
		sc:     tree.NewClassifyScratch(),
		src:    src,
	}, nil
}

// Tuples returns the materialized dataset size.
func (b *Bench) Tuples() int { return len(b.tuples) }

// Flat returns the compiled tree under test.
func (b *Bench) Flat() *tree.FlatTree { return b.flat }

// RunOnce performs one full pass over the dataset in the given mode and
// returns the tuples classified.
func (b *Bench) RunOnce(mode Mode) (int64, error) {
	switch mode {
	case ModeTuple:
		for _, tp := range b.tuples {
			_ = b.tr.Classify(tp)
		}
	case ModeFlat:
		for _, tp := range b.tuples {
			_ = b.flat.Classify(tp)
		}
	case ModeChunk:
		for _, ch := range b.chunks {
			b.flat.ClassifyChunkScratch(ch, b.out, b.sc)
		}
	case ModeParallel:
		p := NewFlat(b.flat, b.cfg)
		if _, err := p.Predict(b.src); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("predict: unknown bench mode %q", mode)
	}
	return int64(len(b.tuples)), nil
}

// Measure times rounds full passes in the given mode. TuplesPerSec comes
// from the fastest round: every mode runs under the same rule, and the
// minimum-time round is the one least distorted by scheduler and
// neighbor noise — the standard way to compare implementations on a
// shared machine. Seconds still reports total timed wall clock across
// all rounds. Allocation counts bracket only the passes, via
// runtime.MemStats deltas.
func (b *Bench) Measure(mode Mode, rounds int) (Measurement, error) {
	if rounds < 1 {
		rounds = 1
	}
	m := Measurement{Mode: string(mode), Rounds: rounds}
	// One untimed pass first: it grows scratch buffers and faults in every
	// page the mode touches, so the timed rounds and their MemStats
	// brackets see only the steady state.
	if _, err := b.RunOnce(mode); err != nil {
		return m, err
	}
	var (
		elapsed        time.Duration
		best           time.Duration
		bestSeen       int64
		mallocs, bytes uint64
		ms             runtime.MemStats
	)
	// Collect once before timing so no round inherits another phase's
	// garbage; not per round — a GC's mark phase streams the whole heap
	// and would evict the dataset from cache before every measurement.
	// The Mallocs/TotalAlloc deltas below are exact monotonic counters
	// and need no collection to be trustworthy.
	runtime.GC()
	for i := 0; i < rounds; i++ {
		runtime.ReadMemStats(&ms)
		m0, a0 := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		seen, err := b.RunOnce(mode)
		round := time.Since(start)
		elapsed += round
		runtime.ReadMemStats(&ms)
		mallocs += ms.Mallocs - m0
		bytes += ms.TotalAlloc - a0
		if err != nil {
			return m, err
		}
		m.Tuples += seen
		if best == 0 || round < best {
			best, bestSeen = round, seen
		}
	}
	m.Seconds = elapsed.Seconds()
	if best > 0 {
		m.TuplesPerSec = float64(bestSeen) / best.Seconds()
	}
	m.AllocObjects, m.AllocBytes = int64(mallocs), int64(bytes)
	if m.Tuples > 0 {
		m.AllocsPerTuple = float64(mallocs) / float64(m.Tuples)
		m.BytesPerTuple = float64(bytes) / float64(m.Tuples)
	}
	if b.cfg.Stats != nil {
		b.cfg.Stats.RecordAllocs(int64(mallocs), int64(bytes))
	}
	return m, nil
}

// VerifyDeterminism re-runs the predictor across the acceptance matrix —
// Parallelism ∈ {1, 8} × chunk rows ∈ {1, 64, 1024} — and checks every
// label against the per-tuple pointer baseline. It returns the number of
// configurations checked.
func (b *Bench) VerifyDeterminism() (int, error) {
	want := b.outAll
	for i, tp := range b.tuples {
		want[i] = b.tr.Classify(tp)
	}
	checked := 0
	for _, par := range []int{1, 8} {
		for _, rows := range []int{1, 64, 1024} {
			cfg := b.cfg
			cfg.Parallelism, cfg.ChunkRows = par, rows
			res, err := NewFlat(b.flat, cfg).Predict(b.src)
			if err != nil {
				return checked, err
			}
			if len(res.Labels) != len(want) {
				return checked, fmt.Errorf("predict: P=%d rows=%d: %d labels, want %d",
					par, rows, len(res.Labels), len(want))
			}
			for i := range want {
				if res.Labels[i] != want[i] {
					return checked, fmt.Errorf("predict: P=%d rows=%d: label %d is %d, baseline %d",
						par, rows, i, res.Labels[i], want[i])
				}
			}
			checked++
		}
	}
	return checked, nil
}
