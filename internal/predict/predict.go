// Package predict is the serving side of the repository: a parallel batch
// predictor that routes columnar chunk streams through the compiled flat
// tree layout (tree.FlatTree). It is the read-path twin of the build
// path's sharded cleanup scan — the same dealer/worker shape, the same
// pooled chunks, the same zero-allocation steady state — applied to
// classification instead of AVC aggregation.
//
// Determinism: predictions are bit-identical across every Parallelism and
// ChunkRows setting by construction. The dealer assigns each chunk an
// absolute offset into the preallocated label vector before dispatch, so
// workers write disjoint ranges of the same output regardless of
// completion order, and the routing kernel itself is deterministic.
package predict

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/eval"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/tree"
)

// Config tunes a Predictor. The zero value is usable: GOMAXPROCS workers,
// default chunk geometry, labels only.
type Config struct {
	// Parallelism is the number of routing workers. <= 0 means
	// runtime.GOMAXPROCS(0); 1 runs inline with no goroutines.
	Parallelism int
	// ChunkRows is the row capacity of the scan chunks (default
	// data.DefaultChunkRows).
	ChunkRows int
	// Compare also fills a confusion matrix against the class labels
	// carried by the source (for accuracy reporting on labeled data).
	Compare bool
	// Stats, Trace, and Metrics are optional observability sinks (all
	// nil-safe): scan I/O accounting, a "predict" span, and the
	// predict.tuples / predict.chunks / predict.tuples_per_sec
	// instruments.
	Stats   *iostats.Stats
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

func (c Config) workers() int {
	if c.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

func (c Config) chunkRows() int {
	if c.ChunkRows <= 0 {
		return data.DefaultChunkRows
	}
	return c.ChunkRows
}

// Result is one Predict call's output.
type Result struct {
	// Labels holds the predicted class of every tuple, in source order.
	Labels []int
	// Tuples and Chunks count what was scanned.
	Tuples int64
	Chunks int64
	// Seconds is the wall-clock duration; TuplesPerSec the throughput.
	Seconds      float64
	TuplesPerSec float64
	// Matrix is the confusion matrix against the source's labels, only
	// when Config.Compare is set.
	Matrix *eval.ConfusionMatrix
}

// Predictor classifies columnar chunk streams against one compiled tree.
// It is immutable after construction and safe for concurrent Predict
// calls.
type Predictor struct {
	flat   *tree.FlatTree
	cfg    Config
	pool   *data.ChunkPool
	tuples *obs.Counter
	chunks *obs.Counter
	rate   *obs.Gauge
	// latency distributes whole-Predict wall time; chunkLat distributes
	// per-chunk kernel time (the serve hot path — recorded through a
	// sharded histogram so concurrent workers never contend on a lock).
	// Both are nil when metrics are disabled, and classify skips even the
	// clock reads then, so the disabled hot loop is untouched.
	latency  *obs.LatencyHistogram
	chunkLat *obs.LatencyHistogram
}

// New compiles the tree and returns a predictor over it.
func New(t *tree.Tree, cfg Config) (*Predictor, error) {
	f, err := tree.Compile(t)
	if err != nil {
		return nil, err
	}
	return NewFlat(f, cfg), nil
}

// NewFlat wraps an already-compiled tree.
func NewFlat(f *tree.FlatTree, cfg Config) *Predictor {
	return &Predictor{
		flat:     f,
		cfg:      cfg,
		pool:     data.NewChunkPool(len(f.Schema().Attributes), cfg.chunkRows()),
		tuples:   cfg.Metrics.Counter("predict.tuples"),
		chunks:   cfg.Metrics.Counter("predict.chunks"),
		rate:     cfg.Metrics.Gauge("predict.tuples_per_sec"),
		latency:  cfg.Metrics.Latency("predict.latency"),
		chunkLat: cfg.Metrics.Latency("predict.chunk_latency"),
	}
}

// Flat returns the compiled layout the predictor routes through.
func (p *Predictor) Flat() *tree.FlatTree { return p.flat }

// workerScratch is one worker's private state: the kernel's partition
// scratch and (under Compare) a flattened k×k confusion count block that
// is merged after the workers drain — int64 adds commute, so the merged
// matrix is independent of completion order.
type workerScratch struct {
	sc     *tree.ClassifyScratch
	counts []int64
	tuples int64
	chunks int64
}

func (p *Predictor) newScratch() *workerScratch {
	s := &workerScratch{sc: tree.NewClassifyScratch()}
	if p.cfg.Compare {
		k := p.flat.Schema().ClassCount
		s.counts = make([]int64, k*k)
	}
	return s
}

// job is one dispatched chunk plus its absolute slot in the output.
type job struct {
	ch  *data.Chunk
	out []int
}

// Predict scans src once and classifies every tuple.
func (p *Predictor) Predict(src data.Source) (*Result, error) {
	if !p.flat.Schema().Equal(src.Schema()) {
		return nil, data.ErrSchemaMismatch
	}
	span := p.cfg.Trace.Start("predict")
	defer span.End()
	span.SetAttr("parallelism", p.cfg.workers())
	span.SetAttr("chunk_rows", p.cfg.chunkRows())

	if p.cfg.Stats != nil {
		src = iostats.Tracked(src, p.cfg.Stats)
	}

	start := time.Now()
	res := &Result{}
	// Preallocate the label vector when the source knows its cardinality;
	// otherwise the dealer allocates one segment per chunk and they are
	// stitched in order afterward.
	var labels []int
	var segs [][]int
	if n, ok := src.Count(); ok {
		labels = make([]int, n)
	}

	var err error
	if p.cfg.workers() <= 1 {
		err = p.predictSequential(src, labels, &segs, res)
	} else {
		err = p.predictParallel(src, labels, &segs, res)
	}
	if err != nil {
		return nil, err
	}

	if labels != nil {
		if int64(len(labels)) != res.Tuples {
			return nil, errors.New("predict: source cardinality changed mid-scan")
		}
		res.Labels = labels
	} else {
		res.Labels = make([]int, 0, res.Tuples)
		for _, s := range segs {
			res.Labels = append(res.Labels, s...)
		}
	}

	elapsed := time.Since(start)
	p.latency.Observe(elapsed)
	res.Seconds = elapsed.Seconds()
	if res.Seconds > 0 {
		res.TuplesPerSec = float64(res.Tuples) / res.Seconds
	}
	span.SetAttr("tuples", res.Tuples)
	span.SetAttr("chunks", res.Chunks)
	p.tuples.Add(res.Tuples)
	p.chunks.Add(res.Chunks)
	p.rate.Set(res.TuplesPerSec)
	return res, nil
}

// dealOut returns the output slot for the next n rows: a slice of the
// preallocated vector when cardinality was known, a fresh ordered segment
// otherwise.
func dealOut(labels []int, segs *[][]int, offset, n int) ([]int, error) {
	if labels == nil {
		seg := make([]int, n)
		*segs = append(*segs, seg)
		return seg, nil
	}
	if offset+n > len(labels) {
		return nil, errors.New("predict: source produced more tuples than its declared count")
	}
	return labels[offset : offset+n], nil
}

func (p *Predictor) predictSequential(src data.Source, labels []int, segs *[][]int, res *Result) error {
	sc, err := data.ScanChunks(src)
	if err != nil {
		return err
	}
	defer sc.Close()
	scratch := p.newScratch()
	ch := p.pool.Get()
	defer p.pool.Put(ch)
	offset := 0
	for {
		ch.Reset()
		err := sc.NextChunk(ch)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		n := ch.Len()
		if n == 0 {
			continue
		}
		out, err := dealOut(labels, segs, offset, n)
		if err != nil {
			return err
		}
		p.classify(ch, out, scratch)
		offset += n
	}
	p.mergeScratch(res, scratch)
	return sc.Close()
}

func (p *Predictor) predictParallel(src data.Source, labels []int, segs *[][]int, res *Result) error {
	sc, err := data.ScanChunks(src)
	if err != nil {
		return err
	}
	defer sc.Close()
	w := p.cfg.workers()
	jobs := make(chan job, w)
	scratches := make([]*workerScratch, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		scratch := p.newScratch()
		scratches[i] = scratch
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p.classify(j.ch, j.out, scratch)
				p.pool.Put(j.ch)
			}
		}()
	}
	dispatch := func() error {
		offset := 0
		for {
			ch := p.pool.Get()
			err := sc.NextChunk(ch)
			if err != nil {
				p.pool.Put(ch)
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			n := ch.Len()
			if n == 0 {
				p.pool.Put(ch)
				continue
			}
			out, err := dealOut(labels, segs, offset, n)
			if err != nil {
				p.pool.Put(ch)
				return err
			}
			jobs <- job{ch: ch, out: out}
			offset += n
		}
	}
	err = dispatch()
	close(jobs)
	wg.Wait()
	if err != nil {
		return err
	}
	for _, s := range scratches {
		p.mergeScratch(res, s)
	}
	return sc.Close()
}

// classify routes one chunk into its output slot and updates the worker's
// local accounting.
func (p *Predictor) classify(ch *data.Chunk, out []int, s *workerScratch) {
	var t0 time.Time
	if p.chunkLat != nil {
		t0 = time.Now()
	}
	p.flat.ClassifyChunkScratch(ch, out, s.sc)
	if p.chunkLat != nil {
		p.chunkLat.Observe(time.Since(t0))
	}
	if s.counts != nil {
		k := p.flat.Schema().ClassCount
		for i, c := range ch.Classes() {
			s.counts[int(c)*k+out[i]]++
		}
	}
	s.tuples += int64(ch.Len())
	s.chunks++
}

func (p *Predictor) mergeScratch(res *Result, s *workerScratch) {
	res.Tuples += s.tuples
	res.Chunks += s.chunks
	if s.counts == nil {
		return
	}
	if res.Matrix == nil {
		res.Matrix = eval.NewConfusionMatrix(p.flat.Schema().ClassCount)
	}
	k := p.flat.Schema().ClassCount
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			res.Matrix.Counts[a][b] += s.counts[a*k+b]
		}
	}
}
