package bootstrap

import (
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
)

func cfg(seed int64) Config {
	return Config{
		Trees:         10,
		SubsampleSize: 1000,
		TreeConfig:    inmem.Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 20},
		Seed:          seed,
	}
}

func TestBuildCoarseStrongSignal(t *testing.T) {
	// A strongly separable concept: every bootstrap tree should agree at
	// the root, and the confidence interval should contain the
	// full-sample split point.
	src := gen.MustSource(gen.Config{Function: 2}, 4000, 5)
	sample, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	full := inmem.Build(src.Schema(), data.CloneTuples(sample), inmem.Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 20,
	})
	root, stats, err := BuildCoarse(src.Schema(), sample, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if root == nil {
		t.Fatal("bootstrap trees disagreed at the root of a clean concept")
	}
	if stats.CoarseNodes == 0 {
		t.Fatal("no coarse nodes")
	}
	refCrit := full.Root.Crit
	if root.Attr != refCrit.Attr {
		t.Fatalf("coarse attribute %d != full-sample attribute %d", root.Attr, refCrit.Attr)
	}
	if root.Kind == data.Numeric {
		if refCrit.Threshold < root.Lo || refCrit.Threshold > root.Hi {
			t.Errorf("full-sample split %v outside interval [%v,%v]",
				refCrit.Threshold, root.Lo, root.Hi)
		}
		if len(root.Points) != 10 {
			t.Errorf("expected 10 bootstrap points, got %d", len(root.Points))
		}
		if root.Median < root.Lo || root.Median > root.Hi {
			t.Errorf("median %v outside [%v,%v]", root.Median, root.Lo, root.Hi)
		}
	}
}

func TestBuildCoarseInstabilityStopsGrowth(t *testing.T) {
	// The Figure 12 dataset: two exactly tied impurity minima make
	// bootstrap split points bimodal; either the root interval must span
	// both minima or (if deeper structure differs) growth stops early.
	src := gen.InstabilitySource(20000, 3)
	sample, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := BuildCoarse(src.Schema(), sample, cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if root == nil {
		return // disagreement at the root: the expected outcome is fine
	}
	if root.Attr != 0 {
		t.Fatalf("root attribute %d, want 0", root.Attr)
	}
	// Bimodal split points: the interval must span (or nearly span) the
	// two minima at 19 and 60 — or all repetitions landed on one minimum,
	// in which case the subtrees below will disagree instead.
	spread := root.Hi - root.Lo
	low, high := 0, 0
	for _, p := range root.Points {
		if p < 40 {
			low++
		} else {
			high++
		}
	}
	if low > 0 && high > 0 && spread < 30 {
		t.Errorf("bimodal points %v but narrow interval [%v,%v]", root.Points, root.Lo, root.Hi)
	}
	t.Logf("points=%v interval=[%v,%v] low=%d high=%d", root.Points, root.Lo, root.Hi, low, high)
}

func TestBuildCoarseWiden(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 7}, 3000, 9)
	sample, _ := data.ReadAll(src)
	c := cfg(3)
	narrow, _, err := BuildCoarse(src.Schema(), sample, c)
	if err != nil || narrow == nil {
		t.Fatalf("narrow: %v", err)
	}
	c2 := cfg(3)
	c2.WidenFraction = 0.5
	wide, _, err := BuildCoarse(src.Schema(), sample, c2)
	if err != nil || wide == nil {
		t.Fatalf("wide: %v", err)
	}
	if wide.Kind == data.Numeric && narrow.Kind == data.Numeric {
		if wide.Hi-wide.Lo < narrow.Hi-narrow.Lo {
			t.Errorf("widening shrank the interval: [%v,%v] vs [%v,%v]",
				wide.Lo, wide.Hi, narrow.Lo, narrow.Hi)
		}
	}
}

func TestBuildCoarseErrors(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 100, 1)
	sample, _ := data.ReadAll(src)
	bad := cfg(1)
	bad.Trees = 1
	if _, _, err := BuildCoarse(src.Schema(), sample, bad); err == nil {
		t.Error("expected error for <2 bootstrap trees")
	}
	root, _, err := BuildCoarse(src.Schema(), nil, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if root != nil {
		t.Error("empty sample should produce a frontier-only coarse tree")
	}
}

func TestRouteSample(t *testing.T) {
	num := &Node{Attr: 0, Kind: data.Numeric, Lo: 10, Hi: 20, Median: 15}
	cases := []struct {
		v    float64
		want int
	}{
		{5, -1}, {10, -1}, {12, -1}, {15, -1}, {16, 1}, {20, 1}, {25, 1},
	}
	for _, tc := range cases {
		tp := data.Tuple{Values: []float64{tc.v}}
		if got := num.RouteSample(tp); got != tc.want {
			t.Errorf("RouteSample(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	cat := &Node{Attr: 0, Kind: data.Categorical, Subset: 0b101}
	if cat.RouteSample(data.Tuple{Values: []float64{2}}) != -1 {
		t.Error("code 2 in subset should go left")
	}
	if cat.RouteSample(data.Tuple{Values: []float64{1}}) != 1 {
		t.Error("code 1 not in subset should go right")
	}
}

func TestIntersectDisagreementPrunes(t *testing.T) {
	// With samples drawn from two different concepts (constructed by
	// splitting the sample), the coarse tree must not survive below a
	// point of disagreement; we simulate via a tiny sample and very deep
	// trees so noise dominates: the tree should be shallower than the
	// bootstrap trees themselves.
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.3}, 400, 17)
	sample, _ := data.ReadAll(src)
	c := cfg(5)
	c.SubsampleSize = 100
	c.TreeConfig.MaxDepth = 8
	c.TreeConfig.MinSplit = 2
	root, stats, err := BuildCoarse(src.Schema(), sample, c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Disagreements == 0 {
		t.Error("expected disagreements on noisy tiny samples")
	}
	depth := coarseDepth(root)
	if depth >= 8 {
		t.Errorf("coarse tree depth %d: disagreement did not prune", depth)
	}
}

func coarseDepth(n *Node) int {
	if n == nil {
		return 0
	}
	l, r := coarseDepth(n.Left), coarseDepth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}
