// Package bootstrap implements the sampling phase of BOAT (Section 3.2):
// b bootstrap trees are constructed from samples drawn with replacement
// from the in-memory sample D', then intersected top-down into a coarse
// tree. At each surviving node the coarse splitting criterion restricts
// the final criterion to the bootstrap splitting attribute, with a
// confidence interval for the split point (numeric) or the exact
// splitting subset (categorical). Positions where the bootstrap trees
// disagree become unexplored frontier nodes whose subtrees BOAT builds
// from collected families after the cleanup scan.
package bootstrap

import (
	"errors"
	"math/rand"
	"sort"
	"sync"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/tree"
)

// Config controls the sampling phase.
type Config struct {
	// Trees is the number b of bootstrap repetitions. The paper uses 20;
	// more repetitions widen the confidence intervals, increasing the
	// confidence that the final split point falls inside.
	Trees int
	// SubsampleSize is the size of each with-replacement bootstrap sample
	// (the paper uses 50000 from a 200000-tuple sample).
	SubsampleSize int
	// WidenFraction widens each confidence interval by this fraction of
	// its width on both ends (0 reproduces the raw bootstrap min/max).
	WidenFraction float64
	// TreeConfig are the growth rules for the bootstrap trees; callers
	// scale any family-size thresholds by the sampling fraction.
	TreeConfig inmem.Config
	// Seed drives the resampling. Tree i draws its bootstrap sample from
	// a private RNG seeded with Seed + i, so the b trees — and therefore
	// the coarse tree — are bit-identical regardless of Parallelism.
	Seed int64
	// Parallelism is the number of worker goroutines growing bootstrap
	// trees (<= 1 grows them sequentially in-line). Tree construction from
	// the in-memory sample is embarrassingly parallel: the population is
	// only read, and each tree owns its RNG and bootstrap sample.
	Parallelism int
	// Span, when non-nil, is the enclosing trace span; BuildCoarse records
	// the tree-growth and intersection phases as child spans under it.
	Span *obs.Span
}

// Node is one node of the coarse tree. Leaves of the coarse tree are
// frontier positions: either all bootstrap trees agreed the position is a
// leaf, or they disagreed on the splitting criterion; in both cases BOAT
// collects the node's family during the cleanup scan and finishes the
// subtree from it.
type Node struct {
	// Attr and Kind identify the coarse splitting attribute.
	Attr int
	Kind data.Kind
	// Subset is the exact coarse splitting subset (categorical).
	Subset uint64
	// Lo, Hi is the confidence interval for the final split point
	// (numeric): with high probability the final split point x* satisfies
	// Lo <= x* <= Hi. Tuples with value in (Lo, Hi] cannot be routed
	// during the cleanup scan and are kept at the node (the set S_n).
	Lo, Hi float64
	// Median is a representative split point (the lower median of the
	// bootstrap split points), used to route sample tuples when building
	// discretizations; it never influences the final tree.
	Median float64
	// Points are the b bootstrap split points (sorted), retained for
	// diagnostics and the instability analysis of Figure 12.
	Points []float64
	// Left, Right are the children; nil children mark the frontier.
	Left, Right *Node
}

// IsFrontierChildless reports whether the node has no explored children.
func (n *Node) IsFrontierChildless() bool { return n.Left == nil && n.Right == nil }

// Stats summarizes a sampling phase for diagnostics.
type Stats struct {
	// CoarseNodes is the number of internal nodes of the coarse tree.
	CoarseNodes int
	// Disagreements is the number of positions where the bootstrap trees
	// disagreed on the splitting attribute or subset.
	Disagreements int
	// IntervalWidthSum accumulates Hi-Lo over numeric coarse nodes.
	IntervalWidthSum float64
	// NumericNodes counts numeric coarse nodes.
	NumericNodes int
}

// BuildCoarse runs the sampling phase on the in-memory sample.
func BuildCoarse(schema *data.Schema, sample []data.Tuple, cfg Config) (*Node, Stats, error) {
	var st Stats
	if cfg.Trees < 2 {
		return nil, st, errors.New("bootstrap: need at least 2 bootstrap trees")
	}
	if len(sample) == 0 {
		return nil, st, nil // empty sample: the whole tree is frontier
	}
	sub := cfg.SubsampleSize
	if sub <= 0 {
		sub = len(sample)
	}
	growSpan := cfg.Span.Start("bootstrap-trees")
	growSpan.SetAttr("trees", cfg.Trees)
	growSpan.SetAttr("subsample", sub)
	roots := make([]*tree.Node, cfg.Trees)
	grow := func(i int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		boot := data.SampleWithReplacement(sample, sub, rng)
		roots[i] = inmem.Build(schema, boot, cfg.TreeConfig).Root
	}
	if w := min(cfg.Parallelism, cfg.Trees); w > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for range w {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					grow(i)
				}
			}()
		}
		for i := range roots {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range roots {
			grow(i)
		}
	}
	growSpan.End()
	intSpan := cfg.Span.Start("intersect")
	root := intersect(schema, roots, cfg.WidenFraction, &st)
	intSpan.SetAttr("coarse_nodes", st.CoarseNodes)
	intSpan.End()
	return root, st, nil
}

// intersect merges the bootstrap trees top-down per Section 3.2: keep a
// node only if every bootstrap tree splits here on the same attribute
// (and, for categorical attributes, the same subset); otherwise the
// position becomes frontier.
func intersect(schema *data.Schema, nodes []*tree.Node, widen float64, st *Stats) *Node {
	for _, n := range nodes {
		if n == nil || n.IsLeaf() {
			return nil
		}
	}
	first := nodes[0].Crit
	for _, n := range nodes[1:] {
		if n.Crit.Attr != first.Attr || n.Crit.Kind != first.Kind {
			st.Disagreements++
			return nil
		}
		if first.Kind == data.Categorical && n.Crit.Subset != first.Subset {
			st.Disagreements++
			return nil
		}
	}
	out := &Node{Attr: first.Attr, Kind: first.Kind}
	if first.Kind == data.Categorical {
		out.Subset = first.Subset
	} else {
		pts := make([]float64, len(nodes))
		for i, n := range nodes {
			pts[i] = n.Crit.Threshold
		}
		sort.Float64s(pts)
		out.Points = pts
		out.Lo, out.Hi = pts[0], pts[len(pts)-1]
		out.Median = pts[(len(pts)-1)/2]
		if widen > 0 {
			w := (out.Hi - out.Lo) * widen
			out.Lo -= w
			out.Hi += w
		}
		st.IntervalWidthSum += out.Hi - out.Lo
		st.NumericNodes++
	}
	st.CoarseNodes++
	lefts := make([]*tree.Node, len(nodes))
	rights := make([]*tree.Node, len(nodes))
	for i, n := range nodes {
		lefts[i] = n.Left
		rights[i] = n.Right
	}
	out.Left = intersect(schema, lefts, widen, st)
	out.Right = intersect(schema, rights, widen, st)
	return out
}

// RouteSample routes a sample tuple one step: -1 left, +1 right. Tuples
// inside a numeric confidence interval are routed by the median bootstrap
// split point (this choice only affects discretization quality, never
// correctness).
func (n *Node) RouteSample(t data.Tuple) int {
	if n.Kind == data.Categorical {
		code := uint(t.Values[n.Attr])
		if code < 64 && n.Subset&(1<<code) != 0 {
			return -1
		}
		return 1
	}
	v := t.Values[n.Attr]
	if v <= n.Lo {
		return -1
	}
	if v > n.Hi {
		return 1
	}
	if v <= n.Median {
		return -1
	}
	return 1
}
