package discretize

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestHistogramAddBatchEquivalence: AddBatch must equal a loop of Add on
// random boundary sets and value streams. Values deliberately include
// exact boundary hits (atom cells), near misses, and sorted runs (the
// seeded-cell fast path), plus the empty-boundary histogram.
func TestHistogramAddBatchEquivalence(t *testing.T) {
	const classes = 3
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		// Boundary counts straddle bucketIndexMinBoundaries so both the
		// indexed and the fallback search run; the tight cluster near 100
		// piles many boundaries into one index bucket.
		nb := rng.Intn(40) // 0 boundaries: single-cell histogram
		bset := map[float64]bool{}
		for len(bset) < nb {
			if rng.Intn(2) == 0 {
				bset[float64(rng.Intn(40))] = true
			} else {
				bset[100+float64(rng.Intn(64))/1024] = true
			}
		}
		boundaries := make([]float64, 0, nb)
		for v := range bset {
			boundaries = append(boundaries, v)
		}
		sort.Float64s(boundaries)

		n := 1 + rng.Intn(400)
		col := make([]float64, n)
		cls := make([]int32, n)
		for i := range col {
			switch rng.Intn(3) {
			case 0: // exact boundary hit when possible
				if nb > 0 {
					col[i] = boundaries[rng.Intn(nb)]
				} else {
					col[i] = float64(rng.Intn(40))
				}
			case 1:
				col[i] = float64(rng.Intn(40)) + 0.5
			case 2:
				col[i] = 100 + float64(rng.Intn(80))/1024
			default:
				col[i] = float64(rng.Intn(60)) - 10
			}
			cls[i] = int32(rng.Intn(classes))
		}
		if trial%3 == 0 {
			// Sorted runs keep consecutive values in one cell, which is
			// what the previous-cell seed optimizes for.
			sort.Float64s(col)
		}
		var idx []int32
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				idx = append(idx, int32(i))
			}
		}

		batch := NewHistogram(boundaries, classes)
		loop := NewHistogram(boundaries, classes)
		batch.AddBatch(col, cls, nil)
		for r, v := range col {
			loop.Add(v, int(cls[r]), 1)
		}
		requireSameHistogram(t, fmt.Sprintf("trial %d all-rows", trial), batch, loop)

		batch = NewHistogram(boundaries, classes)
		loop = NewHistogram(boundaries, classes)
		batch.AddBatch(col, cls, idx)
		for _, r := range idx {
			loop.Add(col[r], int(cls[r]), 1)
		}
		requireSameHistogram(t, fmt.Sprintf("trial %d subset", trial), batch, loop)
	}
}

func requireSameHistogram(t *testing.T, label string, a, b *Histogram) {
	t.Helper()
	for c := range a.Counts {
		for j := range a.Counts[c] {
			if a.Counts[c][j] != b.Counts[c][j] {
				t.Fatalf("%s: cell %d class %d: %d want %d", label, c, j, a.Counts[c][j], b.Counts[c][j])
			}
		}
	}
}

// TestCellOfMatchesManualSearch pins the inlined binary search to the
// sort.SearchFloat64s-based CellOf across boundary hits and misses.
func TestCellOfMatchesManualSearch(t *testing.T) {
	h := NewHistogram([]float64{1, 3, 7, 7.5}, 2)
	for v := -2.0; v <= 10; v += 0.25 {
		if got, want := cellOf(h.Boundaries, v), h.CellOf(v); got != want {
			t.Fatalf("cellOf(%v) = %d, CellOf = %d", v, got, want)
		}
	}
	empty := NewHistogram(nil, 2)
	if got := cellOf(empty.Boundaries, 5); got != empty.CellOf(5) {
		t.Fatalf("empty boundaries: cellOf = %d, CellOf = %d", got, empty.CellOf(5))
	}
}

func BenchmarkHistogramBatch(b *testing.B) {
	const n, classes = 4096, 4
	boundaries := make([]float64, 64)
	for i := range boundaries {
		boundaries[i] = float64(i * 3)
	}
	rng := rand.New(rand.NewSource(1))
	col := make([]float64, n)
	cls := make([]int32, n)
	for i := range col {
		col[i] = float64(rng.Intn(200))
		cls[i] = int32(rng.Intn(classes))
	}
	b.Run("loop", func(b *testing.B) {
		h := NewHistogram(boundaries, classes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r, v := range col {
				h.Add(v, int(cls[r]), 1)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		h := NewHistogram(boundaries, classes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.AddBatch(col, cls, nil)
		}
	})

	// The cleanup scan's reality: few boundaries, continuous values —
	// every per-row comparison against a boundary is an unpredictable
	// branch unless the kernel is branch-free.
	fb := []float64{38000, 62000, 95000, 123000}
	fcol := make([]float64, n)
	for i := range fcol {
		fcol[i] = 20000 + 130000*rng.Float64()
	}
	b.Run("batch-continuous", func(b *testing.B) {
		h := NewHistogram(fb, classes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.AddBatch(fcol, cls, nil)
		}
	})
}
