// Package discretize builds the per-node, per-attribute discretizations of
// Section 3.4 of the paper and the cell-count histograms maintained during
// the cleanup scan.
//
// A discretization is a sorted list of boundary values taken from the
// node's sample family. The histogram tracks, per class, 2B+1 cells for B
// boundaries: an "atom" cell for each boundary value itself and an open
// "interior" cell for each gap (including the two unbounded ends).
// Cumulative counts at the cell edges are exactly the stamp points of
// Section 3.4, so during verification
//
//   - atom cells are evaluated exactly (the stamp point at a boundary is
//     the true partition of the split at that value),
//   - empty interior cells contain no candidate split points and are
//     skipped,
//   - non-empty interior cells are lower-bounded by the 2^k corner bound
//     of Lemma 3.1 over the rectangle spanned by their edge stamp points.
//
// Boundary selection follows the paper's adaptive procedure: walk the
// sample's attribute values in ascending order and extend the current
// bucket while its corner lower bound stays well above the node's
// estimated minimum impurity; where the bound approaches the minimum the
// buckets degenerate to single values, whose atoms are then verified
// exactly — "many buckets in regions where the impurity is close to the
// overall minimum, few buckets elsewhere".
package discretize

import (
	"math"
	"sort"

	"github.com/boatml/boat/internal/hull"
	"github.com/boatml/boat/internal/split"
)

// DefaultBudget is the default soft bound on boundaries per
// (node, attribute). The adaptive walk may exceed it by up to
// HardCapFactor times before the quality-ordered fallback thins the
// selection: regions where the impurity curve itself sits inside the band
// can only be protected by atom cells (which verification evaluates
// exactly, with zero false-alarm risk), so capping them too aggressively
// trades memory for spurious rebuilds.
const DefaultBudget = 128

// HardCapFactor bounds how far beyond the budget the adaptive walk may
// go before boundaries are thinned.
const HardCapFactor = 32

// BandFraction controls how much headroom above the estimated minimum
// impurity a bucket's lower bound must keep: the bucket is closed once its
// bound drops under estMin + band, with
// band = BandFraction*(nodeImpurity-estMin) + BandFloor*nodeImpurity.
// The band absorbs the sampling noise between the sample's impurity
// landscape and the full data's; the floor keeps it meaningful at deep
// noisy nodes where the gap nodeImpurity-estMin vanishes.
const (
	BandFraction = 0.25
	BandFloor    = 0.02
)

// Boundaries computes the discretization boundaries for one numeric
// attribute from the node's sample family AVC-set. estMin is the node's
// estimated minimum impurity over all attributes (the sample tree's best
// split quality); budget <= 0 selects DefaultBudget.
func Boundaries(crit split.Criterion, avc *split.NumericAVC, classTotals []int64,
	estMin float64, budget int) []float64 {
	if budget <= 0 {
		budget = DefaultBudget
	}
	nv := len(avc.Values)
	if nv == 0 {
		return nil
	}
	k := len(classTotals)
	nodeImp := crit.Impurity(classTotals)
	band := BandFloor * nodeImp
	if nodeImp > estMin && !math.IsInf(estMin, 1) {
		band += BandFraction * (nodeImp - estMin)
	}
	threshold := estMin + band
	if math.IsInf(estMin, 1) {
		threshold = nodeImp // no estimate: everything is dangerous
	}

	// Adaptive walk: close the current bucket whenever extending it would
	// drag its corner lower bound to the threshold or below. The largest
	// observed value always closes the discretization: its atom is
	// harmless during verification (splitting at the maximum is illegal),
	// and it keeps the unbounded tail cell — whose verification rectangle
	// extends all the way to the class totals — empty on the data the
	// boundaries were built from.
	cum := make([]int64, k)      // stamp after value i
	bucketLo := make([]int64, k) // stamp at the last boundary
	var out []float64
	for i := 0; i < nv; i++ {
		for j, c := range avc.Counts[i] {
			cum[j] += c
		}
		if i == nv-1 {
			out = append(out, avc.Values[i])
			break
		}
		lb := hull.LowerBound(crit, bucketLo, cum, classTotals)
		if lb <= threshold {
			out = append(out, avc.Values[i])
			copy(bucketLo, cum)
		}
	}
	if len(out) <= budget*HardCapFactor {
		return out
	}
	// Fallback: adaptive selection exploded (a near-flat impurity
	// landscape over a huge domain); thin to the most dangerous
	// candidates by impurity plus an equi-depth skeleton. Looser bounds
	// may cause spurious rebuilds but never a wrong tree.
	return fallbackBoundaries(crit, avc, classTotals, budget*HardCapFactor)
}

func fallbackBoundaries(crit split.Criterion, avc *split.NumericAVC, classTotals []int64, budget int) []float64 {
	nv := len(avc.Values)
	k := len(classTotals)
	left := make([]int64, k)
	scratch := make([]int64, k)
	quality := make([]float64, nv-1)
	for i := 0; i < nv-1; i++ {
		for j, c := range avc.Counts[i] {
			left[j] += c
		}
		quality[i] = crit.QualityFromLeft(left, classTotals, scratch)
	}
	selected := make(map[int]bool)
	order := make([]int, nv-1)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if quality[order[a]] != quality[order[b]] {
			return quality[order[a]] < quality[order[b]]
		}
		return order[a] < order[b]
	})
	fine := budget / 2
	if fine > len(order) {
		fine = len(order)
	}
	for _, i := range order[:fine] {
		selected[i] = true
	}
	var total int64
	for _, c := range classTotals {
		total += c
	}
	coarse := budget - fine
	if coarse > 0 && total > 0 {
		step := total / int64(coarse+1)
		if step < 1 {
			step = 1
		}
		var cum, next int64 = 0, step
		for i := 0; i < nv-1; i++ {
			for _, c := range avc.Counts[i] {
				cum += c
			}
			if cum >= next {
				selected[i] = true
				next += step
			}
		}
	}
	selected[nv-1] = true // always close with the maximum observed value
	idxs := make([]int, 0, len(selected))
	for i := range selected {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]float64, len(idxs))
	for j, i := range idxs {
		out[j] = avc.Values[i]
	}
	return out
}

// InsertBoundaries returns boundaries with the extra values merged in
// (sorted, deduplicated). Used to force the confidence-interval endpoints
// of the coarse splitting attribute to be boundaries, so no cell straddles
// the interval.
func InsertBoundaries(boundaries []float64, extra ...float64) []float64 {
	out := make([]float64, 0, len(boundaries)+len(extra))
	out = append(out, boundaries...)
	out = append(out, extra...)
	sort.Float64s(out)
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// Histogram counts tuples per (cell, class) for one numeric attribute at
// one node. For B boundaries there are 2B+1 cells, alternating interior
// and atom cells:
//
//	cell 0:   (-Inf, b0)    interior
//	cell 1:   [b0]          atom
//	cell 2:   (b0, b1)      interior
//	...
//	cell 2B:  (b_{B-1}, +Inf) interior
type Histogram struct {
	Boundaries []float64
	Counts     [][]int64

	// flat is the contiguous backing of Counts (stride = class count);
	// AddBatch addresses it directly, saving the outer-slice indirection.
	flat    []int64
	classes int

	// bidx is the lazily-built bucket index that AddBatch uses to replace
	// the per-row binary search with an O(1) table lookup. Boundaries are
	// immutable after construction, so the index never needs invalidating;
	// it is built on the first AddBatch, amortizing its cost across the
	// batches of a scan (the per-row Add path never pays for it).
	bidx *bucketIndex
}

// bucketIndex accelerates boundary searches: values are mapped to one of
// nb uniform buckets spanning [min, max]. A bucket holding at most one
// boundary resolves a value with two comparisons against bval[k] — no
// loop, no data-dependent branch, which matters because scan values are
// continuous and any per-row branch on them is a coin flip the branch
// predictor loses. base[k] is the cell of a value below every boundary
// in bucket k (2 × the count of boundaries in earlier buckets); the two
// comparisons add the >=-boundary and >-boundary steps. Empty buckets
// carry bval = +Inf (both comparisons false); the rare bucket holding
// two or more boundaries carries bval = NaN and base = -1, which the
// kernel detects (cell < 0) and resolves with the binary search. Nil
// slices mean the boundary set is degenerate and everything falls back
// to the seeded binary search.
type bucketIndex struct {
	min, scale float64
	bval       []float64
	base       []int32
}

func buildBucketIndex(b []float64) *bucketIndex {
	if len(b) == 0 {
		return &bucketIndex{}
	}
	min, max := b[0], b[len(b)-1]
	nb := 8 * len(b)
	scale := float64(nb) / (max - min)
	if max <= min || math.IsInf(scale, 0) || math.IsNaN(scale) {
		return &bucketIndex{}
	}
	// Boundaries are bucketed with the same float arithmetic the lookups
	// use, so the per-bucket resolution is exact by the monotonicity of
	// bucketOf even under rounding.
	bval := make([]float64, nb)
	base := make([]int32, nb)
	i := 0
	for k := 0; k < nb; k++ {
		for i < len(b) && bucketOf(b[i], min, scale, nb) < k {
			i++
		}
		base[k] = int32(2 * i)
		switch {
		case i >= len(b) || bucketOf(b[i], min, scale, nb) > k:
			bval[k] = math.Inf(1) // empty bucket
		case i+1 < len(b) && bucketOf(b[i+1], min, scale, nb) == k:
			bval[k] = math.NaN() // crowded bucket
			base[k] = -1
		default:
			bval[k] = b[i]
		}
	}
	return &bucketIndex{min: min, scale: scale, bval: bval, base: base}
}

// bucketOf maps v to its bucket in [0, nb). It is monotone non-decreasing
// in v, which is all the index's correctness relies on.
func bucketOf(v, min, scale float64, nb int) int {
	k := int((v - min) * scale)
	if k < 0 {
		return 0
	}
	if k >= nb {
		return nb - 1
	}
	return k
}

// NewHistogram allocates a zeroed histogram over the boundaries
// (which must be sorted and distinct).
func NewHistogram(boundaries []float64, classCount int) *Histogram {
	nc := 2*len(boundaries) + 1
	counts := make([][]int64, nc)
	backing := make([]int64, nc*classCount)
	for i := range counts {
		counts[i] = backing[i*classCount : (i+1)*classCount]
	}
	return &Histogram{Boundaries: boundaries, Counts: counts, flat: backing, classes: classCount}
}

// CellOf returns the cell index of value v.
func (h *Histogram) CellOf(v float64) int {
	i := sort.SearchFloat64s(h.Boundaries, v)
	if i < len(h.Boundaries) && h.Boundaries[i] == v {
		return 2*i + 1 // atom
	}
	return 2 * i // interior
}

// IsAtom reports whether the cell is a single boundary value.
func (h *Histogram) IsAtom(cell int) bool { return cell%2 == 1 }

// AtomValue returns the boundary value of an atom cell.
func (h *Histogram) AtomValue(cell int) float64 { return h.Boundaries[cell/2] }

// CellLowerEdge returns the infimum of the cell's range (-Inf for cell 0).
func (h *Histogram) CellLowerEdge(cell int) float64 {
	if h.IsAtom(cell) {
		return h.Boundaries[cell/2]
	}
	if cell == 0 {
		return math.Inf(-1)
	}
	return h.Boundaries[cell/2-1]
}

// CellUpperEdge returns the supremum of the cell's range (+Inf for the
// last cell).
func (h *Histogram) CellUpperEdge(cell int) float64 {
	if h.IsAtom(cell) {
		return h.Boundaries[cell/2]
	}
	if cell/2 >= len(h.Boundaries) {
		return math.Inf(1)
	}
	return h.Boundaries[cell/2]
}

// Add registers w occurrences of (v, class).
func (h *Histogram) Add(v float64, class int, w int64) {
	h.Counts[h.CellOf(v)][class] += w
}

// AddBatch registers one occurrence of (col[r], classes[r]) for every row
// r in idx, or for every row of col when idx is nil. It is exactly
// equivalent to calling Add(col[r], int(classes[r]), 1) per row; the
// batched form replaces the per-row binary search with a bucket-index
// lookup built once per histogram, addresses the contiguous count backing
// directly, and special-cases the zero- and one-boundary histograms of
// deep nodes. Degenerate boundary sets the index cannot cover fall back
// to a binary search seeded with the previous row's cell.
func (h *Histogram) AddBatch(col []float64, classes []int32, idx []int32) {
	b := h.Boundaries
	if flat, nc := h.flat, h.classes; flat != nil {
		switch len(b) {
		case 0: // single cell: every row lands in cell 0
			if idx == nil {
				for r := range col {
					flat[classes[r]]++
				}
				return
			}
			for _, r := range idx {
				flat[classes[r]]++
			}
			return
		case 1: // three cells: two compares beat any search
			b0 := b[0]
			if idx == nil {
				for r, v := range col {
					cell := 0
					if v == b0 {
						cell = 1
					} else if v > b0 {
						cell = 2
					}
					flat[cell*nc+int(classes[r])]++
				}
				return
			}
			for _, r := range idx {
				v := col[r]
				cell := 0
				if v == b0 {
					cell = 1
				} else if v > b0 {
					cell = 2
				}
				flat[cell*nc+int(classes[r])]++
			}
			return
		}
		if h.bidx == nil {
			h.bidx = buildBucketIndex(b)
		}
		if bval := h.bidx.bval; len(bval) > 0 {
			// The branch-free row kernel: clamps compile to conditional
			// moves, the two boundary comparisons to flag materializations.
			// The only data-dependent branch left is the crowded-bucket
			// fallback, which almost never fires.
			min, scale := h.bidx.min, h.bidx.scale
			base := h.bidx.base[:len(bval)]
			last := len(bval) - 1
			if idx == nil {
				classes := classes[:len(col)]
				for r, v := range col {
					k := int((v - min) * scale)
					if k < 0 {
						k = 0
					}
					if k > last {
						k = last
					}
					bv := bval[k]
					cell := int(base[k])
					if v >= bv {
						cell++
					}
					if v > bv {
						cell++
					}
					if cell < 0 { // crowded bucket: NaN bval, base -1
						cell = cellOf(b, v)
					}
					flat[cell*nc+int(classes[r])]++
				}
				return
			}
			for _, r := range idx {
				v := col[r]
				k := int((v - min) * scale)
				if k < 0 {
					k = 0
				}
				if k > last {
					k = last
				}
				bv := bval[k]
				cell := int(base[k])
				if v >= bv {
					cell++
				}
				if v > bv {
					cell++
				}
				if cell < 0 {
					cell = cellOf(b, v)
				}
				flat[cell*nc+int(classes[r])]++
			}
			return
		}
	}
	counts := h.Counts
	cell := -1
	if idx == nil {
		for r, v := range col {
			if cell < 0 || !cellContains(b, cell, v) {
				cell = cellOf(b, v)
			}
			counts[cell][classes[r]]++
		}
		return
	}
	for _, r := range idx {
		v := col[r]
		if cell < 0 || !cellContains(b, cell, v) {
			cell = cellOf(b, v)
		}
		counts[cell][classes[r]]++
	}
}

// AddBatchW registers w occurrences (w may be negative: deletions in the
// dynamic environment) of (col[r], classes[r]) for every row r in idx, or
// for every row of col when idx is nil. Cell resolution is identical to
// AddBatch — the same bucket index, the same pinned top cell for NaN — so
// AddBatchW(..., -1) after AddBatch(...) restores every count exactly.
func (h *Histogram) AddBatchW(col []float64, classes []int32, idx []int32, w int64) {
	if w == 1 {
		h.AddBatch(col, classes, idx)
		return
	}
	b := h.Boundaries
	if flat, nc := h.flat, h.classes; flat != nil {
		switch len(b) {
		case 0:
			if idx == nil {
				for r := range col {
					flat[classes[r]] += w
				}
				return
			}
			for _, r := range idx {
				flat[classes[r]] += w
			}
			return
		case 1:
			b0 := b[0]
			if idx == nil {
				for r, v := range col {
					cell := 0
					if v == b0 {
						cell = 1
					} else if v > b0 || v != v {
						cell = 2
					}
					flat[cell*nc+int(classes[r])] += w
				}
				return
			}
			for _, r := range idx {
				v := col[r]
				cell := 0
				if v == b0 {
					cell = 1
				} else if v > b0 || v != v {
					cell = 2
				}
				flat[cell*nc+int(classes[r])] += w
			}
			return
		}
		if h.bidx == nil {
			h.bidx = buildBucketIndex(b)
		}
		if bval := h.bidx.bval; len(bval) > 0 {
			min, scale := h.bidx.min, h.bidx.scale
			base := h.bidx.base[:len(bval)]
			last := len(bval) - 1
			nanCell := 2 * len(b)
			if idx == nil {
				classes := classes[:len(col)]
				for r, v := range col {
					k := int((v - min) * scale)
					if k < 0 {
						k = 0
					}
					if k > last {
						k = last
					}
					bv := bval[k]
					cell := int(base[k])
					if v >= bv {
						cell++
					}
					if v > bv {
						cell++
					}
					if v != v {
						cell = nanCell
					}
					if cell < 0 {
						cell = cellOf(b, v)
					}
					flat[cell*nc+int(classes[r])] += w
				}
				return
			}
			for _, r := range idx {
				v := col[r]
				k := int((v - min) * scale)
				if k < 0 {
					k = 0
				}
				if k > last {
					k = last
				}
				bv := bval[k]
				cell := int(base[k])
				if v >= bv {
					cell++
				}
				if v > bv {
					cell++
				}
				if v != v {
					cell = nanCell
				}
				if cell < 0 {
					cell = cellOf(b, v)
				}
				flat[cell*nc+int(classes[r])] += w
			}
			return
		}
	}
	counts := h.Counts
	cell := -1
	if idx == nil {
		for r, v := range col {
			if cell < 0 || !cellContains(b, cell, v) {
				cell = cellOf(b, v)
			}
			counts[cell][classes[r]] += w
		}
		return
	}
	for _, r := range idx {
		v := col[r]
		if cell < 0 || !cellContains(b, cell, v) {
			cell = cellOf(b, v)
		}
		counts[cell][classes[r]] += w
	}
}

// cellContains reports whether v falls in cell over boundaries b — the
// seed test that lets AddBatch skip the binary search for runs of values
// landing in one cell.
func cellContains(b []float64, cell int, v float64) bool {
	if cell&1 == 1 {
		return v == b[cell/2] // atom
	}
	i := cell / 2 // interior (b[i-1], b[i]), unbounded at the ends
	if i > 0 && v <= b[i-1] {
		return false
	}
	return i >= len(b) || v < b[i]
}

// cellOf computes CellOf with the binary search inlined; the search is
// identical to sort.SearchFloat64s (smallest i with b[i] >= v), so the
// result matches CellOf bit for bit.
func cellOf(b []float64, v float64) int {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(b) && b[lo] == v {
		return 2*lo + 1 // atom
	}
	return 2 * lo // interior
}

// NumCells returns the cell count.
func (h *Histogram) NumCells() int { return len(h.Counts) }

// CellTotal returns the number of tuples in a cell.
func (h *Histogram) CellTotal(cell int) int64 {
	var s int64
	for _, c := range h.Counts[cell] {
		s += c
	}
	return s
}

// StampPoints returns the cumulative class counts at the cell edges:
// stamps[c] is the stamp point just below cell c, and stamps[c+1] the one
// at its upper edge; stamps[0] is all-zero and the final entry equals the
// family's class totals. For an atom cell c at boundary b, stamps[c+1] is
// exactly the stamp point of the split X <= b.
func (h *Histogram) StampPoints() [][]int64 {
	k := 0
	if len(h.Counts) > 0 {
		k = len(h.Counts[0])
	}
	stamps := make([][]int64, len(h.Counts)+1)
	backing := make([]int64, (len(h.Counts)+1)*k)
	stamps[0] = backing[:k]
	cum := make([]int64, k)
	for c := range h.Counts {
		for j, v := range h.Counts[c] {
			cum[j] += v
		}
		row := backing[(c+1)*k : (c+2)*k]
		copy(row, cum)
		stamps[c+1] = row
	}
	return stamps
}

// Merge adds o's cell counts into h. Both histograms must have been built
// over the same boundaries (cells correspond by index); used to combine
// per-worker shards of a partitioned cleanup scan.
func (h *Histogram) Merge(o *Histogram) {
	for c, row := range o.Counts {
		dst := h.Counts[c]
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Reset zeroes all counts, keeping the boundaries.
func (h *Histogram) Reset() {
	for _, row := range h.Counts {
		for i := range row {
			row[i] = 0
		}
	}
}
