package discretize

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/boatml/boat/internal/hull"
	"github.com/boatml/boat/internal/split"
)

// rampAVC builds an AVC-set where class 0 dominates below mid and class 1
// above — a single sharp impurity minimum at mid.
func rampAVC(nv int, mid float64) (*split.NumericAVC, []int64) {
	avc := &split.NumericAVC{}
	totals := []int64{0, 0}
	for i := 0; i < nv; i++ {
		v := float64(i)
		row := []int64{0, 0}
		if v <= mid {
			row[0] = 10
			row[1] = 1
		} else {
			row[0] = 1
			row[1] = 10
		}
		avc.Values = append(avc.Values, v)
		avc.Counts = append(avc.Counts, row)
		totals[0] += row[0]
		totals[1] += row[1]
	}
	return avc, totals
}

func bestQuality(avc *split.NumericAVC, totals []int64) float64 {
	return split.BestNumericSplit(split.Gini, 0, avc, totals).Quality
}

func TestBoundariesSortedDistinctSubset(t *testing.T) {
	avc, totals := rampAVC(60, 30)
	est := bestQuality(avc, totals)
	bounds := Boundaries(split.Gini, avc, totals, est, 32)
	if len(bounds) == 0 {
		t.Fatal("no boundaries")
	}
	values := map[float64]bool{}
	for _, v := range avc.Values {
		values[v] = true
	}
	for i, b := range bounds {
		if !values[b] {
			t.Errorf("boundary %v is not an observed value", b)
		}
		if i > 0 && bounds[i-1] >= b {
			t.Errorf("boundaries not strictly increasing at %d", i)
		}
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Error("boundaries unsorted")
	}
}

func TestBoundariesDenseNearMinimum(t *testing.T) {
	avc, totals := rampAVC(100, 50)
	est := bestQuality(avc, totals)
	bounds := Boundaries(split.Gini, avc, totals, est, 64)
	// The region right around the minimum must be covered by nearby
	// boundaries: at least one boundary within distance 2 of the minimum.
	closest := math.Inf(1)
	for _, b := range bounds {
		if d := math.Abs(b - 50); d < closest {
			closest = d
		}
	}
	if closest > 2 {
		t.Errorf("closest boundary to the impurity minimum is %v away (bounds=%v)", closest, bounds)
	}
}

func TestBoundariesDegenerate(t *testing.T) {
	// Single value: the value itself becomes the closing boundary so the
	// unbounded cells stay empty on the build data.
	avc := &split.NumericAVC{Values: []float64{5}, Counts: [][]int64{{3, 3}}}
	if got := Boundaries(split.Gini, avc, []int64{3, 3}, 0.1, 8); len(got) != 1 || got[0] != 5 {
		t.Errorf("single-value AVC boundaries = %v, want [5]", got)
	}
	// Empty AVC.
	if got := Boundaries(split.Gini, &split.NumericAVC{}, []int64{0, 0}, 0.1, 8); got != nil {
		t.Errorf("empty AVC boundaries = %v", got)
	}
}

func TestBoundariesGuaranteeVerifiableBuckets(t *testing.T) {
	// Core soundness property the BOAT verification relies on: with the
	// produced boundaries, every non-empty interior cell's corner lower
	// bound stays above the estimated minimum (here the exact minimum),
	// and the atoms cover the rest exactly — so no false alarms on the
	// very data the discretization was built from.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		avc := &split.NumericAVC{}
		totals := []int64{0, 0}
		nv := 30 + rng.Intn(40)
		for i := 0; i < nv; i++ {
			row := []int64{int64(rng.Intn(10)), int64(rng.Intn(10))}
			if row[0]+row[1] == 0 {
				row[0] = 1
			}
			avc.Values = append(avc.Values, float64(i))
			avc.Counts = append(avc.Counts, row)
			totals[0] += row[0]
			totals[1] += row[1]
		}
		best := split.BestNumericSplit(split.Gini, 0, avc, totals)
		if !best.Found {
			continue
		}
		bounds := Boundaries(split.Gini, avc, totals, best.Quality, 0)
		h := NewHistogram(bounds, 2)
		for i, v := range avc.Values {
			for c, cnt := range avc.Counts[i] {
				h.Add(v, c, cnt)
			}
		}
		stamps := h.StampPoints()
		for cell := 0; cell < h.NumCells(); cell++ {
			if h.IsAtom(cell) || h.CellTotal(cell) == 0 {
				continue
			}
			lb := hull.LowerBound(split.Gini, stamps[cell], stamps[cell+1], totals)
			if lb < best.Quality {
				t.Fatalf("trial %d: interior cell %d bound %v below exact min %v",
					trial, cell, lb, best.Quality)
			}
		}
	}
}

func TestInsertBoundaries(t *testing.T) {
	got := InsertBoundaries([]float64{1, 5, 9}, 5, 3, 9, 12)
	want := []float64{1, 3, 5, 9, 12}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if got := InsertBoundaries(nil, 7); len(got) != 1 || got[0] != 7 {
		t.Errorf("insert into nil: %v", got)
	}
}

func TestHistogramCells(t *testing.T) {
	h := NewHistogram([]float64{10, 20}, 2)
	if h.NumCells() != 5 {
		t.Fatalf("cells = %d, want 5", h.NumCells())
	}
	cases := []struct {
		v    float64
		cell int
	}{
		{5, 0}, {10, 1}, {15, 2}, {20, 3}, {25, 4},
	}
	for _, tc := range cases {
		if got := h.CellOf(tc.v); got != tc.cell {
			t.Errorf("CellOf(%v) = %d, want %d", tc.v, got, tc.cell)
		}
	}
	if !h.IsAtom(1) || h.IsAtom(2) {
		t.Error("atom detection broken")
	}
	if h.AtomValue(1) != 10 || h.AtomValue(3) != 20 {
		t.Error("atom values wrong")
	}
	if !math.IsInf(h.CellLowerEdge(0), -1) || h.CellLowerEdge(2) != 10 {
		t.Error("lower edges wrong")
	}
	if !math.IsInf(h.CellUpperEdge(4), 1) || h.CellUpperEdge(2) != 20 {
		t.Error("upper edges wrong")
	}
	if h.CellLowerEdge(1) != 10 || h.CellUpperEdge(1) != 10 {
		t.Error("atom edges wrong")
	}
}

func TestHistogramStampPoints(t *testing.T) {
	h := NewHistogram([]float64{10}, 2)
	h.Add(5, 0, 3)  // cell 0
	h.Add(10, 1, 2) // atom cell 1
	h.Add(11, 0, 1) // cell 2
	stamps := h.StampPoints()
	if len(stamps) != 4 {
		t.Fatalf("stamps len = %d", len(stamps))
	}
	want := [][]int64{{0, 0}, {3, 0}, {3, 2}, {4, 2}}
	for i := range want {
		for c := range want[i] {
			if stamps[i][c] != want[i][c] {
				t.Fatalf("stamps = %v, want %v", stamps, want)
			}
		}
	}
	// The stamp after an atom is the exact partition of X <= boundary.
	if stamps[2][0] != 3 || stamps[2][1] != 2 {
		t.Error("atom stamp wrong")
	}
}

func TestHistogramNegativeAndReset(t *testing.T) {
	h := NewHistogram([]float64{10}, 2)
	h.Add(5, 0, 1)
	h.Add(5, 0, -1)
	if h.CellTotal(0) != 0 {
		t.Error("negative add did not cancel")
	}
	h.Add(15, 1, 4)
	h.Reset()
	for c := 0; c < h.NumCells(); c++ {
		if h.CellTotal(c) != 0 {
			t.Error("reset left counts")
		}
	}
	if len(h.Boundaries) != 1 {
		t.Error("reset dropped boundaries")
	}
}

func TestHistogramNoBoundaries(t *testing.T) {
	h := NewHistogram(nil, 3)
	if h.NumCells() != 1 {
		t.Fatalf("cells = %d, want 1", h.NumCells())
	}
	h.Add(123, 2, 1)
	if h.CellTotal(0) != 1 {
		t.Error("single-cell histogram broken")
	}
	stamps := h.StampPoints()
	if len(stamps) != 2 || stamps[1][2] != 1 {
		t.Errorf("stamps = %v", stamps)
	}
}
