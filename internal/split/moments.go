package split

import (
	"math"
	"math/bits"

	"github.com/boatml/boat/internal/data"
)

// NumMoments holds the exact per-class sufficient statistics of one
// numeric attribute over a family: tuple counts, value sums, and sums of
// squared values. Sums are exact integers (attribute values are truncated
// to int64; the synthetic workloads only produce integral values), and the
// squared sums use 128-bit accumulation, so the statistics are
// order-independent and support exact deletion — the properties the
// moment-based split verification in BOAT relies on.
type NumMoments struct {
	Count []int64
	Sum   []int64
	SqHi  []uint64 // high 64 bits of the per-class sum of squares
	SqLo  []uint64 // low 64 bits
}

// NewNumMoments allocates zeroed moments for classCount classes.
func NewNumMoments(classCount int) *NumMoments {
	return &NumMoments{
		Count: make([]int64, classCount),
		Sum:   make([]int64, classCount),
		SqHi:  make([]uint64, classCount),
		SqLo:  make([]uint64, classCount),
	}
}

// Add registers w occurrences (w may be ±1) of value v with the class.
func (m *NumMoments) Add(v float64, class int, w int64) {
	iv := int64(v)
	m.Count[class] += w
	m.Sum[class] += w * iv
	var a uint64
	if iv < 0 {
		a = uint64(-iv)
	} else {
		a = uint64(iv)
	}
	hi, lo := bits.Mul64(a, a)
	mag := w
	if mag < 0 {
		mag = -mag
	}
	if hi == 0 {
		// Common case: v^2 fits in 64 bits, so v^2 * |w| fits in 128 bits.
		hi, lo = bits.Mul64(lo, uint64(mag))
		mag = 1
	}
	for ; mag > 0; mag-- {
		if w >= 0 {
			var carry uint64
			m.SqLo[class], carry = bits.Add64(m.SqLo[class], lo, 0)
			m.SqHi[class], _ = bits.Add64(m.SqHi[class], hi, carry)
		} else {
			var borrow uint64
			m.SqLo[class], borrow = bits.Sub64(m.SqLo[class], lo, 0)
			m.SqHi[class], _ = bits.Sub64(m.SqHi[class], hi, borrow)
		}
	}
}

// AddBatch registers one occurrence of col[r] with class classes[r] for
// every row r in idx, or for every row of col when idx is nil. It is
// exactly equivalent to calling Add(col[r], int(classes[r]), 1) per row:
// with w = +1 the general 128-bit accumulation in Add reduces to a single
// add of the 128-bit square, which add1 inlines.
func (m *NumMoments) AddBatch(col []float64, classes []int32, idx []int32) {
	if idx == nil {
		for r, v := range col {
			m.add1(v, int(classes[r]))
		}
		return
	}
	for _, r := range idx {
		m.add1(col[r], int(classes[r]))
	}
}

// AddBatchW registers w occurrences (w may be negative) of col[r] with
// class classes[r] for every row r in idx, or for every row of col when
// idx is nil. Equivalent to Add(col[r], int(classes[r]), w) per row; the
// w = +1 case takes the inlined add1 fast path of AddBatch.
func (m *NumMoments) AddBatchW(col []float64, classes []int32, idx []int32, w int64) {
	if w == 1 {
		m.AddBatch(col, classes, idx)
		return
	}
	if idx == nil {
		for r, v := range col {
			m.Add(v, int(classes[r]), w)
		}
		return
	}
	for _, r := range idx {
		m.Add(col[r], int(classes[r]), w)
	}
}

// add1 is Add(v, class, 1).
func (m *NumMoments) add1(v float64, class int) {
	iv := int64(v)
	m.Count[class]++
	m.Sum[class] += iv
	a := uint64(iv)
	if iv < 0 {
		a = uint64(-iv)
	}
	hi, lo := bits.Mul64(a, a)
	var carry uint64
	m.SqLo[class], carry = bits.Add64(m.SqLo[class], lo, 0)
	m.SqHi[class], _ = bits.Add64(m.SqHi[class], hi, carry)
}

// Merge adds o's statistics into m. Because all sums are exact integers
// (128-bit for the squares), merging per-worker shards in any order yields
// bit-identical statistics to a single sequential scan.
func (m *NumMoments) Merge(o *NumMoments) {
	for c := range m.Count {
		m.Count[c] += o.Count[c]
		m.Sum[c] += o.Sum[c]
		var carry uint64
		m.SqLo[c], carry = bits.Add64(m.SqLo[c], o.SqLo[c], 0)
		m.SqHi[c], _ = bits.Add64(m.SqHi[c], o.SqHi[c], carry)
	}
}

// sq returns the per-class sum of squares as float64 (deterministic
// function of the exact 128-bit integer).
func (m *NumMoments) sq(class int) float64 {
	return float64(m.SqHi[class])*math.Exp2(64) + float64(m.SqLo[class])
}

// Moments is the complete constant-size sufficient-statistics view of a
// node's family for moment-based split selection methods: numeric moments
// per attribute plus the contingency tables (CatAVC) of the categorical
// attributes and the class totals.
type Moments struct {
	Schema      *data.Schema
	ClassTotals []int64
	Num         []*NumMoments // indexed by attribute; nil for categorical
	Cat         []*CatAVC     // indexed by attribute; nil for numeric
}

// NewMoments allocates zeroed moments for the schema.
func NewMoments(schema *data.Schema) *Moments {
	m := &Moments{
		Schema:      schema,
		ClassTotals: make([]int64, schema.ClassCount),
		Num:         make([]*NumMoments, len(schema.Attributes)),
		Cat:         make([]*CatAVC, len(schema.Attributes)),
	}
	for i, a := range schema.Attributes {
		if a.Kind == data.Numeric {
			m.Num[i] = NewNumMoments(schema.ClassCount)
		} else {
			m.Cat[i] = NewCatAVC(a.Cardinality, schema.ClassCount)
		}
	}
	return m
}

// Add registers w occurrences of tuple t (w = -1 implements deletion).
func (m *Moments) Add(t data.Tuple, w int64) {
	m.ClassTotals[t.Class] += w
	for i, a := range m.Schema.Attributes {
		if a.Kind == data.Numeric {
			m.Num[i].Add(t.Values[i], t.Class, w)
		} else {
			m.Cat[i].Add(int(t.Values[i]), t.Class, w)
		}
	}
}

// AddChunk registers one occurrence of every chunk row named by idx (all
// rows when idx is nil). Equivalent to Add(row, 1) per row, but applied
// column by column so each attribute's statistic stays hot across the
// whole batch.
func (m *Moments) AddChunk(ch *data.Chunk, idx []int32) {
	classes := ch.Classes()
	if idx == nil {
		for _, c := range classes {
			m.ClassTotals[c]++
		}
	} else {
		for _, r := range idx {
			m.ClassTotals[classes[r]]++
		}
	}
	for i, a := range m.Schema.Attributes {
		col := ch.Col(i)
		if a.Kind == data.Numeric {
			m.Num[i].AddBatch(col, classes, idx)
		} else {
			m.Cat[i].AddBatch(col, classes, idx)
		}
	}
}

// AddChunkW registers w occurrences (w = -1 implements deletion) of every
// chunk row named by idx (all rows when idx is nil). Equivalent to
// Add(row, w) per row, applied column by column like AddChunk; the
// streaming-update router uses it to absorb one signed chunk per node.
func (m *Moments) AddChunkW(ch *data.Chunk, idx []int32, w int64) {
	if w == 1 {
		m.AddChunk(ch, idx)
		return
	}
	classes := ch.Classes()
	if idx == nil {
		for _, c := range classes {
			m.ClassTotals[c] += w
		}
	} else {
		for _, r := range idx {
			m.ClassTotals[classes[r]] += w
		}
	}
	for i, a := range m.Schema.Attributes {
		col := ch.Col(i)
		if a.Kind == data.Numeric {
			m.Num[i].AddBatchW(col, classes, idx, w)
		} else {
			m.Cat[i].AddBatchW(col, classes, idx, w)
		}
	}
}

// Merge adds o's statistics into m; both must be over the same schema.
// Used to combine the per-worker shards of a partitioned cleanup scan.
func (m *Moments) Merge(o *Moments) {
	for c, v := range o.ClassTotals {
		m.ClassTotals[c] += v
	}
	for i := range m.Schema.Attributes {
		if m.Num[i] != nil {
			m.Num[i].Merge(o.Num[i])
		} else {
			m.Cat[i].Merge(o.Cat[i])
		}
	}
}

// Reset zeroes all statistics (used when a failed cleanup scan is
// restarted).
func (m *Moments) Reset() {
	for c := range m.ClassTotals {
		m.ClassTotals[c] = 0
	}
	for i := range m.Schema.Attributes {
		if nm := m.Num[i]; nm != nil {
			for c := range nm.Count {
				nm.Count[c], nm.Sum[c] = 0, 0
				nm.SqHi[c], nm.SqLo[c] = 0, 0
			}
		} else {
			m.Cat[i].Reset()
		}
	}
}

// MomentsFromStats derives the moments from a full AVC-group. Because the
// sums are exact integers, the result is identical to streaming the family
// through Moments.Add in any order.
func MomentsFromStats(stats *NodeStats) *Moments {
	m := NewMoments(stats.Schema)
	copy(m.ClassTotals, stats.ClassTotals)
	for i, a := range stats.Schema.Attributes {
		if a.Kind == data.Numeric {
			avc := stats.Num[i]
			for vi, v := range avc.Values {
				for class, c := range avc.Counts[vi] {
					if c != 0 {
						m.Num[i].Add(v, class, c)
					}
				}
			}
		} else {
			src := stats.Cat[i].Counts
			dst := m.Cat[i].Counts
			for c := range src {
				copy(dst[c], src[c])
			}
		}
	}
	return m
}
