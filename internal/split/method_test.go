package split

import (
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
)

func methodTestSchema() *data.Schema {
	return data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "y", Kind: data.Numeric},
		{Name: "c", Kind: data.Categorical, Cardinality: 4},
	}, 2)
}

// separableTuples: class 0 iff x <= 10, regardless of y and c.
func separableTuples(rng *rand.Rand, n int) []data.Tuple {
	out := make([]data.Tuple, n)
	for i := range out {
		x := float64(rng.Intn(20)) + 1
		class := 1
		if x <= 10 {
			class = 0
		}
		out[i] = data.Tuple{
			Values: []float64{x, float64(rng.Intn(100)), float64(rng.Intn(4))},
			Class:  class,
		}
	}
	return out
}

func TestImpurityMethodFindsSeparatingSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tuples := separableTuples(rng, 500)
	stats := BuildNodeStats(methodTestSchema(), tuples)
	for _, m := range []Method{NewGini(), NewEntropy()} {
		got := m.BestSplit(stats)
		if !got.Found || got.Attr != 0 || got.Kind != data.Numeric || got.Threshold != 10 {
			t.Errorf("%s: split %+v, want x <= 10", m.Name(), got)
		}
		if got.Quality != 0 {
			t.Errorf("%s: quality %v, want 0 for perfect split", m.Name(), got.Quality)
		}
	}
}

func TestBestSplitPureNode(t *testing.T) {
	tuples := make([]data.Tuple, 50)
	for i := range tuples {
		tuples[i] = data.Tuple{Values: []float64{float64(i), 1, 0}, Class: 0}
	}
	stats := BuildNodeStats(methodTestSchema(), tuples)
	got := NewGini().BestSplit(stats)
	// A pure node can still "split" with zero gain; builders stop on
	// purity before calling BestSplit, but the split itself must at least
	// carry the node impurity (0 here), never a negative value.
	if got.Found && got.Quality != 0 {
		t.Errorf("pure node split quality = %v", got.Quality)
	}
}

func TestBestSplitConstantAttributes(t *testing.T) {
	tuples := make([]data.Tuple, 50)
	for i := range tuples {
		tuples[i] = data.Tuple{Values: []float64{7, 7, 2}, Class: i % 2}
	}
	stats := BuildNodeStats(methodTestSchema(), tuples)
	got := NewGini().BestSplit(stats)
	if got.Found {
		t.Errorf("all-constant attributes produced split %+v", got)
	}
}

func TestBestNumericSplitCandidatesExcludeMax(t *testing.T) {
	avc := &NumericAVC{
		Values: []float64{1, 2, 3},
		Counts: [][]int64{{5, 0}, {0, 5}, {2, 2}},
	}
	got := BestNumericSplit(Gini, 0, avc, []int64{7, 7})
	if !got.Found {
		t.Fatal("no split found")
	}
	if got.Threshold == 3 {
		t.Error("split at the maximum value leaves an empty right side")
	}
}

func TestBestNumericSplitTieBreaksSmallestThreshold(t *testing.T) {
	// Symmetric data: splits at 1 and at 2 give identical quality; the
	// canonical choice is the smaller threshold.
	avc := &NumericAVC{
		Values: []float64{1, 2, 3},
		Counts: [][]int64{{4, 0}, {0, 0}, {0, 4}},
	}
	got := BestNumericSplit(Gini, 0, avc, []int64{4, 4})
	if got.Threshold != 1 {
		t.Errorf("threshold = %v, want 1 (tie-break)", got.Threshold)
	}
}

func TestBestSplitPrefersSmallerAttrOnTie(t *testing.T) {
	// x and y are identical columns: the tie must resolve to attr 0.
	schema := data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "y", Kind: data.Numeric},
	}, 2)
	var tuples []data.Tuple
	for i := 0; i < 40; i++ {
		v := float64(i % 4)
		class := 0
		if v >= 2 {
			class = 1
		}
		tuples = append(tuples, data.Tuple{Values: []float64{v, v}, Class: class})
	}
	got := NewGini().BestSplit(BuildNodeStats(schema, tuples))
	if got.Attr != 0 {
		t.Errorf("tie resolved to attr %d, want 0", got.Attr)
	}
}

func TestBestNumericSplitInIntervalMatchesFull(t *testing.T) {
	// Restricting to an interval that contains the global optimum must
	// reproduce the unrestricted search exactly.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 200
		tuples := separableTuples(rng, n)
		stats := BuildNodeStats(methodTestSchema(), tuples)
		avc := stats.Num[0]
		full := BestNumericSplit(Gini, 0, avc, stats.ClassTotals)
		if !full.Found {
			continue
		}
		lo := full.Threshold - 2
		hi := full.Threshold + 2
		baseLeft := make([]int64, 2)
		loObserved := false
		inAVC := &NumericAVC{}
		for i, v := range avc.Values {
			switch {
			case v < lo:
				for c, cnt := range avc.Counts[i] {
					baseLeft[c] += cnt
				}
			case v == lo:
				loObserved = true
				for c, cnt := range avc.Counts[i] {
					baseLeft[c] += cnt
				}
			case v <= hi:
				inAVC.Values = append(inAVC.Values, v)
				inAVC.Counts = append(inAVC.Counts, avc.Counts[i])
			}
		}
		got := BestNumericSplitInInterval(Gini, 0, baseLeft, loObserved, lo, inAVC, stats.ClassTotals)
		if !got.Found {
			t.Fatalf("trial %d: interval search found nothing", trial)
		}
		if got.Threshold != full.Threshold || got.Quality != full.Quality {
			t.Fatalf("trial %d: interval search %+v != full search %+v", trial, got, full)
		}
	}
}

func TestBestNumericSplitInIntervalEmptyStuckSet(t *testing.T) {
	// Only the lo candidate is available.
	got := BestNumericSplitInInterval(Gini, 0, []int64{3, 1}, true, 5.0,
		&NumericAVC{}, []int64{5, 5})
	if !got.Found || got.Threshold != 5.0 {
		t.Fatalf("got %+v, want split at lo=5", got)
	}
	// lo not observed and nothing stuck: no candidates.
	got = BestNumericSplitInInterval(Gini, 0, []int64{3, 1}, false, 5.0,
		&NumericAVC{}, []int64{5, 5})
	if got.Found {
		t.Fatalf("expected no candidates, got %+v", got)
	}
}

func TestAVCBuilderMatchesBuildNodeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tuples := separableTuples(rng, 300)
	schema := methodTestSchema()
	b := NewAVCBuilder(schema)
	for _, tp := range tuples {
		b.Add(tp)
	}
	a := b.Stats()
	c := BuildNodeStats(schema, tuples)
	for i := range a.ClassTotals {
		if a.ClassTotals[i] != c.ClassTotals[i] {
			t.Fatal("class totals differ")
		}
	}
	for attr := range schema.Attributes {
		if a.Num[attr] == nil {
			continue
		}
		x, y := a.Num[attr], c.Num[attr]
		if len(x.Values) != len(y.Values) {
			t.Fatalf("attr %d: %d vs %d distinct values", attr, len(x.Values), len(y.Values))
		}
		for i := range x.Values {
			if x.Values[i] != y.Values[i] {
				t.Fatalf("attr %d value %d differs", attr, i)
			}
			for cl := range x.Counts[i] {
				if x.Counts[i][cl] != y.Counts[i][cl] {
					t.Fatalf("attr %d counts differ", attr)
				}
			}
		}
	}
	if a.Entries() != c.Entries() {
		t.Errorf("entries %d vs %d", a.Entries(), c.Entries())
	}
}

func TestAVCBuilderRestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tuples := separableTuples(rng, 100)
	schema := methodTestSchema()
	b := NewAVCBuilderFor(schema, []int{1})
	for _, tp := range tuples {
		b.Add(tp)
	}
	stats := b.Stats()
	if stats.Num[0] != nil || stats.Cat[2] != nil {
		t.Error("restricted builder materialized excluded attributes")
	}
	if stats.Num[1] == nil || stats.Num[1].Entries() == 0 {
		t.Error("restricted builder missing included attribute")
	}
	if stats.Total() != 100 {
		t.Errorf("total %d", stats.Total())
	}
}
