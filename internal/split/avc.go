package split

import (
	"math"
	"slices"
	"sort"

	"github.com/boatml/boat/internal/data"
)

// NumericAVC is the AVC-set (Attribute-Value, Class-label counts) of one
// numeric predictor attribute over a family of tuples, in ascending value
// order: Counts[i][j] is the number of tuples with value Values[i] and
// class j. Introduced by the RainForest framework [GRG98]; sufficient for
// exact impurity-based split selection on the attribute.
type NumericAVC struct {
	Values []float64
	Counts [][]int64
}

// Entries returns the number of distinct attribute values.
func (a *NumericAVC) Entries() int { return len(a.Values) }

// CatAVC is the AVC-set of one categorical attribute: Counts[c][j] is the
// number of tuples with category code c and class j. flat is the
// contiguous backing of Counts (flat[c*classes+j] == Counts[c][j]),
// addressed directly by AddBatch to skip the per-row double
// indirection.
type CatAVC struct {
	Counts [][]int64

	flat    []int64
	classes int
}

// Entries returns the domain cardinality.
func (a *CatAVC) Entries() int { return len(a.Counts) }

// NewCatAVC allocates a zeroed categorical AVC-set.
func NewCatAVC(cardinality, classCount int) *CatAVC {
	counts := make([][]int64, cardinality)
	backing := make([]int64, cardinality*classCount)
	for c := range counts {
		counts[c] = backing[c*classCount : (c+1)*classCount]
	}
	return &CatAVC{Counts: counts, flat: backing, classes: classCount}
}

// Add registers w occurrences of (code, class); w may be negative for
// deletions in the dynamic environment.
func (a *CatAVC) Add(code, class int, w int64) { a.Counts[code][class] += w }

// AddBatch registers one occurrence of (col[r], classes[r]) for every row
// r in idx, or for every row of col when idx is nil. It is exactly
// equivalent to calling Add(int(col[r]), int(classes[r]), 1) per row; the
// batched form keeps the count matrix hot across a whole columnar chunk.
func (a *CatAVC) AddBatch(col []float64, classes []int32, idx []int32) {
	if flat, nc := a.flat, a.classes; flat != nil {
		if idx == nil {
			cls := classes[:len(col)]
			for r, v := range col {
				flat[int(v)*nc+int(cls[r])]++
			}
			return
		}
		for _, r := range idx {
			flat[int(col[r])*nc+int(classes[r])]++
		}
		return
	}
	counts := a.Counts
	if idx == nil {
		for r, v := range col {
			counts[int(v)][classes[r]]++
		}
		return
	}
	for _, r := range idx {
		counts[int(col[r])][classes[r]]++
	}
}

// AddBatchW registers w occurrences (w may be negative: deletions in the
// dynamic environment) of (col[r], classes[r]) for every row r in idx, or
// for every row of col when idx is nil. Equivalent to Add per row; the
// streaming-update router uses it to apply one signed chunk in a single
// pass over the count matrix.
func (a *CatAVC) AddBatchW(col []float64, classes []int32, idx []int32, w int64) {
	if w == 1 {
		a.AddBatch(col, classes, idx)
		return
	}
	if flat, nc := a.flat, a.classes; flat != nil {
		if idx == nil {
			cls := classes[:len(col)]
			for r, v := range col {
				flat[int(v)*nc+int(cls[r])] += w
			}
			return
		}
		for _, r := range idx {
			flat[int(col[r])*nc+int(classes[r])] += w
		}
		return
	}
	if idx == nil {
		for r, v := range col {
			a.Counts[int(v)][classes[r]] += w
		}
		return
	}
	for _, r := range idx {
		a.Counts[int(col[r])][classes[r]] += w
	}
}

// Merge adds o's counts into a. The two AVC-sets must cover the same
// domain; used to combine per-worker shards of a partitioned scan.
func (a *CatAVC) Merge(o *CatAVC) {
	for c, row := range o.Counts {
		dst := a.Counts[c]
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Reset zeroes all counts (used when a failed cleanup scan is restarted).
func (a *CatAVC) Reset() {
	for _, row := range a.Counts {
		for j := range row {
			row[j] = 0
		}
	}
}

// NodeStats is the AVC-group of a node: the AVC-sets of every predictor
// attribute plus the class totals of the family. It is the complete input
// to impurity-based split selection.
type NodeStats struct {
	Schema      *data.Schema
	ClassTotals []int64
	Num         []*NumericAVC // indexed by attribute; nil for categorical attributes
	Cat         []*CatAVC     // indexed by attribute; nil for numeric attributes
}

// Total returns the family size |F_n|.
func (s *NodeStats) Total() int64 {
	var n int64
	for _, v := range s.ClassTotals {
		n += v
	}
	return n
}

// Entries returns the total number of AVC entries in the group, the
// quantity RainForest's memory management is driven by.
func (s *NodeStats) Entries() int64 {
	var n int64
	for _, a := range s.Num {
		if a != nil {
			n += int64(a.Entries())
		}
	}
	for _, a := range s.Cat {
		if a != nil {
			n += int64(a.Entries())
		}
	}
	return n
}

// avcBuilder accumulates AVC-sets incrementally (used by the RainForest
// scans, where tuples arrive in file order).
type avcBuilder struct {
	schema      *data.Schema
	classTotals []int64
	num         []map[float64][]int64
	// nan holds the per-attribute class counts of NaN (missing) values,
	// kept out of the maps: a NaN map key is unreachable (NaN != NaN in
	// lookups), so each NaN Add would strand a fresh entry.
	nan [][]int64
	cat []*CatAVC
}

// NewAVCBuilder creates an empty accumulating AVC-group for a node.
func NewAVCBuilder(schema *data.Schema) *AVCBuilder {
	attrs := make([]int, len(schema.Attributes))
	for i := range attrs {
		attrs[i] = i
	}
	return NewAVCBuilderFor(schema, attrs)
}

// NewAVCBuilderFor creates an AVC builder restricted to a subset of
// attributes (used by RF-Vertical to process one attribute group per
// scan); other attributes are ignored by Add and absent from Stats.
func NewAVCBuilderFor(schema *data.Schema, attrs []int) *AVCBuilder {
	b := &AVCBuilder{avcBuilder{
		schema:      schema,
		classTotals: make([]int64, schema.ClassCount),
		num:         make([]map[float64][]int64, len(schema.Attributes)),
		nan:         make([][]int64, len(schema.Attributes)),
		cat:         make([]*CatAVC, len(schema.Attributes)),
	}}
	for _, i := range attrs {
		if schema.Attributes[i].Kind == data.Numeric {
			b.num[i] = make(map[float64][]int64)
		} else {
			b.cat[i] = NewCatAVC(schema.Attributes[i].Cardinality, schema.ClassCount)
		}
	}
	return b
}

// AVCBuilder incrementally accumulates the AVC-group of one node.
type AVCBuilder struct {
	avcBuilder
}

// Add registers one tuple.
func (b *AVCBuilder) Add(t data.Tuple) {
	b.classTotals[t.Class]++
	for i := range b.schema.Attributes {
		if m := b.num[i]; m != nil {
			v := t.Values[i]
			if v != v {
				if b.nan[i] == nil {
					b.nan[i] = make([]int64, b.schema.ClassCount)
				}
				b.nan[i][t.Class]++
				continue
			}
			row := m[v]
			if row == nil {
				row = make([]int64, b.schema.ClassCount)
				m[v] = row
			}
			row[t.Class]++
		} else if c := b.cat[i]; c != nil {
			c.Add(int(t.Values[i]), t.Class, 1)
		}
	}
}

// Entries returns the current AVC entry count (distinct numeric values
// seen plus categorical domain sizes).
func (b *AVCBuilder) Entries() int64 {
	var n int64
	for i, m := range b.num {
		if m != nil {
			n += int64(len(m))
			if b.nan[i] != nil {
				n++
			}
		}
	}
	for _, c := range b.cat {
		if c != nil {
			n += int64(c.Entries())
		}
	}
	return n
}

// Stats finalizes the accumulated counts into a NodeStats (sorting the
// numeric AVC-sets by value).
func (b *AVCBuilder) Stats() *NodeStats {
	s := &NodeStats{
		Schema:      b.schema,
		ClassTotals: b.classTotals,
		Num:         make([]*NumericAVC, len(b.schema.Attributes)),
		Cat:         b.cat,
	}
	for i, m := range b.num {
		if m == nil {
			continue
		}
		avc := &NumericAVC{
			Values: make([]float64, 0, len(m)+1),
			Counts: make([][]int64, 0, len(m)+1),
		}
		for v := range m {
			avc.Values = append(avc.Values, v)
		}
		sort.Float64s(avc.Values)
		for _, v := range avc.Values {
			avc.Counts = append(avc.Counts, m[v])
		}
		if b.nan[i] != nil {
			// The canonical AVC order places the single NaN (missing
			// value) entry last; see cmpValue.
			avc.Values = append(avc.Values, math.NaN())
			avc.Counts = append(avc.Counts, b.nan[i])
		}
		s.Num[i] = avc
	}
	return s
}

// BuildNodeStats computes the complete AVC-group of an in-memory family.
// Numeric AVC-sets are built by sorting (value, class) pairs rather than
// hashing — the in-memory reference builder and the bootstrap trees call
// this at every node, so it is the hottest path of the sampling phase.
func BuildNodeStats(schema *data.Schema, tuples []data.Tuple) *NodeStats {
	k := schema.ClassCount
	s := &NodeStats{
		Schema:      schema,
		ClassTotals: make([]int64, k),
		Num:         make([]*NumericAVC, len(schema.Attributes)),
		Cat:         make([]*CatAVC, len(schema.Attributes)),
	}
	for _, t := range tuples {
		s.ClassTotals[t.Class]++
	}
	pairs := make([]valueClass, len(tuples))
	for i, a := range schema.Attributes {
		if a.Kind == data.Categorical {
			avc := NewCatAVC(a.Cardinality, k)
			for _, t := range tuples {
				avc.Counts[int(t.Values[i])][t.Class]++
			}
			s.Cat[i] = avc
			continue
		}
		for j, t := range tuples {
			pairs[j] = valueClass{v: t.Values[i], class: t.Class}
		}
		slices.SortFunc(pairs, func(a, b valueClass) int {
			return cmpValue(a.v, b.v)
		})
		distinct := 0
		for j := range pairs {
			if j == 0 || !SameValue(pairs[j].v, pairs[j-1].v) {
				distinct++
			}
		}
		avc := &NumericAVC{
			Values: make([]float64, 0, distinct),
			Counts: make([][]int64, 0, distinct),
		}
		backing := make([]int64, distinct*k)
		var row []int64
		for j := range pairs {
			if j == 0 || !SameValue(pairs[j].v, pairs[j-1].v) {
				row = backing[len(avc.Values)*k : (len(avc.Values)+1)*k]
				avc.Values = append(avc.Values, pairs[j].v)
				avc.Counts = append(avc.Counts, row)
			}
			row[pairs[j].class]++
		}
		s.Num[i] = avc
	}
	return s
}

type valueClass struct {
	v     float64
	class int
}

// SameValue reports whether two attribute values are the same AVC entry:
// IEEE equality, except that all NaNs (missing values) collapse into one
// entry. Every AVC construction path uses it for run detection so a family
// containing NaNs yields exactly one NaN entry, never one per tuple.
func SameValue(a, b float64) bool { return a == b || (a != a && b != b) }

// cmpValue is the canonical AVC value order: ascending, with the single
// NaN entry last. Placing NaN after every real value means the candidate
// enumeration of BestNumericSplit (all entries but the last) never emits a
// NaN threshold, while the largest real value becomes a legal candidate
// exactly when NaN tuples exist to its right — matching the pinned
// missing-value edge (NaN routes right) used by routing and inference.
func cmpValue(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b: // equal reals
		return 0
	case a == a: // b is NaN: a sorts first
		return -1
	case b == b: // a is NaN: b sorts first
		return 1
	default: // both NaN
		return 0
	}
}
