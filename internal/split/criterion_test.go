package split

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImpurityPureAndUniform(t *testing.T) {
	for _, crit := range []Criterion{Gini, Entropy} {
		if got := crit.Impurity([]int64{100, 0}); got != 0 {
			t.Errorf("%v: pure node impurity = %v", crit, got)
		}
		if got := crit.Impurity([]int64{0, 0}); got != 0 {
			t.Errorf("%v: empty node impurity = %v", crit, got)
		}
	}
	if got := Gini.Impurity([]int64{50, 50}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("gini uniform 2-class = %v, want 0.5", got)
	}
	if got := Entropy.Impurity([]int64{50, 50}); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("entropy uniform 2-class = %v, want 1", got)
	}
	if got := Gini.Impurity([]int64{10, 10, 10, 10}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("gini uniform 4-class = %v, want 0.75", got)
	}
	if got := Entropy.Impurity([]int64{10, 10, 10, 10}); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("entropy uniform 4-class = %v, want 2", got)
	}
}

func TestImpurityMaximizedAtUniform(t *testing.T) {
	// Property: impurity of any distribution <= impurity of uniform.
	f := func(a, b, c uint16) bool {
		counts := []int64{int64(a), int64(b), int64(c)}
		var n int64
		for _, v := range counts {
			n += v
		}
		if n == 0 {
			return true
		}
		for _, crit := range []Criterion{Gini, Entropy} {
			if crit.Impurity(counts) > crit.Impurity([]int64{n, n, n})+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionQualityInvalidSides(t *testing.T) {
	for _, crit := range []Criterion{Gini, Entropy} {
		if q := crit.PartitionQuality([]int64{0, 0}, []int64{5, 5}); !math.IsInf(q, 1) {
			t.Errorf("%v: empty left side quality = %v, want +Inf", crit, q)
		}
		if q := crit.PartitionQuality([]int64{5, 5}, []int64{0, 0}); !math.IsInf(q, 1) {
			t.Errorf("%v: empty right side quality = %v, want +Inf", crit, q)
		}
	}
}

func TestPartitionQualityNeverExceedsNodeImpurity(t *testing.T) {
	// Concavity consequence: a split never increases weighted impurity.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		k := 2 + rng.Intn(3)
		left := make([]int64, k)
		right := make([]int64, k)
		totals := make([]int64, k)
		for i := 0; i < k; i++ {
			left[i] = int64(rng.Intn(100))
			right[i] = int64(rng.Intn(100))
			totals[i] = left[i] + right[i]
		}
		for _, crit := range []Criterion{Gini, Entropy} {
			q := crit.PartitionQuality(left, right)
			if math.IsInf(q, 1) {
				continue
			}
			if node := crit.Impurity(totals); q > node+1e-9 {
				t.Fatalf("%v: partition quality %v exceeds node impurity %v (left=%v right=%v)",
					crit, q, node, left, right)
			}
		}
	}
}

func TestPartitionQualityPerfectSplit(t *testing.T) {
	q := Gini.PartitionQuality([]int64{50, 0}, []int64{0, 50})
	if q != 0 {
		t.Errorf("perfectly separating split quality = %v, want 0", q)
	}
}

func TestQualityFromLeftMatchesPartitionQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(3)
		left := make([]int64, k)
		totals := make([]int64, k)
		right := make([]int64, k)
		for i := 0; i < k; i++ {
			left[i] = int64(rng.Intn(50))
			right[i] = int64(rng.Intn(50))
			totals[i] = left[i] + right[i]
		}
		for _, crit := range []Criterion{Gini, Entropy} {
			a := crit.QualityFromLeft(left, totals, nil)
			b := crit.PartitionQuality(left, right)
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("%v: QualityFromLeft %v != PartitionQuality %v", crit, a, b)
			}
		}
	}
}

func TestCriterionDeterminism(t *testing.T) {
	// Bit-identical results for identical inputs — the foundation of the
	// exact-tree guarantee.
	left := []int64{123, 456, 789}
	right := []int64{321, 654, 987}
	for _, crit := range []Criterion{Gini, Entropy} {
		a := crit.PartitionQuality(left, right)
		b := crit.PartitionQuality(left, right)
		if a != b {
			t.Errorf("%v nondeterministic", crit)
		}
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" {
		t.Error("criterion names wrong")
	}
}
