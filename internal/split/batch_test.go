package split

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
)

// randomBatch builds a random value column and class column, plus an
// index subset covering about half the rows.
func randomBatch(rng *rand.Rand, n, cardinality, classes int, numeric bool) (col []float64, cls []int32, idx []int32) {
	col = make([]float64, n)
	cls = make([]int32, n)
	for i := range col {
		if numeric {
			// Mix of signs and magnitudes, including values whose squares
			// need the 128-bit path, and repeated values.
			switch rng.Intn(4) {
			case 0:
				col[i] = float64(rng.Intn(20) - 10)
			case 1:
				col[i] = float64(rng.Int63n(1 << 40))
			case 2:
				col[i] = -float64(rng.Int63n(1 << 40))
			default:
				col[i] = float64(rng.Intn(5))
			}
		} else {
			col[i] = float64(rng.Intn(cardinality))
		}
		cls[i] = int32(rng.Intn(classes))
	}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			idx = append(idx, int32(i))
		}
	}
	return col, cls, idx
}

// TestCatAVCAddBatchEquivalence: AddBatch must equal a loop of Add, for
// both the all-rows (idx == nil) and the index-subset form.
func TestCatAVCAddBatchEquivalence(t *testing.T) {
	const classes = 3
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(300)
		card := 1 + rng.Intn(16)
		col, cls, idx := randomBatch(rng, n, card, classes, false)

		batch := NewCatAVC(card, classes)
		loop := NewCatAVC(card, classes)
		batch.AddBatch(col, cls, nil)
		for r, v := range col {
			loop.Add(int(v), int(cls[r]), 1)
		}
		requireSameCatAVC(t, fmt.Sprintf("trial %d all-rows", trial), batch, loop)

		batch = NewCatAVC(card, classes)
		loop = NewCatAVC(card, classes)
		batch.AddBatch(col, cls, idx)
		for _, r := range idx {
			loop.Add(int(col[r]), int(cls[r]), 1)
		}
		requireSameCatAVC(t, fmt.Sprintf("trial %d subset", trial), batch, loop)
	}
}

func requireSameCatAVC(t *testing.T, label string, a, b *CatAVC) {
	t.Helper()
	for c := range a.Counts {
		for j := range a.Counts[c] {
			if a.Counts[c][j] != b.Counts[c][j] {
				t.Fatalf("%s: counts[%d][%d] = %d, want %d", label, c, j, a.Counts[c][j], b.Counts[c][j])
			}
		}
	}
}

// TestNumMomentsAddBatchEquivalence: AddBatch must reproduce Add(v, c, 1)
// bit for bit, including the 128-bit squared sums.
func TestNumMomentsAddBatchEquivalence(t *testing.T) {
	const classes = 4
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(1000 + int64(trial)))
		n := 1 + rng.Intn(300)
		col, cls, idx := randomBatch(rng, n, 0, classes, true)

		batch := NewNumMoments(classes)
		loop := NewNumMoments(classes)
		batch.AddBatch(col, cls, nil)
		for r, v := range col {
			loop.Add(v, int(cls[r]), 1)
		}
		requireSameMoments(t, fmt.Sprintf("trial %d all-rows", trial), batch, loop)

		batch = NewNumMoments(classes)
		loop = NewNumMoments(classes)
		batch.AddBatch(col, cls, idx)
		for _, r := range idx {
			loop.Add(col[r], int(cls[r]), 1)
		}
		requireSameMoments(t, fmt.Sprintf("trial %d subset", trial), batch, loop)
	}
}

func requireSameMoments(t *testing.T, label string, a, b *NumMoments) {
	t.Helper()
	for c := range a.Count {
		if a.Count[c] != b.Count[c] || a.Sum[c] != b.Sum[c] ||
			a.SqHi[c] != b.SqHi[c] || a.SqLo[c] != b.SqLo[c] {
			t.Fatalf("%s: class %d: (%d,%d,%d,%d) want (%d,%d,%d,%d)", label, c,
				a.Count[c], a.Sum[c], a.SqHi[c], a.SqLo[c],
				b.Count[c], b.Sum[c], b.SqHi[c], b.SqLo[c])
		}
	}
}

// TestMomentsAddChunkEquivalence: the chunk-level kernel must equal a
// loop of Moments.Add over the same rows.
func TestMomentsAddChunkEquivalence(t *testing.T) {
	schema := data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "c", Kind: data.Categorical, Cardinality: 5},
		{Name: "y", Kind: data.Numeric},
	}, 3)
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(2000 + int64(trial)))
		n := 1 + rng.Intn(200)
		ch := data.NewChunk(3, n)
		var tuples []data.Tuple
		for i := 0; i < n; i++ {
			tp := data.Tuple{Values: []float64{
				float64(rng.Intn(1000) - 500),
				float64(rng.Intn(5)),
				float64(rng.Int63n(1 << 30)),
			}, Class: rng.Intn(3)}
			tuples = append(tuples, tp)
			ch.AppendTuple(tp)
		}
		var idx []int32
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				idx = append(idx, int32(i))
			}
		}

		batch := NewMoments(schema)
		loop := NewMoments(schema)
		batch.AddChunk(ch, nil)
		for _, tp := range tuples {
			loop.Add(tp, 1)
		}
		requireSameMomentsGroup(t, fmt.Sprintf("trial %d all-rows", trial), batch, loop)

		batch = NewMoments(schema)
		loop = NewMoments(schema)
		batch.AddChunk(ch, idx)
		for _, r := range idx {
			loop.Add(tuples[r], 1)
		}
		requireSameMomentsGroup(t, fmt.Sprintf("trial %d subset", trial), batch, loop)
	}
}

func requireSameMomentsGroup(t *testing.T, label string, a, b *Moments) {
	t.Helper()
	for c := range a.ClassTotals {
		if a.ClassTotals[c] != b.ClassTotals[c] {
			t.Fatalf("%s: class total %d: %d want %d", label, c, a.ClassTotals[c], b.ClassTotals[c])
		}
	}
	for i := range a.Schema.Attributes {
		if a.Num[i] != nil {
			requireSameMoments(t, fmt.Sprintf("%s attr %d", label, i), a.Num[i], b.Num[i])
		} else {
			requireSameCatAVC(t, fmt.Sprintf("%s attr %d", label, i), a.Cat[i], b.Cat[i])
		}
	}
}

// BenchmarkAVCBatch compares the batched count kernels against the
// per-row Add loops they replace.
func BenchmarkAVCBatch(b *testing.B) {
	const n, card, classes = 4096, 16, 4
	rng := rand.New(rand.NewSource(1))
	catCol, cls, _ := randomBatch(rng, n, card, classes, false)
	numCol, _, _ := randomBatch(rng, n, 0, classes, true)

	b.Run("CatAVC/loop", func(b *testing.B) {
		avc := NewCatAVC(card, classes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r, v := range catCol {
				avc.Add(int(v), int(cls[r]), 1)
			}
		}
	})
	b.Run("CatAVC/batch", func(b *testing.B) {
		avc := NewCatAVC(card, classes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			avc.AddBatch(catCol, cls, nil)
		}
	})
	b.Run("NumMoments/loop", func(b *testing.B) {
		m := NewNumMoments(classes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r, v := range numCol {
				m.Add(v, int(cls[r]), 1)
			}
		}
	})
	b.Run("NumMoments/batch", func(b *testing.B) {
		m := NewNumMoments(classes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.AddBatch(numCol, cls, nil)
		}
	})
}
