package split

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/boatml/boat/internal/data"
)

func TestNumMomentsAddRemove(t *testing.T) {
	nm := NewNumMoments(2)
	nm.Add(5, 0, 1)
	nm.Add(7, 0, 1)
	nm.Add(5, 0, -1)
	if nm.Count[0] != 1 || nm.Sum[0] != 7 {
		t.Fatalf("count=%d sum=%d", nm.Count[0], nm.Sum[0])
	}
	if nm.SqHi[0] != 0 || nm.SqLo[0] != 49 {
		t.Fatalf("sumsq = (%d,%d), want (0,49)", nm.SqHi[0], nm.SqLo[0])
	}
}

func TestNumMomentsWeightedAdd(t *testing.T) {
	a := NewNumMoments(1)
	a.Add(12, 0, 5)
	b := NewNumMoments(1)
	for i := 0; i < 5; i++ {
		b.Add(12, 0, 1)
	}
	if a.Count[0] != b.Count[0] || a.Sum[0] != b.Sum[0] ||
		a.SqHi[0] != b.SqHi[0] || a.SqLo[0] != b.SqLo[0] {
		t.Fatalf("weighted add differs from repeated add: %+v vs %+v", a, b)
	}
}

func TestNumMomentsLargeValues128Bit(t *testing.T) {
	// 3 billion squared exceeds int64; the 128-bit accumulator must not
	// overflow or lose the exact value.
	nm := NewNumMoments(1)
	v := 5_000_000_000.0 // v^2 = 2.5e19 > 2^64-1
	nm.Add(v, 0, 1)
	nm.Add(v, 0, 1)
	if nm.SqHi[0] == 0 {
		t.Fatal("high word unused; accumulator overflowed silently")
	}
	nm.Add(v, 0, -1)
	nm.Add(v, 0, -1)
	if nm.SqHi[0] != 0 || nm.SqLo[0] != 0 || nm.Sum[0] != 0 {
		t.Fatalf("removal did not restore zero: %+v", nm)
	}
}

func TestNumMomentsOrderIndependence(t *testing.T) {
	f := func(vals []uint32, seed int64) bool {
		if len(vals) == 0 {
			return true
		}
		a := NewNumMoments(1)
		for _, v := range vals {
			a.Add(float64(v), 0, 1)
		}
		b := NewNumMoments(1)
		rng := rand.New(rand.NewSource(seed))
		for _, i := range rng.Perm(len(vals)) {
			b.Add(float64(vals[i]), 0, 1)
		}
		return a.Sum[0] == b.Sum[0] && a.SqHi[0] == b.SqHi[0] && a.SqLo[0] == b.SqLo[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMomentsFromStatsEqualsStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	schema := methodTestSchema()
	tuples := separableTuples(rng, 500)
	stats := BuildNodeStats(schema, tuples)
	fromStats := MomentsFromStats(stats)
	streamed := NewMoments(schema)
	for _, tp := range tuples {
		streamed.Add(tp, 1)
	}
	for i := range schema.Attributes {
		if fromStats.Num[i] == nil {
			for c := range streamed.Cat[i].Counts {
				for j := range streamed.Cat[i].Counts[c] {
					if fromStats.Cat[i].Counts[c][j] != streamed.Cat[i].Counts[c][j] {
						t.Fatalf("cat attr %d differs", i)
					}
				}
			}
			continue
		}
		a, b := fromStats.Num[i], streamed.Num[i]
		for c := 0; c < schema.ClassCount; c++ {
			if a.Count[c] != b.Count[c] || a.Sum[c] != b.Sum[c] ||
				a.SqHi[c] != b.SqHi[c] || a.SqLo[c] != b.SqLo[c] {
				t.Fatalf("attr %d class %d moments differ: %+v vs %+v", i, c, a, b)
			}
		}
	}
}

func TestMomentsDeletionInverse(t *testing.T) {
	schema := methodTestSchema()
	rng := rand.New(rand.NewSource(37))
	tuples := separableTuples(rng, 100)
	m := NewMoments(schema)
	for _, tp := range tuples {
		m.Add(tp, 1)
	}
	for _, tp := range tuples {
		m.Add(tp, -1)
	}
	for _, c := range m.ClassTotals {
		if c != 0 {
			t.Fatal("class totals not restored to zero")
		}
	}
	for i := range schema.Attributes {
		if nm := m.Num[i]; nm != nil {
			for c := range nm.Count {
				if nm.Count[c] != 0 || nm.Sum[c] != 0 || nm.SqHi[c] != 0 || nm.SqLo[c] != 0 {
					t.Fatalf("attr %d class %d not zeroed: %+v", i, c, nm)
				}
			}
		}
	}
}

func TestCatAVCAddNegative(t *testing.T) {
	avc := NewCatAVC(3, 2)
	avc.Add(1, 0, 2)
	avc.Add(1, 0, -1)
	if avc.Counts[1][0] != 1 {
		t.Errorf("count = %d, want 1", avc.Counts[1][0])
	}
	if avc.Entries() != 3 {
		t.Errorf("entries = %d", avc.Entries())
	}
}

func TestTupleDataKinds(t *testing.T) {
	tp := data.Tuple{Values: []float64{1.5, 3}, Class: 1}
	if tp.Num(0) != 1.5 || tp.Cat(1) != 3 {
		t.Error("accessors broken")
	}
}
