package split

import (
	"strings"
	"testing"

	"github.com/boatml/boat/internal/data"
)

func TestSplitLeftNumeric(t *testing.T) {
	s := Split{Found: true, Attr: 0, Kind: data.Numeric, Threshold: 10}
	if !s.Left(data.Tuple{Values: []float64{10}}) {
		t.Error("value == threshold must route left (X <= x)")
	}
	if s.Left(data.Tuple{Values: []float64{10.0001}}) {
		t.Error("value above threshold routed left")
	}
}

func TestSplitLeftCategorical(t *testing.T) {
	s := Split{Found: true, Attr: 1, Kind: data.Categorical, Subset: 0b1010}
	if !s.Left(data.Tuple{Values: []float64{0, 3}}) {
		t.Error("code 3 should be in subset {1,3}")
	}
	if s.Left(data.Tuple{Values: []float64{0, 2}}) {
		t.Error("code 2 should not be in subset {1,3}")
	}
}

func TestSplitBetterOrdering(t *testing.T) {
	num := func(attr int, thr, q float64) Split {
		return Split{Found: true, Attr: attr, Kind: data.Numeric, Threshold: thr, Quality: q}
	}
	cat := func(attr int, mask uint64, q float64) Split {
		return Split{Found: true, Attr: attr, Kind: data.Categorical, Subset: mask, Quality: q}
	}
	cases := []struct {
		name string
		a, b Split
		want bool
	}{
		{"lower quality wins", num(3, 5, 0.1), num(0, 1, 0.2), true},
		{"higher quality loses", num(0, 1, 0.2), num(3, 5, 0.1), false},
		{"tie: smaller attr", num(1, 5, 0.1), num(2, 1, 0.1), true},
		{"tie: same attr smaller threshold", num(1, 3, 0.1), num(1, 5, 0.1), true},
		{"tie: same attr smaller subset", cat(1, 0b01, 0.1), cat(1, 0b11, 0.1), true},
		{"found beats not-found", num(5, 9, 0.9), NoSplit(), true},
		{"not-found never better", NoSplit(), num(5, 9, 0.9), false},
		{"not-found vs not-found", NoSplit(), NoSplit(), false},
	}
	for _, tc := range cases {
		if got := tc.a.Better(tc.b); got != tc.want {
			t.Errorf("%s: Better = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSplitEqual(t *testing.T) {
	a := Split{Found: true, Attr: 1, Kind: data.Numeric, Threshold: 5, Quality: 0.3}
	b := a
	b.Quality = 0.9 // quality ignored
	if !a.Equal(b) {
		t.Error("quality must not affect Equal")
	}
	b = a
	b.Threshold = 6
	if a.Equal(b) {
		t.Error("different thresholds reported equal")
	}
	if !NoSplit().Equal(NoSplit()) {
		t.Error("two leaves should be equal")
	}
	if a.Equal(NoSplit()) {
		t.Error("split equal to leaf")
	}
}

func TestSplitStrings(t *testing.T) {
	schema := data.MustSchema([]data.Attribute{
		{Name: "age", Kind: data.Numeric},
		{Name: "color", Kind: data.Categorical, Cardinality: 4},
	}, 2)
	n := Split{Found: true, Attr: 0, Kind: data.Numeric, Threshold: 39}
	if got := n.DescribeWith(schema); got != "age <= 39" {
		t.Errorf("DescribeWith = %q", got)
	}
	c := Split{Found: true, Attr: 1, Kind: data.Categorical, Subset: 0b0101}
	if got := c.DescribeWith(schema); got != "color in {0,2}" {
		t.Errorf("DescribeWith = %q", got)
	}
	if !strings.Contains(c.String(), "attr1") {
		t.Errorf("String = %q", c.String())
	}
	if NoSplit().String() != "<leaf>" {
		t.Error("leaf String wrong")
	}
}
