package split

import (
	"math"
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
)

func TestQuestPicksPredictiveAttribute(t *testing.T) {
	// x separates the classes, y is noise.
	schema := data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "y", Kind: data.Numeric},
	}, 2)
	rng := rand.New(rand.NewSource(3))
	var tuples []data.Tuple
	for i := 0; i < 400; i++ {
		class := i % 2
		x := float64(10 + class*100 + rng.Intn(20))
		tuples = append(tuples, data.Tuple{Values: []float64{x, float64(rng.Intn(1000))}, Class: class})
	}
	got := NewQuestLike().BestSplit(BuildNodeStats(schema, tuples))
	if !got.Found || got.Attr != 0 {
		t.Fatalf("split %+v, want attribute x", got)
	}
	// Threshold must separate the class means (~20 and ~120).
	if got.Threshold < 30 || got.Threshold > 110 {
		t.Errorf("threshold %v outside the between-means region", got.Threshold)
	}
}

func TestQuestPicksCategoricalWhenStronger(t *testing.T) {
	schema := data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "c", Kind: data.Categorical, Cardinality: 3},
	}, 2)
	rng := rand.New(rand.NewSource(4))
	var tuples []data.Tuple
	for i := 0; i < 600; i++ {
		class := i % 2
		code := class // perfectly predictive
		tuples = append(tuples, data.Tuple{
			Values: []float64{float64(rng.Intn(100)), float64(code)},
			Class:  class,
		})
	}
	got := NewQuestLike().BestSplit(BuildNodeStats(schema, tuples))
	if !got.Found || got.Attr != 1 || got.Kind != data.Categorical {
		t.Fatalf("split %+v, want categorical attribute", got)
	}
	if got.Subset != 0b001 {
		t.Errorf("subset %b, want {0}", got.Subset)
	}
}

func TestQuestNoSignalIsLeaf(t *testing.T) {
	schema := data.MustSchema([]data.Attribute{{Name: "x", Kind: data.Numeric}}, 2)
	var tuples []data.Tuple
	for i := 0; i < 100; i++ {
		tuples = append(tuples, data.Tuple{Values: []float64{42}, Class: i % 2})
	}
	if got := NewQuestLike().BestSplit(BuildNodeStats(schema, tuples)); got.Found {
		t.Errorf("constant attribute produced split %+v", got)
	}
}

func TestQuestThresholdAlwaysValid(t *testing.T) {
	// Property: both sides of the QUEST split are non-empty.
	rng := rand.New(rand.NewSource(5))
	schema := data.MustSchema([]data.Attribute{{Name: "x", Kind: data.Numeric}}, 2)
	for trial := 0; trial < 200; trial++ {
		n := 10 + rng.Intn(100)
		var tuples []data.Tuple
		for i := 0; i < n; i++ {
			tuples = append(tuples, data.Tuple{
				Values: []float64{float64(rng.Intn(30))},
				Class:  rng.Intn(2),
			})
		}
		got := NewQuestLike().BestSplit(BuildNodeStats(schema, tuples))
		if !got.Found {
			continue
		}
		var left, right int
		for _, tp := range tuples {
			if got.Left(tp) {
				left++
			} else {
				right++
			}
		}
		if left == 0 || right == 0 {
			t.Fatalf("trial %d: split %+v produces empty side (%d/%d)", trial, got, left, right)
		}
	}
}

func TestQuestMomentsEquivalence(t *testing.T) {
	// BestSplit (from AVC stats) and BestSplitFromMoments (from streamed
	// moments) must agree exactly — this is what BOAT's exact
	// verification of moment-based methods rests on.
	rng := rand.New(rand.NewSource(6))
	schema := methodTestSchema()
	for trial := 0; trial < 50; trial++ {
		tuples := separableTuples(rng, 300)
		stats := BuildNodeStats(schema, tuples)
		q := NewQuestLike()
		a := q.BestSplit(stats)
		m := NewMoments(schema)
		// Stream in a scrambled order to prove order-independence.
		perm := rng.Perm(len(tuples))
		for _, i := range perm {
			m.Add(tuples[i], 1)
		}
		b := q.BestSplitFromMoments(m)
		if !a.Equal(b) {
			t.Fatalf("trial %d: AVC-derived %+v != moment-derived %+v", trial, a, b)
		}
	}
}

func TestAnovaFPerfectSeparation(t *testing.T) {
	nm := NewNumMoments(2)
	for i := 0; i < 10; i++ {
		nm.Add(1, 0, 1)
		nm.Add(100, 1, 1)
	}
	if f := anovaF(nm, []int64{10, 10}); !math.IsInf(f, 1) {
		t.Errorf("perfectly separated ANOVA F = %v, want +Inf", f)
	}
}

func TestAnovaFNoSignal(t *testing.T) {
	nm := NewNumMoments(2)
	for i := 0; i < 10; i++ {
		nm.Add(float64(i), 0, 1)
		nm.Add(float64(i), 1, 1)
	}
	if f := anovaF(nm, []int64{10, 10}); f != 0 {
		t.Errorf("identical distributions ANOVA F = %v, want 0", f)
	}
}

func TestMeanSquareContingency(t *testing.T) {
	// Perfect association.
	avc := NewCatAVC(2, 2)
	avc.Counts[0] = []int64{10, 0}
	avc.Counts[1] = []int64{0, 10}
	strong := meanSquareContingency(avc, []int64{10, 10})
	// No association.
	flat := NewCatAVC(2, 2)
	flat.Counts[0] = []int64{5, 5}
	flat.Counts[1] = []int64{5, 5}
	weak := meanSquareContingency(flat, []int64{10, 10})
	if strong <= weak {
		t.Errorf("strong association %v <= weak %v", strong, weak)
	}
	if weak != 0 {
		t.Errorf("independent table score = %v, want 0", weak)
	}
	// Degenerate: single row.
	single := NewCatAVC(2, 2)
	single.Counts[0] = []int64{5, 5}
	if s := meanSquareContingency(single, []int64{5, 5}); s != 0 {
		t.Errorf("single-category score = %v, want 0", s)
	}
}
