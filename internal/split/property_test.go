package split

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/boatml/boat/internal/data"
)

// randSplit derives an arbitrary split from fuzz inputs.
func randSplit(attr uint8, kindBit bool, thr float64, subset uint64, q float64, found bool) Split {
	kind := data.Numeric
	if kindBit {
		kind = data.Categorical
	}
	return Split{
		Found:     found,
		Attr:      int(attr % 8),
		Kind:      kind,
		Threshold: thr,
		Subset:    subset,
		Quality:   q,
	}
}

// TestBetterIsStrictOrder: Better must be irreflexive and asymmetric —
// the properties the deterministic tie-breaking rests on.
func TestBetterIsStrictOrder(t *testing.T) {
	f := func(a1 uint8, k1 bool, t1 float64, s1 uint64, q1 float64, f1 bool,
		a2 uint8, k2 bool, t2 float64, s2 uint64, q2 float64, f2 bool) bool {
		a := randSplit(a1, k1, t1, s1, q1, f1)
		b := randSplit(a2, k2, t2, s2, q2, f2)
		if a.Better(a) || b.Better(b) {
			return false // irreflexive
		}
		if a.Better(b) && b.Better(a) {
			return false // asymmetric
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBetterTotalOnDistinct: for same-kind splits with distinct ordering
// keys, exactly one direction of Better holds (totality of the canonical
// order).
func TestBetterTotalOnDistinct(t *testing.T) {
	f := func(a1, a2 uint8, t1, t2 float64, q1, q2 float64) bool {
		a := randSplit(a1, false, t1, 0, q1, true)
		b := randSplit(a2, false, t2, 0, q2, true)
		if a.Quality == b.Quality && a.Attr == b.Attr && a.Threshold == b.Threshold {
			return !a.Better(b) && !b.Better(a)
		}
		return a.Better(b) != b.Better(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBestNumericSplitOptimal: the returned split has minimal quality over
// every candidate (brute-force check on random AVCs).
func TestBestNumericSplitOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.Intn(20)
		k := 2 + rng.Intn(3)
		avc := &NumericAVC{}
		totals := make([]int64, k)
		for v := 0; v < nv; v++ {
			row := make([]int64, k)
			nonzero := false
			for c := range row {
				row[c] = int64(rng.Intn(5))
				if row[c] > 0 {
					nonzero = true
				}
			}
			if !nonzero {
				row[rng.Intn(k)] = 1
			}
			for c := range row {
				totals[c] += row[c]
			}
			avc.Values = append(avc.Values, float64(v))
			avc.Counts = append(avc.Counts, row)
		}
		for _, crit := range []Criterion{Gini, Entropy} {
			got := BestNumericSplit(crit, 0, avc, totals)
			if !got.Found {
				t.Fatalf("trial %d: no split on %d values", trial, nv)
			}
			left := make([]int64, k)
			for i := 0; i < nv-1; i++ {
				for c, cnt := range avc.Counts[i] {
					left[c] += cnt
				}
				q := crit.QualityFromLeft(left, totals, nil)
				if q < got.Quality {
					t.Fatalf("trial %d %v: candidate at %v has quality %v < chosen %v",
						trial, crit, avc.Values[i], q, got.Quality)
				}
				if q == got.Quality && avc.Values[i] < got.Threshold {
					t.Fatalf("trial %d %v: tie at smaller threshold %v not chosen",
						trial, crit, avc.Values[i])
				}
			}
		}
	}
}

// TestCanonicalMaskInvolution: canonicalizing a mask or its complement
// yields the same representative.
func TestCanonicalMaskInvolution(t *testing.T) {
	f := func(mask uint64, p uint8) bool {
		// Build a present set from the low 1+p%10 codes.
		m := int(p%10) + 2
		present := make([]int, m)
		var full uint64
		for i := 0; i < m; i++ {
			present[i] = i
			full |= 1 << uint(i)
		}
		mask &= full
		if mask == 0 || mask == full {
			return true // not a proper subset; out of scope
		}
		a := canonicalMask(mask, present)
		b := canonicalMask(full&^mask, present)
		return a == b && a&1 != 0 // contains code 0 (the smallest present)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQualityScaleInvariance: multiplying all counts by a constant leaves
// the quality unchanged (it is a function of proportions).
func TestQualityScaleInvariance(t *testing.T) {
	f := func(a, b, c, d uint8, mRaw uint8) bool {
		m := int64(mRaw%7) + 2
		l1 := []int64{int64(a), int64(b)}
		r1 := []int64{int64(c), int64(d)}
		l2 := []int64{int64(a) * m, int64(b) * m}
		r2 := []int64{int64(c) * m, int64(d) * m}
		q1 := Gini.PartitionQuality(l1, r1)
		q2 := Gini.PartitionQuality(l2, r2)
		if q1 != q2 {
			diff := q1 - q2
			if diff < 0 {
				diff = -diff
			}
			return diff < 1e-12
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
