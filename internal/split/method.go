package split

import (
	"math"

	"github.com/boatml/boat/internal/data"
)

// Method is a split selection method CL in the paper's sense: given the
// complete statistics of a node's family it either produces the splitting
// criterion or declares the node a leaf. Implementations must be
// deterministic pure functions of the statistics.
type Method interface {
	Name() string
	BestSplit(stats *NodeStats) Split
}

// ImpurityBased is implemented by methods that minimize a concave impurity
// function of the class-count vectors. BOAT exploits the concavity (via
// the stamp-point corner lower bound of Lemma 3.1) to verify the coarse
// splitting criteria of these methods.
type ImpurityBased interface {
	Method
	Criterion() Criterion
}

// MomentBased is implemented by methods whose splitting criterion is an
// exact function of constant-size sufficient statistics (per-class value
// moments for numeric attributes and contingency tables for categorical
// ones). BOAT verifies these methods by exact recomputation: the moments
// are fully mergeable and are gathered during the cleanup scan.
type MomentBased interface {
	Method
	BestSplitFromMoments(m *Moments) Split
}

// ---------------------------------------------------------------------------
// Impurity-based methods

// ImpurityMethod selects the split minimizing the weighted impurity under
// the configured criterion, examining every predictor attribute
// (Section 2.2 of the paper). NewGini / NewEntropy are the CART- and
// C4.5-style instantiations.
type ImpurityMethod struct {
	crit Criterion
	name string
}

// NewGini returns the gini-index split selection method (CART).
func NewGini() *ImpurityMethod { return &ImpurityMethod{crit: Gini, name: "gini"} }

// NewEntropy returns the entropy split selection method.
func NewEntropy() *ImpurityMethod { return &ImpurityMethod{crit: Entropy, name: "entropy"} }

// Name implements Method.
func (m *ImpurityMethod) Name() string { return m.name }

// Criterion implements ImpurityBased.
func (m *ImpurityMethod) Criterion() Criterion { return m.crit }

// BestSplit implements Method: exact search over all attributes with the
// canonical deterministic tie-break.
func (m *ImpurityMethod) BestSplit(stats *NodeStats) Split {
	best := NoSplit()
	for attr := range stats.Schema.Attributes {
		var cand Split
		if avc := stats.Num[attr]; avc != nil {
			cand = BestNumericSplit(m.crit, attr, avc, stats.ClassTotals)
		} else if cat := stats.Cat[attr]; cat != nil {
			cand = BestCategoricalSplit(m.crit, attr, cat, stats.ClassTotals)
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// BestNumericSplit finds the best split X <= x over all candidate split
// points x (the observed attribute values, excluding the largest) of one
// numeric attribute, from its AVC-set.
func BestNumericSplit(crit Criterion, attr int, avc *NumericAVC, classTotals []int64) Split {
	k := len(classTotals)
	left := make([]int64, k)
	scratch := make([]int64, k)
	best := NoSplit()
	for i := 0; i < len(avc.Values)-1; i++ {
		for j, c := range avc.Counts[i] {
			left[j] += c
		}
		q := crit.QualityFromLeft(left, classTotals, scratch)
		cand := Split{
			Found:     true,
			Attr:      attr,
			Kind:      data.Numeric,
			Threshold: avc.Values[i],
			Quality:   q,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// IntervalCandidate is one candidate split point inside a confidence
// interval: the threshold value and the exact left class counts of the
// induced partition over the full family.
type IntervalCandidate struct {
	Threshold float64
	Left      []int64
}

// BestNumericSplitInInterval finds the best split of a numeric attribute
// restricted to candidate split points inside the coarse criterion's
// confidence interval [lo, hi]. It implements the cleanup-phase
// computation of Section 3.3:
//
//   - baseLeft are the exact class counts of tuples with X <= lo
//     (maintained by dedicated counters during the cleanup scan),
//   - loObserved tells whether the value lo itself occurs in the family
//     (making X <= lo a legal candidate with partition baseLeft),
//   - inAVC is the AVC-set of the in-interval tuples S_n = i_n(F_n),
//     i.e. lo < X <= hi, ascending,
//   - classTotals are the class counts of the whole family F_n.
//
// Candidates are X <= lo (if observed) and X <= v for every observed
// in-interval value v except that the overall largest observed value of
// the attribute cannot be a candidate; the caller guarantees hi is not the
// attribute maximum by construction (there are always tuples right of the
// interval when hi is an interior bootstrap split point) — if the right
// side is empty the candidate is discarded by PartitionQuality = +Inf.
func BestNumericSplitInInterval(crit Criterion, attr int, baseLeft []int64, loObserved bool,
	lo float64, inAVC *NumericAVC, classTotals []int64) Split {
	k := len(classTotals)
	left := make([]int64, k)
	copy(left, baseLeft)
	scratch := make([]int64, k)
	best := NoSplit()
	consider := func(threshold float64) {
		q := crit.QualityFromLeft(left, classTotals, scratch)
		if math.IsInf(q, 1) {
			return
		}
		cand := Split{Found: true, Attr: attr, Kind: data.Numeric, Threshold: threshold, Quality: q}
		if cand.Better(best) {
			best = cand
		}
	}
	if loObserved {
		consider(lo)
	}
	for i, v := range inAVC.Values {
		for j, c := range inAVC.Counts[i] {
			left[j] += c
		}
		consider(v)
	}
	return best
}
