package split

import (
	"sort"

	"github.com/boatml/boat/internal/data"
)

// exhaustiveSubsetLimit bounds the number of *present* categories for
// which multi-class subset search is exhaustive (2^(m-1) subsets). Beyond
// the limit a deterministic greedy local search is used; because every
// builder shares this single implementation, trees remain identical across
// algorithms regardless. Two-class problems always use the exact
// Breiman sorting theorem instead.
const exhaustiveSubsetLimit = 12

// BestCategoricalSplit finds the best binary split X in Y of one
// categorical attribute from its AVC-set.
//
// The returned subset is canonical: it only contains categories present in
// the family (absent categories route right), and it contains the
// smallest present category code — between a subset and its complement
// (which induce mirror partitions) the canonical representative is unique.
//
// For two class labels the search is exact via Breiman's theorem: sort the
// present categories by their class-0 proportion; some optimal subset is a
// prefix of that order. For more classes the search is exhaustive up to
// exhaustiveSubsetLimit present categories and greedy beyond.
func BestCategoricalSplit(crit Criterion, attr int, avc *CatAVC, classTotals []int64) Split {
	k := len(classTotals)
	present := make([]int, 0, len(avc.Counts))
	for c, row := range avc.Counts {
		var n int64
		for _, v := range row {
			n += v
		}
		if n > 0 {
			present = append(present, c)
		}
	}
	if len(present) < 2 {
		return NoSplit()
	}

	var bestMask uint64
	bestQ := -1.0
	found := false
	left := make([]int64, k)
	scratch := make([]int64, k)

	evalMask := func(mask uint64) {
		for j := range left {
			left[j] = 0
		}
		for _, c := range present {
			if mask&(1<<uint(c)) != 0 {
				for j, v := range avc.Counts[c] {
					left[j] += v
				}
			}
		}
		q := crit.QualityFromLeft(left, classTotals, scratch)
		if !found || q < bestQ || (q == bestQ && mask < bestMask) {
			found = true
			bestQ = q
			bestMask = mask
		}
	}

	if k == 2 {
		// Breiman's theorem: sort by class-0 proportion (ties by code) and
		// evaluate the |present|-1 proper prefixes.
		order := make([]int, len(present))
		copy(order, present)
		prop := func(c int) float64 {
			row := avc.Counts[c]
			return float64(row[0]) / float64(row[0]+row[1])
		}
		sort.Slice(order, func(i, j int) bool {
			pi, pj := prop(order[i]), prop(order[j])
			if pi != pj {
				return pi < pj
			}
			return order[i] < order[j]
		})
		var mask uint64
		for i := 0; i < len(order)-1; i++ {
			mask |= 1 << uint(order[i])
			evalMask(canonicalMask(mask, present))
		}
	} else if len(present) <= exhaustiveSubsetLimit {
		// Exhaustive: enumerate subsets of present categories that contain
		// the smallest present code (canonical form) and are proper.
		m := len(present)
		for bitsSet := uint64(1); bitsSet < 1<<uint(m-1); bitsSet++ {
			// bitsSet indexes present[1..m-1]; present[0] is always in.
			mask := uint64(1) << uint(present[0])
			for i := 1; i < m; i++ {
				if bitsSet&(1<<uint(i-1)) != 0 {
					mask |= 1 << uint(present[i])
				}
			}
			evalMask(mask)
		}
		// The singleton {present[0]} as well.
		evalMask(1 << uint(present[0]))
	} else {
		// Greedy local search: start from the best single-category move
		// ordering by first-class proportion (as in the 2-class case) and
		// then hill-climb by single-category swaps. Deterministic.
		order := make([]int, len(present))
		copy(order, present)
		prop := func(c int) float64 {
			row := avc.Counts[c]
			var n int64
			for _, v := range row {
				n += v
			}
			return float64(row[0]) / float64(n)
		}
		sort.Slice(order, func(i, j int) bool {
			pi, pj := prop(order[i]), prop(order[j])
			if pi != pj {
				return pi < pj
			}
			return order[i] < order[j]
		})
		var mask uint64
		for i := 0; i < len(order)-1; i++ {
			mask |= 1 << uint(order[i])
			evalMask(canonicalMask(mask, present))
		}
		improved := true
		for improved {
			improved = false
			cur := bestMask
			for _, c := range present {
				cand := cur ^ (1 << uint(c))
				if cand == 0 || !properSubset(cand, present) {
					continue
				}
				before := bestQ
				evalMask(canonicalMask(cand, present))
				if bestQ < before {
					improved = true
				}
			}
		}
	}

	if !found {
		return NoSplit()
	}
	return Split{
		Found:   true,
		Attr:    attr,
		Kind:    data.Categorical,
		Subset:  bestMask,
		Quality: bestQ,
	}
}

// canonicalMask returns mask or its complement over the present
// categories, whichever contains the smallest present code.
func canonicalMask(mask uint64, present []int) uint64 {
	var full uint64
	for _, c := range present {
		full |= 1 << uint(c)
	}
	mask &= full
	if mask&(1<<uint(present[0])) != 0 {
		return mask
	}
	return full &^ mask
}

// properSubset reports whether mask is a nonempty proper subset of the
// present categories.
func properSubset(mask uint64, present []int) bool {
	var full uint64
	for _, c := range present {
		full |= 1 << uint(c)
	}
	mask &= full
	return mask != 0 && mask != full
}
