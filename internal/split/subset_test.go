package split

import (
	"math/bits"
	"math/rand"
	"testing"
)

// bruteForceBestSubset enumerates every canonical proper subset of the
// present categories and returns the minimal quality and its mask under
// the canonical order.
func bruteForceBestSubset(crit Criterion, avc *CatAVC, classTotals []int64) (uint64, float64, bool) {
	var present []int
	for c, row := range avc.Counts {
		var n int64
		for _, v := range row {
			n += v
		}
		if n > 0 {
			present = append(present, c)
		}
	}
	if len(present) < 2 {
		return 0, 0, false
	}
	k := len(classTotals)
	bestQ := 0.0
	var bestMask uint64
	found := false
	m := len(present)
	for sel := uint64(1); sel < 1<<uint(m); sel++ {
		if sel == (1<<uint(m))-1 {
			continue // full set
		}
		var mask uint64
		for i := 0; i < m; i++ {
			if sel&(1<<uint(i)) != 0 {
				mask |= 1 << uint(present[i])
			}
		}
		// Canonical: must contain the smallest present code.
		if mask&(1<<uint(present[0])) == 0 {
			continue
		}
		left := make([]int64, k)
		for _, c := range present {
			if mask&(1<<uint(c)) != 0 {
				for j, v := range avc.Counts[c] {
					left[j] += v
				}
			}
		}
		q := crit.QualityFromLeft(left, classTotals, nil)
		if !found || q < bestQ || (q == bestQ && mask < bestMask) {
			found, bestQ, bestMask = true, q, mask
		}
	}
	return bestMask, bestQ, found
}

func randomCatAVC(rng *rand.Rand, card, k int) (*CatAVC, []int64) {
	avc := NewCatAVC(card, k)
	totals := make([]int64, k)
	for c := 0; c < card; c++ {
		if rng.Intn(4) == 0 {
			continue // leave some categories absent
		}
		for j := 0; j < k; j++ {
			n := int64(rng.Intn(20))
			avc.Counts[c][j] = n
			totals[j] += n
		}
	}
	return avc, totals
}

func TestBestCategoricalSplitMatchesBruteForceTwoClass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		card := 2 + rng.Intn(8)
		avc, totals := randomCatAVC(rng, card, 2)
		got := BestCategoricalSplit(Gini, 0, avc, totals)
		wantMask, wantQ, wantFound := bruteForceBestSubset(Gini, avc, totals)
		if got.Found != wantFound {
			t.Fatalf("trial %d: found %v, want %v (avc=%v)", trial, got.Found, wantFound, avc.Counts)
		}
		if !got.Found {
			continue
		}
		// Breiman's theorem guarantees optimal quality; the specific mask
		// may differ only when qualities tie, in which case the shared
		// implementation is the source of truth for all builders.
		if got.Quality != wantQ {
			t.Fatalf("trial %d: quality %v, want %v (avc=%v mask=%b wantMask=%b)",
				trial, got.Quality, wantQ, avc.Counts, got.Subset, wantMask)
		}
	}
}

func TestBestCategoricalSplitMatchesBruteForceMultiClass(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		card := 2 + rng.Intn(6) // within the exhaustive limit
		k := 3 + rng.Intn(2)
		avc, totals := randomCatAVC(rng, card, k)
		got := BestCategoricalSplit(Gini, 0, avc, totals)
		wantMask, wantQ, wantFound := bruteForceBestSubset(Gini, avc, totals)
		if got.Found != wantFound {
			t.Fatalf("trial %d: found %v, want %v", trial, got.Found, wantFound)
		}
		if !got.Found {
			continue
		}
		if got.Quality != wantQ || got.Subset != wantMask {
			t.Fatalf("trial %d: got mask=%b q=%v, want mask=%b q=%v (avc=%v)",
				trial, got.Subset, got.Quality, wantMask, wantQ, avc.Counts)
		}
	}
}

func TestBestCategoricalSplitCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		avc, totals := randomCatAVC(rng, 2+rng.Intn(10), 2)
		got := BestCategoricalSplit(Gini, 0, avc, totals)
		if !got.Found {
			continue
		}
		smallest := -1
		for c, row := range avc.Counts {
			var n int64
			for _, v := range row {
				n += v
			}
			if n > 0 {
				smallest = c
				break
			}
		}
		if got.Subset&(1<<uint(smallest)) == 0 {
			t.Fatalf("trial %d: canonical subset %b missing smallest present code %d",
				trial, got.Subset, smallest)
		}
		// Subset must only contain present categories.
		for c := range avc.Counts {
			var n int64
			for _, v := range avc.Counts[c] {
				n += v
			}
			if n == 0 && got.Subset&(1<<uint(c)) != 0 {
				t.Fatalf("trial %d: subset %b contains absent category %d", trial, got.Subset, c)
			}
		}
	}
}

func TestBestCategoricalSplitDegenerate(t *testing.T) {
	// One present category: no split possible.
	avc := NewCatAVC(4, 2)
	avc.Counts[2][0] = 10
	if got := BestCategoricalSplit(Gini, 0, avc, []int64{10, 0}); got.Found {
		t.Error("single present category should not split")
	}
	// Empty AVC.
	empty := NewCatAVC(4, 2)
	if got := BestCategoricalSplit(Gini, 0, empty, []int64{0, 0}); got.Found {
		t.Error("empty AVC should not split")
	}
}

func TestBestCategoricalSplitPerfectSeparation(t *testing.T) {
	avc := NewCatAVC(4, 2)
	avc.Counts[0] = []int64{10, 0}
	avc.Counts[1] = []int64{0, 10}
	avc.Counts[2] = []int64{10, 0}
	avc.Counts[3] = []int64{0, 10}
	got := BestCategoricalSplit(Gini, 0, avc, []int64{20, 20})
	if !got.Found || got.Quality != 0 {
		t.Fatalf("perfect separation: %+v", got)
	}
	if got.Subset != 0b0101 {
		t.Errorf("subset = %b, want {0,2}", got.Subset)
	}
}

func TestBestCategoricalSplitLargeDomainGreedy(t *testing.T) {
	// Beyond the exhaustive limit the greedy search must still produce a
	// valid canonical proper subset with quality no worse than the best
	// Breiman prefix.
	rng := rand.New(rand.NewSource(19))
	avc, totals := randomCatAVC(rng, 20, 3)
	got := BestCategoricalSplit(Gini, 0, avc, totals)
	if !got.Found {
		t.Fatal("no split on a 20-category 3-class table")
	}
	if bits.OnesCount64(got.Subset) == 0 {
		t.Fatal("empty subset")
	}
	node := Gini.Impurity(totals)
	if got.Quality > node {
		t.Errorf("greedy split quality %v exceeds node impurity %v", got.Quality, node)
	}
}
