package split

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/boatml/boat/internal/data"
)

// Split is a splitting criterion in the paper's sense: the splitting
// attribute together with a splitting predicate. Numeric splits route a
// tuple left iff X <= Threshold; categorical splits route left iff the
// category's bit is set in Subset.
//
// Quality is the value the split selection method minimized (weighted
// impurity for impurity-based methods); it is carried for verification and
// deterministic comparison, not for routing.
type Split struct {
	Found     bool
	Attr      int
	Kind      data.Kind
	Threshold float64
	Subset    uint64
	Quality   float64
}

// NoSplit is the "stop: make this node a leaf" result.
func NoSplit() Split { return Split{Found: false, Quality: math.Inf(1)} }

// Left reports whether tuple t routes to the left child.
func (s Split) Left(t data.Tuple) bool {
	if s.Kind == data.Numeric {
		return t.Values[s.Attr] <= s.Threshold
	}
	code := uint(t.Values[s.Attr])
	return code < 64 && s.Subset&(1<<code) != 0
}

// Equal reports exact equality of two splitting criteria (routing fields
// only; Quality is ignored, because an incrementally maintained tree may
// legitimately carry a recomputed quality for the same criterion).
func (s Split) Equal(o Split) bool {
	if s.Found != o.Found {
		return false
	}
	if !s.Found {
		return true
	}
	if s.Attr != o.Attr || s.Kind != o.Kind {
		return false
	}
	if s.Kind == data.Numeric {
		return s.Threshold == o.Threshold
	}
	return s.Subset == o.Subset
}

// Better reports whether s is strictly preferable to o under the canonical
// deterministic order: lower quality first, then smaller attribute index,
// then smaller threshold (numeric) or smaller subset mask (categorical).
// A not-found split is worse than every found split.
func (s Split) Better(o Split) bool {
	if !s.Found {
		return false
	}
	if !o.Found {
		return true
	}
	if s.Quality != o.Quality {
		return s.Quality < o.Quality
	}
	if s.Attr != o.Attr {
		return s.Attr < o.Attr
	}
	if s.Kind == data.Numeric && o.Kind == data.Numeric {
		return s.Threshold < o.Threshold
	}
	if s.Kind == data.Categorical && o.Kind == data.Categorical {
		return s.Subset < o.Subset
	}
	// Attribute indexes are equal, so kinds must agree; this branch is
	// unreachable for well-formed inputs.
	return s.Kind < o.Kind
}

// String renders the criterion for tree printing.
func (s Split) String() string {
	if !s.Found {
		return "<leaf>"
	}
	if s.Kind == data.Numeric {
		return fmt.Sprintf("attr%d <= %g", s.Attr, s.Threshold)
	}
	return fmt.Sprintf("attr%d in %s", s.Attr, subsetString(s.Subset))
}

// DescribeWith renders the criterion with attribute names from the schema.
func (s Split) DescribeWith(schema *data.Schema) string {
	if !s.Found {
		return "<leaf>"
	}
	name := schema.Attributes[s.Attr].Name
	if s.Kind == data.Numeric {
		return fmt.Sprintf("%s <= %g", name, s.Threshold)
	}
	return fmt.Sprintf("%s in %s", name, subsetString(s.Subset))
}

func subsetString(mask uint64) string {
	out := "{"
	first := true
	for mask != 0 {
		c := bits.TrailingZeros64(mask)
		if !first {
			out += ","
		}
		out += fmt.Sprint(c)
		first = false
		mask &= mask - 1
	}
	return out + "}"
}
