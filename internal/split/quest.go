package split

import (
	"math"
	"sort"

	"github.com/boatml/boat/internal/data"
)

// QuestLike is a non-impurity-based split selection method in the spirit
// of QUEST (Loh & Shih, Statistica Sinica 1997), referenced by the paper
// as an alternative instantiation of BOAT that avoids the instability of
// impurity-based methods (Section 5, Figure 12 discussion).
//
// Attribute selection uses per-attribute association statistics:
// the ANOVA F statistic for numeric attributes and the mean-square
// contingency (chi-squared over degrees of freedom) for categorical
// attributes; the attribute with the largest statistic wins (ties by
// smaller index). For a numeric winner the split point is the midpoint
// between the weighted means of the two class superclasses (classes with
// class-conditional mean at or below the grand mean versus the rest) —
// a smooth function of the data, hence far more stable under resampling
// than an impurity arg-min. For a categorical winner the splitting subset
// is chosen exactly from the attribute's full contingency table.
//
// The criterion is an exact function of constant-size sufficient
// statistics (Moments), so QuestLike implements MomentBased and BOAT
// verifies its coarse criteria by exact recomputation.
type QuestLike struct{}

// NewQuestLike returns the method.
func NewQuestLike() *QuestLike { return &QuestLike{} }

// Name implements Method.
func (q *QuestLike) Name() string { return "quest" }

// BestSplit implements Method by deriving the moments from the AVC-group.
func (q *QuestLike) BestSplit(stats *NodeStats) Split {
	return q.BestSplitFromMoments(MomentsFromStats(stats))
}

// BestSplitFromMoments implements MomentBased.
func (q *QuestLike) BestSplitFromMoments(m *Moments) Split {
	type scored struct {
		attr  int
		score float64
	}
	var candidates []scored
	for i, a := range m.Schema.Attributes {
		var s float64
		if a.Kind == data.Numeric {
			s = anovaF(m.Num[i], m.ClassTotals)
		} else {
			s = meanSquareContingency(m.Cat[i], m.ClassTotals)
		}
		if s > 0 || math.IsInf(s, 1) {
			candidates = append(candidates, scored{attr: i, score: s})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].score != candidates[j].score {
			return candidates[i].score > candidates[j].score
		}
		return candidates[i].attr < candidates[j].attr
	})
	for _, c := range candidates {
		attr := c.attr
		if m.Schema.Attributes[attr].Kind == data.Numeric {
			thr, ok := questThreshold(m.Num[attr])
			if !ok {
				continue
			}
			return Split{
				Found:     true,
				Attr:      attr,
				Kind:      data.Numeric,
				Threshold: thr,
				Quality:   -c.score,
			}
		}
		sp := BestCategoricalSplit(Gini, attr, m.Cat[attr], m.ClassTotals)
		if !sp.Found {
			continue
		}
		sp.Quality = -c.score
		return sp
	}
	return NoSplit()
}

// anovaF computes the one-way ANOVA F statistic of attribute values
// grouped by class: (SSB/(k-1)) / (SSW/(n-k)) over the classes present.
// Returns +Inf for perfect separation (SSW == 0, SSB > 0) and 0 when the
// attribute carries no signal or the statistic is undefined.
func anovaF(nm *NumMoments, classTotals []int64) float64 {
	var n, sum int64
	k := 0
	for class, cnt := range nm.Count {
		_ = class
		if cnt > 0 {
			k++
		}
		n += cnt
		sum += nm.Sum[class]
	}
	if k < 2 || n <= int64(k) {
		return 0
	}
	grand := float64(sum) / float64(n)
	var ssb, ssw float64
	for class, cnt := range nm.Count {
		if cnt <= 0 {
			continue
		}
		mean := float64(nm.Sum[class]) / float64(cnt)
		d := mean - grand
		ssb += float64(cnt) * d * d
		ssw += nm.sq(class) - float64(nm.Sum[class])*mean
	}
	if ssw <= 0 {
		if ssb > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (ssb / float64(k-1)) / (ssw / float64(n-int64(k)))
}

// meanSquareContingency computes chi^2 / dof of the category-by-class
// contingency table, a scale-comparable association score for categorical
// attributes.
func meanSquareContingency(cat *CatAVC, classTotals []int64) float64 {
	var n int64
	classSums := make([]int64, len(classTotals))
	var rows int
	for _, row := range cat.Counts {
		var rowN int64
		for class, v := range row {
			rowN += v
			classSums[class] += v
		}
		if rowN > 0 {
			rows++
		}
		n += rowN
	}
	classes := 0
	for _, v := range classSums {
		if v > 0 {
			classes++
		}
	}
	dof := (rows - 1) * (classes - 1)
	if dof <= 0 || n == 0 {
		return 0
	}
	var chi2 float64
	for _, row := range cat.Counts {
		var rowN int64
		for _, v := range row {
			rowN += v
		}
		if rowN == 0 {
			continue
		}
		for class, v := range row {
			if classSums[class] == 0 {
				continue
			}
			expected := float64(rowN) * float64(classSums[class]) / float64(n)
			d := float64(v) - expected
			chi2 += d * d / expected
		}
	}
	return chi2 / float64(dof)
}

// questThreshold computes the split point: classes are partitioned into
// the superclass with class-conditional mean <= grand mean and the rest;
// the threshold is the midpoint of the two superclass means. Both sides of
// the resulting split are guaranteed nonempty (each superclass has values
// at or beyond its own mean).
func questThreshold(nm *NumMoments) (float64, bool) {
	var n, sum int64
	for class, cnt := range nm.Count {
		n += cnt
		sum += nm.Sum[class]
	}
	if n == 0 {
		return 0, false
	}
	grand := float64(sum) / float64(n)
	var loN, hiN int64
	var loSum, hiSum int64
	for class, cnt := range nm.Count {
		if cnt <= 0 {
			continue
		}
		mean := float64(nm.Sum[class]) / float64(cnt)
		if mean <= grand {
			loN += cnt
			loSum += nm.Sum[class]
		} else {
			hiN += cnt
			hiSum += nm.Sum[class]
		}
	}
	if loN == 0 || hiN == 0 {
		return 0, false
	}
	muLo := float64(loSum) / float64(loN)
	muHi := float64(hiSum) / float64(hiN)
	if muLo >= muHi {
		return 0, false
	}
	return (muLo + muHi) / 2, true
}
