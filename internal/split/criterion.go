// Package split implements split selection for binary decision trees:
// concave impurity functions (gini, entropy) evaluated from integer class
// counts, AVC-sets (attribute-value, class-label counts) in the sense of
// the RainForest framework, exact best-split search for numerical and
// categorical predictor attributes, and a non-impurity-based QUEST-like
// method driven by constant-size sufficient statistics.
//
// Every tree construction algorithm in this repository (the in-memory
// reference, RainForest RF-Hybrid/RF-Vertical, and BOAT) selects splits
// through this package's single implementation, evaluated from integer
// count vectors. Identical counts therefore yield bit-identical impurity
// values and identical tie-breaking, which is what makes "BOAT produces
// exactly the same tree" a testable property.
package split

import (
	"fmt"
	"math"
)

// Criterion selects the concave impurity function imp_theta of the paper.
type Criterion int

const (
	// Gini is the gini index of CART (Breiman et al. 1984).
	Gini Criterion = iota
	// Entropy is the information entropy used by C4.5-style methods.
	Entropy
)

// String returns the criterion name.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Impurity computes the node impurity of a class-count vector.
// Counts must be non-negative; a zero vector has impurity 0.
func (c Criterion) Impurity(counts []int64) float64 {
	var n int64
	for _, v := range counts {
		n += v
	}
	if n == 0 {
		return 0
	}
	return c.impurityN(counts, n)
}

// impurityN computes impurity given the precomputed total.
func (c Criterion) impurityN(counts []int64, n int64) float64 {
	fn := float64(n)
	switch c {
	case Gini:
		s := 0.0
		for _, v := range counts {
			p := float64(v) / fn
			s += p * p
		}
		return 1 - s
	case Entropy:
		s := 0.0
		for _, v := range counts {
			if v == 0 {
				continue
			}
			p := float64(v) / fn
			s -= p * math.Log2(p)
		}
		return s
	default:
		panic("split: unknown criterion")
	}
}

// PartitionQuality computes the weighted impurity of a binary partition:
//
//	(|L| * imp(L) + |R| * imp(R)) / (|L| + |R|)
//
// Lower is better. A partition with an empty side is invalid and returns
// +Inf. This is the quantity imp_X(n, X, x) that all split selection in
// the paper minimizes, and — viewed as a function of the left-count vector
// with the totals fixed — it is the concave function imp_S on stamp points
// to which Lemma 3.1's corner-point lower bound applies.
func (c Criterion) PartitionQuality(left, right []int64) float64 {
	var nL, nR int64
	for _, v := range left {
		nL += v
	}
	for _, v := range right {
		nR += v
	}
	if nL <= 0 || nR <= 0 {
		return math.Inf(1)
	}
	n := float64(nL + nR)
	return (float64(nL)*c.impurityN(left, nL) + float64(nR)*c.impurityN(right, nR)) / n
}

// QualityFromLeft computes PartitionQuality given the left counts and the
// family totals, avoiding an allocation for the right side. scratch must
// have len == len(totals) or be nil.
func (c Criterion) QualityFromLeft(left, totals, scratch []int64) float64 {
	if scratch == nil {
		scratch = make([]int64, len(totals))
	}
	for i := range totals {
		scratch[i] = totals[i] - left[i]
	}
	return c.PartitionQuality(left, scratch)
}
