package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServerDisabled pins the zero-cost contract of Addr == "": no
// server, no error, no goroutines, and the nil handle is inert.
func TestServerDisabled(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := StartServer(ServerConfig{Addr: "", Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatal("disabled server returned a handle")
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("disabled server grew goroutines: %d -> %d", before, after)
	}
	if s.Addr() != "" {
		t.Fatalf("nil server Addr = %q", s.Addr())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil server Close = %v", err)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("update.tuples").Add(42)
	reg.Latency("update.latency").Observe(3 * time.Millisecond)

	var notReady atomic.Bool
	notReady.Store(true)
	s, err := StartServer(ServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Ready: func() error {
			if notReady.Load() {
				return errors.New("no epoch published yet")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body, _ := get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Readiness transition: 503 with the error text, then 200.
	code, body, _ = get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "no epoch published") {
		t.Fatalf("not-ready /readyz = %d %q", code, body)
	}
	notReady.Store(false)
	code, body, _ = get(t, base+"/readyz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ready" {
		t.Fatalf("ready /readyz = %d %q", code, body)
	}

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"boat_update_tuples 42",
		`boat_update_latency_seconds{quantile="0.5"}`,
		"boat_update_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d %q", code, body)
	}
	code, _, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServerNilRegistryServesEmptyMetrics(t *testing.T) {
	s, err := StartServer(ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body, _ := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("/metrics on nil registry = %d %q", code, body)
	}
	// No Ready hook: /readyz defaults to ready.
	code, _, _ = get(t, "http://"+s.Addr()+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz without hook = %d", code)
	}
}

func TestServerBindFailure(t *testing.T) {
	s1, err := StartServer(ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if _, err := StartServer(ServerConfig{Addr: s1.Addr()}); err == nil {
		t.Fatal("second bind on the same address succeeded")
	}
}

// TestServerScrapeDuringUpdates is the concurrency gate (run under -race
// in CI): writers hammer every instrument kind while scrapers read
// /metrics, and the final scrape must reflect the completed totals.
func TestServerScrapeDuringUpdates(t *testing.T) {
	reg := NewRegistry()
	s, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	const writers, perW = 4, 2_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := reg.Counter("update.tuples")
			g := reg.Gauge("update.tuples_per_sec")
			h := reg.Histogram("scan.stuck.per_node")
			l := reg.Latency("update.latency")
			shard := reg.Counter(fmt.Sprintf("scan.shard.%d.tuples", id))
			for i := 0; i < perW; i++ {
				c.Add(1)
				g.Set(float64(i))
				h.Observe(int64(i % 512))
				l.Observe(time.Duration(1+i%1000) * time.Microsecond)
				shard.Inc()
			}
		}(w)
	}
	var scrapeWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, _ := get(t, base+"/metrics")
				if code != http.StatusOK {
					t.Errorf("scrape returned %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	_, body, _ := get(t, base+"/metrics")
	if want := fmt.Sprintf("boat_update_tuples %d", writers*perW); !strings.Contains(body, want) {
		t.Fatalf("final scrape missing %q:\n%s", want, body)
	}
	if want := fmt.Sprintf("boat_update_latency_seconds_count %d", writers*perW); !strings.Contains(body, want) {
		t.Fatalf("final scrape missing %q", want)
	}
}
