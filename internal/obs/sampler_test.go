package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestSamplerNilRegistry(t *testing.T) {
	before := runtime.NumGoroutine()
	s := StartSampler(nil, SamplerConfig{Interval: time.Millisecond})
	if s != nil {
		t.Fatal("nil registry produced a sampler")
	}
	s.Close() // safe on nil
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("disabled sampler grew goroutines: %d -> %d", before, after)
	}
}

// TestSamplerRuntimeGauges relies on the synchronous first sample: the
// runtime series must exist the moment StartSampler returns, even with an
// interval too long for any tick to fire during the test.
func TestSamplerRuntimeGauges(t *testing.T) {
	reg := NewRegistry()
	s := StartSampler(reg, SamplerConfig{Interval: time.Hour})
	defer s.Close()
	snap := reg.Snapshot()
	for _, name := range []string{
		"runtime.heap_alloc_bytes", "runtime.heap_inuse_bytes",
		"runtime.heap_objects", "runtime.sys_bytes", "runtime.next_gc_bytes",
		"runtime.gc_cycles", "runtime.gc_pause_total_seconds",
		"runtime.goroutines", "runtime.gomaxprocs",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing after StartSampler", name)
		}
	}
	if snap.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("runtime.goroutines = %g", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.gomaxprocs"] < 1 {
		t.Fatalf("runtime.gomaxprocs = %g", snap.Gauges["runtime.gomaxprocs"])
	}
	if snap.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Fatalf("runtime.heap_alloc_bytes = %g", snap.Gauges["runtime.heap_alloc_bytes"])
	}
}

// TestSamplerWindowedRate drives a counter while the sampler ticks fast,
// and waits for the derived _per_sec_window gauge to turn positive.
func TestSamplerWindowedRate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("update.tuples")
	s := StartSampler(reg, SamplerConfig{
		Interval: 2 * time.Millisecond,
		Window:   10 * time.Millisecond,
		Rates:    []string{"update.tuples"},
	})
	defer s.Close()
	rate := reg.Gauge("update.tuples_per_sec_window")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.Add(1_000)
		if rate.Value() > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("windowed rate never turned positive (counter=%d)", c.Value())
}

// TestSamplerCloseStopsGoroutine checks Close really reaps the ticker
// goroutine.
func TestSamplerCloseStopsGoroutine(t *testing.T) {
	reg := NewRegistry()
	before := runtime.NumGoroutine()
	s := StartSampler(reg, SamplerConfig{Interval: time.Millisecond})
	s.Close()
	// The goroutine exit is synchronized by Close (it waits on done), so
	// the count must be back to the baseline modulo unrelated churn.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sampler goroutine leaked: %d -> %d", before, runtime.NumGoroutine())
}
