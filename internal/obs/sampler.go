package obs

import (
	"log/slog"
	"runtime"
	"time"
)

// Sampler is the background runtime/rate sampler: a single goroutine on a
// ticker that publishes Go runtime gauges (heap, GC, goroutines) into the
// registry and derives windowed rates — events per second over the last
// Window, not lifetime averages — for a configured set of counters. Rates
// land in gauges named "<counter>_per_sec_window", so a soak whose
// throughput collapses mid-run shows it within one window instead of
// being averaged away by hours of history.
type Sampler struct {
	reg  *Registry
	cfg  SamplerConfig
	quit chan struct{}
	done chan struct{}

	// ring holds one rate sample per tick, window/interval entries deep.
	ring []rateSample
	next int
}

// rateSample is one tick's counter readings.
type rateSample struct {
	t      time.Time
	counts []int64
}

// SamplerConfig shapes a Sampler. The zero value samples every second
// over a ten-second rate window with no rate counters.
type SamplerConfig struct {
	// Interval between samples. 0 selects one second.
	Interval time.Duration
	// Window is the rate-computation horizon. 0 selects ten seconds;
	// values below Interval clamp to Interval.
	Window time.Duration
	// Rates names the counters to derive windowed per-second rates for.
	Rates []string
	// Logger receives sampler lifecycle records (nil discards).
	Logger *slog.Logger
}

func (c SamplerConfig) normalized() SamplerConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Window < c.Interval {
		c.Window = c.Interval
	}
	return c
}

// StartSampler launches the sampler goroutine against reg. Returns nil
// (a safe no-op handle) when reg is nil — a disabled registry must not
// grow a goroutine. Close stops the goroutine and waits for it to exit.
func StartSampler(reg *Registry, cfg SamplerConfig) *Sampler {
	if reg == nil {
		return nil
	}
	cfg = cfg.normalized()
	depth := int(cfg.Window/cfg.Interval) + 1
	s := &Sampler{
		reg:  reg,
		cfg:  cfg,
		quit: make(chan struct{}),
		done: make(chan struct{}),
		ring: make([]rateSample, 0, depth),
	}
	// One synchronous sample before the goroutine starts, so the runtime
	// series exist (and rate baselines are anchored) as soon as
	// StartSampler returns — a scrape racing the first tick still sees
	// every gauge.
	s.sample(time.Now())
	go s.run()
	return s
}

// Close stops the sampler. Safe on nil and idempotent-unsafe (call once).
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	close(s.quit)
	<-s.done
}

func (s *Sampler) run() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			s.sample(now)
		case <-s.quit:
			return
		}
	}
}

// sample publishes one round of runtime gauges and windowed rates.
func (s *Sampler) sample(now time.Time) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.reg.Gauge("runtime.heap_inuse_bytes").Set(float64(ms.HeapInuse))
	s.reg.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	s.reg.Gauge("runtime.sys_bytes").Set(float64(ms.Sys))
	s.reg.Gauge("runtime.next_gc_bytes").Set(float64(ms.NextGC))
	s.reg.Gauge("runtime.gc_cycles").Set(float64(ms.NumGC))
	s.reg.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		// Most recent pause, from the runtime's 256-entry pause ring.
		s.reg.Gauge("runtime.gc_last_pause_seconds").Set(
			float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
	}
	s.reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("runtime.gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))

	if len(s.cfg.Rates) == 0 {
		return
	}
	cur := rateSample{t: now, counts: make([]int64, len(s.cfg.Rates))}
	for i, name := range s.cfg.Rates {
		cur.counts[i] = s.reg.Counter(name).Value()
	}
	// The ring keeps the last depth samples; the oldest one anchors the
	// window. Until the ring fills, the window is simply shorter.
	var oldest rateSample
	if len(s.ring) < cap(s.ring) {
		if len(s.ring) > 0 {
			oldest = s.ring[0]
		}
		s.ring = append(s.ring, cur)
	} else {
		oldest = s.ring[s.next]
		s.ring[s.next] = cur
		s.next = (s.next + 1) % len(s.ring)
	}
	if oldest.counts == nil {
		return
	}
	secs := now.Sub(oldest.t).Seconds()
	if secs <= 0 {
		return
	}
	for i, name := range s.cfg.Rates {
		delta := cur.counts[i] - oldest.counts[i]
		if delta < 0 {
			delta = 0
		}
		s.reg.Gauge(name + "_per_sec_window").Set(float64(delta) / secs)
	}
}
