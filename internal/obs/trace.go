// Package obs is the observability layer of the BOAT pipeline: a
// build-lifecycle tracer with hierarchical spans (trace.go), a lock-cheap
// metrics registry (metrics.go), and slog-based structured logging
// helpers (log.go).
//
// Everything in this package is nil-safe: a nil *Tracer, *Span, *Registry,
// *Counter, *Gauge or *Histogram accepts every call as a no-op, so
// instrumented code never branches on "is observability enabled" — it
// simply calls through, and a disabled build pays only a nil check per
// call site (verified by the zero-overhead guards in trace_test.go).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/boatml/boat/internal/iostats"
)

// Tracer records the lifecycle of one or more builds as a forest of
// hierarchical spans. Spans may be started and ended from concurrent
// goroutines; each span's identity is carried explicitly (there is no
// goroutine-local "current span"), which keeps attribution exact under
// the parallel build phases.
//
// A nil Tracer is the disabled tracer: Start returns a nil Span, and all
// Span methods on nil are no-ops.
type Tracer struct {
	stats *iostats.Stats // optional: per-span I/O snapshots

	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an enabled tracer. stats, when non-nil, is snapshotted
// at every span start and end so each span carries the iostats delta of
// its lifetime.
func NewTracer(stats *iostats.Stats) *Tracer {
	return &Tracer{stats: stats}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Start begins a root span. Returns nil when the tracer is nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, start: time.Now(), startIO: t.stats.Snapshot()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the completed-or-live root spans in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed region of a build. Start children with Start; close
// the region with End (idempotent). All methods are safe on a nil Span
// and safe for concurrent use.
type Span struct {
	tracer  *Tracer
	name    string
	start   time.Time
	startIO iostats.Snapshot

	mu       sync.Mutex
	end      time.Time
	endIO    iostats.Snapshot
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Start begins a child span. Returns nil when s is nil.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, name: name, start: time.Now(), startIO: s.tracer.stats.Snapshot()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, capturing its end time and I/O snapshot. Only the
// first End takes effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = time.Now()
		s.endIO = s.tracer.stats.Snapshot()
	}
	s.mu.Unlock()
}

// AddCompleted records an already-measured region as an ended child span
// with an explicit start time and duration. It exists for work whose
// timing is accumulated outside the tracer — the I/O pipeline's read,
// decode and deliver stages, measured inside internal/data and known only
// once the scan closes. Durations may be cumulative across goroutines, so
// a completed child can be longer than its parent's wall-clock. The child
// carries identical start and end I/O snapshots (its bytes were already
// attributed to the enclosing span), keeping parent self-deltas exact.
func (s *Span) AddCompleted(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	snap := s.tracer.stats.Snapshot()
	c := &Span{
		tracer:  s.tracer,
		name:    name,
		start:   start,
		startIO: snap,
		end:     start.Add(d),
		endIO:   snap,
		ended:   true,
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span. Later values for the same key win at export.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartTime returns the span's start time.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's wall-clock length. Un-ended spans measure
// up to now.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Children returns the direct child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns the span's annotations in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// IODelta returns the iostats delta over the span's lifetime (zero when
// the tracer has no stats or the span is nil). Parent deltas include
// their children's; see SelfIODelta for the exclusive share.
func (s *Span) IODelta() iostats.Snapshot {
	if s == nil {
		return iostats.Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.endIO
	if !s.ended {
		end = s.tracer.stats.Snapshot()
	}
	return end.Sub(s.startIO)
}

// SelfIODelta returns the span's iostats delta minus its direct
// children's deltas: the I/O attributable to the span's own code. With
// sequential execution the self deltas over a trace sum exactly to the
// root deltas; concurrent sibling spans can both observe the same
// counter movement, making the attribution approximate (never the
// totals — those stay exact on the root span).
func (s *Span) SelfIODelta() iostats.Snapshot {
	if s == nil {
		return iostats.Snapshot{}
	}
	d := s.IODelta()
	for _, c := range s.Children() {
		d = d.Sub(c.IODelta())
	}
	return d
}

// ChildCoverage returns the fraction of the span's wall-clock covered by
// the union of its direct children's intervals (0 for a nil or
// zero-length span). It is the quantity the acceptance gate "spans cover
// >= 95% of build wall-clock" checks on the build root.
func (s *Span) ChildCoverage() float64 {
	if s == nil {
		return 0
	}
	total := s.Duration()
	if total <= 0 {
		return 0
	}
	children := s.Children()
	type iv struct{ a, b time.Time }
	ivs := make([]iv, 0, len(children))
	for _, c := range children {
		ivs = append(ivs, iv{c.start, c.start.Add(c.Duration())})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a.Before(ivs[j].a) })
	var covered time.Duration
	var curA, curB time.Time
	for i, v := range ivs {
		if i == 0 || v.a.After(curB) {
			covered += curB.Sub(curA)
			curA, curB = v.a, v.b
			continue
		}
		if v.b.After(curB) {
			curB = v.b
		}
	}
	covered += curB.Sub(curA)
	return float64(covered) / float64(total)
}

// Skeleton renders the trace's span structure — names and nesting only,
// no timings, no attributes — with same-parent siblings in a canonical
// order, so traces recorded under different Parallelism settings (or on
// different machines) are directly diffable. BOAT's exactness guarantee
// makes the set of phases, rebuilds and promotions identical across
// worker counts; only the interleaving differs, and the canonical order
// removes it.
func (t *Tracer) Skeleton() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for i, r := range t.Roots() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.skeleton())
	}
	return b.String()
}

func (s *Span) skeleton() string {
	if s == nil {
		return ""
	}
	children := s.Children()
	if len(children) == 0 {
		return s.Name()
	}
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = c.skeleton()
	}
	sort.Strings(parts)
	return s.Name() + "(" + strings.Join(parts, " ") + ")"
}

// ---------------------------------------------------------------------------
// Chrome trace-event export

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format (the JSON consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // µs since trace start
	Dur  int64          `json:"dur"` // µs
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the trace as Chrome trace-event JSON. Spans
// become complete events; each nesting depth is a lane group, and
// overlapping spans at the same depth (concurrent rebuilds, for example)
// are spread across lanes by greedy interval partitioning so every lane
// holds non-overlapping, viewer-nestable events. Span args carry the
// attributes plus the span's iostats delta and self delta.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: exporting a nil tracer")
	}
	roots := t.Roots()
	if len(roots) == 0 {
		return fmt.Errorf("obs: trace holds no spans")
	}
	origin := roots[0].start
	for _, r := range roots[1:] {
		if r.start.Before(origin) {
			origin = r.start
		}
	}

	type flat struct {
		s     *Span
		depth int
	}
	var spans []flat
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		spans = append(spans, flat{s, depth})
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}

	// Assign lanes per depth: sort by start, reuse the first lane whose
	// previous span has ended, otherwise open a new one. tid = depth*64 +
	// lane keeps lanes of one depth adjacent in the viewer.
	byDepth := map[int][]flat{}
	for _, f := range spans {
		byDepth[f.depth] = append(byDepth[f.depth], f)
	}
	tids := make(map[*Span]int, len(spans))
	depths := make([]int, 0, len(byDepth))
	for d := range byDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		level := byDepth[d]
		sort.SliceStable(level, func(i, j int) bool { return level[i].s.start.Before(level[j].s.start) })
		var laneEnds []time.Time
		for _, f := range level {
			end := f.s.start.Add(f.s.Duration())
			lane := -1
			for i, le := range laneEnds {
				if !f.s.start.Before(le) {
					lane = i
					break
				}
			}
			if lane < 0 {
				lane = len(laneEnds)
				laneEnds = append(laneEnds, end)
			} else {
				laneEnds[lane] = end
			}
			tids[f.s] = d*64 + lane
		}
	}

	events := make([]chromeEvent, 0, len(spans))
	for _, f := range spans {
		s := f.s
		args := map[string]any{}
		for _, a := range s.Attrs() {
			args[a.Key] = a.Value
		}
		if t.stats != nil {
			args["io"] = s.IODelta()
			args["io_self"] = s.SelfIODelta()
		}
		events = append(events, chromeEvent{
			Name: s.Name(),
			Ph:   "X",
			Ts:   s.start.Sub(origin).Microseconds(),
			Dur:  s.Duration().Microseconds(),
			Pid:  1,
			Tid:  tids[s],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
