package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestLatBucketRoundTrip pins the log-linear bucket geometry: every value
// must land in a bucket whose bounds contain it, and consecutive buckets
// must tile the value range without gaps or overlaps.
func TestLatBucketRoundTrip(t *testing.T) {
	check := func(v int64) {
		idx := latBucketOf(v)
		lo, hi := latBucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d mapped to bucket %d covering [%d, %d]", v, idx, lo, hi)
		}
	}
	for v := int64(0); v < 100_000; v++ {
		check(v)
	}
	for k := uint(2); k < 62; k++ {
		base := int64(1) << k
		for _, v := range []int64{base - 1, base, base + 1, base + base/2, 2*base - 1} {
			check(v)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100_000; i++ {
		check(rng.Int63())
	}
	if got := latBucketOf(-5); got != 0 {
		t.Fatalf("negative value mapped to bucket %d, want 0", got)
	}

	// Contiguity: bucket i+1 starts exactly where bucket i ends.
	prevHi := int64(-1)
	for idx := 0; idx < latBuckets; idx++ {
		lo, hi := latBucketBounds(idx)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, want %d", idx, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d inverted: [%d, %d]", idx, lo, hi)
		}
		prevHi = hi
	}
}

func TestLatencyNilSafe(t *testing.T) {
	var h *LatencyHistogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil latency histogram accumulated state")
	}
	qs := h.Quantiles(0.5, 0.99)
	if qs[0] != 0 || qs[1] != 0 {
		t.Fatalf("nil latency histogram quantiles = %v", qs)
	}
}

func TestLatencyNilZeroAlloc(t *testing.T) {
	var h *LatencyHistogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("nil Observe allocated %v objects per op", allocs)
	}
	live := &LatencyHistogram{}
	allocs = testing.AllocsPerRun(1000, func() { live.Observe(time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("live Observe allocated %v objects per op", allocs)
	}
}

// TestLatencyQuantilesVsExact is the property test of the estimator: for
// mixed workload shapes, every estimated quantile must agree with the
// exact sorted-sample quantile to within the documented log-linear error
// bound (1/latSub relative, i.e. 25%).
func TestLatencyQuantilesVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct {
		name string
		gen  func() int64
	}{
		{"uniform-us", func() int64 { return 1 + rng.Int63n(1_000_000) }},
		{"bimodal", func() int64 {
			if rng.Intn(10) == 0 {
				return 50_000_000 + rng.Int63n(10_000_000) // slow tail
			}
			return 10_000 + rng.Int63n(5_000)
		}},
		{"exponentialish", func() int64 {
			return int64(1_000 * (1 + rng.ExpFloat64()*500))
		}},
		{"tiny", func() int64 { return rng.Int63n(16) }},
	}
	ps := []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	for _, shape := range shapes {
		h := &LatencyHistogram{}
		samples := make([]int64, 20_000)
		for i := range samples {
			v := shape.gen()
			samples[i] = v
			h.Observe(time.Duration(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		got := h.Quantiles(ps...)
		for i, p := range ps {
			// Same rank definition as the estimator: ceil(p*n), 1-based.
			rank := int(math.Ceil(p * float64(len(samples))))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			est := int64(got[i])
			// The estimate and the exact value share a bucket, so the gap
			// is bounded by the bucket width: 25% of the lower bound, plus
			// one for integer rounding at the tiny end.
			tol := exact/latSub + 1
			if diff := est - exact; diff < -tol || diff > tol {
				t.Errorf("%s p%g: estimate %d vs exact %d (tolerance %d)",
					shape.name, p*100, est, exact, tol)
			}
		}
	}
}

func TestLatencyQuantilesMonotone(t *testing.T) {
	h := &LatencyHistogram{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
	}
	qs := h.Quantiles(0.1, 0.5, 0.9, 0.99, 0.999, 1.0)
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
}

// TestLatencyConcurrent hammers one histogram from many goroutines; count
// and sum are exact regardless of sharding, and the test doubles as the
// -race exercise for the lock-free shards.
func TestLatencyConcurrent(t *testing.T) {
	h := &LatencyHistogram{}
	const goroutines, perG = 8, 5_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(1 + rng.Int63n(1_000_000)))
				if i%64 == 0 {
					h.Quantiles(0.5, 0.99) // concurrent reads must be safe
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	if h.Sum() <= 0 {
		t.Fatalf("sum = %d, want > 0", h.Sum())
	}
}

func TestLatencySnapshotEmpty(t *testing.T) {
	h := &LatencyHistogram{}
	s := h.snapshot()
	if s.Count != 0 || s.P50NS != 0 || s.P999NS != 0 || s.MeanNS != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestRegistryLatency(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("update.latency")
	if r.Latency("update.latency") != l {
		t.Fatal("Latency did not return the cached instrument")
	}
	l.Observe(2 * time.Millisecond)
	l.Observe(4 * time.Millisecond)
	snap := r.Snapshot()
	ls, ok := snap.Latencies["update.latency"]
	if !ok {
		t.Fatal("snapshot missing latency instrument")
	}
	if ls.Count != 2 || ls.SumNS != int64(6*time.Millisecond) {
		t.Fatalf("latency snapshot = %+v", ls)
	}
	if ls.P50NS <= 0 || ls.P99NS < ls.P50NS {
		t.Fatalf("latency quantiles = %+v", ls)
	}
	var nilReg *Registry
	if nilReg.Latency("x") != nil {
		t.Fatal("nil registry handed out a latency instrument")
	}
}
