package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promTestRegistry builds a registry covering every instrument kind and
// the numeric-segment label sanitization.
func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("scan.tuples").Add(5)
	r.Counter("scan.shard.0.tuples").Add(7)
	r.Counter("scan.shard.3.tuples").Add(9)
	r.Gauge("update.tuples_per_sec").Set(1.5)
	h := r.Histogram("scan.stuck.per_node")
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	l := r.Latency("update.latency")
	l.Observe(2 * time.Millisecond)
	l.Observe(8 * time.Millisecond)
	return r
}

// TestWritePromGolden pins the exposition down line by line for the
// deterministic families (counters and gauges) and structurally for the
// histogram and summary families.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE boat_scan_tuples counter\n",
		"boat_scan_tuples 5\n",
		"# TYPE boat_scan_shard_tuples counter\n",
		`boat_scan_shard_tuples{shard="0"} 7` + "\n",
		`boat_scan_shard_tuples{shard="3"} 9` + "\n",
		"# TYPE boat_update_tuples_per_sec gauge\n",
		"boat_update_tuples_per_sec 1.5\n",
		"# TYPE boat_scan_stuck_per_node histogram\n",
		`boat_scan_stuck_per_node_bucket{le="+Inf"} 3` + "\n",
		"boat_scan_stuck_per_node_sum 104\n",
		"boat_scan_stuck_per_node_count 3\n",
		"# TYPE boat_update_latency_seconds summary\n",
		`boat_update_latency_seconds{quantile="0.5"}`,
		`boat_update_latency_seconds{quantile="0.99"}`,
		`boat_update_latency_seconds{quantile="0.999"}`,
		"boat_update_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// The per-shard series collapsed into one family: no unlabeled
	// boat_scan_shard_3_tuples-style names may survive.
	if strings.Contains(out, "shard_3") || strings.Contains(out, "shard_0") {
		t.Fatalf("numeric segment leaked into a metric name:\n%s", out)
	}
}

// TestWritePromGrammar validates every emitted line against the text
// exposition grammar: TYPE comments and "name{labels} value" samples.
func TestWritePromGrammar(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	typeRe := regexp.MustCompile(`^# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|histogram|summary)$`)
	sampleRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|NaN|\+Inf|-Inf)$`)
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "#"):
			if !typeRe.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("bad sample line: %q", line)
			}
			if seen[line] {
				t.Errorf("duplicate sample line: %q", line)
			}
			seen[line] = true
		}
	}
}

// TestWritePromHistogramBuckets checks the native-histogram layout:
// ascending le bounds, non-decreasing cumulative counts, +Inf last and
// equal to _count.
func TestWritePromHistogramBuckets(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	bucketRe := regexp.MustCompile(`^boat_scan_stuck_per_node_bucket\{le="([^"]+)"\} ([0-9]+)$`)
	var lastLe, lastCum int64 = -1, -1
	var infCum int64 = -1
	for _, line := range strings.Split(buf.String(), "\n") {
		m := bucketRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		cum, _ := strconv.ParseInt(m[2], 10, 64)
		if m[1] == "+Inf" {
			infCum = cum
			continue
		}
		if infCum != -1 {
			t.Fatalf("finite bucket after +Inf: %q", line)
		}
		le, _ := strconv.ParseInt(m[1], 10, 64)
		if le <= lastLe {
			t.Fatalf("le bounds not ascending: %d after %d", le, lastLe)
		}
		if cum < lastCum {
			t.Fatalf("cumulative counts decreased: %d after %d", cum, lastCum)
		}
		lastLe, lastCum = le, cum
	}
	if infCum != 3 {
		t.Fatalf("+Inf bucket = %d, want 3 (the observation count)", infCum)
	}
}

func TestWritePromDeterministic(t *testing.T) {
	r := promTestRegistry()
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two scrapes of an idle registry differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestWritePromNilAndEmpty(t *testing.T) {
	var nilReg *Registry
	var buf bytes.Buffer
	if err := nilReg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
	if err := NewRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty registry wrote %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := []struct {
		in     string
		metric string
		labels string
	}{
		{"scan.tuples", "boat_scan_tuples", ""},
		{"scan.shard.3.tuples", "boat_scan_shard_tuples", `{shard="3"}`},
		{"scan.shard.12.tuples_per_sec", "boat_scan_shard_tuples_per_sec", `{shard="12"}`},
		{"update.epoch", "boat_update_epoch", ""},
		{"weird-name.with%chars", "boat_weird_name_with_chars", ""},
	}
	for _, c := range cases {
		metric, labels := promName(c.in)
		if metric != c.metric || renderLabels(labels) != c.labels {
			t.Errorf("promName(%q) = %q %q, want %q %q",
				c.in, metric, renderLabels(labels), c.metric, c.labels)
		}
	}
}
