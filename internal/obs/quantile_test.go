package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistogramSnapshotQuantileProperty compares the bucket-interpolation
// estimate against the exact sorted-sample quantile: both must land in
// the same power-of-two bucket, which is all the resolution a Histogram
// retains.
func TestHistogramSnapshotQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := []struct {
		name string
		gen  func() int64
	}{
		{"uniform", func() int64 { return 1 + rng.Int63n(1<<20) }},
		{"skewed", func() int64 { return int64(1 + rng.ExpFloat64()*5_000) }},
		{"small", func() int64 { return rng.Int63n(10) }},
		{"wide", func() int64 { return 1 + rng.Int63n(1<<40) }},
	}
	ps := []float64{0.25, 0.5, 0.9, 0.99, 0.999, 1.0}
	for _, shape := range shapes {
		h := &Histogram{}
		samples := make([]int64, 10_000)
		for i := range samples {
			v := shape.gen()
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.snapshot()
		for _, p := range ps {
			rank := int(math.Ceil(p * float64(len(samples))))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			est := snap.Quantile(p)
			if est < 0 {
				t.Fatalf("%s p%g: negative estimate %g", shape.name, p*100, est)
			}
			// Same-bucket property: the estimate may sit anywhere inside
			// the exact value's power-of-two bucket.
			if bucketOf(int64(math.Ceil(est))) != bucketOf(exact) && bucketOf(int64(est)) != bucketOf(exact) {
				t.Errorf("%s p%g: estimate %g not in exact value %d's bucket",
					shape.name, p*100, est, exact)
			}
		}
	}
}

func TestHistogramSnapshotQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot quantile = %g", got)
	}
	h := &Histogram{}
	h.Observe(100)
	snap := h.snapshot()
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if got := snap.Quantile(p); got != 0 {
			t.Fatalf("out-of-range p=%v returned %g", p, got)
		}
	}
	// A single observation: every quantile lands in its bucket.
	for _, p := range []float64{0, 0.5, 1} {
		got := snap.Quantile(p)
		if bucketOf(int64(got)) != bucketOf(100) {
			t.Fatalf("single-sample quantile(%g) = %g, not in 100's bucket", p, got)
		}
	}
}

func TestHistogramSnapshotQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := &Histogram{}
	for i := 0; i < 5_000; i++ {
		h.Observe(1 + rng.Int63n(1<<30))
	}
	snap := h.snapshot()
	prev := -1.0
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		q := snap.Quantile(p)
		if q < prev {
			t.Fatalf("quantiles not monotone at p=%g: %g < %g", p, q, prev)
		}
		prev = q
	}
}
