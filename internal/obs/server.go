package obs

import (
	"context"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live diagnostics endpoint of a running boat process: one
// HTTP listener exposing the metrics registry in Prometheus text
// exposition format, health and readiness probes, expvar, and the
// standard pprof profilers. It is deliberately part of internal/obs
// rather than the commands so every binary (and test) wires the identical
// surface:
//
//	/metrics      Prometheus text exposition of the Registry
//	/healthz      liveness: 200 while the process runs
//	/readyz       readiness: 200 when ServerConfig.Ready returns nil
//	/debug/vars   expvar (includes registries published via Publish)
//	/debug/pprof  CPU/heap/goroutine/trace profilers
//
// The server owns no instrumentation state: scrapes read the registry's
// atomics, so a scrape never blocks a build, an update, or a prediction.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	log  *slog.Logger
	done chan struct{}
}

// ServerConfig shapes StartServer.
type ServerConfig struct {
	// Addr is the listen address (e.g. ":9090", "127.0.0.1:0"). Empty
	// disables the server entirely: StartServer returns (nil, nil), binds
	// no socket and starts no goroutine.
	Addr string
	// Registry backs /metrics and /debug/vars. A nil registry serves an
	// empty exposition (probes still work).
	Registry *Registry
	// Ready gates /readyz: nil error (or a nil func) reports ready (200),
	// an error reports 503 with the error text as the body. The function
	// is called per probe and must be safe for concurrent use.
	Ready func() error
	// Logger receives server lifecycle records (nil discards).
	Logger *slog.Logger
}

// StartServer binds cfg.Addr and serves the diagnostics surface in a
// background goroutine until Close. A bind failure is returned, not
// retried — an operator asking for a diagnostics port wants to know it
// is taken, not a silently dark endpoint.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		return nil, nil
	}
	log := cfg.Logger
	if log == nil {
		log = NopLogger()
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: diagnostics server listen %s: %w", cfg.Addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WriteProm(w); err != nil {
			log.Warn("metrics scrape failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Ready != nil {
			if err := cfg.Ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	// expvar and pprof are mounted on this private mux explicitly —
	// nothing is registered on http.DefaultServeMux, so a process that
	// disables the server exposes nothing anywhere.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux},
		log:  log,
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Error("diagnostics server failed", "err", err)
		}
	}()
	log.Info("diagnostics server listening", "addr", ln.Addr().String())
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" to the actual
// port). Empty on nil.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down: a short graceful drain for in-flight
// scrapes, then a hard close. Safe on nil; returns once the serve
// goroutine has exited.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	<-s.done
	return err
}
