package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// LatencyHistogram is the serve-path latency instrument: a sharded,
// lock-free histogram of nanosecond durations with log-linear buckets and
// a quantile estimator. Observe costs three atomic adds on one shard;
// shards are picked from the caller's stack address, so goroutines
// hammering the same instrument spread across shards instead of bouncing
// one cache line between cores. Quantile reads merge the shards into a
// consistent-enough snapshot (each bucket is read atomically; the
// histogram keeps accepting observations during the merge).
//
// Buckets are log-linear: latSub sub-buckets per power of two, so the
// relative quantile error is bounded by 1/latSub (25%) everywhere on the
// range — tight enough for p50/p95/p99/p999 gauges across nanoseconds to
// minutes without per-observation locking or sample retention.

const (
	// latSubBits sub-divides each power-of-two octave into 2^latSubBits
	// linear sub-buckets.
	latSubBits = 2
	latSub     = 1 << latSubBits
	// latBuckets covers all of int64: values below latSub map 1:1, and
	// each octave k in [latSubBits, 63) contributes latSub buckets.
	latBuckets = (63 - latSubBits + 1) * latSub
	// latShards spreads concurrent observers. Must be a power of two.
	latShards = 8
)

// latShard is one shard's counters, padded out to its own cache lines so
// neighbouring shards never share one.
type latShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [latBuckets]atomic.Int64
	_       [64]byte
}

// LatencyHistogram records durations; the zero value is ready to use.
// All methods are safe for concurrent use; a nil receiver is a no-op.
type LatencyHistogram struct {
	shards [latShards]latShard
}

// shardHint derives a shard index from the caller's stack address: each
// goroutine's stack lives in its own allocation, so concurrent observers
// land on different shards with high probability. The address is never
// dereferenced or retained — it only seeds the index — so the pointer
// escape rules are not in play.
func shardHint() int {
	var b byte
	a := uintptr(unsafe.Pointer(&b))
	return int((a>>6 ^ a>>14) & (latShards - 1))
}

// latBucketOf maps a nanosecond value to its log-linear bucket.
// Non-positive values clamp to bucket 0.
func latBucketOf(v int64) int {
	if v < latSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	// v in [2^k, 2^(k+1)) with k >= latSubBits: shift the top latSubBits+1
	// bits down, yielding latSub consecutive buckets per octave.
	k := bits.Len64(uint64(v)) - 1
	shift := uint(k - latSubBits)
	return (k-latSubBits)*latSub + int(v>>shift)
}

// latBucketBounds returns the inclusive value range a bucket covers.
func latBucketBounds(idx int) (lo, hi int64) {
	if idx < latSub {
		return int64(idx), int64(idx)
	}
	oct := idx / latSub
	sub := idx % latSub
	shift := uint(oct - 1)
	lo = int64(latSub+sub) << shift
	hi = lo + (int64(1)<<shift - 1)
	return lo, hi
}

// Observe records one duration. No-op on nil.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	s := &h.shards[shardHint()]
	s.count.Add(1)
	s.sum.Add(v)
	s.buckets[latBucketOf(v)].Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *LatencyHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Sum returns the sum of all observed durations (0 for nil).
func (h *LatencyHistogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.shards {
		n += h.shards[i].sum.Load()
	}
	return time.Duration(n)
}

// merged folds the shards into one bucket array plus count and sum.
func (h *LatencyHistogram) merged() (buckets [latBuckets]int64, count, sum int64) {
	for i := range h.shards {
		s := &h.shards[i]
		count += s.count.Load()
		sum += s.sum.Load()
		for b := range s.buckets {
			if n := s.buckets[b].Load(); n != 0 {
				buckets[b] += n
			}
		}
	}
	return buckets, count, sum
}

// Quantiles estimates the given quantiles (each in [0, 1]) in one merge
// pass. The estimate interpolates linearly inside the bucket holding the
// target rank, so it is exact below latSub ns and within 1/latSub
// relative error above. Returns zeros for a nil or empty histogram.
func (h *LatencyHistogram) Quantiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if h == nil {
		return out
	}
	buckets, count, _ := h.merged()
	if count == 0 {
		return out
	}
	for i, p := range ps {
		out[i] = quantileFromBuckets(buckets[:], count, p)
	}
	return out
}

// quantileFromBuckets locates the bucket containing rank ceil(p*count)
// and interpolates linearly within its value range.
func quantileFromBuckets(buckets []int64, count int64, p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for idx, n := range buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := latBucketBounds(idx)
			frac := float64(rank-cum) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += n
	}
	return 0
}

// LatencySnapshot is the exported state of a LatencyHistogram: totals
// plus the standard serving quantiles, all in nanoseconds.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	SumNS  int64   `json:"sum_ns"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
}

func (h *LatencyHistogram) snapshot() LatencySnapshot {
	buckets, count, sum := h.merged()
	s := LatencySnapshot{Count: count, SumNS: sum}
	if count == 0 {
		return s
	}
	s.MeanNS = float64(sum) / float64(count)
	s.P50NS = int64(quantileFromBuckets(buckets[:], count, 0.5))
	s.P95NS = int64(quantileFromBuckets(buckets[:], count, 0.95))
	s.P99NS = int64(quantileFromBuckets(buckets[:], count, 0.99))
	s.P999NS = int64(quantileFromBuckets(buckets[:], count, 0.999))
	return s
}
