package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the metrics
// Registry. The internal dotted names map onto the Prometheus data model
// as follows:
//
//   - Dots become underscores and every metric is prefixed "boat_":
//     "scan.tuples" -> boat_scan_tuples.
//   - Purely numeric name segments become labels keyed by the preceding
//     segment, so per-shard series like "scan.shard.3.tuples" collapse
//     into one labeled metric family boat_scan_shard_tuples{shard="3"}
//     instead of an unbounded set of metric names.
//   - Counters expose "counter", gauges "gauge".
//   - Histograms (power-of-two value buckets) expose the native histogram
//     type: cumulative boat_<name>_bucket{le="..."} series plus _sum and
//     _count.
//   - Latency histograms expose a summary in seconds — boat_<name>_seconds
//     {quantile="0.5|0.95|0.99|0.999"} plus _sum and _count — computed
//     from the log-linear buckets at scrape time.
//
// Output is deterministic: families are sorted by name, series within a
// family by label value, so scrapes diff cleanly and the golden test can
// pin the grammar down.

// promPrefix namespaces every exposed metric.
const promPrefix = "boat_"

// promSeries is one exposition line before formatting.
type promSeries struct {
	name   string // full metric name (prefix + sanitized + suffixes)
	labels string // rendered label set incl. braces, "" for none
	value  float64
}

// promFamily is one metric family: a TYPE header plus its series.
type promFamily struct {
	name   string
	typ    string
	series []promSeries
}

// promName sanitizes a dotted internal name: numeric segments turn into
// labels keyed by their preceding segment, the rest joins with
// underscores. Characters outside [a-zA-Z0-9_] map to '_'.
func promName(name string) (metric string, labels []string) {
	segs := strings.Split(name, ".")
	var parts []string
	for _, seg := range segs {
		if isDigits(seg) && len(parts) > 0 {
			labels = append(labels, fmt.Sprintf("%s=%q", parts[len(parts)-1], seg))
			continue
		}
		parts = append(parts, sanitizeSeg(seg))
	}
	return promPrefix + strings.Join(parts, "_"), labels
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func sanitizeSeg(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + strings.Join(labels, ",") + "}"
}

// promValue renders a sample value the way Prometheus expects.
func promValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WriteProm writes the registry's current state in Prometheus text
// exposition format. Safe to call concurrently with metric updates — each
// instrument is read atomically. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams := map[string]*promFamily{}
	family := func(name, typ string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}

	// Snapshot under the registry lock only to collect the instrument
	// handles; values are loaded atomically afterwards.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	latencies := make(map[string]*LatencyHistogram, len(r.latencies))
	for n, l := range r.latencies {
		latencies[n] = l
	}
	r.mu.Unlock()

	for name, c := range counters {
		metric, labels := promName(name)
		f := family(metric, "counter")
		f.series = append(f.series, promSeries{metric, renderLabels(labels), float64(c.Value())})
	}
	for name, g := range gauges {
		metric, labels := promName(name)
		f := family(metric, "gauge")
		f.series = append(f.series, promSeries{metric, renderLabels(labels), g.Value()})
	}
	for name, h := range histograms {
		metric, labels := promName(name)
		f := family(metric, "histogram")
		snap := h.snapshot()
		// Cumulative buckets in ascending bound order, then +Inf, _sum,
		// _count — the native histogram layout.
		type bkt struct {
			upper int64
			n     int64
		}
		bkts := make([]bkt, 0, len(snap.Buckets))
		for key, n := range snap.Buckets {
			var upper int64
			if _, err := fmt.Sscanf(key, "le_%d", &upper); err == nil {
				bkts = append(bkts, bkt{upper, n})
			}
		}
		sort.Slice(bkts, func(i, j int) bool { return bkts[i].upper < bkts[j].upper })
		var cum int64
		for _, b := range bkts {
			cum += b.n
			le := append(append([]string{}, labels...), fmt.Sprintf("le=%q", fmt.Sprint(b.upper)))
			f.series = append(f.series, promSeries{metric + "_bucket", renderLabels(le), float64(cum)})
		}
		inf := append(append([]string{}, labels...), `le="+Inf"`)
		f.series = append(f.series, promSeries{metric + "_bucket", renderLabels(inf), float64(snap.Count)})
		f.series = append(f.series, promSeries{metric + "_sum", renderLabels(labels), float64(snap.Sum)})
		f.series = append(f.series, promSeries{metric + "_count", renderLabels(labels), float64(snap.Count)})
	}
	for name, l := range latencies {
		metric, labels := promName(name)
		metric += "_seconds"
		f := family(metric, "summary")
		snap := l.snapshot()
		for _, q := range []struct {
			q  string
			ns int64
		}{{"0.5", snap.P50NS}, {"0.95", snap.P95NS}, {"0.99", snap.P99NS}, {"0.999", snap.P999NS}} {
			ql := append(append([]string{}, labels...), fmt.Sprintf("quantile=%q", q.q))
			f.series = append(f.series, promSeries{metric, renderLabels(ql), float64(q.ns) / 1e9})
		}
		f.series = append(f.series, promSeries{metric + "_sum", renderLabels(labels), float64(snap.SumNS) / 1e9})
		f.series = append(f.series, promSeries{metric + "_count", renderLabels(labels), float64(snap.Count)})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		// Counter and gauge families sort their series for deterministic
		// output; histogram and summary families keep append order — their
		// bucket series must stay in ascending le/quantile order, which a
		// lexical label sort would scramble (le="127" < le="15").
		if f.typ == "counter" || f.typ == "gauge" {
			sort.SliceStable(f.series, func(i, j int) bool {
				if f.series[i].name != f.series[j].name {
					return f.series[i].name < f.series[j].name
				}
				return f.series[i].labels < f.series[j].labels
			})
		}
		for _, s := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, promValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}
