package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1.5)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments accumulated values")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	r.Publish("nil-registry") // must not panic
}

func TestNilInstrumentZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(17)
	})
	if allocs != 0 {
		t.Fatalf("nil instruments allocated %v objects per op", allocs)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("verify.ci.hit")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("verify.ci.hit") != c {
		t.Fatal("counter lookup is not stable")
	}
	g := r.Gauge("scan.shard.0.tuples_per_sec")
	g.Set(12.5)
	if g.Value() != 12.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("scan.stuck.per_node")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, math.MaxInt64} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("hist count = %d", h.Count())
	}
	snap := h.snapshot()
	if snap.Buckets["le_1"] != 2 { // 0 and 1
		t.Fatalf("le_1 = %d, want 2", snap.Buckets["le_1"])
	}
	if snap.Buckets["le_3"] != 2 { // 2 and 3
		t.Fatalf("le_3 = %d, want 2", snap.Buckets["le_3"])
	}
	if snap.Buckets["le_9223372036854775807"] != 1 {
		t.Fatalf("top bucket = %+v", snap.Buckets)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{
		-5: 0, 0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3,
		1 << 40: 40, math.MaxInt64: 62,
	}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestSnapshotAndWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("verify.ci.hit").Add(10)
	r.Counter("verify.ci.miss").Add(2)
	r.Gauge("scan.shard.0.tuples_per_sec").Set(1e6)
	r.Histogram("scan.stuck.per_node").Observe(42)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["verify.ci.hit"] != 10 || doc.Counters["verify.ci.miss"] != 2 {
		t.Fatalf("counters = %+v", doc.Counters)
	}
	if doc.Gauges["scan.shard.0.tuples_per_sec"] != 1e6 {
		t.Fatalf("gauges = %+v", doc.Gauges)
	}
	if doc.Histograms["scan.stuck.per_node"].Count != 1 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	// Dumps are deterministic (encoding/json sorts map keys).
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("two dumps of the same registry differ")
	}
}

func TestConcurrentInstrumentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("hist").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("published.counter").Add(7)
	r.Publish("boat-test-metrics")
	r.Publish("boat-test-metrics") // duplicate: no panic
	v := expvar.Get("boat-test-metrics")
	if v == nil {
		t.Fatal("registry not published")
	}
	if !strings.Contains(v.String(), "published.counter") {
		t.Fatalf("expvar payload = %s", v.String())
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"": slog.LevelInfo, "info": slog.LevelInfo, "debug": slog.LevelDebug,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
		"DEBUG": slog.LevelDebug,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, LogConfig{JSON: true})
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "tuples", 5)
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("json log line invalid: %v\n%s", err, buf.String())
	}
	if doc["msg"] != "hello" || doc["tuples"] != float64(5) {
		t.Fatalf("log doc = %v", doc)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, LogConfig{Level: "warn"})
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("suppressed")
	lg.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "suppressed") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering broken: %s", out)
	}

	if _, err := NewLogger(&buf, LogConfig{Level: "bogus"}); err == nil {
		t.Fatal("NewLogger accepted a bogus level")
	}

	NopLogger().Error("dropped") // must not panic or print
}
