package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a lock-cheap metrics registry. Metric lookup (Counter,
// Gauge, Histogram) takes the registry mutex once to get-or-create the
// instrument; the returned handle is then updated with plain atomics, so
// hot paths fetch their instruments up front and pay one atomic add per
// event. A nil Registry hands out nil instruments, whose methods are all
// no-ops — disabled metrics cost one nil check per update.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	latencies  map[string]*LatencyHistogram
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		latencies:  map[string]*LatencyHistogram{},
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use. Returns
// nil when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// when the registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil when the registry is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Latency returns the named latency histogram, creating it on first use.
// Returns nil when the registry is nil.
func (r *Registry) Latency(name string) *LatencyHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.latencies[name]
	if l == nil {
		l = &LatencyHistogram{}
		r.latencies[name] = l
	}
	return l
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 value (last write wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histogramBuckets is the number of power-of-two buckets a Histogram
// keeps: bucket i counts observations v with 2^i <= v < 2^(i+1)
// (bucket 0 also absorbs v <= 1). 63 buckets cover the int64 range.
const histogramBuckets = 63

// Histogram accumulates int64 observations into power-of-two buckets
// with an exact count and sum. Updates are atomic per bucket; there is
// no lock, so concurrent Observe calls scale.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histogramBuckets]atomic.Int64
}

// Observe records one observation. Negative values clamp to bucket 0.
// No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1 // floor(log2 v)
	if b >= histogramBuckets {
		b = histogramBuckets - 1
	}
	return b
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is the exported state of a Histogram: Buckets maps
// the inclusive upper bound of each non-empty bucket to its count.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = map[string]int64{}
		}
		upper := int64(math.MaxInt64)
		if i < histogramBuckets-1 {
			upper = int64(1)<<uint(i+1) - 1
		}
		s.Buckets[fmt.Sprintf("le_%d", upper)] = n
	}
	return s
}

// Quantile estimates the p-quantile (p in [0, 1]) of the observations a
// HistogramSnapshot summarizes, interpolating linearly within the
// power-of-two bucket that holds the target rank. The estimate therefore
// lands in the same bucket as the exact sorted-sample quantile — a
// relative error bounded by the bucket width (a factor of two) — which is
// the resolution the underlying Histogram retains. Returns 0 when the
// snapshot is empty or p is out of range.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return 0
	}
	// Recover the (upper bound, count) pairs from the snapshot's bucket
	// keys and order them by bound.
	type bkt struct {
		upper int64
		n     int64
	}
	bkts := make([]bkt, 0, len(s.Buckets))
	for key, n := range s.Buckets {
		var upper int64
		if _, err := fmt.Sscanf(key, "le_%d", &upper); err != nil {
			continue
		}
		bkts = append(bkts, bkt{upper, n})
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].upper < bkts[j].upper })
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range bkts {
		if cum+b.n < rank {
			cum += b.n
			continue
		}
		// Bucket le_U covers (U+1)/2 .. U for U > 1; le_1 covers <= 1.
		lower := int64(1)
		if b.upper > 1 {
			lower = (b.upper + 1) / 2
		}
		frac := float64(rank-cum) / float64(b.n)
		return float64(lower) + frac*float64(b.upper-lower)
	}
	return 0
}

// MetricsSnapshot is an immutable dump of a Registry.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Latencies  map[string]LatencySnapshot   `json:"latencies,omitempty"`
}

// Snapshot copies every instrument's current value. Returns the zero
// snapshot for a nil registry.
func (r *Registry) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.latencies) > 0 {
		s.Latencies = make(map[string]LatencySnapshot, len(r.latencies))
		for name, l := range r.latencies {
			s.Latencies[name] = l.snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON (keys sorted by
// encoding/json's map ordering, so dumps are diffable).
func (r *Registry) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// Publish registers the registry under name in the process-wide expvar
// namespace, making it visible on /debug/vars when an HTTP server is
// running. Publishing the same name twice is a no-op (expvar itself
// panics on duplicates, so the second registry wins nothing).
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
