package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/boatml/boat/internal/iostats"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("build")
	if sp != nil {
		t.Fatalf("nil tracer returned non-nil span %v", sp)
	}
	// Every Span method must accept the nil receiver.
	child := sp.Start("phase")
	if child != nil {
		t.Fatal("nil span returned non-nil child")
	}
	sp.SetAttr("k", 1)
	sp.End()
	if got := sp.Name(); got != "" {
		t.Fatalf("nil span name = %q", got)
	}
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if got := sp.IODelta(); got != (iostats.Snapshot{}) {
		t.Fatalf("nil span io delta = %+v", got)
	}
	if got := sp.SelfIODelta(); got != (iostats.Snapshot{}) {
		t.Fatalf("nil span self io delta = %+v", got)
	}
	if c := sp.ChildCoverage(); c != 0 {
		t.Fatalf("nil span coverage = %v", c)
	}
	if tr.Roots() != nil || sp.Children() != nil || sp.Attrs() != nil {
		t.Fatal("nil accessors returned non-nil slices")
	}
	if tr.Skeleton() != "" {
		t.Fatal("nil tracer skeleton non-empty")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer export should error")
	}
}

// TestDisabledTracerZeroAlloc is the overhead guard for the disabled
// path: the full per-call-site sequence (start child, set attr, end) on a
// nil tracer must not allocate.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("build")
		c := sp.Start("phase")
		c.SetAttr("n", 1)
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v objects per op", allocs)
	}
}

func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("build")
		c := sp.Start("phase")
		c.End()
		sp.End()
	}
}

func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("build")
		c := sp.Start("phase")
		c.End()
		sp.End()
	}
}

func TestSpanHierarchyAndIODeltas(t *testing.T) {
	var st iostats.Stats
	tr := NewTracer(&st)
	root := tr.Start("build")
	st.RecordScan()

	a := root.Start("sampling")
	st.RecordRead(100, 4000)
	a.End()

	b := root.Start("cleanup-scan")
	st.RecordScan()
	st.RecordRead(900, 36000)
	b.End()
	root.End()

	if got := root.IODelta(); got.Scans != 2 || got.TuplesRead != 1000 {
		t.Fatalf("root delta = %+v", got)
	}
	if got := a.IODelta(); got.TuplesRead != 100 || got.Scans != 0 {
		t.Fatalf("sampling delta = %+v", got)
	}
	if got := b.IODelta(); got.TuplesRead != 900 || got.Scans != 1 {
		t.Fatalf("scan delta = %+v", got)
	}
	// Self delta of the root excludes the children: only the stray
	// RecordScan between root start and the first child remains.
	if got := root.SelfIODelta(); got.Scans != 1 || got.TuplesRead != 0 {
		t.Fatalf("root self delta = %+v", got)
	}
	// Self deltas over the whole trace sum to the root delta.
	sum := root.SelfIODelta()
	for _, c := range root.Children() {
		d := c.SelfIODelta()
		sum.Scans += d.Scans
		sum.TuplesRead += d.TuplesRead
		sum.BytesRead += d.BytesRead
	}
	if rd := root.IODelta(); sum.Scans != rd.Scans || sum.TuplesRead != rd.TuplesRead || sum.BytesRead != rd.BytesRead {
		t.Fatalf("self deltas sum %+v != root delta %+v", sum, rd)
	}
}

func TestSkeletonCanonicalOrder(t *testing.T) {
	mk := func(order []string) string {
		tr := NewTracer(nil)
		root := tr.Start("build")
		for _, name := range order {
			c := root.Start(name)
			c.Start("inner").End()
			c.End()
		}
		root.End()
		return tr.Skeleton()
	}
	a := mk([]string{"rebuild", "rebuild", "leaf"})
	b := mk([]string{"leaf", "rebuild", "rebuild"})
	if a != b {
		t.Fatalf("skeletons differ across sibling order:\n%s\n%s", a, b)
	}
	if want := "build(leaf(inner) rebuild(inner) rebuild(inner))"; a != want {
		t.Fatalf("skeleton = %q, want %q", a, want)
	}
}

func TestChildCoverage(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("build")
	c1 := root.Start("a")
	time.Sleep(5 * time.Millisecond)
	c1.End()
	c2 := root.Start("b")
	time.Sleep(5 * time.Millisecond)
	c2.End()
	root.End()
	if cov := root.ChildCoverage(); cov < 0.5 || cov > 1.0 {
		t.Fatalf("coverage = %v, want within (0.5, 1]", cov)
	}
	leaf := tr.Start("leaf")
	leaf.End()
	if cov := leaf.ChildCoverage(); cov != 0 {
		t.Fatalf("childless coverage = %v", cov)
	}
}

func TestConcurrentSpanStarts(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("build")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := root.Start("worker")
				sp.SetAttr("j", j)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 1600 {
		t.Fatalf("children = %d, want 1600", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var st iostats.Stats
	tr := NewTracer(&st)
	root := tr.Start("build")
	root.SetAttr("tuples", int64(123))
	s := root.Start("sampling")
	st.RecordRead(10, 400)
	s.End()
	// Two overlapping children at the same depth must land on distinct
	// lanes.
	p1 := root.Start("rebuild")
	p2 := root.Start("rebuild")
	time.Sleep(time.Millisecond)
	p1.End()
	p2.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	tids := map[int]bool{}
	var sawBuild bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil {
			t.Fatalf("malformed event %+v", ev)
		}
		if ev.Name == "rebuild" {
			if tids[ev.Tid] {
				t.Fatal("overlapping rebuild spans share a tid")
			}
			tids[ev.Tid] = true
		}
		if ev.Name == "build" {
			sawBuild = true
			if ev.Args["tuples"] != float64(123) {
				t.Fatalf("build args = %v", ev.Args)
			}
			if _, ok := ev.Args["io"]; !ok {
				t.Fatal("build event has no io delta")
			}
		}
	}
	if !sawBuild {
		t.Fatal("no build event exported")
	}
	if !strings.Contains(buf.String(), "displayTimeUnit") {
		t.Fatal("export missing displayTimeUnit")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Start("x")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Fatal("second End moved the end time")
	}
}
