package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogConfig selects the structured-logging format the commands share
// (flags -logjson, -loglevel).
type LogConfig struct {
	// JSON selects slog's JSON handler; false selects the text handler.
	JSON bool
	// Level is the minimum level ("debug", "info", "warn", "error";
	// "" = info).
	Level string
}

// ParseLevel maps a -loglevel flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the commands' logger: text or JSON per cfg, writing to
// w. Timestamps are kept (they cost nothing and order multi-command
// pipelines); the text handler is the human default, JSON the
// machine-ingestion opt-in.
func NewLogger(w io.Writer, cfg LogConfig) (*slog.Logger, error) {
	level, err := ParseLevel(cfg.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if cfg.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h), nil
}

// NopLogger returns a logger that discards everything — callers that
// thread a *slog.Logger through can default to it instead of branching
// on nil at every call site.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}
