package tree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
)

// Binary serialization of trees: a small tag-prefixed pre-order encoding.
// The schema is not embedded; DecodeTree must be given the schema the tree
// was built for (mirroring how models are deployed next to their feature
// definitions).

const (
	tagLeaf     = byte(0)
	tagNumeric  = byte(1)
	tagCategory = byte(2)
	encVersion  = byte(1)
)

// EncodeSubtree serializes a subtree rooted at n (same format as
// EncodeTree).
func EncodeSubtree(n *Node, schema *data.Schema) ([]byte, error) {
	return EncodeTree(&Tree{Schema: schema, Root: n})
}

// DecodeSubtree reverses EncodeSubtree.
func DecodeSubtree(raw []byte, schema *data.Schema) (*Node, error) {
	t, err := DecodeTree(raw, schema)
	if err != nil {
		return nil, err
	}
	return t.Root, nil
}

// EncodeTree serializes the tree.
func EncodeTree(t *Tree) ([]byte, error) {
	if t == nil || t.Root == nil {
		return nil, errors.New("tree: encoding nil tree")
	}
	var buf bytes.Buffer
	buf.WriteByte(encVersion)
	var encode func(n *Node) error
	encode = func(n *Node) error {
		if n == nil {
			return errors.New("tree: internal node with nil child")
		}
		if n.IsLeaf() {
			buf.WriteByte(tagLeaf)
			var tmp [8]byte
			binary.LittleEndian.PutUint32(tmp[:4], uint32(n.Label))
			buf.Write(tmp[:4])
			binary.LittleEndian.PutUint32(tmp[:4], uint32(len(n.ClassCounts)))
			buf.Write(tmp[:4])
			for _, c := range n.ClassCounts {
				binary.LittleEndian.PutUint64(tmp[:], uint64(c))
				buf.Write(tmp[:])
			}
			return nil
		}
		var tmp [8]byte
		if n.Crit.Kind == data.Numeric {
			buf.WriteByte(tagNumeric)
			binary.LittleEndian.PutUint32(tmp[:4], uint32(n.Crit.Attr))
			buf.Write(tmp[:4])
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(n.Crit.Threshold))
			buf.Write(tmp[:])
		} else {
			buf.WriteByte(tagCategory)
			binary.LittleEndian.PutUint32(tmp[:4], uint32(n.Crit.Attr))
			buf.Write(tmp[:4])
			binary.LittleEndian.PutUint64(tmp[:], n.Crit.Subset)
			buf.Write(tmp[:])
		}
		if err := encode(n.Left); err != nil {
			return err
		}
		return encode(n.Right)
	}
	if err := encode(t.Root); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTree reconstructs a tree encoded by EncodeTree for the schema.
func DecodeTree(raw []byte, schema *data.Schema) (*Tree, error) {
	if len(raw) == 0 {
		return nil, errors.New("tree: empty encoding")
	}
	if raw[0] != encVersion {
		return nil, fmt.Errorf("tree: unsupported encoding version %d", raw[0])
	}
	r := bytes.NewReader(raw[1:])
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	var decode func() (*Node, error)
	decode = func() (*Node, error) {
		tag, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagLeaf:
			label, err := readU32()
			if err != nil {
				return nil, err
			}
			nCounts, err := readU32()
			if err != nil {
				return nil, err
			}
			if int(nCounts) > schema.ClassCount {
				return nil, fmt.Errorf("tree: leaf has %d class counts, schema has %d classes",
					nCounts, schema.ClassCount)
			}
			var counts []int64
			for i := uint32(0); i < nCounts; i++ {
				v, err := readU64()
				if err != nil {
					return nil, err
				}
				counts = append(counts, int64(v))
			}
			if int(label) >= schema.ClassCount {
				return nil, fmt.Errorf("tree: leaf label %d out of range", label)
			}
			return &Node{Label: int(label), ClassCounts: counts}, nil
		case tagNumeric, tagCategory:
			attr, err := readU32()
			if err != nil {
				return nil, err
			}
			if int(attr) >= len(schema.Attributes) {
				return nil, fmt.Errorf("tree: attribute %d out of range", attr)
			}
			bitsv, err := readU64()
			if err != nil {
				return nil, err
			}
			n := &Node{}
			if tag == tagNumeric {
				if schema.Attributes[attr].Kind != data.Numeric {
					return nil, fmt.Errorf("tree: numeric split on categorical attribute %d", attr)
				}
				n.Crit = split.Split{
					Found: true, Attr: int(attr), Kind: data.Numeric,
					Threshold: math.Float64frombits(bitsv),
				}
			} else {
				if schema.Attributes[attr].Kind != data.Categorical {
					return nil, fmt.Errorf("tree: categorical split on numeric attribute %d", attr)
				}
				n.Crit = split.Split{
					Found: true, Attr: int(attr), Kind: data.Categorical,
					Subset: bitsv,
				}
			}
			if n.Left, err = decode(); err != nil {
				return nil, err
			}
			if n.Right, err = decode(); err != nil {
				return nil, err
			}
			return n, nil
		default:
			return nil, fmt.Errorf("tree: unknown node tag %d", tag)
		}
	}
	root, err := decode()
	if err != nil {
		return nil, fmt.Errorf("tree: decode: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("tree: %d trailing bytes after decode", r.Len())
	}
	return &Tree{Schema: schema, Root: root}, nil
}
