// Package tree defines the binary decision tree produced by every
// construction algorithm in this repository: internal nodes labeled with a
// splitting criterion (splitting attribute plus split point or splitting
// subset), leaf nodes labeled with a class, node predicates, tuple
// routing, classification, structural comparison, pretty printing, and a
// compact binary serialization.
package tree

import (
	"fmt"
	"strings"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
)

// Node is one node of a binary decision tree. Internal nodes carry a
// splitting criterion and two children; leaves carry a class label.
// ClassCounts (optional but produced by all builders here) are the class
// histogram of the node's family of tuples F_n.
type Node struct {
	Crit        split.Split // Found==false for leaves
	Left, Right *Node
	Label       int
	ClassCounts []int64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return !n.Crit.Found }

// Tree is a binary decision tree classifier over a schema.
type Tree struct {
	Schema *data.Schema
	Root   *Node
}

// Classify routes the tuple to a leaf and returns its label.
func (t *Tree) Classify(tp data.Tuple) int {
	n := t.Root
	for !n.IsLeaf() {
		if n.Crit.Left(tp) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// Leaf returns the leaf node a tuple routes to.
func (t *Tree) Leaf(tp data.Tuple) *Node {
	n := t.Root
	for !n.IsLeaf() {
		if n.Crit.Left(tp) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// MisclassificationRate scans src and returns the fraction of tuples whose
// label the tree predicts incorrectly. The scan runs through the compiled
// flat layout and the chunked kernel — same predictions as a per-tuple
// Classify loop, a fraction of the cost.
func (t *Tree) MisclassificationRate(src data.Source) (float64, error) {
	f, err := Compile(t)
	if err != nil {
		return 0, err
	}
	var n, wrong int64
	out := make([]int, data.DefaultChunkRows)
	err = data.ForEachChunk(src, data.DefaultChunkRows, func(ch *data.Chunk) error {
		f.ClassifyChunk(ch, out)
		classes := ch.Classes()
		for i, c := range classes {
			if out[i] != int(c) {
				wrong++
			}
		}
		n += int64(len(classes))
		return nil
	})
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	return float64(wrong) / float64(n), nil
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Depth returns the maximum number of edges from the root to a leaf.
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Equal reports whether two trees are structurally identical: same shape,
// identical splitting criteria at every internal node, and identical
// labels at every leaf. This is the paper's "exactly the same tree"
// relation used throughout the test suite.
func (t *Tree) Equal(o *Tree) bool {
	if t == nil || o == nil {
		return t == o
	}
	if !t.Schema.Equal(o.Schema) {
		return false
	}
	return nodesEqual(t.Root, o.Root)
}

func nodesEqual(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if a.IsLeaf() {
		return a.Label == b.Label
	}
	if !a.Crit.Equal(b.Crit) {
		return false
	}
	return nodesEqual(a.Left, b.Left) && nodesEqual(a.Right, b.Right)
}

// Diff returns a human-readable description of the first structural
// difference between two trees, or "" if they are equal. Used by tests to
// explain exactness failures.
func (t *Tree) Diff(o *Tree) string {
	return diffNodes(t.Root, o.Root, "root")
}

func diffNodes(a, b *Node, path string) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil || b == nil:
		return fmt.Sprintf("%s: one side missing", path)
	case a.IsLeaf() != b.IsLeaf():
		return fmt.Sprintf("%s: leaf=%v vs leaf=%v (crit %v vs %v)",
			path, a.IsLeaf(), b.IsLeaf(), a.Crit, b.Crit)
	case a.IsLeaf():
		if a.Label != b.Label {
			return fmt.Sprintf("%s: label %d vs %d", path, a.Label, b.Label)
		}
		return ""
	case !a.Crit.Equal(b.Crit):
		return fmt.Sprintf("%s: criterion %v vs %v", path, a.Crit, b.Crit)
	}
	if d := diffNodes(a.Left, b.Left, path+".L"); d != "" {
		return d
	}
	return diffNodes(a.Right, b.Right, path+".R")
}

// String renders the tree with attribute names, one node per line.
func (t *Tree) String() string {
	var sb strings.Builder
	printNode(&sb, t.Schema, t.Root, 0)
	return sb.String()
}

func printNode(sb *strings.Builder, schema *data.Schema, n *Node, indent int) {
	pad := strings.Repeat("  ", indent)
	if n == nil {
		fmt.Fprintf(sb, "%s<nil>\n", pad)
		return
	}
	if n.IsLeaf() {
		fmt.Fprintf(sb, "%sleaf class=%d counts=%v\n", pad, n.Label, n.ClassCounts)
		return
	}
	fmt.Fprintf(sb, "%s%s\n", pad, n.Crit.DescribeWith(schema))
	printNode(sb, schema, n.Left, indent+1)
	printNode(sb, schema, n.Right, indent+1)
}

// MajorityLabel returns the majority class of a count vector with
// deterministic tie-breaking (smallest class index wins ties).
func MajorityLabel(counts []int64) int {
	best, bestN := 0, int64(-1)
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}
