package tree

import (
	"strings"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
)

func testSchema() *data.Schema {
	return data.MustSchema([]data.Attribute{
		{Name: "age", Kind: data.Numeric},
		{Name: "color", Kind: data.Categorical, Cardinality: 4},
	}, 2)
}

// testTree:
//
//	age <= 40 ?  left: color in {1,2} ? leaf(0) : leaf(1)
//	             right: leaf(1)
func testTree() *Tree {
	return &Tree{
		Schema: testSchema(),
		Root: &Node{
			Crit: split.Split{Found: true, Attr: 0, Kind: data.Numeric, Threshold: 40},
			Left: &Node{
				Crit:  split.Split{Found: true, Attr: 1, Kind: data.Categorical, Subset: 0b0110},
				Left:  &Node{Label: 0, ClassCounts: []int64{8, 2}},
				Right: &Node{Label: 1, ClassCounts: []int64{1, 9}},
			},
			Right: &Node{Label: 1, ClassCounts: []int64{3, 7}},
		},
	}
}

func TestClassify(t *testing.T) {
	tr := testTree()
	cases := []struct {
		age, color float64
		want       int
	}{
		{30, 1, 0},
		{40, 2, 0}, // boundary goes left
		{30, 0, 1},
		{41, 1, 1},
		{80, 3, 1},
	}
	for _, tc := range cases {
		tp := data.Tuple{Values: []float64{tc.age, tc.color}}
		if got := tr.Classify(tp); got != tc.want {
			t.Errorf("Classify(age=%v,color=%v) = %d, want %d", tc.age, tc.color, got, tc.want)
		}
		if leaf := tr.Leaf(tp); leaf.Label != tc.want {
			t.Errorf("Leaf(age=%v,color=%v).Label = %d", tc.age, tc.color, leaf.Label)
		}
	}
}

func TestTreeShapeMetrics(t *testing.T) {
	tr := testTree()
	if got := tr.NumNodes(); got != 5 {
		t.Errorf("NumNodes = %d, want 5", got)
	}
	if got := tr.NumLeaves(); got != 3 {
		t.Errorf("NumLeaves = %d, want 3", got)
	}
	if got := tr.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	single := &Tree{Schema: testSchema(), Root: &Node{Label: 1}}
	if single.Depth() != 0 || single.NumNodes() != 1 || single.NumLeaves() != 1 {
		t.Error("single-leaf tree metrics wrong")
	}
}

func TestTreeEqualAndDiff(t *testing.T) {
	a, b := testTree(), testTree()
	if !a.Equal(b) {
		t.Fatal("identical trees not Equal")
	}
	if d := a.Diff(b); d != "" {
		t.Fatalf("Diff of equal trees = %q", d)
	}

	b.Root.Crit.Threshold = 41
	if a.Equal(b) {
		t.Error("different thresholds reported Equal")
	}
	if d := a.Diff(b); !strings.Contains(d, "root") {
		t.Errorf("Diff = %q", d)
	}

	c := testTree()
	c.Root.Right.Label = 0
	if a.Equal(c) {
		t.Error("different leaf labels reported Equal")
	}
	if d := a.Diff(c); !strings.Contains(d, "label") {
		t.Errorf("Diff = %q", d)
	}

	// Shape difference.
	e := testTree()
	e.Root.Left = &Node{Label: 0}
	if a.Equal(e) {
		t.Error("different shapes reported Equal")
	}

	// Class counts are NOT part of equality (they are bookkeeping).
	f := testTree()
	f.Root.Right.ClassCounts = []int64{99, 1}
	f.Root.Right.Label = 1
	if !a.Equal(f) {
		t.Error("class counts should not affect Equal")
	}
}

func TestMisclassificationRate(t *testing.T) {
	tr := testTree()
	tuples := []data.Tuple{
		{Values: []float64{30, 1}, Class: 0}, // correct
		{Values: []float64{30, 1}, Class: 1}, // wrong
		{Values: []float64{50, 0}, Class: 1}, // correct
		{Values: []float64{50, 0}, Class: 0}, // wrong
	}
	r, err := tr.MisclassificationRate(data.NewMemSource(testSchema(), tuples))
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.5 {
		t.Errorf("rate = %v, want 0.5", r)
	}
	empty, err := tr.MisclassificationRate(data.NewMemSource(testSchema(), nil))
	if err != nil || empty != 0 {
		t.Errorf("empty source rate = %v err %v", empty, err)
	}
}

func TestTreeString(t *testing.T) {
	s := testTree().String()
	for _, want := range []string{"age <= 40", "color in {1,2}", "leaf class=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestMajorityLabel(t *testing.T) {
	cases := []struct {
		counts []int64
		want   int
	}{
		{[]int64{5, 3}, 0},
		{[]int64{3, 5}, 1},
		{[]int64{4, 4}, 0}, // tie: smallest index
		{[]int64{0, 0, 7}, 2},
		{[]int64{0, 0}, 0},
	}
	for _, tc := range cases {
		if got := MajorityLabel(tc.counts); got != tc.want {
			t.Errorf("MajorityLabel(%v) = %d, want %d", tc.counts, got, tc.want)
		}
	}
}
