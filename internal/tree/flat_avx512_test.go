//go:build amd64

package tree

import (
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
)

// TestPartitionKernelsMatchScalar cross-validates the AVX-512 partition
// and leaf-pair kernels against the scalar loops on the same machine:
// classify identical chunks with the kernels disabled and enabled, and
// require bit-identical labels. The random trees and tuples reuse the
// parity property's generators, so the kernels see categorical subsets,
// NaN and infinite numerics, and out-of-range codes, and the batch sizes
// cover both the 16-row vector blocks and the scalar tails.
func TestPartitionKernelsMatchScalar(t *testing.T) {
	if !useAVX512 {
		t.Skip("machine has no AVX-512; scalar path is the only path")
	}
	defer func() { useAVX512 = true }()
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 25; trial++ {
		schema := randomSchema(rng)
		tr := randomTree(rng, schema, 2+rng.Intn(8))
		f, err := Compile(tr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := 64 + rng.Intn(4000)
		ch := data.NewChunk(len(schema.Attributes), n)
		for i := 0; i < n; i++ {
			ch.AppendTuple(randomTuple(rng, schema))
		}
		want := make([]int, n)
		got := make([]int, n)
		useAVX512 = false
		f.ClassifyChunk(ch, want)
		useAVX512 = true
		f.ClassifyChunk(ch, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d row %d: AVX-512 path = %d, scalar path = %d\ntree:\n%s",
					trial, i, got[i], want[i], tr)
			}
		}
	}
}
