//go:build amd64

package tree

// The numeric partition — the hot loop of ClassifyChunk — has an AVX-512
// form in flat_amd64.s: 16 rows per iteration, VCMPPD against the
// broadcast threshold producing a 16-bit mask, and VPCOMPRESSD
// compress-stores of the row indices into the left (mask) and right
// (inverted mask) lists, cursors advanced by popcount. The comparison
// predicate is LE_OQ, which is false when either operand is NaN — the
// same "NaN routes right" semantics as the scalar `v <= th`, so the two
// paths are bit-identical and the parity property test exercises both.
//
// Each kernel processes the largest multiple of 16 rows and returns the
// two list lengths; the scalar loop in routeNode finishes the tail from
// row n&^15 with the returned cursors. Compressed stores always write a
// full 64-byte vector at the cursor: after j full blocks each cursor is
// at most 16·j, so the store's last element lands at index < 16·(j+1) <=
// n&^15 <= len(list) — in bounds without masking.

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS's enabled-extended-state mask.
func xgetbv() (eax, edx uint32)

// partitionSeqAVX512 partitions rows 0..(n&^15)-1 of a contiguous column
// by v <= th, appending row numbers to left and right. Requires
// useAVX512 and n >= 16; left and right must each hold n entries.
func partitionSeqAVX512(col *float64, n int, th float64, left, right *int32) (nl, nr int)

// partitionIdxAVX512 is the gather form: it partitions the rows named by
// idx[0..(n&^15)-1], loading each row's value with a masked VGATHERDPD.
// Every idx entry must be a valid row of col.
func partitionIdxAVX512(col *float64, idx *int32, n int, th float64, left, right *int32) (nl, nr int)

// partitionSubSeqAVX512 and partitionSubIdxAVX512 are the categorical
// forms: the predicate is the subset-bit test (su >> code) & 1 with
// out-of-range, negative, and NaN codes routing right, matching the
// scalar loop bit for bit.
func partitionSubSeqAVX512(col *float64, n int, su uint64, left, right *int32) (nl, nr int)

func partitionSubIdxAVX512(col *float64, idx *int32, n int, su uint64, left, right *int32) (nl, nr int)

// leafPairIdxAVX512 and leafPairSubIdxAVX512 vectorize the
// both-children-are-leaves fast path: evaluate the predicate over the
// gathered rows, blend the two leaf labels, and scatter them into out
// (8-byte Go ints) — no partition lists, no recursion.
func leafPairIdxAVX512(col *float64, idx *int32, n int, th float64, out *int, ll, rl int64)

func leafPairSubIdxAVX512(col *float64, idx *int32, n int, su uint64, out *int, ll, rl int64)

// useAVX512 gates the assembly kernels. It is a variable, not a
// constant, so tests can force the scalar fallback and assert parity
// between the two implementations on the same machine.
var useAVX512 = detectAVX512()

// detectAVX512 reports whether the CPU and the OS both support the
// AVX-512 foundation instructions the kernels use (AVX512F covers
// VCMPPD/VPCOMPRESSD/VGATHERDPD on zmm and the opmask ops).
func detectAVX512() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	// XCR0 must enable XMM (bit 1), YMM (bit 2), and the three AVX-512
	// state components: opmask (5), zmm hi256 (6), hi16 zmm (7).
	lo, _ := xgetbv()
	if lo&0xe6 != 0xe6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	return ebx7&avx512f != 0
}
