package tree

import (
	"math"
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
)

// TestClassifyEdgeCaseRouting pins down the pointer walk's edge-case
// behavior before anything asserts flat parity against it: NaN numerics
// route right (every ordered comparison with NaN is false), exact
// threshold hits route left, and categorical codes outside the subset —
// including codes the training data never saw and codes >= 64 — route
// right.
func TestClassifyEdgeCaseRouting(t *testing.T) {
	tr := testTree() // age <= 40 ? (color in {1,2} ? 0 : 1) : 1
	cases := []struct {
		name       string
		age, color float64
		want       int
	}{
		{"nan numeric routes right", math.NaN(), 1, 1},
		{"exact threshold routes left", 40, 1, 0},
		{"+inf routes right", math.Inf(1), 1, 1},
		{"-inf routes left", math.Inf(-1), 1, 0},
		{"subset member routes left", 10, 2, 0},
		{"unseen category routes right", 10, 3, 1},
		{"category >= 64 routes right", 10, 100, 1},
		{"negative category routes right", 10, -1, 1},
		{"nan category routes right", 10, math.NaN(), 1},
	}
	for _, tc := range cases {
		tp := data.Tuple{Values: []float64{tc.age, tc.color}}
		if got := tr.Classify(tp); got != tc.want {
			t.Errorf("%s: Tree.Classify = %d, want %d", tc.name, got, tc.want)
		}
	}

	// The flat compilation must agree on every one of them.
	f, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		tp := data.Tuple{Values: []float64{tc.age, tc.color}}
		if got := f.Classify(tp); got != tc.want {
			t.Errorf("%s: FlatTree.Classify = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestCompileShape(t *testing.T) {
	f, err := Compile(testTree())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 5 || f.NumLeaves() != 3 || f.Depth() != 2 {
		t.Fatalf("shape = %d nodes / %d leaves / depth %d, want 5/3/2",
			f.NumNodes(), f.NumLeaves(), f.Depth())
	}
	if f.IsLeafNode(0) {
		t.Error("root compiled as leaf")
	}
	// BFS pair layout: children are adjacent, right = left+1.
	for n := int32(0); n < int32(f.NumNodes()); n++ {
		if f.IsLeafNode(n) {
			if f.LeftChild(n) != n || f.RightChild(n) != n {
				t.Errorf("leaf %d does not self-loop", n)
			}
			continue
		}
		if f.RightChild(n) != f.LeftChild(n)+1 {
			t.Errorf("node %d children not adjacent: left=%d right=%d",
				n, f.LeftChild(n), f.RightChild(n))
		}
		if f.LeftChild(n) <= n {
			t.Errorf("node %d child %d not after parent", n, f.LeftChild(n))
		}
	}
	if f.Schema() != testSchema() && !f.Schema().Equal(testSchema()) {
		t.Error("schema not carried through compilation")
	}
}

func TestCompileSingleLeaf(t *testing.T) {
	tr := &Tree{Schema: testSchema(), Root: &Node{Label: 1}}
	f, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 1 || f.Depth() != 0 {
		t.Fatalf("leaf-only tree compiled to %d nodes depth %d", f.NumNodes(), f.Depth())
	}
	if got := f.Classify(data.Tuple{Values: []float64{1, 2}}); got != 1 {
		t.Errorf("Classify = %d, want 1", got)
	}
	out := make([]int, 3)
	ch := data.NewChunk(2, 3)
	for i := 0; i < 3; i++ {
		ch.AppendRow([]float64{float64(i), 0}, 0)
	}
	f.ClassifyChunk(ch, out)
	for i, l := range out {
		if l != 1 {
			t.Errorf("chunk row %d = %d, want 1", i, l)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Error("nil tree compiled")
	}
	if _, err := Compile(&Tree{Schema: testSchema()}); err == nil {
		t.Error("nil root compiled")
	}
	broken := testTree()
	broken.Root.Left = nil
	if _, err := Compile(broken); err == nil {
		t.Error("internal node with nil child compiled")
	}
	bad := testTree()
	bad.Root.Crit.Attr = 9
	if _, err := Compile(bad); err == nil {
		t.Error("out-of-range attribute compiled")
	}
}

// randomSchema builds a schema with a random mix of numeric and
// categorical attributes.
func randomSchema(rng *rand.Rand) *data.Schema {
	nAttr := 1 + rng.Intn(6)
	attrs := make([]data.Attribute, nAttr)
	for i := range attrs {
		if rng.Intn(2) == 0 {
			attrs[i] = data.Attribute{Name: "n" + string(rune('a'+i)), Kind: data.Numeric}
		} else {
			attrs[i] = data.Attribute{
				Name: "c" + string(rune('a'+i)), Kind: data.Categorical,
				Cardinality: 2 + rng.Intn(30),
			}
		}
	}
	return data.MustSchema(attrs, 2+rng.Intn(4))
}

// randomTree grows a random tree over the schema; split points and subsets
// are arbitrary (including splits no training run would produce) so the
// parity property is exercised on adversarial shapes, not just learnable
// ones.
func randomTree(rng *rand.Rand, schema *data.Schema, maxDepth int) *Tree {
	var grow func(d int) *Node
	grow = func(d int) *Node {
		if d >= maxDepth || rng.Float64() < 0.25 {
			return &Node{Label: rng.Intn(schema.ClassCount)}
		}
		a := rng.Intn(len(schema.Attributes))
		crit := split.Split{Found: true, Attr: a, Kind: schema.Attributes[a].Kind}
		if crit.Kind == data.Numeric {
			crit.Threshold = rng.NormFloat64() * 10
		} else {
			crit.Subset = rng.Uint64() & ((1 << uint(schema.Attributes[a].Cardinality)) - 1)
		}
		return &Node{Crit: crit, Left: grow(d + 1), Right: grow(d + 1)}
	}
	root := grow(0)
	if root.IsLeaf() { // ensure at least one split most of the time
		root = &Node{
			Crit:  split.Split{Found: true, Attr: 0, Kind: schema.Attributes[0].Kind, Threshold: 0},
			Left:  &Node{Label: 0},
			Right: &Node{Label: 1},
		}
		if schema.Attributes[0].Kind == data.Categorical {
			root.Crit.Threshold = 0
			root.Crit.Subset = 1
		}
	}
	return &Tree{Schema: schema, Root: root}
}

// randomTuple draws a tuple with deliberately hostile values: NaN and ±Inf
// numerics, unseen categorical codes, negative codes, and codes >= 64.
func randomTuple(rng *rand.Rand, schema *data.Schema) data.Tuple {
	vals := make([]float64, len(schema.Attributes))
	for i, a := range schema.Attributes {
		if a.Kind == data.Numeric {
			switch rng.Intn(10) {
			case 0:
				vals[i] = math.NaN()
			case 1:
				vals[i] = math.Inf(1)
			case 2:
				vals[i] = math.Inf(-1)
			default:
				vals[i] = rng.NormFloat64() * 10
			}
		} else {
			switch rng.Intn(10) {
			case 0:
				vals[i] = float64(64 + rng.Intn(100)) // beyond the bitset
			case 1:
				vals[i] = float64(-1 - rng.Intn(5)) // negative code
			default:
				vals[i] = float64(rng.Intn(a.Cardinality + 4)) // incl. unseen
			}
		}
	}
	return data.Tuple{Values: vals, Class: rng.Intn(schema.ClassCount)}
}

// TestFlatParityProperty is the satellite property test: on randomized
// trees and tuples (including NaN numerics and unseen categorical codes),
// FlatTree.Classify and ClassifyChunk are bit-identical to Tree.Classify.
func TestFlatParityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	chunkSizes := []int{1, 7, 64, 1024}
	for trial := 0; trial < 40; trial++ {
		schema := randomSchema(rng)
		tr := randomTree(rng, schema, 1+rng.Intn(9))
		f, err := Compile(tr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nTuples := 1 + rng.Intn(300)
		tuples := make([]data.Tuple, nTuples)
		want := make([]int, nTuples)
		for i := range tuples {
			tuples[i] = randomTuple(rng, schema)
			want[i] = tr.Classify(tuples[i])
			if got := f.Classify(tuples[i]); got != want[i] {
				t.Fatalf("trial %d tuple %d: flat Classify = %d, pointer = %d\nvalues=%v\ntree:\n%s",
					trial, i, got, want[i], tuples[i].Values, tr)
			}
		}
		for _, rows := range chunkSizes {
			ch := data.NewChunk(len(schema.Attributes), rows)
			out := make([]int, rows)
			for base := 0; base < nTuples; base += rows {
				ch.Reset()
				end := min(base+rows, nTuples)
				for i := base; i < end; i++ {
					ch.AppendTuple(tuples[i])
				}
				f.ClassifyChunk(ch, out)
				for i := base; i < end; i++ {
					if out[i-base] != want[i] {
						t.Fatalf("trial %d rows=%d tuple %d: ClassifyChunk = %d, pointer = %d\nvalues=%v\ntree:\n%s",
							trial, rows, i, out[i-base], want[i], tuples[i].Values, tr)
					}
				}
			}
		}
	}
}

// TestClassifyChunkScratchAllocs asserts the zero-allocation steady state
// of the chunk kernel with caller-owned scratch.
func TestClassifyChunkScratchAllocs(t *testing.T) {
	f, err := Compile(testTree())
	if err != nil {
		t.Fatal(err)
	}
	ch := data.NewChunk(2, 256)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 256; i++ {
		ch.AppendRow([]float64{rng.Float64() * 80, float64(rng.Intn(4))}, 0)
	}
	out := make([]int, 256)
	sc := NewClassifyScratch()
	allocs := testing.AllocsPerRun(100, func() {
		f.ClassifyChunkScratch(ch, out, sc)
	})
	if allocs != 0 {
		t.Errorf("ClassifyChunkScratch allocates %v per run, want 0", allocs)
	}
	// The pooled-scratch entry point must also be allocation-free in the
	// steady state.
	allocs = testing.AllocsPerRun(100, func() {
		f.ClassifyChunk(ch, out)
	})
	if allocs != 0 {
		t.Errorf("ClassifyChunk allocates %v per run, want 0", allocs)
	}
}
