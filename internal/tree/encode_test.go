package tree

import (
	"testing"

	"github.com/boatml/boat/internal/data"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := testTree()
	raw, err := EncodeTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTree(raw, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatalf("round-trip differs: %s", got.Diff(orig))
	}
	// Class counts round-trip too.
	if got.Root.Right.ClassCounts[1] != 7 {
		t.Errorf("class counts lost: %v", got.Root.Right.ClassCounts)
	}
}

func TestEncodeSingleLeaf(t *testing.T) {
	orig := &Tree{Schema: testSchema(), Root: &Node{Label: 1, ClassCounts: []int64{1, 5}}}
	raw, err := EncodeTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTree(raw, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatal("single leaf round-trip failed")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := EncodeTree(nil); err == nil {
		t.Error("nil tree encoded")
	}
	broken := testTree()
	broken.Root.Left = nil
	if _, err := EncodeTree(broken); err == nil {
		t.Error("internal node with nil child encoded")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := testSchema()
	good, _ := EncodeTree(testTree())

	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{99}, good[1:]...)},
		{"truncated", good[:len(good)-4]},
		{"trailing garbage", append(append([]byte{}, good...), 1, 2, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeTree(tc.raw, s); err == nil {
				t.Error("expected error")
			}
		})
	}

	t.Run("schema mismatch attr kind", func(t *testing.T) {
		// Decode against a schema where attr 0 is categorical.
		other := data.MustSchema([]data.Attribute{
			{Name: "age", Kind: data.Categorical, Cardinality: 4},
			{Name: "color", Kind: data.Categorical, Cardinality: 4},
		}, 2)
		if _, err := DecodeTree(good, other); err == nil {
			t.Error("expected kind mismatch error")
		}
	})
}
