package tree

import (
	"testing"

	"github.com/boatml/boat/internal/data"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := testTree()
	raw, err := EncodeTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTree(raw, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatalf("round-trip differs: %s", got.Diff(orig))
	}
	// Class counts round-trip too.
	if got.Root.Right.ClassCounts[1] != 7 {
		t.Errorf("class counts lost: %v", got.Root.Right.ClassCounts)
	}
}

func TestEncodeSingleLeaf(t *testing.T) {
	orig := &Tree{Schema: testSchema(), Root: &Node{Label: 1, ClassCounts: []int64{1, 5}}}
	raw, err := EncodeTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTree(raw, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatal("single leaf round-trip failed")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := EncodeTree(nil); err == nil {
		t.Error("nil tree encoded")
	}
	broken := testTree()
	broken.Root.Left = nil
	if _, err := EncodeTree(broken); err == nil {
		t.Error("internal node with nil child encoded")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := testSchema()
	good, _ := EncodeTree(testTree())

	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{99}, good[1:]...)},
		{"truncated", good[:len(good)-4]},
		{"trailing garbage", append(append([]byte{}, good...), 1, 2, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeTree(tc.raw, s); err == nil {
				t.Error("expected error")
			}
		})
	}

	t.Run("schema mismatch attr kind", func(t *testing.T) {
		// Decode against a schema where attr 0 is categorical.
		other := data.MustSchema([]data.Attribute{
			{Name: "age", Kind: data.Categorical, Cardinality: 4},
			{Name: "color", Kind: data.Categorical, Cardinality: 4},
		}, 2)
		if _, err := DecodeTree(good, other); err == nil {
			t.Error("expected kind mismatch error")
		}
	})
}

// TestDecodeCompileChunkParity is the serialization half of the inference
// path's exactness story: a tree round-tripped through the compact binary
// encoding and recompiled into the flat layout must produce the same
// chunked predictions as the original pointer tree.
func TestDecodeCompileChunkParity(t *testing.T) {
	orig := testTree()
	raw, err := EncodeTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeTree(raw, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	f, err := Compile(decoded)
	if err != nil {
		t.Fatal(err)
	}
	ch := data.NewChunk(2, 64)
	var want []int
	for age := -10.0; age < 110; age += 7 {
		for color := -1.0; color < 6; color++ {
			if ch.Full() {
				break
			}
			tp := data.Tuple{Values: []float64{age, color}}
			ch.AppendTuple(tp)
			want = append(want, orig.Classify(tp))
		}
	}
	out := make([]int, ch.Len())
	f.ClassifyChunk(ch, out)
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("row %d: decoded+compiled = %d, original = %d", i, out[i], want[i])
		}
	}
}
