//go:build !amd64

package tree

// Non-amd64 builds always take the scalar partition loops; the stubs
// exist only to keep routeNode's call sites compiling and are
// unreachable behind useAVX512 == false.

const useAVX512 = false

func partitionSeqAVX512(col *float64, n int, th float64, left, right *int32) (nl, nr int) {
	panic("tree: partitionSeqAVX512 without AVX-512")
}

func partitionIdxAVX512(col *float64, idx *int32, n int, th float64, left, right *int32) (nl, nr int) {
	panic("tree: partitionIdxAVX512 without AVX-512")
}

func partitionSubSeqAVX512(col *float64, n int, su uint64, left, right *int32) (nl, nr int) {
	panic("tree: partitionSubSeqAVX512 without AVX-512")
}

func partitionSubIdxAVX512(col *float64, idx *int32, n int, su uint64, left, right *int32) (nl, nr int) {
	panic("tree: partitionSubIdxAVX512 without AVX-512")
}

func leafPairIdxAVX512(col *float64, idx *int32, n int, th float64, out *int, ll, rl int64) {
	panic("tree: leafPairIdxAVX512 without AVX-512")
}

func leafPairSubIdxAVX512(col *float64, idx *int32, n int, su uint64, out *int, ll, rl int64) {
	panic("tree: leafPairSubIdxAVX512 without AVX-512")
}
