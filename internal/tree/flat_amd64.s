//go:build amd64

#include "textflag.h"

// AVX-512 numeric partition kernels for FlatTree.routeNode. See
// flat_amd64.go for the contract. Register plan shared by both kernels:
//
//	AX  column base          DX  left cursor (pointer)
//	BX  index base (idx)     SI  right cursor (pointer)
//	CX  remaining 16-row blocks
//	R8  nl                   R9  nr
//	R10 16-bit left mask     R12 popcount scratch
//	Z0  row indices (16 x int32)
//	Z2, Z3  row values (2 x 8 float64)
//	Z9  broadcast threshold
//
// Per block: compare both value vectors against the threshold with
// LE_OQ (imm 0x12 — ordered, non-signalling, false on NaN, true on an
// exact threshold hit: the scalar `v <= th` bit for bit), splice the two
// 8-bit masks into one 16-bit mask, then VPCOMPRESSD the index vector
// through the mask into the left list and through its complement into
// the right list. The full 64-byte stores intentionally overrun the
// cursor; the Go-side contract guarantees they stay inside the lists.

// iota16 is the row-index seed 0..15 for the sequential kernel.
DATA iota16<>+0x00(SB)/4, $0
DATA iota16<>+0x04(SB)/4, $1
DATA iota16<>+0x08(SB)/4, $2
DATA iota16<>+0x0c(SB)/4, $3
DATA iota16<>+0x10(SB)/4, $4
DATA iota16<>+0x14(SB)/4, $5
DATA iota16<>+0x18(SB)/4, $6
DATA iota16<>+0x1c(SB)/4, $7
DATA iota16<>+0x20(SB)/4, $8
DATA iota16<>+0x24(SB)/4, $9
DATA iota16<>+0x28(SB)/4, $10
DATA iota16<>+0x2c(SB)/4, $11
DATA iota16<>+0x30(SB)/4, $12
DATA iota16<>+0x34(SB)/4, $13
DATA iota16<>+0x38(SB)/4, $14
DATA iota16<>+0x3c(SB)/4, $15
GLOBL iota16<>(SB), RODATA|NOPTR, $64

DATA sixteen<>+0(SB)/4, $16
GLOBL sixteen<>(SB), RODATA|NOPTR, $4

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func partitionSeqAVX512(col *float64, n int, th float64, left, right *int32) (nl, nr int)
TEXT ·partitionSeqAVX512(SB), NOSPLIT, $0-56
	MOVQ col+0(FP), AX
	MOVQ n+8(FP), CX
	SHRQ $4, CX
	MOVQ left+24(FP), DX
	MOVQ right+32(FP), SI
	VBROADCASTSD th+16(FP), Z9
	VMOVDQU32 iota16<>(SB), Z0
	VPBROADCASTD sixteen<>(SB), Z8
	XORQ R8, R8
	XORQ R9, R9
	TESTQ CX, CX
	JZ seqdone

seqloop:
	VMOVUPD (AX), Z2
	VMOVUPD 64(AX), Z3
	VCMPPD $0x12, Z9, Z2, K3
	VCMPPD $0x12, Z9, Z3, K4
	KUNPCKBW K3, K4, K5
	KNOTW K5, K6
	KMOVW K5, R10
	VPCOMPRESSD Z0, K5, Z1
	VMOVDQU32 Z1, (DX)
	VPCOMPRESSD Z0, K6, Z4
	VMOVDQU32 Z4, (SI)
	POPCNTL R10, R12
	LEAQ (DX)(R12*4), DX
	ADDQ R12, R8
	MOVQ $16, R13
	SUBQ R12, R13
	LEAQ (SI)(R13*4), SI
	ADDQ R13, R9
	VPADDD Z8, Z0, Z0
	ADDQ $128, AX
	DECQ CX
	JNZ seqloop

seqdone:
	MOVQ R8, nl+40(FP)
	MOVQ R9, nr+48(FP)
	VZEROUPPER
	RET

// func partitionIdxAVX512(col *float64, idx *int32, n int, th float64, left, right *int32) (nl, nr int)
TEXT ·partitionIdxAVX512(SB), NOSPLIT, $0-64
	MOVQ col+0(FP), AX
	MOVQ idx+8(FP), BX
	MOVQ n+16(FP), CX
	SHRQ $4, CX
	MOVQ left+32(FP), DX
	MOVQ right+40(FP), SI
	VBROADCASTSD th+24(FP), Z9
	XORQ R8, R8
	XORQ R9, R9
	TESTQ CX, CX
	JZ idxdone

idxloop:
	VMOVDQU32 (BX), Z0
	VEXTRACTI64X4 $1, Z0, Y1
	// VGATHERDPD consumes its mask register; rebuild the all-ones mask
	// before each gather.
	KXNORW K1, K1, K1
	VGATHERDPD (AX)(Y0*8), K1, Z2
	KXNORW K2, K2, K2
	VGATHERDPD (AX)(Y1*8), K2, Z3
	VCMPPD $0x12, Z9, Z2, K3
	VCMPPD $0x12, Z9, Z3, K4
	KUNPCKBW K3, K4, K5
	KNOTW K5, K6
	KMOVW K5, R10
	VPCOMPRESSD Z0, K5, Z1
	VMOVDQU32 Z1, (DX)
	VPCOMPRESSD Z0, K6, Z4
	VMOVDQU32 Z4, (SI)
	POPCNTL R10, R12
	LEAQ (DX)(R12*4), DX
	ADDQ R12, R8
	MOVQ $16, R13
	SUBQ R12, R13
	LEAQ (SI)(R13*4), SI
	ADDQ R13, R9
	ADDQ $64, BX
	DECQ CX
	JNZ idxloop

idxdone:
	MOVQ R8, nl+48(FP)
	MOVQ R9, nr+56(FP)
	VZEROUPPER
	RET

DATA oneq<>+0(SB)/8, $1
GLOBL oneq<>(SB), RODATA|NOPTR, $8

// The subset (categorical) kernels share the numeric kernels' shape;
// only the predicate differs. Codes arrive as float64: truncate to
// int32 (NaN and out-of-range convert to INT32_MIN), sign-extend to
// qwords, and compute (subset >> code) & 1 with VPSRLVQ + VPTESTMQ.
// VPSRLVQ writes 0 for any shift count above 63, and negative or NaN
// codes become huge unsigned counts, so every out-of-range code drops
// out of the subset and routes right — the scalar loop's `code > 63`
// guard for free.

// func partitionSubSeqAVX512(col *float64, n int, su uint64, left, right *int32) (nl, nr int)
TEXT ·partitionSubSeqAVX512(SB), NOSPLIT, $0-56
	MOVQ col+0(FP), AX
	MOVQ n+8(FP), CX
	SHRQ $4, CX
	MOVQ left+24(FP), DX
	MOVQ right+32(FP), SI
	VPBROADCASTQ su+16(FP), Z8
	VPBROADCASTQ oneq<>(SB), Z7
	VMOVDQU32 iota16<>(SB), Z0
	VPBROADCASTD sixteen<>(SB), Z6
	XORQ R8, R8
	XORQ R9, R9
	TESTQ CX, CX
	JZ subseqdone

subseqloop:
	VMOVUPD (AX), Z2
	VMOVUPD 64(AX), Z3
	VCVTTPD2DQ Z2, Y10
	VCVTTPD2DQ Z3, Y11
	VPMOVSXDQ Y10, Z10
	VPMOVSXDQ Y11, Z11
	VPSRLVQ Z10, Z8, Z12
	VPSRLVQ Z11, Z8, Z13
	VPTESTMQ Z7, Z12, K3
	VPTESTMQ Z7, Z13, K4
	KUNPCKBW K3, K4, K5
	KNOTW K5, K6
	KMOVW K5, R10
	VPCOMPRESSD Z0, K5, Z1
	VMOVDQU32 Z1, (DX)
	VPCOMPRESSD Z0, K6, Z4
	VMOVDQU32 Z4, (SI)
	POPCNTL R10, R12
	LEAQ (DX)(R12*4), DX
	ADDQ R12, R8
	MOVQ $16, R13
	SUBQ R12, R13
	LEAQ (SI)(R13*4), SI
	ADDQ R13, R9
	VPADDD Z6, Z0, Z0
	ADDQ $128, AX
	DECQ CX
	JNZ subseqloop

subseqdone:
	MOVQ R8, nl+40(FP)
	MOVQ R9, nr+48(FP)
	VZEROUPPER
	RET

// func partitionSubIdxAVX512(col *float64, idx *int32, n int, su uint64, left, right *int32) (nl, nr int)
TEXT ·partitionSubIdxAVX512(SB), NOSPLIT, $0-64
	MOVQ col+0(FP), AX
	MOVQ idx+8(FP), BX
	MOVQ n+16(FP), CX
	SHRQ $4, CX
	MOVQ left+32(FP), DX
	MOVQ right+40(FP), SI
	VPBROADCASTQ su+24(FP), Z8
	VPBROADCASTQ oneq<>(SB), Z7
	XORQ R8, R8
	XORQ R9, R9
	TESTQ CX, CX
	JZ subidxdone

subidxloop:
	VMOVDQU32 (BX), Z0
	VEXTRACTI64X4 $1, Z0, Y1
	KXNORW K1, K1, K1
	VGATHERDPD (AX)(Y0*8), K1, Z2
	KXNORW K2, K2, K2
	VGATHERDPD (AX)(Y1*8), K2, Z3
	VCVTTPD2DQ Z2, Y10
	VCVTTPD2DQ Z3, Y11
	VPMOVSXDQ Y10, Z10
	VPMOVSXDQ Y11, Z11
	VPSRLVQ Z10, Z8, Z12
	VPSRLVQ Z11, Z8, Z13
	VPTESTMQ Z7, Z12, K3
	VPTESTMQ Z7, Z13, K4
	KUNPCKBW K3, K4, K5
	KNOTW K5, K6
	KMOVW K5, R10
	VPCOMPRESSD Z0, K5, Z1
	VMOVDQU32 Z1, (DX)
	VPCOMPRESSD Z0, K6, Z4
	VMOVDQU32 Z4, (SI)
	POPCNTL R10, R12
	LEAQ (DX)(R12*4), DX
	ADDQ R12, R8
	MOVQ $16, R13
	SUBQ R12, R13
	LEAQ (SI)(R13*4), SI
	ADDQ R13, R9
	ADDQ $64, BX
	DECQ CX
	JNZ subidxloop

subidxdone:
	MOVQ R8, nl+48(FP)
	MOVQ R9, nr+56(FP)
	VZEROUPPER
	RET

// The leaf-pair kernels vectorize routeNode's both-children-are-leaves
// fast path: evaluate the predicate, merge-blend the two label
// broadcasts, and scatter the labels straight into out — no partition
// lists, no recursion. out elements are Go ints (8 bytes), so the
// scatter is VPSCATTERDQ with the dword row indices scaled by 8.

// func leafPairIdxAVX512(col *float64, idx *int32, n int, th float64, out *int, ll, rl int64)
TEXT ·leafPairIdxAVX512(SB), NOSPLIT, $0-56
	MOVQ col+0(FP), AX
	MOVQ idx+8(FP), BX
	MOVQ n+16(FP), CX
	SHRQ $4, CX
	MOVQ out+32(FP), DI
	VBROADCASTSD th+24(FP), Z9
	VPBROADCASTQ ll+40(FP), Z10
	VPBROADCASTQ rl+48(FP), Z11
	TESTQ CX, CX
	JZ lpidxdone

lpidxloop:
	VMOVDQU32 (BX), Z0
	VEXTRACTI64X4 $1, Z0, Y1
	KXNORW K1, K1, K1
	VGATHERDPD (AX)(Y0*8), K1, Z2
	KXNORW K2, K2, K2
	VGATHERDPD (AX)(Y1*8), K2, Z3
	VCMPPD $0x12, Z9, Z2, K3
	VCMPPD $0x12, Z9, Z3, K4
	VMOVDQA64 Z11, Z5
	VMOVDQA64 Z10, K3, Z5
	VMOVDQA64 Z11, Z6
	VMOVDQA64 Z10, K4, Z6
	KXNORW K5, K5, K5
	VPSCATTERDQ Z5, K5, (DI)(Y0*8)
	KXNORW K6, K6, K6
	VPSCATTERDQ Z6, K6, (DI)(Y1*8)
	ADDQ $64, BX
	DECQ CX
	JNZ lpidxloop

lpidxdone:
	VZEROUPPER
	RET

// func leafPairSubIdxAVX512(col *float64, idx *int32, n int, su uint64, out *int, ll, rl int64)
TEXT ·leafPairSubIdxAVX512(SB), NOSPLIT, $0-56
	MOVQ col+0(FP), AX
	MOVQ idx+8(FP), BX
	MOVQ n+16(FP), CX
	SHRQ $4, CX
	MOVQ out+32(FP), DI
	VPBROADCASTQ su+24(FP), Z8
	VPBROADCASTQ oneq<>(SB), Z7
	VPBROADCASTQ ll+40(FP), Z10
	VPBROADCASTQ rl+48(FP), Z11
	TESTQ CX, CX
	JZ lpsubdone

lpsubloop:
	VMOVDQU32 (BX), Z0
	VEXTRACTI64X4 $1, Z0, Y1
	KXNORW K1, K1, K1
	VGATHERDPD (AX)(Y0*8), K1, Z2
	KXNORW K2, K2, K2
	VGATHERDPD (AX)(Y1*8), K2, Z3
	VCVTTPD2DQ Z2, Y12
	VCVTTPD2DQ Z3, Y13
	VPMOVSXDQ Y12, Z12
	VPMOVSXDQ Y13, Z13
	VPSRLVQ Z12, Z8, Z12
	VPSRLVQ Z13, Z8, Z13
	VPTESTMQ Z7, Z12, K3
	VPTESTMQ Z7, Z13, K4
	VMOVDQA64 Z11, Z5
	VMOVDQA64 Z10, K3, Z5
	VMOVDQA64 Z11, Z6
	VMOVDQA64 Z10, K4, Z6
	KXNORW K5, K5, K5
	VPSCATTERDQ Z5, K5, (DI)(Y0*8)
	KXNORW K6, K6, K6
	VPSCATTERDQ Z6, K6, (DI)(Y1*8)
	ADDQ $64, BX
	DECQ CX
	JNZ lpsubloop

lpsubdone:
	VZEROUPPER
	RET
