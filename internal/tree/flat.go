package tree

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"github.com/boatml/boat/internal/data"
)

// FlatTree is an immutable, breadth-first, struct-of-arrays compilation of
// a Tree, built for the read path: classification touches a handful of
// small parallel arrays instead of chasing heap pointers through Node
// structs, and ClassifyChunk routes a whole columnar chunk node by node —
// each node partitions its batch of row indices in one pass over a single
// contiguous attribute column with the split constants hoisted out of the
// loop (the cleanup scan's routeChunk discipline, DESIGN.md §11, applied
// to the read path).
//
// Layout: node ids are assigned in breadth-first order, the root is id 0,
// and an internal node's children are allocated as an adjacent pair
// (right[n] == left[n]+1). Leaves self-loop (left[n] == right[n] == n)
// with a predicate that can never fire, so per-row descent loops need no
// separate leaf test: a row that reached its leaf simply stays put.
//
// Routing is the single unified predicate
//
//	goLeft = v <= thresh[n]  ||  (uint(v) < 64 && subset[n] bit uint(v) set)
//
// which reproduces split.Split.Left bit-exactly for both kinds without a
// per-node kind branch: numeric nodes store subset == 0 (the subset term
// is always false) and categorical nodes store thresh == NaN (every
// ordered comparison with NaN is false). The NaN sentinel also gives
// leaves their never-true predicate. Edge cases are therefore pinned to
// the pointer walk's behavior: NaN numeric values route right, exact
// threshold hits route left, and unseen categorical codes (bit not in the
// subset, or code >= 64) route right.
type FlatTree struct {
	schema *data.Schema
	left   []int32
	right  []int32
	attr   []int32
	thresh []float64
	subset []uint64
	label  []int32
	depth  int
	leaves int
}

// Compile flattens the tree into the struct-of-arrays layout. The input
// tree is not retained; the result is immutable and safe for concurrent
// use by any number of goroutines.
func Compile(t *Tree) (*FlatTree, error) {
	if t == nil || t.Root == nil {
		return nil, errors.New("tree: compiling nil tree")
	}
	width := len(t.Schema.Attributes)
	n := t.NumNodes()
	if int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("tree: %d nodes exceed the flat layout's int32 ids", n)
	}
	f := &FlatTree{
		schema: t.Schema,
		left:   make([]int32, 0, n),
		right:  make([]int32, 0, n),
		attr:   make([]int32, 0, n),
		thresh: make([]float64, 0, n),
		subset: make([]uint64, 0, n),
		label:  make([]int32, 0, n),
		depth:  t.Depth(),
	}
	// Breadth-first walk; the queue index is the node id, and appending
	// both children of a node together yields the adjacent-pair layout.
	queue := make([]*Node, 1, n)
	queue[0] = t.Root
	for i := 0; i < len(queue); i++ {
		nd := queue[i]
		if nd.IsLeaf() {
			f.left = append(f.left, int32(i))
			f.right = append(f.right, int32(i))
			f.attr = append(f.attr, 0)
			f.thresh = append(f.thresh, math.NaN())
			f.subset = append(f.subset, 0)
			f.label = append(f.label, int32(nd.Label))
			f.leaves++
			continue
		}
		if nd.Left == nil || nd.Right == nil {
			return nil, errors.New("tree: compiling internal node with nil child")
		}
		a := nd.Crit.Attr
		if a < 0 || a >= width {
			return nil, fmt.Errorf("tree: compiling split on attribute %d outside schema width %d", a, width)
		}
		li := int32(len(queue))
		queue = append(queue, nd.Left, nd.Right)
		f.left = append(f.left, li)
		f.right = append(f.right, li+1)
		f.attr = append(f.attr, int32(a))
		if nd.Crit.Kind == data.Numeric {
			f.thresh = append(f.thresh, nd.Crit.Threshold)
			f.subset = append(f.subset, 0)
		} else {
			f.thresh = append(f.thresh, math.NaN())
			f.subset = append(f.subset, nd.Crit.Subset)
		}
		f.label = append(f.label, int32(nd.Label))
	}
	return f, nil
}

// Schema returns the schema the tree classifies over.
func (f *FlatTree) Schema() *data.Schema { return f.schema }

// NumNodes returns the total node count.
func (f *FlatTree) NumNodes() int { return len(f.left) }

// NumLeaves returns the leaf count.
func (f *FlatTree) NumLeaves() int { return f.leaves }

// Depth returns the maximum number of edges from the root to a leaf.
func (f *FlatTree) Depth() int { return f.depth }

// IsLeafNode reports whether node n is a leaf (leaves self-loop).
func (f *FlatTree) IsLeafNode(n int32) bool { return f.left[n] == n }

// LeftChild and RightChild return node n's children (n itself for leaves).
func (f *FlatTree) LeftChild(n int32) int32  { return f.left[n] }
func (f *FlatTree) RightChild(n int32) int32 { return f.right[n] }

// Label returns node n's class label.
func (f *FlatTree) Label(n int32) int { return int(f.label[n]) }

// GoesLeft evaluates node n's routing predicate on a tuple. It is the
// scalar form of the kernel predicate, exposed so tree-shaped batch code
// outside this package (the skeleton phase's sample partition in core)
// routes with the same compiled criteria as the inference path.
func (f *FlatTree) GoesLeft(n int32, tp data.Tuple) bool {
	v := tp.Values[f.attr[n]]
	code := uint(v)
	bit := f.subset[n] >> (code & 63) & 1
	if code > 63 {
		bit = 0
	}
	return bit != 0 || v <= f.thresh[n]
}

// Classify routes one tuple to a leaf and returns its label. It is
// bit-identical to Tree.Classify on the source tree.
func (f *FlatTree) Classify(tp data.Tuple) int {
	n := int32(0)
	for f.left[n] != n {
		v := tp.Values[f.attr[n]]
		code := uint(v)
		bit := f.subset[n] >> (code & 63) & 1
		if code > 63 {
			bit = 0
		}
		next := f.right[n]
		if bit != 0 {
			next = f.left[n]
		}
		if v <= f.thresh[n] {
			next = f.left[n]
		}
		n = next
	}
	return int(f.label[n])
}

// ClassifyScratch holds the per-depth row-index partitions of one
// goroutine's chunk classification. The partition written while routing a
// chunk through depth d stays live while the children route with the
// buffers of depth d+1 and below — the same discipline as the cleanup
// scan's routeScratch. Buffers are grown on first use and reused for every
// subsequent chunk, so the steady state allocates nothing. A scratch is
// single-goroutine state; the predictor keeps one per worker.
type ClassifyScratch struct {
	levels [][]int32
}

// NewClassifyScratch returns an empty scratch; buffers are sized lazily by
// the first chunks routed through it.
func NewClassifyScratch() *ClassifyScratch { return &ClassifyScratch{} }

// at returns the index buffer for a recursion depth, sized to rows. One
// buffer serves both partition halves: the left half grows from the front
// and the right half from the back.
func (sc *ClassifyScratch) at(depth, rows int) []int32 {
	for len(sc.levels) <= depth {
		sc.levels = append(sc.levels, nil)
	}
	if cap(sc.levels[depth]) < rows {
		sc.levels[depth] = make([]int32, rows)
	}
	return sc.levels[depth][:rows]
}

// scratchPool recycles ClassifyChunk's scratch so steady-state chunk
// classification allocates nothing.
var scratchPool = sync.Pool{
	New: func() any { return NewClassifyScratch() },
}

// ClassifyChunk routes every row of the chunk to a leaf and writes the
// labels into out, which must have at least ch.Len() entries. Scratch is
// pooled; the steady state performs zero allocations. Safe for concurrent
// use.
func (f *FlatTree) ClassifyChunk(ch *data.Chunk, out []int) {
	if ch.Len() == 0 {
		return
	}
	sc := scratchPool.Get().(*ClassifyScratch)
	f.ClassifyChunkScratch(ch, out, sc)
	scratchPool.Put(sc)
}

// ClassifyChunkScratch is ClassifyChunk with caller-owned scratch, for
// callers that manage per-worker scratch themselves — the parallel
// predictor's workers and the benchmarks use it to keep the hot loop free
// of pool traffic.
func (f *FlatTree) ClassifyChunkScratch(ch *data.Chunk, out []int, sc *ClassifyScratch) {
	if ch.Len() == 0 {
		return
	}
	// Trim (and bounds-check) out to the chunk length up front: the
	// kernel's raw-pointer stores rely on every row index being a valid
	// index into out.
	f.routeNode(ch, 0, nil, out[:ch.Len()], sc, 0)
}

// routeNode is the batch router: it processes the chunk rows named by idx
// (all rows when idx is nil) at node n, writing leaf labels into out as
// rows arrive at leaves. An internal node partitions its batch in one pass
// over its split column — the column pointer, threshold and subset are
// hoisted out of the loop, so the inner loop touches exactly one
// contiguous column and two index buffers — and recurses with the child
// batches. Rows leave the active set the moment they reach a leaf, so the
// total work tracks the sum of actual root-to-leaf path lengths rather
// than Depth()·rows, and each node's column slice stays hot across the
// whole batch (the cleanup scan's routeChunk discipline, DESIGN.md §11,
// applied to the read path). Batches that shrink below descendCutoff
// switch to a per-row descent: deep in a large tree most nodes see only a
// handful of rows, where the per-node partition setup costs more than
// simply walking those rows to their leaves.
//
// The split predicate stays the unified form documented on FlatTree:
// numeric nodes (subset == 0) test v <= thresh with NaN routing right, and
// categorical nodes (thresh == NaN, so the threshold term can never fire)
// test the subset bit with out-of-range codes routing right — bit-exact
// with Tree.Classify in both arms.
//
// The inner loops index through raw pointers (unsafe.Add) instead of
// slices: the partition cursors advance data-dependently, so the compiler
// cannot prove any of the five slice accesses per row in bounds, and the
// resulting checks cost ~30% of the kernel. Every access is bounded by
// construction — callers establish len(out) >= ch.Len() and routeNode
// maintains the rest:
//
//   - idx entries are row numbers previously produced by a range loop
//     over a column of ch, so 0 <= r < ch.Len() == len(col) <= len(out);
//   - the left and right halves of the partition buffer each hold m =
//     batch-size entries, and after k rows the cursors satisfy
//     nl+nr == k < m, so both stores land below m.
func (f *FlatTree) routeNode(ch *data.Chunk, n int32, idx []int32, out []int, sc *ClassifyScratch, depth int) {
	if f.left[n] == n {
		lbl := int(f.label[n])
		if idx == nil {
			out = out[:ch.Len()]
			for i := range out {
				out[i] = lbl
			}
			return
		}
		for _, r := range idx {
			out[r] = lbl
		}
		return
	}
	if idx != nil && len(idx) <= descendCutoff {
		f.descend(ch, n, idx, out)
		return
	}
	col := ch.Col(int(f.attr[n]))
	ln, rn := f.left[n], f.right[n]
	su, th := f.subset[n], f.thresh[n]
	cb := unsafe.Pointer(unsafe.SliceData(col))
	ob := unsafe.Pointer(unsafe.SliceData(out))
	const (
		szF = unsafe.Sizeof(float64(0))
		szI = unsafe.Sizeof(int32(0))
		szO = unsafe.Sizeof(int(0))
	)
	// Bottom-level fast path: when both children are leaves — the common
	// case for the deepest level, which a full-depth workload visits once
	// per row — the predicate selects directly between the two labels and
	// writes out in one pass, skipping the partition buffers and the leaf
	// recursion entirely.
	if f.left[ln] == ln && f.left[rn] == rn {
		ll, rl := int(f.label[ln]), int(f.label[rn])
		i := 0
		if useAVX512 && idx != nil && len(idx) >= avxMinBatch {
			if su != 0 {
				leafPairSubIdxAVX512(&col[0], &idx[0], len(idx), su, &out[0], int64(ll), int64(rl))
			} else {
				leafPairIdxAVX512(&col[0], &idx[0], len(idx), th, &out[0], int64(ll), int64(rl))
			}
			i = len(idx) &^ 15
		}
		if su != 0 {
			if idx == nil {
				for r, v := range col {
					code := uint(v)
					bit := su >> (code & 63) & 1
					if code > 63 {
						bit = 0
					}
					lbl := rl
					if bit != 0 {
						lbl = ll
					}
					*(*int)(unsafe.Add(ob, uintptr(r)*szO)) = lbl
				}
			} else {
				for _, r := range idx[i:] {
					v := *(*float64)(unsafe.Add(cb, uintptr(uint32(r))*szF))
					code := uint(v)
					bit := su >> (code & 63) & 1
					if code > 63 {
						bit = 0
					}
					lbl := rl
					if bit != 0 {
						lbl = ll
					}
					*(*int)(unsafe.Add(ob, uintptr(uint32(r))*szO)) = lbl
				}
			}
		} else {
			if idx == nil {
				for r, v := range col {
					lbl := rl
					if v <= th {
						lbl = ll
					}
					*(*int)(unsafe.Add(ob, uintptr(r)*szO)) = lbl
				}
			} else {
				for _, r := range idx[i:] {
					v := *(*float64)(unsafe.Add(cb, uintptr(uint32(r))*szF))
					lbl := rl
					if v <= th {
						lbl = ll
					}
					*(*int)(unsafe.Add(ob, uintptr(uint32(r))*szO)) = lbl
				}
			}
		}
		return
	}
	// General case: a branch-free partition. Every row's index is stored
	// to the head of both child lists and the predicate advances exactly
	// one of the two cursors, so the loop carries no data-dependent branch
	// to mispredict — on a mixed batch the routing direction is close to a
	// coin flip, and mispredictions, not arithmetic, are what cap a
	// branching partition. The left list grows from the front of one
	// shared buffer and the right list from its midpoint.
	m := len(idx)
	if idx == nil {
		m = len(col)
	}
	buf := sc.at(depth, 2*m)
	left, right := buf[:m], buf[m:]
	lb := unsafe.Pointer(unsafe.SliceData(left))
	rb := unsafe.Pointer(unsafe.SliceData(right))
	var nl, nr int
	if su != 0 {
		// Categorical split: same kernel shape as the numeric branch
		// below, with the subset-bit predicate.
		i := 0
		if useAVX512 && m >= avxMinBatch {
			if idx == nil {
				nl, nr = partitionSubSeqAVX512(&col[0], m, su, &left[0], &right[0])
			} else {
				nl, nr = partitionSubIdxAVX512(&col[0], &idx[0], m, su, &left[0], &right[0])
			}
			i = m &^ 15
		}
		if idx == nil {
			for ; i < m; i++ {
				v := *(*float64)(unsafe.Add(cb, uintptr(i)*szF))
				code := uint(v)
				bit := su >> (code & 63) & 1
				if code > 63 {
					bit = 0
				}
				*(*int32)(unsafe.Add(lb, uintptr(nl)*szI)) = int32(i)
				*(*int32)(unsafe.Add(rb, uintptr(nr)*szI)) = int32(i)
				nl += int(bit)
				nr += int(bit ^ 1)
			}
		} else {
			for _, r := range idx[i:] {
				v := *(*float64)(unsafe.Add(cb, uintptr(uint32(r))*szF))
				code := uint(v)
				bit := su >> (code & 63) & 1
				if code > 63 {
					bit = 0
				}
				*(*int32)(unsafe.Add(lb, uintptr(nl)*szI)) = r
				*(*int32)(unsafe.Add(rb, uintptr(nr)*szI)) = r
				nl += int(bit)
				nr += int(bit ^ 1)
			}
		}
	} else {
		// Numeric split: the AVX-512 kernels (flat_amd64.s) partition 16
		// rows per iteration — VCMPPD LE_OQ mask, VPCOMPRESSD into both
		// lists — and return the cursors after the largest multiple of 16
		// rows; the scalar loop finishes the tail. On machines without
		// AVX-512 (or other architectures) the scalar loop handles the
		// whole batch and is the reference the parity test holds the
		// assembly to.
		i := 0
		if useAVX512 && m >= avxMinBatch {
			if idx == nil {
				nl, nr = partitionSeqAVX512(&col[0], m, th, &left[0], &right[0])
			} else {
				nl, nr = partitionIdxAVX512(&col[0], &idx[0], m, th, &left[0], &right[0])
			}
			i = m &^ 15
		}
		if idx == nil {
			for ; i < m; i++ {
				v := *(*float64)(unsafe.Add(cb, uintptr(i)*szF))
				b := 0
				if v <= th {
					b = 1
				}
				*(*int32)(unsafe.Add(lb, uintptr(nl)*szI)) = int32(i)
				*(*int32)(unsafe.Add(rb, uintptr(nr)*szI)) = int32(i)
				nl += b
				nr += 1 - b
			}
		} else {
			for _, r := range idx[i:] {
				v := *(*float64)(unsafe.Add(cb, uintptr(uint32(r))*szF))
				b := 0
				if v <= th {
					b = 1
				}
				*(*int32)(unsafe.Add(lb, uintptr(nl)*szI)) = r
				*(*int32)(unsafe.Add(rb, uintptr(nr)*szI)) = r
				nl += b
				nr += 1 - b
			}
		}
	}
	if nl > 0 {
		f.routeNode(ch, ln, left[:nl], out, sc, depth+1)
	}
	if nr > 0 {
		f.routeNode(ch, rn, right[:nr], out, sc, depth+1)
	}
}

// avxMinBatch is the batch size at which routeNode hands the partition
// to the AVX-512 kernels; below it the call and mask overhead outweigh
// the vector win and the scalar loop runs alone.
const avxMinBatch = 16

// descendCutoff is the batch size below which routeNode stops
// partitioning and walks each remaining row to its leaf individually. The
// crossover sits where one node's partition setup (call, scratch lookup,
// column slicing) outweighs the batched loop's per-row savings.
const descendCutoff = 16

// descend classifies a small batch row by row from an interior starting
// node: each row walks the flat arrays to its leaf — children are
// adjacent, so the next node is left[n] + 0-or-1 and the walk needs no
// right-child load — and writes its label directly into out.
func (f *FlatTree) descend(ch *data.Chunk, start int32, idx []int32, out []int) {
	left, attr, thresh, subset := f.left, f.attr, f.thresh, f.subset
	for _, r := range idx {
		n := start
		for left[n] != n {
			v := ch.Value(int(r), int(attr[n]))
			code := uint(v)
			bit := subset[n] >> (code & 63) & 1
			if code > 63 {
				bit = 0
			}
			b := int32(bit)
			if v <= thresh[n] {
				b = 1
			}
			n = left[n] + 1 - b
		}
		out[r] = int(f.label[n])
	}
}
