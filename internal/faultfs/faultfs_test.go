package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/boatml/boat/internal/data"
)

func testSchema(t *testing.T) *data.Schema {
	t.Helper()
	return data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "c", Kind: data.Categorical, Cardinality: 4},
	}, 2)
}

func makeTuples(n int) []data.Tuple {
	out := make([]data.Tuple, n)
	for i := range out {
		out[i] = data.Tuple{Values: []float64{float64(i), float64(i % 4)}, Class: i % 2}
	}
	return out
}

// noSleep makes retry backoffs instantaneous in tests.
var noSleep = data.RetryPolicy{Sleep: func(time.Duration) {}}

// requireNoTemps fails if any temp file under dir survives in the
// process-wide registry or on disk. The registry is global, so only this
// test's own directory is inspected — an earlier test that failed before
// cleanup must not cascade here.
func requireNoTemps(t *testing.T, dir string) {
	t.Helper()
	var live []string
	for _, p := range data.LiveTempFiles() {
		if strings.HasPrefix(p, dir+string(os.PathSeparator)) {
			live = append(live, p)
		}
	}
	if len(live) != 0 {
		t.Fatalf("live temp files remain: %v", live)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "boat-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left on disk: %v", matches)
	}
}

// spillEnv builds a zero-capacity-budget environment over fs, so every
// append takes the temp-file path.
func spillEnv(dir string, fs data.FS) data.SpillEnv {
	return data.SpillEnv{Dir: dir, Budget: data.NewMemBudget(-1), FS: fs, Retry: noSleep}
}

func TestCreateFaultPermanent(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Config{Seed: 1, CreateProb: 1})
	sb := data.NewSpillBufferEnv(testSchema(t), spillEnv(dir, fs))
	err := sb.Append(makeTuples(1)[0])
	if !data.IsSpillError(err) {
		t.Fatalf("append over failing create: err = %v, want SpillError", err)
	}
	if err := sb.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	requireNoTemps(t, dir)
}

func TestCreateFaultTransientRetried(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Config{Seed: 1, CreateProb: 1, TransientFraction: 1, MaxFaults: 2})
	sb := data.NewSpillBufferEnv(testSchema(t), spillEnv(dir, fs))
	tuples := makeTuples(50)
	for _, tp := range tuples {
		if err := sb.Append(tp); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	got, err := data.ReadAll(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tuples) {
		t.Fatalf("read %d of %d tuples back", len(got), len(tuples))
	}
	if fs.Stats().Faults != 2 {
		t.Errorf("faults injected = %d, want 2", fs.Stats().Faults)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	requireNoTemps(t, dir)
}

// appendPastFlush appends enough tuples to force at least two flushes of
// the spill write buffer, returning how many were accepted before an error.
func appendPastFlush(t *testing.T, sb *data.SpillBuffer, schema *data.Schema) (accepted int, appendErr error) {
	t.Helper()
	n := 3 * (1 << 16) / data.FormatWide.TupleSize(schema)
	for _, tp := range makeTuples(n) {
		if err := sb.Append(tp); err != nil {
			return accepted, err
		}
		accepted++
	}
	return accepted, nil
}

func TestWriteFaultTransientRetried(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Config{Seed: 7, WriteProb: 1, TransientFraction: 1, MaxFaults: 3})
	schema := testSchema(t)
	sb := data.NewSpillBufferEnv(schema, spillEnv(dir, fs))
	n, err := appendPastFlush(t, sb, schema)
	if err != nil {
		t.Fatalf("append after %d tuples: %v", n, err)
	}
	if sb.Err() != nil {
		t.Fatalf("buffer poisoned by transient faults: %v", sb.Err())
	}
	got, err := data.ReadAll(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d of %d tuples back", len(got), n)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	requireNoTemps(t, dir)
}

func TestWriteFaultPermanentPoisonsButStaysScannable(t *testing.T) {
	dir := t.TempDir()
	// One permanent short write: half a flush lands on disk (a torn tuple),
	// the rest must stay buffered and correctly aligned.
	fs := New(nil, Config{Seed: 3, WriteProb: 1, MaxFaults: 1})
	schema := testSchema(t)
	sb := data.NewSpillBufferEnv(schema, spillEnv(dir, fs))
	defer sb.Close()
	n, appendErr := appendPastFlush(t, sb, schema)
	// The poisoning append itself succeeds logically (the tuple is
	// retained); only subsequent appends are refused.
	total := n
	if appendErr != nil {
		if !errors.Is(appendErr, data.ErrSpillPoisoned) {
			t.Fatalf("append error %v does not wrap ErrSpillPoisoned", appendErr)
		}
	} else {
		t.Fatal("expected the buffer to be poisoned")
	}
	if sb.Err() == nil {
		t.Fatal("Err() = nil on poisoned buffer")
	}
	// Every accepted tuple must read back exactly, in order, despite the
	// torn tuple at the end of the durable file prefix.
	got, err := data.ReadAll(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("read %d of %d accepted tuples from poisoned buffer", len(got), total)
	}
	for i, tp := range got {
		if int(tp.Values[0]) != i || tp.Class != i%2 {
			t.Fatalf("tuple %d corrupted: %v", i, tp)
		}
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	requireNoTemps(t, dir)
}

func TestResetRecoversPoisonedBuffer(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Config{Seed: 5, WriteProb: 1, MaxFaults: 1})
	schema := testSchema(t)
	sb := data.NewSpillBufferEnv(schema, spillEnv(dir, fs))
	defer sb.Close()
	if _, err := appendPastFlush(t, sb, schema); !errors.Is(err, data.ErrSpillPoisoned) {
		t.Fatalf("setup: err = %v", err)
	}
	if err := sb.Reset(); err != nil {
		t.Fatalf("reset of poisoned buffer: %v", err)
	}
	if sb.Err() != nil {
		t.Fatalf("still poisoned after reset: %v", sb.Err())
	}
	for _, tp := range makeTuples(10) {
		if err := sb.Append(tp); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	}
	if got, err := data.ReadAll(sb); err != nil || len(got) != 10 {
		t.Fatalf("after recovery: %d tuples, err %v", len(got), err)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	requireNoTemps(t, dir)
}

func TestRemoveFaultTransientRetried(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Config{Seed: 11, RemoveProb: 1, TransientFraction: 1, MaxFaults: 1})
	schema := testSchema(t)
	sb := data.NewSpillBufferEnv(schema, spillEnv(dir, fs))
	for _, tp := range makeTuples(10) {
		if err := sb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := sb.Close(); err != nil {
		t.Fatalf("close with transient remove fault: %v", err)
	}
	requireNoTemps(t, dir)
}

func TestRemoveFaultPermanentReportedAndTracked(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Config{Seed: 13, RemoveProb: 1, MaxFaults: 1})
	schema := testSchema(t)
	sb := data.NewSpillBufferEnv(schema, spillEnv(dir, fs))
	if err := sb.Append(makeTuples(1)[0]); err != nil {
		t.Fatal(err)
	}
	err := sb.Close()
	if !data.IsSpillError(err) {
		t.Fatalf("close: err = %v, want SpillError", err)
	}
	// The file could genuinely not be removed: the registry must still
	// know about it, so the leak is visible rather than silent.
	var live []string
	for _, p := range data.LiveTempFiles() {
		if strings.HasPrefix(p, dir+string(os.PathSeparator)) {
			live = append(live, p)
		}
	}
	if len(live) != 1 {
		t.Fatalf("live temp files = %v, want exactly the undeletable one", live)
	}
	if err := os.Remove(live[0]); err != nil {
		t.Fatal(err)
	}
	data.UnregisterTemp(live[0])
	requireNoTemps(t, dir)
}

func TestTupleBagUnderTransientFaults(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Config{
		Seed: 17, CreateProb: 0.3, WriteProb: 0.3, RemoveProb: 0.3,
		TransientFraction: 1, MaxFaults: 2,
	})
	schema := testSchema(t)
	bag := data.NewTupleBagEnv(schema, spillEnv(dir, fs))
	tuples := makeTuples(400)
	for _, tp := range tuples {
		if err := bag.Add(tp); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	// Remove a few and check the net content.
	for _, tp := range tuples[:5] {
		if err := bag.Remove(tp); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	if err := bag.ForEach(func(data.Tuple) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(tuples)-5 {
		t.Fatalf("net size %d, want %d", n, len(tuples)-5)
	}
	if err := bag.Close(); err != nil {
		t.Fatal(err)
	}
	requireNoTemps(t, dir)
}

func TestENOSPCAfterBytes(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil, Config{Seed: 19, ENOSPCAfterBytes: 1 << 16})
	schema := testSchema(t)
	sb := data.NewSpillBufferEnv(schema, spillEnv(dir, fs))
	var appendErr error
	var accepted int
	for _, tp := range makeTuples(3 * (1 << 16) / data.FormatWide.TupleSize(schema)) {
		if appendErr = sb.Append(tp); appendErr != nil {
			break
		}
		accepted++
	}
	if appendErr == nil {
		t.Fatal("expected ENOSPC to poison the buffer")
	}
	if !errors.Is(sb.Err(), syscall.ENOSPC) {
		t.Fatalf("poison cause %v does not wrap ENOSPC", sb.Err())
	}
	// Everything accepted is still scannable.
	got, err := data.ReadAll(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != accepted {
		t.Fatalf("read %d of %d accepted tuples after ENOSPC", len(got), accepted)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	requireNoTemps(t, dir)
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, error) {
		dir := t.TempDir()
		fs := New(nil, Config{Seed: 23, WriteProb: 0.2, TransientFraction: 0.5, MaxFaults: 4})
		schema := testSchema(t)
		sb := data.NewSpillBufferEnv(schema, spillEnv(dir, fs))
		defer sb.Close()
		var firstErr error
		for _, tp := range makeTuples(3 * (1 << 16) / data.FormatWide.TupleSize(schema)) {
			if err := sb.Append(tp); err != nil {
				firstErr = err
				break
			}
		}
		return fs.Stats(), firstErr
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || (e1 == nil) != (e2 == nil) {
		t.Fatalf("same seed, different runs: %+v/%v vs %+v/%v", s1, e1, s2, e2)
	}
}
