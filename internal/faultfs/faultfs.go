// Package faultfs wraps a data.FS with deterministic, seed-driven fault
// injection for the spill and persistence paths: transient and permanent
// write errors, short writes, ENOSPC after a byte budget, and failed
// Create/Open/Remove/Rename calls. It exists to prove — in tests and in
// boatbench soak runs — that BOAT survives an unreliable storage layer:
// every injected fault must end in either a tree bit-identical to the
// fault-free build or a clean error, with no leaked temp files and a fully
// released memory budget.
//
// Injection decisions come from a private PRNG seeded by Config.Seed, so a
// sequential run replays exactly; concurrent runs stay seed-driven but the
// interleaving of goroutines decides which operation draws which fault.
package faultfs

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"syscall"

	"github.com/boatml/boat/internal/data"
)

// Config selects the fault mix. All probabilities are per operation in
// [0, 1]; zero disables that fault class.
type Config struct {
	// Seed drives the injection PRNG.
	Seed int64
	// CreateProb fails CreateTemp calls.
	CreateProb float64
	// WriteProb fails File.Write calls with a short write (half the buffer
	// is consumed before the error).
	WriteProb float64
	// OpenProb fails Open calls.
	OpenProb float64
	// ReadProb fails Read calls on files returned by Open (no bytes are
	// consumed by a failed read, so transient read faults are cleanly
	// retryable in place).
	ReadProb float64
	// RemoveProb fails Remove calls.
	RemoveProb float64
	// RenameProb fails Rename calls.
	RenameProb float64
	// TransientFraction is the fraction of injected faults that declare
	// themselves transient (retryable); the rest are permanent.
	TransientFraction float64
	// ENOSPCAfterBytes, when > 0, makes every write fail with ENOSPC once
	// this many bytes have been written through the FS in total.
	ENOSPCAfterBytes int64
	// MaxFaults caps the number of injected faults (0 = unlimited);
	// ENOSPC exhaustion is not counted against the cap.
	MaxFaults int64
}

// Stats counts what was injected.
type Stats struct {
	Creates, Writes, Opens, Removes, Renames int64 // operations seen
	Reads                                    int64 // reads seen
	Faults                                   int64 // faults injected (excluding ENOSPC)
	Transient                                int64 // ...of which transient
	ENOSPC                                   int64 // writes refused for byte budget
}

// Fault is an injected storage error.
type Fault struct {
	Op        string
	Path      string
	transient bool
	err       error // underlying errno, if the fault models one
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "permanent"
	if f.transient {
		kind = "transient"
	}
	if f.err != nil {
		return fmt.Sprintf("faultfs: injected %s %s fault on %s: %v", kind, f.Op, f.Path, f.err)
	}
	return fmt.Sprintf("faultfs: injected %s %s fault on %s", kind, f.Op, f.Path)
}

// Transient reports whether the retry policy should retry this fault
// (consumed by data.IsTransient).
func (f *Fault) Transient() bool { return f.transient }

// Unwrap exposes the modeled errno (e.g. syscall.ENOSPC) to errors.Is.
func (f *Fault) Unwrap() error { return f.err }

// FS is a data.FS with fault injection. Safe for concurrent use.
type FS struct {
	inner data.FS
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	stats   Stats
}

// New wraps inner (nil = the real filesystem) with the fault mix of cfg.
func New(inner data.FS, cfg Config) *FS {
	if inner == nil {
		inner = data.OsFS{}
	}
	return &FS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a copy of the injection counters.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// inject decides (under the lock) whether the operation draws a fault and,
// if so, whether it is transient.
func (f *FS) inject(prob float64, seen *int64) (fault, transient bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	*seen++
	if prob <= 0 || (f.cfg.MaxFaults > 0 && f.stats.Faults >= f.cfg.MaxFaults) {
		return false, false
	}
	if f.rng.Float64() >= prob {
		return false, false
	}
	f.stats.Faults++
	transient = f.rng.Float64() < f.cfg.TransientFraction
	if transient {
		f.stats.Transient++
	}
	return true, transient
}

// CreateTemp implements data.FS.
func (f *FS) CreateTemp(dir, pattern string) (data.File, error) {
	if fault, transient := f.inject(f.cfg.CreateProb, &f.stats.Creates); fault {
		return nil, &Fault{Op: "create", Path: dir + "/" + pattern, transient: transient}
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Open implements data.FS.
func (f *FS) Open(name string) (io.ReadCloser, error) {
	if fault, transient := f.inject(f.cfg.OpenProb, &f.stats.Opens); fault {
		return nil, &Fault{Op: "open", Path: name, transient: transient}
	}
	rc, err := f.inner.Open(name)
	if err != nil || f.cfg.ReadProb <= 0 {
		return rc, err
	}
	return &faultReader{rc: rc, fs: f, name: name}, nil
}

// faultReader injects read faults on a stream returned by Open. A faulted
// read consumes nothing, so callers retrying transient faults resume
// exactly where they were.
type faultReader struct {
	rc   io.ReadCloser
	fs   *FS
	name string
}

func (r *faultReader) Read(p []byte) (int, error) {
	if fault, transient := r.fs.inject(r.fs.cfg.ReadProb, &r.fs.stats.Reads); fault {
		return 0, &Fault{Op: "read", Path: r.name, transient: transient}
	}
	return r.rc.Read(p)
}

func (r *faultReader) Close() error { return r.rc.Close() }

// Remove implements data.FS.
func (f *FS) Remove(name string) error {
	if fault, transient := f.inject(f.cfg.RemoveProb, &f.stats.Removes); fault {
		return &Fault{Op: "remove", Path: name, transient: transient}
	}
	return f.inner.Remove(name)
}

// Rename implements data.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if fault, transient := f.inject(f.cfg.RenameProb, &f.stats.Renames); fault {
		return &Fault{Op: "rename", Path: oldpath, transient: transient}
	}
	return f.inner.Rename(oldpath, newpath)
}

// faultFile intercepts writes; all other methods pass through.
type faultFile struct {
	data.File
	fs *FS
}

// Write injects short writes and ENOSPC. A short write consumes half the
// buffer before erroring, which is exactly the torn-tuple scenario the
// spill writer must survive.
func (w *faultFile) Write(p []byte) (int, error) {
	f := w.fs
	// ENOSPC byte budget (checked before the probabilistic faults so soak
	// runs can combine both).
	if f.cfg.ENOSPCAfterBytes > 0 {
		f.mu.Lock()
		if f.written >= f.cfg.ENOSPCAfterBytes {
			f.stats.ENOSPC++
			f.mu.Unlock()
			return 0, &Fault{Op: "write", Path: w.Name(), err: syscall.ENOSPC}
		}
		f.mu.Unlock()
	}
	if fault, transient := f.inject(f.cfg.WriteProb, &f.stats.Writes); fault {
		n, _ := w.File.Write(p[:len(p)/2])
		f.mu.Lock()
		f.written += int64(n)
		f.mu.Unlock()
		return n, &Fault{Op: "write", Path: w.Name(), transient: transient}
	}
	n, err := w.File.Write(p)
	f.mu.Lock()
	f.written += int64(n)
	f.mu.Unlock()
	return n, err
}
