package prune

import (
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// overgrownTree builds a deliberately overfit tree on noisy data.
func overgrownTree(t *testing.T, n int64, noise float64, seed int64) (*tree.Tree, data.Source) {
	t.Helper()
	src := gen.MustSource(gen.Config{Function: 1, Noise: noise}, n, seed)
	tuples, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	return inmem.Build(src.Schema(), tuples, inmem.Config{
		Method: split.NewGini(), MaxDepth: 12, MinSplit: 4,
	}), src
}

func TestMDLShrinksOverfitTree(t *testing.T) {
	tr, _ := overgrownTree(t, 6000, 0.20, 3)
	pruned, err := MDL(tr, MDLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumNodes() >= tr.NumNodes() {
		t.Fatalf("MDL did not shrink the tree: %d -> %d nodes", tr.NumNodes(), pruned.NumNodes())
	}
	// Pruning must not change the structure it keeps: every internal node
	// of the pruned tree appears with the same criterion in the original.
	if tr.Depth() < pruned.Depth() {
		t.Error("pruned tree deeper than original")
	}
	// The true concept (F1 on age) must survive pruning: held-out
	// accuracy of the pruned tree should not collapse.
	holdout := gen.MustSource(gen.Config{Function: 1, Noise: 0}, 5000, 99)
	rate, err := pruned.MisclassificationRate(holdout)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 0.10 {
		t.Errorf("pruned tree held-out error %v too high", rate)
	}
}

func TestMDLKeepsCleanStructure(t *testing.T) {
	// On noise-free, perfectly learnable data the true splits must
	// survive MDL pruning.
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0}, 5000, 7)
	tuples, _ := data.ReadAll(src)
	tr := inmem.Build(src.Schema(), tuples, inmem.Config{Method: split.NewGini(), MaxDepth: 6})
	pruned, err := MDL(tr, MDLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Root.IsLeaf() {
		t.Fatal("MDL collapsed a clean concept to a single leaf")
	}
	rate, err := pruned.MisclassificationRate(src)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 0.01 {
		t.Errorf("training error after pruning a clean tree: %v", rate)
	}
}

func TestMDLDoesNotMutateInput(t *testing.T) {
	tr, _ := overgrownTree(t, 3000, 0.2, 11)
	before := tr.String()
	if _, err := MDL(tr, MDLOptions{}); err != nil {
		t.Fatal(err)
	}
	if tr.String() != before {
		t.Error("MDL mutated its input tree")
	}
}

func TestMDLErrors(t *testing.T) {
	if _, err := MDL(nil, MDLOptions{}); err == nil {
		t.Error("nil tree accepted")
	}
	schema := gen.Schema(0)
	broken := &tree.Tree{Schema: schema, Root: &tree.Node{Label: 1}} // no class counts
	if _, err := MDL(broken, MDLOptions{}); err == nil {
		t.Error("node without class counts accepted")
	}
}

func TestReducedErrorPruning(t *testing.T) {
	tr, _ := overgrownTree(t, 6000, 0.20, 5)
	validation := gen.MustSource(gen.Config{Function: 1, Noise: 0.20}, 4000, 77)
	pruned, err := ReducedError(tr, validation)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumNodes() >= tr.NumNodes() {
		t.Fatalf("reduced-error pruning did not shrink: %d -> %d", tr.NumNodes(), pruned.NumNodes())
	}
	// Pruning can only improve (or keep) validation error.
	origRate, _ := tr.MisclassificationRate(validation)
	prunedRate, _ := pruned.MisclassificationRate(validation)
	if prunedRate > origRate+1e-12 {
		t.Errorf("validation error worsened: %v -> %v", origRate, prunedRate)
	}
}

func TestReducedErrorSchemaMismatch(t *testing.T) {
	tr, _ := overgrownTree(t, 1000, 0.1, 1)
	other := data.NewMemSource(data.MustSchema(
		[]data.Attribute{{Name: "z", Kind: data.Numeric}}, 2), nil)
	if _, err := ReducedError(tr, other); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestReducedErrorEmptyValidation(t *testing.T) {
	tr, src := overgrownTree(t, 1000, 0.1, 2)
	empty := data.NewMemSource(src.Schema(), nil)
	pruned, err := ReducedError(tr, empty)
	if err != nil {
		t.Fatal(err)
	}
	// With no validation evidence everything ties at zero errors and the
	// whole tree collapses — the textbook behavior of REP.
	if !pruned.Root.IsLeaf() {
		t.Error("empty validation set should collapse the tree")
	}
}

func TestPrunedTreePredictionsConsistent(t *testing.T) {
	// Property: for tuples routed to an unpruned region, predictions
	// agree with the original tree.
	tr, src := overgrownTree(t, 4000, 0.15, 13)
	pruned, err := MDL(tr, MDLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_ = rng
	disagreements := 0
	total := 0
	data.ForEach(src, func(tp data.Tuple) error {
		total++
		if tr.Classify(tp) != pruned.Classify(tp) {
			disagreements++
		}
		return nil
	})
	// Pruned leaves use majority labels, so some disagreement is
	// expected, but it must stay a minority phenomenon on training data.
	if disagreements*4 > total {
		t.Errorf("pruning changed %d/%d training predictions", disagreements, total)
	}
}
