// Package prune implements the pruning phase of decision tree
// construction. The paper concentrates on the growth phase and treats
// pruning as orthogonal (Section 2.1), pointing at MDL-based pruning
// [MAR96, RS98] as the standard choice for large datasets; this package
// provides that MDL pruning (in the spirit of SLIQ's two-part code) plus
// classical reduced-error pruning against a validation set.
//
// Both algorithms return a new tree; the input tree is never modified, so
// a BOAT model's maintained (unpruned) tree keeps its incremental
// guarantees while pruned snapshots are published to consumers.
package prune

import (
	"errors"
	"math"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// MDLOptions tunes the MDL code lengths.
type MDLOptions struct {
	// SplitPointBits is the code length charged for describing a numeric
	// split point (log2 of the typical number of candidate split points;
	// 0 selects 20, i.e. about a million candidates).
	SplitPointBits float64
}

// MDL prunes the tree bottom-up under a two-part minimum-description-
// length criterion: a subtree survives only if encoding it plus the data
// given it is cheaper than encoding its family's class labels directly.
//
// Code lengths (bits):
//
//	leaf:     1 + n*H(counts) + (k-1)/2 * log2(n+1)
//	internal: 1 + log2(m) + splitBits + cost(left) + cost(right)
//
// where H is the empirical class entropy, m the number of predictor
// attributes, and splitBits the cost of the splitting predicate
// (SplitPointBits for numeric splits, one bit per category for
// categorical subsets). Nodes must carry ClassCounts (all builders in
// this repository produce them).
func MDL(t *tree.Tree, opt MDLOptions) (*tree.Tree, error) {
	if t == nil || t.Root == nil {
		return nil, errors.New("prune: nil tree")
	}
	if opt.SplitPointBits <= 0 {
		opt.SplitPointBits = 20
	}
	m := float64(len(t.Schema.Attributes))
	root, _, err := mdlNode(t.Schema, t.Root, m, opt)
	if err != nil {
		return nil, err
	}
	return &tree.Tree{Schema: t.Schema, Root: root}, nil
}

func mdlNode(schema *data.Schema, n *tree.Node, m float64, opt MDLOptions) (*tree.Node, float64, error) {
	if n.ClassCounts == nil {
		return nil, 0, errors.New("prune: node without class counts")
	}
	leafCost := 1 + dataCode(n.ClassCounts)
	if n.IsLeaf() {
		return cloneLeaf(n), leafCost, nil
	}
	left, leftCost, err := mdlNode(schema, n.Left, m, opt)
	if err != nil {
		return nil, 0, err
	}
	right, rightCost, err := mdlNode(schema, n.Right, m, opt)
	if err != nil {
		return nil, 0, err
	}
	splitBits := math.Log2(m)
	if n.Crit.Kind == data.Numeric {
		splitBits += opt.SplitPointBits
	} else {
		splitBits += float64(schema.Attributes[n.Crit.Attr].Cardinality)
	}
	subtreeCost := 1 + splitBits + leftCost + rightCost
	if leafCost <= subtreeCost {
		return cloneLeaf(n), leafCost, nil
	}
	out := &tree.Node{
		Crit:        n.Crit,
		Left:        left,
		Right:       right,
		Label:       n.Label,
		ClassCounts: cloneCounts(n.ClassCounts),
	}
	return out, subtreeCost, nil
}

// dataCode is the two-part code length of a leaf's class labels:
// n*H(p) bits for the labels plus (k-1)/2*log2(n+1) for the model
// (the class distribution parameters).
func dataCode(counts []int64) float64 {
	var n int64
	k := 0
	for _, c := range counts {
		n += c
		if c > 0 {
			k++
		}
	}
	if n == 0 {
		return 0
	}
	h := split.Entropy.Impurity(counts)
	return float64(n)*h + float64(k-1)/2*math.Log2(float64(n)+1)
}

// ReducedError prunes bottom-up against a validation set: a subtree is
// collapsed to a leaf whenever the leaf's majority label misclassifies no
// more validation tuples than the subtree does. Standard, simple, and
// safe when a holdout set is available.
func ReducedError(t *tree.Tree, validation data.Source) (*tree.Tree, error) {
	if t == nil || t.Root == nil {
		return nil, errors.New("prune: nil tree")
	}
	if !t.Schema.Equal(validation.Schema()) {
		return nil, data.ErrSchemaMismatch
	}
	// Collect per-node validation class counts by routing every tuple.
	counts := map[*tree.Node][]int64{}
	k := t.Schema.ClassCount
	err := data.ForEach(validation, func(tp data.Tuple) error {
		n := t.Root
		for {
			row := counts[n]
			if row == nil {
				row = make([]int64, k)
				counts[n] = row
			}
			row[tp.Class]++
			if n.IsLeaf() {
				return nil
			}
			if n.Crit.Left(tp) {
				n = n.Left
			} else {
				n = n.Right
			}
		}
	})
	if err != nil {
		return nil, err
	}
	root, _ := repNode(t.Root, counts)
	return &tree.Tree{Schema: t.Schema, Root: root}, nil
}

// repNode returns the pruned clone and its validation error count.
func repNode(n *tree.Node, counts map[*tree.Node][]int64) (*tree.Node, int64) {
	leafErr := errorsAsLeaf(n, counts[n])
	if n.IsLeaf() {
		return cloneLeaf(n), leafErr
	}
	left, leftErr := repNode(n.Left, counts)
	right, rightErr := repNode(n.Right, counts)
	if leafErr <= leftErr+rightErr {
		return cloneLeaf(n), leafErr
	}
	return &tree.Node{
		Crit:        n.Crit,
		Left:        left,
		Right:       right,
		Label:       n.Label,
		ClassCounts: cloneCounts(n.ClassCounts),
	}, leftErr + rightErr
}

// errorsAsLeaf counts the validation tuples at n that the node's label
// (the training majority) would misclassify.
func errorsAsLeaf(n *tree.Node, valCounts []int64) int64 {
	var e int64
	for class, c := range valCounts {
		if class != n.Label {
			e += c
		}
	}
	return e
}

func cloneLeaf(n *tree.Node) *tree.Node {
	return &tree.Node{Label: n.Label, ClassCounts: cloneCounts(n.ClassCounts)}
}

func cloneCounts(c []int64) []int64 {
	out := make([]int64, len(c))
	copy(out, c)
	return out
}
