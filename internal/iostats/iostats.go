// Package iostats provides hardware-independent cost accounting for the
// experimental evaluation: the number of sequential scans started over the
// training database, tuples and bytes read, and tuples and bytes written to
// temporary storage.
//
// The BOAT paper's headline result — several tree levels per database scan
// instead of one scan per level — is architecture-independent, so scan and
// tuple counts are the primary reproduction metric alongside wall-clock
// time.
package iostats

import (
	"fmt"
	"sync/atomic"

	"github.com/boatml/boat/internal/data"
)

// Stats accumulates I/O counters. All methods are safe for concurrent use.
// The zero value is ready to use.
type Stats struct {
	scans       atomic.Int64
	tuplesRead  atomic.Int64
	bytesRead   atomic.Int64
	physBytes   atomic.Int64
	spillTuples atomic.Int64
	spillBytes  atomic.Int64

	// Failure/retry accounting for the hardened spill path.
	spillRetries  atomic.Int64
	spillErrors   atomic.Int64
	scanFallbacks atomic.Int64
	scanRetries   atomic.Int64

	// Heap-allocation accounting (runtime.MemStats deltas recorded by the
	// benchmark harnesses around a measured region). Divided by TuplesRead
	// they yield allocs/tuple and bytes/tuple, the steady-state-allocation
	// metric of the columnar scan path.
	allocObjects atomic.Int64
	allocBytes   atomic.Int64
}

// RecordScan notes the start of one sequential scan over a tracked source.
func (s *Stats) RecordScan() {
	if s != nil {
		s.scans.Add(1)
	}
}

// RecordRead notes tuples/bytes delivered by a tracked scan.
func (s *Stats) RecordRead(tuples, bytes int64) {
	if s != nil {
		s.tuplesRead.Add(tuples)
		s.bytesRead.Add(bytes)
	}
}

// RecordPhysRead notes bytes that actually crossed the filesystem
// boundary. Distinct from RecordRead's logical tuple bytes: a compressed
// columnar block delivers more tuple bytes than it reads, so the two
// counters diverge exactly by the compression the on-disk format bought.
func (s *Stats) RecordPhysRead(bytes int64) {
	if s != nil {
		s.physBytes.Add(bytes)
	}
}

// RecordSpill implements data.SpillRecorder.
func (s *Stats) RecordSpill(tuples, bytes int64) {
	if s != nil {
		s.spillTuples.Add(tuples)
		s.spillBytes.Add(bytes)
	}
}

// RecordSpillRetry implements data.FaultRecorder: one retried transient
// spill-path fault.
func (s *Stats) RecordSpillRetry() {
	if s != nil {
		s.spillRetries.Add(1)
	}
}

// RecordSpillError implements data.FaultRecorder: one spill-path operation
// that failed for good after retries.
func (s *Stats) RecordSpillError() {
	if s != nil {
		s.spillErrors.Add(1)
	}
}

// RecordScanFallback notes a sharded cleanup scan that failed on a storage
// fault and fell back to the sequential scan.
func (s *Stats) RecordScanFallback() {
	if s != nil {
		s.scanFallbacks.Add(1)
	}
}

// RecordScanRetry notes a cleanup scan restarted from scratch after a
// storage fault.
func (s *Stats) RecordScanRetry() {
	if s != nil {
		s.scanRetries.Add(1)
	}
}

// RecordAllocs notes heap allocations (object and byte counts) attributed
// to a measured region.
func (s *Stats) RecordAllocs(objects, bytes int64) {
	if s != nil {
		s.allocObjects.Add(objects)
		s.allocBytes.Add(bytes)
	}
}

// Scans returns the number of scans started.
func (s *Stats) Scans() int64 { return s.scans.Load() }

// TuplesRead returns the number of tuples read by tracked scans.
func (s *Stats) TuplesRead() int64 { return s.tuplesRead.Load() }

// BytesRead returns the logical (decoded tuple) bytes read by tracked
// scans.
func (s *Stats) BytesRead() int64 { return s.bytesRead.Load() }

// PhysBytesRead returns the physical bytes read from the filesystem by
// tracked scans.
func (s *Stats) PhysBytesRead() int64 { return s.physBytes.Load() }

// SpillTuples returns the tuples written to temporary storage.
func (s *Stats) SpillTuples() int64 { return s.spillTuples.Load() }

// SpillBytes returns the bytes written to temporary storage.
func (s *Stats) SpillBytes() int64 { return s.spillBytes.Load() }

// SpillRetries returns the transient spill-path faults that were retried.
func (s *Stats) SpillRetries() int64 { return s.spillRetries.Load() }

// SpillErrors returns the spill-path operations that failed after retries.
func (s *Stats) SpillErrors() int64 { return s.spillErrors.Load() }

// ScanFallbacks returns the sharded scans that fell back to sequential.
func (s *Stats) ScanFallbacks() int64 { return s.scanFallbacks.Load() }

// ScanRetries returns the cleanup scans restarted after storage faults.
func (s *Stats) ScanRetries() int64 { return s.scanRetries.Load() }

// AllocObjects returns the recorded heap allocation count.
func (s *Stats) AllocObjects() int64 { return s.allocObjects.Load() }

// AllocBytes returns the recorded heap allocation bytes.
func (s *Stats) AllocBytes() int64 { return s.allocBytes.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.scans.Store(0)
	s.tuplesRead.Store(0)
	s.bytesRead.Store(0)
	s.physBytes.Store(0)
	s.spillTuples.Store(0)
	s.spillBytes.Store(0)
	s.spillRetries.Store(0)
	s.spillErrors.Store(0)
	s.scanFallbacks.Store(0)
	s.scanRetries.Store(0)
	s.allocObjects.Store(0)
	s.allocBytes.Store(0)
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	Scans      int64
	TuplesRead int64
	// BytesRead is the logical volume: tuples delivered times the decoded
	// per-tuple size of the source's natural encoding.
	BytesRead int64
	// PhysBytesRead is the physical volume: bytes actually read from the
	// filesystem. For uncompressed row files the two coincide; for
	// block-compressed columnar files PhysBytesRead is smaller by the
	// compression ratio.
	PhysBytesRead int64
	SpillTuples   int64
	SpillBytes    int64

	SpillRetries  int64
	SpillErrors   int64
	ScanFallbacks int64
	ScanRetries   int64

	AllocObjects int64
	AllocBytes   int64
}

// AllocsPerTuple returns AllocObjects divided by TuplesRead (0 when no
// tuples were read).
func (s Snapshot) AllocsPerTuple() float64 {
	if s.TuplesRead == 0 {
		return 0
	}
	return float64(s.AllocObjects) / float64(s.TuplesRead)
}

// AllocBytesPerTuple returns AllocBytes divided by TuplesRead (0 when no
// tuples were read).
func (s Snapshot) AllocBytesPerTuple() float64 {
	if s.TuplesRead == 0 {
		return 0
	}
	return float64(s.AllocBytes) / float64(s.TuplesRead)
}

// CompressionRatio returns BytesRead divided by PhysBytesRead (0 when no
// physical bytes were recorded).
func (s Snapshot) CompressionRatio() float64 {
	if s.PhysBytesRead == 0 {
		return 0
	}
	return float64(s.BytesRead) / float64(s.PhysBytesRead)
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Scans:         s.Scans(),
		TuplesRead:    s.TuplesRead(),
		BytesRead:     s.BytesRead(),
		PhysBytesRead: s.PhysBytesRead(),
		SpillTuples:   s.SpillTuples(),
		SpillBytes:    s.SpillBytes(),
		SpillRetries:  s.SpillRetries(),
		SpillErrors:   s.SpillErrors(),
		ScanFallbacks: s.ScanFallbacks(),
		ScanRetries:   s.ScanRetries(),
		AllocObjects:  s.AllocObjects(),
		AllocBytes:    s.AllocBytes(),
	}
}

// Add returns the counter-wise sum of two snapshots (for aggregating
// per-pass accounting into one total).
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		Scans:         a.Scans + b.Scans,
		TuplesRead:    a.TuplesRead + b.TuplesRead,
		BytesRead:     a.BytesRead + b.BytesRead,
		PhysBytesRead: a.PhysBytesRead + b.PhysBytesRead,
		SpillTuples:   a.SpillTuples + b.SpillTuples,
		SpillBytes:    a.SpillBytes + b.SpillBytes,
		SpillRetries:  a.SpillRetries + b.SpillRetries,
		SpillErrors:   a.SpillErrors + b.SpillErrors,
		ScanFallbacks: a.ScanFallbacks + b.ScanFallbacks,
		ScanRetries:   a.ScanRetries + b.ScanRetries,
		AllocObjects:  a.AllocObjects + b.AllocObjects,
		AllocBytes:    a.AllocBytes + b.AllocBytes,
	}
}

// Sub returns the counter deltas since an earlier snapshot.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		Scans:         a.Scans - b.Scans,
		TuplesRead:    a.TuplesRead - b.TuplesRead,
		BytesRead:     a.BytesRead - b.BytesRead,
		PhysBytesRead: a.PhysBytesRead - b.PhysBytesRead,
		SpillTuples:   a.SpillTuples - b.SpillTuples,
		SpillBytes:    a.SpillBytes - b.SpillBytes,
		SpillRetries:  a.SpillRetries - b.SpillRetries,
		SpillErrors:   a.SpillErrors - b.SpillErrors,
		ScanFallbacks: a.ScanFallbacks - b.ScanFallbacks,
		ScanRetries:   a.ScanRetries - b.ScanRetries,
		AllocObjects:  a.AllocObjects - b.AllocObjects,
		AllocBytes:    a.AllocBytes - b.AllocBytes,
	}
}

// String renders the snapshot compactly; failure/retry counters appear
// only when non-zero.
func (s Snapshot) String() string {
	out := fmt.Sprintf("scans=%d tuples=%d bytes=%d spillTuples=%d spillBytes=%d",
		s.Scans, s.TuplesRead, s.BytesRead, s.SpillTuples, s.SpillBytes)
	if s.PhysBytesRead != 0 && s.PhysBytesRead != s.BytesRead {
		out += fmt.Sprintf(" physBytes=%d (%.2fx)", s.PhysBytesRead, s.CompressionRatio())
	}
	if s.SpillRetries != 0 || s.SpillErrors != 0 || s.ScanFallbacks != 0 || s.ScanRetries != 0 {
		out += fmt.Sprintf(" spillRetries=%d spillErrors=%d scanFallbacks=%d scanRetries=%d",
			s.SpillRetries, s.SpillErrors, s.ScanFallbacks, s.ScanRetries)
	}
	if s.AllocObjects != 0 || s.AllocBytes != 0 {
		out += fmt.Sprintf(" allocs/tuple=%.3f allocBytes/tuple=%.1f",
			s.AllocsPerTuple(), s.AllocBytesPerTuple())
	}
	return out
}

// Tracked wraps src so that every Scan and every batch read is recorded in
// stats. Bytes are accounted using the per-tuple size of the source's
// natural encoding (the actual file record size for file sources, the wide
// encoding otherwise).
func Tracked(src data.Source, stats *Stats) data.Source {
	if stats == nil {
		return src
	}
	tupleBytes := int64(data.FormatWide.TupleSize(src.Schema()))
	if fs, ok := src.(*data.FileSource); ok {
		tupleBytes = int64(fs.Format().TupleSize(src.Schema()))
	}
	return &trackedSource{inner: src, stats: stats, tupleBytes: tupleBytes}
}

type trackedSource struct {
	inner      data.Source
	stats      *Stats
	tupleBytes int64
}

func (t *trackedSource) Schema() *data.Schema { return t.inner.Schema() }
func (t *trackedSource) Count() (int64, bool) { return t.inner.Count() }

func (t *trackedSource) Scan() (data.Scanner, error) {
	sc, err := t.inner.Scan()
	if err != nil {
		return nil, err
	}
	t.stats.RecordScan()
	return &trackedScanner{inner: sc, stats: t.stats, tupleBytes: t.tupleBytes}, nil
}

// ScanChunks implements data.ChunkedSource so tracked sources keep the
// native columnar scan path of the wrapped source: the chunked scan is
// resolved against the inner source (falling back to the row adapter only
// if the inner source has no native path) and reads are recorded per
// chunk.
func (t *trackedSource) ScanChunks() (data.ChunkScanner, error) {
	sc, err := data.ScanChunks(t.inner)
	if err != nil {
		return nil, err
	}
	t.stats.RecordScan()
	return t.wrapChunkScanner(sc), nil
}

// ScanChunksPipeline implements data.PipelinedChunkSource: the pipeline
// configuration reaches the wrapped source, and the scan is tracked the
// same way as ScanChunks.
func (t *trackedSource) ScanChunksPipeline(cfg data.PipelineConfig) (data.ChunkScanner, error) {
	sc, err := data.ScanChunksPipelined(t.inner, cfg)
	if err != nil {
		return nil, err
	}
	t.stats.RecordScan()
	return t.wrapChunkScanner(sc), nil
}

// BlockSplits implements data.BlockSplitSource by forwarding to the
// wrapped source: 0 (not splittable) when the inner source has no
// block-range scan.
func (t *trackedSource) BlockSplits() int64 {
	if bs, ok := t.inner.(data.BlockSplitSource); ok {
		return bs.BlockSplits()
	}
	return 0
}

// ScanChunkRange implements data.BlockSplitSource with the same
// accounting as the whole-file scans, except that only the range
// containing block 0 records a scan: the N ranges of one block-sharded
// pass together constitute a single sequential scan over the database,
// and counting each range would inflate the paper's primary cost metric
// N-fold. Rows and physical bytes are recorded per range scanner, each
// tracking its own reader's delta, so per-worker volumes sum to exactly
// one pass with no double counting.
func (t *trackedSource) ScanChunkRange(lo, hi int64, cfg data.PipelineConfig) (data.ChunkScanner, error) {
	bs, ok := t.inner.(data.BlockSplitSource)
	if !ok {
		return nil, fmt.Errorf("iostats: source %T is not block-splittable", t.inner)
	}
	sc, err := bs.ScanChunkRange(lo, hi, cfg)
	if err != nil {
		return nil, err
	}
	if lo == 0 {
		t.stats.RecordScan()
	}
	return t.wrapChunkScanner(sc), nil
}

func (t *trackedSource) wrapChunkScanner(sc data.ChunkScanner) data.ChunkScanner {
	w := &trackedChunkScanner{inner: sc, stats: t.stats, tupleBytes: t.tupleBytes}
	w.phys, _ = sc.(data.PhysicalReader)
	return w
}

type trackedChunkScanner struct {
	inner      data.ChunkScanner
	stats      *Stats
	tupleBytes int64

	// phys, when the inner scanner reports filesystem bytes, drives the
	// physical counter by delta; otherwise physical = logical (the row
	// formats store exactly what they deliver).
	phys     data.PhysicalReader
	lastPhys int64
}

// NextChunk records the rows delivered into dst even when the inner scan
// also returns an error: a scanner may hand back a final partial chunk
// together with a terminal error, and those rows were still read.
func (t *trackedChunkScanner) NextChunk(dst *data.Chunk) error {
	before := dst.Len()
	err := t.inner.NextChunk(dst)
	n := int64(dst.Len() - before)
	if n > 0 {
		t.stats.RecordRead(n, n*t.tupleBytes)
	}
	if t.phys != nil {
		if now := t.phys.PhysicalBytesRead(); now > t.lastPhys {
			t.stats.RecordPhysRead(now - t.lastPhys)
			t.lastPhys = now
		}
	} else if n > 0 {
		t.stats.RecordPhysRead(n * t.tupleBytes)
	}
	return err
}

// PipelineStats forwards the inner scanner's pipeline report (zero when
// the scan was not pipelined). Implements data.PipelineReporter.
func (t *trackedChunkScanner) PipelineStats() data.PipelineStats {
	if pr, ok := t.inner.(data.PipelineReporter); ok {
		return pr.PipelineStats()
	}
	return data.PipelineStats{}
}

func (t *trackedChunkScanner) Close() error { return t.inner.Close() }

type trackedScanner struct {
	inner      data.Scanner
	stats      *Stats
	tupleBytes int64
}

// Next records delivered rows even when they arrive together with a
// terminal error (a final partial batch must not go uncounted).
func (t *trackedScanner) Next() ([]data.Tuple, error) {
	batch, err := t.inner.Next()
	if n := int64(len(batch)); n > 0 {
		t.stats.RecordRead(n, n*t.tupleBytes)
		t.stats.RecordPhysRead(n * t.tupleBytes)
	}
	return batch, err
}

func (t *trackedScanner) Close() error { return t.inner.Close() }
