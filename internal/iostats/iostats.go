// Package iostats provides hardware-independent cost accounting for the
// experimental evaluation: the number of sequential scans started over the
// training database, tuples and bytes read, and tuples and bytes written to
// temporary storage.
//
// The BOAT paper's headline result — several tree levels per database scan
// instead of one scan per level — is architecture-independent, so scan and
// tuple counts are the primary reproduction metric alongside wall-clock
// time.
package iostats

import (
	"fmt"
	"sync/atomic"

	"github.com/boatml/boat/internal/data"
)

// Stats accumulates I/O counters. All methods are safe for concurrent use.
// The zero value is ready to use.
type Stats struct {
	scans       atomic.Int64
	tuplesRead  atomic.Int64
	bytesRead   atomic.Int64
	spillTuples atomic.Int64
	spillBytes  atomic.Int64
}

// RecordScan notes the start of one sequential scan over a tracked source.
func (s *Stats) RecordScan() {
	if s != nil {
		s.scans.Add(1)
	}
}

// RecordRead notes tuples/bytes delivered by a tracked scan.
func (s *Stats) RecordRead(tuples, bytes int64) {
	if s != nil {
		s.tuplesRead.Add(tuples)
		s.bytesRead.Add(bytes)
	}
}

// RecordSpill implements data.SpillRecorder.
func (s *Stats) RecordSpill(tuples, bytes int64) {
	if s != nil {
		s.spillTuples.Add(tuples)
		s.spillBytes.Add(bytes)
	}
}

// Scans returns the number of scans started.
func (s *Stats) Scans() int64 { return s.scans.Load() }

// TuplesRead returns the number of tuples read by tracked scans.
func (s *Stats) TuplesRead() int64 { return s.tuplesRead.Load() }

// BytesRead returns the (estimated) bytes read by tracked scans.
func (s *Stats) BytesRead() int64 { return s.bytesRead.Load() }

// SpillTuples returns the tuples written to temporary storage.
func (s *Stats) SpillTuples() int64 { return s.spillTuples.Load() }

// SpillBytes returns the bytes written to temporary storage.
func (s *Stats) SpillBytes() int64 { return s.spillBytes.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.scans.Store(0)
	s.tuplesRead.Store(0)
	s.bytesRead.Store(0)
	s.spillTuples.Store(0)
	s.spillBytes.Store(0)
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	Scans       int64
	TuplesRead  int64
	BytesRead   int64
	SpillTuples int64
	SpillBytes  int64
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Scans:       s.Scans(),
		TuplesRead:  s.TuplesRead(),
		BytesRead:   s.BytesRead(),
		SpillTuples: s.SpillTuples(),
		SpillBytes:  s.SpillBytes(),
	}
}

// Sub returns the counter deltas since an earlier snapshot.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		Scans:       a.Scans - b.Scans,
		TuplesRead:  a.TuplesRead - b.TuplesRead,
		BytesRead:   a.BytesRead - b.BytesRead,
		SpillTuples: a.SpillTuples - b.SpillTuples,
		SpillBytes:  a.SpillBytes - b.SpillBytes,
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("scans=%d tuples=%d bytes=%d spillTuples=%d spillBytes=%d",
		s.Scans, s.TuplesRead, s.BytesRead, s.SpillTuples, s.SpillBytes)
}

// Tracked wraps src so that every Scan and every batch read is recorded in
// stats. Bytes are accounted using the per-tuple size of the source's
// natural encoding (the actual file record size for file sources, the wide
// encoding otherwise).
func Tracked(src data.Source, stats *Stats) data.Source {
	if stats == nil {
		return src
	}
	tupleBytes := int64(data.FormatWide.TupleSize(src.Schema()))
	if fs, ok := src.(*data.FileSource); ok {
		tupleBytes = int64(fs.Format().TupleSize(src.Schema()))
	}
	return &trackedSource{inner: src, stats: stats, tupleBytes: tupleBytes}
}

type trackedSource struct {
	inner      data.Source
	stats      *Stats
	tupleBytes int64
}

func (t *trackedSource) Schema() *data.Schema { return t.inner.Schema() }
func (t *trackedSource) Count() (int64, bool) { return t.inner.Count() }

func (t *trackedSource) Scan() (data.Scanner, error) {
	sc, err := t.inner.Scan()
	if err != nil {
		return nil, err
	}
	t.stats.RecordScan()
	return &trackedScanner{inner: sc, stats: t.stats, tupleBytes: t.tupleBytes}, nil
}

type trackedScanner struct {
	inner      data.Scanner
	stats      *Stats
	tupleBytes int64
}

func (t *trackedScanner) Next() ([]data.Tuple, error) {
	batch, err := t.inner.Next()
	if err == nil {
		n := int64(len(batch))
		t.stats.RecordRead(n, n*t.tupleBytes)
	}
	return batch, err
}

func (t *trackedScanner) Close() error { return t.inner.Close() }
