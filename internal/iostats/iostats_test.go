package iostats

import (
	"fmt"
	"sync"
	"testing"

	"github.com/boatml/boat/internal/data"
)

func testSchema() *data.Schema {
	return data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "y", Kind: data.Numeric},
	}, 2)
}

func testTuples(n int) []data.Tuple {
	out := make([]data.Tuple, n)
	for i := range out {
		out[i] = data.Tuple{Values: []float64{float64(i), 0}, Class: i % 2}
	}
	return out
}

func TestTrackedCountsScansAndTuples(t *testing.T) {
	var st Stats
	src := Tracked(data.NewMemSource(testSchema(), testTuples(2500)), &st)
	for pass := 0; pass < 3; pass++ {
		if _, err := data.CountTuples(src); err != nil {
			t.Fatal(err)
		}
	}
	// Count is known without scanning for MemSource, so force scans.
	for pass := 0; pass < 3; pass++ {
		var n int64
		if err := data.ForEach(src, func(data.Tuple) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 2500 {
			t.Fatalf("scan saw %d tuples", n)
		}
	}
	if st.Scans() != 3 {
		t.Errorf("Scans = %d, want 3", st.Scans())
	}
	if st.TuplesRead() != 7500 {
		t.Errorf("TuplesRead = %d, want 7500", st.TuplesRead())
	}
	wantBytes := int64(7500) * int64(data.FormatWide.TupleSize(testSchema()))
	if st.BytesRead() != wantBytes {
		t.Errorf("BytesRead = %d, want %d", st.BytesRead(), wantBytes)
	}
}

func TestTrackedNilStatsPassthrough(t *testing.T) {
	src := data.NewMemSource(testSchema(), testTuples(10))
	if Tracked(src, nil) != data.Source(src) {
		t.Error("nil stats should return the source unchanged")
	}
}

func TestTrackedFileUsesRecordSize(t *testing.T) {
	path := t.TempDir() + "/d.boat"
	if _, err := data.WriteFile(path, data.NewMemSource(testSchema(), testTuples(100)), data.FormatCompact); err != nil {
		t.Fatal(err)
	}
	fs, err := data.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	src := Tracked(fs, &st)
	if err := data.ForEach(src, func(data.Tuple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := int64(100) * int64(data.FormatCompact.TupleSize(testSchema())) // 12 bytes/tuple
	if st.BytesRead() != want {
		t.Errorf("BytesRead = %d, want %d (compact record size)", st.BytesRead(), want)
	}
}

func TestSnapshotSubAndReset(t *testing.T) {
	var st Stats
	st.RecordScan()
	st.RecordRead(10, 100)
	st.RecordSpill(5, 50)
	a := st.Snapshot()
	st.RecordScan()
	st.RecordRead(10, 100)
	d := st.Snapshot().Sub(a)
	if d.Scans != 1 || d.TuplesRead != 10 || d.BytesRead != 100 || d.SpillTuples != 0 {
		t.Errorf("delta = %+v", d)
	}
	if s := d.String(); s == "" {
		t.Error("empty String")
	}
	st.Reset()
	if z := st.Snapshot(); z != (Snapshot{}) {
		t.Errorf("after reset: %+v", z)
	}
}

func TestNilStatsMethodsSafe(t *testing.T) {
	var s *Stats
	s.RecordScan()
	s.RecordRead(1, 1)
	s.RecordSpill(1, 1)
	if s.Snapshot() != (Snapshot{}) {
		t.Error("nil stats snapshot should be zero")
	}
}

// TestConcurrentRecording pins down the concurrency contract the parallel
// build phases rely on: Stats methods may be called from many goroutines
// (per-worker spill buffers, concurrent leaf rebuilds scanning tracked
// sources) without losing counts. Run under -race this also proves the
// counters are data-race free.
func TestConcurrentRecording(t *testing.T) {
	var st Stats
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				st.RecordScan()
				st.RecordRead(2, 80)
				st.RecordSpill(1, 40)
				_ = st.Snapshot()
			}
		}()
	}
	wg.Wait()
	want := Snapshot{
		Scans:       workers * perWorker,
		TuplesRead:  2 * workers * perWorker,
		BytesRead:   80 * workers * perWorker,
		SpillTuples: workers * perWorker,
		SpillBytes:  40 * workers * perWorker,
	}
	if got := st.Snapshot(); got != want {
		t.Fatalf("lost updates: got %v, want %v", got, want)
	}
}

// TestConcurrentTrackedScans scans one tracked source from several
// goroutines at once, as the sharded cleanup scan's nested rebuilds do.
func TestConcurrentTrackedScans(t *testing.T) {
	var st Stats
	src := Tracked(data.NewMemSource(testSchema(), testTuples(500)), &st)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n int64
			if err := data.ForEach(src, func(data.Tuple) error { n++; return nil }); err != nil {
				errs <- err
				return
			}
			if n != 500 {
				errs <- fmt.Errorf("scan saw %d tuples, want 500", n)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := st.Scans(); got != workers {
		t.Fatalf("recorded %d scans, want %d", got, workers)
	}
	if got := st.TuplesRead(); got != workers*500 {
		t.Fatalf("recorded %d tuples, want %d", got, workers*500)
	}
}
