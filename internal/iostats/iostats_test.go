package iostats

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
)

func testSchema() *data.Schema {
	return data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "y", Kind: data.Numeric},
	}, 2)
}

func testTuples(n int) []data.Tuple {
	out := make([]data.Tuple, n)
	for i := range out {
		out[i] = data.Tuple{Values: []float64{float64(i), 0}, Class: i % 2}
	}
	return out
}

func TestTrackedCountsScansAndTuples(t *testing.T) {
	var st Stats
	src := Tracked(data.NewMemSource(testSchema(), testTuples(2500)), &st)
	for pass := 0; pass < 3; pass++ {
		if _, err := data.CountTuples(src); err != nil {
			t.Fatal(err)
		}
	}
	// Count is known without scanning for MemSource, so force scans.
	for pass := 0; pass < 3; pass++ {
		var n int64
		if err := data.ForEach(src, func(data.Tuple) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 2500 {
			t.Fatalf("scan saw %d tuples", n)
		}
	}
	if st.Scans() != 3 {
		t.Errorf("Scans = %d, want 3", st.Scans())
	}
	if st.TuplesRead() != 7500 {
		t.Errorf("TuplesRead = %d, want 7500", st.TuplesRead())
	}
	wantBytes := int64(7500) * int64(data.FormatWide.TupleSize(testSchema()))
	if st.BytesRead() != wantBytes {
		t.Errorf("BytesRead = %d, want %d", st.BytesRead(), wantBytes)
	}
}

func TestTrackedNilStatsPassthrough(t *testing.T) {
	src := data.NewMemSource(testSchema(), testTuples(10))
	if Tracked(src, nil) != data.Source(src) {
		t.Error("nil stats should return the source unchanged")
	}
}

func TestTrackedFileUsesRecordSize(t *testing.T) {
	path := t.TempDir() + "/d.boat"
	if _, err := data.WriteFile(path, data.NewMemSource(testSchema(), testTuples(100)), data.FormatCompact); err != nil {
		t.Fatal(err)
	}
	fs, err := data.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	src := Tracked(fs, &st)
	if err := data.ForEach(src, func(data.Tuple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := int64(100) * int64(data.FormatCompact.TupleSize(testSchema())) // 12 bytes/tuple
	if st.BytesRead() != want {
		t.Errorf("BytesRead = %d, want %d (compact record size)", st.BytesRead(), want)
	}
}

func TestSnapshotSubAndReset(t *testing.T) {
	var st Stats
	st.RecordScan()
	st.RecordRead(10, 100)
	st.RecordSpill(5, 50)
	a := st.Snapshot()
	st.RecordScan()
	st.RecordRead(10, 100)
	d := st.Snapshot().Sub(a)
	if d.Scans != 1 || d.TuplesRead != 10 || d.BytesRead != 100 || d.SpillTuples != 0 {
		t.Errorf("delta = %+v", d)
	}
	if s := d.String(); s == "" {
		t.Error("empty String")
	}
	st.Reset()
	if z := st.Snapshot(); z != (Snapshot{}) {
		t.Errorf("after reset: %+v", z)
	}
}

func TestNilStatsMethodsSafe(t *testing.T) {
	var s *Stats
	s.RecordScan()
	s.RecordRead(1, 1)
	s.RecordSpill(1, 1)
	if s.Snapshot() != (Snapshot{}) {
		t.Error("nil stats snapshot should be zero")
	}
}

// TestConcurrentRecording pins down the concurrency contract the parallel
// build phases rely on: Stats methods may be called from many goroutines
// (per-worker spill buffers, concurrent leaf rebuilds scanning tracked
// sources) without losing counts. Run under -race this also proves the
// counters are data-race free.
func TestConcurrentRecording(t *testing.T) {
	var st Stats
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				st.RecordScan()
				st.RecordRead(2, 80)
				st.RecordSpill(1, 40)
				_ = st.Snapshot()
			}
		}()
	}
	wg.Wait()
	want := Snapshot{
		Scans:       workers * perWorker,
		TuplesRead:  2 * workers * perWorker,
		BytesRead:   80 * workers * perWorker,
		SpillTuples: workers * perWorker,
		SpillBytes:  40 * workers * perWorker,
	}
	if got := st.Snapshot(); got != want {
		t.Fatalf("lost updates: got %v, want %v", got, want)
	}
}

// TestConcurrentTrackedScans scans one tracked source from several
// goroutines at once, as the sharded cleanup scan's nested rebuilds do.
func TestConcurrentTrackedScans(t *testing.T) {
	var st Stats
	src := Tracked(data.NewMemSource(testSchema(), testTuples(500)), &st)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n int64
			if err := data.ForEach(src, func(data.Tuple) error { n++; return nil }); err != nil {
				errs <- err
				return
			}
			if n != 500 {
				errs <- fmt.Errorf("scan saw %d tuples, want 500", n)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := st.Scans(); got != workers {
		t.Fatalf("recorded %d scans, want %d", got, workers)
	}
	if got := st.TuplesRead(); got != workers*500 {
		t.Fatalf("recorded %d tuples, want %d", got, workers*500)
	}
}

// drainChunks consumes a chunked scan over src and returns the rows seen.
func drainChunks(t *testing.T, src data.Source) int64 {
	t.Helper()
	sc, err := data.ScanChunks(src)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	chunk := data.NewChunk(len(src.Schema().Attributes), 256)
	var n int64
	for {
		chunk.Reset()
		err := sc.NextChunk(chunk)
		n += int64(chunk.Len())
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTrackedChunkedScans verifies the chunked scan path records scans,
// tuples and bytes for each source kind: in-memory (columnar mirror),
// file (native chunked reader, file record size) and generator.
func TestTrackedChunkedScans(t *testing.T) {
	schema := testSchema()
	mem := data.NewMemSource(schema, testTuples(1000))

	path := t.TempDir() + "/d.boat"
	if _, err := data.WriteFile(path, mem, data.FormatCompact); err != nil {
		t.Fatal(err)
	}
	file, err := data.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}

	g := gen.MustSource(gen.Config{Function: 1}, 1000, 5)

	cases := []struct {
		name      string
		src       data.Source
		wantBytes int64
	}{
		{"mem", mem, 1000 * int64(data.FormatWide.TupleSize(schema))},
		{"file", file, 1000 * int64(data.FormatCompact.TupleSize(schema))},
		{"gen", g, 1000 * int64(data.FormatWide.TupleSize(g.Schema()))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var st Stats
			src := Tracked(tc.src, &st)
			if n := drainChunks(t, src); n != 1000 {
				t.Fatalf("chunked scan saw %d rows, want 1000", n)
			}
			if st.Scans() != 1 {
				t.Errorf("Scans = %d, want 1", st.Scans())
			}
			if st.TuplesRead() != 1000 {
				t.Errorf("TuplesRead = %d, want 1000", st.TuplesRead())
			}
			if st.BytesRead() != tc.wantBytes {
				t.Errorf("BytesRead = %d, want %d", st.BytesRead(), tc.wantBytes)
			}
		})
	}
}

// TestTrackedGenRowScan covers the generator source on the row-at-a-time
// path (the other two kinds are covered above and in the earlier tests).
func TestTrackedGenRowScan(t *testing.T) {
	var st Stats
	src := Tracked(gen.MustSource(gen.Config{Function: 1}, 750, 11), &st)
	var n int64
	if err := data.ForEach(src, func(data.Tuple) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 750 || st.TuplesRead() != 750 || st.Scans() != 1 {
		t.Fatalf("rows=%d TuplesRead=%d Scans=%d, want 750/750/1", n, st.TuplesRead(), st.Scans())
	}
}

// errRowSource delivers its rows in one batch together with a terminal
// error, like a reader hitting corruption after a final partial batch.
type errRowSource struct {
	schema *data.Schema
	tuples []data.Tuple
	err    error
}

func (s *errRowSource) Schema() *data.Schema { return s.schema }
func (s *errRowSource) Count() (int64, bool) { return 0, false }
func (s *errRowSource) Scan() (data.Scanner, error) {
	return &errRowScanner{tuples: s.tuples, err: s.err}, nil
}

type errRowScanner struct {
	tuples []data.Tuple
	err    error
}

func (s *errRowScanner) Next() ([]data.Tuple, error) {
	batch := s.tuples
	s.tuples = nil
	return batch, s.err
}

func (s *errRowScanner) Close() error { return nil }

// errChunkSource is the chunked analogue: NextChunk fills rows into dst
// and returns a terminal error in the same call.
type errChunkSource struct {
	errRowSource
}

func (s *errChunkSource) ScanChunks() (data.ChunkScanner, error) {
	return &errChunkScanner{tuples: s.tuples, err: s.err}, nil
}

type errChunkScanner struct {
	tuples []data.Tuple
	err    error
}

func (s *errChunkScanner) NextChunk(dst *data.Chunk) error {
	for _, tu := range s.tuples {
		dst.AppendTuple(tu)
	}
	s.tuples = nil
	return s.err
}

func (s *errChunkScanner) Close() error { return nil }

// TestTrackedCountsRowsDeliveredWithError pins down the accounting fix:
// rows handed back together with a terminal error were still read and
// must be counted, on both the row and the chunked path.
func TestTrackedCountsRowsDeliveredWithError(t *testing.T) {
	boom := errors.New("disk error")
	base := errRowSource{schema: testSchema(), tuples: testTuples(7), err: boom}

	t.Run("rows", func(t *testing.T) {
		var st Stats
		src := Tracked(&base, &st)
		sc, err := src.Scan()
		if err != nil {
			t.Fatal(err)
		}
		batch, err := sc.Next()
		if len(batch) != 7 || !errors.Is(err, boom) {
			t.Fatalf("Next = (%d rows, %v), want 7 rows with the terminal error", len(batch), err)
		}
		if st.TuplesRead() != 7 {
			t.Fatalf("TuplesRead = %d, want 7 (final batch delivered with error)", st.TuplesRead())
		}
	})

	t.Run("chunks", func(t *testing.T) {
		var st Stats
		src := Tracked(&errChunkSource{errRowSource: base}, &st)
		cs, err := data.ScanChunks(src)
		if err != nil {
			t.Fatal(err)
		}
		chunk := data.NewChunk(len(base.schema.Attributes), 64)
		err = cs.NextChunk(chunk)
		if chunk.Len() != 7 || !errors.Is(err, boom) {
			t.Fatalf("NextChunk = (%d rows, %v), want 7 rows with the terminal error", chunk.Len(), err)
		}
		if st.TuplesRead() != 7 {
			t.Fatalf("TuplesRead = %d, want 7 (final chunk delivered with error)", st.TuplesRead())
		}
	})
}

// TestSnapshotAdd: Add is the counter-wise sum over every field and the
// inverse of Sub.
func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{
		Scans: 1, TuplesRead: 2, BytesRead: 3, SpillTuples: 4, SpillBytes: 5,
		SpillRetries: 6, SpillErrors: 7, ScanFallbacks: 8, ScanRetries: 9,
		AllocObjects: 10, AllocBytes: 11,
	}
	b := Snapshot{
		Scans: 100, TuplesRead: 200, BytesRead: 300, SpillTuples: 400, SpillBytes: 500,
		SpillRetries: 600, SpillErrors: 700, ScanFallbacks: 800, ScanRetries: 900,
		AllocObjects: 1000, AllocBytes: 1100,
	}
	want := Snapshot{
		Scans: 101, TuplesRead: 202, BytesRead: 303, SpillTuples: 404, SpillBytes: 505,
		SpillRetries: 606, SpillErrors: 707, ScanFallbacks: 808, ScanRetries: 909,
		AllocObjects: 1010, AllocBytes: 1111,
	}
	if got := a.Add(b); got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add/Sub round-trip = %+v, want %+v", got, a)
	}
	if got := a.Sub(a); got != (Snapshot{}) {
		t.Errorf("a.Sub(a) = %+v, want zero", got)
	}
}

// TestSnapshotString: failure and allocation counters appear only when
// non-zero, so the common all-healthy snapshot stays one short line.
func TestSnapshotString(t *testing.T) {
	clean := Snapshot{Scans: 2, TuplesRead: 10, BytesRead: 400}.String()
	if strings.Contains(clean, "spillRetries") || strings.Contains(clean, "allocs/tuple") {
		t.Errorf("clean snapshot shows failure/alloc counters: %q", clean)
	}
	faulty := Snapshot{Scans: 1, SpillRetries: 3, ScanFallbacks: 1}.String()
	if !strings.Contains(faulty, "spillRetries=3") || !strings.Contains(faulty, "scanFallbacks=1") {
		t.Errorf("faulty snapshot hides failure counters: %q", faulty)
	}
	allocs := Snapshot{TuplesRead: 10, AllocObjects: 5, AllocBytes: 160}.String()
	if !strings.Contains(allocs, "allocs/tuple=0.500") || !strings.Contains(allocs, "allocBytes/tuple=16.0") {
		t.Errorf("alloc rendering wrong: %q", allocs)
	}
}

// TestConcurrentRecordAllocs: benchmark harnesses attribute MemStats
// deltas from several goroutines; no updates may be lost.
func TestConcurrentRecordAllocs(t *testing.T) {
	var st Stats
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				st.RecordAllocs(3, 96)
				st.RecordSpillRetry()
				st.RecordScanFallback()
			}
		}()
	}
	wg.Wait()
	snap := st.Snapshot()
	if snap.AllocObjects != 3*workers*perWorker || snap.AllocBytes != 96*workers*perWorker {
		t.Fatalf("lost alloc updates: %+v", snap)
	}
	if snap.SpillRetries != workers*perWorker || snap.ScanFallbacks != workers*perWorker {
		t.Fatalf("lost fault updates: %+v", snap)
	}
	// The nil receiver stays a no-op for the fault/alloc recorders too.
	var nilStats *Stats
	nilStats.RecordAllocs(1, 1)
	nilStats.RecordSpillRetry()
	nilStats.RecordSpillError()
	nilStats.RecordScanFallback()
	nilStats.RecordScanRetry()
}

// TestTrackedPhysVsLogicalBytes pins the two-counter contract: row files
// store exactly what they deliver (physical == logical), while the
// block-compressed columnar format reads fewer filesystem bytes than the
// decoded tuple bytes it delivers, which CompressionRatio exposes.
func TestTrackedPhysVsLogicalBytes(t *testing.T) {
	schema := testSchema()
	tuples := testTuples(4000) // small-int values -> narrow column encodings
	dir := t.TempDir()

	rowPath := dir + "/d.boat"
	if _, err := data.WriteFile(rowPath, data.NewMemSource(schema, tuples), data.FormatCompact); err != nil {
		t.Fatal(err)
	}
	colPath := dir + "/d.boatc"
	if _, err := data.WriteColFile(colPath, data.NewMemSource(schema, tuples), 512); err != nil {
		t.Fatal(err)
	}

	t.Run("row", func(t *testing.T) {
		fs, err := data.OpenFile(rowPath)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if n := drainChunks(t, Tracked(fs, &st)); n != 4000 {
			t.Fatalf("scan saw %d rows", n)
		}
		snap := st.Snapshot()
		if snap.PhysBytesRead != snap.BytesRead {
			t.Fatalf("row file: phys %d != logical %d", snap.PhysBytesRead, snap.BytesRead)
		}
	})

	t.Run("columnar", func(t *testing.T) {
		cs, err := data.OpenColFile(colPath)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if n := drainChunks(t, Tracked(cs, &st)); n != 4000 {
			t.Fatalf("scan saw %d rows", n)
		}
		snap := st.Snapshot()
		if snap.PhysBytesRead == 0 || snap.PhysBytesRead >= snap.BytesRead {
			t.Fatalf("columnar: phys %d, logical %d — want 0 < phys < logical", snap.PhysBytesRead, snap.BytesRead)
		}
		if r := snap.CompressionRatio(); r <= 1 {
			t.Fatalf("CompressionRatio = %.2f, want > 1", r)
		}
		// The physical counter tracks what actually crossed the filesystem:
		// header + payload, never more than the file itself.
		if fi, err := os.Stat(colPath); err == nil && snap.PhysBytesRead > fi.Size() {
			t.Fatalf("phys %d exceeds file size %d", snap.PhysBytesRead, fi.Size())
		}
	})
}
