package core

import (
	"fmt"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/warehouse"
)

// TestIncrementalWithSpillBudget maintains a tree whose buffers overflow
// to disk throughout a sequence of updates.
func TestIncrementalWithSpillBudget(t *testing.T) {
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 100}
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.08}, 5000, 1)
	var st iostats.Stats
	bt, err := Build(base, Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 100,
		SampleSize: 1200, Seed: 3,
		MemBudgetTuples: 400, TempDir: t.TempDir(), Stats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	all, _ := data.ReadAll(base)
	for seed := int64(2); seed <= 4; seed++ {
		chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.08}, 3000, seed)
		if _, err := bt.Insert(chunk); err != nil {
			t.Fatal(err)
		}
		ct, _ := data.ReadAll(chunk)
		all = append(all, ct...)
	}
	if st.SpillTuples() == 0 {
		t.Error("expected spilling under a 400-tuple budget")
	}
	ref := inmem.Build(base.Schema(), data.CloneTuples(all), g)
	requireEqual(t, "spilled incremental", bt.Tree(), ref)
	// Now delete a chunk, still under the spill regime.
	chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.08}, 3000, 3)
	if _, err := bt.Delete(chunk); err != nil {
		t.Fatal(err)
	}
	ct, _ := data.ReadAll(chunk)
	ref = inmem.Build(base.Schema(), subtract(all, ct), g)
	requireEqual(t, "spilled delete", bt.Tree(), ref)
}

// TestIncrementalEntropy exercises the second impurity criterion through
// the full update cycle.
func TestIncrementalEntropy(t *testing.T) {
	g := inmem.Config{Method: split.NewEntropy(), MaxDepth: 4, MinSplit: 100}
	base := gen.MustSource(gen.Config{Function: 3, Noise: 0.05}, 5000, 1)
	bt, err := Build(base, Config{Method: split.NewEntropy(), MaxDepth: 4, MinSplit: 100, SampleSize: 1200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	all, _ := data.ReadAll(base)
	chunk := gen.MustSource(gen.Config{Function: 3, Noise: 0.05}, 4000, 2)
	if _, err := bt.Insert(chunk); err != nil {
		t.Fatal(err)
	}
	ct, _ := data.ReadAll(chunk)
	ref := inmem.Build(base.Schema(), append(data.CloneTuples(all), ct...), g)
	requireEqual(t, "entropy insert", bt.Tree(), ref)
}

// TestCategoricalCoarseCriteria forces a schema where the root split is
// categorical, exercising the exact-subset coarse criterion path.
func TestCategoricalCoarseCriteria(t *testing.T) {
	schema := data.MustSchema([]data.Attribute{
		{Name: "color", Kind: data.Categorical, Cardinality: 6},
		{Name: "noise", Kind: data.Numeric},
	}, 2)
	var tuples []data.Tuple
	for i := 0; i < 6000; i++ {
		code := i % 6
		class := 0
		if code == 1 || code == 4 {
			class = 1
		}
		if i%29 == 0 { // some noise
			class = 1 - class
		}
		tuples = append(tuples, data.Tuple{
			Values: []float64{float64(code), float64(i % 97)},
			Class:  class,
		})
	}
	src := data.NewMemSource(schema, tuples)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 20}
	ref := inmem.Build(schema, data.CloneTuples(tuples), g)
	if ref.Root.Crit.Kind != data.Categorical {
		t.Fatalf("setup: reference root is not categorical: %v", ref.Root.Crit)
	}
	bt, err := Build(src, Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 20, SampleSize: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	requireEqual(t, "categorical coarse", bt.Tree(), ref)

	// Incremental update over the categorical root.
	var chunk []data.Tuple
	for i := 0; i < 2000; i++ {
		code := (i + 3) % 6
		class := 0
		if code == 1 || code == 4 {
			class = 1
		}
		chunk = append(chunk, data.Tuple{
			Values: []float64{float64(code), float64(i % 83)},
			Class:  class,
		})
	}
	if _, err := bt.Insert(data.NewMemSource(schema, chunk)); err != nil {
		t.Fatal(err)
	}
	ref = inmem.Build(schema, append(data.CloneTuples(tuples), chunk...), g)
	requireEqual(t, "categorical incremental", bt.Tree(), ref)
}

// TestCategoricalSubsetChangeRebuilds: shifting the category-class
// relationship must invalidate the coarse subset and rebuild exactly.
func TestCategoricalSubsetChangeRebuilds(t *testing.T) {
	schema := data.MustSchema([]data.Attribute{
		{Name: "color", Kind: data.Categorical, Cardinality: 4},
		{Name: "x", Kind: data.Numeric},
	}, 2)
	mk := func(n int, flip bool, offset int) []data.Tuple {
		var out []data.Tuple
		for i := 0; i < n; i++ {
			code := (i + offset) % 4
			class := 0
			if code >= 2 {
				class = 1
			}
			if flip { // new regime: different subset structure
				class = 0
				if code == 0 || code == 2 {
					class = 1
				}
			}
			out = append(out, data.Tuple{
				Values: []float64{float64(code), float64(i % 53)},
				Class:  class,
			})
		}
		return out
	}
	base := mk(4000, false, 0)
	bt, err := Build(data.NewMemSource(schema, base), Config{
		Method: split.NewGini(), MaxDepth: 3, MinSplit: 20, SampleSize: 1000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	// Overwhelm the old regime with flipped data.
	chunk := mk(12000, true, 1)
	upd, err := bt.Insert(data.NewMemSource(schema, chunk))
	if err != nil {
		t.Fatal(err)
	}
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 3, MinSplit: 20}
	ref := inmem.Build(schema, append(data.CloneTuples(base), chunk...), g)
	requireEqual(t, "subset change", bt.Tree(), ref)
	if upd.RebuiltSubtrees == 0 {
		t.Error("expected a rebuild when the categorical relationship flipped")
	}
}

// TestStarJoinIncremental drives BOAT incrementally over the warehouse
// star-join view.
func TestStarJoinIncremental(t *testing.T) {
	star, err := warehouse.NewStar(300, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := star.TrainingView(8000, 1)
	bt, err := Build(base, Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 100, SampleSize: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	chunk := star.TrainingView(5000, 2)
	if _, err := bt.Insert(chunk); err != nil {
		t.Fatal(err)
	}
	all, _ := data.ReadAll(base)
	ct, _ := data.ReadAll(chunk)
	ref := inmem.Build(base.Schema(), append(all, ct...), inmem.Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 100,
	})
	requireEqual(t, "star-join incremental", bt.Tree(), ref)
}

// TestManySeedsStopMode fuzzes the performance-methodology configuration
// (the one the benchmark harness uses) across seeds.
func TestManySeedsStopMode(t *testing.T) {
	g := inmem.Config{Method: split.NewGini(), StopThreshold: 1000, StopAtThreshold: true}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			fn := int(seed%3)*3 + 1 // functions 1, 4, 7
			src := gen.MustSource(gen.Config{Function: fn, Noise: 0.05}, 8000, seed+100)
			ref := buildRef(t, src, g)
			bt, err := Build(src, Config{
				Method: split.NewGini(), StopThreshold: 1000, StopAtThreshold: true,
				SampleSize: 1600, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer bt.Close()
			requireEqual(t, "stop-mode fuzz", bt.Tree(), ref)
		})
	}
}
