package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/split"
)

// obsTestConfig triggers every instrumented phase on a small dataset:
// frontier promotions (StopThreshold) exercise the rebuild spans, and the
// dataset spans multiple scan chunks so the sharded scan engages when
// Parallelism > 1.
func obsTestConfig() Config {
	return Config{
		Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
		SampleSize: 800, Seed: 7, StopThreshold: 1200,
	}
}

func obsTestSource(t *testing.T) data.Source {
	t.Helper()
	return gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 3*data.DefaultChunkRows, 107)
}

// TestBuildTraceCoverageAndIODeltas is the acceptance gate of the tracer:
// at Parallelism=1 the build root span's children must cover >= 95% of the
// build wall-clock, the root's iostats delta must equal the build's total
// I/O, and the per-span self deltas must sum exactly back to the root
// delta (sequential execution attributes every counter movement to
// exactly one span).
func TestBuildTraceCoverageAndIODeltas(t *testing.T) {
	stats := &iostats.Stats{}
	tracer := obs.NewTracer(stats)
	reg := obs.NewRegistry()
	cfg := obsTestConfig()
	cfg.Parallelism = 1
	cfg.TempDir = t.TempDir()
	cfg.Stats = stats
	cfg.Trace = tracer
	cfg.Metrics = reg
	cfg.MemBudgetTuples = 2000 // force spills so spill I/O shows in span deltas

	tree, err := Build(obsTestSource(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	roots := tracer.Roots()
	if len(roots) != 1 || roots[0].Name() != "build" {
		t.Fatalf("trace roots = %v", roots)
	}
	root := roots[0]
	if cov := root.ChildCoverage(); cov < 0.95 {
		t.Fatalf("child spans cover %.1f%% of the build wall-clock, want >= 95%%", 100*cov)
	}
	if got, want := root.IODelta(), stats.Snapshot(); got != want {
		t.Fatalf("root span IO delta = %+v, want build totals %+v", got, want)
	}

	// Self deltas over the whole span tree sum exactly to the root delta.
	var sum iostats.Snapshot
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		self := s.SelfIODelta()
		sum.Scans += self.Scans
		sum.TuplesRead += self.TuplesRead
		sum.BytesRead += self.BytesRead
		sum.SpillTuples += self.SpillTuples
		sum.SpillBytes += self.SpillBytes
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	rootDelta := root.IODelta()
	if sum.Scans != rootDelta.Scans || sum.TuplesRead != rootDelta.TuplesRead ||
		sum.BytesRead != rootDelta.BytesRead || sum.SpillTuples != rootDelta.SpillTuples ||
		sum.SpillBytes != rootDelta.SpillBytes {
		t.Fatalf("self deltas sum to %+v, root delta is %+v", sum, rootDelta)
	}

	// Every instrumented phase must appear in the skeleton.
	skel := tracer.Skeleton()
	for _, phase := range []string{
		"build", "sampling", "bootstrap", "bootstrap-trees", "intersect",
		"skeleton", "cleanup-scan", "process", "verification", "leaf-completion",
	} {
		if !strings.Contains(skel, phase) {
			t.Fatalf("skeleton misses phase %q:\n%s", phase, skel)
		}
	}

	// The metrics registry saw the build: CI verdicts, scan totals, and
	// the sequential scan's shard-0 throughput.
	snap := reg.Snapshot()
	if snap.Counters["verify.ci.hit"]+snap.Counters["verify.ci.miss"] == 0 {
		t.Fatalf("no CI verdicts recorded: %+v", snap.Counters)
	}
	bs := tree.BuildStats()
	if got := snap.Counters["scan.tuples"]; got != bs.TuplesSeen {
		t.Fatalf("scan.tuples = %d, BuildStats.TuplesSeen = %d", got, bs.TuplesSeen)
	}
	if got := snap.Counters["scan.shard.0.tuples"]; got != bs.TuplesSeen {
		t.Fatalf("scan.shard.0.tuples = %d, want %d", got, bs.TuplesSeen)
	}
	if _, ok := snap.Gauges["scan.shard.0.tuples_per_sec"]; !ok {
		t.Fatalf("no shard throughput gauge: %+v", snap.Gauges)
	}
	if got := snap.Counters["rebuild.frontier"]; got != bs.FrontierRebuilds {
		t.Fatalf("rebuild.frontier = %d, BuildStats.FrontierRebuilds = %d", got, bs.FrontierRebuilds)
	}
}

// TestTraceSkeletonDeterministicAcrossParallelism: traces of the same
// build at different worker counts must have the identical canonical span
// structure — the diffability contract. (BOAT produces the exact same
// tree at every Parallelism, so the same phases, rebuilds and promotions
// happen; Skeleton canonicalizes their interleaving away.)
func TestTraceSkeletonDeterministicAcrossParallelism(t *testing.T) {
	src := obsTestSource(t)
	skeletons := make(map[int]string)
	for _, p := range []int{1, 8} {
		tracer := obs.NewTracer(nil)
		cfg := obsTestConfig()
		cfg.Parallelism = p
		cfg.TempDir = t.TempDir()
		cfg.Trace = tracer
		tree, err := Build(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tree.Close()
		skeletons[p] = tracer.Skeleton()
	}
	if skeletons[1] != skeletons[8] {
		t.Fatalf("span skeleton differs across Parallelism:\nP=1: %s\nP=8: %s",
			skeletons[1], skeletons[8])
	}
}

// TestBuildChromeTraceExport: a traced build exports valid Chrome
// trace-event JSON carrying the build phases and per-span I/O args.
func TestBuildChromeTraceExport(t *testing.T) {
	stats := &iostats.Stats{}
	tracer := obs.NewTracer(stats)
	cfg := obsTestConfig()
	cfg.Parallelism = 2
	cfg.TempDir = t.TempDir()
	cfg.Stats = stats
	cfg.Trace = tracer
	tree, err := Build(obsTestSource(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		if ev.Args["io"] == nil {
			t.Fatalf("event %q misses io args", ev.Name)
		}
		names[ev.Name] = true
	}
	for _, phase := range []string{"build", "sampling", "cleanup-scan", "verification", "leaf-completion"} {
		if !names[phase] {
			t.Fatalf("chrome trace misses phase %q (got %v)", phase, names)
		}
	}
}

// TestUpdateTracing: Insert and Delete record their own root spans with
// the route and processing phases underneath.
func TestUpdateTracing(t *testing.T) {
	stats := &iostats.Stats{}
	tracer := obs.NewTracer(stats)
	cfg := obsTestConfig()
	cfg.Parallelism = 1
	cfg.TempDir = t.TempDir()
	cfg.Stats = stats
	cfg.Trace = tracer
	src := obsTestSource(t)
	tree, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 200, 991)
	if _, err := tree.Insert(chunk); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Delete(chunk); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range tracer.Roots() {
		names = append(names, r.Name())
	}
	want := []string{"build", "insert", "delete"}
	if len(names) != len(want) {
		t.Fatalf("trace roots = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("trace roots = %v, want %v", names, want)
		}
	}
	for _, r := range tracer.Roots()[1:] {
		skel := r.Name()
		full := tracerSkeletonOf(r)
		if !strings.Contains(full, "route-chunk") || !strings.Contains(full, "verification") {
			t.Fatalf("%s span misses phases: %s", skel, full)
		}
	}
}

// tracerSkeletonOf renders one span subtree the same way Tracer.Skeleton
// renders roots (names and nesting, canonical sibling order).
func tracerSkeletonOf(s *obs.Span) string {
	children := s.Children()
	if len(children) == 0 {
		return s.Name()
	}
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = tracerSkeletonOf(c)
	}
	return s.Name() + "(" + strings.Join(parts, " ") + ")"
}

// TestBuildWithNilObservability: a build with no tracer, registry or
// logger must behave identically (the nil-safety contract end to end).
func TestBuildWithNilObservability(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Parallelism = 1
	cfg.TempDir = t.TempDir()
	tree, err := Build(obsTestSource(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if err := tree.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
