// Package core implements BOAT — the Bootstrapped Optimistic Algorithm
// for Tree construction of Gehrke, Ganti, Ramakrishnan and Loh (SIGMOD
// 1999): scalable decision tree construction in two scans over the
// training database, with statistically-derived coarse splitting criteria
// refined and verified against the full data, guaranteed to produce
// exactly the tree a traditional algorithm would produce, plus
// incremental maintenance under insertions and deletions (Section 4).
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/split"
)

// Config parameterizes BOAT.
type Config struct {
	// Method is the split selection method CL. BOAT is applicable to any
	// binary-split method; impurity-based methods (split.ImpurityBased)
	// are verified with the stamp-point lower bound of Lemma 3.1, and
	// moment-based methods (split.MomentBased, e.g. the QUEST-like
	// method) are verified by exact recomputation. Required.
	Method split.Method

	// SampleSize is |D'|, the in-memory sample drawn in one scan.
	// 0 selects max(1000, N/10) capped at 200000 (the paper's setting).
	SampleSize int
	// BootstrapTrees is b, the number of bootstrap repetitions
	// (paper: 20). 0 selects 20.
	BootstrapTrees int
	// SubsampleSize is the size of each bootstrap sample drawn with
	// replacement from D' (paper: 50000 of 200000). 0 selects
	// SampleSize/4 (minimum 1).
	SubsampleSize int
	// WidenFraction widens each confidence interval by this fraction of
	// its width on both ends; larger values trade bigger stuck sets S_n
	// for fewer interval escapes. 0.05 is the default used here.
	WidenFraction float64

	// MinSplit and MaxDepth are the growth stopping rules, shared with
	// the reference algorithm (see inmem.Config).
	MinSplit int64
	MaxDepth int

	// StopThreshold is the family size at which construction switches to
	// the main-memory algorithm (the paper stops tree construction at
	// families that fit in memory; Section 5 uses 1.5M tuples). With
	// StopAtThreshold=true such families become leaves outright (the
	// performance-experiment methodology); otherwise their subtrees are
	// completed in memory, yielding the full reference tree.
	StopThreshold   int64
	StopAtThreshold bool

	// BucketBudget is the number of discretization boundaries per
	// (node, numeric attribute). 0 selects discretize.DefaultBudget.
	BucketBudget int

	// MemBudgetTuples bounds the tuples the tree's buffers (stuck sets
	// S_n and stored leaf families) keep in memory; the overflow spills
	// to temporary files in TempDir. 0 = unlimited. Ignored when Budget
	// is non-nil.
	MemBudgetTuples int64
	// Budget, when non-nil, is used instead of a fresh budget derived
	// from MemBudgetTuples. It lets callers share one budget across
	// builds and assert that every build — including failed ones —
	// releases all memory it acquired (Used() returns to its prior
	// value).
	Budget *data.MemBudget
	// TempDir is the directory for spill files ("" = os.TempDir()).
	TempDir string

	// FS, when non-nil, replaces the real filesystem for all spill and
	// model-persistence files. Tests and soak runs inject faults through
	// it (see internal/faultfs); production builds leave it nil.
	FS data.FS
	// SpillRetry bounds the retry-with-backoff applied to transient
	// spill-path faults. The zero value selects the defaults
	// (4 attempts, 500µs initial backoff, doubling).
	SpillRetry data.RetryPolicy

	// Seed drives sampling and bootstrapping. The output tree does not
	// depend on it (that is the point of BOAT), but run traces do.
	Seed int64

	// Stats, when non-nil, receives scan/tuple/byte accounting for the
	// primary training database and all spills.
	Stats *iostats.Stats

	// Trace, when non-nil, receives hierarchical build-lifecycle spans —
	// sampling, bootstrap-tree growth, coarse-tree intersection, the
	// cleanup scan and its shard workers, verification, subtree rebuilds,
	// leaf completion — with per-span wall-clock and (when Stats is also
	// set and shared with the tracer) iostats deltas. nil disables tracing
	// at zero cost: every span call is a nil-receiver no-op.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives build counters, gauges and
	// histograms (CI hit/miss per verified node, verification-failure
	// causes, stuck-set sizes, per-shard scan throughput, rebuild and
	// leaf-completion counts). nil disables metrics at zero cost.
	Metrics *obs.Registry
	// Logger, when non-nil, receives structured build progress records
	// (log/slog). nil discards them.
	Logger *slog.Logger

	// MaxRebuildRecursion bounds how deeply BOAT may invoke itself on the
	// gathered family of a failed or frontier node before falling back to
	// the main-memory algorithm. 0 selects 3.
	MaxRebuildRecursion int

	// ScanChunkRows is the row capacity of the columnar chunks the cleanup
	// scan streams the data in.
	// 0 selects data.DefaultChunkRows. The resulting tree is identical at
	// every setting: all scan statistics are exact integer counts, and
	// buffers receive their tuples in stream order regardless of how the
	// stream is cut into chunks.
	ScanChunkRows int

	// PipelineDepth shapes the asynchronous block pipeline used when the
	// training database is a columnar block file (data.ColSource): the
	// number of blocks read ahead of the consuming scan. 0 selects
	// data.DefaultPipelineDepth; negative disables the pipeline, decoding
	// blocks synchronously in the scanning goroutine. Sources without a
	// pipelined scan ignore it. The resulting tree is identical at every
	// setting: the pipeline delivers chunks strictly in file order.
	PipelineDepth int
	// PipelineWorkers is the number of decode goroutines behind a
	// pipelined scan. 0 selects min(4, GOMAXPROCS).
	PipelineWorkers int
	// BlockSharding shards the cleanup scan by contiguous block ranges of
	// the columnar file instead of dealing chunks from one shared reader:
	// each of the Parallelism workers owns a byte range of the file with a
	// private reader and prefetch/decode pipeline, removing the
	// single-reader and ordered-ring delivery bottlenecks. It requires a
	// block-splittable source (data.BlockSplitSource — a ColSource,
	// possibly behind iostats tracking) with at least one block per
	// worker; anything else falls back to chunk sharding, and storage
	// faults fall back to the sequential scan exactly like chunk
	// sharding's. The resulting tree is bit-identical to every other scan
	// mode: contiguous ranges merged in worker order reproduce the file
	// order.
	BlockSharding bool

	// DisableZoneSkip turns off zone-map block skipping in the cleanup
	// scan and streaming-update routers. A block is skipped only when its
	// per-column min/max (or category bitmap) proves every row routes down
	// one side of a coarse split, so skipping never changes a statistic, a
	// buffer, or the resulting tree; the flag exists for benchmark
	// baselines and the equivalence tests that pin that claim down.
	DisableZoneSkip bool

	// RowUpdates forces Insert and Delete onto the row-at-a-time baseline
	// (one root-to-stick descent per tuple) instead of the default columnar
	// chunk router. The resulting tree is bit-identical either way — the
	// flag exists as the cross-check and benchmark baseline for the chunked
	// path (see BenchmarkUpdate and TestUpdateChunkedMatchesRow).
	RowUpdates bool

	// Parallelism is the number of worker goroutines used by the three
	// build phases: bootstrap-tree growth, the sharded cleanup scan, and
	// the completion of independent leaves after top-down processing.
	// 0 selects runtime.GOMAXPROCS(0); 1 runs every phase sequentially
	// in-line. The resulting tree is identical at every setting: per-tree
	// bootstrap RNGs are derived from Seed + treeIndex, shard statistics
	// are exact mergeable counts combined in deterministic worker order,
	// and BOAT's verification guarantees the exact reference tree
	// regardless of scan order.
	Parallelism int
}

// withDefaults validates and normalizes the configuration.
func (c Config) withDefaults(n int64) (Config, error) {
	if c.Method == nil {
		return c, errors.New("core: Config.Method is required")
	}
	switch c.Method.(type) {
	case split.ImpurityBased, split.MomentBased:
	default:
		return c, fmt.Errorf("core: method %q is neither impurity-based nor moment-based; BOAT cannot verify its coarse criteria", c.Method.Name())
	}
	if c.SampleSize <= 0 {
		s := n / 10
		if s < 1000 {
			s = 1000
		}
		if s > 200000 {
			s = 200000
		}
		c.SampleSize = int(s)
	}
	if c.BootstrapTrees <= 0 {
		c.BootstrapTrees = 20
	}
	if c.SubsampleSize <= 0 {
		c.SubsampleSize = c.SampleSize / 4
		if c.SubsampleSize < 1 {
			c.SubsampleSize = 1
		}
	}
	if c.WidenFraction < 0 {
		return c, fmt.Errorf("core: negative WidenFraction %v", c.WidenFraction)
	}
	if c.MinSplit < 0 || c.MaxDepth < 0 || c.StopThreshold < 0 {
		return c, errors.New("core: negative growth limits")
	}
	if c.MaxRebuildRecursion <= 0 {
		c.MaxRebuildRecursion = 3
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// workers returns the effective worker count (always >= 1).
func (c Config) workers() int {
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

// pipelineCfg derives the data-layer scan pipeline configuration.
func (c Config) pipelineCfg() data.PipelineConfig {
	return data.PipelineConfig{Depth: c.PipelineDepth, Workers: c.PipelineWorkers}
}

// chunkRows returns the effective scan chunk row capacity.
func (c Config) chunkRows() int {
	if c.ScanChunkRows > 0 {
		return c.ScanChunkRows
	}
	return data.DefaultChunkRows
}

// growConfig returns the reference growth rules derived from the config;
// depthOffset adjusts MaxDepth for subtrees rooted below the global root.
func (c Config) growConfig(depthOffset int) inmem.Config {
	g := inmem.Config{
		Method:          c.Method,
		MinSplit:        c.MinSplit,
		MaxDepth:        c.MaxDepth,
		StopThreshold:   c.StopThreshold,
		StopAtThreshold: c.StopAtThreshold,
	}
	if g.MaxDepth > 0 {
		g.MaxDepth -= depthOffset
		if g.MaxDepth < 1 {
			// Callers never build subtrees at or beyond MaxDepth; clamp
			// defensively so such a build yields a single leaf.
			g.MaxDepth = -1
		}
	}
	return g
}

// BuildStats reports what happened during a Build.
type BuildStats struct {
	// TuplesSeen is |D| as observed by the cleanup scan.
	TuplesSeen int64
	// SampleSize is |D'|.
	SampleSize int
	// CoarseNodes and Disagreements summarize the sampling phase.
	CoarseNodes   int
	Disagreements int
	// FailedNodes counts coarse nodes whose verification failed
	// (Section 3.4), forcing a rebuild of their subtree. The FailXxx
	// fields break the failures down by cause.
	FailedNodes int64
	// FailNoCandidate: no legal split point inside the confidence
	// interval (the split escaped it entirely).
	FailNoCandidate int64
	// FailBetterCat: an exactly evaluated categorical split beat the
	// coarse attribute (or the coarse categorical subset changed).
	FailBetterCat int64
	// FailBound: a stamp-point lower bound (Lemma 3.1) admitted a better
	// split outside the coarse criterion.
	FailBound int64
	// FailTie: a lower bound tied the chosen quality where the canonical
	// order might prefer the other candidate (conservative rebuild).
	FailTie int64
	// FailMoment: a moment-based method's exact recomputation
	// contradicted the coarse criterion.
	FailMoment int64
	// FrontierRebuilds counts frontier families too large for the
	// main-memory switch, rebuilt by recursive BOAT invocations.
	FrontierRebuilds int64
	// SpillRebuilds counts subtrees rebuilt because a storage fault on
	// the spill path made the node's buffers untrustworthy; the rebuild
	// recovers from the still-scannable (poisoned) buffers, preserving
	// the exactness guarantee.
	SpillRebuilds int64
	// RebuildTuples counts tuples re-processed by rebuilds (the paper's
	// "additional scans over subsets of the data").
	RebuildTuples int64
	// StuckTuples is the total size of the stuck sets S_n after the
	// cleanup scan.
	StuckTuples int64
	// InMemoryLeaves counts switch-over nodes finished in memory.
	InMemoryLeaves int64
}

// UpdateStats reports what happened during an Insert or Delete.
type UpdateStats struct {
	// TuplesSeen is the chunk size streamed down the tree.
	TuplesSeen int64
	// Chunks is the number of columnar batches the update was streamed in
	// (0 on the row-at-a-time baseline path).
	Chunks int64
	// RebuiltSubtrees counts nodes whose coarse criterion was invalidated
	// by the update (distribution change), rebuilding their subtree.
	RebuiltSubtrees int64
	// RebuildTuples counts tuples re-processed by those rebuilds.
	RebuildTuples int64
	// MigratedTuples counts stuck tuples re-routed between children when
	// a final split point moved within its confidence interval.
	MigratedTuples int64
	// RefittedLeaves counts stored leaf families whose in-memory subtree
	// was re-grown.
	RefittedLeaves int64
}

func (c Config) newRNG() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }
