package core

import (
	"strings"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/obs"
)

// TestUpdateTelemetry drives an Insert from a columnar file through a
// metered tree and checks the serve-path instruments land: the update
// latency histogram, the published-epoch gauge, and the pipeline.*
// counters fed by the update router's pipelined reads.
func TestUpdateTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := obsTestConfig()
	cfg.TempDir = t.TempDir()
	cfg.Metrics = reg

	bt, err := Build(obsTestSource(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()

	// The eagerly registered pipeline gauges exist before any pipelined
	// source was ever scanned — a scrape never 404s on the series.
	snap := reg.Snapshot()
	for _, g := range []string{
		"pipeline.in_flight_blocks", "pipeline.ring_occupancy",
		"pipeline.read_stall_ns", "pipeline.decode_ns", "pipeline.deliver_stall_ns",
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("gauge %s not registered eagerly", g)
		}
	}

	// Publish an epoch so the update republishes (and the epoch gauge
	// tracks it), then insert a chunk from a columnar file so the update
	// router's reads run behind the pipeline.
	if _, err := bt.Snapshot(); err != nil {
		t.Fatal(err)
	}
	chunkSrc := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 2_000, 211)
	tuples, err := data.ReadAll(chunkSrc)
	if err != nil {
		t.Fatal(err)
	}
	colPath := t.TempDir() + "/chunk.boatc"
	if _, err := data.WriteColFile(colPath, data.NewMemSource(chunkSrc.Schema(), tuples), 256); err != nil {
		t.Fatal(err)
	}
	colChunk, err := data.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bt.Insert(colChunk); err != nil {
		t.Fatal(err)
	}

	snap = reg.Snapshot()
	lat, ok := snap.Latencies["update.latency"]
	if !ok || lat.Count != 1 {
		t.Fatalf("update.latency = %+v, want one observation", lat)
	}
	if lat.P50NS <= 0 || lat.P999NS < lat.P50NS {
		t.Fatalf("update.latency quantiles = %+v", lat)
	}
	published, err := bt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantEpoch := float64(published.Epoch)
	if got := snap.Gauges["update.epoch"]; got != wantEpoch {
		t.Fatalf("update.epoch gauge = %g, want %g", got, wantEpoch)
	}
	if snap.Counters["pipeline.blocks"] <= 0 {
		t.Fatalf("pipeline.blocks = %d after a columnar insert, want > 0",
			snap.Counters["pipeline.blocks"])
	}
	if snap.Counters["pipeline.decode_ns_total"] <= 0 {
		t.Fatalf("pipeline.decode_ns_total = %d, want > 0",
			snap.Counters["pipeline.decode_ns_total"])
	}
}

// TestReadyTransitions walks the /readyz contract end to end: not ready
// before the first published epoch, ready after, and not ready once the
// tree is closed.
func TestReadyTransitions(t *testing.T) {
	cfg := obsTestConfig()
	cfg.TempDir = t.TempDir()
	bt, err := Build(obsTestSource(t), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if err := bt.Ready(); err == nil {
		t.Fatal("Ready() = nil before any snapshot epoch was published")
	} else if !strings.Contains(err.Error(), "no snapshot epoch") {
		t.Fatalf("pre-publish Ready() = %v", err)
	}

	if _, err := bt.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := bt.Ready(); err != nil {
		t.Fatalf("Ready() after publish = %v", err)
	}

	// Readiness survives an update (the update republishes eagerly).
	chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 500, 77)
	if _, err := bt.Insert(chunk); err != nil {
		t.Fatal(err)
	}
	if err := bt.Ready(); err != nil {
		t.Fatalf("Ready() after update = %v", err)
	}

	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bt.Ready(); err == nil {
		t.Fatal("Ready() = nil on a closed tree")
	}
}
