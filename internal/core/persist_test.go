package core

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

func saveLoad(t *testing.T, bt *Tree, cfg Config) *Tree {
	t.Helper()
	var buf bytes.Buffer
	if err := bt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, bt.Schema(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, m := range []split.Method{split.NewGini(), split.NewQuestLike()} {
		t.Run(m.Name(), func(t *testing.T) {
			cfg := Config{Method: m, MaxDepth: 5, MinSplit: 100, SampleSize: 1500, Seed: 3}
			src := gen.MustSource(gen.Config{Function: 1, Noise: 0.08}, 6000, 1)
			bt, err := Build(src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer bt.Close()
			loaded := saveLoad(t, bt, cfg)
			defer loaded.Close()
			if !loaded.Tree().Equal(bt.Tree()) {
				t.Fatalf("loaded tree differs: %s", loaded.Tree().Diff(bt.Tree()))
			}
			if err := loaded.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSaveLoadResumesMaintenance is the point of persistence: after a
// round-trip, incremental updates behave identically to the original.
func TestSaveLoadResumesMaintenance(t *testing.T) {
	cfg := Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 100, SampleSize: 1500, Seed: 7}
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.10}, 6000, 1)
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	// First update before checkpointing.
	chunk1 := gen.MustSource(gen.Config{Function: 1, Noise: 0.10}, 3000, 2)
	if _, err := bt.Insert(chunk1); err != nil {
		t.Fatal(err)
	}

	loaded := saveLoad(t, bt, cfg)
	defer loaded.Close()

	// Apply the same further updates to both instances.
	chunk2 := gen.MustSource(gen.Config{Function: 1, Noise: 0.10}, 3000, 3)
	if _, err := bt.Insert(chunk2); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Insert(chunk2); err != nil {
		t.Fatal(err)
	}
	if !loaded.Tree().Equal(bt.Tree()) {
		t.Fatalf("after insert, loaded diverged: %s", loaded.Tree().Diff(bt.Tree()))
	}
	if _, err := bt.Delete(chunk1); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Delete(chunk1); err != nil {
		t.Fatal(err)
	}
	if !loaded.Tree().Equal(bt.Tree()) {
		t.Fatalf("after delete, loaded diverged: %s", loaded.Tree().Diff(bt.Tree()))
	}
	if err := loaded.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// And both still match the reference.
	all, _ := data.ReadAll(src)
	c2, _ := data.ReadAll(chunk2)
	ref := inmem.Build(src.Schema(), append(all, c2...), inmem.Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 100,
	})
	requireEqual(t, "post-restore maintenance", loaded.Tree(), ref)
}

func TestSaveLoadStopMode(t *testing.T) {
	cfg := Config{
		Method: split.NewGini(), StopThreshold: 1200, StopAtThreshold: true,
		SampleSize: 1500, Seed: 5,
	}
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 9000, 4)
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	loaded := saveLoad(t, bt, cfg)
	defer loaded.Close()
	if !loaded.Tree().Equal(bt.Tree()) {
		t.Fatal("stop-mode round trip differs")
	}
}

func TestSaveLoadWithSpill(t *testing.T) {
	cfg := Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 100,
		SampleSize: 1000, Seed: 9, MemBudgetTuples: 300, TempDir: t.TempDir(),
	}
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 5000, 6)
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	loaded := saveLoad(t, bt, cfg)
	defer loaded.Close()
	if !loaded.Tree().Equal(bt.Tree()) {
		t.Fatal("spilled round trip differs")
	}
}

func TestLoadRejectsMismatchedConfig(t *testing.T) {
	cfg := Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 100, SampleSize: 1000, Seed: 1}
	src := gen.MustSource(gen.Config{Function: 1}, 2000, 1)
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	var buf bytes.Buffer
	if err := bt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.MaxDepth = 9
	if _, err := Load(bytes.NewReader(buf.Bytes()), src.Schema(), other); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("mismatched config not rejected: %v", err)
	}
	otherMethod := cfg
	otherMethod.Method = split.NewEntropy()
	if _, err := Load(bytes.NewReader(buf.Bytes()), src.Schema(), otherMethod); err == nil {
		t.Error("mismatched method not rejected")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cfg := Config{Method: split.NewGini()}
	schema := gen.Schema(0)
	if _, err := Load(strings.NewReader("not a model"), schema, cfg); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(""), schema, cfg); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated stream.
	src := gen.MustSource(gen.Config{Function: 1}, 2000, 1)
	bt, err := Build(src, Config{Method: split.NewGini(), SampleSize: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	var buf bytes.Buffer
	if err := bt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2]), src.Schema(), Config{Method: split.NewGini()}); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestSaveClosedTree(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 500, 1)
	bt, err := Build(src, Config{Method: split.NewGini(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bt.Close()
	var buf bytes.Buffer
	if err := bt.Save(&buf); err == nil {
		t.Error("saving a closed tree should fail")
	}
}

// TestSaveFileLoadCompilePredict closes the serving loop over the model
// persistence path: SaveFile -> LoadFile -> materialize -> Compile ->
// ClassifyChunk must reproduce the original tree's predictions exactly.
func TestSaveFileLoadCompilePredict(t *testing.T) {
	cfg := Config{Method: split.NewGini(), MaxDepth: 6, MinSplit: 50, SampleSize: 1500, Seed: 5}
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 6000, 1)
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	path := t.TempDir() + "/model.boatmodel"
	if err := bt.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(f, bt.Schema(), cfg)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	orig := bt.Tree()
	flat, err := tree.Compile(loaded.Tree())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, data.DefaultChunkRows)
	var row int
	err = data.ForEachChunk(src, data.DefaultChunkRows, func(ch *data.Chunk) error {
		flat.ClassifyChunk(ch, out)
		for i := 0; i < ch.Len(); i++ {
			if want := orig.Classify(ch.TupleCopy(i)); out[i] != want {
				t.Fatalf("row %d: loaded+compiled predicts %d, original %d", row+i, out[i], want)
			}
		}
		row += ch.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if row == 0 {
		t.Fatal("no tuples compared")
	}
}
