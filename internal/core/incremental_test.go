package core

import (
	"fmt"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
)

// multiset removal helper for building reference datasets.
func subtract(all, removed []data.Tuple) []data.Tuple {
	pending := make(map[string]int)
	for _, tp := range removed {
		pending[tp.Key()]++
	}
	var out []data.Tuple
	for _, tp := range all {
		if k := tp.Key(); pending[k] > 0 {
			pending[k]--
			continue
		}
		out = append(out, tp)
	}
	return out
}

// TestIncrementalInsertStableDistribution is Section 4 + Figure 13: new
// chunks from the same distribution are absorbed with a single chunk scan
// and the tree remains exactly the from-scratch tree.
func TestIncrementalInsertStableDistribution(t *testing.T) {
	for _, m := range []split.Method{split.NewGini(), split.NewQuestLike()} {
		t.Run(m.Name(), func(t *testing.T) {
			g := inmem.Config{Method: m, MaxDepth: 5, MinSplit: 100}
			base := gen.MustSource(gen.Config{Function: 1, Noise: 0.10}, 6000, 1)
			bt, err := Build(base, Config{Method: m, MaxDepth: 5, MinSplit: 100, SampleSize: 1500, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			defer bt.Close()
			all, _ := data.ReadAll(base)
			for chunkSeed := int64(2); chunkSeed <= 5; chunkSeed++ {
				chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.10}, 3000, chunkSeed)
				upd, err := bt.Insert(chunk)
				if err != nil {
					t.Fatal(err)
				}
				if upd.TuplesSeen != 3000 {
					t.Errorf("chunk %d: streamed %d tuples", chunkSeed, upd.TuplesSeen)
				}
				ct, _ := data.ReadAll(chunk)
				all = append(all, ct...)
				ref := inmem.Build(base.Schema(), data.CloneTuples(all), g)
				requireEqual(t, fmt.Sprintf("after insert %d", chunkSeed), bt.Tree(), ref)
				if err := bt.CheckConsistency(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestIncrementalDelete checks the symmetric deletion path: expiring a
// chunk leaves exactly the tree built on the remaining data.
func TestIncrementalDelete(t *testing.T) {
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 100}
	base := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 8000, 1)
	bt, err := Build(base, Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 100, SampleSize: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	all, _ := data.ReadAll(base)

	chunk2 := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 4000, 2)
	if _, err := bt.Insert(chunk2); err != nil {
		t.Fatal(err)
	}
	ct, _ := data.ReadAll(chunk2)
	all = append(all, ct...)

	// Expire the chunk again.
	if _, err := bt.Delete(chunk2); err != nil {
		t.Fatal(err)
	}
	all = subtract(all, ct)
	ref := inmem.Build(base.Schema(), data.CloneTuples(all), g)
	requireEqual(t, "after delete", bt.Tree(), ref)
	if err := bt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// Delete part of the original data too (sliding window).
	firstHalf := data.NewMemSource(base.Schema(), data.CloneTuples(all[:2000]))
	if _, err := bt.Delete(firstHalf); err != nil {
		t.Fatal(err)
	}
	remaining := data.CloneTuples(all[2000:])
	ref = inmem.Build(base.Schema(), data.CloneTuples(remaining), g)
	requireEqual(t, "after window slide", bt.Tree(), ref)
}

// TestIncrementalDistributionChange is Figure 14: a chunk from a shifted
// distribution invalidates coarse criteria in part of the attribute space;
// the affected subtrees are rebuilt and the result is still exact.
func TestIncrementalDistributionChange(t *testing.T) {
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 100}
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 8000, 1)
	bt, err := Build(base, Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 100, SampleSize: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	all, _ := data.ReadAll(base)

	shifted := gen.MustSource(gen.Config{Function: 1, Shifted: true, Noise: 0.05}, 8000, 44)
	upd, err := bt.Insert(shifted)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := data.ReadAll(shifted)
	all = append(all, st...)
	ref := inmem.Build(base.Schema(), data.CloneTuples(all), g)
	requireEqual(t, "after distribution change", bt.Tree(), ref)
	if upd.RebuiltSubtrees == 0 && upd.RefittedLeaves == 0 {
		t.Error("a distribution change should have rebuilt or refitted something")
	}
	t.Logf("distribution change: %+v", upd)
}

// TestIncrementalGrowthPromotesLeaves: inserting enough data pushes stored
// leaf families past the in-memory threshold; they must be promoted and
// the tree must stay exact.
func TestIncrementalGrowthPromotesLeaves(t *testing.T) {
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 6, MinSplit: 50}
	base := gen.MustSource(gen.Config{Function: 2, Noise: 0.05}, 3000, 1)
	bt, err := Build(base, Config{
		Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
		SampleSize: 800, Seed: 11, StopThreshold: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	all, _ := data.ReadAll(base)
	for chunkSeed := int64(2); chunkSeed <= 4; chunkSeed++ {
		chunk := gen.MustSource(gen.Config{Function: 2, Noise: 0.05}, 3000, chunkSeed)
		if _, err := bt.Insert(chunk); err != nil {
			t.Fatal(err)
		}
		ct, _ := data.ReadAll(chunk)
		all = append(all, ct...)
		ref := inmem.Build(base.Schema(), data.CloneTuples(all), g)
		requireEqual(t, fmt.Sprintf("growth chunk %d", chunkSeed), bt.Tree(), ref)
	}
}

// TestIncrementalShrinkDemotesNodes: deleting most of the data demotes
// internal nodes (stop mode) and the tree still matches a rebuild.
func TestIncrementalShrinkStopMode(t *testing.T) {
	g := inmem.Config{Method: split.NewGini(), StopThreshold: 800, StopAtThreshold: true}
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 10000, 1)
	bt, err := Build(base, Config{
		Method: split.NewGini(), StopThreshold: 800, StopAtThreshold: true,
		SampleSize: 2000, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	all, _ := data.ReadAll(base)
	// Expire 70% of the data.
	expired := data.NewMemSource(base.Schema(), data.CloneTuples(all[:7000]))
	if _, err := bt.Delete(expired); err != nil {
		t.Fatal(err)
	}
	remaining := data.CloneTuples(all[7000:])
	ref := inmem.Build(base.Schema(), remaining, g)
	requireEqual(t, "after mass deletion", bt.Tree(), ref)
}

// TestIncrementalStopModeChunks mirrors the Figure 13/15 setup exactly:
// stop-at-threshold trees maintained under chunk arrivals.
func TestIncrementalStopModeChunks(t *testing.T) {
	g := inmem.Config{Method: split.NewGini(), StopThreshold: 1500, StopAtThreshold: true}
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.10}, 6000, 1)
	bt, err := Build(base, Config{
		Method: split.NewGini(), StopThreshold: 1500, StopAtThreshold: true,
		SampleSize: 1500, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	all, _ := data.ReadAll(base)
	for chunkSeed := int64(2); chunkSeed <= 4; chunkSeed++ {
		chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.10}, 4000, chunkSeed)
		if _, err := bt.Insert(chunk); err != nil {
			t.Fatal(err)
		}
		ct, _ := data.ReadAll(chunk)
		all = append(all, ct...)
		ref := inmem.Build(base.Schema(), data.CloneTuples(all), g)
		requireEqual(t, fmt.Sprintf("stop-mode chunk %d", chunkSeed), bt.Tree(), ref)
	}
}

// TestIncrementalMixedOperations interleaves inserts and deletes.
func TestIncrementalMixedOperations(t *testing.T) {
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 50}
	base := gen.MustSource(gen.Config{Function: 7, Noise: 0.05}, 5000, 1)
	bt, err := Build(base, Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 50, SampleSize: 1200, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	all, _ := data.ReadAll(base)
	chunks := make([][]data.Tuple, 0)
	for chunkSeed := int64(2); chunkSeed <= 4; chunkSeed++ {
		chunk := gen.MustSource(gen.Config{Function: 7, Noise: 0.05}, 2000, chunkSeed)
		if _, err := bt.Insert(chunk); err != nil {
			t.Fatal(err)
		}
		ct, _ := data.ReadAll(chunk)
		chunks = append(chunks, ct)
		all = append(all, ct...)
	}
	// Expire the first two chunks in one call.
	expired := append(data.CloneTuples(chunks[0]), chunks[1]...)
	if _, err := bt.Delete(data.NewMemSource(base.Schema(), expired)); err != nil {
		t.Fatal(err)
	}
	all = subtract(all, expired)
	ref := inmem.Build(base.Schema(), data.CloneTuples(all), g)
	requireEqual(t, "mixed operations", bt.Tree(), ref)
	if err := bt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateErrors covers the error paths of Insert/Delete.
func TestUpdateErrors(t *testing.T) {
	base := gen.MustSource(gen.Config{Function: 1}, 1000, 1)
	bt, err := Build(base, Config{Method: split.NewGini(), MaxDepth: 3, SampleSize: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	other := data.NewMemSource(data.MustSchema([]data.Attribute{{Name: "z", Kind: data.Numeric}}, 2), nil)
	if _, err := bt.Insert(other); err == nil {
		t.Error("schema mismatch not detected")
	}
	bt.Close()
	if _, err := bt.Insert(base); err == nil {
		t.Error("update of a closed tree not detected")
	}
	if err := bt.CheckConsistency(); err == nil {
		t.Error("consistency check of a closed tree should fail")
	}
}

// TestTreeMaterializationIsolated: trees returned by Tree() must not be
// mutated by later updates.
func TestTreeMaterializationIsolated(t *testing.T) {
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.1}, 4000, 1)
	bt, err := Build(base, Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 50, SampleSize: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	before := bt.Tree()
	snapshot := before.String()
	chunk := gen.MustSource(gen.Config{Function: 1, Shifted: true, Noise: 0.1}, 6000, 2)
	if _, err := bt.Insert(chunk); err != nil {
		t.Fatal(err)
	}
	if before.String() != snapshot {
		t.Error("materialized tree mutated by a later insert")
	}
}
