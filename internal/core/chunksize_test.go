package core

import (
	"fmt"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
)

// TestChunkSizeDeterminism is the contract of Config.ScanChunkRows: the
// built tree is bit-identical at every chunk size and every worker count,
// and matches the in-memory reference. Chunk size 1 degenerates to the
// row-at-a-time scan; 7 leaves ragged final chunks; 64 and 1024 cut the
// stream mid-node-batch in different places. All statistics are exact
// integer counts and buffers receive tuples in stream order, so none of
// that may show in the output.
func TestChunkSizeDeterminism(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 3*data.DefaultChunkRows, 107)
	base := Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 11,
	}
	ref := buildRef(t, src, inmem.Config{
		Method: base.Method, MaxDepth: base.MaxDepth, MinSplit: base.MinSplit,
	})

	for _, rows := range []int{1, 7, 64, 1024} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("rows=%d/workers=%d", rows, workers), func(t *testing.T) {
				cfg := base
				cfg.ScanChunkRows = rows
				cfg.Parallelism = workers
				cfg.TempDir = t.TempDir()
				got, err := Build(src, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer got.Close()
				requireEqual(t, "chunked vs reference", got.Tree(), ref)
				if err := got.CheckConsistency(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestScanModesAgree pins the three cleanup-scan implementations to each
// other on one skeleton: the row-at-a-time baseline, the sequential
// columnar scan, and the sharded columnar scan must leave identical
// statistics behind (verified indirectly by re-running the pass after an
// exact reset and finishing the build each time would be expensive; here
// we compare the cheap observable, the tuple count, and rely on
// TestChunkSizeDeterminism for tree-level equality).
func TestScanModesAgree(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 2*data.DefaultChunkRows+123, 55)
	bench, err := NewScanBench(src, Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1000, Seed: 3, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bench.Close()

	var want int64
	for i, mode := range []ScanMode{ScanModeRow, ScanModeChunk, ScanModeSharded} {
		if err := bench.Reset(); err != nil {
			t.Fatal(err)
		}
		seen, err := bench.RunOnce(mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if i == 0 {
			want = seen
		} else if seen != want {
			t.Fatalf("%s saw %d tuples, row baseline saw %d", mode, seen, want)
		}
	}
	if want != 2*int64(data.DefaultChunkRows)+123 {
		t.Fatalf("scans saw %d tuples, want %d", want, 2*data.DefaultChunkRows+123)
	}
}
