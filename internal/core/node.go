package core

import (
	"fmt"

	"github.com/boatml/boat/internal/bootstrap"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/discretize"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// coarseCrit is the coarse splitting criterion at a node (Figure 2 of the
// paper): the coarse splitting attribute plus either the exact splitting
// subset (categorical) or a confidence interval for the split point
// (numeric). It governs how tuples are routed during cleanup scans and
// updates: numeric tuples with value in (lo, hi] cannot be routed and
// stick at the node.
type coarseCrit struct {
	attr   int
	kind   data.Kind
	subset uint64
	lo, hi float64
}

// bnode is a node of the stateful BOAT tree. Internal nodes carry the
// coarse criterion, the statistics gathered by cleanup scans, and the
// stuck sets; leaf nodes (frontier positions, main-memory switch points,
// and genuine leaves) carry their stored family and, in non-stop mode, an
// in-memory-built subtree.
type bnode struct {
	depth       int
	classCounts []int64

	// Internal-node state.
	coarse      *coarseCrit
	crit        split.Split // final criterion; valid after processing
	left, right *bnode
	catCounts   []*split.CatAVC         // per categorical attribute
	hist        []*discretize.Histogram // per numeric attribute
	moments     *split.Moments          // only for moment-based methods
	lowCounts   []int64                 // numeric coarse: classes of v <= lo
	highCounts  []int64                 // numeric coarse: classes of v > hi
	eqLow       int64                   // tuples with v == lo (is lo an observed candidate?)
	pending     *data.TupleBag          // stuck tuples not yet pushed to children
	pushed      *data.TupleBag          // stuck tuples already pushed (by routedThr)
	routedThr   float64                 // threshold the pushed set was routed by

	// Leaf state.
	leaf    bool
	family  *data.TupleBag
	subtree *tree.Node // in-memory completion (nil for stop-mode leaves within the threshold)
	dirty   bool
	// promoteAttempt is the family size at the last BOAT-promotion
	// attempt that ended as a stored-family leaf (bootstrap disagreement
	// at the family's root). Until the family outgrows it by 25%, further
	// attempts would almost surely fail again, so the node is kept exact
	// with plain in-memory refits instead.
	promoteAttempt int64
}

func (n *bnode) isLeaf() bool { return n.leaf }

func (n *bnode) total() int64 {
	var s int64
	for _, v := range n.classCounts {
		s += v
	}
	return s
}

// newLeaf allocates a leaf bnode with an empty stored family.
func (t *Tree) newLeaf(depth int) *bnode {
	return &bnode{
		depth:       depth,
		leaf:        true,
		dirty:       true,
		classCounts: make([]int64, t.schema.ClassCount),
		family:      data.NewTupleBagEnv(t.schema, t.spillEnv(t.budget)),
	}
}

// newInternal allocates an internal bnode for a coarse criterion,
// with zeroed statistics.
func (t *Tree) newInternal(depth int, c *coarseCrit) *bnode {
	n := &bnode{
		depth:       depth,
		coarse:      c,
		classCounts: make([]int64, t.schema.ClassCount),
		catCounts:   make([]*split.CatAVC, len(t.schema.Attributes)),
		hist:        make([]*discretize.Histogram, len(t.schema.Attributes)),
	}
	for i, a := range t.schema.Attributes {
		if a.Kind == data.Categorical {
			n.catCounts[i] = split.NewCatAVC(a.Cardinality, t.schema.ClassCount)
		}
	}
	if t.momentBased != nil {
		n.moments = split.NewMoments(t.schema)
	}
	if c.kind == data.Numeric {
		n.lowCounts = make([]int64, t.schema.ClassCount)
		n.highCounts = make([]int64, t.schema.ClassCount)
		n.pending = data.NewTupleBagEnv(t.schema, t.spillEnv(t.budget))
		n.pushed = data.NewTupleBagEnv(t.schema, t.spillEnv(t.budget))
	}
	return n
}

// skeletonFromCoarse converts the sampling phase's coarse tree into bnodes
// (frontier positions become leaves) and then computes each internal
// node's discretizations from the sample. Sample routing goes through a
// compiled flat router (see compileCoarseRouter); the sample slice is
// reordered in place by the partitioning.
func (t *Tree) skeletonFromCoarse(cn *bootstrap.Node, sample []data.Tuple, depth int) *bnode {
	n := t.buildSkeleton(cn, depth)
	router, err := t.compileCoarseRouter(cn)
	if err != nil {
		// Unreachable for well-formed coarse trees; the scalar
		// RouteSample fallback keeps the build correct regardless.
		router = nil
	}
	var scratch []data.Tuple
	if router != nil {
		scratch = make([]data.Tuple, 0, len(sample))
	}
	t.attachDiscretizations(n, cn, router, 0, sample, scratch)
	return n
}

// compileCoarseRouter projects the coarse tree's sample-routing predicates
// onto the flat inference layout, so the skeleton phase partitions its
// sample with the same compiled criteria the read path classifies with.
// The projection is exact: RouteSample's numeric three-way test (v <= Lo
// left, v > Hi right, otherwise v <= Median) collapses to v <= Median
// because Lo <= Median <= Hi, and the categorical subset test is already
// the flat predicate.
func (t *Tree) compileCoarseRouter(cn *bootstrap.Node) (*tree.FlatTree, error) {
	if cn == nil {
		return nil, nil
	}
	var conv func(cn *bootstrap.Node) *tree.Node
	conv = func(cn *bootstrap.Node) *tree.Node {
		if cn == nil {
			return &tree.Node{} // frontier position: routing stops here
		}
		crit := split.Split{Found: true, Attr: cn.Attr, Kind: cn.Kind}
		if cn.Kind == data.Numeric {
			crit.Threshold = cn.Median
		} else {
			crit.Subset = cn.Subset
		}
		return &tree.Node{Crit: crit, Left: conv(cn.Left), Right: conv(cn.Right)}
	}
	return tree.Compile(&tree.Tree{Schema: t.schema, Root: conv(cn)})
}

func (t *Tree) buildSkeleton(cn *bootstrap.Node, depth int) *bnode {
	if cn == nil {
		return t.newLeaf(depth)
	}
	c := &coarseCrit{attr: cn.Attr, kind: cn.Kind, subset: cn.Subset, lo: cn.Lo, hi: cn.Hi}
	n := t.newInternal(depth, c)
	n.left = t.buildSkeleton(cn.Left, depth+1)
	n.right = t.buildSkeleton(cn.Right, depth+1)
	return n
}

// attachDiscretizations routes the sample down the coarse tree, computes
// the sample AVC-group at each internal node, derives the node's estimated
// minimum impurity, and builds the per-attribute histogram boundaries
// (forcing the coarse attribute's interval endpoints to be boundaries so
// no bucket straddles the interval). Nodes with empty sample families get
// trivial single-bucket histograms, whose loose bounds simply make
// verification conservative.
// The sample is partitioned in place (stably) at every level; id is n's
// node id in the compiled router, whose shape mirrors the coarse tree.
func (t *Tree) attachDiscretizations(n *bnode, cn *bootstrap.Node, router *tree.FlatTree, id int32, sample []data.Tuple, scratch []data.Tuple) {
	if n.isLeaf() || cn == nil {
		return
	}
	if t.impurityBased != nil {
		// Histograms feed Lemma 3.1 and are only needed for
		// impurity-based verification; moment-based methods verify by
		// exact recomputation from the moments.
		stats := split.BuildNodeStats(t.schema, sample)
		estMin := t.cfg.Method.BestSplit(stats).Quality
		for i, a := range t.schema.Attributes {
			if a.Kind != data.Numeric {
				continue
			}
			var bounds []float64
			if avc := stats.Num[i]; avc != nil {
				bounds = discretize.Boundaries(t.crit(), avc, stats.ClassTotals, estMin, t.cfg.BucketBudget)
			}
			if i == n.coarse.attr && n.coarse.kind == data.Numeric {
				bounds = discretize.InsertBoundaries(bounds, n.coarse.lo, n.coarse.hi)
			}
			n.hist[i] = discretize.NewHistogram(bounds, t.schema.ClassCount)
		}
	}
	// Partition the sample by the coarse routing and recurse. The stable
	// in-place partition (lefts compacted forward, rights staged through
	// the shared scratch) replaces the per-node append-grown slices: one
	// scratch buffer for the whole skeleton instead of two fresh slices
	// per internal node.
	var leftS, rightS []data.Tuple
	if router != nil {
		w := 0
		scratch = scratch[:0]
		for _, tp := range sample {
			if router.GoesLeft(id, tp) {
				sample[w] = tp
				w++
			} else {
				scratch = append(scratch, tp)
			}
		}
		copy(sample[w:], scratch)
		leftS, rightS = sample[:w], sample[w:]
		t.attachDiscretizations(n.left, cn.Left, router, router.LeftChild(id), leftS, scratch)
		t.attachDiscretizations(n.right, cn.Right, router, router.RightChild(id), rightS, scratch)
		return
	}
	for _, tp := range sample {
		if cn.RouteSample(tp) < 0 {
			leftS = append(leftS, tp)
		} else {
			rightS = append(rightS, tp)
		}
	}
	t.attachDiscretizations(n.left, cn.Left, nil, 0, leftS, nil)
	t.attachDiscretizations(n.right, cn.Right, nil, 0, rightS, nil)
}

// crit returns the impurity criterion used for discretization and
// verification. Moment-based methods never consult it for their own
// verification, but the discretizer still needs a concave function to
// place boundaries; gini is used then.
func (t *Tree) crit() split.Criterion {
	if t.impurityBased != nil {
		return t.impurityBased.Criterion()
	}
	return split.Gini
}

// route streams one tuple down the subtree rooted at n with weight w
// (+1 insert, -1 delete), updating every per-node statistic along its
// path, exactly as the cleanup phase of Section 3.3/3.5 prescribes:
// update counts at the node; if the coarse attribute is numeric and the
// value falls inside the confidence interval, the tuple sticks in S_n;
// otherwise it descends. Deletions of stuck tuples are removed from the
// pushed set and the removal continues downward along the path the
// original push took (routedThr).
func (t *Tree) route(n *bnode, tp data.Tuple, w int64) error {
	for {
		n.classCounts[tp.Class] += w
		if n.isLeaf() {
			n.dirty = true
			if w > 0 {
				return n.family.Add(tp)
			}
			return n.family.Remove(tp)
		}
		for i, cc := range n.catCounts {
			if cc != nil {
				cc.Add(int(tp.Values[i]), tp.Class, w)
			}
		}
		for i, h := range n.hist {
			if h != nil {
				h.Add(tp.Values[i], tp.Class, w)
			}
		}
		if n.moments != nil {
			n.moments.Add(tp, w)
		}
		c := n.coarse
		if c.kind == data.Categorical {
			// Same predicate as the compiled inference layout
			// (tree.FlatTree): codes outside [0, 64) — including the
			// platform-dependent uint conversion of negative or NaN values,
			// which always lands at or above 1<<63 — and codes outside the
			// subset take the pinned right edge.
			code := uint(tp.Values[c.attr])
			if code < 64 && c.subset&(1<<code) != 0 {
				n = n.left
			} else {
				n = n.right
			}
			continue
		}
		v := tp.Values[c.attr]
		switch {
		case v <= c.lo:
			n.lowCounts[tp.Class] += w
			if v == c.lo {
				n.eqLow += w
			}
			n = n.left
		case v > c.hi || v != v:
			// Above the interval — or NaN, which takes the pinned
			// missing-value edge (right of every finite threshold, exactly
			// as FlatTree classifies it) rather than sticking in S_n, where
			// it would corrupt the in-interval split-point candidates.
			n.highCounts[tp.Class] += w
			n = n.right
		default:
			// Inside the confidence interval: the tuple sticks at n.
			if w > 0 {
				return n.pending.Add(tp)
			}
			// Deleting a stuck tuple: it was pushed down by routedThr in
			// an earlier pass; undo both the bag entry and the push.
			if err := n.pushed.Remove(tp); err != nil {
				return err
			}
			if v <= n.routedThr {
				n = n.left
			} else {
				n = n.right
			}
		}
	}
}

// checkConsistency validates structural invariants of the subtree for
// tests: class counts are non-negative, internal nodes' counts equal the
// sum of children plus unpushed stuck tuples, and leaf families match the
// leaf's class counts.
func (n *bnode) checkConsistency(schema *data.Schema) error {
	for c, v := range n.classCounts {
		if v < 0 {
			return fmt.Errorf("core: negative class count %d for class %d", v, c)
		}
	}
	if n.isLeaf() {
		var famN int64
		err := n.family.ForEach(func(data.Tuple) error { famN++; return nil })
		if err != nil {
			return err
		}
		if famN != n.total() {
			return fmt.Errorf("core: leaf family size %d != class-count total %d", famN, n.total())
		}
		return nil
	}
	expect := n.left.total() + n.right.total()
	if n.pending != nil {
		expect += n.pending.Len()
	}
	if expect != n.total() {
		return fmt.Errorf("core: node total %d != children+pending %d", n.total(), expect)
	}
	if err := n.left.checkConsistency(schema); err != nil {
		return err
	}
	return n.right.checkConsistency(schema)
}

// closeSubtree releases all buffers in the subtree.
func closeSubtree(n *bnode) {
	if n == nil {
		return
	}
	if n.family != nil {
		n.family.Close()
	}
	if n.pending != nil {
		n.pending.Close()
	}
	if n.pushed != nil {
		n.pushed.Close()
	}
	closeSubtree(n.left)
	closeSubtree(n.right)
}
