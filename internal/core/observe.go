package core

import (
	"fmt"
	"log/slog"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/obs"
)

// metricSet caches the registry instruments the build updates, resolved
// once per Tree instead of one registry lookup (a mutex acquisition) per
// verified node. Every field is nil when no registry is configured, so
// updates degrade to nil-receiver no-ops.
type metricSet struct {
	// Verification: one hit or miss per verified coarse node, plus the
	// per-cause failure breakdown mirroring BuildStats.FailXxx.
	ciHit, ciMiss                                                  *obs.Counter
	failNoCandidate, failBetterCat, failBound, failTie, failMoment *obs.Counter

	// Cleanup scan. blocksSkipped counts whole chunks the scan router
	// descended by zone map alone (partition kernel bypassed);
	// updBlocksSkipped is its streaming-update twin.
	scanTuples       *obs.Counter
	stuckTuples      *obs.Counter
	stuckPerNode     *obs.Histogram
	blocksSkipped    *obs.Counter
	updBlocksSkipped *obs.Counter

	// Rebuilds and leaf completion.
	rebuildSubtrees, rebuildTuples, spillRebuilds *obs.Counter
	frontierRebuilds                              *obs.Counter
	leavesInMemory, leavesRefitted                *obs.Counter
	migratedTuples                                *obs.Counter

	// Streaming updates (Insert/Delete) and snapshot publication.
	updTuples, updChunks *obs.Counter
	updRate              *obs.Gauge
	epochSwaps           *obs.Counter
	epochGauge           *obs.Gauge

	// Serve-path latency distributions: one Observe per completed
	// Insert/Delete (chunk routed through epoch republish). The predict
	// twin lives in internal/predict.
	updLatency *obs.LatencyHistogram

	// Sampling phase.
	coarseNodes, disagreements *obs.Counter

	// Pipelined-scan telemetry. The pipe* gauges are the live
	// backpressure readings (fed per delivered block via the
	// data.PipelineObserver hook while a scan runs); the pipeTotal*
	// counters accumulate post-scan PipelineStats across every pipelined
	// read — cleanup scans and the Insert/Delete router alike.
	pipeInFlight, pipeRing                  *obs.Gauge
	pipeReadNS, pipeDecodeNS, pipeDeliverNS *obs.Gauge
	pipeTotalBlocks, pipeTotalPhysBytes     *obs.Counter
	pipeTotalReadNS, pipeTotalDecodeNS      *obs.Counter
	pipeTotalDeliverNS                      *obs.Counter
}

func newMetricSet(r *obs.Registry) metricSet {
	if !r.Enabled() {
		return metricSet{}
	}
	return metricSet{
		ciHit:            r.Counter("verify.ci.hit"),
		ciMiss:           r.Counter("verify.ci.miss"),
		failNoCandidate:  r.Counter("verify.fail.no_candidate"),
		failBetterCat:    r.Counter("verify.fail.better_cat"),
		failBound:        r.Counter("verify.fail.bound"),
		failTie:          r.Counter("verify.fail.tie"),
		failMoment:       r.Counter("verify.fail.moment"),
		scanTuples:       r.Counter("scan.tuples"),
		stuckTuples:      r.Counter("scan.stuck.tuples"),
		stuckPerNode:     r.Histogram("scan.stuck.per_node"),
		blocksSkipped:    r.Counter("scan.blocks_skipped"),
		updBlocksSkipped: r.Counter("update.blocks_skipped"),
		rebuildSubtrees:  r.Counter("rebuild.subtrees"),
		rebuildTuples:    r.Counter("rebuild.tuples"),
		spillRebuilds:    r.Counter("rebuild.spill"),
		frontierRebuilds: r.Counter("rebuild.frontier"),
		leavesInMemory:   r.Counter("leaf.inmemory"),
		leavesRefitted:   r.Counter("leaf.refitted"),
		migratedTuples:   r.Counter("update.migrated_tuples"),
		updTuples:        r.Counter("update.tuples"),
		updChunks:        r.Counter("update.chunks"),
		updRate:          r.Gauge("update.tuples_per_sec"),
		epochSwaps:       r.Counter("update.epoch_swaps"),
		epochGauge:       r.Gauge("update.epoch"),
		updLatency:       r.Latency("update.latency"),
		coarseNodes:      r.Counter("bootstrap.coarse_nodes"),
		disagreements:    r.Counter("bootstrap.disagreements"),

		// Created eagerly (not on first pipelined scan) so the series
		// exist on /metrics from the first scrape, zero-valued until a
		// columnar source feeds them.
		pipeInFlight:       r.Gauge("pipeline.in_flight_blocks"),
		pipeRing:           r.Gauge("pipeline.ring_occupancy"),
		pipeReadNS:         r.Gauge("pipeline.read_stall_ns"),
		pipeDecodeNS:       r.Gauge("pipeline.decode_ns"),
		pipeDeliverNS:      r.Gauge("pipeline.deliver_stall_ns"),
		pipeTotalBlocks:    r.Counter("pipeline.blocks"),
		pipeTotalPhysBytes: r.Counter("pipeline.phys_bytes"),
		pipeTotalReadNS:    r.Counter("pipeline.read_ns"),
		pipeTotalDecodeNS:  r.Counter("pipeline.decode_ns_total"),
		pipeTotalDeliverNS: r.Counter("pipeline.deliver_ns"),
	}
}

// ObservePipeline implements data.PipelineObserver: one live
// backpressure reading per delivered block, stored into the pipe*
// gauges. The metricSet pointer itself is the observer so no extra
// allocation rides on the scan setup.
func (m *metricSet) ObservePipeline(l data.PipelineLive) {
	m.pipeInFlight.Set(float64(l.InFlight))
	m.pipeRing.Set(float64(l.Ring))
	m.pipeReadNS.Set(float64(l.Read))
	m.pipeDecodeNS.Set(float64(l.Decode))
	m.pipeDeliverNS.Set(float64(l.Deliver))
}

// pipelineCfg derives the data-layer pipeline configuration, attaching
// the live-gauge observer when metrics are enabled.
func (t *Tree) pipelineCfg() data.PipelineConfig {
	cfg := t.cfg.pipelineCfg()
	if t.cfg.Metrics.Enabled() {
		cfg.Observer = &t.met
	}
	return cfg
}

// recordPipelineStats accumulates a finished pipelined scanner's stage
// report into the registry counters (blocks, physical bytes, per-stage
// nanos) — the cumulative, scrapeable twin of the per-span attribution
// attachPipelineSpans performs. Non-pipelined scanners record nothing.
func (t *Tree) recordPipelineStats(csc data.ChunkScanner) {
	if csc == nil {
		return
	}
	pr, ok := csc.(data.PipelineReporter)
	if !ok {
		return
	}
	t.recordPipelineStatsValue(pr.PipelineStats())
}

// recordPipelineStatsValue accumulates an extracted — possibly summed
// across the block-sharded scan's per-worker pipelines — stats value.
func (t *Tree) recordPipelineStatsValue(ps data.PipelineStats) {
	if !t.cfg.Metrics.Enabled() || !ps.Enabled {
		return
	}
	t.met.pipeTotalBlocks.Add(ps.Blocks)
	t.met.pipeTotalPhysBytes.Add(ps.PhysBytes)
	t.met.pipeTotalReadNS.Add(int64(ps.Read))
	t.met.pipeTotalDecodeNS.Add(int64(ps.Decode))
	t.met.pipeTotalDeliverNS.Add(int64(ps.Deliver))
}

// recordShardThroughput publishes one cleanup-scan shard's tuple count
// and throughput. The sequential scan reports as shard 0 of 1, so the
// metric names exist at every Parallelism setting.
func (t *Tree) recordShardThroughput(shard int, tuples int64, seconds float64) {
	r := t.cfg.Metrics
	if !r.Enabled() {
		return
	}
	r.Counter(fmt.Sprintf("scan.shard.%d.tuples", shard)).Add(tuples)
	if seconds > 0 {
		r.Gauge(fmt.Sprintf("scan.shard.%d.tuples_per_sec", shard)).Set(float64(tuples) / seconds)
	}
}

// observeStuckSets feeds the per-node stuck-set size histogram after a
// cleanup scan (skipped entirely when metrics are disabled).
func (t *Tree) observeStuckSets(n *bnode) {
	if t.met.stuckPerNode == nil {
		return
	}
	var walk func(*bnode)
	walk = func(n *bnode) {
		if n == nil || n.isLeaf() {
			return
		}
		if n.pending != nil {
			t.met.stuckPerNode.Observe(n.pending.Len())
		}
		walk(n.left)
		walk(n.right)
	}
	walk(n)
}

// resolveLogger returns the configured logger, or a discard logger, so
// call sites never branch on nil.
func resolveLogger(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return obs.NopLogger()
}
