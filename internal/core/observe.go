package core

import (
	"fmt"
	"log/slog"

	"github.com/boatml/boat/internal/obs"
)

// metricSet caches the registry instruments the build updates, resolved
// once per Tree instead of one registry lookup (a mutex acquisition) per
// verified node. Every field is nil when no registry is configured, so
// updates degrade to nil-receiver no-ops.
type metricSet struct {
	// Verification: one hit or miss per verified coarse node, plus the
	// per-cause failure breakdown mirroring BuildStats.FailXxx.
	ciHit, ciMiss                                                  *obs.Counter
	failNoCandidate, failBetterCat, failBound, failTie, failMoment *obs.Counter

	// Cleanup scan. blocksSkipped counts whole chunks the scan router
	// descended by zone map alone (partition kernel bypassed);
	// updBlocksSkipped is its streaming-update twin.
	scanTuples       *obs.Counter
	stuckTuples      *obs.Counter
	stuckPerNode     *obs.Histogram
	blocksSkipped    *obs.Counter
	updBlocksSkipped *obs.Counter

	// Rebuilds and leaf completion.
	rebuildSubtrees, rebuildTuples, spillRebuilds *obs.Counter
	frontierRebuilds                              *obs.Counter
	leavesInMemory, leavesRefitted                *obs.Counter
	migratedTuples                                *obs.Counter

	// Streaming updates (Insert/Delete) and snapshot publication.
	updTuples, updChunks *obs.Counter
	updRate              *obs.Gauge
	epochSwaps           *obs.Counter

	// Sampling phase.
	coarseNodes, disagreements *obs.Counter
}

func newMetricSet(r *obs.Registry) metricSet {
	if !r.Enabled() {
		return metricSet{}
	}
	return metricSet{
		ciHit:            r.Counter("verify.ci.hit"),
		ciMiss:           r.Counter("verify.ci.miss"),
		failNoCandidate:  r.Counter("verify.fail.no_candidate"),
		failBetterCat:    r.Counter("verify.fail.better_cat"),
		failBound:        r.Counter("verify.fail.bound"),
		failTie:          r.Counter("verify.fail.tie"),
		failMoment:       r.Counter("verify.fail.moment"),
		scanTuples:       r.Counter("scan.tuples"),
		stuckTuples:      r.Counter("scan.stuck.tuples"),
		stuckPerNode:     r.Histogram("scan.stuck.per_node"),
		blocksSkipped:    r.Counter("scan.blocks_skipped"),
		updBlocksSkipped: r.Counter("update.blocks_skipped"),
		rebuildSubtrees:  r.Counter("rebuild.subtrees"),
		rebuildTuples:    r.Counter("rebuild.tuples"),
		spillRebuilds:    r.Counter("rebuild.spill"),
		frontierRebuilds: r.Counter("rebuild.frontier"),
		leavesInMemory:   r.Counter("leaf.inmemory"),
		leavesRefitted:   r.Counter("leaf.refitted"),
		migratedTuples:   r.Counter("update.migrated_tuples"),
		updTuples:        r.Counter("update.tuples"),
		updChunks:        r.Counter("update.chunks"),
		updRate:          r.Gauge("update.tuples_per_sec"),
		epochSwaps:       r.Counter("update.epoch_swaps"),
		coarseNodes:      r.Counter("bootstrap.coarse_nodes"),
		disagreements:    r.Counter("bootstrap.disagreements"),
	}
}

// recordShardThroughput publishes one cleanup-scan shard's tuple count
// and throughput. The sequential scan reports as shard 0 of 1, so the
// metric names exist at every Parallelism setting.
func (t *Tree) recordShardThroughput(shard int, tuples int64, seconds float64) {
	r := t.cfg.Metrics
	if !r.Enabled() {
		return
	}
	r.Counter(fmt.Sprintf("scan.shard.%d.tuples", shard)).Add(tuples)
	if seconds > 0 {
		r.Gauge(fmt.Sprintf("scan.shard.%d.tuples_per_sec", shard)).Set(float64(tuples) / seconds)
	}
}

// observeStuckSets feeds the per-node stuck-set size histogram after a
// cleanup scan (skipped entirely when metrics are disabled).
func (t *Tree) observeStuckSets(n *bnode) {
	if t.met.stuckPerNode == nil {
		return
	}
	var walk func(*bnode)
	walk = func(n *bnode) {
		if n == nil || n.isLeaf() {
			return
		}
		if n.pending != nil {
			t.met.stuckPerNode.Observe(n.pending.Len())
		}
		walk(n.left)
		walk(n.right)
	}
	walk(n)
}

// resolveLogger returns the configured logger, or a discard logger, so
// call sites never branch on nil.
func resolveLogger(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return obs.NopLogger()
}
