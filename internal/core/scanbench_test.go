package core

import (
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/split"
)

// BenchmarkCleanupScan times one cleanup-scan pass over the Fig-4/F1
// workload for each scan implementation: the row-at-a-time baseline, the
// level-synchronous columnar scan, and the sharded columnar scan. The
// generator output is materialized up front so the benchmark measures the
// scan, not synthetic data generation. The skeleton is built once per
// mode; passes are separated by an exact statistic reset that runs
// outside the timer.
func BenchmarkCleanupScan(b *testing.B) {
	const n = 200000
	gsrc := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, n, 42)
	tuples, err := data.ReadAll(gsrc)
	if err != nil {
		b.Fatal(err)
	}
	src := data.NewMemSource(gsrc.Schema(), tuples)
	for _, mode := range []ScanMode{ScanModeRow, ScanModeChunk, ScanModeSharded} {
		b.Run(string(mode), func(b *testing.B) {
			bench, err := NewScanBench(src, Config{
				Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
				SampleSize: 2000, Seed: 7, TempDir: b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer bench.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := bench.Reset(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				seen, err := bench.RunOnce(mode)
				if err != nil {
					b.Fatal(err)
				}
				if seen != n {
					b.Fatalf("saw %d tuples, want %d", seen, n)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}
