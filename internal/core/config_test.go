package core

import (
	"strings"
	"testing"

	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/split"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantSub string
	}{
		{"missing method", Config{}, "Method is required"},
		{"negative widen", Config{Method: split.NewGini(), WidenFraction: -1}, "WidenFraction"},
		{"negative limits", Config{Method: split.NewGini(), MaxDepth: -1}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.cfg.withDefaults(1000)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Method: split.NewGini()}.withDefaults(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SampleSize != 100_000 {
		t.Errorf("SampleSize default = %d, want N/10", cfg.SampleSize)
	}
	if cfg.BootstrapTrees != 20 {
		t.Errorf("BootstrapTrees default = %d, want 20 (the paper's b)", cfg.BootstrapTrees)
	}
	if cfg.SubsampleSize != 25_000 {
		t.Errorf("SubsampleSize default = %d, want SampleSize/4", cfg.SubsampleSize)
	}
	if cfg.MaxRebuildRecursion != 3 {
		t.Errorf("MaxRebuildRecursion default = %d", cfg.MaxRebuildRecursion)
	}
	// Sample size is capped at the paper's 200k.
	cfg, _ = Config{Method: split.NewGini()}.withDefaults(100_000_000)
	if cfg.SampleSize != 200_000 {
		t.Errorf("SampleSize cap = %d, want 200000", cfg.SampleSize)
	}
	// ...and floored at 1000 for tiny inputs.
	cfg, _ = Config{Method: split.NewGini()}.withDefaults(50)
	if cfg.SampleSize != 1000 {
		t.Errorf("SampleSize floor = %d, want 1000", cfg.SampleSize)
	}
}

func TestBuildRejectsUnverifiableMethod(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 100, 1)
	_, err := Build(src, Config{Method: opaqueMethod{}})
	if err == nil || !strings.Contains(err.Error(), "cannot verify") {
		t.Errorf("err = %v", err)
	}
}

// opaqueMethod is neither impurity-based nor moment-based: BOAT has no way
// to verify its coarse criteria and must refuse it.
type opaqueMethod struct{}

func (opaqueMethod) Name() string                           { return "opaque" }
func (opaqueMethod) BestSplit(*split.NodeStats) split.Split { return split.NoSplit() }

func TestBuildTinyDatasets(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 10} {
		src := gen.MustSource(gen.Config{Function: 1}, n, 1)
		bt, err := Build(src, Config{Method: split.NewGini(), Seed: 1})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		tr := bt.Tree()
		if tr == nil || tr.Root == nil {
			t.Fatalf("n=%d: nil tree", n)
		}
		if err := bt.CheckConsistency(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		bt.Close()
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	// Function 2 has a stable root concept (age bands), so the sampling
	// phase reliably produces coarse nodes.
	src := gen.MustSource(gen.Config{Function: 2, Noise: 0.05}, 8000, 2)
	bt, err := Build(src, Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 50, SampleSize: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	st := bt.BuildStats()
	if st.TuplesSeen != 8000 {
		t.Errorf("TuplesSeen = %d", st.TuplesSeen)
	}
	if st.SampleSize != 2000 {
		t.Errorf("SampleSize = %d", st.SampleSize)
	}
	if st.CoarseNodes == 0 {
		t.Errorf("CoarseNodes = 0 on a clean concept")
	}
	if bt.Schema() == nil {
		t.Error("nil schema")
	}
}

func TestDoubleClose(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 500, 1)
	bt, err := Build(src, Config{Method: split.NewGini(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}
