package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/boatml/boat/internal/bootstrap"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
)

// ScanMode selects which cleanup-scan implementation a ScanBench pass
// runs.
type ScanMode string

const (
	// ScanModeRow is the row-at-a-time baseline: one root-to-stick
	// descent per tuple.
	ScanModeRow ScanMode = "row"
	// ScanModeChunk is the level-synchronous columnar scan, sequential.
	ScanModeChunk ScanMode = "chunk"
	// ScanModeSharded is the level-synchronous columnar scan sharded
	// across Parallelism workers fed chunks from one shared reader.
	ScanModeSharded ScanMode = "sharded"
	// ScanModeBlockSharded shards by contiguous block ranges of the file:
	// every worker owns a byte range with a private reader and pipeline.
	// Requires a block-splittable source (a columnar file).
	ScanModeBlockSharded ScanMode = "block_sharded"
)

// ScanMeasurement is the result of timing cleanup-scan passes.
type ScanMeasurement struct {
	Mode           string  `json:"mode"`
	Rounds         int     `json:"rounds"`
	Tuples         int64   `json:"tuples"`
	Seconds        float64 `json:"seconds"`
	TuplesPerSec   float64 `json:"tuples_per_sec"`
	AllocObjects   int64   `json:"alloc_objects"`
	AllocBytes     int64   `json:"alloc_bytes"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	BytesPerTuple  float64 `json:"bytes_per_tuple"`
}

// ScanBench wraps a coarse-tree skeleton built once by a sampling phase,
// ready for repeated cleanup scans over the same source. Benchmarks need
// to time the scan in isolation, which means resetting the scan
// statistics between passes instead of rebuilding the whole tree; the
// reset is exact (see resetScanState), so every pass reproduces the same
// statistics.
type ScanBench struct {
	tree *Tree
	src  data.Source
	root *bnode
}

// NewScanBench runs the sampling phase of a Build (sample, bootstrap,
// skeleton, discretizations) and returns the skeleton ready for cleanup
// scans. Close it to release the skeleton's buffers.
func NewScanBench(src data.Source, cfg Config) (*ScanBench, error) {
	n, err := data.CountTuples(src)
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.withDefaults(n)
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget == nil {
		budget = data.NewMemBudget(cfg.MemBudgetTuples)
	}
	t := &Tree{
		cfg:    cfg,
		schema: src.Schema(),
		budget: budget,
		met:    newMetricSet(cfg.Metrics),
		log:    resolveLogger(cfg.Logger),
	}
	t.impurityBased, _ = cfg.Method.(split.ImpurityBased)
	t.momentBased, _ = cfg.Method.(split.MomentBased)
	if t.impurityBased == nil && t.momentBased == nil {
		return nil, fmt.Errorf("core: unsupported method %q", cfg.Method.Name())
	}
	tracked := iostats.Tracked(src, cfg.Stats)
	sample, err := data.ReservoirSample(tracked, cfg.SampleSize, cfg.newRNG())
	if err != nil {
		return nil, fmt.Errorf("core: sampling phase: %w", err)
	}
	bcfg := bootstrap.Config{
		Trees:         cfg.BootstrapTrees,
		SubsampleSize: cfg.SubsampleSize,
		WidenFraction: cfg.WidenFraction,
		TreeConfig:    t.bootstrapGrowConfig(n),
		Seed:          cfg.Seed + 104729*t.seedCounter.Add(1),
		Parallelism:   cfg.workers(),
	}
	coarse, _, err := bootstrap.BuildCoarse(t.schema, sample, bcfg)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap: %w", err)
	}
	root := t.skeletonFromCoarse(coarse, sample, 0)
	return &ScanBench{tree: t, src: tracked, root: root}, nil
}

// Reset zeroes every scan statistic and buffer, preparing the skeleton
// for another pass.
func (b *ScanBench) Reset() error { return resetScanState(b.root) }

// RunOnce performs one cleanup scan in the given mode over a skeleton
// that must be freshly built or Reset, returning the tuples seen. The
// chunked modes include the post-scan count derivation, exactly as a
// Build-driven scan does.
func (b *ScanBench) RunOnce(mode ScanMode) (int64, error) {
	switch mode {
	case ScanModeRow:
		return b.tree.rowScan(b.src, b.root)
	case ScanModeChunk:
		seen, err := b.tree.sequentialScan(b.src, b.root, nil)
		if err == nil {
			deriveRoutingCounts(b.root)
		}
		return seen, err
	case ScanModeSharded:
		w := b.tree.cfg.workers()
		if w < 2 {
			w = 2
		}
		seen, err := b.tree.shardedScan(b.src, b.root, w, nil)
		if err == nil {
			deriveRoutingCounts(b.root)
		}
		return seen, err
	case ScanModeBlockSharded:
		w := b.tree.cfg.workers()
		if w < 2 {
			w = 2
		}
		bs, _, ok := blockSplittable(b.src, w)
		if !ok {
			return 0, fmt.Errorf("core: scan mode %q needs a block-splittable source with >= %d blocks", mode, w)
		}
		seen, err := b.tree.blockShardedScan(bs, b.root, w, nil)
		if err == nil {
			deriveRoutingCounts(b.root)
		}
		return seen, err
	}
	return 0, fmt.Errorf("core: unknown scan mode %q", mode)
}

// Close releases the skeleton's buffers (spill files, arenas).
func (b *ScanBench) Close() { closeSubtree(b.root) }

// Measure times rounds cleanup-scan passes in the given mode, resetting
// between passes. Reset time is excluded from the timing; the allocation
// counts bracket only the scans (via runtime.MemStats deltas) and are
// also recorded into the config's Stats when present.
func (b *ScanBench) Measure(mode ScanMode, rounds int) (ScanMeasurement, error) {
	if rounds < 1 {
		rounds = 1
	}
	m := ScanMeasurement{Mode: string(mode), Rounds: rounds}
	var (
		elapsed        time.Duration
		mallocs, bytes uint64
		ms             runtime.MemStats
	)
	for i := 0; i < rounds; i++ {
		if err := b.Reset(); err != nil {
			return m, err
		}
		runtime.GC()
		runtime.ReadMemStats(&ms)
		m0, a0 := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		seen, err := b.RunOnce(mode)
		elapsed += time.Since(start)
		runtime.ReadMemStats(&ms)
		mallocs += ms.Mallocs - m0
		bytes += ms.TotalAlloc - a0
		if err != nil {
			return m, err
		}
		m.Tuples += seen
	}
	m.Seconds = elapsed.Seconds()
	if m.Seconds > 0 {
		m.TuplesPerSec = float64(m.Tuples) / m.Seconds
	}
	m.AllocObjects, m.AllocBytes = int64(mallocs), int64(bytes)
	if m.Tuples > 0 {
		m.AllocsPerTuple = float64(mallocs) / float64(m.Tuples)
		m.BytesPerTuple = float64(bytes) / float64(m.Tuples)
	}
	b.tree.cfg.Stats.RecordAllocs(int64(mallocs), int64(bytes))
	return m, nil
}
