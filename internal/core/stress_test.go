package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
)

// TestRandomOperationSequences is the strongest maintenance stress test:
// random schemas, random planted concepts, and random interleavings of
// insert and delete chunks (including deletes of partial chunks and
// re-inserts of previously deleted data). After every operation the
// maintained tree must equal a from-scratch reference build on the
// current multiset, and the internal invariants must hold.
func TestRandomOperationSequences(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema, base := randomDataset(rng)
			method := split.Method(split.NewGini())
			if seed%3 == 1 {
				method = split.NewQuestLike()
			} else if seed%3 == 2 {
				method = split.NewEntropy()
			}
			maxDepth := 3 + rng.Intn(2)
			g := inmem.Config{Method: method, MaxDepth: maxDepth, MinSplit: 10}
			cfg := Config{
				Method: method, MaxDepth: maxDepth, MinSplit: 10,
				SampleSize: len(base)/3 + 10, BootstrapTrees: 8, Seed: seed,
			}
			if rng.Intn(2) == 0 {
				cfg.MemBudgetTuples = int64(len(base) / 4)
				cfg.TempDir = t.TempDir()
			}
			bt, err := Build(data.NewMemSource(schema, base), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer bt.Close()

			current := data.CloneTuples(base)
			var chunks [][]data.Tuple // insert history available for deletion
			chunks = append(chunks, data.CloneTuples(base))

			for op := 0; op < 10; op++ {
				if rng.Intn(3) > 0 || len(chunks) == 0 || len(current) < 50 {
					// Insert a fresh chunk drawn from a (possibly
					// different) random concept over the same schema.
					rng2 := rand.New(rand.NewSource(seed*100 + int64(op)))
					_, chunk := randomDatasetWithSchema(rng2, schema)
					if _, err := bt.Insert(data.NewMemSource(schema, chunk)); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					current = append(current, data.CloneTuples(chunk)...)
					chunks = append(chunks, chunk)
				} else {
					// Delete a previously inserted chunk (possibly just a
					// prefix of it).
					idx := rng.Intn(len(chunks))
					victim := chunks[idx]
					n := len(victim)
					if rng.Intn(2) == 0 && n > 2 {
						n = 1 + rng.Intn(n-1)
					}
					expired := victim[:n]
					if _, err := bt.Delete(data.NewMemSource(schema, expired)); err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					current = subtract(current, expired)
					if n == len(victim) {
						chunks = append(chunks[:idx], chunks[idx+1:]...)
					} else {
						chunks[idx] = victim[n:]
					}
				}
				ref := inmem.Build(schema, data.CloneTuples(current), g)
				got := bt.Tree()
				if !got.Equal(ref) {
					t.Fatalf("op %d (%s, %d tuples): %s", op, method.Name(), len(current), got.Diff(ref))
				}
				if err := bt.CheckConsistency(); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
		})
	}
}

// randomDatasetWithSchema draws a dataset over an existing schema with a
// random planted concept.
func randomDatasetWithSchema(rng *rand.Rand, schema *data.Schema) (*data.Schema, []data.Tuple) {
	n := 200 + rng.Intn(800)
	domain := 5 + rng.Intn(40)
	pivot := float64(rng.Intn(domain))
	numIdx := schema.NumericIndexes()
	catIdx := schema.CategoricalIndexes()
	tuples := make([]data.Tuple, n)
	for i := range tuples {
		vals := make([]float64, schema.NumAttrs())
		for a, at := range schema.Attributes {
			if at.Kind == data.Numeric {
				vals[a] = float64(rng.Intn(domain))
			} else {
				vals[a] = float64(rng.Intn(at.Cardinality))
			}
		}
		class := 0
		if len(numIdx) > 0 && vals[numIdx[0]] > pivot {
			class = 1
		}
		if len(catIdx) > 0 && int(vals[catIdx[0]])%2 == 1 {
			class = (class + 1) % schema.ClassCount
		}
		if rng.Float64() < 0.15 {
			class = rng.Intn(schema.ClassCount)
		}
		tuples[i] = data.Tuple{Values: vals, Class: class}
	}
	return schema, tuples
}
