package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/iostats"
)

// Insert incorporates a new chunk of training data into the tree
// (Section 4): the chunk is streamed down the tree exactly as during the
// cleanup scan — updating every per-node statistic, sticking in-interval
// tuples into the S_n sets — and then the same top-down verification /
// refinement pass as the static build runs over the whole tree. The
// resulting tree is guaranteed identical to rebuilding from scratch on
// D ∪ chunk. Only one scan of the chunk is performed; the original
// training database is never re-read unless a coarse criterion is
// invalidated, in which case the affected subtree is rebuilt from the
// buffers the tree maintains.
//
// Insert is safe for concurrent use: updates are serialized on the tree's
// update mutex (see the concurrency contract on Tree), and predictions
// keep serving the last published Snapshot while the update is in flight.
func (t *Tree) Insert(chunk data.Source) (UpdateStats, error) {
	return t.update(chunk, +1)
}

// Delete removes an expired chunk from the training data (tuples must be
// present; dangling deletions are reported as errors). Handled
// symmetrically to Insert: counts are decremented, stuck and stored
// tuples are removed, and the verification pass rebuilds whatever the
// deletions invalidated. The result is guaranteed identical to rebuilding
// from scratch on D minus the chunk. Like Insert, Delete serializes on
// the update mutex and is safe for concurrent use.
func (t *Tree) Delete(chunk data.Source) (UpdateStats, error) {
	return t.update(chunk, -1)
}

func (t *Tree) update(chunk data.Source, w int64) (UpdateStats, error) {
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	if t.root == nil {
		return UpdateStats{}, errors.New("core: tree is closed")
	}
	if !t.schema.Equal(chunk.Schema()) {
		return UpdateStats{}, data.ErrSchemaMismatch
	}
	upd := &UpdateStats{}
	t.statsMu.Lock()
	t.upd = upd
	t.statsMu.Unlock()
	defer func() {
		t.statsMu.Lock()
		t.upd = nil
		t.statsMu.Unlock()
	}()

	name := "insert"
	if w < 0 {
		name = "delete"
	}
	updSpan := t.cfg.Trace.Start(name)
	defer updSpan.End()
	start := time.Now()

	// Route the chunk down the tree: columnar batches through the chunk
	// router by default, one descent per tuple when the row baseline is
	// forced. Both paths update the same statistics with the same signed
	// weight and fill the same buffers in stream order, so the trees they
	// leave behind are bit-identical.
	tracked := iostats.Tracked(chunk, t.cfg.Stats)
	routeSpan := updSpan.Start("route-chunk")
	var err error
	if t.cfg.RowUpdates {
		routeSpan.SetAttr("mode", "row")
		err = data.ForEach(tracked, func(tp data.Tuple) error {
			upd.TuplesSeen++
			return t.route(t.root, tp, w)
		})
	} else {
		routeSpan.SetAttr("mode", "chunked")
		rows := t.cfg.chunkRows()
		if t.updScratch == nil {
			t.updScratch = newRouteScratch(rows)
		}
		// The chunk stream runs behind the same prefetch/decode pipeline as
		// the cleanup scan (falling back to the plain chunked scan for
		// non-columnar sources), and its stage report lands in the route
		// span and the pipeline.* registry counters — the update router's
		// reads are as observable as the build's.
		var csc data.ChunkScanner
		csc, err = data.ScanChunksPipelined(tracked, t.pipelineCfg())
		if err == nil {
			ch := data.NewChunk(len(t.schema.Attributes), rows)
			for err == nil {
				ch.Reset()
				nerr := csc.NextChunk(ch)
				if nerr == io.EOF {
					break
				}
				if nerr != nil {
					err = nerr
					break
				}
				if ch.Len() == 0 {
					continue
				}
				upd.TuplesSeen += int64(ch.Len())
				upd.Chunks++
				err = t.runUpdateChunk(ch, t.updScratch, w)
			}
			if cerr := csc.Close(); err == nil {
				err = cerr
			}
			attachPipelineSpans(routeSpan, csc)
			t.recordPipelineStats(csc)
		}
	}
	routeSpan.SetAttr("tuples", upd.TuplesSeen)
	routeSpan.SetAttr("chunks", upd.Chunks)
	routeSpan.End()
	if err != nil {
		return *upd, fmt.Errorf("core: streaming update chunk: %w", err)
	}
	if err := t.process(t.root, 0, updSpan); err != nil {
		return *upd, fmt.Errorf("core: post-update processing: %w", err)
	}

	// The tree is consistent again: advance the epoch, and republish
	// eagerly when serving has started so readers flip to the new epoch
	// without paying the materialization themselves. A failed update never
	// reaches this point — readers then keep serving the last published
	// epoch (see the failure semantics in DESIGN.md §14).
	t.epoch.Add(1)
	if t.snap.Load() != nil {
		if _, err := t.publishLocked(); err != nil {
			return *upd, fmt.Errorf("core: publishing update snapshot: %w", err)
		}
	}

	elapsed := time.Since(start)
	secs := elapsed.Seconds()
	t.met.updTuples.Add(upd.TuplesSeen)
	t.met.updChunks.Add(upd.Chunks)
	t.met.updLatency.Observe(elapsed)
	if secs > 0 {
		t.met.updRate.Set(float64(upd.TuplesSeen) / secs)
	}
	t.log.Info("update finished", "op", name, "tuples", upd.TuplesSeen,
		"chunks", upd.Chunks, "epoch", t.epoch.Load(),
		"rebuilt_subtrees", upd.RebuiltSubtrees, "migrated_tuples", upd.MigratedTuples,
		"refitted_leaves", upd.RefittedLeaves)
	return *upd, nil
}

func (t *Tree) noteRebuildTuples(n int64) {
	t.met.rebuildTuples.Add(n)
	t.mutateStats(func(b *BuildStats, upd *UpdateStats) {
		if upd == nil {
			b.RebuildTuples += n
		} else {
			upd.RebuildTuples += n
		}
	})
}
