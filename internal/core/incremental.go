package core

import (
	"errors"
	"fmt"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/iostats"
)

// Insert incorporates a new chunk of training data into the tree
// (Section 4): the chunk is streamed down the tree exactly as during the
// cleanup scan — updating every per-node statistic, sticking in-interval
// tuples into the S_n sets — and then the same top-down verification /
// refinement pass as the static build runs over the whole tree. The
// resulting tree is guaranteed identical to rebuilding from scratch on
// D ∪ chunk. Only one scan of the chunk is performed; the original
// training database is never re-read unless a coarse criterion is
// invalidated, in which case the affected subtree is rebuilt from the
// buffers the tree maintains.
func (t *Tree) Insert(chunk data.Source) (UpdateStats, error) {
	return t.update(chunk, +1)
}

// Delete removes an expired chunk from the training data (tuples must be
// present; dangling deletions are reported as errors). Handled
// symmetrically to Insert: counts are decremented, stuck and stored
// tuples are removed, and the verification pass rebuilds whatever the
// deletions invalidated. The result is guaranteed identical to rebuilding
// from scratch on D minus the chunk.
func (t *Tree) Delete(chunk data.Source) (UpdateStats, error) {
	return t.update(chunk, -1)
}

func (t *Tree) update(chunk data.Source, w int64) (UpdateStats, error) {
	if t.root == nil {
		return UpdateStats{}, errors.New("core: tree is closed")
	}
	if !t.schema.Equal(chunk.Schema()) {
		return UpdateStats{}, data.ErrSchemaMismatch
	}
	upd := &UpdateStats{}
	t.statsMu.Lock()
	t.upd = upd
	t.statsMu.Unlock()
	defer func() {
		t.statsMu.Lock()
		t.upd = nil
		t.statsMu.Unlock()
	}()

	name := "insert"
	if w < 0 {
		name = "delete"
	}
	updSpan := t.cfg.Trace.Start(name)
	defer updSpan.End()

	tracked := iostats.Tracked(chunk, t.cfg.Stats)
	routeSpan := updSpan.Start("route-chunk")
	err := data.ForEach(tracked, func(tp data.Tuple) error {
		upd.TuplesSeen++
		return t.route(t.root, tp, w)
	})
	routeSpan.SetAttr("tuples", upd.TuplesSeen)
	routeSpan.End()
	if err != nil {
		return *upd, fmt.Errorf("core: streaming update chunk: %w", err)
	}
	if err := t.process(t.root, 0, updSpan); err != nil {
		return *upd, fmt.Errorf("core: post-update processing: %w", err)
	}
	t.log.Info("update finished", "op", name, "tuples", upd.TuplesSeen,
		"rebuilt_subtrees", upd.RebuiltSubtrees, "migrated_tuples", upd.MigratedTuples,
		"refitted_leaves", upd.RefittedLeaves)
	return *upd, nil
}

func (t *Tree) noteRebuildTuples(n int64) {
	t.met.rebuildTuples.Add(n)
	t.mutateStats(func(b *BuildStats, upd *UpdateStats) {
		if upd == nil {
			b.RebuildTuples += n
		} else {
			upd.RebuildTuples += n
		}
	})
}
