package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/discretize"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/split"
)

// The cleanup scan (scan 2 of the paper) is a pure aggregation: every
// tuple updates class counts, AVC counts, histogram buckets and moment
// statistics along its root-to-stick path, and lands in exactly one
// buffer (a stuck set S_n or a leaf family). All of those statistics are
// exact integer counts, so the scan is shard-parallel: the input stream
// is partitioned into chunks routed by worker goroutines into private
// per-worker shadow trees, which are then merged into the bnode fields in
// worker order before top-down processing. Merging is commutative for the
// counts and deterministic for the buffers (chunks are dealt round-robin,
// shards merge in worker order), and BOAT's verification pass guarantees
// the final tree is the exact reference tree regardless of the order
// tuples entered the buffers.
//
// The scan is level-synchronous over columnar chunks (data.Chunk): a node
// receives a batch of row indices into the chunk, applies the batched
// count kernels (CatAVC.AddBatch, Histogram.AddBatch, Moments.AddChunk)
// attribute by attribute, partitions the batch by its coarse split in one
// pass, and recurses. Compared to descending the tree once per tuple,
// this keeps each kernel's working set (one attribute column plus one
// statistic) hot across thousands of rows and makes the steady state
// allocation-free: chunks are pooled, index batches live in per-depth
// scratch buffers, and stuck/leaf rows are copied into the buffers' slab
// arenas.

// cleanupScan streams src down the subtree rooted at root, returning the
// number of tuples seen. Parallelism <= 1 follows the exact sequential
// code path; otherwise the scan is sharded across workers.
//
// Storage faults degrade gracefully: a sharded scan that fails with a
// SpillError has its statistics zeroed (resetScanState) and is rerun
// sequentially, and a sequential scan that fails with a SpillError gets
// one reset-and-retry before the error propagates. Both recoveries are
// exact — the scan is the sole contributor to every statistic it touches,
// so zero-and-rerun reproduces precisely the state a fault-free scan
// would have built. Logical errors (bad data, schema mismatch) are never
// retried.
func (t *Tree) cleanupScan(src data.Source, root *bnode, sp *obs.Span) (int64, error) {
	seen, err := t.runCleanupScan(src, root, sp)
	if err == nil {
		deriveRoutingCounts(root)
	}
	return seen, err
}

// runCleanupScan executes the scan passes (sharded with sequential
// fallback, or sequential with one retry) without the post-scan count
// derivation, which cleanupScan applies exactly once on success.
func (t *Tree) runCleanupScan(src data.Source, root *bnode, sp *obs.Span) (int64, error) {
	if w := t.cfg.workers(); w > 1 {
		// Tiny known-size inputs skip sharding: the overhead cannot pay off.
		if n, ok := src.Count(); !ok || n >= int64(2*t.cfg.chunkRows()) {
			var seen int64
			var err error
			if bs, blocks, ok := blockSplittable(src, w); ok && t.cfg.BlockSharding {
				sp.SetAttr("mode", "block-sharded")
				sp.SetAttr("workers", w)
				sp.SetAttr("blocks", blocks)
				seen, err = t.blockShardedScan(bs, root, w, sp)
			} else {
				sp.SetAttr("mode", "sharded")
				sp.SetAttr("workers", w)
				seen, err = t.shardedScan(src, root, w, sp)
			}
			if err == nil || !recoverableScanError(err) {
				return seen, err
			}
			// A storage fault broke the sharded scan. Scan-phase faults
			// leave the real tree untouched (shadow trees are private),
			// but a fault during merging may have partially mutated it,
			// so both cases are handled uniformly: zero every scan
			// statistic and fall back to the sequential path.
			t.cfg.Stats.RecordScanFallback()
			t.log.Warn("sharded cleanup scan hit a storage fault; falling back to sequential", "err", err)
			sp.SetAttr("fallback", "sequential")
			if rerr := resetScanState(root); rerr != nil {
				return seen, fmt.Errorf("core: resetting after failed sharded scan: %w", rerr)
			}
		}
	}
	if w := t.cfg.workers(); w <= 1 {
		sp.SetAttr("mode", "sequential")
	}
	seen, err := t.sequentialScan(src, root, sp)
	if err != nil && recoverableScanError(err) {
		t.cfg.Stats.RecordScanRetry()
		t.log.Warn("sequential cleanup scan hit a storage fault; retrying once", "err", err)
		sp.SetAttr("retried", true)
		if rerr := resetScanState(root); rerr != nil {
			return seen, fmt.Errorf("core: resetting after failed cleanup scan: %w", rerr)
		}
		seen, err = t.sequentialScan(src, root, sp)
	}
	return seen, err
}

// recoverableScanError reports whether a failed scan is worth rerunning:
// storage faults — spill-path failures, block-level read/decode errors
// (which wrap transient and permanent filesystem faults alike), and bare
// transient faults. The reset-and-rerun recovery is exact either way; a
// permanently corrupt file simply fails again with the same typed error,
// costing one wasted pass. Logical errors (schema mismatch, routing
// bugs) are never retried.
func recoverableScanError(err error) bool {
	if data.IsSpillError(err) || data.IsTransient(err) {
		return true
	}
	var be *data.BlockError
	return errors.As(err, &be)
}

// blockSplittable reports whether src can drive a block-sharded scan
// with w workers: it (or the source behind its iostats wrapper) serves
// independent block-range scans and has at least one block per worker.
// Fewer blocks than workers degrades to chunk sharding, which can still
// split the large blocks row-wise.
func blockSplittable(src data.Source, w int) (data.BlockSplitSource, int64, bool) {
	bs, ok := src.(data.BlockSplitSource)
	if !ok {
		return nil, 0, false
	}
	blocks := bs.BlockSplits()
	if blocks < int64(w) {
		return nil, 0, false
	}
	return bs, blocks, true
}

// deriveRoutingCounts reconstructs the per-node class statistics the
// chunked scan defers out of its partition loop: rows routed left are
// exactly the left child's intake and rows routed right the right
// child's, so for a numeric internal node lowCounts = left.classCounts,
// highCounts = right.classCounts, and classCounts = lowCounts +
// highCounts + the stuck rows counted during the scan. A categorical
// node's classCounts is simply the two intakes' sum (its partition
// strands no rows). Every term is an exact integer accumulated from the
// same tuple multiset the per-row path counts, so the derived values are
// identical to eagerly counted ones. Must run exactly once, after a
// successful chunked scan; leaves count their classes during the scan
// and are left untouched.
func deriveRoutingCounts(n *bnode) {
	if n == nil || n.isLeaf() {
		return
	}
	deriveRoutingCounts(n.left)
	deriveRoutingCounts(n.right)
	if n.coarse.kind == data.Numeric {
		for i, v := range n.left.classCounts {
			n.lowCounts[i] += v
		}
		for i, v := range n.right.classCounts {
			n.highCounts[i] += v
		}
		for i := range n.classCounts {
			n.classCounts[i] += n.lowCounts[i] + n.highCounts[i]
		}
	} else {
		for i := range n.classCounts {
			n.classCounts[i] += n.left.classCounts[i] + n.right.classCounts[i]
		}
	}
}

// sequentialScan is the single-goroutine cleanup scan: chunked iteration
// through an aliased shard view of the real tree, so the batch router is
// shared with the sharded path and no merge step is needed. sp (nil ok)
// receives the pipeline stage spans and zone-skip attribution.
func (t *Tree) sequentialScan(src data.Source, root *bnode, sp *obs.Span) (int64, error) {
	direct := newDirectTree(root)
	rows := t.cfg.chunkRows()
	sc := newRouteScratch(rows)
	sc.zoneSkip = !t.cfg.DisableZoneSkip
	start := time.Now()
	csc, err := data.ScanChunksPipelined(src, t.pipelineCfg())
	if err != nil {
		return 0, err
	}
	var seen int64
	ch := data.NewChunk(len(t.schema.Attributes), rows)
	var scanErr error
	for scanErr == nil {
		ch.Reset()
		err := csc.NextChunk(ch)
		if err == io.EOF {
			break
		}
		if err != nil {
			scanErr = err
			break
		}
		if ch.Len() == 0 {
			continue
		}
		seen += int64(ch.Len())
		scanErr = direct.routeChunk(ch, nil, sc, 0)
	}
	if cerr := csc.Close(); scanErr == nil {
		scanErr = cerr
	}
	attachPipelineSpans(sp, csc)
	t.recordPipelineStats(csc)
	if scanErr == nil {
		// The sequential scan reports as shard 0 so the per-shard
		// throughput metrics exist at every Parallelism setting.
		t.recordShardThroughput(0, seen, time.Since(start).Seconds())
		t.recordZoneSkips(sp, sc.skips)
	}
	return seen, scanErr
}

// attachPipelineSpans records a pipelined scanner's stage times — read
// (filesystem wait), decode (checksum + expand, cumulative across
// workers), deliver (consumer wait on the ordered ring) — as completed
// child spans of the scan span, plus block/byte volume attributes. Must
// run after the scanner is closed: the stage counters quiesce at Close.
// A non-pipelined scanner (row files, in-memory sources, Depth < 0)
// attaches nothing.
func attachPipelineSpans(sp *obs.Span, csc data.ChunkScanner) {
	if csc == nil {
		return
	}
	pr, ok := csc.(data.PipelineReporter)
	if !ok {
		return
	}
	attachPipelineStats(sp, pr.PipelineStats())
}

// attachPipelineStats is attachPipelineSpans on an already-extracted
// (possibly aggregated across per-worker pipelines) stats value. The
// block-sharded scan sums its workers' reports and attaches them once,
// so the span skeleton stays identical across scan modes and worker
// counts.
func attachPipelineStats(sp *obs.Span, ps data.PipelineStats) {
	if sp == nil || !ps.Enabled {
		return
	}
	sp.SetAttr("pipeline_depth", ps.Depth)
	sp.SetAttr("pipeline_workers", ps.Workers)
	sp.SetAttr("pipeline_blocks", ps.Blocks)
	sp.SetAttr("pipeline_phys_bytes", ps.PhysBytes)
	sp.AddCompleted("pipeline-read", ps.Start, ps.Read)
	sp.AddCompleted("pipeline-decode", ps.Start, ps.Decode)
	sp.AddCompleted("pipeline-deliver", ps.Start, ps.Deliver)
}

// recordZoneSkips publishes how many whole batches a scan routed by zone
// map alone.
func (t *Tree) recordZoneSkips(sp *obs.Span, skips int64) {
	if skips == 0 {
		return
	}
	t.met.blocksSkipped.Add(skips)
	sp.SetAttr("blocks_skipped", skips)
}

// rowScan is the row-at-a-time cleanup scan (one root-to-stick descent
// per tuple via Tree.route). The chunked paths replaced it in the build;
// it is retained as the baseline BenchmarkCleanupScan measures the
// columnar path against, and as an oracle in equivalence tests. To stay
// faithful to the path it stands in for — where every tuple was a
// separately heap-allocated []float64 the moment it entered a buffer —
// each tuple is cloned before routing; the shared buffers no longer do
// that themselves.
func (t *Tree) rowScan(src data.Source, root *bnode) (int64, error) {
	var seen int64
	err := data.ForEach(src, func(tp data.Tuple) error {
		seen++
		return t.route(root, tp.Clone(), +1)
	})
	return seen, err
}

// resetScanState zeroes every statistic and buffer a cleanup scan writes
// (class counts, AVC counts, histograms, moments, interval counts, stuck
// sets, leaf families), so a failed scan can be rerun from scratch. It is
// only correct when the scan being rerun is the sole contributor to those
// statistics — true for the cleanup scan, which always runs against a
// freshly built skeleton. Resetting a bag also clears its poisoned state,
// provided its overflow file can be truncated.
func resetScanState(n *bnode) error {
	if n == nil {
		return nil
	}
	clear(n.classCounts)
	if n.isLeaf() {
		n.dirty = true
		return n.family.Reset()
	}
	for _, cc := range n.catCounts {
		if cc != nil {
			cc.Reset()
		}
	}
	for _, h := range n.hist {
		if h != nil {
			h.Reset()
		}
	}
	if n.moments != nil {
		n.moments.Reset()
	}
	if n.coarse.kind == data.Numeric {
		clear(n.lowCounts)
		clear(n.highCounts)
		n.eqLow = 0
		if err := n.pending.Reset(); err != nil {
			return err
		}
	}
	if err := resetScanState(n.left); err != nil {
		return err
	}
	return resetScanState(n.right)
}

// shardNode is one worker's private shadow of a bnode: the same
// statistics fields, accumulated only from the tuples of that worker's
// chunks. ref supplies the (read-only during the scan) coarse criterion
// and tree structure. With direct set, the shadow is an alias instead:
// its slices and buffers are the real bnode's, so the sequential scan
// reuses the batch router with no merge step.
type shardNode struct {
	ref         *bnode
	direct      bool
	classCounts []int64

	// Internal-node shadow statistics.
	catCounts  []*split.CatAVC
	hist       []*discretize.Histogram
	moments    *split.Moments
	lowCounts  []int64
	highCounts []int64
	eqLow      int64
	pending    *data.TupleBag
	left       *shardNode
	right      *shardNode

	// Leaf shadow family.
	family *data.TupleBag
}

// newShardTree mirrors the subtree rooted at n. budget is the worker's
// private MemBudget slice, so concurrent shard buffers spill
// independently without exceeding the global budget.
func (t *Tree) newShardTree(n *bnode, budget *data.MemBudget) *shardNode {
	if n == nil {
		return nil
	}
	s := &shardNode{ref: n, classCounts: make([]int64, t.schema.ClassCount)}
	if n.isLeaf() {
		s.family = data.NewTupleBagEnv(t.schema, t.spillEnv(budget))
		return s
	}
	s.catCounts = make([]*split.CatAVC, len(t.schema.Attributes))
	s.hist = make([]*discretize.Histogram, len(t.schema.Attributes))
	for i := range t.schema.Attributes {
		if n.catCounts[i] != nil {
			s.catCounts[i] = split.NewCatAVC(t.schema.Attributes[i].Cardinality, t.schema.ClassCount)
		}
		if n.hist[i] != nil {
			s.hist[i] = discretize.NewHistogram(n.hist[i].Boundaries, t.schema.ClassCount)
		}
	}
	if n.moments != nil {
		s.moments = split.NewMoments(t.schema)
	}
	if n.coarse.kind == data.Numeric {
		s.lowCounts = make([]int64, t.schema.ClassCount)
		s.highCounts = make([]int64, t.schema.ClassCount)
		s.pending = data.NewTupleBagEnv(t.schema, t.spillEnv(budget))
	}
	s.left = t.newShardTree(n.left, budget)
	s.right = t.newShardTree(n.right, budget)
	return s
}

// newDirectTree builds an aliased shard view of the subtree: every slice
// and buffer is the real bnode's own, and the scalar eqLow is flushed
// through ref. Single-goroutine use only.
func newDirectTree(n *bnode) *shardNode {
	if n == nil {
		return nil
	}
	s := &shardNode{ref: n, direct: true, classCounts: n.classCounts}
	if n.isLeaf() {
		s.family = n.family
		return s
	}
	s.catCounts = n.catCounts
	s.hist = n.hist
	s.moments = n.moments
	if n.coarse.kind == data.Numeric {
		s.lowCounts = n.lowCounts
		s.highCounts = n.highCounts
		s.pending = n.pending
	}
	s.left = newDirectTree(n.left)
	s.right = newDirectTree(n.right)
	return s
}

// zoneRoute decides whether a chunk's zone summary proves that every row
// of the chunk routes down one side of the coarse criterion: -1 all-left,
// +1 all-right, 0 undecided. The decisions are exactness-preserving —
// they reproduce the per-row partition bit for bit:
//
//   - numeric all-right needs z.Min > c.hi: every bounded value takes the
//     v > hi branch, and any NaN rows (excluded from Min/Max) take the
//     same pinned right edge, so HasNaN does not block the skip;
//   - numeric all-left needs z.Max < c.lo *strictly* and no NaN: no row
//     can be stuck, and no row equals c.lo, so eqLow stays untouched;
//   - categorical skips need the exact code bitmap (CodesValid): codes
//     covered by the subset all go left, codes disjoint from it (or >= 64,
//     which never set a bitmap bit and never match the subset) all go
//     right.
//
// The zone summarizes the whole chunk, so the decision holds for every
// subset of its rows — an idx batch deep in the descent included.
func zoneRoute(c *coarseCrit, z data.ColZone) int {
	if c.kind == data.Categorical {
		if !z.CodesValid {
			return 0
		}
		if z.Codes&^c.subset == 0 && z.Codes != 0 {
			return -1
		}
		if z.Codes&c.subset == 0 {
			return +1
		}
		return 0
	}
	if !z.Valid {
		return 0
	}
	if z.Min > c.hi {
		return +1
	}
	if !z.HasNaN && z.Max < c.lo {
		return -1
	}
	return 0
}

// routeScratch holds the per-depth index buffers of one goroutine's
// level-synchronous descent: the partition written at depth d stays live
// while the children recurse with the buffers of depth d+1 and below.
// Buffers are allocated once per depth and reused for every chunk.
type routeScratch struct {
	rows   int
	levels [][3][]int32 // per depth: left, right, stuck

	// zoneSkip enables zone-map block skipping; skips counts the nodes at
	// which a whole batch was routed by zone alone this scan.
	zoneSkip bool
	skips    int64
}

func newRouteScratch(rows int) *routeScratch { return &routeScratch{rows: rows} }

// at returns empty left/right/stuck index buffers for a recursion depth.
func (sc *routeScratch) at(depth int) (left, right, stuck []int32) {
	for len(sc.levels) <= depth {
		sc.levels = append(sc.levels, [3][]int32{
			make([]int32, 0, sc.rows),
			make([]int32, 0, sc.rows),
			make([]int32, 0, sc.rows),
		})
	}
	l := &sc.levels[depth]
	return l[0][:0], l[1][:0], l[2][:0]
}

// routeChunk is the level-synchronous insert-only cleanup-scan router:
// it processes the chunk rows named by idx (all rows when idx is nil) at
// this node — batched statistics updates, then a one-pass partition by
// the coarse split — and recurses into the children with the partition's
// index batches. depth is the recursion depth (an index into sc's
// buffers, not the node's depth in the full tree).
func (s *shardNode) routeChunk(ch *data.Chunk, idx []int32, sc *routeScratch, depth int) error {
	classes := ch.Classes()
	n := s.ref
	if n.isLeaf() {
		if idx == nil {
			for _, c := range classes {
				s.classCounts[c]++
			}
		} else {
			for _, r := range idx {
				s.classCounts[classes[r]]++
			}
		}
		if s.direct && (idx == nil || len(idx) > 0) {
			n.dirty = true
		}
		return s.family.AddChunkRows(ch, idx)
	}
	for i, cc := range s.catCounts {
		if cc != nil {
			cc.AddBatch(ch.Col(i), classes, idx)
		}
	}
	for i, h := range s.hist {
		if h != nil {
			h.AddBatch(ch.Col(i), classes, idx)
		}
	}
	if s.moments != nil {
		s.moments.AddChunk(ch, idx)
	}
	// The partition reads only the split column: an internal node's class
	// counting is deferred to deriveRoutingCounts, which reconstructs
	// classCounts/lowCounts/highCounts bottom-up after the scan from the
	// children's intake (exact integer sums, so the deferral is invisible
	// in the results). Only the stuck rows — which descend no further —
	// have their classes counted here.
	c := n.coarse
	if sc.zoneSkip {
		// Zone-map pushdown: when the chunk's column summary proves every
		// row routes down one side, descend the whole batch directly and
		// skip the partition kernel. The statistics kernels above already
		// ran (they need every row at this node), and the insert-only
		// scan's deferred class counting makes the bypass free of
		// bookkeeping: a skip decision implies no stuck rows and no
		// v == c.lo rows, so eqLow and the stuck path are untouched by
		// construction.
		if z, ok := ch.Zone(c.attr); ok {
			if dir := zoneRoute(c, z); dir != 0 {
				sc.skips++
				if dir < 0 {
					return s.left.routeChunk(ch, idx, sc, depth+1)
				}
				return s.right.routeChunk(ch, idx, sc, depth+1)
			}
		}
	}
	col := ch.Col(c.attr)
	left, right, stuck := sc.at(depth)
	if c.kind == data.Categorical {
		if idx == nil {
			for r, v := range col {
				if code := uint(v); code < 64 && c.subset&(1<<code) != 0 {
					left = append(left, int32(r))
				} else {
					right = append(right, int32(r))
				}
			}
		} else {
			for _, r := range idx {
				if code := uint(col[r]); code < 64 && c.subset&(1<<code) != 0 {
					left = append(left, r)
				} else {
					right = append(right, r)
				}
			}
		}
	} else {
		var eq int64
		if idx == nil {
			for r, v := range col {
				switch {
				case v <= c.lo:
					if v == c.lo {
						eq++
					}
					left = append(left, int32(r))
				case v > c.hi || v != v:
					// NaN takes the pinned missing-value edge (right),
					// matching Tree.route and the compiled inference layout;
					// it must never stick in S_n.
					right = append(right, int32(r))
				default:
					stuck = append(stuck, int32(r))
				}
			}
		} else {
			for _, r := range idx {
				v := col[r]
				switch {
				case v <= c.lo:
					if v == c.lo {
						eq++
					}
					left = append(left, r)
				case v > c.hi || v != v:
					right = append(right, r)
				default:
					stuck = append(stuck, r)
				}
			}
		}
		for _, r := range stuck {
			s.classCounts[classes[r]]++
		}
		if s.direct {
			n.eqLow += eq
		} else {
			s.eqLow += eq
		}
		if len(stuck) > 0 {
			// Inside the confidence interval: the rows stick at n, copied
			// from the chunk into the bag's arena in stream order.
			if err := s.pending.AddChunkRows(ch, stuck); err != nil {
				return err
			}
		}
	}
	if len(left) > 0 {
		if err := s.left.routeChunk(ch, left, sc, depth+1); err != nil {
			return err
		}
	}
	if len(right) > 0 {
		return s.right.routeChunk(ch, right, sc, depth+1)
	}
	return nil
}

// merge folds the shard's statistics and buffers into the real tree and
// releases the shard's resources. Called once per shard in worker order,
// sequentially, after all workers have finished.
func (s *shardNode) merge() error {
	if s == nil {
		return nil
	}
	n := s.ref
	for i, v := range s.classCounts {
		n.classCounts[i] += v
	}
	if n.isLeaf() {
		if s.family.Len() > 0 {
			n.dirty = true
			if err := s.family.ForEach(n.family.Add); err != nil {
				s.family.Close()
				return err
			}
		}
		return s.family.Close()
	}
	for i, cc := range n.catCounts {
		if cc != nil {
			cc.Merge(s.catCounts[i])
		}
	}
	for i, h := range n.hist {
		if h != nil {
			h.Merge(s.hist[i])
		}
	}
	if n.moments != nil {
		n.moments.Merge(s.moments)
	}
	if n.coarse.kind == data.Numeric {
		for i, v := range s.lowCounts {
			n.lowCounts[i] += v
		}
		for i, v := range s.highCounts {
			n.highCounts[i] += v
		}
		n.eqLow += s.eqLow
		if s.pending.Len() > 0 {
			if err := s.pending.ForEach(n.pending.Add); err != nil {
				s.pending.Close()
				return err
			}
		}
		if err := s.pending.Close(); err != nil {
			return err
		}
	}
	if err := s.left.merge(); err != nil {
		return err
	}
	return s.right.merge()
}

// closeShard releases a shard's buffers without merging (error paths).
func (s *shardNode) close() {
	if s == nil {
		return
	}
	if s.family != nil {
		s.family.Close()
	}
	if s.pending != nil {
		s.pending.Close()
	}
	s.left.close()
	s.right.close()
}

// shardedScan partitions the stream into pooled columnar chunks dealt
// round-robin to w workers, each batch-routing into a private shadow
// tree, then merges the shadow trees in worker order. The round-robin
// deal plus ordered merge makes the merged buffers deterministic for a
// given worker count.
func (t *Tree) shardedScan(src data.Source, root *bnode, w int, sp *obs.Span) (int64, error) {
	budgets := t.budget.Split(w)
	shards := make([]*shardNode, w)
	for i := range shards {
		shards[i] = t.newShardTree(root, budgets[i])
	}
	rows := t.cfg.chunkRows()
	pool := data.NewChunkPool(len(t.schema.Attributes), rows)
	start := time.Now()

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		workErr error
		failed  = make(chan struct{})
		routed  = make([]int64, w) // per-shard tuple intake, for throughput metrics
		skipped = make([]int64, w) // per-shard zone-skip counts
	)
	fail := func(err error) {
		errOnce.Do(func() {
			workErr = err
			close(failed)
		})
	}
	chans := make([]chan *data.Chunk, w)
	for i := range chans {
		chans[i] = make(chan *data.Chunk, 2)
		wg.Add(1)
		go func(shard *shardNode, in <-chan *data.Chunk, routed, skipped *int64) {
			defer wg.Done()
			sc := newRouteScratch(rows)
			sc.zoneSkip = !t.cfg.DisableZoneSkip
			ok := true
			for chunk := range in {
				if ok {
					if err := shard.routeChunk(chunk, nil, sc, 0); err != nil {
						fail(err)
						ok = false // drain after failure so the dealer never blocks
					}
					*routed += int64(chunk.Len())
				}
				pool.Put(chunk)
			}
			*skipped = sc.skips
		}(shards[i], chans[i], &routed[i], &skipped[i])
	}

	// Deal chunks round-robin. The dealer owns each chunk until the send;
	// the worker returns it to the pool after routing.
	var seen int64
	var csc data.ChunkScanner
	scanErr := func() error {
		var err error
		csc, err = data.ScanChunksPipelined(src, t.pipelineCfg())
		if err != nil {
			return err
		}
		defer csc.Close()
		next := 0
		for {
			chunk := pool.Get()
			err := csc.NextChunk(chunk)
			if err == io.EOF {
				pool.Put(chunk)
				return csc.Close()
			}
			if err != nil {
				pool.Put(chunk)
				return err
			}
			if chunk.Len() == 0 {
				pool.Put(chunk)
				continue
			}
			seen += int64(chunk.Len())
			select {
			case chans[next%w] <- chunk:
				next++
			case <-failed:
				pool.Put(chunk)
				return workErr
			}
		}
	}()
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	attachPipelineSpans(sp, csc)
	t.recordPipelineStats(csc)
	if scanErr == nil && workErr != nil {
		scanErr = workErr
	}
	if scanErr != nil {
		for _, s := range shards {
			s.close()
		}
		return seen, scanErr
	}

	secs := time.Since(start).Seconds()
	var skips int64
	for i, n := range routed {
		t.recordShardThroughput(i, n, secs)
		skips += skipped[i]
	}
	t.recordZoneSkips(sp, skips)
	for i, s := range shards {
		if err := s.merge(); err != nil {
			// Close the failed shard too: merge returns mid-walk with its
			// un-merged buffers (and their temp files) still open. Close is
			// idempotent, so re-closing already-merged buffers is safe.
			for _, rest := range shards[i:] {
				rest.close()
			}
			return seen, fmt.Errorf("core: merging scan shard %d: %w", i, err)
		}
	}
	return seen, nil
}

// blockShardedScan drives w workers over disjoint contiguous block
// ranges of a splittable columnar source. Unlike shardedScan there is no
// shared reader and no dealer: each worker owns a byte range of the
// file, runs its own prefetch/decode pipeline and zone-map pushdown, and
// routes into its private shadow tree. The shadow trees merge in worker
// order, and since worker i's range precedes worker i+1's in the file,
// the merged buffers see rows in exact file order — bit-identical to the
// sequential scan at every worker count, a stronger guarantee than chunk
// sharding's per-worker-count determinism.
//
// A failed worker flips a shared flag that stops the other workers at
// their next chunk boundary; everyone still closes its own scanner, so
// no goroutine or reader outlives the call. The first failure by worker
// order is returned (deterministic under concurrent faults).
func (t *Tree) blockShardedScan(bs data.BlockSplitSource, root *bnode, w int, sp *obs.Span) (int64, error) {
	blocks := bs.BlockSplits()
	budgets := t.budget.Split(w)
	shards := make([]*shardNode, w)
	for i := range shards {
		shards[i] = t.newShardTree(root, budgets[i])
	}
	rows := t.cfg.chunkRows()

	type shardResult struct {
		routed int64
		skips  int64
		secs   float64
		ps     data.PipelineStats
		err    error
	}
	results := make([]shardResult, w)
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
	)
	for i := 0; i < w; i++ {
		lo := int64(i) * blocks / int64(w)
		hi := int64(i+1) * blocks / int64(w)
		wg.Add(1)
		go func(res *shardResult, shard *shardNode, lo, hi int64) {
			defer wg.Done()
			t0 := time.Now()
			sc := newRouteScratch(rows)
			sc.zoneSkip = !t.cfg.DisableZoneSkip
			csc, err := bs.ScanChunkRange(lo, hi, t.pipelineCfg())
			if err != nil {
				res.err = err
				failed.Store(true)
				return
			}
			ch := data.NewChunk(len(t.schema.Attributes), rows)
			for res.err == nil && !failed.Load() {
				ch.Reset()
				err := csc.NextChunk(ch)
				if err == io.EOF {
					break
				}
				if err != nil {
					res.err = err
					break
				}
				if ch.Len() == 0 {
					continue
				}
				res.routed += int64(ch.Len())
				res.err = shard.routeChunk(ch, nil, sc, 0)
			}
			if cerr := csc.Close(); res.err == nil && cerr != nil {
				res.err = cerr
			}
			if pr, ok := csc.(data.PipelineReporter); ok {
				res.ps = pr.PipelineStats()
			}
			res.skips = sc.skips
			res.secs = time.Since(t0).Seconds()
			if res.err != nil {
				failed.Store(true)
			}
		}(&results[i], shards[i], lo, hi)
	}
	wg.Wait()

	// Aggregate per-worker telemetry into the single per-scan report the
	// chunk-sharded and sequential paths emit, so the span skeleton and
	// metric families are identical across scan modes.
	var (
		seen, skips int64
		agg         data.PipelineStats
		scanErr     error
	)
	for i := range results {
		r := &results[i]
		seen += r.routed
		skips += r.skips
		if r.ps.Enabled {
			if !agg.Enabled {
				agg = r.ps
			} else {
				agg.Blocks += r.ps.Blocks
				agg.PhysBytes += r.ps.PhysBytes
				agg.Read += r.ps.Read
				agg.Decode += r.ps.Decode
				agg.Deliver += r.ps.Deliver
				if r.ps.Start.Before(agg.Start) {
					agg.Start = r.ps.Start
				}
			}
		}
		if scanErr == nil && r.err != nil {
			scanErr = r.err
		}
	}
	attachPipelineStats(sp, agg)
	t.recordPipelineStatsValue(agg)
	if scanErr != nil {
		for _, s := range shards {
			s.close()
		}
		return seen, scanErr
	}
	for i := range results {
		t.recordShardThroughput(i, results[i].routed, results[i].secs)
	}
	t.recordZoneSkips(sp, skips)
	for i, s := range shards {
		if err := s.merge(); err != nil {
			for _, rest := range shards[i:] {
				rest.close()
			}
			return seen, fmt.Errorf("core: merging scan shard %d: %w", i, err)
		}
	}
	return seen, nil
}
