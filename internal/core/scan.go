package core

import (
	"fmt"
	"sync"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/discretize"
	"github.com/boatml/boat/internal/split"
)

// The cleanup scan (scan 2 of the paper) is a pure aggregation: every
// tuple updates class counts, AVC counts, histogram buckets and moment
// statistics along its root-to-stick path, and lands in exactly one
// buffer (a stuck set S_n or a leaf family). All of those statistics are
// exact integer counts, so the scan is shard-parallel: the input stream
// is partitioned into chunks routed by worker goroutines into private
// per-worker shadow trees, which are then merged into the bnode fields in
// worker order before top-down processing. Merging is commutative for the
// counts and deterministic for the buffers (chunks are dealt round-robin,
// shards merge in worker order), and BOAT's verification pass guarantees
// the final tree is the exact reference tree regardless of the order
// tuples entered the buffers.

// scanChunkTuples is the number of tuples per dispatched chunk. Chunks
// amortize channel traffic and own their tuple storage (one flat slab per
// chunk), so scanner batches can be recycled immediately.
const scanChunkTuples = 4096

// cleanupScan streams src down the subtree rooted at root, returning the
// number of tuples seen. Parallelism <= 1 follows the exact sequential
// code path; otherwise the scan is sharded across workers.
//
// Storage faults degrade gracefully: a sharded scan that fails with a
// SpillError has its statistics zeroed (resetScanState) and is rerun
// sequentially, and a sequential scan that fails with a SpillError gets
// one reset-and-retry before the error propagates. Both recoveries are
// exact — the scan is the sole contributor to every statistic it touches,
// so zero-and-rerun reproduces precisely the state a fault-free scan
// would have built. Logical errors (bad data, schema mismatch) are never
// retried.
func (t *Tree) cleanupScan(src data.Source, root *bnode) (int64, error) {
	if w := t.cfg.workers(); w > 1 {
		// Tiny known-size inputs skip sharding: the overhead cannot pay off.
		if n, ok := src.Count(); !ok || n >= 2*scanChunkTuples {
			seen, err := t.shardedScan(src, root, w)
			if err == nil || !data.IsSpillError(err) {
				return seen, err
			}
			// A storage fault broke the sharded scan. Scan-phase faults
			// leave the real tree untouched (shadow trees are private),
			// but a fault during merging may have partially mutated it,
			// so both cases are handled uniformly: zero every scan
			// statistic and fall back to the sequential path.
			t.cfg.Stats.RecordScanFallback()
			if rerr := resetScanState(root); rerr != nil {
				return seen, fmt.Errorf("core: resetting after failed sharded scan: %w", rerr)
			}
		}
	}
	seen, err := t.sequentialScan(src, root)
	if err != nil && data.IsSpillError(err) {
		t.cfg.Stats.RecordScanRetry()
		if rerr := resetScanState(root); rerr != nil {
			return seen, fmt.Errorf("core: resetting after failed cleanup scan: %w", rerr)
		}
		seen, err = t.sequentialScan(src, root)
	}
	return seen, err
}

// sequentialScan is the single-goroutine cleanup scan.
func (t *Tree) sequentialScan(src data.Source, root *bnode) (int64, error) {
	var seen int64
	err := data.ForEach(src, func(tp data.Tuple) error {
		seen++
		return t.route(root, tp, +1)
	})
	return seen, err
}

// resetScanState zeroes every statistic and buffer a cleanup scan writes
// (class counts, AVC counts, histograms, moments, interval counts, stuck
// sets, leaf families), so a failed scan can be rerun from scratch. It is
// only correct when the scan being rerun is the sole contributor to those
// statistics — true for the cleanup scan, which always runs against a
// freshly built skeleton. Resetting a bag also clears its poisoned state,
// provided its overflow file can be truncated.
func resetScanState(n *bnode) error {
	if n == nil {
		return nil
	}
	clear(n.classCounts)
	if n.isLeaf() {
		n.dirty = true
		return n.family.Reset()
	}
	for _, cc := range n.catCounts {
		if cc != nil {
			cc.Reset()
		}
	}
	for _, h := range n.hist {
		if h != nil {
			h.Reset()
		}
	}
	if n.moments != nil {
		n.moments.Reset()
	}
	if n.coarse.kind == data.Numeric {
		clear(n.lowCounts)
		clear(n.highCounts)
		n.eqLow = 0
		if err := n.pending.Reset(); err != nil {
			return err
		}
	}
	if err := resetScanState(n.left); err != nil {
		return err
	}
	return resetScanState(n.right)
}

// shardNode is one worker's private shadow of a bnode: the same
// statistics fields, accumulated only from the tuples of that worker's
// chunks. ref supplies the (read-only during the scan) coarse criterion
// and tree structure.
type shardNode struct {
	ref         *bnode
	classCounts []int64

	// Internal-node shadow statistics.
	catCounts  []*split.CatAVC
	hist       []*discretize.Histogram
	moments    *split.Moments
	lowCounts  []int64
	highCounts []int64
	eqLow      int64
	pending    *data.TupleBag
	left       *shardNode
	right      *shardNode

	// Leaf shadow family.
	family *data.TupleBag
}

// newShardTree mirrors the subtree rooted at n. budget is the worker's
// private MemBudget slice, so concurrent shard buffers spill
// independently without exceeding the global budget.
func (t *Tree) newShardTree(n *bnode, budget *data.MemBudget) *shardNode {
	if n == nil {
		return nil
	}
	s := &shardNode{ref: n, classCounts: make([]int64, t.schema.ClassCount)}
	if n.isLeaf() {
		s.family = data.NewTupleBagEnv(t.schema, t.spillEnv(budget))
		return s
	}
	s.catCounts = make([]*split.CatAVC, len(t.schema.Attributes))
	s.hist = make([]*discretize.Histogram, len(t.schema.Attributes))
	for i := range t.schema.Attributes {
		if n.catCounts[i] != nil {
			s.catCounts[i] = split.NewCatAVC(t.schema.Attributes[i].Cardinality, t.schema.ClassCount)
		}
		if n.hist[i] != nil {
			s.hist[i] = discretize.NewHistogram(n.hist[i].Boundaries, t.schema.ClassCount)
		}
	}
	if n.moments != nil {
		s.moments = split.NewMoments(t.schema)
	}
	if n.coarse.kind == data.Numeric {
		s.lowCounts = make([]int64, t.schema.ClassCount)
		s.highCounts = make([]int64, t.schema.ClassCount)
		s.pending = data.NewTupleBagEnv(t.schema, t.spillEnv(budget))
	}
	s.left = t.newShardTree(n.left, budget)
	s.right = t.newShardTree(n.right, budget)
	return s
}

// routeShard is route (node.go) against a worker's shadow tree, insert
// path only: the cleanup scan never deletes.
func (s *shardNode) route(tp data.Tuple) error {
	for {
		s.classCounts[tp.Class]++
		n := s.ref
		if n.isLeaf() {
			return s.family.Add(tp)
		}
		for i, cc := range s.catCounts {
			if cc != nil {
				cc.Add(int(tp.Values[i]), tp.Class, 1)
			}
		}
		for i, h := range s.hist {
			if h != nil {
				h.Add(tp.Values[i], tp.Class, 1)
			}
		}
		if s.moments != nil {
			s.moments.Add(tp, 1)
		}
		c := n.coarse
		if c.kind == data.Categorical {
			code := uint(tp.Values[c.attr])
			if code < 64 && c.subset&(1<<code) != 0 {
				s = s.left
			} else {
				s = s.right
			}
			continue
		}
		v := tp.Values[c.attr]
		switch {
		case v <= c.lo:
			s.lowCounts[tp.Class]++
			if v == c.lo {
				s.eqLow++
			}
			s = s.left
		case v > c.hi:
			s.highCounts[tp.Class]++
			s = s.right
		default:
			return s.pending.Add(tp)
		}
	}
}

// merge folds the shard's statistics and buffers into the real tree and
// releases the shard's resources. Called once per shard in worker order,
// sequentially, after all workers have finished.
func (s *shardNode) merge() error {
	if s == nil {
		return nil
	}
	n := s.ref
	for i, v := range s.classCounts {
		n.classCounts[i] += v
	}
	if n.isLeaf() {
		if s.family.Len() > 0 {
			n.dirty = true
			if err := s.family.ForEach(n.family.Add); err != nil {
				s.family.Close()
				return err
			}
		}
		return s.family.Close()
	}
	for i, cc := range n.catCounts {
		if cc != nil {
			cc.Merge(s.catCounts[i])
		}
	}
	for i, h := range n.hist {
		if h != nil {
			h.Merge(s.hist[i])
		}
	}
	if n.moments != nil {
		n.moments.Merge(s.moments)
	}
	if n.coarse.kind == data.Numeric {
		for i, v := range s.lowCounts {
			n.lowCounts[i] += v
		}
		for i, v := range s.highCounts {
			n.highCounts[i] += v
		}
		n.eqLow += s.eqLow
		if s.pending.Len() > 0 {
			if err := s.pending.ForEach(n.pending.Add); err != nil {
				s.pending.Close()
				return err
			}
		}
		if err := s.pending.Close(); err != nil {
			return err
		}
	}
	if err := s.left.merge(); err != nil {
		return err
	}
	return s.right.merge()
}

// closeShard releases a shard's buffers without merging (error paths).
func (s *shardNode) close() {
	if s == nil {
		return
	}
	if s.family != nil {
		s.family.Close()
	}
	if s.pending != nil {
		s.pending.Close()
	}
	s.left.close()
	s.right.close()
}

// tupleChunk is an owned, densely packed run of tuples: Values slices of
// all tuples share one flat slab, so a chunk costs three allocations
// regardless of size.
type tupleChunk struct {
	tuples []data.Tuple
	slab   []float64
}

func newTupleChunk(width int) *tupleChunk {
	return &tupleChunk{
		tuples: make([]data.Tuple, 0, scanChunkTuples),
		slab:   make([]float64, 0, scanChunkTuples*width),
	}
}

func (c *tupleChunk) add(tp data.Tuple) {
	start := len(c.slab)
	c.slab = append(c.slab, tp.Values...)
	c.tuples = append(c.tuples, data.Tuple{Values: c.slab[start:len(c.slab):len(c.slab)], Class: tp.Class})
}

func (c *tupleChunk) full() bool { return len(c.tuples) >= scanChunkTuples }

// shardedScan partitions the stream into chunks dealt round-robin to w
// workers, each routing into a private shadow tree, then merges the
// shadow trees in worker order. The round-robin deal plus ordered merge
// makes the merged buffers deterministic for a given worker count.
func (t *Tree) shardedScan(src data.Source, root *bnode, w int) (int64, error) {
	budgets := t.budget.Split(w)
	shards := make([]*shardNode, w)
	for i := range shards {
		shards[i] = t.newShardTree(root, budgets[i])
	}

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		workErr error
		failed  = make(chan struct{})
	)
	fail := func(err error) {
		errOnce.Do(func() {
			workErr = err
			close(failed)
		})
	}
	chans := make([]chan *tupleChunk, w)
	for i := range chans {
		chans[i] = make(chan *tupleChunk, 2)
		wg.Add(1)
		go func(shard *shardNode, in <-chan *tupleChunk) {
			defer wg.Done()
			ok := true
			for chunk := range in {
				if !ok {
					continue // drain after failure so the dealer never blocks
				}
				for _, tp := range chunk.tuples {
					if err := shard.route(tp); err != nil {
						fail(err)
						ok = false
						break
					}
				}
			}
		}(shards[i], chans[i])
	}

	// Deal chunks round-robin. Scanner batches are only valid until the
	// next Next call, so tuples are copied into chunk-owned slabs.
	width := len(t.schema.Attributes)
	var (
		seen  int64
		next  int
		chunk = newTupleChunk(width)
	)
	dispatch := func(c *tupleChunk) bool {
		select {
		case chans[next%w] <- c:
			next++
			return true
		case <-failed:
			return false
		}
	}
	scanErr := data.ForEach(src, func(tp data.Tuple) error {
		seen++
		chunk.add(tp)
		if chunk.full() {
			if !dispatch(chunk) {
				return workErr
			}
			chunk = newTupleChunk(width)
		}
		return nil
	})
	if scanErr == nil && len(chunk.tuples) > 0 && !dispatch(chunk) {
		scanErr = workErr
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if scanErr == nil && workErr != nil {
		scanErr = workErr
	}
	if scanErr != nil {
		for _, s := range shards {
			s.close()
		}
		return seen, scanErr
	}

	for i, s := range shards {
		if err := s.merge(); err != nil {
			// Close the failed shard too: merge returns mid-walk with its
			// un-merged buffers (and their temp files) still open. Close is
			// idempotent, so re-closing already-merged buffers is safe.
			for _, rest := range shards[i:] {
				rest.close()
			}
			return seen, fmt.Errorf("core: merging scan shard %d: %w", i, err)
		}
	}
	return seen, nil
}
