package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/discretize"
	"github.com/boatml/boat/internal/hull"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/split"
)

// process performs the top-down pass over the subtree (Sections 3.3-3.5
// for the static build; the identical pass also runs after every update
// chunk, Section 4): at each internal node it computes the exact final
// splitting criterion, verifies that the coarse criterion captured the
// global optimum, pushes stuck tuples down, migrates previously pushed
// tuples if the split point moved within its confidence interval, and
// recurses; verification failures discard and rebuild the subtree.
//
// The internal-node pass is sequential (a node's stuck tuples must be
// pushed before its children are examined), but it only defers leaf
// completion: leaves are collected in left-to-right order and finished
// afterwards by completeLeaves — concurrently when Parallelism > 1, since
// each leaf's in-memory fit or frontier rebuild touches only that leaf's
// family. rdepth is the BOAT-in-BOAT recursion depth of this pass, and sp
// the enclosing trace span (the build "process" span, or an update span).
func (t *Tree) process(n *bnode, rdepth int, sp *obs.Span) error {
	var leaves []*bnode
	verSpan := sp.Start("verification")
	err := t.processInternal(n, rdepth, &leaves, verSpan)
	verSpan.End()
	if err != nil {
		return err
	}
	leafSpan := sp.Start("leaf-completion")
	leafSpan.SetAttr("leaves", len(leaves))
	err = t.completeLeaves(leaves, rdepth, leafSpan)
	leafSpan.End()
	return err
}

func (t *Tree) processInternal(n *bnode, rdepth int, leaves *[]*bnode, sp *obs.Span) error {
	if n.isLeaf() {
		*leaves = append(*leaves, n)
		return nil
	}
	grow := t.cfg.growConfig(0)
	if grow.StopBeforeSplit(n.total(), n.depth, n.classCounts) {
		// The reference algorithm makes this node a leaf (it became pure
		// or too small, e.g. after deletions).
		if err := t.demoteToLeaf(n); err != nil {
			return err
		}
		*leaves = append(*leaves, n)
		return nil
	}
	chosen, ok := t.verify(n)
	if !ok {
		t.met.ciMiss.Inc()
		t.noteFailure()
		return t.rebuildFromSubtree(n, rdepth, sp)
	}
	t.met.ciHit.Inc()
	if n.coarse.kind == data.Numeric {
		if n.pushed.Len() > 0 && n.routedThr != chosen.Threshold {
			if err := t.migrate(n, n.routedThr, chosen.Threshold); err != nil {
				return err
			}
		}
		if n.pending.Len() > 0 {
			var dups []data.Tuple
			err := n.pending.ForEach(func(tp data.Tuple) error {
				child := n.right
				if tp.Values[n.coarse.attr] <= chosen.Threshold {
					child = n.left
				}
				if err := t.route(child, tp, +1); err != nil {
					return err
				}
				if err := n.pushed.Add(tp); err != nil {
					// The tuple reached a deeper buffer AND remains in the
					// not-yet-reset pending set, so the gathered family of a
					// recovery rebuild would see it twice; remember it so
					// the duplicate can be cancelled.
					dups = append(dups, tp.Clone())
					return err
				}
				return nil
			})
			if err != nil {
				if data.IsSpillError(err) {
					// A storage fault interrupted the push. Every tuple is
					// still present in exactly one gatherable buffer (after
					// cancelling dups), so rebuilding the subtree from the
					// gathered family recovers exactly.
					return t.rebuildAfterSpillFault(n, dups, rdepth, sp)
				}
				return fmt.Errorf("core: pushing stuck tuples: %w", err)
			}
			if err := n.pending.Reset(); err != nil {
				// Reset keeps the overflow file for reuse; if truncating it
				// failed, discard the bag and start a fresh one — all its
				// tuples were pushed successfully, so the contents are
				// disposable.
				n.pending.Close()
				n.pending = data.NewTupleBagEnv(t.schema, t.spillEnv(t.budget))
			}
		}
		n.routedThr = chosen.Threshold
	}
	n.crit = chosen
	if err := t.processInternal(n.left, rdepth, leaves, sp); err != nil {
		return err
	}
	return t.processInternal(n.right, rdepth, leaves, sp)
}

// completeLeaves finishes the collected leaves. Each dirty leaf's work —
// an in-memory (re)fit or the promotion of an oversized frontier family
// to a BOAT subtree — depends only on that leaf's family, so with
// Parallelism > 1 the leaves are completed by an errgroup-style worker
// pool. Shared state reached from processLeaf (the memory budget, the
// I/O stats, the build/update counters, the rebuild seed counter) is
// thread-safe; the resulting tree is identical either way.
func (t *Tree) completeLeaves(leaves []*bnode, rdepth int, sp *obs.Span) error {
	dirty := leaves[:0:0]
	for _, n := range leaves {
		if n.dirty {
			dirty = append(dirty, n)
		}
	}
	w := min(t.cfg.workers(), len(dirty))
	if w <= 1 {
		for _, n := range dirty {
			if err := t.processLeaf(n, rdepth, sp); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan *bnode)
	for range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range next {
				if err := t.processLeaf(n, rdepth, sp); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for _, n := range dirty {
		next <- n
	}
	close(next)
	wg.Wait()
	return firstErr
}

// migrate re-routes previously pushed stuck tuples whose side changed when
// the final split point moved from old to new within the confidence
// interval. Only the tuples between the two thresholds move; the paper's
// claim that stable distributions make updates cheap rests on this set
// being small.
func (t *Tree) migrate(n *bnode, old, new float64) error {
	attr := n.coarse.attr
	var moved int64
	err := n.pushed.ForEach(func(tp data.Tuple) error {
		v := tp.Values[attr]
		switch {
		case new > old && v > old && v <= new: // was routed right, now belongs left
			if err := t.route(n.right, tp, -1); err != nil {
				return err
			}
			moved++
			return t.route(n.left, tp, +1)
		case new < old && v > new && v <= old: // was routed left, now belongs right
			if err := t.route(n.left, tp, -1); err != nil {
				return err
			}
			moved++
			return t.route(n.right, tp, +1)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: migrating stuck tuples: %w", err)
	}
	t.met.migratedTuples.Add(moved)
	t.mutateStats(func(_ *BuildStats, upd *UpdateStats) {
		if upd != nil {
			upd.MigratedTuples += moved
		}
	})
	return nil
}

// verify computes the exact final splitting criterion at n given the
// coarse criterion, and checks that the global optimum cannot lie outside
// it (Lemma 3.2). ok=false signals that the coarse splitting criterion is
// (or may be) incorrect; the subtree must be discarded and rebuilt.
func (t *Tree) verify(n *bnode) (split.Split, bool) {
	if t.momentBased != nil {
		return t.verifyMoments(n)
	}
	return t.verifyImpurity(n)
}

func (t *Tree) noteMomentFailure() {
	t.met.failMoment.Inc()
	t.mutateStats(func(b *BuildStats, _ *UpdateStats) { b.FailMoment++ })
}

// verifyMoments: moment-based methods recompute their criterion exactly
// from the streamed sufficient statistics; the only failure modes are a
// different splitting attribute, a different splitting subset, or a split
// point outside the confidence interval (all of which invalidate how the
// scan routed tuples to the children).
func (t *Tree) verifyMoments(n *bnode) (split.Split, bool) {
	chosen := t.momentBased.BestSplitFromMoments(n.moments)
	c := n.coarse
	if !chosen.Found || chosen.Attr != c.attr || chosen.Kind != c.kind {
		t.noteMomentFailure()
		return split.Split{}, false
	}
	if c.kind == data.Categorical {
		if chosen.Subset != c.subset {
			t.noteMomentFailure()
			return split.Split{}, false
		}
		return chosen, true
	}
	if chosen.Threshold < c.lo || chosen.Threshold > c.hi {
		t.noteMomentFailure()
		return split.Split{}, false
	}
	return chosen, true
}

// verifyImpurity implements Section 3.4 for impurity-based methods:
//
//  1. the exact best split inside the confidence interval is computed
//     from the stuck set S_n and the interval's base counters (or, for a
//     categorical coarse attribute, the exact best subset from the
//     complete category-class counts, which must equal the coarse one);
//  2. every categorical attribute's exact best split must not beat it;
//  3. every numeric attribute's discretization buckets must lower-bound
//     (Lemma 3.1) above it, except the buckets covered by the interval
//     itself, which step 1 evaluated exactly.
//
// Tie handling is deliberately conservative: a bucket whose lower bound
// equals the chosen quality fails verification if it could contain an
// equal-quality candidate that the canonical order (split.Split.Better)
// would prefer — an occasional spurious rebuild instead of a wrong tree.
func (t *Tree) verifyImpurity(n *bnode) (split.Split, bool) {
	crit := t.impurityBased.Criterion()
	c := n.coarse

	bestCat := split.NoSplit()
	for i, cc := range n.catCounts {
		if cc == nil {
			continue
		}
		cand := split.BestCategoricalSplit(crit, i, cc, n.classCounts)
		if cand.Better(bestCat) {
			bestCat = cand
		}
	}

	var chosen split.Split
	if c.kind == data.Numeric {
		avc, err := t.stuckAVC(n)
		if err != nil {
			return split.Split{}, false
		}
		bestIv := split.BestNumericSplitInInterval(crit, c.attr, n.lowCounts,
			n.eqLow > 0, c.lo, avc, n.classCounts)
		if !bestIv.Found {
			t.met.failNoCandidate.Inc()
			t.mutateStats(func(b *BuildStats, _ *UpdateStats) { b.FailNoCandidate++ })
			return split.Split{}, false
		}
		if bestCat.Better(bestIv) {
			// A categorical attribute beats the coarse attribute: the
			// coarse splitting attribute is wrong.
			t.met.failBetterCat.Inc()
			t.mutateStats(func(b *BuildStats, _ *UpdateStats) { b.FailBetterCat++ })
			return split.Split{}, false
		}
		chosen = bestIv
	} else {
		exact := split.BestCategoricalSplit(crit, c.attr, n.catCounts[c.attr], n.classCounts)
		if !exact.Found || exact.Subset != c.subset {
			t.met.failBetterCat.Inc()
			t.mutateStats(func(b *BuildStats, _ *UpdateStats) { b.FailBetterCat++ })
			return split.Split{}, false
		}
		if bestCat.Better(exact) {
			t.met.failBetterCat.Inc()
			t.mutateStats(func(b *BuildStats, _ *UpdateStats) { b.FailBetterCat++ })
			return split.Split{}, false
		}
		chosen = exact
	}

	iPrime := chosen.Quality
	scratch := make([]int64, len(n.classCounts))
	for i, h := range n.hist {
		if h == nil {
			continue
		}
		stamps := h.StampPoints()
		isCoarseAttr := c.kind == data.Numeric && i == c.attr
		for cell := 0; cell < h.NumCells(); cell++ {
			if h.CellTotal(cell) == 0 && h.IsAtom(cell) {
				// The boundary value does not occur in the family; the
				// split at it induces the same partition as the previous
				// stamp point, already covered.
				continue
			}
			loEdge, hiEdge := h.CellLowerEdge(cell), h.CellUpperEdge(cell)
			if isCoarseAttr && loEdge >= c.lo && hiEdge <= c.hi {
				// Candidates in [lo, hi] were evaluated exactly from the
				// stuck set (and the lo base counters).
				continue
			}
			var lb float64
			var tieValue float64 // a value at or below every candidate the cell may hide
			if h.IsAtom(cell) {
				// Exact evaluation: the stamp point at the boundary is
				// the true partition of the split X <= boundary.
				lb = crit.QualityFromLeft(stamps[cell+1], n.classCounts, scratch)
				tieValue = h.AtomValue(cell)
			} else {
				if isInteriorEmpty(h, cell) {
					// No observed values strictly inside: no candidates.
					continue
				}
				lb = hull.LowerBound(crit, stamps[cell], stamps[cell+1], n.classCounts)
				tieValue = loEdge
			}
			if lb < iPrime {
				t.met.failBound.Inc()
				t.mutateStats(func(b *BuildStats, _ *UpdateStats) { b.FailBound++ })
				return split.Split{}, false
			}
			if lb == iPrime {
				// A candidate here could tie the chosen split; fail if
				// the canonical order would prefer it (conservative for
				// interior cells).
				if i < chosen.Attr ||
					(i == chosen.Attr && chosen.Kind == data.Numeric && tieValue < chosen.Threshold) {
					t.met.failTie.Inc()
					t.mutateStats(func(b *BuildStats, _ *UpdateStats) { b.FailTie++ })
					return split.Split{}, false
				}
			}
		}
	}
	return chosen, true
}

// isInteriorEmpty reports whether an interior cell holds no tuples (hence
// no candidate split points strictly inside its open range).
func isInteriorEmpty(h *discretize.Histogram, cell int) bool {
	return h.CellTotal(cell) == 0
}

// stuckAVCScratch pools the value→class-counts scratch maps used by
// stuckAVC: clearing a map keeps its buckets, so repeated verifications
// (and concurrent ones — sync.Pool is goroutine-safe) avoid re-growing a
// fresh map per node. Only the map is pooled; the count rows escape into
// the returned AVC-set.
var stuckAVCScratch = sync.Pool{
	New: func() any { return make(map[float64][]int64, 64) },
}

// stuckAVC aggregates the stuck set S_n (pending plus pushed tuples, net
// of removals) into the AVC-set of the coarse attribute's in-interval
// values.
func (t *Tree) stuckAVC(n *bnode) (*split.NumericAVC, error) {
	attr := n.coarse.attr
	m := stuckAVCScratch.Get().(map[float64][]int64)
	defer func() {
		clear(m)
		stuckAVCScratch.Put(m)
	}()
	collect := func(tp data.Tuple) error {
		v := tp.Values[attr]
		row := m[v]
		if row == nil {
			row = make([]int64, t.schema.ClassCount)
			m[v] = row
		}
		row[tp.Class]++
		return nil
	}
	if err := n.pending.ForEach(collect); err != nil {
		return nil, err
	}
	if err := n.pushed.ForEach(collect); err != nil {
		return nil, err
	}
	avc := &split.NumericAVC{
		Values: make([]float64, 0, len(m)),
		Counts: make([][]int64, 0, len(m)),
	}
	for v := range m {
		avc.Values = append(avc.Values, v)
	}
	sort.Float64s(avc.Values)
	for _, v := range avc.Values {
		avc.Counts = append(avc.Counts, m[v])
	}
	return avc, nil
}

// processLeaf finishes a leaf node: families above the main-memory switch
// threshold are promoted to BOAT subtrees; in-memory families are either
// left as leaves (StopAtThreshold, the paper's performance-experiment
// methodology) or completed with the main-memory algorithm. May run
// concurrently for distinct leaves (see completeLeaves).
func (t *Tree) processLeaf(n *bnode, rdepth int, sp *obs.Span) error {
	if !n.dirty {
		return nil
	}
	total := n.total()
	if t.cfg.StopThreshold > 0 && total > t.cfg.StopThreshold &&
		(n.promoteAttempt == 0 || total >= n.promoteAttempt+n.promoteAttempt/4) {
		fam := n.family
		n.family = nil
		attempt := total
		t.met.frontierRebuilds.Inc()
		t.log.Debug("promoting frontier leaf", "tuples", total, "depth", n.depth, "rdepth", rdepth)
		t.mutateStats(func(b *BuildStats, upd *UpdateStats) {
			if upd == nil {
				b.FrontierRebuilds++
			} else {
				upd.RebuiltSubtrees++
			}
		})
		rbSpan := sp.Start("rebuild")
		rbSpan.SetAttr("tuples", total)
		err := t.finishNodeFromFamily(n, fam, rdepth, rbSpan)
		rbSpan.End()
		if err != nil {
			return err
		}
		if n.isLeaf() {
			// Promotion ended as a stored-family leaf (the bootstrap
			// trees disagreed at this family's root); back off.
			n.promoteAttempt = attempt
		}
		return nil
	}
	n.dirty = false
	if t.cfg.StopAtThreshold && total <= t.cfg.StopThreshold {
		n.subtree = nil
		return nil
	}
	// If the reference builder's stopping rule fires on this family's
	// size, depth, and class histogram — all maintained eagerly — the
	// (re)fit would yield a bare leaf: skip materializing and sorting the
	// family and emit the leaf directly. This is exactly the builder's own
	// first check (inmem.Config.StopBeforeSplit at subtree depth 0), so
	// exactness is preserved; it turns the per-update refit of pure or
	// unsplittable fat leaves from O(n log n) into O(classes).
	if t.cfg.growConfig(n.depth).StopBeforeSplit(total, 0, n.classCounts) {
		n.subtree = nil
		return nil
	}
	// In-memory (re)fit: full completion in non-stop mode, or the exact
	// above-threshold subtree of a fat leaf in stop mode (the growth
	// rules include the stop threshold, so the subtree matches the
	// reference either way).
	tuples, err := n.family.Materialize()
	if err != nil {
		return fmt.Errorf("core: materializing leaf family: %w", err)
	}
	sub := inmem.Build(t.schema, tuples, t.cfg.growConfig(n.depth))
	n.subtree = sub.Root
	t.mutateStats(func(b *BuildStats, upd *UpdateStats) {
		if upd == nil {
			b.InMemoryLeaves++
			t.met.leavesInMemory.Inc()
		} else {
			upd.RefittedLeaves++
			t.met.leavesRefitted.Inc()
		}
	})
	if n.family.PendingRemovals() > 0 && n.family.PendingRemovals()*2 > n.family.Len() {
		return n.family.Compact()
	}
	return nil
}

func (t *Tree) noteFailure() {
	t.mutateStats(func(b *BuildStats, upd *UpdateStats) {
		if upd == nil {
			b.FailedNodes++
		} else {
			upd.RebuiltSubtrees++
		}
	})
}
