package core

import (
	"fmt"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
)

// TestParallelDeterminism is the contract of Config.Parallelism: for the
// same data and seed, every worker count produces the bit-identical tree.
// Sequential (Parallelism=1) runs the exact pre-parallelism code path, so
// it doubles as a regression anchor; Parallelism=8 on any machine still
// exercises the concurrent bootstrap, the sharded cleanup scan and the
// parallel leaf completion (goroutines interleave even on one core). The
// variants cover both verification families and the paths that share
// mutable state across workers: spill budgets and frontier promotions
// (nested BOAT invocations drawing rebuild seeds concurrently).
func TestParallelDeterminism(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"gini", Config{
			Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
			SampleSize: 1500, Seed: 11,
		}},
		{"moments", Config{
			Method: split.NewQuestLike(), MaxDepth: 5, MinSplit: 50,
			SampleSize: 1500, Seed: 11,
		}},
		{"gini-spill", Config{
			Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
			SampleSize: 1500, Seed: 11, MemBudgetTuples: 500,
		}},
		{"gini-promote", Config{
			Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
			SampleSize: 800, Seed: 7, StopThreshold: 1200,
		}},
	}
	for _, fn := range []int{1, 6} {
		for _, v := range variants {
			t.Run(fmt.Sprintf("F%d/%s", fn, v.name), func(t *testing.T) {
				// >= 2 scan chunks so the sharded scan actually engages.
				src := gen.MustSource(gen.Config{Function: fn, Noise: 0.05}, 3*data.DefaultChunkRows, int64(fn)*100+7)

				g := inmem.Config{
					Method: v.cfg.Method, MaxDepth: v.cfg.MaxDepth, MinSplit: v.cfg.MinSplit,
					StopThreshold: v.cfg.StopThreshold, StopAtThreshold: v.cfg.StopAtThreshold,
				}
				ref := buildRef(t, src, g)

				cfgSeq := v.cfg
				cfgSeq.Parallelism = 1
				cfgSeq.TempDir = t.TempDir()
				seq, err := Build(src, cfgSeq)
				if err != nil {
					t.Fatal(err)
				}
				defer seq.Close()

				cfgPar := v.cfg
				cfgPar.Parallelism = 8
				cfgPar.TempDir = t.TempDir()
				par, err := Build(src, cfgPar)
				if err != nil {
					t.Fatal(err)
				}
				defer par.Close()

				requireEqual(t, "parallel vs sequential", par.Tree(), seq.Tree())
				requireEqual(t, "parallel vs reference", par.Tree(), ref)
				if err := par.CheckConsistency(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestParallelIncremental checks that updates applied to a tree built and
// processed with Parallelism > 1 maintain exactness: after inserting a
// chunk, the tree equals the reference built over the union, for both a
// sequential and a parallel BOAT tree.
func TestParallelIncremental(t *testing.T) {
	base := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 2*data.DefaultChunkRows, 21)
	chunk := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, data.DefaultChunkRows, 22)

	for _, p := range []int{1, 8} {
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			bt, err := Build(base, Config{
				Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
				SampleSize: 1500, Seed: 5, Parallelism: p, TempDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer bt.Close()
			if _, err := bt.Insert(chunk); err != nil {
				t.Fatal(err)
			}
			union, err := data.NewConcatSource(base, chunk)
			if err != nil {
				t.Fatal(err)
			}
			ref := buildRef(t, union, inmem.Config{
				Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
			})
			requireEqual(t, "after insert", bt.Tree(), ref)
			if _, err := bt.Delete(chunk); err != nil {
				t.Fatal(err)
			}
			refBase := buildRef(t, base, inmem.Config{
				Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
			})
			requireEqual(t, "after delete", bt.Tree(), refBase)
		})
	}
}
