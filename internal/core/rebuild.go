package core

import (
	"fmt"
	"math/rand"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/split"
)

// rebuildFromSubtree discards a node whose coarse splitting criterion
// failed verification and rebuilds its subtree from the node's family F_n
// (Section 3.5): the family is gathered from the buffers already stored in
// the subtree — the not-yet-pushed stuck sets and the stored leaf
// families — which is the "additional scan over subsets of the data" the
// paper refers to; no scan of the original training database is needed.
// rdepth is the BOAT-in-BOAT recursion depth of the enclosing pass, and
// sp the enclosing trace span.
func (t *Tree) rebuildFromSubtree(n *bnode, rdepth int, sp *obs.Span) error {
	return t.rebuildWithDups(n, nil, rdepth, sp)
}

// rebuildAfterSpillFault rebuilds the subtree at n after a storage fault
// interrupted the push of its stuck set. The buffers below n remain fully
// scannable even when poisoned, so the family can still be gathered; dups
// lists tuples the fault left present twice (routed into a deeper buffer
// but still in the pending set), and one occurrence of each is cancelled.
func (t *Tree) rebuildAfterSpillFault(n *bnode, dups []data.Tuple, rdepth int, sp *obs.Span) error {
	t.met.spillRebuilds.Inc()
	t.log.Warn("storage fault on spill path; rebuilding subtree", "depth", n.depth, "rdepth", rdepth)
	t.mutateStats(func(b *BuildStats, _ *UpdateStats) { b.SpillRebuilds++ })
	return t.rebuildWithDups(n, dups, rdepth, sp)
}

func (t *Tree) rebuildWithDups(n *bnode, dups []data.Tuple, rdepth int, sp *obs.Span) error {
	rbSpan := sp.Start("rebuild")
	defer rbSpan.End()
	fam := data.NewTupleBagEnv(t.schema, t.spillEnv(t.budget))
	if err := gatherFamily(n, fam); err != nil {
		fam.Close()
		return fmt.Errorf("core: gathering family for rebuild: %w", err)
	}
	for _, tp := range dups {
		if err := fam.Remove(tp); err != nil {
			fam.Close()
			return err
		}
	}
	rbSpan.SetAttr("tuples", fam.Len())
	t.met.rebuildSubtrees.Inc()
	t.log.Debug("rebuilding subtree", "tuples", fam.Len(), "depth", n.depth, "rdepth", rdepth)
	t.noteRebuildTuples(fam.Len())
	counts := make([]int64, len(n.classCounts))
	copy(counts, n.classCounts)
	releaseNodeState(n)
	n.classCounts = counts
	return t.finishNodeFromFamily(n, fam, rdepth, rbSpan)
}

// demoteToLeaf converts an internal node into a leaf because the reference
// stopping rules say so (the family became pure or too small, typically
// after deletions). The caller (processInternal) queues the demoted leaf
// for completion alongside the other leaves of the pass.
func (t *Tree) demoteToLeaf(n *bnode) error {
	fam := data.NewTupleBagEnv(t.schema, t.spillEnv(t.budget))
	if err := gatherFamily(n, fam); err != nil {
		fam.Close()
		return fmt.Errorf("core: gathering family for demotion: %w", err)
	}
	counts := make([]int64, len(n.classCounts))
	copy(counts, n.classCounts)
	releaseNodeState(n)
	n.classCounts = counts
	n.leaf = true
	n.family = fam
	n.dirty = true
	return nil
}

// gatherFamily streams F_n into fam: the stored families of the leaves of
// the subtree plus any stuck tuples not yet pushed down. Pushed stuck sets
// are skipped — their tuples already live in buffers further down.
func gatherFamily(n *bnode, fam *data.TupleBag) error {
	if n == nil {
		return nil
	}
	if n.isLeaf() {
		return n.family.ForEach(fam.Add)
	}
	if n.pending != nil && n.pending.Len() > 0 {
		if err := n.pending.ForEach(fam.Add); err != nil {
			return err
		}
	}
	if err := gatherFamily(n.left, fam); err != nil {
		return err
	}
	return gatherFamily(n.right, fam)
}

// releaseNodeState closes every buffer in the subtree rooted at n and
// clears n's per-node state, leaving n ready to be repurposed.
func releaseNodeState(n *bnode) {
	closeSubtree(n.left)
	closeSubtree(n.right)
	if n.pending != nil {
		n.pending.Close()
	}
	if n.pushed != nil {
		n.pushed.Close()
	}
	if n.family != nil {
		n.family.Close()
	}
	n.left, n.right = nil, nil
	n.coarse = nil
	n.crit = split.Split{}
	n.catCounts = nil
	n.hist = nil
	n.moments = nil
	n.lowCounts, n.highCounts = nil, nil
	n.eqLow = 0
	n.pending, n.pushed = nil, nil
	n.routedThr = 0
	n.leaf = false
	n.family = nil
	n.subtree = nil
	n.dirty = false
	n.promoteAttempt = 0
}

// finishNodeFromFamily installs the correct subtree at n given its
// complete family. Families above the main-memory threshold are rebuilt by
// a recursive BOAT invocation over the buffered family (bounded by
// MaxRebuildRecursion, threaded through as rdepth so that concurrent
// rebuilds of distinct nodes track their own depth); everything else
// becomes a stored-family leaf, completed in memory. sp is the enclosing
// trace span: a recursive BOAT invocation records its phases under it.
func (t *Tree) finishNodeFromFamily(n *bnode, fam *data.TupleBag, rdepth int, sp *obs.Span) error {
	total := fam.Len()
	if t.cfg.StopThreshold > 0 && total > t.cfg.StopThreshold &&
		rdepth < t.cfg.MaxRebuildRecursion {
		rng := rand.New(rand.NewSource(t.cfg.Seed + 7919*t.seedCounter.Add(1)))
		sample, err := data.ReservoirSample(fam.Source(), t.cfg.SampleSize, rng)
		if err == nil {
			var sub *bnode
			sub, err = t.buildFromSample(fam.Source(), sample, total, n.depth, rdepth+1, sp)
			if err == nil {
				fam.Close()
				*n = *sub
				return nil
			}
		}
		fam.Close()
		return err
	}
	// Main-memory path: the node keeps its family as a stored-family
	// leaf. Small families in stop mode stay labeled leaves; everything
	// else (including oversized families that exhausted the recursion
	// budget — the rare pathological case the paper notes) is grown with
	// the main-memory algorithm, whose stopping rules include the stop
	// threshold, so the result still matches the reference exactly.
	counts := make([]int64, t.schema.ClassCount)
	if err := fam.ForEach(func(tp data.Tuple) error {
		counts[tp.Class]++
		return nil
	}); err != nil {
		fam.Close()
		return err
	}
	n.leaf = true
	n.family = fam
	n.classCounts = counts
	n.dirty = false
	n.subtree = nil
	if t.cfg.StopAtThreshold && total <= t.cfg.StopThreshold {
		return nil
	}
	tuples, err := fam.Materialize()
	if err != nil {
		return err
	}
	n.subtree = inmem.Build(t.schema, tuples, t.cfg.growConfig(n.depth)).Root
	t.mutateStats(func(b *BuildStats, upd *UpdateStats) {
		if upd == nil {
			b.InMemoryLeaves++
			t.met.leavesInMemory.Inc()
		} else {
			upd.RefittedLeaves++
			t.met.leavesRefitted.Inc()
		}
	})
	return nil
}
