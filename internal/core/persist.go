package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/discretize"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// Model persistence: Save serializes the complete maintained state of a
// BOAT tree — coarse criteria, cleanup statistics, histograms, moments,
// stuck sets S_n and stored leaf families — so a long-lived deployment
// (the paper's data-warehouse setting, where S_n files persist between
// update batches) can checkpoint the model and resume incremental
// maintenance after a restart. Load reverses it; the loaded tree is
// behaviorally identical: Tree(), Insert and Delete produce exactly the
// same results as on the original.

const (
	persistMagic   = "BOATMODL"
	persistVersion = 1

	nodeTagLeaf     = byte(1)
	nodeTagInternal = byte(2)
)

// Save writes the model to w. The configuration itself is not stored
// (methods are code, not data); Load verifies a fingerprint of the
// growth-relevant options and refuses mismatched configurations.
func (t *Tree) Save(w io.Writer) error {
	if t.root == nil {
		return errors.New("core: saving a closed tree")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := io.WriteString(bw, persistMagic); err != nil {
		return err
	}
	enc := &encoder{w: bw, schema: t.schema}
	enc.u8(persistVersion)
	enc.str(t.fingerprint())
	enc.node(t.root)
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// Load reads a model saved by Save. cfg must carry the same Method and
// growth options the model was built with (verified via a fingerprint);
// resource options (TempDir, MemBudgetTuples, Stats, Seed) may differ.
// src-independent: the training data itself is not needed.
func Load(r io.Reader, schema *data.Schema, cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults(1) // n only influences sample-size defaults
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget == nil {
		budget = data.NewMemBudget(cfg.MemBudgetTuples)
	}
	t := &Tree{
		cfg:    cfg,
		schema: schema,
		budget: budget,
		met:    newMetricSet(cfg.Metrics),
		log:    resolveLogger(cfg.Logger),
	}
	t.impurityBased, _ = cfg.Method.(split.ImpurityBased)
	t.momentBased, _ = cfg.Method.(split.MomentBased)

	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading model magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, errors.New("core: not a BOAT model stream")
	}
	dec := &decoder{r: br, schema: schema, t: t}
	if v := dec.u8(); v != persistVersion && dec.err == nil {
		return nil, fmt.Errorf("core: unsupported model version %d", v)
	}
	fp := dec.str()
	if dec.err == nil && fp != t.fingerprint() {
		return nil, fmt.Errorf("core: configuration fingerprint mismatch: model %q, config %q",
			fp, t.fingerprint())
	}
	root := dec.node(0)
	if dec.err != nil {
		// A partially decoded tree already owns buffers (and possibly temp
		// files); close every bag the decoder created so a failed Load
		// leaks nothing. Close is idempotent, so bags that were already
		// replaced or closed along the way are safe to re-close.
		for _, b := range dec.open {
			b.Close()
		}
		return nil, dec.err
	}
	t.root = root
	return t, nil
}

// SaveFile atomically writes the model to path: the bytes go to a
// temporary file in the destination directory, which is synced, closed
// and renamed over path, so a crash or storage fault mid-save can never
// leave a truncated model at path. Transient Create/Remove/Rename faults
// are retried under the tree's SpillRetry policy, and the temp file is
// registered in (and on success or cleanup removed from) the process-wide
// temp registry (data.LiveTempFiles).
func (t *Tree) SaveFile(path string) error {
	fs := t.cfg.FS
	if fs == nil {
		fs = data.OsFS{}
	}
	retry := t.cfg.SpillRetry
	var f data.File
	err := retry.Do(t.cfg.Stats, func() error {
		var cerr error
		f, cerr = fs.CreateTemp(filepath.Dir(path), "boat-model-*.tmp")
		return cerr
	})
	if err != nil {
		return fmt.Errorf("core: creating model temp file: %w", err)
	}
	name := f.Name()
	data.RegisterTemp(name)
	saveErr := t.Save(f)
	if saveErr == nil {
		saveErr = f.Sync()
	}
	if cerr := f.Close(); saveErr == nil {
		saveErr = cerr
	}
	if saveErr == nil {
		if saveErr = retry.Do(t.cfg.Stats, func() error { return fs.Rename(name, path) }); saveErr == nil {
			data.UnregisterTemp(name)
			return nil
		}
	}
	if rmErr := retry.Do(t.cfg.Stats, func() error { return fs.Remove(name) }); rmErr == nil {
		data.UnregisterTemp(name)
	}
	return fmt.Errorf("core: saving model to %s: %w", path, saveErr)
}

// fingerprint captures the options that determine the tree's semantics.
func (t *Tree) fingerprint() string {
	return fmt.Sprintf("method=%s minSplit=%d maxDepth=%d stop=%d/%v classes=%d attrs=%d",
		t.cfg.Method.Name(), t.cfg.MinSplit, t.cfg.MaxDepth,
		t.cfg.StopThreshold, t.cfg.StopAtThreshold,
		t.schema.ClassCount, len(t.schema.Attributes))
}

// ---------------------------------------------------------------------------
// Encoder

type encoder struct {
	w      *bufio.Writer
	schema *data.Schema
	buf    []byte
	err    error
}

func (e *encoder) u8(v byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(v)
	}
}

func (e *encoder) u64(v uint64) {
	if e.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, e.err = e.w.Write(b[:])
}

func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) bytes(b []byte) {
	e.u64(uint64(len(b)))
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) str(s string) { e.bytes([]byte(s)) }

func (e *encoder) i64s(v []int64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.i64(x)
	}
}

func (e *encoder) u64s(v []uint64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(x)
	}
}

func (e *encoder) f64s(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *encoder) bag(b *data.TupleBag) {
	if e.err != nil {
		return
	}
	if b == nil {
		e.u64(0)
		return
	}
	e.u64(uint64(b.Len()))
	tupleSize := data.FormatWide.TupleSize(e.schema)
	err := b.ForEach(func(tp data.Tuple) error {
		e.buf = data.AppendTuple(e.buf[:0], data.FormatWide, tp)
		if len(e.buf) != tupleSize {
			return errors.New("core: unexpected tuple encoding size")
		}
		_, werr := e.w.Write(e.buf)
		return werr
	})
	if e.err == nil {
		e.err = err
	}
}

func (e *encoder) node(n *bnode) {
	if e.err != nil {
		return
	}
	if n.isLeaf() {
		e.u8(nodeTagLeaf)
		e.i64s(n.classCounts)
		e.i64(n.promoteAttempt)
		e.bag(n.family)
		if n.subtree != nil {
			raw, err := tree.EncodeSubtree(n.subtree, e.schema)
			if err != nil {
				e.err = err
				return
			}
			e.u8(1)
			e.bytes(raw)
		} else {
			e.u8(0)
		}
		return
	}
	e.u8(nodeTagInternal)
	e.i64s(n.classCounts)
	// Coarse criterion.
	e.i64(int64(n.coarse.attr))
	e.u8(byte(n.coarse.kind))
	e.u64(n.coarse.subset)
	e.f64(n.coarse.lo)
	e.f64(n.coarse.hi)
	// Final criterion (routing fields only; Found is implied).
	e.i64(int64(n.crit.Attr))
	e.u8(byte(n.crit.Kind))
	e.f64(n.crit.Threshold)
	e.u64(n.crit.Subset)
	e.f64(n.crit.Quality)
	e.f64(n.routedThr)
	e.i64(n.eqLow)
	e.i64s(n.lowCounts)
	e.i64s(n.highCounts)
	// Categorical counts.
	for _, cc := range n.catCounts {
		if cc == nil {
			e.u8(0)
			continue
		}
		e.u8(1)
		e.u64(uint64(len(cc.Counts)))
		for _, row := range cc.Counts {
			e.i64s(row)
		}
	}
	// Histograms.
	for _, h := range n.hist {
		if h == nil {
			e.u8(0)
			continue
		}
		e.u8(1)
		e.f64s(h.Boundaries)
		e.u64(uint64(len(h.Counts)))
		for _, row := range h.Counts {
			e.i64s(row)
		}
	}
	// Moments.
	if n.moments == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.i64s(n.moments.ClassTotals)
		for i := range e.schema.Attributes {
			if nm := n.moments.Num[i]; nm != nil {
				e.u8(1)
				e.i64s(nm.Count)
				e.i64s(nm.Sum)
				e.u64s(nm.SqHi)
				e.u64s(nm.SqLo)
			} else {
				e.u8(0)
				cc := n.moments.Cat[i]
				e.u64(uint64(len(cc.Counts)))
				for _, row := range cc.Counts {
					e.i64s(row)
				}
			}
		}
	}
	e.bag(n.pending)
	e.bag(n.pushed)
	e.node(n.left)
	e.node(n.right)
}

// ---------------------------------------------------------------------------
// Decoder

type decoder struct {
	r      *bufio.Reader
	schema *data.Schema
	t      *Tree
	buf    []byte
	err    error
	// open tracks every bag the decoder allocates, so Load can release
	// them all if decoding fails partway.
	open []*data.TupleBag
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	d.fail(err)
	return b
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		d.fail(err)
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) count(max uint64, what string) int {
	n := d.u64()
	if d.err == nil && n > max {
		d.fail(fmt.Errorf("core: implausible %s count %d", what, n))
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.count(1<<16, "string")
	if d.err != nil {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail(err)
		return ""
	}
	return string(b)
}

func (d *decoder) bytesBlock() []byte {
	n := d.count(1<<32, "bytes")
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail(err)
		return nil
	}
	return b
}

func (d *decoder) i64s() []int64 {
	n := d.count(1<<24, "int64 slice")
	out := make([]int64, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}

func (d *decoder) u64slice() []uint64 {
	n := d.count(1<<24, "uint64 slice")
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u64()
	}
	return out
}

func (d *decoder) f64s() []float64 {
	n := d.count(1<<24, "float64 slice")
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *decoder) bag() *data.TupleBag {
	n := d.u64()
	bag := data.NewTupleBagEnv(d.schema, d.t.spillEnv(d.t.budget))
	d.open = append(d.open, bag)
	if d.err != nil {
		return bag
	}
	tupleSize := data.FormatWide.TupleSize(d.schema)
	if cap(d.buf) < tupleSize {
		d.buf = make([]byte, tupleSize)
	}
	tp := data.Tuple{Values: make([]float64, len(d.schema.Attributes))}
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(d.r, d.buf[:tupleSize]); err != nil {
			d.fail(err)
			return bag
		}
		data.DecodeTupleInto(d.buf[:tupleSize], data.FormatWide, &tp)
		if err := bag.Add(tp); err != nil {
			d.fail(err)
			return bag
		}
	}
	return bag
}

func (d *decoder) node(depth int) *bnode {
	if d.err != nil {
		return nil
	}
	switch tag := d.u8(); tag {
	case nodeTagLeaf:
		n := &bnode{depth: depth, leaf: true}
		n.classCounts = d.i64s()
		n.promoteAttempt = d.i64()
		n.family = d.bag()
		if d.u8() == 1 {
			raw := d.bytesBlock()
			if d.err == nil {
				sub, err := tree.DecodeSubtree(raw, d.schema)
				d.fail(err)
				n.subtree = sub
			}
		}
		if d.err != nil {
			return nil
		}
		if len(n.classCounts) != d.schema.ClassCount {
			d.fail(errors.New("core: leaf class-count arity mismatch"))
			return nil
		}
		return n
	case nodeTagInternal:
		classCounts := d.i64s()
		c := &coarseCrit{}
		c.attr = int(d.i64())
		c.kind = data.Kind(d.u8())
		c.subset = d.u64()
		c.lo = d.f64()
		c.hi = d.f64()
		if d.err != nil {
			return nil
		}
		if c.attr < 0 || c.attr >= len(d.schema.Attributes) {
			d.fail(fmt.Errorf("core: coarse attribute %d out of range", c.attr))
			return nil
		}
		n := d.t.newInternal(depth, c)
		if n.pending != nil {
			d.open = append(d.open, n.pending, n.pushed)
		}
		n.classCounts = classCounts
		n.crit = split.Split{Found: true}
		n.crit.Attr = int(d.i64())
		n.crit.Kind = data.Kind(d.u8())
		n.crit.Threshold = d.f64()
		n.crit.Subset = d.u64()
		n.crit.Quality = d.f64()
		n.routedThr = d.f64()
		n.eqLow = d.i64()
		n.lowCounts = d.i64s()
		n.highCounts = d.i64s()
		for i, a := range d.schema.Attributes {
			if d.u8() == 0 {
				n.catCounts[i] = nil
				continue
			}
			card := d.count(data.MaxCardinality, "category")
			if d.err != nil || a.Kind != data.Categorical || card != a.Cardinality {
				d.fail(errors.New("core: categorical counts shape mismatch"))
				return nil
			}
			for code := 0; code < card; code++ {
				row := d.i64s()
				copy(n.catCounts[i].Counts[code], row)
			}
		}
		for i := range d.schema.Attributes {
			if d.u8() == 0 {
				n.hist[i] = nil
				continue
			}
			bounds := d.f64s()
			cells := d.count(1<<24, "cell")
			if d.err != nil {
				return nil
			}
			h := discretize.NewHistogram(bounds, d.schema.ClassCount)
			if cells != h.NumCells() {
				d.fail(errors.New("core: histogram cell count mismatch"))
				return nil
			}
			for cidx := 0; cidx < cells; cidx++ {
				row := d.i64s()
				copy(h.Counts[cidx], row)
			}
			n.hist[i] = h
		}
		if d.u8() == 1 {
			m := split.NewMoments(d.schema)
			m.ClassTotals = d.i64s()
			for i := range d.schema.Attributes {
				if d.u8() == 1 {
					nm := m.Num[i]
					nm.Count = d.i64s()
					nm.Sum = d.i64s()
					nm.SqHi = d.u64slice()
					nm.SqLo = d.u64slice()
				} else {
					card := d.count(data.MaxCardinality, "moment category")
					if d.err != nil {
						return nil
					}
					for code := 0; code < card; code++ {
						row := d.i64s()
						if m.Cat[i] != nil && code < len(m.Cat[i].Counts) {
							copy(m.Cat[i].Counts[code], row)
						}
					}
				}
			}
			n.moments = m
		} else {
			n.moments = nil
		}
		// newInternal allocates bags only for numeric coarse criteria;
		// replace them with the persisted contents either way.
		if n.pending != nil {
			n.pending.Close()
		}
		if n.pushed != nil {
			n.pushed.Close()
		}
		n.pending = d.bag()
		n.pushed = d.bag()
		if c.kind == data.Categorical {
			// Categorical coarse nodes have no stuck sets.
			if n.pending.Len() != 0 || n.pushed.Len() != 0 {
				d.fail(errors.New("core: categorical node with stuck tuples"))
				return nil
			}
		}
		n.left = d.node(depth + 1)
		n.right = d.node(depth + 1)
		if d.err != nil {
			return nil
		}
		return n
	default:
		d.fail(fmt.Errorf("core: unknown node tag %d", tag))
		return nil
	}
}
