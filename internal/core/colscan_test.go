package core

import (
	"fmt"
	"sort"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/split"
)

// writeF1Files materializes one age-sorted F1 dataset in both on-disk
// formats and returns the two paths. Sorting on age — the attribute F1's
// root split tests — clusters the blocks so their zone maps actually
// decide routing, the workload zone skipping is designed for.
func writeF1Files(t *testing.T, n int64, blockRows int) (rowPath, colPath string) {
	t.Helper()
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, n, 99)
	tuples, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(tuples, func(i, j int) bool {
		return tuples[i].Values[gen.AttrAge] < tuples[j].Values[gen.AttrAge]
	})
	mem := data.NewMemSource(src.Schema(), tuples)
	dir := t.TempDir()
	rowPath, colPath = dir+"/d.boat", dir+"/d.boatc"
	if _, err := data.WriteFile(rowPath, mem, data.FormatCompact); err != nil {
		t.Fatal(err)
	}
	if _, err := data.WriteColFile(colPath, mem, blockRows); err != nil {
		t.Fatal(err)
	}
	return rowPath, colPath
}

func colTestConfig() Config {
	return Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 11,
	}
}

// TestColumnarFormatTreeIdentity is the storage-independence contract of
// the columnar path: the tree built from a columnar file — at every
// pipeline depth (including the synchronous reader) and parallelism — is
// bit-identical to the tree built from the row file holding the same
// tuple sequence.
func TestColumnarFormatTreeIdentity(t *testing.T) {
	rowPath, colPath := writeF1Files(t, 3*data.DefaultChunkRows, 1024)

	rowSrc, err := data.Open(rowPath)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := colTestConfig()
	refCfg.Parallelism = 1
	refCfg.TempDir = t.TempDir()
	ref, err := Build(rowSrc, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for _, depth := range []int{-1, 1, 4} {
		for _, para := range []int{1, 8} {
			t.Run(fmt.Sprintf("depth%d-P%d", depth, para), func(t *testing.T) {
				colSrc, err := data.Open(colPath)
				if err != nil {
					t.Fatal(err)
				}
				cfg := colTestConfig()
				cfg.Parallelism = para
				cfg.PipelineDepth = depth
				cfg.TempDir = t.TempDir()
				bt, err := Build(colSrc, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer bt.Close()
				requireEqual(t, "columnar vs row", bt.Tree(), ref.Tree())
				if err := bt.CheckConsistency(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestZoneSkipExactness: zone-map block skipping changes nothing but the
// work — the tree (and therefore every derived routing count, which
// CheckConsistency validates against the node statistics) is identical
// with skipping on and off, and on this clustered dataset the skip
// counter proves whole blocks actually bypassed the partition kernel.
func TestZoneSkipExactness(t *testing.T) {
	_, colPath := writeF1Files(t, 3*data.DefaultChunkRows, 512)

	build := func(disable bool, reg *obs.Registry) *Tree {
		t.Helper()
		src, err := data.Open(colPath)
		if err != nil {
			t.Fatal(err)
		}
		cfg := colTestConfig()
		cfg.Parallelism = 8
		cfg.TempDir = t.TempDir()
		cfg.DisableZoneSkip = disable
		cfg.Metrics = reg
		bt, err := Build(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return bt
	}

	regOn := obs.NewRegistry()
	on := build(false, regOn)
	defer on.Close()
	regOff := obs.NewRegistry()
	off := build(true, regOff)
	defer off.Close()

	requireEqual(t, "zone skip on vs off", on.Tree(), off.Tree())
	if err := on.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if skips := regOn.Snapshot().Counters["scan.blocks_skipped"]; skips == 0 {
		t.Fatal("no blocks skipped on the clustered dataset; the test exercised nothing")
	}
	if skips := regOff.Snapshot().Counters["scan.blocks_skipped"]; skips != 0 {
		t.Fatalf("DisableZoneSkip build still skipped %d blocks", skips)
	}
}

// TestUpdateZoneSkipExactness: the streaming-update router's zone skip —
// which must also feed the eager interval counters for skipped numeric
// batches — leaves the tree identical to the unskipped descent, for both
// insert and delete, while actually firing on clustered update chunks.
func TestUpdateZoneSkipExactness(t *testing.T) {
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 2*data.DefaultChunkRows, 31)
	_, chunkPath := writeF1Files(t, data.DefaultChunkRows, 256)

	build := func(disable bool, reg *obs.Registry) *Tree {
		t.Helper()
		cfg := colTestConfig()
		cfg.Parallelism = 8
		cfg.TempDir = t.TempDir()
		cfg.DisableZoneSkip = disable
		cfg.Metrics = reg
		// Small update batches: each covers a narrow slice of the sorted
		// age range, so block zones can decide whole batches at the root.
		cfg.ScanChunkRows = 256
		bt, err := Build(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return bt
	}

	regOn := obs.NewRegistry()
	on := build(false, regOn)
	defer on.Close()
	off := build(true, obs.NewRegistry())
	defer off.Close()

	apply := func(bt *Tree, op func(data.Source) (UpdateStats, error)) {
		t.Helper()
		src, err := data.Open(chunkPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := op(src); err != nil {
			t.Fatal(err)
		}
	}
	apply(on, on.Insert)
	apply(off, off.Insert)
	requireEqual(t, "after insert", on.Tree(), off.Tree())
	if skips := regOn.Snapshot().Counters["update.blocks_skipped"]; skips == 0 {
		t.Fatal("insert skipped no blocks on the clustered chunk; the test exercised nothing")
	}

	apply(on, on.Delete)
	apply(off, off.Delete)
	requireEqual(t, "after delete", on.Tree(), off.Tree())
}

// TestBlockShardedTreeIdentity is the determinism contract of the
// block-sharded cleanup scan: because every worker owns a contiguous
// block range and the shadow trees merge in worker order, the scan
// reproduces the exact sequential file order — so the tree is
// bit-identical to the sequential build AND the chunk-sharded build, at
// every parallelism and pipeline depth, with no silent fallback.
func TestBlockShardedTreeIdentity(t *testing.T) {
	rowPath, colPath := writeF1Files(t, 3*data.DefaultChunkRows, 512)

	rowSrc, err := data.Open(rowPath)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := colTestConfig()
	refCfg.Parallelism = 1
	refCfg.TempDir = t.TempDir()
	ref, err := Build(rowSrc, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	chunkCfg := colTestConfig()
	chunkCfg.Parallelism = 8
	chunkCfg.TempDir = t.TempDir()
	chunkSrc, err := data.Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := Build(chunkSrc, chunkCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer chunked.Close()
	requireEqual(t, "chunk-sharded vs row", chunked.Tree(), ref.Tree())

	for _, depth := range []int{-1, 4} {
		for _, para := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("depth%d-P%d", depth, para), func(t *testing.T) {
				colSrc, err := data.Open(colPath)
				if err != nil {
					t.Fatal(err)
				}
				stats := &iostats.Stats{}
				cfg := colTestConfig()
				cfg.Parallelism = para
				cfg.PipelineDepth = depth
				cfg.BlockSharding = true
				cfg.Stats = stats
				cfg.TempDir = t.TempDir()
				bt, err := Build(colSrc, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer bt.Close()
				requireEqual(t, "block-sharded vs row", bt.Tree(), ref.Tree())
				requireEqual(t, "block-sharded vs chunk-sharded", bt.Tree(), chunked.Tree())
				if err := bt.CheckConsistency(); err != nil {
					t.Fatal(err)
				}
				if f := stats.ScanFallbacks(); f != 0 {
					t.Errorf("block-sharded build fell back %d times", f)
				}
			})
		}
	}
}

// collectIntervalCounters flattens every internal node's detached
// interval statistics (lowCounts, highCounts, eqLow) in preorder — the
// counters the streaming-update router must keep exact even for batches
// the zone maps route without a per-row pass.
func collectIntervalCounters(n *bnode) []int64 {
	var out []int64
	var walk func(*bnode)
	walk = func(n *bnode) {
		if n == nil || n.isLeaf() {
			return
		}
		out = append(out, n.eqLow)
		out = append(out, n.lowCounts...)
		out = append(out, n.highCounts...)
		walk(n.left)
		walk(n.right)
	}
	walk(n)
	return out
}

// TestUpdateIntervalCountersExactUnderZoneSkip pins the eager-counting
// contract of the update router's zone skip (update.go): a numeric batch
// a zone map routes left adds to lowCounts only (a left skip implies
// every value is strictly below the interval, so never eqLow), a batch
// routed right adds to highCounts — exactly the totals the per-row pass
// produces. The comparison is on the raw node counters, not just the
// derived tree, for insert (w=+1) and delete (w=-1) alike.
func TestUpdateIntervalCountersExactUnderZoneSkip(t *testing.T) {
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 2*data.DefaultChunkRows, 31)
	_, chunkPath := writeF1Files(t, data.DefaultChunkRows, 256)

	build := func(disable bool, reg *obs.Registry) *Tree {
		t.Helper()
		cfg := colTestConfig()
		cfg.Parallelism = 4
		cfg.TempDir = t.TempDir()
		cfg.DisableZoneSkip = disable
		cfg.Metrics = reg
		cfg.ScanChunkRows = 256
		bt, err := Build(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return bt
	}
	regOn := obs.NewRegistry()
	on := build(false, regOn)
	defer on.Close()
	off := build(true, obs.NewRegistry())
	defer off.Close()

	compare := func(stage string) {
		t.Helper()
		a, b := collectIntervalCounters(on.root), collectIntervalCounters(off.root)
		if len(a) != len(b) {
			t.Fatalf("%s: counter vectors differ in length: %d vs %d", stage, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: interval counter %d differs: skip-on %d, skip-off %d", stage, i, a[i], b[i])
			}
		}
	}
	apply := func(bt *Tree, op func(data.Source) (UpdateStats, error)) {
		t.Helper()
		src, err := data.Open(chunkPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := op(src); err != nil {
			t.Fatal(err)
		}
	}
	compare("after build")
	apply(on, on.Insert)
	apply(off, off.Insert)
	compare("after insert")
	if skips := regOn.Snapshot().Counters["update.blocks_skipped"]; skips == 0 {
		t.Fatal("insert skipped no blocks; the eager-counting path was not exercised")
	}
	apply(on, on.Delete)
	apply(off, off.Delete)
	compare("after delete")
}
