package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/faultfs"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
)

// noSleep keeps retry backoffs instantaneous in tests.
var noSleep = data.RetryPolicy{Sleep: func(time.Duration) {}}

// requireNoTempsUnder fails when any temp file under dir survives in the
// process-wide registry or on disk.
func requireNoTempsUnder(t *testing.T, dir string) {
	t.Helper()
	for _, p := range data.LiveTempFiles() {
		if strings.HasPrefix(p, dir+string(os.PathSeparator)) {
			t.Fatalf("live temp file remains: %s", p)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "boat-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left on disk: %v", matches)
	}
}

// TestShardedScanFallsBackOnSpillFault: permanent create faults break the
// sharded cleanup scan on its first spills; the build must degrade to the
// sequential scan (resetting all partial statistics) and still produce the
// exact reference tree, leaking nothing.
func TestShardedScanFallsBackOnSpillFault(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 12000, 77)
	g := t.TempDir()
	stats := &iostats.Stats{}
	budget := data.NewMemBudget(64) // tiny: the scan must spill immediately
	fs := faultfs.New(nil, faultfs.Config{Seed: 7, CreateProb: 1, MaxFaults: 2})
	bt, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 11, Parallelism: 4,
		Budget: budget, TempDir: g, FS: fs, SpillRetry: noSleep, Stats: stats,
	})
	if err != nil {
		t.Fatalf("build did not recover from sharded-scan faults: %v", err)
	}
	if stats.ScanFallbacks() != 1 {
		t.Errorf("scan fallbacks = %d, want 1", stats.ScanFallbacks())
	}
	// The degraded build must equal the fault-free build exactly.
	ref, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 11, Parallelism: 4, TempDir: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, "fallback", bt.Tree(), ref.Tree())
	if err := bt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	bt.Close()
	ref.Close()
	if budget.Used() != 0 {
		t.Errorf("budget used = %d after close, want 0", budget.Used())
	}
	requireNoTempsUnder(t, g)
}

// TestBuildUnderMixedFaults is the in-process version of the boatbench
// fault soak: across many fault seeds, a build with injected storage
// faults must either produce a tree identical to the fault-free build or
// fail with a clean error — and in both cases release its whole memory
// budget and leave zero temp files.
func TestBuildUnderMixedFaults(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 9000, 5)
	base := Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 23, Parallelism: 2,
	}
	ref, err := Build(src, base)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := ref.Tree()

	var clean, failed int
	for seed := range int64(12) {
		dir := t.TempDir()
		// RemoveProb stays 0: a permanent remove fault makes the temp file
		// undeletable by definition, so "zero files left" cannot hold; that
		// path is covered by the faultfs registry tests instead.
		fs := faultfs.New(nil, faultfs.Config{
			Seed:              seed,
			CreateProb:        0.08,
			WriteProb:         0.08,
			OpenProb:          0.03,
			TransientFraction: 0.6,
			MaxFaults:         6,
		})
		stats := &iostats.Stats{}
		budget := data.NewMemBudget(128)
		cfg := base
		cfg.Budget = budget
		cfg.TempDir = dir
		cfg.FS = fs
		cfg.SpillRetry = noSleep
		cfg.Stats = stats
		bt, err := Build(src, cfg)
		if err == nil {
			requireEqual(t, "faulted build", bt.Tree(), want)
			if cerr := bt.CheckConsistency(); cerr != nil {
				t.Fatalf("seed %d: %v", seed, cerr)
			}
			bt.Close()
			clean++
		} else {
			if !data.IsSpillError(err) {
				t.Fatalf("seed %d: non-storage error %v", seed, err)
			}
			failed++
		}
		if budget.Used() != 0 {
			t.Fatalf("seed %d: budget used = %d after build", seed, budget.Used())
		}
		requireNoTempsUnder(t, dir)
	}
	t.Logf("mixed-fault builds: %d exact, %d clean errors", clean, failed)
	if clean == 0 {
		t.Error("no faulted build recovered; fault mix too aggressive to test recovery")
	}
}

// TestSaveFileRenameFaultLeavesNothing: a permanent rename fault must
// leave neither a model at path nor a stray temp file.
func TestSaveFileRenameFaultLeavesNothing(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 2000, 3)
	fs := faultfs.New(nil, faultfs.Config{Seed: 1, RenameProb: 1, MaxFaults: 1})
	dir := t.TempDir()
	bt, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 20,
		SampleSize: 500, Seed: 9, TempDir: dir, FS: fs, SpillRetry: noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	path := filepath.Join(dir, "model.boat")
	if err := bt.SaveFile(path); err == nil {
		t.Fatal("SaveFile succeeded despite permanent rename fault")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("model path exists after failed save (err=%v)", err)
	}
	requireNoTempsUnder(t, dir)
}

// TestSaveFileTransientRenameRetried: a transient rename fault is
// retried; the saved model must load back identical.
func TestSaveFileTransientRenameRetried(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 2000, 3)
	fs := faultfs.New(nil, faultfs.Config{Seed: 2, RenameProb: 1, TransientFraction: 1, MaxFaults: 1})
	dir := t.TempDir()
	cfg := Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 20,
		SampleSize: 500, Seed: 9, TempDir: dir, FS: fs, SpillRetry: noSleep,
	}
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	path := filepath.Join(dir, "model.boat")
	if err := bt.SaveFile(path); err != nil {
		t.Fatalf("SaveFile with transient rename fault: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := Load(f, src.Schema(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	requireEqual(t, "save/load", loaded.Tree(), bt.Tree())
	requireNoTempsUnder(t, dir)
}

// TestLoadFailureReleasesBuffers: a truncated model stream must not leak
// the bags decoded before the error.
func TestLoadFailureReleasesBuffers(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.1}, 4000, 3)
	dir := t.TempDir()
	budget := data.NewMemBudget(32) // force the decoded bags to spill
	cfg := Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 20,
		SampleSize: 800, Seed: 9, TempDir: dir,
	}
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	var buf strings.Builder
	if err := bt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	lcfg := cfg
	lcfg.Budget = budget
	for _, cut := range []int{len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		if _, err := Load(strings.NewReader(raw[:cut]), src.Schema(), lcfg); err == nil {
			t.Fatalf("loading %d/%d bytes succeeded", cut, len(raw))
		}
		if budget.Used() != 0 {
			t.Fatalf("cut %d: budget used = %d after failed load", cut, budget.Used())
		}
		requireNoTempsUnder(t, dir)
	}
}
