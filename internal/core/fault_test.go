package core

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/faultfs"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
)

// noSleep keeps retry backoffs instantaneous in tests.
var noSleep = data.RetryPolicy{Sleep: func(time.Duration) {}}

// requireNoTempsUnder fails when any temp file under dir survives in the
// process-wide registry or on disk.
func requireNoTempsUnder(t *testing.T, dir string) {
	t.Helper()
	for _, p := range data.LiveTempFiles() {
		if strings.HasPrefix(p, dir+string(os.PathSeparator)) {
			t.Fatalf("live temp file remains: %s", p)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "boat-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left on disk: %v", matches)
	}
}

// TestShardedScanFallsBackOnSpillFault: permanent create faults break the
// sharded cleanup scan on its first spills; the build must degrade to the
// sequential scan (resetting all partial statistics) and still produce the
// exact reference tree, leaking nothing.
func TestShardedScanFallsBackOnSpillFault(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 12000, 77)
	g := t.TempDir()
	stats := &iostats.Stats{}
	budget := data.NewMemBudget(64) // tiny: the scan must spill immediately
	fs := faultfs.New(nil, faultfs.Config{Seed: 7, CreateProb: 1, MaxFaults: 2})
	bt, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 11, Parallelism: 4,
		Budget: budget, TempDir: g, FS: fs, SpillRetry: noSleep, Stats: stats,
	})
	if err != nil {
		t.Fatalf("build did not recover from sharded-scan faults: %v", err)
	}
	if stats.ScanFallbacks() != 1 {
		t.Errorf("scan fallbacks = %d, want 1", stats.ScanFallbacks())
	}
	// The degraded build must equal the fault-free build exactly.
	ref, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 11, Parallelism: 4, TempDir: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, "fallback", bt.Tree(), ref.Tree())
	if err := bt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	bt.Close()
	ref.Close()
	if budget.Used() != 0 {
		t.Errorf("budget used = %d after close, want 0", budget.Used())
	}
	requireNoTempsUnder(t, g)
}

// waitGoroutines polls until the goroutine count falls back to baseline,
// catching worker or pipeline goroutines leaked by a failed scan.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// failOpenReadFS delegates to the real filesystem but returns, for
// exactly one chosen Open (1-based across the FS's lifetime), a reader
// whose reads fail permanently after okReads successful reads — a
// deterministic mid-range media failure inside one scan pass,
// independent of bufio's read coalescing.
type failOpenReadFS struct {
	failOpen int64
	okReads  int64
	opens    atomic.Int64
}

var errShardDiskGone = errors.New("simulated permanent media failure in shard")

func (f *failOpenReadFS) CreateTemp(dir, pattern string) (data.File, error) {
	return data.OsFS{}.CreateTemp(dir, pattern)
}
func (f *failOpenReadFS) Remove(name string) error { return data.OsFS{}.Remove(name) }
func (f *failOpenReadFS) Rename(oldpath, newpath string) error {
	return data.OsFS{}.Rename(oldpath, newpath)
}
func (f *failOpenReadFS) Open(name string) (io.ReadCloser, error) {
	rc, err := data.OsFS{}.Open(name)
	if err != nil {
		return nil, err
	}
	if f.opens.Add(1) != f.failOpen {
		return rc, nil
	}
	return &failAfterReader{rc: rc, left: f.okReads}, nil
}

type failAfterReader struct {
	rc   io.ReadCloser
	left int64
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if r.left <= 0 {
		return 0, errShardDiskGone
	}
	r.left--
	if len(p) > 1024 {
		p = p[:1024]
	}
	return r.rc.Read(p)
}
func (r *failAfterReader) Close() error { return r.rc.Close() }

// blockShardBuildConfig is the shared configuration of the block-sharded
// fault tests: enough blocks for 4 workers, pipelined reads.
func blockShardBuildConfig(stats *iostats.Stats, dir string) Config {
	return Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 11, Parallelism: 4,
		BlockSharding: true, Stats: stats, TempDir: dir,
	}
}

// writeBlockShardFile materializes a columnar file with enough blocks to
// block-shard across 4 workers.
func writeBlockShardFile(t *testing.T, n int64) string {
	t.Helper()
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, n, 77)
	path := filepath.Join(t.TempDir(), "d.boatc")
	if _, err := data.WriteColFile(path, src, 512); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBlockShardedScanFallsBackOnReadFault: a permanent read failure
// inside one worker's block range kills the block-sharded scan; the
// build must reset every partial statistic, fall back to the sequential
// scan, produce the exact fault-free tree, leak no goroutines, release
// its budget, and count I/O passes without double-counting (sampling +
// one block-sharded attempt + one sequential fallback = 3 scans, not one
// per worker range).
func TestBlockShardedScanFallsBackOnReadFault(t *testing.T) {
	path := writeBlockShardFile(t, 12000)
	ref, err := func() (*Tree, error) {
		src, err := data.OpenColFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return Build(src, blockShardBuildConfig(nil, t.TempDir()))
	}()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	baseline := runtime.NumGoroutine()
	// Open #1 is the sampling pass; opens #2..#5 are the four workers'
	// private readers. Fail the third open — one worker mid-range.
	fs := &failOpenReadFS{failOpen: 3, okReads: 2}
	src, err := data.OpenColFile(path, data.ColOptions{FS: fs, Retry: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	stats := &iostats.Stats{}
	budget := data.NewMemBudget(1 << 20)
	cfg := blockShardBuildConfig(stats, t.TempDir())
	cfg.Budget = budget
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatalf("build did not recover from the shard read fault: %v", err)
	}
	if got := stats.ScanFallbacks(); got != 1 {
		t.Errorf("scan fallbacks = %d, want 1", got)
	}
	if got := stats.Scans(); got != 3 {
		t.Errorf("scans = %d, want 3 (sampling, block-sharded attempt, sequential fallback)", got)
	}
	requireEqual(t, "fallback after shard read fault", bt.Tree(), ref.Tree())
	if err := bt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	bt.Close()
	if budget.Used() != 0 {
		t.Errorf("budget used = %d after close, want 0", budget.Used())
	}
	waitGoroutines(t, baseline)
}

// TestBlockShardedScanTransientReadRetried: transient read faults inside
// worker ranges are absorbed by the blockReader's retry policy — no
// fallback, no goroutine leaks, and the exact fault-free tree.
func TestBlockShardedScanTransientReadRetried(t *testing.T) {
	path := writeBlockShardFile(t, 12000)
	ref, err := func() (*Tree, error) {
		src, err := data.OpenColFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return Build(src, blockShardBuildConfig(nil, t.TempDir()))
	}()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	baseline := runtime.NumGoroutine()
	fs := faultfs.New(nil, faultfs.Config{
		Seed: 9, ReadProb: 1, TransientFraction: 1, MaxFaults: 6,
	})
	retry := data.RetryPolicy{Attempts: 8, Sleep: func(time.Duration) {}}
	src, err := data.OpenColFile(path, data.ColOptions{FS: fs, Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	stats := &iostats.Stats{}
	bt, err := Build(src, blockShardBuildConfig(stats, t.TempDir()))
	if err != nil {
		t.Fatalf("build failed under transient read faults: %v", err)
	}
	defer bt.Close()
	if got := stats.ScanFallbacks(); got != 0 {
		t.Errorf("scan fallbacks = %d, want 0 (transient faults retry in place)", got)
	}
	if st := fs.Stats(); st.Faults == 0 {
		t.Fatal("injection never fired; the test exercised nothing")
	}
	requireEqual(t, "transient faults retried", bt.Tree(), ref.Tree())
	waitGoroutines(t, baseline)
}

// TestBuildUnderMixedFaults is the in-process version of the boatbench
// fault soak: across many fault seeds, a build with injected storage
// faults must either produce a tree identical to the fault-free build or
// fail with a clean error — and in both cases release its whole memory
// budget and leave zero temp files.
func TestBuildUnderMixedFaults(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 9000, 5)
	base := Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 23, Parallelism: 2,
	}
	ref, err := Build(src, base)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := ref.Tree()

	var clean, failed int
	for seed := range int64(12) {
		dir := t.TempDir()
		// RemoveProb stays 0: a permanent remove fault makes the temp file
		// undeletable by definition, so "zero files left" cannot hold; that
		// path is covered by the faultfs registry tests instead.
		fs := faultfs.New(nil, faultfs.Config{
			Seed:              seed,
			CreateProb:        0.08,
			WriteProb:         0.08,
			OpenProb:          0.03,
			TransientFraction: 0.6,
			MaxFaults:         6,
		})
		stats := &iostats.Stats{}
		budget := data.NewMemBudget(128)
		cfg := base
		cfg.Budget = budget
		cfg.TempDir = dir
		cfg.FS = fs
		cfg.SpillRetry = noSleep
		cfg.Stats = stats
		bt, err := Build(src, cfg)
		if err == nil {
			requireEqual(t, "faulted build", bt.Tree(), want)
			if cerr := bt.CheckConsistency(); cerr != nil {
				t.Fatalf("seed %d: %v", seed, cerr)
			}
			bt.Close()
			clean++
		} else {
			if !data.IsSpillError(err) {
				t.Fatalf("seed %d: non-storage error %v", seed, err)
			}
			failed++
		}
		if budget.Used() != 0 {
			t.Fatalf("seed %d: budget used = %d after build", seed, budget.Used())
		}
		requireNoTempsUnder(t, dir)
	}
	t.Logf("mixed-fault builds: %d exact, %d clean errors", clean, failed)
	if clean == 0 {
		t.Error("no faulted build recovered; fault mix too aggressive to test recovery")
	}
}

// TestSaveFileRenameFaultLeavesNothing: a permanent rename fault must
// leave neither a model at path nor a stray temp file.
func TestSaveFileRenameFaultLeavesNothing(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 2000, 3)
	fs := faultfs.New(nil, faultfs.Config{Seed: 1, RenameProb: 1, MaxFaults: 1})
	dir := t.TempDir()
	bt, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 20,
		SampleSize: 500, Seed: 9, TempDir: dir, FS: fs, SpillRetry: noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	path := filepath.Join(dir, "model.boat")
	if err := bt.SaveFile(path); err == nil {
		t.Fatal("SaveFile succeeded despite permanent rename fault")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("model path exists after failed save (err=%v)", err)
	}
	requireNoTempsUnder(t, dir)
}

// TestSaveFileTransientRenameRetried: a transient rename fault is
// retried; the saved model must load back identical.
func TestSaveFileTransientRenameRetried(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 2000, 3)
	fs := faultfs.New(nil, faultfs.Config{Seed: 2, RenameProb: 1, TransientFraction: 1, MaxFaults: 1})
	dir := t.TempDir()
	cfg := Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 20,
		SampleSize: 500, Seed: 9, TempDir: dir, FS: fs, SpillRetry: noSleep,
	}
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	path := filepath.Join(dir, "model.boat")
	if err := bt.SaveFile(path); err != nil {
		t.Fatalf("SaveFile with transient rename fault: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := Load(f, src.Schema(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	requireEqual(t, "save/load", loaded.Tree(), bt.Tree())
	requireNoTempsUnder(t, dir)
}

// TestLoadFailureReleasesBuffers: a truncated model stream must not leak
// the bags decoded before the error.
func TestLoadFailureReleasesBuffers(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.1}, 4000, 3)
	dir := t.TempDir()
	budget := data.NewMemBudget(32) // force the decoded bags to spill
	cfg := Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 20,
		SampleSize: 800, Seed: 9, TempDir: dir,
	}
	bt, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	var buf strings.Builder
	if err := bt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	lcfg := cfg
	lcfg.Budget = budget
	for _, cut := range []int{len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		if _, err := Load(strings.NewReader(raw[:cut]), src.Schema(), lcfg); err == nil {
			t.Fatalf("loading %d/%d bytes succeeded", cut, len(raw))
		}
		if budget.Used() != 0 {
			t.Fatalf("cut %d: budget used = %d after failed load", cut, budget.Used())
		}
		requireNoTempsUnder(t, dir)
	}
}
