package core

import (
	"sync"
	"sync/atomic"

	"github.com/boatml/boat/internal/data"
)

// The streaming-update router is the incremental-maintenance twin of the
// cleanup scan's chunk router (scan.go): Insert and Delete stream their
// chunk down the tree level-synchronously over columnar batches instead of
// one root-to-stick descent per tuple. Each node applies the signed batch
// kernels (CatAVC.AddBatchW, Histogram.AddBatchW, Moments.AddChunkW with
// weight +1 for inserts, -1 for deletes), partitions the batch three ways
// by its coarse criterion, and recurses with the partition's index sets.
//
// Unlike the build-time router, which defers internal-node class counting
// to deriveRoutingCounts (valid only once, after a full scan against a
// fresh skeleton), the update router counts eagerly: updates are deltas on
// top of live statistics, so every counter a tuple's root-to-stick path
// touches in Tree.route is applied here, weighted, from the batch. The two
// paths are exactly equivalent — all statistics are signed integer counts,
// and the buffers receive their rows per node in stream order either way —
// which TestUpdateChunkedMatchesRow pins down.
//
// Concurrency: disjoint subtrees share no mutable state (each node's
// counters, statistics, and buffers are touched only while routing through
// that node), so once a batch is partitioned the two children can be
// updated concurrently. updateRun forks the larger descents onto worker
// goroutines up to Config.Parallelism, each with its own partition
// scratch; the shared substrate (the memory budget, iostats, the metrics
// registry) is internally synchronized. The resulting tree is identical
// at every Parallelism setting: every per-node mutation is performed by
// the single worker that owns that subtree for the batch, in the same
// order as the sequential descent. A barrier at the end of each batch
// (wait in run) keeps cross-batch ordering intact.

// forkMinRows is the smallest index set worth a goroutine handoff: below
// this, partition fan-out and scratch handling cost more than they save.
const forkMinRows = 1024

// updateRun carries one batch's descent: the signed weight, the worker
// token bucket (nil when sequential), the scratch pool for forked
// descents, and first-error collection.
type updateRun struct {
	w       int64
	sem     chan struct{}
	scratch sync.Pool
	wg      sync.WaitGroup

	// zoneSkip enables zone-map batch skipping; skips counts the nodes at
	// which a whole batch was routed by zone alone (atomic: forked
	// descents skip concurrently).
	zoneSkip bool
	skips    atomic.Int64

	mu  sync.Mutex
	err error
}

func (r *updateRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// runUpdateChunk streams one columnar batch down the tree with weight w
// (+1 insert, -1 delete), forking subtree descents across up to
// Config.Parallelism workers, and returns after every descent completes.
func (t *Tree) runUpdateChunk(ch *data.Chunk, sc *routeScratch, w int64) error {
	r := &updateRun{w: w, zoneSkip: !t.cfg.DisableZoneSkip}
	if workers := t.cfg.workers(); workers > 1 {
		r.sem = make(chan struct{}, workers-1)
	}
	rows := t.cfg.chunkRows()
	r.scratch.New = func() any { return newRouteScratch(rows) }
	err := r.update(t.root, ch, nil, sc, 0)
	r.wg.Wait()
	t.met.updBlocksSkipped.Add(r.skips.Load())
	if err == nil {
		r.mu.Lock()
		err = r.err
		r.mu.Unlock()
	}
	return err
}

// update applies the chunk rows named by idx (all rows when idx is nil)
// to the subtree rooted at n. depth indexes sc's per-level scratch
// buffers, not the node's depth in the full tree (forked descents restart
// at 0 with their own scratch).
func (r *updateRun) update(n *bnode, ch *data.Chunk, idx []int32, sc *routeScratch, depth int) error {
	w := r.w
	classes := ch.Classes()
	if idx == nil {
		for _, c := range classes {
			n.classCounts[c] += w
		}
	} else {
		for _, i := range idx {
			n.classCounts[classes[i]] += w
		}
	}
	if n.isLeaf() {
		if idx == nil && ch.Len() == 0 {
			return nil
		}
		n.dirty = true
		if w > 0 {
			return n.family.AddChunkRows(ch, idx)
		}
		return n.family.RemoveChunkRows(ch, idx)
	}
	for i, cc := range n.catCounts {
		if cc != nil {
			cc.AddBatchW(ch.Col(i), classes, idx, w)
		}
	}
	for i, h := range n.hist {
		if h != nil {
			h.AddBatchW(ch.Col(i), classes, idx, w)
		}
	}
	if n.moments != nil {
		n.moments.AddChunkW(ch, idx, w)
	}
	c := n.coarse
	if r.zoneSkip {
		// Zone-map pushdown, mirroring the cleanup-scan router — with one
		// extra obligation: the update router counts eagerly, so a skipped
		// numeric batch must still feed the interval counters exactly as
		// the per-row pass would. A left skip implies every value is
		// strictly below c.lo (lowCounts, never eqLow); a right skip
		// implies every value is above c.hi or NaN (highCounts). Neither
		// direction can strand stuck rows, so the bag paths stay untouched.
		if z, ok := ch.Zone(c.attr); ok {
			if dir := zoneRoute(c, z); dir != 0 {
				r.skips.Add(1)
				child := n.left
				counts := n.lowCounts
				if dir > 0 {
					child = n.right
					counts = n.highCounts
				}
				if c.kind == data.Numeric {
					if idx == nil {
						for _, cl := range classes {
							counts[cl] += w
						}
					} else {
						for _, i := range idx {
							counts[classes[i]] += w
						}
					}
				}
				return r.update(child, ch, idx, sc, depth+1)
			}
		}
	}
	col := ch.Col(c.attr)
	left, right, stuck := sc.at(depth)
	if c.kind == data.Categorical {
		// Same predicate as Tree.route and the compiled inference layout:
		// codes outside [0, 64) or outside the subset take the pinned
		// right edge.
		if idx == nil {
			for i, v := range col {
				if code := uint(v); code < 64 && c.subset&(1<<code) != 0 {
					left = append(left, int32(i))
				} else {
					right = append(right, int32(i))
				}
			}
		} else {
			for _, i := range idx {
				if code := uint(col[i]); code < 64 && c.subset&(1<<code) != 0 {
					left = append(left, i)
				} else {
					right = append(right, i)
				}
			}
		}
	} else {
		// The routing counters mirror Tree.route exactly: rows routed left
		// of the interval feed lowCounts (and eqLow at the endpoint), rows
		// routed right feed highCounts, fused into the partition pass. Any
		// delete-stuck continuation rows are appended to the descent sets
		// only after this pass — continuation rows descend without touching
		// the interval counters, exactly as the row path's routedThr branch
		// does.
		if idx == nil {
			for i, v := range col {
				switch {
				case v <= c.lo:
					left = append(left, int32(i))
					n.lowCounts[classes[i]] += w
					if v == c.lo {
						n.eqLow += w
					}
				case v > c.hi || v != v:
					// NaN takes the pinned missing-value edge (right),
					// never the stuck set.
					right = append(right, int32(i))
					n.highCounts[classes[i]] += w
				default:
					stuck = append(stuck, int32(i))
				}
			}
		} else {
			for _, i := range idx {
				v := col[i]
				switch {
				case v <= c.lo:
					left = append(left, i)
					n.lowCounts[classes[i]] += w
					if v == c.lo {
						n.eqLow += w
					}
				case v > c.hi || v != v:
					right = append(right, i)
					n.highCounts[classes[i]] += w
				default:
					stuck = append(stuck, i)
				}
			}
		}
		if len(stuck) > 0 {
			if w > 0 {
				// Inside the confidence interval: the rows stick at n,
				// copied from the chunk into the bag's arena in stream
				// order.
				if err := n.pending.AddChunkRows(ch, stuck); err != nil {
					return err
				}
			} else {
				// Deleting stuck tuples: they were pushed down by routedThr
				// in an earlier processing pass; undo the bag entries, then
				// continue each removal downward along the path its push
				// took.
				if err := n.pushed.RemoveChunkRows(ch, stuck); err != nil {
					return err
				}
				for _, i := range stuck {
					if col[i] <= n.routedThr {
						left = append(left, i)
					} else {
						right = append(right, i)
					}
				}
			}
		}
	}
	// Fork the left descent when a worker token is free and both sides are
	// big enough to amortize the handoff. The forked goroutine owns the
	// whole left subtree for this batch; its index set is copied out of
	// this level's scratch, and it partitions with its own scratch.
	if r.sem != nil && len(left) >= forkMinRows && len(right) >= forkMinRows {
		select {
		case r.sem <- struct{}{}:
			spawn := append([]int32(nil), left...)
			child := n.left
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				defer func() { <-r.sem }()
				csc := r.scratch.Get().(*routeScratch)
				if err := r.update(child, ch, spawn, csc, 0); err != nil {
					r.fail(err)
				}
				r.scratch.Put(csc)
			}()
			if len(right) > 0 {
				return r.update(n.right, ch, right, sc, depth+1)
			}
			return nil
		default:
		}
	}
	if len(left) > 0 {
		if err := r.update(n.left, ch, left, sc, depth+1); err != nil {
			return err
		}
	}
	if len(right) > 0 {
		return r.update(n.right, ch, right, sc, depth+1)
	}
	return nil
}
