package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/split"
)

// advSchema is the adversarial update-test schema: two numeric attributes
// spanning negative values, one categorical attribute at the maximum
// cardinality so high codes are schema-valid but unseen by the base data.
func advSchema() *data.Schema {
	return data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "y", Kind: data.Numeric},
		{Name: "c", Kind: data.Categorical, Cardinality: 64},
	}, 2)
}

// advTuples generates deterministic tuples. Base tuples (adversarial =
// false) are clean: finite values, categorical codes 0..3. Adversarial
// tuples mix in NaN (missing) numeric values, negative thresholds-crossing
// values, and high categorical codes (4..63) the base tree never saw.
func advTuples(n int, seed int64, adversarial bool) []data.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]data.Tuple, n)
	for i := range out {
		x := rng.Float64()*200 - 100
		y := rng.Float64()*200 - 100
		code := rng.Intn(4)
		if adversarial {
			code = rng.Intn(64)
			if rng.Intn(8) == 0 {
				x = math.NaN()
			}
			if rng.Intn(8) == 0 {
				y = math.NaN()
			}
		}
		class := 0
		if x+y > 0 || code%3 == 0 { // NaN comparisons are false: class falls to the code term
			class = 1
		}
		if rng.Intn(20) == 0 {
			class = 1 - class
		}
		out[i] = data.Tuple{Values: []float64{x, y, float64(code)}, Class: class}
	}
	return out
}

// TestUpdateChunkedMatchesRow is the update-path parity property test: a
// BOAT tree maintained with the columnar chunk router must stay
// bit-identical to one maintained with the row-at-a-time baseline AND to a
// from-scratch reference build on the evolving dataset — including under
// adversarial chunks carrying NaN numeric values, negative values, and
// unseen high categorical codes, at Parallelism 1 and 8.
func TestUpdateChunkedMatchesRow(t *testing.T) {
	schema := advSchema()
	base := advTuples(6000, 1, false)
	var chunks [][]data.Tuple
	for s := int64(2); s <= 4; s++ {
		chunks = append(chunks, advTuples(2500, s, true))
	}
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 50}
	for _, p := range []int{1, 8} {
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			cfg := Config{
				Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
				SampleSize: 1500, Seed: 31, Parallelism: p,
			}
			src := data.NewMemSource(schema, data.CloneTuples(base))
			chTree, err := Build(src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer chTree.Close()
			rowCfg := cfg
			rowCfg.RowUpdates = true
			rowTree, err := Build(data.NewMemSource(schema, data.CloneTuples(base)), rowCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer rowTree.Close()

			all := data.CloneTuples(base)
			for i, ct := range chunks {
				chunk := data.NewMemSource(schema, data.CloneTuples(ct))
				chUpd, err := chTree.Insert(chunk)
				if err != nil {
					t.Fatalf("chunked insert %d: %v", i, err)
				}
				rowUpd, err := rowTree.Insert(chunk)
				if err != nil {
					t.Fatalf("row insert %d: %v", i, err)
				}
				if chUpd.Chunks == 0 {
					t.Error("chunked path reported zero chunks")
				}
				if rowUpd.Chunks != 0 {
					t.Errorf("row baseline reported %d chunks", rowUpd.Chunks)
				}
				all = append(all, ct...)
				requireEqual(t, fmt.Sprintf("chunked vs row after insert %d", i),
					chTree.Tree(), rowTree.Tree())
				ref := inmem.Build(schema, data.CloneTuples(all), g)
				requireEqual(t, fmt.Sprintf("chunked vs rebuild after insert %d", i),
					chTree.Tree(), ref)
				if err := chTree.CheckConsistency(); err != nil {
					t.Fatalf("chunked tree after insert %d: %v", i, err)
				}
				if err := rowTree.CheckConsistency(); err != nil {
					t.Fatalf("row tree after insert %d: %v", i, err)
				}
			}

			// Slide the window: expire the first adversarial chunk again —
			// its NaN and unseen-code tuples must be found and removed from
			// whatever buffers they landed in.
			expired := data.NewMemSource(schema, data.CloneTuples(chunks[0]))
			if _, err := chTree.Delete(expired); err != nil {
				t.Fatalf("chunked delete: %v", err)
			}
			if _, err := rowTree.Delete(expired); err != nil {
				t.Fatalf("row delete: %v", err)
			}
			all = subtract(all, chunks[0])
			requireEqual(t, "chunked vs row after delete", chTree.Tree(), rowTree.Tree())
			ref := inmem.Build(schema, data.CloneTuples(all), g)
			requireEqual(t, "chunked vs rebuild after delete", chTree.Tree(), ref)
			if err := chTree.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRouteNaNTakesPinnedEdge pins the satellite bugfix: a NaN value on
// the split attribute must take the missing-value edge (right) in every
// write path, not stick in the confidence interval. A tree maintained
// over NaN-bearing chunks staying exact (checked above) depends on it;
// here we check the direct observable — no NaN tuple is ever stuck.
func TestRouteNaNTakesPinnedEdge(t *testing.T) {
	schema := advSchema()
	base := advTuples(5000, 7, false)
	bt, err := Build(data.NewMemSource(schema, base), Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 50,
		SampleSize: 1200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	// All-NaN numeric values: every tuple must reach a leaf via pinned
	// right edges (or categorical splits), never a stuck set.
	nanChunk := make([]data.Tuple, 200)
	for i := range nanChunk {
		nanChunk[i] = data.Tuple{
			Values: []float64{math.NaN(), math.NaN(), float64(i % 4)},
			Class:  i % 2,
		}
	}
	if _, err := bt.Insert(data.NewMemSource(schema, nanChunk)); err != nil {
		t.Fatal(err)
	}
	if err := bt.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	var stuckNaN int
	var walk func(*bnode)
	walk = func(n *bnode) {
		if n == nil || n.isLeaf() {
			return
		}
		if n.pending != nil {
			n.pending.ForEach(func(tp data.Tuple) error {
				if n.coarse.kind == data.Numeric && math.IsNaN(tp.Values[n.coarse.attr]) {
					stuckNaN++
				}
				return nil
			})
		}
		walk(n.left)
		walk(n.right)
	}
	walk(bt.root)
	if stuckNaN > 0 {
		t.Errorf("%d NaN tuples stuck in confidence intervals", stuckNaN)
	}
}

// TestSnapshotEpochs checks the serve-while-update publication semantics:
// epochs increment once per completed update, snapshots are cached per
// epoch, failed updates leave the epoch (and the served snapshot) alone,
// and Close invalidates future snapshots but not held ones.
func TestSnapshotEpochs(t *testing.T) {
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.1}, 4000, 1)
	bt, err := Build(base, Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 50, SampleSize: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s0, err := bt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s0.Epoch != 0 {
		t.Errorf("fresh tree epoch = %d", s0.Epoch)
	}
	if s0.Tree == nil || s0.Flat == nil {
		t.Fatal("snapshot missing materialized or compiled tree")
	}
	again, _ := bt.Snapshot()
	if again != s0 {
		t.Error("same-epoch snapshot not cached")
	}

	chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.1}, 2000, 2)
	if _, err := bt.Insert(chunk); err != nil {
		t.Fatal(err)
	}
	s1, err := bt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch != 1 {
		t.Errorf("post-insert epoch = %d", s1.Epoch)
	}
	requireEqual(t, "published snapshot vs materialization", s1.Tree, bt.Tree())

	// A failed update (schema mismatch) must not advance the epoch or
	// disturb the published snapshot.
	other := data.NewMemSource(data.MustSchema([]data.Attribute{{Name: "z", Kind: data.Numeric}}, 2), nil)
	if _, err := bt.Insert(other); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	s2, _ := bt.Snapshot()
	if s2 != s1 {
		t.Error("failed update disturbed the published snapshot")
	}

	bt.Close()
	if _, err := bt.Snapshot(); err == nil {
		t.Error("snapshot of a closed tree should fail")
	}
	// The held snapshot outlives Close.
	if s1.Tree.Root == nil || s1.Flat == nil {
		t.Error("held snapshot invalidated by Close")
	}
}

// TestConcurrentSnapshotDuringUpdate hammers Snapshot from reader
// goroutines while updates run: under the race detector this validates
// the lock-free serving path, and epochs observed by any one reader must
// be monotone with every snapshot fully published.
func TestConcurrentSnapshotDuringUpdate(t *testing.T) {
	base := gen.MustSource(gen.Config{Function: 1, Noise: 0.1}, 4000, 1)
	bt, err := Build(base, Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 50, SampleSize: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	if _, err := bt.Snapshot(); err != nil { // start serving
		t.Fatal(err)
	}

	const rounds = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := bt.Snapshot()
				if err != nil {
					errc <- err
					return
				}
				if s.Epoch < last {
					errc <- fmt.Errorf("epoch went backwards: %d after %d", s.Epoch, last)
					return
				}
				last = s.Epoch
				if s.Tree == nil || s.Flat == nil {
					errc <- fmt.Errorf("partially published snapshot at epoch %d", s.Epoch)
					return
				}
			}
		}()
	}
	// Two updaters race each other too: updates must serialize cleanly.
	var uwg sync.WaitGroup
	for u := 0; u < 2; u++ {
		uwg.Add(1)
		go func(u int) {
			defer uwg.Done()
			for i := 0; i < rounds; i++ {
				chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.1}, 1000, int64(100+10*u+i))
				if _, err := bt.Insert(chunk); err != nil {
					errc <- err
					return
				}
				if _, err := bt.Delete(chunk); err != nil {
					errc <- err
					return
				}
			}
		}(u)
	}
	uwg.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	s, err := bt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(2 * 2 * rounds); s.Epoch != want {
		t.Errorf("final epoch = %d, want %d", s.Epoch, want)
	}
	// Every insert was paired with a delete: the final tree is the base tree.
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 50}
	all, _ := data.ReadAll(base)
	requireEqual(t, "after paired insert/delete rounds", bt.Tree(),
		inmem.Build(base.Schema(), data.CloneTuples(all), g))
}

// BenchmarkUpdate compares the row-at-a-time update baseline against the
// columnar chunk router. Stop-at-threshold keeps leaf families as stored
// buffers without in-memory subtrees, so routing and statistics
// maintenance dominate the measurement. Each iteration inserts and then
// expires the same chunk, returning the tree to its initial state.
// BenchmarkUpdate measures sustained sliding-window maintenance — the
// paper's dynamic environment and the boatstream driver's workload: each
// operation inserts the newest data chunk and deletes the expired one, so
// the tree's net size stays constant while every update path (batch
// statistics, stuck-set bookkeeping, pending-removal cancellation on
// re-arriving data, misses on fresh data) stays exercised. The row
// sub-benchmark forces the row-at-a-time baseline (Config.RowUpdates) on
// the identical workload.
func BenchmarkUpdate(b *testing.B) {
	const (
		chunkTuples = 10000
		window      = 3 // live chunks besides the base data
		slots       = 6 // distinct chunk contents cycled through
	)
	base := gen.MustSource(gen.Config{Function: 1}, 40000, 1)
	chunks := make([]data.Source, slots)
	for i := range chunks {
		chunks[i] = gen.MustSource(gen.Config{Function: 1}, chunkTuples, int64(10+i))
	}
	for _, mode := range []struct {
		name string
		row  bool
	}{{"row", true}, {"chunked", false}} {
		b.Run(mode.name, func(b *testing.B) {
			bt, err := Build(base, Config{
				Method: split.NewGini(), StopThreshold: 4000, StopAtThreshold: true,
				SampleSize: 8000, BootstrapTrees: 5, Seed: 1, RowUpdates: mode.row,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer bt.Close()
			// Reach the steady state: the window holds `window` live chunks.
			for i := 0; i < window; i++ {
				if _, err := bt.Insert(chunks[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bt.Insert(chunks[(window+i)%slots]); err != nil {
					b.Fatal(err)
				}
				if _, err := bt.Delete(chunks[i%slots]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)*2*chunkTuples/elapsed, "tuples/sec")
			}
		})
	}
}
