package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// buildRef grows the reference tree with the in-memory algorithm.
func buildRef(t *testing.T, src data.Source, g inmem.Config) *tree.Tree {
	t.Helper()
	tuples, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	return inmem.Build(src.Schema(), tuples, g)
}

// requireEqual fails the test with a diff when the trees differ.
func requireEqual(t *testing.T, label string, got, want *tree.Tree) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s: trees differ: %s\n--- got ---\n%s\n--- want ---\n%s",
			label, got.Diff(want), got, want)
	}
}

// TestExactnessMatrix is the paper's central claim (Sections 3, 7): BOAT
// constructs exactly the same decision tree as the traditional algorithm,
// across classification functions, split selection methods, and noise
// levels.
func TestExactnessMatrix(t *testing.T) {
	methods := []split.Method{split.NewGini(), split.NewEntropy(), split.NewQuestLike()}
	for _, fn := range []int{1, 3, 5, 6, 7, 10} {
		for _, m := range methods {
			for _, noise := range []float64{0, 0.08} {
				name := fmt.Sprintf("F%d/%s/noise=%v", fn, m.Name(), noise)
				t.Run(name, func(t *testing.T) {
					src := gen.MustSource(gen.Config{Function: fn, Noise: noise}, 8000, int64(fn)*100+7)
					g := inmem.Config{Method: m, MaxDepth: 5, MinSplit: 50}
					ref := buildRef(t, src, g)
					bt, err := Build(src, Config{
						Method: m, MaxDepth: 5, MinSplit: 50,
						SampleSize: 1500, Seed: 11,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer bt.Close()
					requireEqual(t, name, bt.Tree(), ref)
					if err := bt.CheckConsistency(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestExactnessStopMode verifies the performance-experiment methodology:
// construction stops at families below the in-memory threshold, and BOAT
// still produces the identical (truncated) tree.
func TestExactnessStopMode(t *testing.T) {
	for _, fn := range []int{1, 6, 7} {
		t.Run(fmt.Sprintf("F%d", fn), func(t *testing.T) {
			src := gen.MustSource(gen.Config{Function: fn, Noise: 0.05}, 12000, int64(fn))
			g := inmem.Config{
				Method: split.NewGini(), StopThreshold: 1500, StopAtThreshold: true,
			}
			ref := buildRef(t, src, g)
			bt, err := Build(src, Config{
				Method: split.NewGini(), StopThreshold: 1500, StopAtThreshold: true,
				SampleSize: 2500, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer bt.Close()
			requireEqual(t, "stop mode", bt.Tree(), ref)
		})
	}
}

// TestExactnessSwitchOverMode verifies the non-stop threshold semantics:
// families below the threshold are completed in memory, producing the full
// reference tree.
func TestExactnessSwitchOverMode(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 10000, 21)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 7, MinSplit: 20}
	ref := buildRef(t, src, g)
	bt, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 7, MinSplit: 20,
		StopThreshold: 2000, SampleSize: 2000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	requireEqual(t, "switch-over", bt.Tree(), ref)
	if bt.BuildStats().InMemoryLeaves == 0 {
		t.Error("expected in-memory switch-over leaves")
	}
}

// TestExactnessFileSource runs BOAT against an on-disk training database
// in the paper's 40-byte record format.
func TestExactnessFileSource(t *testing.T) {
	genSrc := gen.MustSource(gen.Config{Function: 7, Noise: 0.05}, 9000, 31)
	path := filepath.Join(t.TempDir(), "train.boat")
	if _, err := data.WriteFile(path, genSrc, data.FormatCompact); err != nil {
		t.Fatal(err)
	}
	src, err := data.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 50}
	ref := buildRef(t, src, g)
	var st iostats.Stats
	bt, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1800, Seed: 5, Stats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	requireEqual(t, "file source", bt.Tree(), ref)
	if st.Scans() != 2 {
		t.Errorf("BOAT made %d scans over D, want 2", st.Scans())
	}
	if st.TuplesRead() != 18000 {
		t.Errorf("tuples read = %d, want 18000", st.TuplesRead())
	}
}

// TestExactnessWithSpill forces the stuck sets and leaf families to
// overflow to temporary files and checks that nothing changes.
func TestExactnessWithSpill(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 8000, 13)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 5, MinSplit: 50}
	ref := buildRef(t, src, g)
	var st iostats.Stats
	bt, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 5, MinSplit: 50,
		SampleSize: 1500, Seed: 7,
		MemBudgetTuples: 500, TempDir: t.TempDir(), Stats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	requireEqual(t, "spill", bt.Tree(), ref)
	if st.SpillTuples() == 0 {
		t.Error("expected spilled tuples under a 500-tuple memory budget")
	}
}

// TestExactnessExtraAttributes mirrors the Figure 10/11 workload shape.
func TestExactnessExtraAttributes(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, ExtraAttrs: 4, Noise: 0.05}, 6000, 17)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 50}
	ref := buildRef(t, src, g)
	bt, err := Build(src, Config{
		Method: split.NewGini(), MaxDepth: 4, MinSplit: 50, SampleSize: 1500, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	requireEqual(t, "extra attrs", bt.Tree(), ref)
}

// TestExactnessInstability runs BOAT on the Figure 12 two-minima dataset,
// where bootstrap disagreement and interval escapes are by construction
// common; the guarantee must hold regardless.
func TestExactnessInstability(t *testing.T) {
	src := gen.InstabilitySource(12000, 29)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 4, MinSplit: 100}
	ref := buildRef(t, src, g)
	for seed := int64(1); seed <= 4; seed++ {
		bt, err := Build(src, Config{
			Method: split.NewGini(), MaxDepth: 4, MinSplit: 100,
			SampleSize: 1000, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireEqual(t, fmt.Sprintf("instability seed %d", seed), bt.Tree(), ref)
		bt.Close()
	}
}

// TestExactnessRandomizedFuzz compares BOAT against the reference on many
// small random datasets over random mixed schemas — a broad property test
// of the exactness guarantee including categorical coarse criteria and
// multi-class problems.
func TestExactnessRandomizedFuzz(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema, tuples := randomDataset(rng)
			src := data.NewMemSource(schema, tuples)
			for _, m := range []split.Method{split.NewGini(), split.NewQuestLike()} {
				g := inmem.Config{Method: m, MaxDepth: 4, MinSplit: 10}
				ref := inmem.Build(schema, data.CloneTuples(tuples), g)
				bt, err := Build(src, Config{
					Method: m, MaxDepth: 4, MinSplit: 10,
					SampleSize: len(tuples)/4 + 10, BootstrapTrees: 8, Seed: seed,
				})
				if err != nil {
					t.Fatalf("%s: %v", m.Name(), err)
				}
				requireEqual(t, m.Name(), bt.Tree(), ref)
				if err := bt.CheckConsistency(); err != nil {
					t.Fatalf("%s: %v", m.Name(), err)
				}
				bt.Close()
			}
		})
	}
}

// randomDataset generates a random mixed-schema dataset with a planted
// (noisy) concept so trees have real structure.
func randomDataset(rng *rand.Rand) (*data.Schema, []data.Tuple) {
	numAttrs := 1 + rng.Intn(3)
	catAttrs := rng.Intn(3)
	if numAttrs+catAttrs < 2 {
		catAttrs++
	}
	classes := 2 + rng.Intn(2)
	var attrs []data.Attribute
	for i := 0; i < numAttrs; i++ {
		attrs = append(attrs, data.Attribute{Name: fmt.Sprintf("n%d", i), Kind: data.Numeric})
	}
	for i := 0; i < catAttrs; i++ {
		attrs = append(attrs, data.Attribute{
			Name: fmt.Sprintf("c%d", i), Kind: data.Categorical, Cardinality: 2 + rng.Intn(6),
		})
	}
	schema := data.MustSchema(attrs, classes)
	n := 400 + rng.Intn(1200)
	domain := 5 + rng.Intn(40)
	pivot := float64(rng.Intn(domain))
	tuples := make([]data.Tuple, n)
	for i := range tuples {
		vals := make([]float64, len(attrs))
		for a, at := range attrs {
			if at.Kind == data.Numeric {
				vals[a] = float64(rng.Intn(domain))
			} else {
				vals[a] = float64(rng.Intn(at.Cardinality))
			}
		}
		class := 0
		if vals[0] > pivot {
			class = 1
		}
		if catAttrs > 0 && int(vals[numAttrs])%2 == 1 {
			class = (class + 1) % classes
		}
		if rng.Float64() < 0.15 {
			class = rng.Intn(classes)
		}
		tuples[i] = data.Tuple{Values: vals, Class: class}
	}
	return schema, tuples
}
