package core

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/boatml/boat/internal/bootstrap"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// Tree is a stateful BOAT tree: beyond the decision tree itself it retains
// the per-node coarse criteria, cleanup statistics, stuck sets S_n and
// stored leaf families, which is what makes exact incremental maintenance
// possible (Section 4). Obtain one with Build; materialize the plain
// decision tree with Tree(); update it with Insert and Delete; release its
// temporary resources with Close.
//
// Concurrency contract: Insert, Delete, Tree, Snapshot, Close and
// CheckConsistency are safe for concurrent use — all tree mutation is
// serialized on an internal update mutex, and concurrent Insert/Delete
// calls simply queue (each applies its full chunk atomically with respect
// to the others). Snapshot's fast path is lock-free: once a snapshot of
// the current epoch has been published, readers load it from an atomic
// pointer without contending with in-flight updates, and keep serving the
// last consistent epoch until the next update completes. BuildStats and
// Schema are likewise safe to call at any time.
type Tree struct {
	cfg    Config
	schema *data.Schema
	root   *bnode
	budget *data.MemBudget

	impurityBased split.ImpurityBased
	momentBased   split.MomentBased

	// statsMu guards buildStats and upd: with Parallelism > 1, leaf
	// completion (and the rebuilds it triggers) updates counters from
	// worker goroutines. BOAT-in-BOAT recursion depth is threaded through
	// the call chain as an explicit parameter (rdepth), not stored here,
	// so concurrent rebuilds cannot observe each other's depth.
	statsMu    sync.Mutex
	buildStats BuildStats
	// upd accumulates counters for the update pass in progress (guarded
	// by statsMu while worker goroutines are live).
	upd *UpdateStats

	// updateMu serializes all structural mutation and inspection of the
	// tree after Build: Insert/Delete (the whole update, scan through
	// verification), Tree(), the Snapshot slow path, Close and
	// CheckConsistency. Build itself runs before the Tree is shared, so it
	// does not take it.
	updateMu sync.Mutex
	// updScratch is the chunk router's per-level partition scratch, reused
	// across updates (guarded by updateMu).
	updScratch *routeScratch
	// epoch counts completed updates; snap caches the published snapshot
	// of the epoch it carries. Readers serve snap lock-free and detect
	// staleness by comparing epochs (see Snapshot).
	epoch atomic.Uint64
	snap  atomic.Pointer[Snapshot]

	// seedCounter derives distinct bootstrap seeds for rebuilds; atomic
	// because concurrent frontier rebuilds each draw fresh seeds. The
	// output tree does not depend on the drawn values (BOAT's exactness
	// guarantee), only run traces do.
	seedCounter atomic.Int64

	// met caches the metrics-registry instruments (all nil, hence no-op,
	// when cfg.Metrics is nil) and log is the resolved structured logger
	// (never nil; discards when cfg.Logger is nil).
	met metricSet
	log *slog.Logger
}

// mutateStats applies a counter mutation under the stats lock; upd is nil
// outside of update passes.
func (t *Tree) mutateStats(f func(b *BuildStats, upd *UpdateStats)) {
	t.statsMu.Lock()
	f(&t.buildStats, t.upd)
	t.statsMu.Unlock()
}

// spillEnv assembles the spill environment for a buffer charged against
// budget: the tree's temp dir, recorder, filesystem, and retry policy.
func (t *Tree) spillEnv(budget *data.MemBudget) data.SpillEnv {
	return data.SpillEnv{
		Dir:    t.cfg.TempDir,
		Budget: budget,
		Rec:    t.cfg.Stats,
		FS:     t.cfg.FS,
		Retry:  t.cfg.SpillRetry,
		Log:    t.cfg.Logger,
	}
}

// Build constructs the BOAT tree over the training database src.
//
// The algorithm makes exactly two sequential scans over src (plus
// occasional re-processing of buffered subsets when verification fails):
// scan one draws the sample D' for the sampling phase; scan two is the
// cleanup scan that streams every tuple down the coarse tree.
func Build(src data.Source, cfg Config) (*Tree, error) {
	buildSpan := cfg.Trace.Start("build")
	defer buildSpan.End()
	start := time.Now()

	n, err := data.CountTuples(src) // known without scanning for all built-in sources
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.withDefaults(n)
	if err != nil {
		return nil, err
	}
	buildSpan.SetAttr("tuples", n)
	buildSpan.SetAttr("parallelism", cfg.workers())
	buildSpan.SetAttr("chunk_rows", cfg.chunkRows())
	budget := cfg.Budget
	if budget == nil {
		budget = data.NewMemBudget(cfg.MemBudgetTuples)
	}
	t := &Tree{
		cfg:    cfg,
		schema: src.Schema(),
		budget: budget,
		met:    newMetricSet(cfg.Metrics),
		log:    resolveLogger(cfg.Logger),
	}
	t.impurityBased, _ = cfg.Method.(split.ImpurityBased)
	t.momentBased, _ = cfg.Method.(split.MomentBased)
	if t.impurityBased == nil && t.momentBased == nil {
		return nil, fmt.Errorf("core: unsupported method %q", cfg.Method.Name())
	}
	t.log.Debug("build started", "tuples", n, "sample_size", cfg.SampleSize,
		"parallelism", cfg.workers(), "method", cfg.Method.Name())

	tracked := iostats.Tracked(src, cfg.Stats)
	rng := cfg.newRNG()

	// Sampling phase (scan 1): sample D', bootstrap, coarse criteria.
	sampleSpan := buildSpan.Start("sampling")
	sample, err := data.ReservoirSample(tracked, cfg.SampleSize, rng)
	sampleSpan.SetAttr("sample_size", len(sample))
	sampleSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: sampling phase: %w", err)
	}
	t.buildStats.SampleSize = len(sample)
	root, err := t.buildFromSample(tracked, sample, n, 0, 0, buildSpan)
	if err != nil {
		t.log.Error("build failed", "err", err)
		return nil, err
	}
	t.root = root
	bs := t.BuildStats()
	t.log.Info("build finished", "seconds", time.Since(start).Seconds(),
		"tuples", bs.TuplesSeen, "coarse_nodes", bs.CoarseNodes,
		"failed_nodes", bs.FailedNodes, "stuck_tuples", bs.StuckTuples,
		"frontier_rebuilds", bs.FrontierRebuilds)
	return t, nil
}

// buildFromSample runs the sampling phase (given the already-drawn
// sample), the cleanup scan over src, and top-down processing, returning
// the resulting subtree rooted at the given depth. It is shared by Build
// and by recursive rebuild invocations; rdepth is the BOAT-in-BOAT
// recursion depth of this invocation, and parent the enclosing trace
// span (the build root, or a rebuild span).
func (t *Tree) buildFromSample(src data.Source, sample []data.Tuple, n int64, depth, rdepth int, parent *obs.Span) (*bnode, error) {
	bootSpan := parent.Start("bootstrap")
	bcfg := bootstrap.Config{
		Trees:         t.cfg.BootstrapTrees,
		SubsampleSize: t.cfg.SubsampleSize,
		WidenFraction: t.cfg.WidenFraction,
		TreeConfig:    t.bootstrapGrowConfig(n),
		Seed:          t.cfg.Seed + 104729*t.seedCounter.Add(1),
		Parallelism:   t.cfg.workers(),
		Span:          bootSpan,
	}
	coarse, bstats, err := bootstrap.BuildCoarse(t.schema, sample, bcfg)
	bootSpan.SetAttr("coarse_nodes", bstats.CoarseNodes)
	bootSpan.SetAttr("disagreements", bstats.Disagreements)
	bootSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap: %w", err)
	}
	t.met.coarseNodes.Add(int64(bstats.CoarseNodes))
	t.met.disagreements.Add(int64(bstats.Disagreements))
	t.mutateStats(func(b *BuildStats, _ *UpdateStats) {
		b.CoarseNodes += bstats.CoarseNodes
		b.Disagreements += bstats.Disagreements
	})

	skelSpan := parent.Start("skeleton")
	root := t.skeletonFromCoarse(coarse, sample, depth)
	skelSpan.End()

	// Cleanup scan (scan 2): stream every tuple down the coarse tree,
	// sharded across workers when Parallelism > 1 (see scan.go). On any
	// error the skeleton's buffers (and their temp files) are released
	// before returning, so a failed build never leaks.
	scanSpan := parent.Start("cleanup-scan")
	seen, err := t.cleanupScan(src, root, scanSpan)
	scanSpan.SetAttr("tuples", seen)
	if err != nil {
		scanSpan.End()
		closeSubtree(root)
		return nil, fmt.Errorf("core: cleanup scan: %w", err)
	}
	stuck := countStuck(root)
	scanSpan.SetAttr("stuck", stuck)
	scanSpan.End()
	t.met.scanTuples.Add(seen)
	t.met.stuckTuples.Add(stuck)
	t.observeStuckSets(root)
	t.log.Debug("cleanup scan finished", "tuples", seen, "stuck", stuck, "rdepth", rdepth)
	t.mutateStats(func(b *BuildStats, _ *UpdateStats) {
		b.TuplesSeen += seen
		b.StuckTuples += stuck
	})

	// Top-down processing: exact splits, verification, completion.
	procSpan := parent.Start("process")
	err = t.process(root, rdepth, procSpan)
	procSpan.End()
	if err != nil {
		closeSubtree(root)
		return nil, fmt.Errorf("core: processing: %w", err)
	}
	return root, nil
}

// bootstrapGrowConfig derives the growth rules for bootstrap trees: the
// family-size switch threshold is scaled by the sampling fraction so the
// coarse tree reaches (approximately) the same depth the final tree will
// have above the main-memory switch.
func (t *Tree) bootstrapGrowConfig(n int64) (g inmem.Config) {
	g = t.cfg.growConfig(0)
	g.StopAtThreshold = true
	if t.cfg.StopThreshold > 0 && n > 0 {
		scaled := t.cfg.StopThreshold * int64(t.cfg.SubsampleSize) / n
		if scaled < 1 {
			scaled = 1
		}
		g.StopThreshold = scaled
	} else {
		g.StopAtThreshold = false
	}
	return g
}

func countStuck(n *bnode) int64 {
	if n == nil || n.isLeaf() {
		return 0
	}
	var s int64
	if n.pending != nil {
		s = n.pending.Len()
	}
	return s + countStuck(n.left) + countStuck(n.right)
}

// Schema returns the training schema.
func (t *Tree) Schema() *data.Schema { return t.schema }

// BuildStats returns the statistics of the original Build.
func (t *Tree) BuildStats() BuildStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.buildStats
}

// Tree materializes the current decision tree. The result is a plain
// value: later Insert/Delete calls do not mutate previously returned
// trees. Safe for concurrent use (serializes with in-flight updates).
func (t *Tree) Tree() *tree.Tree {
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	return &tree.Tree{Schema: t.schema, Root: materialize(t.root)}
}

// Snapshot is an immutable, consistent view of the tree as of one update
// epoch: the materialized decision tree plus its compiled flat form for
// batched inference. Snapshots are never mutated after publication;
// holders may keep serving from one for as long as they like.
type Snapshot struct {
	// Epoch identifies the update generation: it starts at 0 after Build
	// and increments once per completed Insert or Delete.
	Epoch uint64
	// Tree is the materialized decision tree of this epoch.
	Tree *tree.Tree
	// Flat is the compiled (SoA) form of Tree, for the columnar inference
	// path.
	Flat *tree.FlatTree
}

// Snapshot returns the current epoch's immutable snapshot, publishing one
// if none exists yet. The fast path is lock-free: once a snapshot of the
// current epoch is published, concurrent callers load it from an atomic
// pointer without blocking — in particular, while an Insert or Delete is
// in flight, Snapshot keeps returning the last consistent epoch. After
// serving has started (any successful Snapshot call), completed updates
// republish eagerly, so readers flip to new epochs without paying the
// materialization cost themselves.
func (t *Tree) Snapshot() (*Snapshot, error) {
	if s := t.snap.Load(); s != nil && s.Epoch == t.epoch.Load() {
		return s, nil
	}
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	return t.publishLocked()
}

// publishLocked materializes and compiles the current tree and stores it
// as the published snapshot. Callers must hold updateMu.
func (t *Tree) publishLocked() (*Snapshot, error) {
	if t.root == nil {
		return nil, fmt.Errorf("core: closed tree")
	}
	// Re-check under the lock: a concurrent Snapshot call (or the update
	// that just finished) may have published this epoch already.
	epoch := t.epoch.Load()
	if s := t.snap.Load(); s != nil && s.Epoch == epoch {
		return s, nil
	}
	mt := &tree.Tree{Schema: t.schema, Root: materialize(t.root)}
	flat, err := tree.Compile(mt)
	if err != nil {
		return nil, fmt.Errorf("core: compiling snapshot: %w", err)
	}
	s := &Snapshot{Epoch: epoch, Tree: mt, Flat: flat}
	t.snap.Store(s)
	t.met.epochSwaps.Inc()
	t.met.epochGauge.Set(float64(epoch))
	return s, nil
}

// Ready reports whether the tree is fit to serve and accept updates: a
// consistent snapshot must have been published (readers have an epoch to
// route through) and no spill buffer may be poisoned by a permanent
// storage fault. It backs the diagnostics server's /readyz probe.
//
// The poison walk serializes with in-flight updates on the update mutex,
// so a probe landing mid-Insert waits for the update to complete — a
// readiness probe observing a half-applied update would be meaningless.
func (t *Tree) Ready() error {
	if t.snap.Load() == nil {
		return fmt.Errorf("core: not ready: no snapshot epoch published yet")
	}
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	if t.root == nil {
		return fmt.Errorf("core: not ready: tree is closed")
	}
	return poisonCheck(t.root)
}

// poisonCheck walks the tree's buffers for poisoned spill state.
func poisonCheck(n *bnode) error {
	if n == nil {
		return nil
	}
	if n.isLeaf() {
		if n.family != nil {
			if err := n.family.Err(); err != nil {
				return fmt.Errorf("core: not ready: poisoned leaf family: %w", err)
			}
		}
		return nil
	}
	if n.pending != nil {
		if err := n.pending.Err(); err != nil {
			return fmt.Errorf("core: not ready: poisoned stuck set: %w", err)
		}
	}
	if n.pushed != nil {
		if err := n.pushed.Err(); err != nil {
			return fmt.Errorf("core: not ready: poisoned pushed set: %w", err)
		}
	}
	if err := poisonCheck(n.left); err != nil {
		return err
	}
	return poisonCheck(n.right)
}

func materialize(n *bnode) *tree.Node {
	if n == nil {
		return nil
	}
	if n.isLeaf() {
		if n.subtree != nil {
			return cloneTreeNode(n.subtree)
		}
		counts := make([]int64, len(n.classCounts))
		copy(counts, n.classCounts)
		return &tree.Node{Label: tree.MajorityLabel(counts), ClassCounts: counts}
	}
	counts := make([]int64, len(n.classCounts))
	copy(counts, n.classCounts)
	return &tree.Node{
		Crit:        n.crit,
		Left:        materialize(n.left),
		Right:       materialize(n.right),
		Label:       tree.MajorityLabel(counts),
		ClassCounts: counts,
	}
}

func cloneTreeNode(n *tree.Node) *tree.Node {
	if n == nil {
		return nil
	}
	counts := make([]int64, len(n.ClassCounts))
	copy(counts, n.ClassCounts)
	return &tree.Node{
		Crit:        n.Crit,
		Left:        cloneTreeNode(n.Left),
		Right:       cloneTreeNode(n.Right),
		Label:       n.Label,
		ClassCounts: counts,
	}
}

// Close releases all temporary resources (spill files, buffers). Further
// updates and Snapshot calls fail, but snapshots handed out earlier stay
// valid — they hold no tree resources, so readers already serving from
// one are unaffected.
func (t *Tree) Close() error {
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	closeSubtree(t.root)
	t.root = nil
	t.snap.Store(nil)
	return nil
}

// CheckConsistency validates internal invariants (used by tests).
func (t *Tree) CheckConsistency() error {
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	if t.root == nil {
		return fmt.Errorf("core: closed tree")
	}
	return t.root.checkConsistency(t.schema)
}
