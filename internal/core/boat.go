package core

import (
	"fmt"
	"math/rand"

	"github.com/boatml/boat/internal/bootstrap"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// Tree is a stateful BOAT tree: beyond the decision tree itself it retains
// the per-node coarse criteria, cleanup statistics, stuck sets S_n and
// stored leaf families, which is what makes exact incremental maintenance
// possible (Section 4). Obtain one with Build; materialize the plain
// decision tree with Tree(); update it with Insert and Delete; release its
// temporary resources with Close.
type Tree struct {
	cfg    Config
	schema *data.Schema
	root   *bnode
	budget *data.MemBudget

	impurityBased split.ImpurityBased
	momentBased   split.MomentBased

	buildStats BuildStats

	// rebuildDepth tracks BOAT-in-BOAT recursion for rebuilds.
	rebuildDepth int
	// seedCounter derives distinct bootstrap seeds for rebuilds.
	seedCounter int64
	// upd accumulates counters for the pass in progress.
	upd *UpdateStats
}

// Build constructs the BOAT tree over the training database src.
//
// The algorithm makes exactly two sequential scans over src (plus
// occasional re-processing of buffered subsets when verification fails):
// scan one draws the sample D' for the sampling phase; scan two is the
// cleanup scan that streams every tuple down the coarse tree.
func Build(src data.Source, cfg Config) (*Tree, error) {
	n, err := data.CountTuples(src) // known without scanning for all built-in sources
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.withDefaults(n)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:    cfg,
		schema: src.Schema(),
		budget: data.NewMemBudget(cfg.MemBudgetTuples),
	}
	t.impurityBased, _ = cfg.Method.(split.ImpurityBased)
	t.momentBased, _ = cfg.Method.(split.MomentBased)
	if t.impurityBased == nil && t.momentBased == nil {
		return nil, fmt.Errorf("core: unsupported method %q", cfg.Method.Name())
	}

	tracked := iostats.Tracked(src, cfg.Stats)
	rng := cfg.newRNG()

	// Sampling phase (scan 1): sample D', bootstrap, coarse criteria.
	sample, err := data.ReservoirSample(tracked, cfg.SampleSize, rng)
	if err != nil {
		return nil, fmt.Errorf("core: sampling phase: %w", err)
	}
	t.buildStats.SampleSize = len(sample)
	root, err := t.buildFromSample(tracked, sample, n, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// buildFromSample runs the sampling phase (given the already-drawn
// sample), the cleanup scan over src, and top-down processing, returning
// the resulting subtree rooted at the given depth. It is shared by Build
// and by recursive rebuild invocations.
func (t *Tree) buildFromSample(src data.Source, sample []data.Tuple, n int64, depth int) (*bnode, error) {
	t.seedCounter++
	bcfg := bootstrap.Config{
		Trees:         t.cfg.BootstrapTrees,
		SubsampleSize: t.cfg.SubsampleSize,
		WidenFraction: t.cfg.WidenFraction,
		TreeConfig:    t.bootstrapGrowConfig(n),
		Rng:           rand.New(rand.NewSource(t.cfg.Seed + t.seedCounter)),
	}
	coarse, bstats, err := bootstrap.BuildCoarse(t.schema, sample, bcfg)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap: %w", err)
	}
	t.buildStats.CoarseNodes += bstats.CoarseNodes
	t.buildStats.Disagreements += bstats.Disagreements

	root := t.skeletonFromCoarse(coarse, sample, depth)

	// Cleanup scan (scan 2): stream every tuple down the coarse tree.
	var seen int64
	err = data.ForEach(src, func(tp data.Tuple) error {
		seen++
		return t.route(root, tp, +1)
	})
	if err != nil {
		return nil, fmt.Errorf("core: cleanup scan: %w", err)
	}
	t.buildStats.TuplesSeen += seen
	t.buildStats.StuckTuples += countStuck(root)

	// Top-down processing: exact splits, verification, completion.
	if err := t.process(root); err != nil {
		return nil, fmt.Errorf("core: processing: %w", err)
	}
	return root, nil
}

// bootstrapGrowConfig derives the growth rules for bootstrap trees: the
// family-size switch threshold is scaled by the sampling fraction so the
// coarse tree reaches (approximately) the same depth the final tree will
// have above the main-memory switch.
func (t *Tree) bootstrapGrowConfig(n int64) (g inmem.Config) {
	g = t.cfg.growConfig(0)
	g.StopAtThreshold = true
	if t.cfg.StopThreshold > 0 && n > 0 {
		scaled := t.cfg.StopThreshold * int64(t.cfg.SubsampleSize) / n
		if scaled < 1 {
			scaled = 1
		}
		g.StopThreshold = scaled
	} else {
		g.StopAtThreshold = false
	}
	return g
}

func countStuck(n *bnode) int64 {
	if n == nil || n.isLeaf() {
		return 0
	}
	var s int64
	if n.pending != nil {
		s = n.pending.Len()
	}
	return s + countStuck(n.left) + countStuck(n.right)
}

// Schema returns the training schema.
func (t *Tree) Schema() *data.Schema { return t.schema }

// BuildStats returns the statistics of the original Build.
func (t *Tree) BuildStats() BuildStats { return t.buildStats }

// Tree materializes the current decision tree. The result is a plain
// value: later Insert/Delete calls do not mutate previously returned
// trees.
func (t *Tree) Tree() *tree.Tree {
	return &tree.Tree{Schema: t.schema, Root: materialize(t.root)}
}

func materialize(n *bnode) *tree.Node {
	if n == nil {
		return nil
	}
	if n.isLeaf() {
		if n.subtree != nil {
			return cloneTreeNode(n.subtree)
		}
		counts := make([]int64, len(n.classCounts))
		copy(counts, n.classCounts)
		return &tree.Node{Label: tree.MajorityLabel(counts), ClassCounts: counts}
	}
	counts := make([]int64, len(n.classCounts))
	copy(counts, n.classCounts)
	return &tree.Node{
		Crit:        n.crit,
		Left:        materialize(n.left),
		Right:       materialize(n.right),
		Label:       tree.MajorityLabel(counts),
		ClassCounts: counts,
	}
}

func cloneTreeNode(n *tree.Node) *tree.Node {
	if n == nil {
		return nil
	}
	counts := make([]int64, len(n.ClassCounts))
	copy(counts, n.ClassCounts)
	return &tree.Node{
		Crit:        n.Crit,
		Left:        cloneTreeNode(n.Left),
		Right:       cloneTreeNode(n.Right),
		Label:       n.Label,
		ClassCounts: counts,
	}
}

// Close releases all temporary resources (spill files, buffers).
func (t *Tree) Close() error {
	closeSubtree(t.root)
	t.root = nil
	return nil
}

// CheckConsistency validates internal invariants (used by tests).
func (t *Tree) CheckConsistency() error {
	if t.root == nil {
		return fmt.Errorf("core: closed tree")
	}
	return t.root.checkConsistency(t.schema)
}
