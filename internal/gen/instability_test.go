package gen

import (
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
)

func TestInstabilityDataset(t *testing.T) {
	src := InstabilitySource(30000, 17)
	if n, ok := src.Count(); !ok || n != 30000 {
		t.Fatalf("count %d,%v", n, ok)
	}
	schema := src.Schema()
	var countsLow, countsMid, countsHigh [2]int64
	err := data.ForEach(src, func(tp data.Tuple) error {
		if err := schema.CheckTuple(tp); err != nil {
			return err
		}
		x := tp.Values[0]
		if x < 0 || x > 80 {
			t.Fatalf("x = %v", x)
		}
		switch {
		case x <= 19:
			countsLow[tp.Class]++
		case x <= 60:
			countsMid[tp.Class]++
		default:
			countsHigh[tp.Class]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fracA := func(c [2]int64) float64 { return float64(c[GroupA]) / float64(c[GroupA]+c[GroupB]) }
	if f := fracA(countsLow); f < 0.85 || f > 0.95 {
		t.Errorf("low segment P(A) = %v, want ~0.9", f)
	}
	if f := fracA(countsMid); f < 0.45 || f > 0.55 {
		t.Errorf("mid segment P(A) = %v, want ~0.5", f)
	}
	if f := fracA(countsHigh); f < 0.05 || f > 0.15 {
		t.Errorf("high segment P(A) = %v, want ~0.1", f)
	}
}

func TestInstabilityTwoMinimaNearlyTied(t *testing.T) {
	// The gini impurity of the splits x <= 19 and x <= 60 must be nearly
	// identical (this is what makes bootstrap split points bimodal in the
	// Figure 12 experiment).
	src := InstabilitySource(200000, 23)
	tuples, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	stats := split.BuildNodeStats(src.Schema(), tuples)
	avc := stats.Num[0]
	qAt := func(x float64) float64 {
		left := make([]int64, 2)
		for i, v := range avc.Values {
			if v > x {
				break
			}
			for c, cnt := range avc.Counts[i] {
				left[c] += cnt
			}
		}
		return split.Gini.QualityFromLeft(left, stats.ClassTotals, nil)
	}
	q19, q60 := qAt(19), qAt(60)
	if d := q19 - q60; d < -0.003 || d > 0.003 {
		t.Errorf("minima not tied: q(19)=%v q(60)=%v", q19, q60)
	}
	// Both must be well below any split in the flat middle.
	if q35 := qAt(35); q35 < q19+0.01 {
		t.Errorf("middle split q(35)=%v too close to the minima %v", q35, q19)
	}
}
