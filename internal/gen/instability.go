package gen

import (
	"io"
	"math/rand"

	"github.com/boatml/boat/internal/data"
)

// InstabilitySchema is the schema of the crafted dataset of Figure 12:
// one predictive numeric attribute x with 81 values (0..80) plus one
// non-predictive numeric attribute.
func InstabilitySchema() *data.Schema {
	return data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "noise", Kind: data.Numeric},
	}, 2)
}

// InstabilitySource generates the two-minima dataset illustrating the
// instability of impurity-based split selection (Figure 12): x is uniform
// on 0..80; the class-A probability is 0.9 for x <= 19, 0.5 for
// 20 <= x <= 60, and 0.1 for x >= 61. The segment sizes (20/41/20 values)
// make the weighted impurity of the splits x <= 19 and x <= 60 exactly
// tied in expectation, so the global minimum of the impurity function
// jumps between the two under small resampling perturbations — which is
// what stops coarse-tree growth when bootstrap trees disagree.
func InstabilitySource(n int64, seed int64) *InstabilityDS {
	return &InstabilityDS{schema: InstabilitySchema(), n: n, seed: seed}
}

// InstabilityDS is the deterministic re-scannable instability dataset.
type InstabilityDS struct {
	schema *data.Schema
	n      int64
	seed   int64
}

// Schema implements data.Source.
func (s *InstabilityDS) Schema() *data.Schema { return s.schema }

// Count implements data.Source.
func (s *InstabilityDS) Count() (int64, bool) { return s.n, true }

// Scan implements data.Source.
func (s *InstabilityDS) Scan() (data.Scanner, error) {
	sc := &instScanner{rng: rand.New(rand.NewSource(s.seed)), remaining: s.n}
	sc.batch = make([]data.Tuple, data.DefaultBatchSize)
	values := make([]float64, len(sc.batch)*2)
	for i := range sc.batch {
		sc.batch[i].Values = values[i*2 : (i+1)*2]
	}
	return sc, nil
}

type instScanner struct {
	rng       *rand.Rand
	remaining int64
	batch     []data.Tuple
}

func (s *instScanner) Next() ([]data.Tuple, error) {
	if s.remaining == 0 {
		return nil, io.EOF
	}
	n := int64(len(s.batch))
	if n > s.remaining {
		n = s.remaining
	}
	for i := int64(0); i < n; i++ {
		t := &s.batch[i]
		x := float64(s.rng.Intn(81))
		t.Values[0] = x
		t.Values[1] = float64(s.rng.Intn(1000))
		var pA float64
		switch {
		case x <= 19:
			pA = 0.9
		case x <= 60:
			pA = 0.5
		default:
			pA = 0.1
		}
		if s.rng.Float64() < pA {
			t.Class = GroupA
		} else {
			t.Class = GroupB
		}
	}
	s.remaining -= n
	return s.batch[:n], nil
}

func (s *instScanner) Close() error { return nil }
