// Package gen implements the synthetic training-database generator of
// Agrawal, Imielinski and Swami ("Database mining: a performance
// perspective", IEEE TKDE 1993) used by the BOAT, SPRINT, PUBLIC and
// RainForest performance studies, including the ten classification
// functions, label noise, and extra non-predictive attributes.
//
// Sources generate tuples deterministically from a seed on every scan, so
// a dataset never needs to be materialized (mirroring BOAT's ability to
// mine trees from training databases defined by queries); data.WriteFile
// can still persist a generated dataset to the paper's 40-byte binary
// records.
//
// All attribute values are integers (drawn uniformly from integer ranges),
// which keeps AVC-set sizes bounded — as in the RainForest evaluation — and
// makes every value exactly representable in both file encodings.
package gen

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/boatml/boat/internal/data"
)

// Attribute indexes of the 9-attribute Agrawal schema.
const (
	AttrSalary     = 0 // numeric, uniform 20000..150000
	AttrCommission = 1 // numeric, 0 if salary >= 75000, else uniform 10000..75000
	AttrAge        = 2 // numeric, uniform 20..80
	AttrElevel     = 3 // categorical, 5 education levels
	AttrCar        = 4 // categorical, 20 makes
	AttrZipcode    = 5 // categorical, 9 zipcodes
	AttrHvalue     = 6 // numeric, uniform 50000*k..150000*k, k = zipcode+1
	AttrHyears     = 7 // numeric, uniform 1..30
	AttrLoan       = 8 // numeric, uniform 0..500000
	baseAttrs      = 9
)

// Class labels: the generator's "group A" and "group B".
const (
	GroupA = 0
	GroupB = 1
)

// Config selects the workload.
type Config struct {
	// Function is the Agrawal classification function, 1..10.
	Function int
	// Noise is the probability that a generated label is flipped
	// (the paper's "percentage of noise in the data", Figures 7-9).
	Noise float64
	// ExtraAttrs adds this many non-predictive numeric attributes with
	// uniform random values in 0..100000 (Figures 10-11).
	ExtraAttrs int
	// Shifted, valid with Function 1, changes the underlying distribution
	// in the part of the attribute space with salary >= 100000 (used for
	// the dynamic-environment experiment of Figure 14): there, group A
	// requires age < 30 or age >= 70 instead of age < 40 or age >= 60.
	Shifted bool
}

func (c Config) validate() error {
	if c.Function < 1 || c.Function > 10 {
		return fmt.Errorf("gen: function %d out of range 1..10", c.Function)
	}
	if c.Noise < 0 || c.Noise > 1 {
		return fmt.Errorf("gen: noise %v out of range [0,1]", c.Noise)
	}
	if c.ExtraAttrs < 0 {
		return fmt.Errorf("gen: negative extra attributes %d", c.ExtraAttrs)
	}
	if c.Shifted && c.Function != 1 {
		return fmt.Errorf("gen: shifted distribution is only defined for function 1")
	}
	return nil
}

// Schema returns the generator schema with the given number of extra
// random attributes appended.
func Schema(extraAttrs int) *data.Schema {
	attrs := []data.Attribute{
		{Name: "salary", Kind: data.Numeric},
		{Name: "commission", Kind: data.Numeric},
		{Name: "age", Kind: data.Numeric},
		{Name: "elevel", Kind: data.Categorical, Cardinality: 5},
		{Name: "car", Kind: data.Categorical, Cardinality: 20},
		{Name: "zipcode", Kind: data.Categorical, Cardinality: 9},
		{Name: "hvalue", Kind: data.Numeric},
		{Name: "hyears", Kind: data.Numeric},
		{Name: "loan", Kind: data.Numeric},
	}
	for i := 0; i < extraAttrs; i++ {
		attrs = append(attrs, data.Attribute{
			Name: fmt.Sprintf("extra%d", i+1),
			Kind: data.Numeric,
		})
	}
	return data.MustSchema(attrs, 2)
}

// uniformInt draws an integer uniformly from [lo, hi].
func uniformInt(rng *rand.Rand, lo, hi int64) float64 {
	return float64(lo + rng.Int63n(hi-lo+1))
}

// fillPredictors fills the 9 base attributes plus extras of t.
func fillPredictors(rng *rand.Rand, vals []float64) {
	vals[AttrSalary] = uniformInt(rng, 20000, 150000)
	if vals[AttrSalary] >= 75000 {
		vals[AttrCommission] = 0
	} else {
		vals[AttrCommission] = uniformInt(rng, 10000, 75000)
	}
	vals[AttrAge] = uniformInt(rng, 20, 80)
	vals[AttrElevel] = float64(rng.Intn(5))
	vals[AttrCar] = float64(rng.Intn(20))
	vals[AttrZipcode] = float64(rng.Intn(9))
	k := int64(vals[AttrZipcode]) + 1
	vals[AttrHvalue] = uniformInt(rng, 50000*k, 150000*k)
	vals[AttrHyears] = uniformInt(rng, 1, 30)
	vals[AttrLoan] = uniformInt(rng, 0, 500000)
	for i := baseAttrs; i < len(vals); i++ {
		vals[i] = uniformInt(rng, 0, 100000)
	}
}

// Label computes the noise-free group of a tuple under the config's
// classification function. Exported for tests and for measuring
// misclassification rates against the true concept.
func Label(cfg Config, t data.Tuple) int {
	v := t.Values
	salary := v[AttrSalary]
	commission := v[AttrCommission]
	age := v[AttrAge]
	elevel := int(v[AttrElevel])
	hvalue := v[AttrHvalue]
	hyears := v[AttrHyears]
	loan := v[AttrLoan]

	groupIf := func(b bool) int {
		if b {
			return GroupA
		}
		return GroupB
	}
	between := func(x, lo, hi float64) bool { return lo <= x && x <= hi }

	switch cfg.Function {
	case 1:
		if cfg.Shifted && salary >= 100000 {
			return groupIf(age < 30 || age >= 70)
		}
		return groupIf(age < 40 || age >= 60)
	case 2:
		switch {
		case age < 40:
			return groupIf(between(salary, 50000, 100000))
		case age < 60:
			return groupIf(between(salary, 75000, 125000))
		default:
			return groupIf(between(salary, 25000, 75000))
		}
	case 3:
		switch {
		case age < 40:
			return groupIf(elevel <= 1)
		case age < 60:
			return groupIf(elevel >= 1 && elevel <= 3)
		default:
			return groupIf(elevel >= 2)
		}
	case 4:
		switch {
		case age < 40:
			if elevel <= 1 {
				return groupIf(between(salary, 25000, 75000))
			}
			return groupIf(between(salary, 50000, 100000))
		case age < 60:
			if elevel >= 1 && elevel <= 3 {
				return groupIf(between(salary, 50000, 100000))
			}
			return groupIf(between(salary, 75000, 125000))
		default:
			if elevel >= 2 {
				return groupIf(between(salary, 50000, 100000))
			}
			return groupIf(between(salary, 25000, 75000))
		}
	case 5:
		switch {
		case age < 40:
			if between(salary, 50000, 100000) {
				return groupIf(between(loan, 100000, 300000))
			}
			return groupIf(between(loan, 200000, 400000))
		case age < 60:
			if between(salary, 75000, 125000) {
				return groupIf(between(loan, 200000, 400000))
			}
			return groupIf(between(loan, 300000, 500000))
		default:
			if between(salary, 25000, 75000) {
				return groupIf(between(loan, 300000, 500000))
			}
			return groupIf(between(loan, 100000, 300000))
		}
	case 6:
		total := salary + commission
		switch {
		case age < 40:
			return groupIf(between(total, 50000, 100000))
		case age < 60:
			return groupIf(between(total, 75000, 125000))
		default:
			return groupIf(between(total, 25000, 75000))
		}
	case 7:
		disposable := (2.0/3.0)*(salary+commission) - loan/5 - 20000
		return groupIf(disposable > 0)
	case 8:
		disposable := (2.0/3.0)*(salary+commission) - 5000*float64(elevel) - 20000
		return groupIf(disposable > 0)
	case 9:
		disposable := (2.0/3.0)*(salary+commission) - 5000*float64(elevel) - loan/5 - 10000
		return groupIf(disposable > 0)
	case 10:
		// Home equity accrues once the house is held for 20 years. The
		// disposable-income constant is chosen so both groups are
		// well-represented under the generator's attribute distributions
		// (~34% group A), matching the balanced-workload spirit of
		// [AIS93].
		equity := 0.0
		if hyears >= 20 {
			equity = hvalue * (hyears - 20) / 10
		}
		disposable := (2.0/3.0)*(salary+commission) - 5000*float64(elevel) + equity/5 - 80000
		return groupIf(disposable > 0)
	default:
		panic(fmt.Sprintf("gen: function %d", cfg.Function))
	}
}

// Source is a deterministic, re-scannable generated training database.
type Source struct {
	cfg    Config
	schema *data.Schema
	n      int64
	seed   int64
}

// NewSource creates a generated dataset of n tuples. Scanning it twice
// yields identical tuples.
func NewSource(cfg Config, n int64, seed int64) (*Source, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("gen: negative size %d", n)
	}
	return &Source{cfg: cfg, schema: Schema(cfg.ExtraAttrs), n: n, seed: seed}, nil
}

// MustSource is NewSource panicking on error (for tests/benchmarks).
func MustSource(cfg Config, n int64, seed int64) *Source {
	s, err := NewSource(cfg, n, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Schema implements data.Source.
func (s *Source) Schema() *data.Schema { return s.schema }

// Count implements data.Source.
func (s *Source) Count() (int64, bool) { return s.n, true }

// Config returns the generator configuration.
func (s *Source) Config() Config { return s.cfg }

// Scan implements data.Source.
func (s *Source) Scan() (data.Scanner, error) {
	sc := &genScanner{
		cfg:       s.cfg,
		rng:       rand.New(rand.NewSource(s.seed)),
		remaining: s.n,
	}
	arity := len(s.schema.Attributes)
	sc.batch = make([]data.Tuple, data.DefaultBatchSize)
	values := make([]float64, len(sc.batch)*arity)
	for i := range sc.batch {
		sc.batch[i].Values = values[i*arity : (i+1)*arity]
	}
	return sc, nil
}

type genScanner struct {
	cfg       Config
	rng       *rand.Rand
	remaining int64
	batch     []data.Tuple
}

func (s *genScanner) Next() ([]data.Tuple, error) {
	if s.remaining == 0 {
		return nil, io.EOF
	}
	n := int64(len(s.batch))
	if n > s.remaining {
		n = s.remaining
	}
	for i := int64(0); i < n; i++ {
		t := &s.batch[i]
		fillPredictors(s.rng, t.Values)
		t.Class = Label(s.cfg, *t)
		if s.cfg.Noise > 0 && s.rng.Float64() < s.cfg.Noise {
			t.Class = 1 - t.Class
		}
	}
	s.remaining -= n
	return s.batch[:n], nil
}

func (s *genScanner) Close() error { return nil }
