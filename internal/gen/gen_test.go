package gen

import (
	"math"
	"testing"

	"github.com/boatml/boat/internal/data"
)

func TestSchemaShape(t *testing.T) {
	s := Schema(0)
	if s.NumAttrs() != 9 || s.ClassCount != 2 {
		t.Fatalf("base schema: %d attrs, %d classes", s.NumAttrs(), s.ClassCount)
	}
	s3 := Schema(3)
	if s3.NumAttrs() != 12 {
		t.Fatalf("schema with extras: %d attrs", s3.NumAttrs())
	}
	if s3.Attributes[9].Name != "extra1" || s3.Attributes[9].Kind != data.Numeric {
		t.Errorf("extra attribute malformed: %+v", s3.Attributes[9])
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Function: 0},
		{Function: 11},
		{Function: 1, Noise: -0.1},
		{Function: 1, Noise: 1.1},
		{Function: 1, ExtraAttrs: -1},
		{Function: 2, Shifted: true},
	}
	for _, cfg := range bad {
		if _, err := NewSource(cfg, 10, 1); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewSource(Config{Function: 1}, -1, 1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestDeterministicRescan(t *testing.T) {
	src := MustSource(Config{Function: 7, Noise: 0.1, ExtraAttrs: 2}, 5000, 99)
	a, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := data.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("tuple %d differs between scans", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := data.ReadAll(MustSource(Config{Function: 1}, 100, 1))
	b, _ := data.ReadAll(MustSource(Config{Function: 1}, 100, 2))
	same := 0
	for i := range a {
		if a[i].Equal(b[i]) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("%d/100 tuples identical across seeds", same)
	}
}

func TestAttributeRanges(t *testing.T) {
	src := MustSource(Config{Function: 1, ExtraAttrs: 1}, 20000, 3)
	schema := src.Schema()
	err := data.ForEach(src, func(tp data.Tuple) error {
		if err := schema.CheckTuple(tp); err != nil {
			t.Fatalf("invalid tuple: %v", err)
		}
		sal := tp.Values[AttrSalary]
		if sal < 20000 || sal > 150000 || sal != math.Trunc(sal) {
			t.Fatalf("salary %v out of range or fractional", sal)
		}
		com := tp.Values[AttrCommission]
		if sal >= 75000 && com != 0 {
			t.Fatalf("salary %v >= 75000 but commission %v != 0", sal, com)
		}
		if sal < 75000 && (com < 10000 || com > 75000) {
			t.Fatalf("commission %v out of range", com)
		}
		age := tp.Values[AttrAge]
		if age < 20 || age > 80 {
			t.Fatalf("age %v", age)
		}
		zip := int(tp.Values[AttrZipcode])
		hv := tp.Values[AttrHvalue]
		k := float64(zip + 1)
		if hv < 50000*k || hv > 150000*k {
			t.Fatalf("hvalue %v out of range for zipcode %d", hv, zip)
		}
		hy := tp.Values[AttrHyears]
		if hy < 1 || hy > 30 {
			t.Fatalf("hyears %v", hy)
		}
		loan := tp.Values[AttrLoan]
		if loan < 0 || loan > 500000 {
			t.Fatalf("loan %v", loan)
		}
		ex := tp.Values[9]
		if ex < 0 || ex > 100000 {
			t.Fatalf("extra %v", ex)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mkTuple builds a base tuple with sensible defaults for label tests.
func mkTuple(over func(v []float64)) data.Tuple {
	v := []float64{50000, 0, 30, 2, 5, 4, 200000, 10, 100000}
	if over != nil {
		over(v)
	}
	return data.Tuple{Values: v}
}

func TestLabelFunction1(t *testing.T) {
	cases := []struct {
		age  float64
		want int
	}{
		{20, GroupA}, {39, GroupA}, {40, GroupB}, {59, GroupB}, {60, GroupA}, {80, GroupA},
	}
	for _, tc := range cases {
		got := Label(Config{Function: 1}, mkTuple(func(v []float64) { v[AttrAge] = tc.age }))
		if got != tc.want {
			t.Errorf("F1(age=%v) = %d, want %d", tc.age, got, tc.want)
		}
	}
}

func TestLabelFunction1Shifted(t *testing.T) {
	cfg := Config{Function: 1, Shifted: true}
	// Below the salary cut the rule is unchanged.
	tp := mkTuple(func(v []float64) { v[AttrSalary], v[AttrAge] = 50000, 35 })
	if Label(cfg, tp) != GroupA {
		t.Error("unshifted part of the space changed")
	}
	// Above the cut the age thresholds move to 30/70.
	tp = mkTuple(func(v []float64) { v[AttrSalary], v[AttrAge] = 120000, 35 })
	if Label(cfg, tp) != GroupB {
		t.Error("shifted rule: age 35 at high salary should be group B")
	}
	tp = mkTuple(func(v []float64) { v[AttrSalary], v[AttrAge] = 120000, 75 })
	if Label(cfg, tp) != GroupA {
		t.Error("shifted rule: age 75 at high salary should be group A")
	}
}

func TestLabelFunction2(t *testing.T) {
	cases := []struct {
		age, salary float64
		want        int
	}{
		{30, 50000, GroupA}, {30, 100000, GroupA}, {30, 49999, GroupB}, {30, 100001, GroupB},
		{50, 75000, GroupA}, {50, 74999, GroupB},
		{70, 25000, GroupA}, {70, 75001, GroupB},
	}
	for _, tc := range cases {
		tp := mkTuple(func(v []float64) { v[AttrAge], v[AttrSalary] = tc.age, tc.salary })
		if got := Label(Config{Function: 2}, tp); got != tc.want {
			t.Errorf("F2(age=%v,salary=%v) = %d, want %d", tc.age, tc.salary, got, tc.want)
		}
	}
}

func TestLabelFunction3(t *testing.T) {
	cases := []struct {
		age    float64
		elevel float64
		want   int
	}{
		{30, 0, GroupA}, {30, 1, GroupA}, {30, 2, GroupB},
		{50, 0, GroupB}, {50, 2, GroupA}, {50, 4, GroupB},
		{70, 1, GroupB}, {70, 3, GroupA},
	}
	for _, tc := range cases {
		tp := mkTuple(func(v []float64) { v[AttrAge], v[AttrElevel] = tc.age, tc.elevel })
		if got := Label(Config{Function: 3}, tp); got != tc.want {
			t.Errorf("F3(age=%v,elevel=%v) = %d, want %d", tc.age, tc.elevel, got, tc.want)
		}
	}
}

func TestLabelFunction6(t *testing.T) {
	cases := []struct {
		age, salary, commission float64
		want                    int
	}{
		{30, 40000, 20000, GroupA}, // total 60k in [50k,100k]
		{30, 40000, 5000, GroupB},  // total 45k
		{50, 60000, 20000, GroupA}, // total 80k in [75k,125k]
		{70, 20000, 10000, GroupA}, // total 30k in [25k,75k]
		{70, 80000, 0, GroupB},     // total 80k
	}
	for _, tc := range cases {
		tp := mkTuple(func(v []float64) {
			v[AttrAge], v[AttrSalary], v[AttrCommission] = tc.age, tc.salary, tc.commission
		})
		if got := Label(Config{Function: 6}, tp); got != tc.want {
			t.Errorf("F6(%+v) = %d, want %d", tc, got, tc.want)
		}
	}
}

func TestLabelFunction7(t *testing.T) {
	// disposable = 2/3*(salary+commission) - loan/5 - 20000
	tp := mkTuple(func(v []float64) { v[AttrSalary], v[AttrCommission], v[AttrLoan] = 90000, 0, 100000 })
	// 60000 - 20000 - 20000 = 20000 > 0
	if Label(Config{Function: 7}, tp) != GroupA {
		t.Error("F7 positive disposable should be group A")
	}
	tp = mkTuple(func(v []float64) { v[AttrSalary], v[AttrCommission], v[AttrLoan] = 30000, 0, 100000 })
	// 20000 - 20000 - 20000 = -20000
	if Label(Config{Function: 7}, tp) != GroupB {
		t.Error("F7 negative disposable should be group B")
	}
}

func TestLabelFunctions8to10Deterministic(t *testing.T) {
	// Smoke: all functions label without panicking and depend on their
	// documented inputs.
	for fn := 8; fn <= 10; fn++ {
		cfg := Config{Function: fn}
		base := Label(cfg, mkTuple(nil))
		if base != GroupA && base != GroupB {
			t.Fatalf("F%d produced label %d", fn, base)
		}
	}
	// F10 ignores loan but uses home equity.
	low := mkTuple(func(v []float64) { v[AttrHyears], v[AttrHvalue] = 5, 800000 })
	high := mkTuple(func(v []float64) { v[AttrHyears], v[AttrHvalue] = 30, 800000 })
	if Label(Config{Function: 10}, low) != GroupB {
		t.Error("F10 with no equity and modest income should be group B")
	}
	if Label(Config{Function: 10}, high) != GroupA {
		t.Error("F10 with large equity should be group A")
	}
}

func TestNoiseRate(t *testing.T) {
	const n = 40000
	for _, noise := range []float64{0, 0.1} {
		src := MustSource(Config{Function: 1, Noise: noise}, n, 5)
		flipped := 0
		err := data.ForEach(src, func(tp data.Tuple) error {
			if Label(Config{Function: 1}, tp) != tp.Class {
				flipped++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(flipped) / n
		if math.Abs(got-noise) > 0.01 {
			t.Errorf("noise %v: measured flip rate %v", noise, got)
		}
	}
}

func TestClassBalanceReasonable(t *testing.T) {
	// Every function should produce both classes in nontrivial numbers.
	for fn := 1; fn <= 10; fn++ {
		src := MustSource(Config{Function: fn}, 10000, 11)
		counts := [2]int{}
		if err := data.ForEach(src, func(tp data.Tuple) error {
			counts[tp.Class]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if counts[0] < 200 || counts[1] < 200 {
			t.Errorf("F%d class balance %v is degenerate", fn, counts)
		}
	}
}
