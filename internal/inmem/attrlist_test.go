package inmem

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/split"
)

// TestAttributeListMatchesNaive cross-checks the SPRINT-style builder
// against the per-node re-sorting oracle over randomized datasets,
// methods and stopping rules.
func TestAttributeListMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fn := 1 + rng.Intn(10)
			noise := float64(rng.Intn(20)) / 100
			n := int64(300 + rng.Intn(3000))
			src := gen.MustSource(gen.Config{Function: fn, Noise: noise, ExtraAttrs: rng.Intn(3)}, n, seed)
			tuples, err := data.ReadAll(src)
			if err != nil {
				t.Fatal(err)
			}
			var m split.Method = split.NewGini()
			switch rng.Intn(3) {
			case 1:
				m = split.NewEntropy()
			case 2:
				m = split.NewQuestLike()
			}
			cfg := Config{
				Method:   m,
				MaxDepth: 1 + rng.Intn(7),
				MinSplit: int64(2 + rng.Intn(30)),
			}
			if rng.Intn(2) == 0 {
				cfg.StopThreshold = n / int64(2+rng.Intn(6))
				cfg.StopAtThreshold = rng.Intn(2) == 0
			}
			fast := Build(src.Schema(), data.CloneTuples(tuples), cfg)
			naive := BuildNaive(src.Schema(), data.CloneTuples(tuples), cfg)
			if !fast.Equal(naive) {
				t.Fatalf("fn=%d m=%s cfg=%+v: %s", fn, m.Name(), cfg, fast.Diff(naive))
			}
		})
	}
}

func TestAttributeListDoesNotReorderInput(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1}, 500, 3)
	tuples, _ := data.ReadAll(src)
	snapshot := data.CloneTuples(tuples)
	Build(src.Schema(), tuples, Config{Method: split.NewGini(), MaxDepth: 5})
	for i := range tuples {
		if !tuples[i].Equal(snapshot[i]) {
			t.Fatal("attribute-list builder reordered the input slice")
		}
	}
}

func TestAttributeListEmptyAndTiny(t *testing.T) {
	schema := gen.Schema(0)
	for _, n := range []int{0, 1, 2} {
		var tuples []data.Tuple
		src := gen.MustSource(gen.Config{Function: 1}, int64(n), 1)
		tuples, _ = data.ReadAll(src)
		tr := Build(schema, tuples, Config{Method: split.NewGini()})
		if tr.Root == nil {
			t.Fatalf("n=%d: nil root", n)
		}
	}
}

func BenchmarkBuildAttrList(b *testing.B) {
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.1}, 100_000, 5)
	tuples, _ := data.ReadAll(src)
	cfg := Config{Method: split.NewGini(), StopThreshold: 15_000, StopAtThreshold: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(src.Schema(), tuples, cfg)
	}
}

func BenchmarkBuildNaive(b *testing.B) {
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.1}, 100_000, 5)
	tuples, _ := data.ReadAll(src)
	cfg := Config{Method: split.NewGini(), StopThreshold: 15_000, StopAtThreshold: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildNaive(src.Schema(), data.CloneTuples(tuples), cfg)
	}
}
