package inmem

import (
	"slices"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// Attribute-list tree construction in the style of SPRINT (Shafer,
// Agrawal, Mehta, VLDB 1996): each numeric attribute is sorted once at
// the root into an "attribute list" of (value, class, row) entries; when
// a node splits, every list is partitioned into the children with a
// stable linear pass, so sorted order is preserved and no sorting happens
// below the root. AVC-sets are built by linear run aggregation over the
// sorted lists.
//
// The selected splits are identical to the naive per-node re-sorting
// builder (both feed the same integer counts to the same split-selection
// code); BuildNaive is retained and the test suite cross-checks the two
// on randomized inputs.

// attrList is one numeric attribute's sorted projection over a family:
// parallel arrays of value, class label, and row id into the fixed tuple
// backing array.
type attrList struct {
	vals    []float64
	classes []int32
	rows    []int32
}

type listBuilder struct {
	schema *data.Schema
	cfg    Config
	tuples []data.Tuple // fixed backing array; never reordered
	side   []bool       // side[row]: routing decision of the node currently splitting
}

// Build constructs the decision tree for the family using attribute
// lists. The tuple slice itself is not reordered.
func Build(schema *data.Schema, tuples []data.Tuple, cfg Config) *tree.Tree {
	b := &listBuilder{
		schema: schema,
		cfg:    cfg,
		tuples: tuples,
		side:   make([]bool, len(tuples)),
	}
	rows := make([]int32, len(tuples))
	for i := range rows {
		rows[i] = int32(i)
	}
	root := b.buildNode(rows, b.rootLists(), 0)
	return &tree.Tree{Schema: schema, Root: root}
}

// rootLists sorts each numeric attribute once (stably, so equal values
// keep row order — irrelevant for the result, deterministic regardless).
func (b *listBuilder) rootLists() []*attrList {
	lists := make([]*attrList, len(b.schema.Attributes))
	n := len(b.tuples)
	for a, attr := range b.schema.Attributes {
		if attr.Kind != data.Numeric {
			continue
		}
		vals := make([]float64, n)
		for i, t := range b.tuples {
			vals[i] = t.Values[a]
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		// Ascending, NaN (missing values) last as one run — the canonical
		// AVC order (split.SameValue) — stabilized by row id.
		slices.SortFunc(idx, func(x, y int32) int {
			a, b := vals[x], vals[y]
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			case a == b || a != a && b != b:
				return int(x - y) // same entry: stabilize
			case a == a:
				return -1 // b is NaN: a sorts first
			default:
				return 1 // a is NaN: b sorts first
			}
		})
		l := &attrList{
			vals:    make([]float64, n),
			classes: make([]int32, n),
			rows:    make([]int32, n),
		}
		for i, row := range idx {
			l.vals[i] = vals[row]
			l.classes[i] = int32(b.tuples[row].Class)
			l.rows[i] = row
		}
		lists[a] = l
	}
	return lists
}

func (b *listBuilder) buildNode(rows []int32, lists []*attrList, depth int) *tree.Node {
	k := b.schema.ClassCount
	classTotals := make([]int64, k)
	for _, row := range rows {
		classTotals[b.tuples[row].Class]++
	}
	n := &tree.Node{ClassCounts: classTotals, Label: tree.MajorityLabel(classTotals)}
	if b.cfg.StopBeforeSplit(int64(len(rows)), depth, classTotals) {
		return n
	}
	stats := b.statsFromLists(rows, lists, classTotals)
	best := b.cfg.Method.BestSplit(stats)
	if !best.Found {
		return n
	}
	n.Crit = best

	// Record every row's side once, then partition the row set and each
	// attribute list with stable linear passes.
	var leftN int
	for _, row := range rows {
		goLeft := best.Left(b.tuples[row])
		b.side[row] = goLeft
		if goLeft {
			leftN++
		}
	}
	leftRows := make([]int32, 0, leftN)
	rightRows := make([]int32, 0, len(rows)-leftN)
	for _, row := range rows {
		if b.side[row] {
			leftRows = append(leftRows, row)
		} else {
			rightRows = append(rightRows, row)
		}
	}
	leftLists := make([]*attrList, len(lists))
	rightLists := make([]*attrList, len(lists))
	for a, l := range lists {
		if l == nil {
			continue
		}
		leftLists[a], rightLists[a] = b.partitionList(l, leftN)
	}
	n.Left = b.buildNode(leftRows, leftLists, depth+1)
	n.Right = b.buildNode(rightRows, rightLists, depth+1)
	return n
}

// partitionList splits a sorted list by the recorded sides, preserving
// order within each side.
func (b *listBuilder) partitionList(l *attrList, leftN int) (*attrList, *attrList) {
	n := l.len()
	left := &attrList{
		vals:    make([]float64, 0, leftN),
		classes: make([]int32, 0, leftN),
		rows:    make([]int32, 0, leftN),
	}
	right := &attrList{
		vals:    make([]float64, 0, n-leftN),
		classes: make([]int32, 0, n-leftN),
		rows:    make([]int32, 0, n-leftN),
	}
	for i := 0; i < n; i++ {
		row := l.rows[i]
		dst := right
		if b.side[row] {
			dst = left
		}
		dst.vals = append(dst.vals, l.vals[i])
		dst.classes = append(dst.classes, l.classes[i])
		dst.rows = append(dst.rows, row)
	}
	return left, right
}

func (l *attrList) len() int { return len(l.vals) }

// statsFromLists assembles the node's AVC-group: numeric attributes by
// linear run aggregation over their sorted lists, categorical attributes
// by a counting pass over the row set.
func (b *listBuilder) statsFromLists(rows []int32, lists []*attrList, classTotals []int64) *split.NodeStats {
	k := b.schema.ClassCount
	stats := &split.NodeStats{
		Schema:      b.schema,
		ClassTotals: classTotals,
		Num:         make([]*split.NumericAVC, len(b.schema.Attributes)),
		Cat:         make([]*split.CatAVC, len(b.schema.Attributes)),
	}
	for a, attr := range b.schema.Attributes {
		if attr.Kind == data.Categorical {
			avc := split.NewCatAVC(attr.Cardinality, k)
			for _, row := range rows {
				t := &b.tuples[row]
				avc.Counts[int(t.Values[a])][t.Class]++
			}
			stats.Cat[a] = avc
			continue
		}
		l := lists[a]
		distinct := 0
		for i := range l.vals {
			if i == 0 || !split.SameValue(l.vals[i], l.vals[i-1]) {
				distinct++
			}
		}
		avc := &split.NumericAVC{
			Values: make([]float64, 0, distinct),
			Counts: make([][]int64, 0, distinct),
		}
		backing := make([]int64, distinct*k)
		var row []int64
		for i := range l.vals {
			if i == 0 || !split.SameValue(l.vals[i], l.vals[i-1]) {
				row = backing[len(avc.Values)*k : (len(avc.Values)+1)*k]
				avc.Values = append(avc.Values, l.vals[i])
				avc.Counts = append(avc.Counts, row)
			}
			row[l.classes[i]]++
		}
		stats.Num[a] = avc
	}
	return stats
}
