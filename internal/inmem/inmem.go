// Package inmem implements the classical greedy top-down decision tree
// induction schema of Figure 1 in the paper, operating on an in-memory
// family of tuples. It serves three roles: the ground-truth reference the
// scalable algorithms are tested against ("exactly the same tree"), the
// builder for bootstrap trees in BOAT's sampling phase, and the
// main-memory algorithm BOAT and RainForest switch to once a node's
// family fits in memory.
package inmem

import (
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

// Config holds the growth-phase stopping rules shared verbatim by every
// builder in this repository; identical rules are a precondition for the
// "identical tree" guarantee.
type Config struct {
	// Method is the split selection method CL. Required.
	Method split.Method
	// MinSplit stops growth at families smaller than this (minimum 2;
	// 0 means 2).
	MinSplit int64
	// MaxDepth limits the tree depth (0 = unlimited; negative = always
	// stop, used for subtree builds rooted at the depth limit).
	MaxDepth int
	// StopThreshold, with StopAtThreshold, turns families of at most this
	// many tuples into leaves without further splitting. This models the
	// performance-experiment methodology of Section 5, where tree
	// construction stops as soon as a family fits in memory.
	StopThreshold   int64
	StopAtThreshold bool
}

// StopBeforeSplit reports whether a node with the given family size,
// depth, and class histogram must become a leaf before split selection is
// even attempted.
func (c Config) StopBeforeSplit(total int64, depth int, classTotals []int64) bool {
	minSplit := c.MinSplit
	if minSplit < 2 {
		minSplit = 2
	}
	if total < minSplit {
		return true
	}
	if c.MaxDepth != 0 && depth >= c.MaxDepth {
		return true
	}
	if c.StopAtThreshold && total <= c.StopThreshold {
		return true
	}
	nonzero := 0
	for _, v := range classTotals {
		if v > 0 {
			nonzero++
		}
	}
	return nonzero <= 1 // pure node
}

// BuildNaive constructs the decision tree with per-node AVC re-sorting —
// the straightforward instantiation of the Figure 1 schema. Build (in
// attrlist.go) is the production path; BuildNaive remains as the
// independent oracle the tests cross-check it against. The tuple slice is
// reordered in place during recursive partitioning; pass an owned slice.
func BuildNaive(schema *data.Schema, tuples []data.Tuple, cfg Config) *tree.Tree {
	return &tree.Tree{Schema: schema, Root: buildNode(schema, tuples, cfg, 0)}
}

func buildNode(schema *data.Schema, tuples []data.Tuple, cfg Config, depth int) *tree.Node {
	classTotals := make([]int64, schema.ClassCount)
	for _, t := range tuples {
		classTotals[t.Class]++
	}
	n := &tree.Node{ClassCounts: classTotals, Label: tree.MajorityLabel(classTotals)}
	if cfg.StopBeforeSplit(int64(len(tuples)), depth, classTotals) {
		return n
	}
	stats := split.BuildNodeStats(schema, tuples)
	best := cfg.Method.BestSplit(stats)
	if !best.Found {
		return n
	}
	n.Crit = best
	left := Partition(tuples, best)
	n.Left = buildNode(schema, tuples[:left], cfg, depth+1)
	n.Right = buildNode(schema, tuples[left:], cfg, depth+1)
	return n
}

// Partition reorders tuples so the first returned count of them route left
// under the criterion, preserving nothing about the original order.
func Partition(tuples []data.Tuple, crit split.Split) int {
	i, j := 0, len(tuples)
	for i < j {
		if crit.Left(tuples[i]) {
			i++
		} else {
			j--
			tuples[i], tuples[j] = tuples[j], tuples[i]
		}
	}
	return i
}
